// Package ibcbench's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section (§IV). Each bench runs the
// corresponding experiment driver once per iteration and reports the
// headline metric via b.ReportMetric, so `go test -bench=. -benchmem`
// reprints the paper's rows/series. EXPERIMENTS.md records paper-vs-
// measured values.
package ibcbench_test

import (
	"testing"

	"ibcbench/internal/experiments"
	"ibcbench/internal/metrics"
)

// benchOpts keeps bench iterations affordable; `cmd/ibcbench` runs the
// full sweeps with more seeds.
var benchOpts = experiments.Options{Seeds: 1}

func BenchmarkFig6TendermintThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{500, 3000, 9000}, Windows: 10,
		})
		peak := 0.0
		for _, d := range res.Fig6.Y {
			if d.Mean > peak {
				peak = d.Mean
			}
		}
		b.ReportMetric(peak, "peak-TFPS")
	}
}

func BenchmarkFig7BlockInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{500, 9000}, Windows: 10,
		})
		last := res.Fig7.Y[len(res.Fig7.Y)-1]
		b.ReportMetric(last.Mean, "interval-sec-at-9000rps")
	}
}

func BenchmarkTable1ExecutionSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{3000, 13000}, Windows: 10,
		})
		row := res.Table1[len(res.Table1)-1]
		b.ReportMetric(100*float64(row.Submitted)/float64(row.Requested), "submitted-pct-at-13000rps")
	}
}

func BenchmarkFig8SingleRelayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{100, 140}, Windows: 30,
		}, 1, false)
		peak := 0.0
		for _, p := range pts {
			if p.Throughput.Mean > peak {
				peak = p.Throughput.Mean
			}
		}
		b.ReportMetric(peak, "peak-TFPS")
	}
}

func BenchmarkFig9TwoRelayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{140}, Windows: 30,
		}, 2, false)
		b.ReportMetric(pts[0].Throughput.Mean, "TFPS")
		b.ReportMetric(pts[0].RedundantErrors, "redundant-errors")
	}
}

func BenchmarkFig10CompletionOneRelayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{220}, Windows: 30,
		}, 1, false)
		b.ReportMetric(pts[0].Completed, "completed")
		b.ReportMetric(pts[0].Partial, "partial")
		b.ReportMetric(pts[0].Initiated, "initiated")
	}
}

func BenchmarkFig11CompletionTwoRelayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{220}, Windows: 30,
		}, 2, false)
		b.ReportMetric(pts[0].Completed, "completed")
		b.ReportMetric(pts[0].Partial, "partial")
	}
}

func BenchmarkFig12LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(5000, int64(42+i))
		b.ReportMetric(res.Total.Seconds(), "total-sec")
		pulls := res.TransferDataPull + res.RecvDataPull
		b.ReportMetric(100*pulls.Seconds()/res.Total.Seconds(), "datapull-pct")
	}
}

func BenchmarkFig13SubmissionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(5000, []int{1, 16, 64}, int64(7+i))
		b.ReportMetric(rows[0].Completion.Seconds(), "1-block-sec")
		b.ReportMetric(rows[1].Completion.Seconds(), "16-block-sec")
		b.ReportMetric(rows[2].Completion.Seconds(), "64-block-sec")
	}
}

func BenchmarkGasPerMessageClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.GasTable(int64(3 + i))
		for _, r := range rows {
			b.ReportMetric(float64(r.Measured), "gas-"+r.MsgType)
		}
	}
}

func BenchmarkWebSocketLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.WebSocketLimit(int64(5+i), 1000, 60)
		total := float64(res.Transfers)
		b.ReportMetric(100*float64(res.Completed)/total, "completed-pct")
		b.ReportMetric(100*float64(res.Stuck)/total, "stuck-pct")
	}
}

var _ = metrics.StatusCompleted
