// Package ibcbench's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section (§IV). Each bench runs the
// corresponding experiment driver once per iteration and reports the
// headline metric via b.ReportMetric, so `go test -bench=. -benchmem`
// reprints the paper's rows/series. EXPERIMENTS.md records paper-vs-
// measured values.
package ibcbench_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/chain"
	"ibcbench/internal/eventindex"
	"ibcbench/internal/experiments"
	"ibcbench/internal/ibc"
	"ibcbench/internal/merkle"
	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/topo"
)

// benchOpts keeps bench iterations affordable; `cmd/ibcbench` runs the
// full sweeps with more seeds.
var benchOpts = experiments.Options{Seeds: 1}

func BenchmarkFig6TendermintThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{500, 3000, 9000}, Windows: 10,
		})
		peak := 0.0
		for _, d := range res.Fig6.Y {
			if d.Mean > peak {
				peak = d.Mean
			}
		}
		b.ReportMetric(peak, "peak-TFPS")
	}
}

func BenchmarkFig7BlockInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{500, 9000}, Windows: 10,
		})
		last := res.Fig7.Y[len(res.Fig7.Y)-1]
		b.ReportMetric(last.Mean, "interval-sec-at-9000rps")
	}
}

func BenchmarkTable1ExecutionSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Tendermint(experiments.Options{
			Seeds: 1, Rates: []int{3000, 13000}, Windows: 10,
		})
		row := res.Table1[len(res.Table1)-1]
		b.ReportMetric(100*float64(row.Submitted)/float64(row.Requested), "submitted-pct-at-13000rps")
	}
}

func BenchmarkFig8SingleRelayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{100, 140}, Windows: 30,
		}, 1, false)
		peak := 0.0
		for _, p := range pts {
			if p.Throughput.Mean > peak {
				peak = p.Throughput.Mean
			}
		}
		b.ReportMetric(peak, "peak-TFPS")
	}
}

func BenchmarkFig9TwoRelayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{140}, Windows: 30,
		}, 2, false)
		b.ReportMetric(pts[0].Throughput.Mean, "TFPS")
		b.ReportMetric(pts[0].RedundantErrors, "redundant-errors")
	}
}

func BenchmarkFig10CompletionOneRelayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{220}, Windows: 30,
		}, 1, false)
		b.ReportMetric(pts[0].Completed, "completed")
		b.ReportMetric(pts[0].Partial, "partial")
		b.ReportMetric(pts[0].Initiated, "initiated")
	}
}

func BenchmarkFig11CompletionTwoRelayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RelayerSweep(experiments.Options{
			Seeds: 1, Rates: []int{220}, Windows: 30,
		}, 2, false)
		b.ReportMetric(pts[0].Completed, "completed")
		b.ReportMetric(pts[0].Partial, "partial")
	}
}

func BenchmarkFig12LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(5000, int64(42+i))
		b.ReportMetric(res.Total.Seconds(), "total-sec")
		pulls := res.TransferDataPull + res.RecvDataPull
		b.ReportMetric(100*pulls.Seconds()/res.Total.Seconds(), "datapull-pct")
	}
}

func BenchmarkFig13SubmissionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(5000, []int{1, 16, 64}, int64(7+i))
		b.ReportMetric(rows[0].Completion.Seconds(), "1-block-sec")
		b.ReportMetric(rows[1].Completion.Seconds(), "16-block-sec")
		b.ReportMetric(rows[2].Completion.Seconds(), "64-block-sec")
	}
}

func BenchmarkGasPerMessageClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.GasTable(int64(3 + i))
		for _, r := range rows {
			b.ReportMetric(float64(r.Measured), "gas-"+r.MsgType)
		}
	}
}

func BenchmarkWebSocketLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.WebSocketLimit(int64(5+i), 1000, 60)
		total := float64(res.Transfers)
		b.ReportMetric(100*float64(res.Completed)/total, "completed-pct")
		b.ReportMetric(100*float64(res.Stuck)/total, "stuck-pct")
	}
}

// --- hot-path benchmarks (shared event index + incremental commits) ----------

// benchBlock assembles one committed block's TxInfos: txs transactions,
// each carrying msgs send_packet events round-robined over nChans channels.
func benchBlock(txs, msgs, nChans int) []*store.TxInfo {
	infos := make([]*store.TxInfo, txs)
	for i := range infos {
		events := make([]abci.Event, msgs)
		m := make([]app.Msg, msgs)
		for j := range events {
			p := ibc.Packet{
				SourcePort:    "transfer",
				SourceChannel: fmt.Sprintf("channel-%d", (i+j)%nChans),
				DestPort:      "transfer",
				DestChannel:   "channel-9",
				Sequence:      uint64(i*msgs + j + 1),
			}
			raw, _ := json.Marshal(p)
			events[j] = abci.Event{Type: "send_packet", Attributes: map[string]string{"packet": string(raw)}}
			m[j] = ibc.MsgRecvPacket{Packet: p}
		}
		infos[i] = &store.TxInfo{
			Height: 1,
			Index:  i,
			Tx:     app.NewTx(fmt.Sprintf("signer-%d", i), 0, uint64(i), m),
			Result: abci.TxResult{Events: events},
		}
	}
	return infos
}

// BenchmarkEventDecode measures the single shared decode pass over one
// block against the pre-index behaviour of K relayer endpoints each
// re-decoding the block for their own channel.
func BenchmarkEventDecode(b *testing.B) {
	infos := benchBlock(20, 100, 4)
	b.Run("shared-index-1pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			be := eventindex.Decode(1, 0, infos)
			if len(be.Txs) != 20 {
				b.Fatal("decode lost txs")
			}
		}
	})
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("per-relayer-%dpasses", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < k; r++ {
					eventindex.Decode(1, 0, infos)
				}
			}
		})
	}
}

// BenchmarkRelayerHubScan runs a full hub scenario per iteration; with
// the shared index its host-side scan cost is O(1) in relayer count, so
// doubling relayers must not double the event-decode work. allocs/op is
// reported so CI tracks the batch-build slice recycling (packet and ack
// buffers return to per-relayer free lists after submission).
func BenchmarkRelayerHubScan(b *testing.B) {
	for _, perEdge := range []int{1, 2} {
		b.Run(fmt.Sprintf("relayers-per-edge-%d", perEdge), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := topo.Scenario{
					Name:      "bench-hub",
					Topology:  topo.Hub(3),
					Deploy:    topo.DeployConfig{RelayersPerEdge: perEdge},
					EdgeRates: map[int]int{0: 10, 1: 10, 2: 10},
					Windows:   3,
				}
				res, err := s.Run(int64(17 + i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total[metrics.StatusCompleted]), "completed")
			}
		})
	}
}

// BenchmarkStateCommit measures block commits in full-proof mode: the
// incremental path folds only the block's dirty keys into cached leaf
// hashes, versus the old full merkle.NewTree rebuild over the state map.
func BenchmarkStateCommit(b *testing.B) {
	const preload, dirtyPerBlock = 4096, 32
	seedState := func(s *app.State) {
		for i := 0; i < preload; i++ {
			s.Set(fmt.Sprintf("key/%05d", i), []byte(fmt.Sprintf("val-%d", i)))
		}
		s.CommitTx()
		s.Commit(1)
	}
	b.Run("incremental", func(b *testing.B) {
		s := app.NewState(true)
		seedState(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d := 0; d < dirtyPerBlock; d++ {
				s.Set(fmt.Sprintf("key/%05d", (i*dirtyPerBlock+d*7)%preload), []byte(fmt.Sprintf("v%d", i)))
			}
			s.CommitTx()
			s.Commit(int64(i + 2))
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		// The pre-refactor cost model: rebuild the whole tree per commit.
		kv := make(map[string][]byte, preload)
		for i := 0; i < preload; i++ {
			kv[fmt.Sprintf("key/%05d", i)] = []byte(fmt.Sprintf("val-%d", i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d := 0; d < dirtyPerBlock; d++ {
				kv[fmt.Sprintf("key/%05d", (i*dirtyPerBlock+d*7)%preload)] = []byte(fmt.Sprintf("v%d", i))
			}
			if merkle.NewTree(kv).Root() == (merkle.Hash{}) {
				b.Fatal("zero root")
			}
		}
	})
	b.Run("incremental-with-inserts", func(b *testing.B) {
		s := app.NewState(true)
		seedState(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A block's realistic mix: new packet commitments plus balance
			// updates.
			for d := 0; d < dirtyPerBlock/2; d++ {
				s.Set(fmt.Sprintf("commitments/%d/%d", i, d), []byte("c"))
				s.Set(fmt.Sprintf("key/%05d", (i+d*11)%preload), []byte(fmt.Sprintf("v%d", i)))
			}
			s.CommitTx()
			s.Commit(int64(i + 2))
		}
	})
}

// BenchmarkVoteFanout measures consensus block production as the
// validator set grows. The shared vote-verification engine
// (internal/tendermint/votesig) checks each gossiped vote's ed25519
// signature exactly once chain-wide, so per-height signature work is
// O(V) across the two voting stages; the `vals-13-reference` variant
// runs the pre-engine per-receiver path (O(V^2) checks) as the
// regression anchor. Virtual results are identical either way —
// blocks-per-virtual-minute must not move.
func BenchmarkVoteFanout(b *testing.B) {
	runChain := func(b *testing.B, vals int, reference bool) {
		for i := 0; i < b.N; i++ {
			sched := sim.NewScheduler()
			rng := sim.NewRNG(int64(31 + i))
			network := netem.New(sched, rng, netem.DefaultWAN())
			c := chain.New(sched, network, chain.Config{
				ChainID: "fanout", Validators: vals, ReferenceVoteVerify: reference,
			})
			c.Start()
			if err := sched.RunUntil(60 * time.Second); err != nil {
				b.Fatal(err)
			}
			if c.Store.Height() == 0 {
				b.Fatal("no blocks committed")
			}
			b.ReportMetric(float64(c.Store.Height()), "blocks-per-vmin")
		}
	}
	for _, vals := range []int{5, 9, 13} {
		b.Run(fmt.Sprintf("vals-%d", vals), func(b *testing.B) { runChain(b, vals, false) })
	}
	b.Run("vals-13-reference", func(b *testing.B) { runChain(b, 13, true) })
}

// BenchmarkTracerOverhead measures the observability tax on a full topo
// scenario: `disabled` is the production default (nil Obs — the tracer
// hooks must compile down to nil checks), `enabled` runs the same
// workload with span recording, metric sampling and flush-time packet
// synthesis attached. The CI bench job tracks both; enabled should sit
// within ~5% of disabled, disabled within noise of the pre-obs baseline.
func BenchmarkTracerOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			sc, err := experiments.BuildTopologyScenario(benchOpts, "hub:3", 5, false)
			if err != nil {
				b.Fatal(err)
			}
			var o *obs.Obs
			if instrument {
				o = obs.New()
				sc.Deploy.Obs = o
			}
			res, err := sc.Run(42)
			if err != nil {
				b.Fatal(err)
			}
			if res.Total[metrics.StatusCompleted] == 0 {
				b.Fatal("no transfers completed")
			}
			b.ReportMetric(res.Throughput, "TFPS")
			if instrument {
				if o.Tracer.Len() == 0 {
					b.Fatal("instrumented run recorded no events")
				}
				b.ReportMetric(float64(o.Tracer.Len()), "events")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

var _ = metrics.StatusCompleted

// BenchmarkMeshSerialVsParallel runs one full-mesh scenario per
// iteration in both runner modes and reports wall time plus speedup.
// The conservative partitioned runner is byte-identical to serial (the
// experiment errors out otherwise), so the only degree of freedom is
// wall clock: on a multi-core host speedup approaches
// min(chains, workers, cores); on a single core it pins near 1.0 and
// CI tracks it for regressions in synchronization overhead.
func BenchmarkMeshSerialVsParallel(b *testing.B) {
	for _, chains := range []int{4, 8} {
		b.Run(fmt.Sprintf("chains-%d", chains), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.MeshScale(experiments.Options{
					Seeds: 1, Windows: 2, Validators: 5, Rates: []int{3},
				}, []int{chains}, chains)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				if !row.FingerprintEqual {
					b.Fatal("parallel run diverged from serial")
				}
				b.ReportMetric(row.SerialWallSec*1e3, "serial-ms")
				b.ReportMetric(row.ParallelWallSec*1e3, "parallel-ms")
				b.ReportMetric(row.Speedup, "speedup")
			}
		})
	}
}
