// Chaos search: seeded randomized fault-timeline generation over a
// spec's declared fault space, hunting assertion violations. Every
// candidate is a full deterministic run, candidates fan out across the
// experiments.ParallelMap pool (each run can itself use -parallel
// workers), and the FIRST violating candidate by generation index — not
// completion order — wins, so a search with the same spec and seed
// always returns the same counterexample. A found violation is shrunk
// (shrink.go) to a minimal reproducing timeline and emitted as a
// committable spec.
package scenario

import (
	"fmt"
	"io"
	"time"

	"ibcbench/internal/experiments"
	"ibcbench/internal/sim"
)

// SearchOptions bounds one chaos search.
type SearchOptions struct {
	// Budget is the number of candidate timelines generated and run
	// (0 = 16).
	Budget int
	// Seed drives the timeline generator — independent of the spec's
	// run seed, which every candidate executes under (0 = 1).
	Seed int64
	// Workers bounds concurrent candidate runs (<= 0 = GOMAXPROCS).
	Workers int
	// ShrinkBudget bounds the extra runs spent minimizing a violation
	// (0 = 64).
	ShrinkBudget int
}

// Counterexample is one found violation, shrunk.
type Counterexample struct {
	// Candidate is the violating timeline's generation index.
	Candidate int `json:"candidate"`
	// Events is the original violating timeline (base spec chaos plus
	// generated faults).
	Events []EventSpec `json:"events"`
	// Violations are the verdicts of the original violating run.
	Violations []Violation `json:"violations"`
	// Minimal is the shrunk committable spec: the smallest event subset
	// that still violates, with the fault space stripped and the run
	// seed pinned — `ibcbench run -scenario <file>` replays it exactly.
	Minimal Spec `json:"minimal"`
	// MinimalViolations are the verdicts of the minimal spec's run.
	MinimalViolations []Violation `json:"minimalViolations"`
	// ShrinkRuns counts the runs the minimizer spent.
	ShrinkRuns int `json:"shrinkRuns"`
}

// SearchResult summarizes a search.
type SearchResult struct {
	Spec     string `json:"spec"`
	Seed     int64  `json:"seed"`
	Examined int    `json:"examined"`
	// Counterexample is nil when every candidate held.
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// faultSpace is a spec's FaultSpace with defaults resolved.
type faultSpace struct {
	kinds      []string
	edges      []int
	maxEvents  int
	horizon    time.Duration
	maxWindow  time.Duration
	maxLatency time.Duration
	maxDrop    float64
	unhealed   float64
}

// resolveFaults fills the fault-space defaults; the spec must declare
// one to be searchable.
func resolveFaults(s Spec) (faultSpace, error) {
	if s.Faults == nil {
		return faultSpace{}, fmt.Errorf("scenario %s: no fault space declared — add a \"faults\" block to search it", s.Name)
	}
	tp, err := s.topology()
	if err != nil {
		return faultSpace{}, err
	}
	f := s.Faults
	fs := faultSpace{
		kinds:      f.Kinds,
		edges:      f.Edges,
		maxEvents:  f.MaxEvents,
		horizon:    f.Horizon.D(),
		maxWindow:  f.MaxFaultWindow.D(),
		maxLatency: f.MaxExtraLatency.D(),
		maxDrop:    f.MaxExtraDrop,
		unhealed:   f.Unhealed,
	}
	if len(fs.kinds) == 0 {
		fs.kinds = []string{"partition", "latency-spike", "drop-burst", "relayer-pause"}
	}
	if len(fs.edges) == 0 {
		for i := range tp.Edges {
			fs.edges = append(fs.edges, i)
		}
	}
	if fs.maxEvents <= 0 {
		fs.maxEvents = 4
	}
	if fs.horizon <= 0 {
		fs.horizon = 60 * time.Second
	}
	if fs.maxWindow <= 0 {
		fs.maxWindow = 30 * time.Second
	}
	if fs.maxLatency <= 0 {
		fs.maxLatency = 400 * time.Millisecond
	}
	if fs.maxDrop <= 0 {
		fs.maxDrop = 0.5
	}
	return fs, nil
}

// generateTimeline draws one candidate fault timeline. All times are
// millisecond-quantized so emitted specs stay readable, and recovery
// events (heal, spike/burst clear, resume) pair each fault unless the
// unhealed probability leaves it open.
func generateTimeline(rng *sim.RNG, s Spec, fs faultSpace) []EventSpec {
	tp, _ := s.topology()
	var events []EventSpec
	n := 1 + rng.Intn(fs.maxEvents)
	for i := 0; i < n; i++ {
		kind := fs.kinds[rng.Intn(len(fs.kinds))]
		edge := fs.edges[rng.Intn(len(fs.edges))]
		at := time.Duration(1+rng.Int63n(int64(fs.horizon/time.Millisecond))) * time.Millisecond
		window := time.Duration(1+rng.Int63n(int64(fs.maxWindow/time.Millisecond))) * time.Millisecond
		recovers := rng.Float64() >= fs.unhealed
		switch kind {
		case "partition":
			relayer := -1
			if slots := s.edgeRelayerSlots(tp, edge); rng.Intn(2) == 0 {
				relayer = rng.Intn(slots)
			}
			events = append(events, EventSpec{At: Duration(at), Kind: "partition", Edge: edge, Relayer: intp(relayer)})
			if recovers {
				events = append(events, EventSpec{At: Duration(at + window), Kind: "heal", Edge: edge, Relayer: intp(relayer)})
			}
		case "latency-spike":
			extra := time.Duration(1+rng.Int63n(int64(fs.maxLatency/time.Millisecond))) * time.Millisecond
			events = append(events, EventSpec{At: Duration(at), Kind: "latency-spike", Edge: edge, ExtraLatency: Duration(extra)})
			if recovers {
				events = append(events, EventSpec{At: Duration(at + window), Kind: "latency-spike", Edge: edge})
			}
		case "drop-burst":
			// Quantized to 1% steps so emitted specs diff cleanly.
			drop := float64(1+rng.Intn(int(fs.maxDrop*100))) / 100
			events = append(events, EventSpec{At: Duration(at), Kind: "drop-burst", Edge: edge, ExtraDrop: drop})
			if recovers {
				events = append(events, EventSpec{At: Duration(at + window), Kind: "drop-burst", Edge: edge})
			}
		case "relayer-pause":
			relayer := rng.Intn(s.edgeRelayerSlots(tp, edge))
			events = append(events, EventSpec{At: Duration(at), Kind: "relayer-pause", Edge: edge, Relayer: intp(relayer)})
			if recovers {
				events = append(events, EventSpec{At: Duration(at + window), Kind: "relayer-resume", Edge: edge, Relayer: intp(relayer)})
			}
		}
	}
	return events
}

// runWith executes the spec with a replacement chaos timeline and
// reports the assertion verdicts.
func runWith(s Spec, events []EventSpec) ([]Violation, error) {
	s2 := s
	s2.Chaos = events
	s2.Faults = nil
	rep, err := Run(s2, 0)
	if err != nil {
		return nil, err
	}
	return rep.Violations, nil
}

// Search hunts the spec's fault space for assertion violations. Same
// spec + same options produce byte-identical results (the
// counterexample spec included): candidate timelines are generated
// up-front from one seeded RNG, runs are deterministic, and the winner
// is the first violating candidate by index regardless of which
// parallel worker finished first.
func Search(s Spec, opt SearchOptions) (*SearchResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fs, err := resolveFaults(s)
	if err != nil {
		return nil, err
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = 16
	}
	genSeed := opt.Seed
	if genSeed == 0 {
		genSeed = 1
	}
	rng := sim.NewRNG(genSeed)
	candidates := make([][]EventSpec, budget)
	for i := range candidates {
		candidates[i] = append(append([]EventSpec(nil), s.Chaos...), generateTimeline(rng, s, fs)...)
	}
	type verdict struct {
		violations []Violation
		err        error
	}
	verdicts := experiments.ParallelMap(candidates, opt.Workers, func(events []EventSpec) verdict {
		v, err := runWith(s, events)
		return verdict{violations: v, err: err}
	})
	out := &SearchResult{Spec: s.Name, Seed: genSeed, Examined: budget}
	for i, v := range verdicts {
		if v.err != nil {
			return nil, fmt.Errorf("scenario %s: candidate %d: %w", s.Name, i, v.err)
		}
		if len(v.violations) == 0 {
			continue
		}
		ce := &Counterexample{Candidate: i, Events: candidates[i], Violations: v.violations}
		minEvents, minViolations, runs, serr := shrink(s, candidates[i], opt.ShrinkBudget)
		if serr != nil {
			return nil, fmt.Errorf("scenario %s: shrinking candidate %d: %w", s.Name, i, serr)
		}
		ce.ShrinkRuns = runs
		ce.MinimalViolations = minViolations
		ce.Minimal = minimalSpec(s, minEvents)
		out.Counterexample = ce
		break
	}
	return out, nil
}

// minimalSpec freezes a shrunk timeline as a standalone regression
// spec: fault space stripped, run seed pinned, name suffixed.
func minimalSpec(s Spec, events []EventSpec) Spec {
	min := s
	min.Name = s.Name + "-counterexample"
	min.Chaos = events
	min.Faults = nil
	if min.Seed == 0 {
		min.Seed = 1
	}
	if len(min.Assertions) == 0 {
		min.Assertions = DefaultAssertions()
	}
	return min
}

// Render writes the human-readable search summary.
func (r *SearchResult) Render(w io.Writer) {
	if r.Counterexample == nil {
		fmt.Fprintf(w, "search %s (seed %d): %d candidate timeline(s), no violation found\n", r.Spec, r.Seed, r.Examined)
		return
	}
	ce := r.Counterexample
	fmt.Fprintf(w, "search %s (seed %d): candidate %d of %d violated\n", r.Spec, r.Seed, ce.Candidate+1, r.Examined)
	for _, v := range ce.Violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
	fmt.Fprintf(w, "shrunk %d event(s) -> %d in %d run(s); minimal timeline:\n",
		len(ce.Events), len(ce.Minimal.Chaos), ce.ShrinkRuns)
	for _, ev := range ce.Minimal.Chaos {
		fmt.Fprintf(w, "  at %-8v %s edge %d", ev.At, ev.Kind, ev.Edge)
		if ev.Relayer != nil {
			if *ev.Relayer < 0 {
				fmt.Fprintf(w, " (whole link)")
			} else {
				fmt.Fprintf(w, " (relayer %d)", *ev.Relayer)
			}
		}
		if ev.ExtraLatency > 0 {
			fmt.Fprintf(w, " +%v", ev.ExtraLatency)
		}
		if ev.ExtraDrop > 0 {
			fmt.Fprintf(w, " %.0f%%", 100*ev.ExtraDrop)
		}
		fmt.Fprintln(w)
	}
}
