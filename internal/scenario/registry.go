// The named-scenario registry: a library of built-in specs (builtin.go)
// plus anything the embedding program registers, runnable as a suite
// from the CLI (`ibcbench suite`) and lintable in CI (every registered
// spec must parse, encode, round-trip and compile).
package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one registered scenario.
type Entry struct {
	// Spec is the scenario itself; Spec.Name keys the registry.
	Spec Spec
	// Desc is the one-line catalogue description.
	Desc string
	// Short marks the spec cheap enough for smoke suites
	// (`ibcbench suite -short` and the CI suite step).
	Short bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{}
)

// Register adds a named scenario; duplicate names panic, as with
// flag.Var — registration happens at init time.
func Register(e Entry) {
	if err := e.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("scenario.Register(%q): %v", e.Spec.Name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Spec.Name]; dup {
		panic(fmt.Sprintf("scenario.Register(%q): duplicate name", e.Spec.Name))
	}
	registry[e.Spec.Name] = e
}

// Lookup fetches a registered scenario by name.
func Lookup(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists registered scenarios in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lint verifies one registered scenario the way CI's registry-lint step
// does: the spec validates, compiles, and survives an encode⇄parse
// round trip byte-identically.
func Lint(name string) error {
	e, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("scenario: unknown scenario %q", name)
	}
	if _, err := Compile(e.Spec); err != nil {
		return fmt.Errorf("scenario %q: compile: %w", name, err)
	}
	enc, err := Encode(e.Spec)
	if err != nil {
		return fmt.Errorf("scenario %q: encode: %w", name, err)
	}
	back, err := Parse(enc)
	if err != nil {
		return fmt.Errorf("scenario %q: re-parse: %w", name, err)
	}
	enc2, err := Encode(back)
	if err != nil {
		return fmt.Errorf("scenario %q: re-encode: %w", name, err)
	}
	if string(enc) != string(enc2) {
		return fmt.Errorf("scenario %q: encode⇄parse round trip is not canonical", name)
	}
	return nil
}
