// Package scenario is the declarative run description layer: one JSON
// spec covers topology, geo regions, deploy knobs, workload (per-edge
// rates + multi-hop routes), a chaos fault timeline, and the invariant
// assertions checked after the run — everything a `cmd/ibcbench` flag
// invocation or an examples/ program expresses in Go, as data.
//
// Specs round-trip: Parse(Encode(s)) == s, and Encode is canonical
// (stable field order, sorted maps, duration strings), so a spec file is
// diffable and a chaos-search counterexample commits as a regression
// test. Compile lowers a spec onto the existing topo/chaos/geo APIs
// without behavioural additions of its own — a spec equivalent to a flag
// invocation produces a byte-identical same-seed topo.Result.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"ibcbench/internal/topo"
)

// Duration is a time.Duration that marshals as its string form ("1m30s")
// so spec files stay human-readable. It accepts either a duration string
// or an integer nanosecond count when parsing.
type Duration time.Duration

// D converts to the stdlib type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the stdlib form.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings or nanosecond integers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// TopologySpec names the interchain graph: either a preset string
// understood by topo.ParseSpec ("two", "line:4", "hub:3", "mesh:3") or
// an explicit chain/edge list. Exactly one form must be used.
type TopologySpec struct {
	Preset string      `json:"preset,omitempty"`
	Chains []ChainSpec `json:"chains,omitempty"`
	Edges  []EdgeSpec  `json:"edges,omitempty"`
}

// ChainSpec is one explicit chain node.
type ChainSpec struct {
	// ID overrides the default "ibc-<index>" chain identifier.
	ID string `json:"id,omitempty"`
	// Validators overrides the validator-set size (0 = paper default).
	Validators int `json:"validators,omitempty"`
	// Region pins the chain into a named region of the geo model.
	Region string `json:"region,omitempty"`
}

// EdgeSpec is one explicit inter-chain link.
type EdgeSpec struct {
	A int `json:"a"`
	B int `json:"b"`
	// Relayers overrides the per-edge relayer count (0 = deploy default).
	Relayers int `json:"relayers,omitempty"`
	// Standby adds a passive standby relayer with failover supervision.
	Standby bool `json:"standby,omitempty"`
}

// DeploySpec carries the deploy knobs a spec can set; zero values defer
// to the topo.DeployConfig defaults.
type DeploySpec struct {
	Validators           int   `json:"validators,omitempty"`
	RelayersPerEdge      int   `json:"relayersPerEdge,omitempty"`
	Standby              bool  `json:"standby,omitempty"`
	FullProofs           bool  `json:"fullProofs,omitempty"`
	ClearIntervalBlocks  int64 `json:"clearIntervalBlocks,omitempty"`
	MaxMsgsPerTx         int   `json:"maxMsgsPerTx,omitempty"`
	FailoverDetectBlocks int   `json:"failoverDetectBlocks,omitempty"`
	ParallelWorkers      int   `json:"parallelWorkers,omitempty"`
}

// RouteSpec is one multi-hop transfer flow (topo.Route as data).
type RouteSpec struct {
	Path      []int `json:"path"`
	Transfers int   `json:"transfers"`
	Forwarded bool  `json:"forwarded,omitempty"`
	// TimeoutBlocks overrides the forward middleware's per-hop timeout
	// margin (Forwarded mode only; tiny values inject hop timeouts).
	TimeoutBlocks int64 `json:"timeoutBlocks,omitempty"`
}

// WorkloadSpec describes the constant-rate traffic and routes.
type WorkloadSpec struct {
	// Rate applies to every edge (requests/second, A->B). Zero means no
	// blanket rate; per-edge overrides below still apply.
	Rate int `json:"rate,omitempty"`
	// EdgeRates overrides single edges: "<edge index>" -> rate. A zero
	// rate removes the blanket rate from that edge.
	EdgeRates map[string]int `json:"edgeRates,omitempty"`
	// Windows is the number of constant-rate submission windows
	// (0 = the topo default of 10).
	Windows int `json:"windows,omitempty"`
	// Routes are multi-hop flows started at scenario begin.
	Routes []RouteSpec `json:"routes,omitempty"`
}

// EventSpec is one chaos timeline entry. Kind names match
// chaos.Kind.String(): partition, heal, latency-spike, drop-burst,
// relayer-pause, relayer-resume.
type EventSpec struct {
	At   Duration `json:"at"`
	Kind string   `json:"kind"`
	Edge int      `json:"edge"`
	// Relayer targets one relayer ordinal (the standby is the last). For
	// partition/heal, omitted or -1 severs the whole link; for
	// relayer-pause/resume, omitted means relayer 0.
	Relayer *int `json:"relayer,omitempty"`
	// ExtraLatency is the latency-spike magnitude (0 clears the spike).
	ExtraLatency Duration `json:"extraLatency,omitempty"`
	// ExtraDrop is the drop-burst loss probability (0 clears the burst).
	ExtraDrop float64 `json:"extraDrop,omitempty"`
}

// FaultSpace declares the randomized timeline space chaos search draws
// candidates from. Absent fields fall back to permissive defaults
// resolved at search time.
type FaultSpace struct {
	// Kinds restricts the fault types generated (fault names as in
	// EventSpec.Kind, recovery kinds implied). Empty = all fault kinds.
	Kinds []string `json:"kinds,omitempty"`
	// Edges restricts targeted edges. Empty = every edge.
	Edges []int `json:"edges,omitempty"`
	// MaxEvents bounds the fault count per candidate (recovery events
	// not counted). 0 = 4.
	MaxEvents int `json:"maxEvents,omitempty"`
	// Horizon bounds fault injection times to [0, Horizon]. 0 = 60s.
	Horizon Duration `json:"horizon,omitempty"`
	// MaxFaultWindow bounds the duration between a fault and its paired
	// recovery event. 0 = 30s.
	MaxFaultWindow Duration `json:"maxFaultWindow,omitempty"`
	// MaxExtraLatency bounds latency-spike magnitudes. 0 = 400ms.
	MaxExtraLatency Duration `json:"maxExtraLatency,omitempty"`
	// MaxExtraDrop bounds drop-burst probabilities. 0 = 0.5.
	MaxExtraDrop float64 `json:"maxExtraDrop,omitempty"`
	// Unhealed is the probability a generated fault is left open — no
	// recovery event — planting permanent partitions and crashed
	// relayers. 0 = every fault recovers.
	Unhealed float64 `json:"unhealed,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
	// Regions selects a geo model by spec string ("3wan", "hubspoke:4",
	// "uniform:3"); empty or "none" = no geo model.
	Regions  string       `json:"regions,omitempty"`
	Deploy   DeploySpec   `json:"deploy"`
	Workload WorkloadSpec `json:"workload"`
	Chaos    []EventSpec  `json:"chaos,omitempty"`
	// Assertions names the invariants checked after the run; empty means
	// the full default set (see DefaultAssertions).
	Assertions []string `json:"assertions,omitempty"`
	// Faults declares the chaos-search space (nil = spec not searchable).
	Faults *FaultSpace `json:"faults,omitempty"`
	// Seed is the default run seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Until fixes the virtual deadline (0 = derived from the workload).
	Until Duration `json:"until,omitempty"`
	// SettleBlocks extends the derived deadline by that many block
	// intervals so refunds and backlog clearing quiesce before the
	// assertions run. Ignored when Until is set.
	SettleBlocks int `json:"settleBlocks,omitempty"`
	// RecordCurves includes per-edge cleared-backlog curves in results.
	RecordCurves bool `json:"recordCurves,omitempty"`
}

// Parse decodes a spec strictly (unknown fields are errors — typos in a
// committed spec must not silently change the run) and validates it.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	// Trailing content after the document is a malformed file.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: parse: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Encode renders the canonical byte form: two-space indent, stable field
// order (struct order), sorted maps, trailing newline. Parse(Encode(s))
// round-trips, and byte-identical specs mean byte-identical runs.
func Encode(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DefaultAssertions is the invariant set checked when a spec names none.
func DefaultAssertions() []string {
	return []string{AssertConservation, AssertNoStuckPackets, AssertTimeoutRefunds}
}

// eventKinds maps spec kind names onto chaos kinds (chaos.Kind.String()
// is the inverse).
var eventKinds = map[string]int{
	"partition":      1, // chaos.PartitionLink
	"heal":           2, // chaos.HealLink
	"latency-spike":  3, // chaos.LatencySpike
	"drop-burst":     4, // chaos.DropBurst
	"relayer-pause":  5, // chaos.RelayerPause
	"relayer-resume": 6, // chaos.RelayerResume
}

// Validate checks everything checkable without deploying: topology
// well-formedness, region spec, route paths, chaos event targets against
// the per-edge relayer counts the deploy will produce, assertion names,
// and fault-space sanity. Compile re-runs it, so a spec that validates
// compiles.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	tp, err := s.topology()
	if err != nil {
		return err
	}
	if _, err := parseGeo(s.Regions); err != nil {
		return err
	}
	for edge := range s.Workload.EdgeRates {
		i, err := strconv.Atoi(edge)
		if err != nil {
			return fmt.Errorf("scenario: edgeRates key %q is not an edge index", edge)
		}
		if i < 0 || i >= len(tp.Edges) {
			return fmt.Errorf("scenario: edgeRates targets edge %d of %d", i, len(tp.Edges))
		}
		if s.Workload.EdgeRates[edge] < 0 {
			return fmt.Errorf("scenario: edge %d has negative rate", i)
		}
	}
	if s.Workload.Rate < 0 {
		return fmt.Errorf("scenario: negative workload rate %d", s.Workload.Rate)
	}
	for i, rt := range s.Workload.Routes {
		if len(rt.Path) < 2 {
			return fmt.Errorf("scenario: route %d path %v too short", i, rt.Path)
		}
		if rt.Transfers <= 0 {
			return fmt.Errorf("scenario: route %d has no transfers", i)
		}
		for h := 0; h+1 < len(rt.Path); h++ {
			if _, ok := tp.EdgeBetween(rt.Path[h], rt.Path[h+1]); !ok {
				return fmt.Errorf("scenario: route %d hops %d->%d without an edge", i, rt.Path[h], rt.Path[h+1])
			}
		}
	}
	for i, ev := range s.Chaos {
		if err := s.validateEvent(i, ev, tp); err != nil {
			return err
		}
	}
	for _, name := range s.Assertions {
		if !knownAssertion(name) {
			return fmt.Errorf("scenario: unknown assertion %q (have %v)", name, DefaultAssertions())
		}
	}
	if s.Faults != nil {
		if err := s.validateFaults(tp); err != nil {
			return err
		}
	}
	if s.Seed < 0 {
		return fmt.Errorf("scenario: negative seed %d", s.Seed)
	}
	return nil
}

func (s Spec) validateEvent(i int, ev EventSpec, tp topo.Topology) error {
	if ev.At < 0 {
		return fmt.Errorf("scenario: chaos event %d at negative time %v", i, ev.At)
	}
	if _, ok := eventKinds[ev.Kind]; !ok {
		return fmt.Errorf("scenario: chaos event %d has unknown kind %q", i, ev.Kind)
	}
	if ev.Edge < 0 || ev.Edge >= len(tp.Edges) {
		return fmt.Errorf("scenario: chaos event %d targets edge %d of %d", i, ev.Edge, len(tp.Edges))
	}
	n := s.edgeRelayerSlots(tp, ev.Edge)
	switch ev.Kind {
	case "partition", "heal":
		if ev.Relayer != nil && *ev.Relayer >= n {
			return fmt.Errorf("scenario: chaos event %d targets relayer %d of %d on edge %d", i, *ev.Relayer, n, ev.Edge)
		}
	case "relayer-pause", "relayer-resume":
		if ev.Relayer != nil && (*ev.Relayer < 0 || *ev.Relayer >= n) {
			return fmt.Errorf("scenario: chaos event %d targets relayer %d of %d on edge %d", i, *ev.Relayer, n, ev.Edge)
		}
	case "latency-spike":
		if ev.ExtraLatency < 0 {
			return fmt.Errorf("scenario: chaos event %d has negative latency spike", i)
		}
	case "drop-burst":
		if ev.ExtraDrop < 0 || ev.ExtraDrop > 1 {
			return fmt.Errorf("scenario: chaos event %d drop burst %.3f outside [0,1]", i, ev.ExtraDrop)
		}
	}
	return nil
}

func (s Spec) validateFaults(tp topo.Topology) error {
	f := s.Faults
	for _, k := range f.Kinds {
		if _, ok := eventKinds[k]; !ok {
			return fmt.Errorf("scenario: fault space names unknown kind %q", k)
		}
		if k == "heal" || k == "relayer-resume" {
			return fmt.Errorf("scenario: fault space lists recovery kind %q (recoveries are generated, not drawn)", k)
		}
	}
	for _, e := range f.Edges {
		if e < 0 || e >= len(tp.Edges) {
			return fmt.Errorf("scenario: fault space targets edge %d of %d", e, len(tp.Edges))
		}
	}
	if f.MaxEvents < 0 {
		return fmt.Errorf("scenario: fault space maxEvents %d negative", f.MaxEvents)
	}
	if f.Horizon < 0 || f.MaxFaultWindow < 0 || f.MaxExtraLatency < 0 {
		return fmt.Errorf("scenario: fault space has a negative duration bound")
	}
	if f.MaxExtraDrop < 0 || f.MaxExtraDrop > 1 {
		return fmt.Errorf("scenario: fault space maxExtraDrop %.3f outside [0,1]", f.MaxExtraDrop)
	}
	if f.Unhealed < 0 || f.Unhealed > 1 {
		return fmt.Errorf("scenario: fault space unhealed %.3f outside [0,1]", f.Unhealed)
	}
	return nil
}

// edgeRelayerSlots mirrors the deploy wiring: per-edge override or
// deploy default (min 1), plus one standby slot when enabled.
func (s Spec) edgeRelayerSlots(tp topo.Topology, edge int) int {
	n := tp.Edges[edge].Relayers
	if n <= 0 {
		n = s.Deploy.RelayersPerEdge
	}
	if n <= 0 {
		n = 1
	}
	if s.Deploy.Standby || tp.Edges[edge].Standby {
		n++
	}
	return n
}

// sortedEdgeKeys returns EdgeRates keys in numeric order; callers have
// validated that every key parses.
func sortedEdgeKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, _ := strconv.Atoi(keys[i])
		b, _ := strconv.Atoi(keys[j])
		return a < b
	})
	return keys
}
