package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestGoldenRoundTrip pins the canonical encoding: every golden file
// parses, and re-encoding reproduces the file byte for byte. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/scenario -run Golden.
func TestGoldenRoundTrip(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden specs found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(data)
			if err != nil {
				t.Fatalf("parse %s: %v", file, err)
			}
			enc, err := Encode(spec)
			if err != nil {
				t.Fatalf("encode %s: %v", file, err)
			}
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(file, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			if string(enc) != string(data) {
				t.Errorf("%s is not canonical:\n--- file ---\n%s\n--- encode ---\n%s", file, data, enc)
			}
			if _, err := Compile(spec); err != nil {
				t.Errorf("compile %s: %v", file, err)
			}
		})
	}
}

// TestExampleSpecsCompile keeps the committed examples/scenarios files
// working: each parses, compiles and is canonical.
func TestExampleSpecsCompile(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(data)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		if _, err := Compile(spec); err != nil {
			t.Fatalf("compile %s: %v", file, err)
		}
		enc, err := Encode(spec)
		if err != nil {
			t.Fatal(err)
		}
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(file, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if string(enc) != string(data) {
			t.Errorf("%s is not canonical (run UPDATE_GOLDEN on it)", file)
		}
	}
}

func TestDurationForms(t *testing.T) {
	spec := `{"name":"d","topology":{"preset":"two"},"deploy":{},"workload":{"rate":1},"until":"1m30s","chaos":[{"at":150000000,"kind":"latency-spike","edge":0,"extraLatency":"20ms"}]}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Until.D() != 90*time.Second {
		t.Errorf("until = %v", s.Until)
	}
	if s.Chaos[0].At.D() != 150*time.Millisecond || s.Chaos[0].ExtraLatency.D() != 20*time.Millisecond {
		t.Errorf("event times = %v / %v", s.Chaos[0].At, s.Chaos[0].ExtraLatency)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"bogus":1}`,
		"missing name":      `{"topology":{"preset":"two"},"deploy":{},"workload":{}}`,
		"bad preset":        `{"name":"x","topology":{"preset":"ring:9"},"deploy":{},"workload":{}}`,
		"preset and chains": `{"name":"x","topology":{"preset":"two","chains":[{},{}]},"deploy":{},"workload":{}}`,
		"bad kind":          `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"chaos":[{"at":"1s","kind":"meteor","edge":0}]}`,
		"edge out of range": `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"chaos":[{"at":"1s","kind":"partition","edge":3}]}`,
		"relayer ordinal":   `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"chaos":[{"at":"1s","kind":"relayer-pause","edge":0,"relayer":5}]}`,
		"route off-graph":   `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{"routes":[{"path":[0,2],"transfers":1}]}}`,
		"bad assertion":     `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"assertions":["no-bugs"]}`,
		"bad edgeRates key": `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{"edgeRates":{"a":1}}}`,
		"recovery in space": `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{},"faults":{"kinds":["heal"]}}`,
		"trailing garbage":  `{"name":"x","topology":{"preset":"two"},"deploy":{},"workload":{}} {"x":1}`,
	}
	for name, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: parse accepted %s", name, raw)
		}
	}
}

// TestRelayerResolution pins the optional-relayer lowering conventions.
func TestRelayerResolution(t *testing.T) {
	s, err := Parse([]byte(`{"name":"x","topology":{"preset":"two"},"deploy":{"relayersPerEdge":2},"workload":{"rate":1},"chaos":[
		{"at":"1s","kind":"partition","edge":0},
		{"at":"2s","kind":"partition","edge":0,"relayer":1},
		{"at":"3s","kind":"relayer-pause","edge":0}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Chaos.Events[0].Relayer; got != -1 {
		t.Errorf("bare partition relayer = %d, want -1 (whole link)", got)
	}
	if got := sc.Chaos.Events[1].Relayer; got != 1 {
		t.Errorf("explicit partition relayer = %d, want 1", got)
	}
	if got := sc.Chaos.Events[2].Relayer; got != 0 {
		t.Errorf("bare pause relayer = %d, want 0", got)
	}
}

// TestEdgeRateCompile pins blanket + override + removal semantics.
func TestEdgeRateCompile(t *testing.T) {
	s, err := Parse([]byte(`{"name":"x","topology":{"preset":"hub:3"},"deploy":{},"workload":{"rate":4,"edgeRates":{"1":9,"2":0}}}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 4, 1: 9}
	if len(sc.EdgeRates) != len(want) {
		t.Fatalf("EdgeRates = %v, want %v", sc.EdgeRates, want)
	}
	for k, v := range want {
		if sc.EdgeRates[k] != v {
			t.Errorf("EdgeRates[%d] = %d, want %d", k, sc.EdgeRates[k], v)
		}
	}
}

// TestExplicitTopology compiles a hand-built graph with regions and
// per-edge relayer overrides.
func TestExplicitTopology(t *testing.T) {
	raw := `{"name":"custom","topology":{"chains":[{"id":"alpha","region":"eu-west"},{"validators":7}],"edges":[{"a":0,"b":1,"relayers":2,"standby":true}]},"regions":"3wan","deploy":{},"workload":{"rate":1}}`
	s, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology.Chains[0].ID != "alpha" || sc.Topology.Chains[1].Validators != 7 {
		t.Errorf("chains = %+v", sc.Topology.Chains)
	}
	if sc.Topology.Edges[0].Relayers != 2 || !sc.Topology.Edges[0].Standby {
		t.Errorf("edges = %+v", sc.Topology.Edges)
	}
	if !strings.Contains(string(mustEncode(t, s)), `"region": "eu-west"`) {
		t.Error("region lost in encoding")
	}
}

func mustEncode(t *testing.T, s Spec) []byte {
	t.Helper()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
