// The invariant assertion engine: read-only checks over a quiescent
// deployment after a scenario run. Three invariants from the paper's
// safety surface are built in — voucher supply conservation across all
// zones, no permanently-stuck packets, and every elapsed timeout
// refunded — and chaos search hunts fault timelines that break them.
//
// All checks are state-based rather than event-based: a packet
// commitment is deleted on both acknowledgement and timeout refund, so
// a commitment remaining after the deadline is the definition of a
// stuck packet, and the escrow account balance on the counterparty
// chain is the definition of a voucher denom's backing.
package scenario

import (
	"fmt"
	"sort"

	"ibcbench/internal/chain"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/denom"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/topo"
)

// Assertion names a spec can list; an empty list means all of them.
const (
	// AssertConservation: on every chain, the supply of every voucher
	// denom is backed by exactly that many inner-denom tokens escrowed on
	// the upstream counterparty. Supply exceeding escrow is always a
	// violation (vouchers out of thin air); escrow exceeding supply is a
	// violation once the deployment is quiescent (tokens locked forever).
	AssertConservation = "token-conservation"
	// AssertNoStuckPackets: every packet sent during the run settled —
	// its source-chain commitment was deleted by an acknowledgement or a
	// timeout refund before the deadline.
	AssertNoStuckPackets = "no-stuck-packets"
	// AssertTimeoutRefunds: every packet whose timeout elapsed without a
	// destination receipt was refunded (commitment gone). A violation
	// means escrowed or burned tokens were never returned to the sender.
	AssertTimeoutRefunds = "timeout-refunds"
)

func knownAssertion(name string) bool {
	switch name {
	case AssertConservation, AssertNoStuckPackets, AssertTimeoutRefunds:
		return true
	}
	return false
}

// Violation is one failed invariant instance.
type Violation struct {
	Assertion string `json:"assertion"`
	// Chain anchors the violation (the voucher chain for conservation,
	// the packet source for stuck/timeout).
	Chain  string `json:"chain"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s", v.Assertion, v.Chain, v.Detail)
}

// Check runs the named assertions (nil = DefaultAssertions) over a
// finished deployment and returns every violation in deterministic
// order: packet checks first in chain/send order, then conservation in
// chain/denom order.
func Check(d *topo.Deployment, names []string) []Violation {
	if len(names) == 0 {
		names = DefaultAssertions()
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	sides := linkSides(d)
	packets := collectSent(d)
	var out []Violation
	stuck := 0
	for _, sp := range packets {
		v, isStuck := classify(sp, sides)
		if isStuck {
			stuck++
		}
		if v != nil && want[v.Assertion] {
			out = append(out, *v)
		}
	}
	if want[AssertConservation] {
		out = append(out, checkConservation(d, sides, stuck == 0)...)
	}
	return out
}

// linkSide resolves one (chain, channel) endpoint to its counterparty.
type linkSide struct {
	counterparty *chain.Chain
	// counterpartyChannel is the channel id of the same link on the
	// counterparty chain — where the escrow backing this side's vouchers
	// lives.
	counterpartyChannel string
}

// linkSides indexes every deployed channel endpoint. Channel ids are
// per-chain ordinals, so (chain ID, channel) is unique.
func linkSides(d *topo.Deployment) map[string]linkSide {
	sides := make(map[string]linkSide, 2*len(d.Links))
	for _, l := range d.Links {
		p := l.Pair
		sides[p.A.ID+"/"+p.ChannelAB] = linkSide{counterparty: p.B, counterpartyChannel: p.ChannelBA}
		sides[p.B.ID+"/"+p.ChannelBA] = linkSide{counterparty: p.A, counterpartyChannel: p.ChannelAB}
	}
	return sides
}

// sentPacket is one send_packet occurrence with its source chain.
type sentPacket struct {
	src *chain.Chain
	p   ibc.Packet
}

// collectSent walks every chain's event index in block order and
// returns all packets sent during the run — workload transfers, route
// legs, and middleware-emitted forward hops alike.
func collectSent(d *topo.Deployment) []sentPacket {
	var out []sentPacket
	for _, c := range d.Chains {
		for h := int64(1); h <= c.Events.Height(); h++ {
			be := c.Events.At(h)
			if be == nil {
				continue
			}
			for _, te := range be.Txs {
				channels := make([]string, 0, len(te.Sends))
				for ch := range te.Sends {
					channels = append(channels, ch)
				}
				sort.Strings(channels)
				for _, ch := range channels {
					for _, p := range te.Sends[ch] {
						out = append(out, sentPacket{src: c, p: p})
					}
				}
			}
		}
	}
	return out
}

// classify checks one sent packet's settlement. It returns a violation
// (or nil) plus whether the packet is stuck — its commitment survived
// to the deadline — which feeds the conservation quiescence test.
func classify(sp sentPacket, sides map[string]linkSide) (*Violation, bool) {
	p := sp.p
	key := ibc.PacketCommitmentKey(p.SourcePort, p.SourceChannel, p.Sequence)
	if !sp.src.App.State().Has(key) {
		return nil, false // acked or refunded — settled either way
	}
	side, ok := sides[sp.src.ID+"/"+p.SourceChannel]
	if !ok {
		return &Violation{
			Assertion: AssertNoStuckPackets,
			Chain:     sp.src.ID,
			Detail:    fmt.Sprintf("packet %s/%s#%d sent on unknown channel", p.SourcePort, p.SourceChannel, p.Sequence),
		}, true
	}
	dst := side.counterparty
	received := dst.App.State().Has(ibc.PacketReceiptKey(p.DestPort, p.DestChannel, p.Sequence))
	if !received && timeoutElapsed(p, dst) {
		return &Violation{
			Assertion: AssertTimeoutRefunds,
			Chain:     sp.src.ID,
			Detail: fmt.Sprintf("packet %s/%s#%d timed out (height %d/time %v elapsed on %s) but was never refunded",
				p.SourcePort, p.SourceChannel, p.Sequence, p.TimeoutHeight, p.TimeoutTimestamp, dst.ID),
		}, true
	}
	state := "in flight (no receipt on " + dst.ID + ")"
	if received {
		state = "received on " + dst.ID + " but its ack never settled"
	}
	return &Violation{
		Assertion: AssertNoStuckPackets,
		Chain:     sp.src.ID,
		Detail: fmt.Sprintf("packet %s/%s#%d stuck at deadline: %s",
			p.SourcePort, p.SourceChannel, p.Sequence, state),
	}, true
}

// timeoutElapsed reports whether the packet's timeout passed on the
// destination chain — the condition under which a relayer could prove
// the timeout and trigger the refund.
func timeoutElapsed(p ibc.Packet, dst *chain.Chain) bool {
	if p.TimeoutHeight > 0 && dst.Store.Height() >= p.TimeoutHeight {
		return true
	}
	if p.TimeoutTimestamp > 0 {
		if be := dst.Events.At(dst.Events.Height()); be != nil && be.BlockTime >= p.TimeoutTimestamp {
			return true
		}
	}
	return false
}

// checkConservation verifies every voucher denom's backing. quiescent
// marks that no packet is in flight, so supply and escrow must agree
// exactly; with traffic still stuck mid-link only over-minting (supply
// above escrow) is provably wrong.
func checkConservation(d *topo.Deployment, sides map[string]linkSide, quiescent bool) []Violation {
	var out []Violation
	const supplyPrefix = "supply/"
	for _, c := range d.Chains {
		c.App.State().RangePrefix(supplyPrefix, func(key string, _ []byte) bool {
			dn := key[len(supplyPrefix):]
			trace := denom.Parse(dn)
			if trace.IsNative() {
				// Native supply is not conserved by construction: account
				// bootstrap mints balances on first use.
				return true
			}
			supply := c.App.Bank().Supply(dn)
			hop := trace.Hops[0]
			side, ok := sides[c.ID+"/"+hop.Channel]
			if !ok {
				out = append(out, Violation{
					Assertion: AssertConservation,
					Chain:     c.ID,
					Detail:    fmt.Sprintf("voucher %s references unknown channel %s (supply %d)", dn, hop.Channel, supply),
				})
				return true
			}
			inner := denom.Trace{Hops: trace.Hops[1:], Base: trace.Base}.String()
			escrow := side.counterparty.App.Bank().Balance(
				transfer.EscrowAccount(hop.Port, side.counterpartyChannel), inner)
			switch {
			case supply > escrow:
				out = append(out, Violation{
					Assertion: AssertConservation,
					Chain:     c.ID,
					Detail: fmt.Sprintf("voucher %s supply %d exceeds the %d escrowed as %s on %s",
						dn, supply, escrow, inner, side.counterparty.ID),
				})
			case quiescent && escrow > supply:
				out = append(out, Violation{
					Assertion: AssertConservation,
					Chain:     c.ID,
					Detail: fmt.Sprintf("quiescent but %d %s stay escrowed on %s against a voucher supply of only %d %s",
						escrow, inner, side.counterparty.ID, supply, dn),
				})
			}
			return true
		})
	}
	return out
}
