// Shrinking: greedy deterministic minimization of a violating fault
// timeline. The algorithm is ddmin-flavoured but intentionally simple —
// try removing each event in index order, keep any removal after which
// some assertion still fails, loop to fixpoint — because every probe is
// a full simulation run; the budget caps total runs. Removals are
// always safe to try: heals, spike clears and resumes are balance-only
// no-ops when their fault was removed first, so any event subset is a
// valid timeline.
package scenario

// shrink minimizes events against the spec, returning the minimal
// timeline, the violations of its final verifying run, and the number
// of runs spent. budget <= 0 defaults to 64. The input timeline is
// known-violating, so shrink never returns an empty non-violating
// result: a removal is only kept when the violation persists.
func shrink(s Spec, events []EventSpec, budget int) ([]EventSpec, []Violation, int, error) {
	if budget <= 0 {
		budget = 64
	}
	cur := append([]EventSpec(nil), events...)
	// The caller observed the violation on the full timeline; re-derive
	// its verdicts only when we never manage a successful removal.
	var curViolations []Violation
	runs := 0
	improved := true
	for improved && runs < budget {
		improved = false
		for i := 0; i < len(cur) && runs < budget; i++ {
			trial := make([]EventSpec, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			v, err := runWith(s, trial)
			runs++
			if err != nil {
				return nil, nil, runs, err
			}
			if len(v) == 0 {
				continue // event i is load-bearing; keep it
			}
			cur, curViolations = trial, v
			improved = true
			i-- // the next event shifted into slot i
		}
	}
	if curViolations == nil {
		// No removal ever succeeded — verify the original once so the
		// reported minimal verdicts come from the emitted timeline.
		v, err := runWith(s, cur)
		runs++
		if err != nil {
			return nil, nil, runs, err
		}
		curViolations = v
	}
	return cur, curViolations, runs, nil
}
