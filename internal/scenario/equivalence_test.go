package scenario

import (
	"encoding/json"
	"testing"

	"ibcbench/internal/experiments"
)

// TestCompileMatchesFlagInvocation is the api_redesign acceptance gate:
// a spec equivalent to `ibcbench -experiment topo -topology hub:3
// -rate 3 -windows 2` produces a byte-identical same-seed topo.Result
// to the scenario the flag path builds via BuildTopologyScenario.
func TestCompileMatchesFlagInvocation(t *testing.T) {
	const seed = 301 // the sweep's formula: 100*rate + seedIndex
	flagScenario, err := experiments.BuildTopologyScenario(
		experiments.Options{Windows: 2}, "hub:3", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flagScenario.Run(seed)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := Parse([]byte(`{
		"name": "hub:3",
		"topology": {"preset": "hub:3"},
		"deploy": {},
		"workload": {
			"rate": 3,
			"windows": 2,
			"routes": [{"path": [1, 0, 2], "transfers": 3}]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, seed)
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(rep.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("spec run diverged from flag invocation:\nflag: %s\nspec: %s", wantJSON, gotJSON)
	}
	// The flag invocation is a healthy run — the assertion pass must
	// agree without perturbing the result bytes (checked above).
	if !rep.Passed() {
		t.Errorf("assertions failed on the flag-equivalent run: %v", rep.Violations)
	}
}
