// Built-in named scenarios: the spec-file equivalents of today's
// experiment entrypoints and examples/ programs, registered at init so
// `ibcbench suite` runs them and CI lints them. Each one is also a
// living sample of the DSL — `ibcbench run -name <x> -print` dumps the
// canonical spec text.
package scenario

import "time"

func intp(i int) *int { return &i }

func init() {
	// The paper's minimal testbed (examples/quickstart): two chains, one
	// relayer, a trickle of transfers.
	Register(Entry{
		Desc:  "two chains, one relayer, one window of transfers",
		Short: true,
		Spec: Spec{
			Name:     "quickstart",
			Topology: TopologySpec{Preset: "two"},
			Workload: WorkloadSpec{Rate: 1, Windows: 1},
			Seed:     1,
		},
	})

	// The CI topology smoke (`-experiment topo -topology hub:3 -rate 5
	// -windows 3`), demo route included.
	Register(Entry{
		Desc:  "hub:3 sweep workload, 5 rps per edge plus the demo route",
		Short: true,
		Spec: Spec{
			Name:     "hub",
			Topology: TopologySpec{Preset: "hub:3"},
			Workload: WorkloadSpec{
				Rate:    5,
				Windows: 3,
				Routes:  []RouteSpec{{Path: []int{1, 0, 2}, Transfers: 5}},
			},
			Seed: 500,
		},
	})

	// Full mesh under uniform load (`-experiment topo -topology mesh:3`).
	Register(Entry{
		Desc: "mesh:3 under 4 rps on every edge",
		Spec: Spec{
			Name:     "mesh",
			Topology: TopologySpec{Preset: "mesh:3"},
			Workload: WorkloadSpec{Rate: 4, Windows: 4},
			Seed:     400,
		},
	})

	// examples/pfmroute: one multi-hop route in both modes across a
	// 3-chain line — sequential legs vs packet-forward middleware.
	Register(Entry{
		Desc:  "line:3 route comparison, sequential legs vs packet forwarding",
		Short: true,
		Spec: Spec{
			Name:     "pfmroute",
			Topology: TopologySpec{Preset: "line:3"},
			Workload: WorkloadSpec{Routes: []RouteSpec{
				{Path: []int{0, 1, 2}, Transfers: 4},
				{Path: []int{0, 1, 2}, Transfers: 4, Forwarded: true},
			}},
			Seed: 1,
		},
	})

	// examples/failover: geo-distributed hub, standby relayers, a
	// mid-run relayer blackout plus a latency spike, healed before the
	// deadline. Declares a fault space so it doubles as the default
	// chaos-search demo.
	Register(Entry{
		Desc: "geo hub with standby relayers under partition + latency chaos",
		Spec: Spec{
			Name:     "failover",
			Topology: TopologySpec{Preset: "hub:2"},
			Regions:  "3wan",
			Deploy:   DeploySpec{Standby: true},
			Workload: WorkloadSpec{Rate: 3, Windows: 4},
			Chaos: []EventSpec{
				{At: Duration(12 * time.Second), Kind: "partition", Edge: 0, Relayer: intp(0)},
				{At: Duration(30 * time.Second), Kind: "latency-spike", Edge: 1, ExtraLatency: Duration(100 * time.Millisecond)},
				{At: Duration(90 * time.Second), Kind: "latency-spike", Edge: 1},
				{At: Duration(3 * time.Minute), Kind: "heal", Edge: 0, Relayer: intp(0)},
			},
			Faults: &FaultSpace{
				Kinds:          []string{"partition", "latency-spike", "relayer-pause"},
				MaxEvents:      3,
				Horizon:        Duration(45 * time.Second),
				MaxFaultWindow: Duration(40 * time.Second),
			},
			Seed:  42,
			Until: Duration(6 * time.Minute),
		},
	})

	// Hop-timeout unwinding: a forwarded route with a one-block timeout
	// margin forces mid-route timeouts; the refund invariant must still
	// hold once everything settles.
	Register(Entry{
		Desc: "forwarded route under a tiny hop-timeout margin (refund unwinding)",
		Spec: Spec{
			Name:     "timeoutstorm",
			Topology: TopologySpec{Preset: "line:3"},
			Workload: WorkloadSpec{Routes: []RouteSpec{
				{Path: []int{0, 1, 2}, Transfers: 3, Forwarded: true, TimeoutBlocks: 1},
			}},
			Seed:         7,
			SettleBlocks: 24,
		},
	})
}
