package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestStuckPacketsDetected plants a permanent whole-link partition
// under live traffic: commitments survive to the deadline and the
// stuck-packet invariant must fire (the planted-violation mechanism the
// chaos-search fixture relies on).
func TestStuckPacketsDetected(t *testing.T) {
	spec := Spec{
		Name:     "stuck",
		Topology: TopologySpec{Preset: "two"},
		Workload: WorkloadSpec{Rate: 1, Windows: 1},
		Chaos: []EventSpec{
			{At: Duration(500 * time.Millisecond), Kind: "partition", Edge: 0},
		},
		Seed:  5,
		Until: Duration(90 * time.Second),
	}
	rep, err := Run(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("permanent partition produced no violations")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Assertion == AssertNoStuckPackets {
			found = true
			if !strings.Contains(v.Detail, "stuck at deadline") {
				t.Errorf("unexpected detail: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no %s violation among %v", AssertNoStuckPackets, rep.Violations)
	}
}

// TestCleanRunHoldsAllAssertions: an unfaulted two-chain run settles
// every packet and conserves voucher supply.
func TestCleanRunHoldsAllAssertions(t *testing.T) {
	spec := Spec{
		Name:     "clean",
		Topology: TopologySpec{Preset: "two"},
		Workload: WorkloadSpec{Rate: 2, Windows: 1},
		Seed:     11,
	}
	rep, err := Run(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation on clean run: %s", v)
	}
	if len(rep.Assertions) != len(DefaultAssertions()) {
		t.Errorf("default assertion set not resolved: %v", rep.Assertions)
	}
}

// TestTimeoutRefundsHold: the timeoutstorm builtin forces mid-route hop
// timeouts; once quiescent, every refund must have unwound (and the
// conservation invariant must survive the unwinding).
func TestTimeoutRefundsHold(t *testing.T) {
	e, ok := Lookup("timeoutstorm")
	if !ok {
		t.Fatal("timeoutstorm builtin missing")
	}
	rep, err := Run(e.Spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestConservationSeesVouchers: after a forwarded multi-hop run the
// final chain holds nested vouchers; the conservation walk must resolve
// their traces through both links without reporting violations (a
// mis-mapped counterparty channel would flag every voucher).
func TestConservationSeesVouchers(t *testing.T) {
	e, ok := Lookup("pfmroute")
	if !ok {
		t.Fatal("pfmroute builtin missing")
	}
	rep, err := Run(e.Spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Result.RoutesCompleted != 2 {
		t.Errorf("routes completed = %d, want 2", rep.Result.RoutesCompleted)
	}
}
