package scenario

import (
	"strings"
	"testing"

	"ibcbench/internal/metrics"
)

// TestRegistryLint is the CI registry-lint gate in miniature: every
// registered scenario validates, compiles, and encodes canonically.
func TestRegistryLint(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected the built-in library, got %v", names)
	}
	for _, name := range names {
		if err := Lint(name); err != nil {
			t.Errorf("lint %s: %v", name, err)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Entry{Spec: Spec{Name: "quickstart", Topology: TopologySpec{Preset: "two"}}})
}

// TestShortBuiltinsHoldAssertions runs every Short builtin end to end:
// the run succeeds, traffic completes, and all default assertions hold.
// This is what `ibcbench suite -short` executes.
func TestShortBuiltinsHoldAssertions(t *testing.T) {
	ran := 0
	for _, name := range Names() {
		e, _ := Lookup(name)
		if !e.Short {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			rep, err := Run(e.Spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed() {
				for _, v := range rep.Violations {
					t.Errorf("violation: %s", v)
				}
			}
			total := rep.Result.Total[metrics.StatusCompleted] + rep.Result.RoutesCompleted
			if total == 0 {
				t.Error("builtin completed no traffic")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no Short builtins registered")
	}
}

// TestBuiltinSpecsAreSelfDescribing: the catalogue renders something
// usable for CLI help.
func TestBuiltinDescriptions(t *testing.T) {
	for _, name := range Names() {
		e, _ := Lookup(name)
		if strings.TrimSpace(e.Desc) == "" {
			t.Errorf("builtin %s has no description", name)
		}
	}
}
