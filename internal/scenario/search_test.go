package scenario

import (
	"encoding/json"
	"os"
	"testing"
)

func plantedSpec(t *testing.T) Spec {
	t.Helper()
	data, err := os.ReadFile("testdata/planted.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSearchFindsPlantedViolation: the planted fixture's fault space
// only generates unhealed partitions, so a bounded search must find
// permanently-stuck packets and shrink the timeline to a single event
// that still reproduces.
func TestSearchFindsPlantedViolation(t *testing.T) {
	s := plantedSpec(t)
	res, err := Search(s, SearchOptions{Budget: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ce := res.Counterexample
	if ce == nil {
		t.Fatalf("search found no violation in %d candidates", res.Examined)
	}
	if len(ce.MinimalViolations) == 0 {
		t.Fatal("minimal timeline reported no violations")
	}
	if len(ce.Minimal.Chaos) != 1 {
		t.Errorf("shrink left %d events, want 1: %+v", len(ce.Minimal.Chaos), ce.Minimal.Chaos)
	}
	if ce.Minimal.Faults != nil {
		t.Error("minimal spec still declares a fault space")
	}
	if ce.Minimal.Seed == 0 {
		t.Error("minimal spec did not pin its run seed")
	}

	// The committable counterexample replays: encode, re-parse, run.
	enc, err := Encode(ce.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Parse(enc)
	if err != nil {
		t.Fatalf("minimal spec does not re-parse: %v", err)
	}
	rep, err := Run(replayed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("replayed minimal spec no longer violates")
	}
}

// TestSearchDeterminism: same spec + same options => byte-identical
// search results, counterexample spec included (the property that makes
// counterexamples committable regression tests).
func TestSearchDeterminism(t *testing.T) {
	s := plantedSpec(t)
	opt := SearchOptions{Budget: 4, Seed: 9}
	a, err := Search(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same-seed searches diverged:\n%s\n%s", aj, bj)
	}
	if a.Counterexample != nil {
		ea, _ := Encode(a.Counterexample.Minimal)
		eb, _ := Encode(b.Counterexample.Minimal)
		if string(ea) != string(eb) {
			t.Fatalf("counterexample specs diverged:\n%s\n%s", ea, eb)
		}
	}
}

// TestSearchNeedsFaultSpace: specs without a declared space refuse to
// search instead of guessing one.
func TestSearchNeedsFaultSpace(t *testing.T) {
	e, ok := Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart builtin missing")
	}
	if _, err := Search(e.Spec, SearchOptions{Budget: 1}); err == nil {
		t.Fatal("search without a fault space succeeded")
	}
}
