// Run executes a spec end to end: compile, run on the virtual clock,
// then check the spec's assertions over the quiescent deployment. The
// topo.Result is untouched by the assertion pass — a spec equivalent to
// a flag invocation stays byte-identical — and the violations ride
// alongside in the Report.
package scenario

import (
	"fmt"
	"io"

	"ibcbench/internal/topo"
)

// Report is one spec execution: the ordinary scenario result plus the
// assertion verdicts.
type Report struct {
	Spec   Spec         `json:"spec"`
	Result *topo.Result `json:"result"`
	// Assertions lists what was checked (the resolved default set when
	// the spec names none).
	Assertions []string    `json:"assertions"`
	Violations []Violation `json:"violations,omitempty"`
}

// Passed reports whether every assertion held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Run compiles and executes the spec at the given seed (0 = the spec's
// own seed, defaulting to 1) and checks its assertions.
func Run(s Spec, seed int64) (*Report, error) {
	sc, err := Compile(s)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = s.Seed
	}
	if seed == 0 {
		seed = 1
	}
	res, dep, err := sc.RunDeployed(seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	names := s.Assertions
	if len(names) == 0 {
		names = DefaultAssertions()
	}
	return &Report{
		Spec:       s,
		Result:     res,
		Assertions: names,
		Violations: Check(dep, names),
	}, nil
}

// Render writes the human-readable report: the scenario result followed
// by the assertion verdicts.
func (r *Report) Render(w io.Writer) {
	r.Result.Render(w)
	if r.Passed() {
		fmt.Fprintf(w, "assertions: %d checked, all held\n", len(r.Assertions))
		return
	}
	fmt.Fprintf(w, "assertions: %d violation(s)\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
}
