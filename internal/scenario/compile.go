// Compile lowers a declarative spec onto the existing run APIs:
// topo.Scenario + topo.DeployConfig + chaos.Timeline + geo.Model. The
// lowering adds no behaviour of its own — a spec equivalent to a
// cmd/ibcbench flag invocation produces a byte-identical same-seed
// topo.Result (pinned by TestCompileMatchesFlagInvocation).
package scenario

import (
	"fmt"
	"strconv"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/geo"
	"ibcbench/internal/simconf"
	"ibcbench/internal/topo"
)

// Compile validates the spec and lowers it to a runnable topo.Scenario.
func Compile(s Spec) (topo.Scenario, error) {
	if err := s.Validate(); err != nil {
		return topo.Scenario{}, err
	}
	tp, err := s.topology()
	if err != nil {
		return topo.Scenario{}, err
	}
	model, err := parseGeo(s.Regions)
	if err != nil {
		return topo.Scenario{}, err
	}
	sc := topo.Scenario{
		Name:     s.Name,
		Topology: tp,
		Deploy: topo.DeployConfig{
			Geo:                  model,
			Validators:           s.Deploy.Validators,
			FullProofs:           s.Deploy.FullProofs,
			RelayersPerEdge:      s.Deploy.RelayersPerEdge,
			ClearIntervalBlocks:  s.Deploy.ClearIntervalBlocks,
			MaxMsgsPerTx:         s.Deploy.MaxMsgsPerTx,
			Standby:              s.Deploy.Standby,
			FailoverDetectBlocks: s.Deploy.FailoverDetectBlocks,
			ParallelWorkers:      s.Deploy.ParallelWorkers,
		},
		Windows:      s.Workload.Windows,
		RecordCurves: s.RecordCurves,
		Until:        s.Until.D(),
		ExtraSettle:  time.Duration(s.SettleBlocks) * simconf.MinBlockInterval,
	}
	rates := make(map[int]int, len(tp.Edges))
	if s.Workload.Rate > 0 {
		for i := range tp.Edges {
			rates[i] = s.Workload.Rate
		}
	}
	for _, k := range sortedEdgeKeys(s.Workload.EdgeRates) {
		i, _ := strconv.Atoi(k)
		if r := s.Workload.EdgeRates[k]; r > 0 {
			rates[i] = r
		} else {
			delete(rates, i)
		}
	}
	if len(rates) > 0 {
		sc.EdgeRates = rates
	}
	for _, rt := range s.Workload.Routes {
		sc.Routes = append(sc.Routes, topo.Route{
			Path:          append([]int(nil), rt.Path...),
			Transfers:     rt.Transfers,
			Forwarded:     rt.Forwarded,
			TimeoutBlocks: rt.TimeoutBlocks,
		})
	}
	for _, ev := range s.Chaos {
		sc.Chaos.Events = append(sc.Chaos.Events, compileEvent(ev))
	}
	return sc, nil
}

// compileEvent lowers one timeline entry. The spec's optional relayer
// resolves to the chaos conventions: whole link (-1) for partition/heal,
// relayer 0 for pause/resume.
func compileEvent(ev EventSpec) chaos.Event {
	out := chaos.Event{
		At:           ev.At.D(),
		Kind:         chaos.Kind(eventKinds[ev.Kind]),
		Edge:         ev.Edge,
		ExtraLatency: ev.ExtraLatency.D(),
		ExtraDrop:    ev.ExtraDrop,
	}
	switch ev.Kind {
	case "partition", "heal":
		out.Relayer = -1
	}
	if ev.Relayer != nil {
		out.Relayer = *ev.Relayer
	}
	return out
}

// topology resolves the spec's graph: preset string or explicit lists.
func (s Spec) topology() (topo.Topology, error) {
	t := s.Topology
	switch {
	case t.Preset != "" && (len(t.Chains) > 0 || len(t.Edges) > 0):
		return topo.Topology{}, fmt.Errorf("scenario: topology sets both preset and explicit chains/edges")
	case t.Preset != "":
		return topo.ParseSpec(t.Preset)
	default:
		out := topo.Topology{Name: s.Name}
		for _, c := range t.Chains {
			out.Chains = append(out.Chains, topo.ChainSpec{
				ID: c.ID, Validators: c.Validators, Region: geo.Region(c.Region),
			})
		}
		for _, e := range t.Edges {
			out.Edges = append(out.Edges, topo.EdgeSpec{
				A: e.A, B: e.B, Relayers: e.Relayers, Standby: e.Standby,
			})
		}
		if err := out.Validate(); err != nil {
			return topo.Topology{}, fmt.Errorf("scenario: %w", err)
		}
		return out, nil
	}
}

func parseGeo(spec string) (*geo.Model, error) {
	model, err := geo.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return model, nil
}
