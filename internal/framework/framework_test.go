package framework

import (
	"strings"
	"testing"
	"time"

	"ibcbench/internal/metrics"
)

func TestSetupAndAnalyze(t *testing.T) {
	env := Setup(SetupConfig{Seed: 11, Relayers: 1})
	env.Scheduler().At(time.Second, func() { env.Workload.SubmitBatch(100) })
	if err := env.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	rep := env.Analyze("test", env.Scheduler().Now())
	if rep.Completion[metrics.StatusCompleted] != 100 {
		t.Fatalf("completion = %v", rep.Completion)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %f", rep.Throughput)
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"completed:", "throughput:", "relayer 0:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSetupLANIsFaster(t *testing.T) {
	run := func(lan bool) time.Duration {
		env := Setup(SetupConfig{Seed: 12, LANLatency: lan})
		env.Scheduler().At(time.Second, func() { env.Workload.SubmitBatch(1) })
		if err := env.Run(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		lats := env.Tracker.CompletionTimes()
		if len(lats) != 1 {
			t.Fatalf("lan=%v: completions = %d", lan, len(lats))
		}
		return lats[0]
	}
	if wan, lan := run(false), run(true); lan >= wan {
		t.Fatalf("LAN latency (%v) not below WAN (%v)", lan, wan)
	}
}

func TestSeriesRenderSortsByX(t *testing.T) {
	s := Series{Name: "n", XLabel: "x"}
	s.Add(300, metrics.Summarize([]float64{3}))
	s.Add(100, metrics.Summarize([]float64{1}))
	var sb strings.Builder
	s.Render(&sb)
	out := sb.String()
	if strings.Index(out, "100") > strings.Index(out, "300") {
		t.Fatalf("series not sorted:\n%s", out)
	}
}
