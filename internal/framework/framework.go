// Package framework implements the paper's cross-chain performance
// evaluation framework (Fig. 5): the Setup, Benchmark and Analysis
// modules and the four new components it introduces — the Cross-chain
// Communicator, Cross-chain Data Connector, Cross-chain Event Connector
// and Cross-chain Event Processor.
//
// The concrete instantiation mirrors the paper's tool: the Communicator
// is the Hermes-style relayer, the Data Connector is the Tendermint RPC
// interface, the Event Connector consumes relayer/chain events, and the
// Event Processor is the metrics.Tracker.
package framework

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ibcbench/internal/chain"
	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/relayer"
	"ibcbench/internal/sim"
	"ibcbench/internal/topo"
	"ibcbench/internal/workload"
)

// Communicator is the Cross-chain Communicator: the component that moves
// packets between blockchains (a relayer for IBC; the users themselves
// in atomic-swap protocols).
type Communicator interface {
	Start()
	Stats() relayer.Stats
}

var _ Communicator = (*relayer.Relayer)(nil)

// Environment is one fully assembled benchmark deployment (the Setup
// module's output): two linked chains, N relayers and a workload
// generator feeding a shared event processor.
type Environment struct {
	Testbed  *chain.Testbed
	Relayers []*relayer.Relayer
	Tracker  *metrics.Tracker
	Workload *workload.Generator
}

// SetupConfig parameterizes the Setup module, mirroring the paper tool's
// seven configurable parameters.
type SetupConfig struct {
	Seed                int64
	Relayers            int
	LANLatency          bool // false = 200 ms WAN (paper default)
	FullProofs          bool
	ClearIntervalBlocks int64
	MaxMsgsPerTx        int
}

// Setup deploys the environment: two Gaia chains, a channel, relayers
// and the workload connector bound to the first relayer's full node. It
// is the topo subsystem's TwoChain preset viewed through the paper's
// two-chain API.
func Setup(cfg SetupConfig) *Environment {
	dcfg := topo.DeployConfig{
		Seed:                cfg.Seed,
		FullProofs:          cfg.FullProofs,
		RelayersPerEdge:     cfg.Relayers,
		ClearIntervalBlocks: cfg.ClearIntervalBlocks,
		MaxMsgsPerTx:        cfg.MaxMsgsPerTx,
	}
	if cfg.LANLatency {
		dcfg.Network = netem.DefaultLAN()
	}
	d, err := topo.Deploy(topo.TwoChain(), dcfg)
	if err != nil {
		panic(fmt.Sprintf("framework: two-chain deploy: %v", err))
	}
	link := d.Links[0]
	env := &Environment{
		Testbed:  &chain.Testbed{Sched: d.Sched, Net: d.Net, RNG: d.RNG, Pair: link.Pair},
		Relayers: link.Relayers,
		Tracker:  link.Tracker,
		Workload: link.Forward(),
	}
	d.Start()
	return env
}

// Run drives the environment to a virtual deadline.
func (e *Environment) Run(until time.Duration) error {
	return e.Testbed.Run(until)
}

// Scheduler exposes the virtual clock.
func (e *Environment) Scheduler() *sim.Scheduler { return e.Testbed.Sched }

// Report is the Analysis module's output for one execution.
type Report struct {
	Label        string
	Duration     time.Duration
	Completion   map[metrics.Status]int
	Throughput   float64 // completed transfers per virtual second
	RelayerStats []relayer.Stats
	Workload     workload.Stats
}

// Analyze produces a report over the tracked packets.
func (e *Environment) Analyze(label string, window time.Duration) Report {
	counts := e.Tracker.CompletionCounts()
	rep := Report{
		Label:      label,
		Duration:   window,
		Completion: counts,
		Workload:   e.Workload.Stats(),
	}
	if window > 0 {
		rep.Throughput = float64(counts[metrics.StatusCompleted]) / window.Seconds()
	}
	for _, r := range e.Relayers {
		rep.RelayerStats = append(rep.RelayerStats, r.Stats())
	}
	return rep
}

// Render writes the report.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Label)
	fmt.Fprintf(w, "window: %v\n", r.Duration)
	fmt.Fprintf(w, "requested=%d submitted=%d failed=%d\n",
		r.Workload.Requested, r.Workload.Submitted, r.Workload.Failed)
	statuses := []metrics.Status{
		metrics.StatusCompleted, metrics.StatusPartial,
		metrics.StatusInitiated, metrics.StatusNotCommitted,
	}
	for _, s := range statuses {
		fmt.Fprintf(w, "  %-14s %d\n", s.String()+":", r.Completion[s])
	}
	fmt.Fprintf(w, "throughput: %.1f TFPS\n", r.Throughput)
	for i, st := range r.RelayerStats {
		fmt.Fprintf(w, "relayer %d: %+v\n", i, st)
	}
}

// Series is a labeled sequence of (x, Dist) points, the generic shape of
// the paper's figures.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []metrics.Dist
}

// Add appends a point.
func (s *Series) Add(x float64, d metrics.Dist) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, d)
}

// Render writes the series as an aligned table.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", s.Name)
	fmt.Fprintf(w, "%-12s %-10s %-10s %-10s %-10s %-10s %-10s\n",
		s.XLabel, "min", "q1", "median", "q3", "max", "mean")
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	for _, i := range idx {
		d := s.Y[i]
		fmt.Fprintf(w, "%-12.0f %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f\n",
			s.X[i], d.Min, d.Q1, d.Median, d.Q3, d.Max, d.Mean)
	}
}
