package experiments

import (
	"fmt"
	"io"
	"time"

	"ibcbench/internal/geo"
	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

// DefaultVoteScaleSizes is the swept validator-set range. The paper fixes
// five validators per chain; the shared vote-verification engine makes
// larger sets affordable (O(V) signature checks per block instead of
// O(V^2)), so set size becomes an experiment axis like topology, regions
// and fault windows.
var DefaultVoteScaleSizes = []int{4, 8, 12, 16, 24, 32}

// VoteScalePoint summarizes one validator-set size across seeds.
type VoteScalePoint struct {
	Validators int
	// BlocksPerSec is the chains' aggregate block production per virtual
	// second (constant across V: consensus timing is virtual, so any
	// drift here would indicate the engine changed protocol behaviour).
	BlocksPerSec metrics.Dist
	// Latency is the per-seed mean end-to-end transfer completion latency
	// (seconds) over every edge.
	Latency metrics.Dist
	// Completed is the aggregate completed-transfer distribution.
	Completed metrics.Dist
	// WallSecPerSeed is the host wall-clock cost of one simulation run at
	// this size — the axis the shared vote-verification engine flattens
	// from quadratic towards linear in V. It is measured by a dedicated
	// serial pass (one run per size, first seed) after the sweep: cells
	// inside the parallel worker pool contend for cores, which would
	// corrupt the scaling curve this metric exists to show.
	WallSecPerSeed float64
}

// VoteScaleResult is the validator-scaling experiment.
type VoteScaleResult struct {
	Spec  string
	Rate  int
	Seeds int
	Rows  []VoteScalePoint
}

// VoteScale sweeps the validator-set size on one topology: every chain
// runs V validators, every edge sustains `rate` requests/second, and each
// (V, seed) cell records block production, end-to-end transfer latency
// and the host-side wall cost.
func VoteScale(opt Options, spec string, rate int, sizes []int) (VoteScaleResult, error) {
	tp, err := topo.ParseSpec(spec)
	if err != nil {
		return VoteScaleResult{}, err
	}
	model, err := geo.ParseSpec(opt.Regions)
	if err != nil {
		return VoteScaleResult{}, err
	}
	if rate <= 0 {
		return VoteScaleResult{}, fmt.Errorf("experiments: votescale needs a per-edge rate >= 1 (got %d)", rate)
	}
	if len(sizes) == 0 {
		sizes = DefaultVoteScaleSizes
	}
	for _, v := range sizes {
		if v < 4 {
			return VoteScaleResult{}, fmt.Errorf("experiments: votescale needs >= 4 validators for BFT quorums (got %d)", v)
		}
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 4
	}
	rates := make(map[int]int, len(tp.Edges))
	for i := range tp.Edges {
		rates[i] = rate
	}
	out := VoteScaleResult{Spec: spec, Rate: rate, Seeds: opt.seeds()}

	type cell struct {
		sizeIdx int
		seed    int64
	}
	var cells []cell
	for i := range sizes {
		for s := 0; s < opt.seeds(); s++ {
			cells = append(cells, cell{i, int64(700*(i+1) + s)})
		}
	}
	scenarioFor := func(sizeIdx int) topo.Scenario {
		return topo.Scenario{
			Name:      fmt.Sprintf("votescale-%s-v%d", spec, sizes[sizeIdx]),
			Topology:  tp,
			Deploy:    topo.DeployConfig{Geo: model, Validators: sizes[sizeIdx], ParallelWorkers: opt.Parallel, Live: opt.Live},
			EdgeRates: rates,
			Windows:   windows,
		}
	}
	type cellRes struct {
		sizeIdx int
		res     *topo.Result
		err     error
	}
	results := ParallelMap(cells, opt.Workers, func(c cell) cellRes {
		res, rerr := scenarioFor(c.sizeIdx).Run(c.seed)
		return cellRes{sizeIdx: c.sizeIdx, res: res, err: rerr}
	})

	perSize := make([][]cellRes, len(sizes))
	for i, r := range results {
		if r.err != nil {
			return VoteScaleResult{}, fmt.Errorf("experiments: votescale %s (cell %d): %w", spec, i, r.err)
		}
		perSize[r.sizeIdx] = append(perSize[r.sizeIdx], r)
	}
	for i, runs := range perSize {
		row := VoteScalePoint{Validators: sizes[i]}
		var bps, latency, completed []float64
		for _, r := range runs {
			bps = append(bps, r.res.BlocksPerSec)
			completed = append(completed, float64(r.res.Total[metrics.StatusCompleted]))
			var sum float64
			var n int
			for _, e := range r.res.Edges {
				if e.Latency.N > 0 {
					sum += e.Latency.Mean * float64(e.Latency.N)
					n += e.Latency.N
				}
			}
			if n > 0 {
				latency = append(latency, sum/float64(n))
			}
		}
		row.BlocksPerSec = metrics.Summarize(bps)
		row.Latency = metrics.Summarize(latency)
		row.Completed = metrics.Summarize(completed)
		out.Rows = append(out.Rows, row)
	}
	// Serial timing pass: one uncontended run per size gives the honest
	// wall-cost-vs-V curve (virtual metrics above are unaffected by
	// contention, so they can come from the parallel sweep).
	for i := range sizes {
		start := time.Now()
		if _, err := scenarioFor(i).Run(int64(700 * (i + 1))); err != nil {
			return VoteScaleResult{}, fmt.Errorf("experiments: votescale %s timing pass (V=%d): %w", spec, sizes[i], err)
		}
		out.Rows[i].WallSecPerSeed = time.Since(start).Seconds()
	}
	return out, nil
}

// Render writes the validator-scaling table.
func (r VoteScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "# votescale on %s: %d rps per edge, %d seeds\n", r.Spec, r.Rate, r.Seeds)
	fmt.Fprintf(w, "%-12s %-12s %-26s %-18s %-12s\n",
		"validators", "blocks/s", "latency mean-sec (seeds)", "completed", "wall-sec/seed")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12d %-12.3f %-26s %-18s %-12.2f\n",
			row.Validators, row.BlocksPerSec.Mean,
			fmt.Sprintf("%.1f [%.1f..%.1f]", row.Latency.Mean, row.Latency.Min, row.Latency.Max),
			fmt.Sprintf("%.0f (n=%d)", row.Completed.Mean, row.Completed.N),
			row.WallSecPerSeed)
	}
}
