package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := ParallelMap(items, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelMapRunsAllItemsOnce(t *testing.T) {
	var calls atomic.Int64
	out := ParallelMap(make([]struct{}, 37), 4, func(struct{}) int {
		return int(calls.Add(1))
	})
	if calls.Load() != 37 || len(out) != 37 {
		t.Fatalf("calls = %d, len = %d", calls.Load(), len(out))
	}
}

func TestParallelMapEmptyAndSerial(t *testing.T) {
	if out := ParallelMap(nil, 4, func(int) int { return 1 }); len(out) != 0 {
		t.Fatalf("empty input gave %v", out)
	}
	out := ParallelMap([]int{1, 2, 3}, 1, func(i int) int { return i + 1 })
	if out[0] != 2 || out[2] != 4 {
		t.Fatalf("serial path broken: %v", out)
	}
}

// TestParallelSweepMatchesSerial is the acceptance check for the parallel
// seed runner: for a fixed seed grid, the worker pool must produce
// byte-identical results to serial execution.
func TestParallelSweepMatchesSerial(t *testing.T) {
	opts := func(workers int) Options {
		o := Options{Seeds: 2, Rates: []int{40, 120}, Windows: 10, Workers: workers}
		if testing.Short() {
			o.Rates = []int{60}
			o.Windows = 8
		}
		return o
	}
	serial := fmt.Sprintf("%+v", RelayerSweep(opts(1), 1, false))
	parallel := fmt.Sprintf("%+v", RelayerSweep(opts(4), 1, false))
	if serial != parallel {
		t.Fatalf("relayer sweep diverged:\nserial:   %s\nparallel: %s", serial, parallel)
	}
	if testing.Short() {
		// The Tendermint identity check rides only in full mode; short
		// mode keeps the relayer identity plus the (fast) topology one.
		return
	}
	sOpt, pOpt := opts(1), opts(4)
	sOpt.Rates, pOpt.Rates = []int{500, 2000}, []int{500, 2000}
	sOpt.Windows, pOpt.Windows = 5, 5
	serial = fmt.Sprintf("%+v", Tendermint(sOpt))
	parallel = fmt.Sprintf("%+v", Tendermint(pOpt))
	if serial != parallel {
		t.Fatalf("tendermint sweep diverged:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestTopologySweep(t *testing.T) {
	opt := Options{Seeds: 2, Windows: 3}
	res, err := TopologySweep(opt, "hub:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Mean <= 0 {
		t.Fatalf("no aggregate throughput: %+v", res.Throughput)
	}
	if len(res.EdgeCompleted) != 2 {
		t.Fatalf("edges = %d, want 2", len(res.EdgeCompleted))
	}
	for i, d := range res.EdgeCompleted {
		if d.Mean <= 0 {
			t.Fatalf("edge %d completed nothing", i)
		}
	}
	// hub:2 has a spoke-to-spoke non-adjacent pair -> a demo route runs.
	if res.RoutesCompleted != opt.Seeds {
		t.Fatalf("routes completed = %d, want %d", res.RoutesCompleted, opt.Seeds)
	}
	var sb strings.Builder
	res.Render(&sb)
	for _, want := range []string{"topology hub:2", "aggregate TFPS", "sample run"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}

	if _, err := TopologySweep(opt, "ring:9", 4); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestTopologySweepParallelMatchesSerial(t *testing.T) {
	run := func(workers int) string {
		res, err := TopologySweep(Options{Seeds: 2, Windows: 3, Workers: workers}, "line:3", 3)
		if err != nil {
			t.Fatal(err)
		}
		// Render (not %+v): Sample is a pointer whose address differs.
		var sb strings.Builder
		res.Render(&sb)
		return sb.String()
	}
	if s, p := run(1), run(4); s != p {
		t.Fatalf("topology sweep diverged:\nserial:   %s\nparallel: %s", s, p)
	}
}
