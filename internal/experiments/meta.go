package experiments

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// RunMeta identifies what produced a run when it is archived into the
// experiment store.
type RunMeta struct {
	// Commit is the VCS revision under test.
	Commit string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// CaptureRunMeta resolves archival provenance: the commit comes from
// IBCBENCH_COMMIT when set (CI pins it to the exact revision under
// test, which also keeps archival working on detached or shallow
// checkouts), falling back to `git rev-parse`; an empty commit is fine
// — the store keys runs by content, not provenance.
func CaptureRunMeta() RunMeta {
	m := RunMeta{GoVersion: runtime.Version()}
	if c := os.Getenv("IBCBENCH_COMMIT"); c != "" {
		m.Commit = c
		return m
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
	}
	return m
}
