package experiments

import (
	"fmt"
	"io"

	"ibcbench/internal/geo"
	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

// TopologyResult is the multi-seed summary of one topology scenario:
// aggregate throughput and per-edge completion distributions.
type TopologyResult struct {
	Spec  string
	Rate  int
	Seeds int
	// Throughput is the aggregate TFPS distribution across seeds.
	Throughput metrics.Dist
	// EdgeCompleted holds per-edge completed-transfer distributions.
	EdgeCompleted []metrics.Dist
	// EdgeLabels names each edge ("hub~ibc-1").
	EdgeLabels []string
	// RoutesCompleted sums completed multi-hop routes across seeds.
	RoutesCompleted int
	// Sample is the first seed's full result, for detailed rendering.
	Sample *topo.Result
}

// TopologySweep benchmarks an interchain topology: every edge sustains
// `rate` requests/second for the configured windows, plus — on graphs of
// three or more chains — one multi-hop route between the two
// lowest-indexed non-adjacent leaves, exercised as sequential transfers.
// Seeds run concurrently on the parallel runner.
func TopologySweep(opt Options, spec string, rate int) (TopologyResult, error) {
	return TopologySweepMode(opt, spec, rate, false)
}

// BuildTopologyScenario assembles the sweep's scenario for one topology
// spec and per-edge rate without running it: every edge sustains `rate`
// requests/second for the configured windows, plus the demo multi-hop
// route on graphs that have one. Exported so single-run drivers (the
// CLI's trace exporter, the tracer-overhead benchmark) execute exactly
// the workload the sweep measures.
func BuildTopologyScenario(opt Options, spec string, rate int, forwarded bool) (topo.Scenario, error) {
	tp, err := topo.ParseSpec(spec)
	if err != nil {
		return topo.Scenario{}, err
	}
	model, err := geo.ParseSpec(opt.Regions)
	if err != nil {
		return topo.Scenario{}, err
	}
	if rate <= 0 {
		return topo.Scenario{}, fmt.Errorf("experiments: topology sweep needs a per-edge rate >= 1 (got %d)", rate)
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 10
	}
	sc := topo.Scenario{
		Name:     spec,
		Topology: tp,
		Deploy:   topo.DeployConfig{Geo: model, Validators: opt.Validators, ParallelWorkers: opt.Parallel, Live: opt.Live},
		Windows:  windows,
	}
	sc.EdgeRates = make(map[int]int, len(tp.Edges))
	for i := range tp.Edges {
		sc.EdgeRates[i] = rate
	}
	if route := demoRoute(tp); route != nil {
		sc.Routes = []topo.Route{{Path: route, Transfers: rate, Forwarded: forwarded}}
	}
	return sc, nil
}

// TopologySweepMode is TopologySweep with the route mode as an explicit
// experiment axis: forwarded routes ride the packet-forward middleware
// instead of sequential legs.
func TopologySweepMode(opt Options, spec string, rate int, forwarded bool) (TopologyResult, error) {
	sc, err := BuildTopologyScenario(opt, spec, rate, forwarded)
	if err != nil {
		return TopologyResult{}, err
	}
	tp := sc.Topology
	seeds := make([]int64, opt.seeds())
	for i := range seeds {
		seeds[i] = int64(100*rate + i)
	}
	type seedRun struct {
		res *topo.Result
		err error
	}
	results := ParallelMap(seeds, opt.Workers, func(seed int64) seedRun {
		res, rerr := sc.Run(seed)
		return seedRun{res: res, err: rerr}
	})
	out := TopologyResult{Spec: spec, Rate: rate, Seeds: len(seeds)}
	var tputs []float64
	perEdge := make([][]float64, len(tp.Edges))
	for i, r := range results {
		if r.err != nil {
			return TopologyResult{}, fmt.Errorf("experiments: scenario %s (seed %d): %w", spec, seeds[i], r.err)
		}
		res := r.res
		if out.Sample == nil {
			out.Sample = res
		}
		tputs = append(tputs, res.Throughput)
		out.RoutesCompleted += res.RoutesCompleted
		for i, e := range res.Edges {
			perEdge[i] = append(perEdge[i], float64(e.Completion[metrics.StatusCompleted]))
		}
	}
	out.Throughput = metrics.Summarize(tputs)
	for i, samples := range perEdge {
		out.EdgeCompleted = append(out.EdgeCompleted, metrics.Summarize(samples))
		out.EdgeLabels = append(out.EdgeLabels,
			out.Sample.Edges[i].From+"~"+out.Sample.Edges[i].To)
	}
	return out, nil
}

// demoRoute picks a representative multi-hop path: the two
// lowest-indexed chains that do not share an edge, via BFS. Nil when
// every pair is adjacent (two-chain, mesh).
func demoRoute(tp topo.Topology) []int {
	for a := 0; a < len(tp.Chains); a++ {
		for b := a + 1; b < len(tp.Chains); b++ {
			if _, adjacent := tp.EdgeBetween(a, b); adjacent {
				continue
			}
			if path, err := tp.Route(a, b); err == nil {
				return path
			}
		}
	}
	return nil
}

// Render writes the sweep summary.
func (r TopologyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "# topology %s: %d rps per edge, %d seeds\n", r.Spec, r.Rate, r.Seeds)
	fmt.Fprintf(w, "aggregate TFPS: %s\n", r.Throughput)
	fmt.Fprintf(w, "%-6s %-16s %-40s\n", "edge", "link", "completed (dist over seeds)")
	for i, d := range r.EdgeCompleted {
		fmt.Fprintf(w, "%-6d %-16s %s\n", i, r.EdgeLabels[i], d)
	}
	if r.RoutesCompleted > 0 {
		fmt.Fprintf(w, "multi-hop routes completed: %d across seeds\n", r.RoutesCompleted)
	}
	if r.Sample != nil {
		fmt.Fprintf(w, "--- sample run (seed %d) ---\n", r.Sample.Seed)
		r.Sample.Render(w)
	}
}
