package experiments

import (
	"fmt"
	"io"

	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

// ForwardingRow compares the two multi-hop route modes at one hop count.
type ForwardingRow struct {
	Hops int
	Path []int
	// Sequential/Forwarded are mean end-to-end route latencies across
	// seeds (transfer broadcast to origin settlement).
	Sequential metrics.Dist
	Forwarded  metrics.Dist
	// Speedup is mean sequential latency over mean forwarded latency.
	Speedup float64
	// Completed counts fully settled routes across seeds (per mode).
	SeqCompleted, FwdCompleted int
}

// ForwardingResult is the latency-vs-hops comparison of sequential legs
// against packet-forward middleware on one topology.
type ForwardingResult struct {
	Spec      string
	Transfers int
	Seeds     int
	Rows      []ForwardingRow
}

// ForwardingComparison runs, for every achievable hop count on the
// topology, ONE scenario carrying the same route twice — once as
// sequential legs, once in Forwarded mode — so both sides of the
// latency-vs-hops curve come from the same execution. Hub topologies
// exercise the paper's hub scenario (spoke -> hub -> spoke); line
// topologies extend the curve to deeper nestings.
func ForwardingComparison(opt Options, spec string, transfers int) (ForwardingResult, error) {
	tp, err := topo.ParseSpec(spec)
	if err != nil {
		return ForwardingResult{}, err
	}
	if transfers <= 0 {
		transfers = 5
	}
	paths := hopPaths(tp)
	if len(paths) == 0 {
		return ForwardingResult{}, fmt.Errorf("experiments: no routes on %s", spec)
	}
	out := ForwardingResult{Spec: spec, Transfers: transfers, Seeds: opt.seeds()}

	type hopSeed struct {
		hopIdx int
		seed   int64
	}
	var cells []hopSeed
	for h := range paths {
		for s := 0; s < opt.seeds(); s++ {
			cells = append(cells, hopSeed{h, int64(1000*(h+1) + s)})
		}
	}
	type cellRes struct {
		hopIdx   int
		seq, fwd topo.RouteReport
		err      error
	}
	results := ParallelMap(cells, opt.Workers, func(c hopSeed) cellRes {
		path := paths[c.hopIdx]
		sc := topo.Scenario{
			Name:     fmt.Sprintf("%s-hops%d", spec, len(path)-1),
			Topology: tp,
			Deploy:   topo.DeployConfig{Validators: opt.Validators, ParallelWorkers: opt.Parallel, Live: opt.Live},
			Routes: []topo.Route{
				{Path: path, Transfers: transfers},
				{Path: path, Transfers: transfers, Forwarded: true},
			},
		}
		res, err := sc.Run(c.seed)
		if err != nil {
			return cellRes{hopIdx: c.hopIdx, err: err}
		}
		return cellRes{hopIdx: c.hopIdx, seq: res.Routes[0], fwd: res.Routes[1]}
	})

	perHop := make([][]cellRes, len(paths))
	for i, r := range results {
		if r.err != nil {
			return ForwardingResult{}, fmt.Errorf("experiments: forwarding %s (cell %d): %w", spec, i, r.err)
		}
		perHop[r.hopIdx] = append(perHop[r.hopIdx], r)
	}
	for h, path := range paths {
		row := ForwardingRow{Hops: len(path) - 1, Path: path}
		var seqLat, fwdLat []float64
		for _, r := range perHop[h] {
			if r.seq.Completed {
				row.SeqCompleted++
				seqLat = append(seqLat, r.seq.Latency.Seconds())
			}
			if r.fwd.Completed {
				row.FwdCompleted++
				fwdLat = append(fwdLat, r.fwd.Latency.Seconds())
			}
		}
		row.Sequential = metrics.Summarize(seqLat)
		row.Forwarded = metrics.Summarize(fwdLat)
		if row.Forwarded.Mean > 0 {
			row.Speedup = row.Sequential.Mean / row.Forwarded.Mean
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// hopPaths picks one representative path per achievable hop count,
// shortest-first: hop count 1 is the first edge; deeper counts come from
// BFS shortest paths between increasingly distant node pairs.
func hopPaths(tp topo.Topology) [][]int {
	byHops := map[int][]int{}
	maxHops := 0
	for a := 0; a < len(tp.Chains); a++ {
		for b := a + 1; b < len(tp.Chains); b++ {
			path, err := tp.Route(a, b)
			if err != nil {
				continue
			}
			hops := len(path) - 1
			if _, seen := byHops[hops]; !seen {
				byHops[hops] = path
				if hops > maxHops {
					maxHops = hops
				}
			}
		}
	}
	var out [][]int
	for h := 1; h <= maxHops; h++ {
		if p, ok := byHops[h]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Render writes the comparison as a latency-vs-hops table.
func (r ForwardingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "# forwarding vs sequential on %s: %d transfers/route, %d seeds\n",
		r.Spec, r.Transfers, r.Seeds)
	fmt.Fprintf(w, "%-6s %-14s %-16s %-16s %-8s %-12s\n",
		"hops", "path", "sequential", "forwarded", "speedup", "completed")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-14s %-16s %-16s %-8.2f %d/%d\n",
			row.Hops, fmt.Sprint(row.Path),
			fmtMeanSec(row.Sequential), fmtMeanSec(row.Forwarded),
			row.Speedup, row.SeqCompleted, row.FwdCompleted)
	}
}

func fmtMeanSec(d metrics.Dist) string {
	return fmt.Sprintf("%.1fs (n=%d)", d.Mean, d.N)
}
