package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The registry's execution order is the result-document key order the
// VIRT gate and the store's trend analysis rely on; pin it.
func TestRegistryOrderAndShape(t *testing.T) {
	wantNames := []string{
		"tendermint", "fig8", "fig8-lan", "fig9", "fig9-lan",
		"fig12", "fig13", "gas", "topo", "forward",
		"failover", "votescale", "meshscale", "ws",
	}
	reg := Registry()
	if len(reg) != len(wantNames) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(wantNames))
	}
	for i, e := range reg {
		if e.Name != wantNames[i] {
			t.Errorf("entry %d: name %q, want %q", i, e.Name, wantNames[i])
		}
		if e.Desc == "" {
			t.Errorf("entry %q: empty description", e.Name)
		}
		if e.Run == nil {
			t.Errorf("entry %q: nil driver", e.Name)
		}
		if len(e.Selectors) == 0 {
			t.Errorf("entry %q: no selectors", e.Name)
		}
	}
}

func TestSelect(t *testing.T) {
	names := func(es []Entry) []string {
		out := make([]string, len(es))
		for i, e := range es {
			out[i] = e.Name
		}
		return out
	}
	cases := []struct {
		sel  string
		want []string
	}{
		{"all", []string{"tendermint", "fig8", "fig8-lan", "fig9", "fig9-lan", "fig12", "fig13", "gas", "topo", "forward", "failover", "votescale", "meshscale", "ws"}},
		// The LAN cells ride along with the completion-breakdown
		// figures (10/11), not with the base throughput selectors —
		// the pre-registry driver behaved exactly this way.
		{"fig8", []string{"fig8"}},
		{"fig10", []string{"fig8", "fig8-lan"}},
		{"fig9", []string{"fig9"}},
		{"fig11", []string{"fig9", "fig9-lan"}},
		{"table1", []string{"tendermint"}},
		{"fig6", []string{"tendermint"}},
		{"topo", []string{"topo"}},
	}
	for _, c := range cases {
		got, err := Select(c.sel)
		if err != nil {
			t.Fatalf("Select(%q): %v", c.sel, err)
		}
		if strings.Join(names(got), ",") != strings.Join(c.want, ",") {
			t.Errorf("Select(%q) = %v, want %v", c.sel, names(got), c.want)
		}
	}
	if _, err := Select("nope"); err == nil {
		t.Fatal("Select(nope): expected an error")
	} else if !strings.Contains(err.Error(), "fig12") {
		t.Errorf("unknown-selector error should list valid values, got: %v", err)
	}
}

func TestSelectorsCoverEveryEntry(t *testing.T) {
	sels := Selectors()
	seen := map[string]bool{}
	for _, s := range sels {
		if seen[s] {
			t.Errorf("selector %q listed twice", s)
		}
		seen[s] = true
	}
	for _, e := range Registry() {
		found := false
		for _, s := range e.Selectors {
			if seen[s] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("entry %q unreachable from Selectors()", e.Name)
		}
	}
}

// A registry entry must render to the context writer and record under
// its own name — the gas table is the cheapest full driver.
func TestEntryRunRendersAndRecords(t *testing.T) {
	entries, err := Select("gas")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	recorded := map[string]any{}
	ctx := RunContext{
		Seed:   1,
		Out:    &buf,
		Record: func(k string, v any) { recorded[k] = v },
	}
	if err := entries[0].Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := recorded["gas"]; !ok {
		t.Fatalf("driver did not record under its name; recorded keys: %v", recorded)
	}
	if !strings.Contains(buf.String(), "# Gas per 100-message transaction class") {
		t.Errorf("unexpected render output:\n%s", buf.String())
	}
}
