package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelMap runs fn over items on a bounded worker pool and returns the
// results in input order. Every simulation run is deterministic and fully
// self-contained (own scheduler, RNG and chains), so a parallel sweep
// produces byte-identical results to serial execution — the pool only
// buys wall-clock speedup across the Seeds x configs grid.
//
// workers <= 0 selects GOMAXPROCS.
func ParallelMap[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i := range items {
			out[i] = fn(items[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
