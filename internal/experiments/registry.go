// The experiment registry: every `-experiment` entrypoint as a named
// entry with its selectors, description and driver, in the order the
// paper presents them. The CLI derives its help text, the sweep driver
// and `-experiment all` from this table instead of a hand-maintained
// if-chain, so adding an experiment is one Entry literal.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// RunContext carries the flag-derived inputs shared by every
// experiment driver. Record sinks the result struct under the entry's
// name into the run's result document (a no-op sink is fine).
type RunContext struct {
	Opt        Options
	Seed       int64
	Transfers  int
	Topology   string
	Rate       int
	Forwarding bool
	Validators []int
	Parallel   int
	Out        io.Writer
	Record     func(key string, v any)
}

// Entry is one registered experiment: Name keys the result document,
// Selectors lists every `-experiment` value that triggers it (besides
// "all"), and Run executes and renders it.
type Entry struct {
	Name      string
	Selectors []string
	Desc      string
	Run       func(RunContext) error
}

// registry holds the entries in execution order — `-experiment all`
// runs them top to bottom, matching the paper's presentation order.
var registry = []Entry{
	{
		Name:      "tendermint",
		Selectors: []string{"fig6", "fig7", "table1"},
		Desc:      "single-chain Tendermint sweep: commit latency, throughput and the execution summary (Figs. 6-7, Table I)",
		Run:       runTendermint,
	},
	{
		Name:      "fig8",
		Selectors: []string{"fig8", "fig10"},
		Desc:      "one relayer, WAN: transfer throughput and completion breakdown vs input rate (Figs. 8, 10)",
		Run:       relayerEntry("fig8", 1, false),
	},
	{
		Name:      "fig8-lan",
		Selectors: []string{"fig8-lan", "fig10"},
		Desc:      "one relayer, LAN latencies: the fig8 sweep without WAN delay",
		Run:       relayerEntry("fig8-lan", 1, true),
	},
	{
		Name:      "fig9",
		Selectors: []string{"fig9", "fig11"},
		Desc:      "two redundant relayers, WAN: throughput vs input rate plus redundant-submission errors (Figs. 9, 11)",
		Run:       relayerEntry("fig9", 2, false),
	},
	{
		Name:      "fig9-lan",
		Selectors: []string{"fig9-lan", "fig11"},
		Desc:      "two redundant relayers, LAN latencies: the fig9 sweep without WAN delay",
		Run:       relayerEntry("fig9-lan", 2, true),
	},
	{
		Name:      "fig12",
		Selectors: []string{"fig12"},
		Desc:      "one-block burst: 13-step relay breakdown of N transfers submitted in a single block (Fig. 12)",
		Run:       runFig12,
	},
	{
		Name:      "fig13",
		Selectors: []string{"fig13"},
		Desc:      "submission spread: completion time of N transfers spread over increasing block counts (Fig. 13)",
		Run:       runFig13,
	},
	{
		Name:      "gas",
		Selectors: []string{"gas"},
		Desc:      "gas per 100-message transaction class vs the paper's measurements (§IV-A)",
		Run:       runGas,
	},
	{
		Name:      "topo",
		Selectors: []string{"topo"},
		Desc:      "multi-chain topology sweep (-topology two|line:n|hub:n|mesh:n) with optional forwarding and geo regions",
		Run:       runTopo,
	},
	{
		Name:      "forward",
		Selectors: []string{"forward"},
		Desc:      "latency vs hop count: sequential-leg routes against the packet-forward middleware, side by side",
		Run:       runForward,
	},
	{
		Name:      "failover",
		Selectors: []string{"failover"},
		Desc:      "relayer failover: supervised standbys under primary-host partitions of increasing duration",
		Run:       runFailover,
	},
	{
		Name:      "votescale",
		Selectors: []string{"votescale"},
		Desc:      "validator-set scaling sweep on the shared vote-verification engine",
		Run:       runVoteScale,
	},
	{
		Name:      "meshscale",
		Selectors: []string{"meshscale"},
		Desc:      "serial-vs-parallel runner speedup grid on full-mesh topologies (fingerprint-checked)",
		Run:       runMeshScale,
	},
	{
		Name:      "ws",
		Selectors: []string{"ws"},
		Desc:      "WebSocket frame-limit experiment: completion under event-subscription frame loss (§V)",
		Run:       runWS,
	},
}

// Registry returns the experiment table in execution order.
func Registry() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// Selectors returns every valid `-experiment` value (without "all") in
// first-use order — the CLI help string.
func Selectors() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range registry {
		for _, s := range e.Selectors {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Select resolves an `-experiment` value to the entries it triggers,
// in execution order. "all" selects everything; an unknown selector is
// an error listing the valid values.
func Select(sel string) ([]Entry, error) {
	if sel == "all" {
		return Registry(), nil
	}
	var out []Entry
	for _, e := range registry {
		for _, s := range e.Selectors {
			if s == sel {
				out = append(out, e)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %s|all)", sel, strings.Join(Selectors(), "|"))
	}
	return out, nil
}

func runTendermint(ctx RunContext) error {
	res := Tendermint(ctx.Opt)
	ctx.Record("tendermint", res)
	res.Fig6.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	res.Fig7.Render(ctx.Out)
	fmt.Fprintln(ctx.Out, "\n# Table I: execution summary")
	fmt.Fprintf(ctx.Out, "%-10s %-12s %-14s %-12s\n", "rate", "requested", "submitted", "committed")
	for _, r := range res.Table1 {
		fmt.Fprintf(ctx.Out, "%-10d %-12d %-8d(%.1f%%) %-8d(%.1f%%)\n", r.Rate, r.Requested,
			r.Submitted, pctOf(r.Submitted, r.Requested),
			r.Committed, pctOf(r.Committed, r.Submitted))
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

// relayerEntry builds the driver for one cell of the relayer-sweep
// family (Figs. 8-11): a relayer count and a LAN/WAN switch.
func relayerEntry(name string, relayers int, lan bool) func(RunContext) error {
	return func(ctx RunContext) error {
		pts := RelayerSweep(ctx.Opt, relayers, lan)
		ctx.Record(name, pts)
		fmt.Fprintf(ctx.Out, "# %s: %d relayer(s), lan=%v (Figs. 8-11)\n", name, relayers, lan)
		fmt.Fprintf(ctx.Out, "%-8s %-10s %-11s %-9s %-10s %-13s %-10s\n",
			"rate", "TFPS", "completed", "partial", "initiated", "notcommitted", "redundant")
		for _, p := range pts {
			fmt.Fprintf(ctx.Out, "%-8d %-10.1f %-11.0f %-9.0f %-10.0f %-13.0f %-10.0f\n",
				p.Rate, p.Throughput.Mean, p.Completed, p.Partial, p.Initiated,
				p.NotCommitted, p.RedundantErrors)
		}
		fmt.Fprintln(ctx.Out)
		return nil
	}
}

func runFig12(ctx RunContext) error {
	res := Fig12(ctx.Transfers, ctx.Seed)
	ctx.Record("fig12", res)
	fmt.Fprintf(ctx.Out, "# Fig12: %d transfers in one block — 13-step breakdown\n", res.Transfers)
	fmt.Fprintf(ctx.Out, "%-28s %-12s %-12s\n", "step", "first", "last")
	for _, s := range res.Steps {
		fmt.Fprintf(ctx.Out, "%-28s %-12s %-12s\n", s.Step, fmtSeconds(s.First), fmtSeconds(s.Last))
	}
	fmt.Fprintf(ctx.Out, "completed: %d/%d  total: %s\n", res.Completed, res.Transfers, fmtSeconds(res.Total))
	fmt.Fprintf(ctx.Out, "phases: transfer=%s receive=%s ack=%s\n",
		fmtSeconds(res.TransferPhase), fmtSeconds(res.ReceivePhase), fmtSeconds(res.AckPhase))
	pulls := res.TransferDataPull + res.RecvDataPull
	fmt.Fprintf(ctx.Out, "data pulls: %s (%.0f%% of total; paper: 69%%)\n\n",
		fmtSeconds(pulls), 100*pulls.Seconds()/res.Total.Seconds())
	return nil
}

func runFig13(ctx RunContext) error {
	rows := Fig13(ctx.Transfers, nil, ctx.Seed)
	ctx.Record("fig13", rows)
	fmt.Fprintf(ctx.Out, "# Fig13: %d transfers, submission spread over N blocks\n", ctx.Transfers)
	fmt.Fprintf(ctx.Out, "%-10s %-14s %-10s\n", "blocks", "completion", "completed")
	for _, r := range rows {
		fmt.Fprintf(ctx.Out, "%-10d %-14s %-10d\n", r.Blocks, fmtSeconds(r.Completion), r.Completed)
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

func runGas(ctx RunContext) error {
	rows := GasTable(ctx.Seed)
	ctx.Record("gas", rows)
	fmt.Fprintln(ctx.Out, "# Gas per 100-message transaction class (§IV-A)")
	fmt.Fprintf(ctx.Out, "%-22s %-12s %-12s\n", "class", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(ctx.Out, "%-22s %-12d %-12d\n", r.MsgType, r.Measured, r.Paper)
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

func runTopo(ctx RunContext) error {
	res, err := TopologySweepMode(ctx.Opt, ctx.Topology, ctx.Rate, ctx.Forwarding)
	if err != nil {
		return err
	}
	ctx.Record("topo", res)
	res.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	return nil
}

func runForward(ctx RunContext) error {
	// Latency-vs-hops: both route modes side by side from one run per
	// hop count. The default hub graph reproduces the paper-style hub
	// scenario (spoke -> hub -> spoke).
	res, err := ForwardingComparison(ctx.Opt, ctx.Topology, ctx.Rate)
	if err != nil {
		return err
	}
	ctx.Record("forward", res)
	res.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	return nil
}

func runFailover(ctx RunContext) error {
	// Relayer failover: supervised standbys under primary-host
	// partitions of increasing duration (packet-latency and
	// cleared-backlog curves across fault windows).
	res, err := Failover(ctx.Opt, ctx.Topology, ctx.Rate)
	if err != nil {
		return err
	}
	ctx.Record("failover", res)
	res.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	return nil
}

func runVoteScale(ctx RunContext) error {
	// Validator-scaling: the shared vote-verification engine makes
	// set size an affordable axis; blocks/s stays flat (virtual
	// timing) while wall cost grows ~linearly instead of quadratically.
	res, err := VoteScale(ctx.Opt, ctx.Topology, ctx.Rate, ctx.Validators)
	if err != nil {
		return err
	}
	ctx.Record("votescale", res)
	res.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	return nil
}

func runMeshScale(ctx RunContext) error {
	// Serial-vs-parallel scaling: each cell runs the same full-mesh
	// scenario on both runners, checks result-fingerprint equality
	// and reports the wall-clock speedup curve.
	chains := DefaultMeshScaleChains
	if strings.HasPrefix(ctx.Topology, "mesh:") {
		n, err := strconv.Atoi(strings.TrimPrefix(ctx.Topology, "mesh:"))
		if err != nil || n < 2 {
			return fmt.Errorf("ibcbench: -experiment meshscale needs -topology mesh:n with n >= 2 (got %q)", ctx.Topology)
		}
		chains = []int{n}
	}
	res, err := MeshScale(ctx.Opt, chains, ctx.Parallel)
	if err != nil {
		return err
	}
	ctx.Record("meshscale", res)
	res.Render(ctx.Out)
	fmt.Fprintln(ctx.Out)
	return nil
}

func runWS(ctx RunContext) error {
	res := WebSocketLimit(ctx.Seed, 1000, 60)
	ctx.Record("ws", res)
	fmt.Fprintln(ctx.Out, "# WebSocket frame-limit experiment (§V)")
	fmt.Fprintf(ctx.Out, "transfers=%d framesLost=%d\n", res.Transfers, res.FramesLost)
	fmt.Fprintf(ctx.Out, "completed: %d (%.1f%%)  timed out: %d (%.1f%%)  stuck: %d (%.1f%%)\n",
		res.Completed, pctOf(res.Completed, res.Transfers),
		int(res.TimedOut), pctOf(int(res.TimedOut), res.Transfers),
		res.Stuck, pctOf(res.Stuck, res.Transfers))
	fmt.Fprintln(ctx.Out, "paper: 2.5% completed / 15.7% timed out / 81.8% stuck")
	return nil
}

func pctOf(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
