package experiments

import (
	"fmt"
	"io"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/geo"
	"ibcbench/internal/metrics"
	"ibcbench/internal/simconf"
	"ibcbench/internal/topo"
)

// DefaultFaultWindows are the swept primary-outage durations; 0 is the
// fault-free baseline.
var DefaultFaultWindows = []time.Duration{
	0,
	30 * time.Second,
	60 * time.Second,
	120 * time.Second,
}

// FailoverRow summarizes one fault-window duration across seeds.
type FailoverRow struct {
	// Window is how long the primary relayer's host stays partitioned.
	Window time.Duration
	// Completed is the faulted edge's completed-transfer distribution.
	Completed metrics.Dist
	// Latency summarizes the faulted edge's mean per-packet completion
	// latency of each seed (seconds): a distribution of per-seed means,
	// not of pooled per-packet samples.
	Latency metrics.Dist
	// Downtime is the supervisor-measured outage time per seed (seconds).
	Downtime metrics.Dist
	// Takeovers sums standby activations across seeds.
	Takeovers int
	// StandbyRecv sums packets the standby delivered across seeds.
	StandbyRecv uint64
	// Backlog is the first seed's cleared-backlog curve on the faulted
	// edge (absolute completion times).
	Backlog metrics.Series
}

// FailoverResult is the relayer-failover experiment: a supervised
// topology (standby relayer per edge) under primary-host partitions of
// increasing duration, reporting completion, packet latency, measured
// downtime and the post-outage catch-up curve per fault window.
type FailoverResult struct {
	Spec    string
	Regions string
	Rate    int
	Seeds   int
	// FaultStart is when the partition opens (virtual time).
	FaultStart time.Duration
	Rows       []FailoverRow
}

// Failover runs the relayer-failover experiment on the given topology
// (every edge gets a standby; edge 0's primary is the fault target).
// opt.Regions optionally places the deployment on a geo preset.
func Failover(opt Options, spec string, rate int) (FailoverResult, error) {
	tp, err := topo.ParseSpec(spec)
	if err != nil {
		return FailoverResult{}, err
	}
	model, err := geo.ParseSpec(opt.Regions)
	if err != nil {
		return FailoverResult{}, err
	}
	if rate <= 0 {
		return FailoverResult{}, fmt.Errorf("experiments: failover needs a per-edge rate >= 1 (got %d)", rate)
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 6
	}
	faultStart := 3 * simconf.MinBlockInterval
	out := FailoverResult{
		Spec: spec, Regions: opt.Regions, Rate: rate,
		Seeds: opt.seeds(), FaultStart: faultStart,
	}

	rates := make(map[int]int, len(tp.Edges))
	for i := range tp.Edges {
		rates[i] = rate
	}
	type cell struct {
		winIdx int
		seed   int64
	}
	var cells []cell
	for w := range DefaultFaultWindows {
		for s := 0; s < opt.seeds(); s++ {
			cells = append(cells, cell{w, int64(9000*(w+1) + s)})
		}
	}
	type cellRes struct {
		winIdx int
		res    *topo.Result
		err    error
	}
	results := ParallelMap(cells, opt.Workers, func(c cell) cellRes {
		w := DefaultFaultWindows[c.winIdx]
		sc := topo.Scenario{
			Name:         fmt.Sprintf("failover-%s-w%ds", spec, int(w.Seconds())),
			Topology:     tp,
			Deploy:       topo.DeployConfig{Geo: model, Standby: true, Validators: opt.Validators, ParallelWorkers: opt.Parallel, Live: opt.Live},
			EdgeRates:    rates,
			Windows:      windows,
			RecordCurves: true,
		}
		if w > 0 {
			sc.Chaos = chaos.Timeline{Events: []chaos.Event{
				{At: faultStart, Kind: chaos.PartitionLink, Edge: 0, Relayer: 0},
				{At: faultStart + w, Kind: chaos.HealLink, Edge: 0, Relayer: 0},
			}}
		}
		res, rerr := sc.Run(c.seed)
		return cellRes{winIdx: c.winIdx, res: res, err: rerr}
	})

	perWin := make([][]*topo.Result, len(DefaultFaultWindows))
	for i, r := range results {
		if r.err != nil {
			return FailoverResult{}, fmt.Errorf("experiments: failover %s (cell %d): %w", spec, i, r.err)
		}
		perWin[r.winIdx] = append(perWin[r.winIdx], r.res)
	}
	for w, runs := range perWin {
		row := FailoverRow{Window: DefaultFaultWindows[w]}
		var completed, downtime, latencies []float64
		for i, res := range runs {
			e0 := res.Edges[0]
			completed = append(completed, float64(e0.Completion[metrics.StatusCompleted]))
			if f := e0.Failover; f != nil {
				downtime = append(downtime, f.Downtime.Sum().Seconds())
				row.Takeovers += f.Takeovers
				row.StandbyRecv += f.Standby.RecvDelivered
			}
			latencies = append(latencies, e0.Latency.Mean)
			if i == 0 {
				row.Backlog = e0.Cleared
			}
		}
		row.Completed = metrics.Summarize(completed)
		row.Latency = metrics.Summarize(latencies)
		row.Downtime = metrics.Summarize(downtime)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the latency-vs-fault-window table plus each window's
// catch-up quantiles.
func (r FailoverResult) Render(w io.Writer) {
	regions := r.Regions
	if regions == "" {
		regions = "none (uniform WAN)"
	}
	fmt.Fprintf(w, "# relayer failover on %s: regions=%s, %d rps on the faulted edge, %d seeds\n",
		r.Spec, regions, r.Rate, r.Seeds)
	fmt.Fprintf(w, "primary of edge 0 partitioned at %v for each fault window\n", r.FaultStart)
	fmt.Fprintf(w, "%-10s %-22s %-26s %-16s %-10s %-12s\n",
		"window", "completed (edge 0)", "latency mean-sec (seeds)", "downtime-sec", "takeovers", "standby-recv")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-22s %-26s %-16s %-10d %-12d\n",
			row.Window, fmt.Sprintf("%.0f (n=%d)", row.Completed.Mean, row.Completed.N),
			fmt.Sprintf("%.1f [%.1f..%.1f]", row.Latency.Mean, row.Latency.Min, row.Latency.Max),
			fmt.Sprintf("%.1f", row.Downtime.Mean), row.Takeovers, row.StandbyRecv)
	}
	for _, row := range r.Rows {
		if row.Backlog.Len() == 0 {
			continue
		}
		c := row.Backlog.Samples
		q := func(f float64) time.Duration { return c[int(f*float64(len(c)-1))] }
		fmt.Fprintf(w, "backlog cleared (window %v): q25=%v q50=%v q75=%v last=%v\n",
			row.Window, q(0.25).Round(time.Second), q(0.5).Round(time.Second),
			q(0.75).Round(time.Second), c[len(c)-1].Round(time.Second))
	}
}
