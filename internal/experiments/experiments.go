// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV): each function regenerates the corresponding
// rows/series on the simulated testbed. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/framework"
	"ibcbench/internal/metrics"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/topo"
	"ibcbench/internal/workload"
)

// Options bounds an experiment's cost. The paper runs 20 executions per
// configuration; tests and benches default lower.
type Options struct {
	Seeds int
	// Rates overrides the swept input rates (requests/second).
	Rates []int
	// Windows is the number of submission block-windows.
	Windows int
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS, 1 = serial).
	// Each (config, seed) execution is an independent deterministic
	// simulation, so parallel and serial sweeps yield identical results.
	Workers int
	// Regions optionally places topology deployments on a geo region
	// preset (see geo.ParseSpec; "" = the paper's uniform WAN).
	Regions string
	// Validators overrides every chain's validator-set size in topology
	// deployments (0 = the paper's five); the votescale experiment sweeps
	// this axis explicitly.
	Validators int
	// Parallel partitions each run's chains over this many intra-run
	// workers (0/1 = the serial scheduler). Results are byte-identical
	// either way; see topo.DeployConfig.ParallelWorkers.
	Parallel int
	// Live publishes periodic progress snapshots of every topology-
	// scenario run (nil = disabled; see topo.LiveConfig). Sweeps run
	// seeds concurrently, so the hook must be safe for concurrent use.
	// The hook is read-only on the deployment and never changes
	// simulation results.
	Live *topo.LiveConfig
}

func (o Options) seeds() int {
	if o.Seeds <= 0 {
		return 3
	}
	return o.Seeds
}

// --- Fig. 6 / Fig. 7 / Table I: Tendermint-side throughput sweep -------------

// Table1Row is one row of Table I.
type Table1Row struct {
	Rate      int
	Requested int
	Submitted int
	Committed int
}

// TendermintResult bundles the three artifacts of the submission sweep.
type TendermintResult struct {
	Fig6   framework.Series // throughput violins (TFPS)
	Fig7   framework.Series // mean block interval (seconds)
	Table1 []Table1Row
}

// DefaultTendermintRates is a representative subset of the paper's
// 250–14,000 RPS sweep.
var DefaultTendermintRates = []int{250, 500, 1000, 2000, 3000, 5000, 7000, 9000, 11000, 13000}

// Tendermint runs the MsgTransfer inclusion sweep (Figs. 6, 7; Table I):
// submit transfer batches for `Windows` consecutive block windows and
// measure inclusion throughput and block intervals.
func Tendermint(opt Options) TendermintResult {
	rates := opt.Rates
	if rates == nil {
		rates = DefaultTendermintRates
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 15
	}
	res := TendermintResult{
		Fig6: framework.Series{Name: "Fig6 Tendermint throughput", XLabel: "rate(rps)", YLabel: "TFPS"},
		Fig7: framework.Series{Name: "Fig7 block interval", XLabel: "rate(rps)", YLabel: "seconds"},
	}
	type job struct{ rate, seed int }
	type run struct {
		tput     float64
		hasTput  bool
		interval float64
		stats    workload.Stats
		commit   int
	}
	var jobs []job
	for _, rate := range rates {
		for seed := 0; seed < opt.seeds(); seed++ {
			jobs = append(jobs, job{rate, seed})
		}
	}
	runs := ParallelMap(jobs, opt.Workers, func(j job) run {
		env := framework.Setup(framework.SetupConfig{Seed: int64(1000*j.rate + j.seed)})
		env.Workload.RunConstantRate(j.rate, windows)
		// Run long enough for all windows even with stretched blocks.
		deadline := time.Duration(windows+4) * simconf.MinBlockInterval * 16
		runUntilHeight(env, int64(windows)+2, deadline)

		st := env.Testbed.Pair.A.Store
		committed, span := committedTransfers(st, int64(windows))
		r := run{interval: meanInterval(st).Seconds(), stats: env.Workload.Stats(), commit: committed}
		if span > 0 {
			r.tput = float64(committed) / span.Seconds()
			r.hasTput = true
		}
		return r
	})
	for i, rate := range rates {
		var tput, intervals []float64
		row := Table1Row{Rate: rate}
		for s := 0; s < opt.seeds(); s++ {
			r := runs[i*opt.seeds()+s]
			if r.hasTput {
				tput = append(tput, r.tput)
			}
			intervals = append(intervals, r.interval)
			row.Requested += r.stats.Requested
			row.Submitted += r.stats.Submitted
			row.Committed += r.commit
		}
		res.Fig6.Add(float64(rate), metrics.Summarize(tput))
		res.Fig7.Add(float64(rate), metrics.Summarize(intervals))
		res.Table1 = append(res.Table1, row)
	}
	return res
}

// runUntilHeight advances the sim until chain A reaches height or the
// deadline passes, stepping block by block.
func runUntilHeight(env *framework.Environment, height int64, deadline time.Duration) {
	step := simconf.MinBlockInterval
	for env.Scheduler().Now() < deadline && env.Testbed.Pair.A.Store.Height() < height {
		_ = env.Run(env.Scheduler().Now() + step)
	}
}

// committedTransfers counts MsgTransfer messages committed in the first
// `windows` non-empty blocks and the time they span.
func committedTransfers(st *store.Store, windows int64) (int, time.Duration) {
	var (
		count      int
		first      = time.Duration(-1)
		last       time.Duration
		seenBlocks int64
	)
	for h := int64(1); h <= st.Height() && seenBlocks < windows; h++ {
		cb, err := st.Block(h)
		if err != nil {
			break
		}
		n := 0
		for _, tx := range cb.Block.Data {
			n += transferMsgs(tx)
		}
		if n == 0 && first < 0 {
			continue // skip warm-up empty blocks
		}
		seenBlocks++
		if first < 0 {
			first = cb.Block.Header.Time
		}
		last = cb.Block.Header.Time
		count += n
	}
	if first < 0 || last <= first {
		return count, simconf.MinBlockInterval * time.Duration(windows)
	}
	return count, last - first
}

func transferMsgs(tx interface{ Size() int }) int {
	t, ok := tx.(*app.Tx)
	if !ok {
		return 0
	}
	n := 0
	for _, m := range t.Msgs {
		if m.MsgType() == "MsgTransfer" {
			n++
		}
	}
	return n
}

// meanInterval averages inter-block times over non-genesis blocks.
func meanInterval(st *store.Store) time.Duration {
	if st.Height() < 2 {
		return 0
	}
	var prev time.Duration
	var total time.Duration
	n := 0
	for h := int64(1); h <= st.Height(); h++ {
		cb, _ := st.Block(h)
		if h > 1 {
			total += cb.Block.Header.Time - prev
			n++
		}
		prev = cb.Block.Header.Time
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// --- Fig. 8 / Fig. 9 / Fig. 10 / Fig. 11: relayer throughput ------------------

// RelayerPoint is one measured configuration of the relayer sweep.
type RelayerPoint struct {
	Rate       int
	Relayers   int
	LAN        bool
	Throughput metrics.Dist // TFPS across seeds
	// Mean completion-status counts (Figs. 10/11).
	Completed    float64
	Partial      float64
	Initiated    float64
	NotCommitted float64
	// Redundant errors per run (two-relayer pathology).
	RedundantErrors float64
}

// DefaultRelayerRates is a representative subset of the paper's
// 20–300 RPS sweep.
var DefaultRelayerRates = []int{20, 60, 100, 140, 180, 220, 300}

// RelayerSweep measures end-to-end cross-chain throughput within 50
// source-chain blocks (Figs. 8–11).
func RelayerSweep(opt Options, relayers int, lan bool) []RelayerPoint {
	rates := opt.Rates
	if rates == nil {
		rates = DefaultRelayerRates
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 50
	}
	type job struct{ rate, seed int }
	type run struct {
		counts    map[metrics.Status]int
		tput      float64
		hasTput   bool
		redundant float64
	}
	var jobs []job
	for _, rate := range rates {
		for seed := 0; seed < opt.seeds(); seed++ {
			jobs = append(jobs, job{rate, seed})
		}
	}
	runs := ParallelMap(jobs, opt.Workers, func(j job) run {
		env := framework.Setup(framework.SetupConfig{
			Seed:       int64(7000*j.rate + 31*relayers + j.seed),
			Relayers:   relayers,
			LANLatency: lan,
		})
		env.Workload.RunConstantRate(j.rate, windows)
		deadline := time.Duration(windows+8) * simconf.MinBlockInterval * 4
		runUntilHeight(env, int64(windows), deadline)
		now := env.Scheduler().Now()
		r := run{counts: env.Tracker.CompletionCounts()}
		if now > 0 {
			r.tput = float64(r.counts[metrics.StatusCompleted]) / now.Seconds()
			r.hasTput = true
		}
		for _, rs := range env.Relayers {
			r.redundant += float64(rs.Stats().RedundantErrors)
		}
		return r
	})
	var out []RelayerPoint
	for i, rate := range rates {
		pt := RelayerPoint{Rate: rate, Relayers: relayers, LAN: lan}
		var tputs []float64
		for s := 0; s < opt.seeds(); s++ {
			r := runs[i*opt.seeds()+s]
			if r.hasTput {
				tputs = append(tputs, r.tput)
			}
			pt.Completed += float64(r.counts[metrics.StatusCompleted])
			pt.Partial += float64(r.counts[metrics.StatusPartial])
			pt.Initiated += float64(r.counts[metrics.StatusInitiated])
			pt.NotCommitted += float64(r.counts[metrics.StatusNotCommitted])
			pt.RedundantErrors += r.redundant
		}
		n := float64(opt.seeds())
		pt.Completed /= n
		pt.Partial /= n
		pt.Initiated /= n
		pt.NotCommitted /= n
		pt.RedundantErrors /= n
		pt.Throughput = metrics.Summarize(tputs)
		out = append(out, pt)
	}
	return out
}

// --- Fig. 12: 13-step latency breakdown ---------------------------------------

// StepSpan is one step's activity window across all packets.
type StepSpan struct {
	Step  metrics.Step
	First time.Duration
	Last  time.Duration
}

// Fig12Result is the step breakdown of a single-block batch.
type Fig12Result struct {
	Transfers int
	Steps     []StepSpan
	// Total is the elapsed time from first broadcast to last completion.
	Total time.Duration
	// Phase durations (transfer / receive / ack) and the two data pulls.
	TransferPhase    time.Duration
	ReceivePhase     time.Duration
	AckPhase         time.Duration
	TransferDataPull time.Duration
	RecvDataPull     time.Duration
	Completed        int
}

// Fig12 submits `transfers` requests within one block and reports the
// 13-step breakdown. The paper's run uses 5,000 transfers.
func Fig12(transfers int, seed int64) Fig12Result {
	env := framework.Setup(framework.SetupConfig{Seed: seed})
	env.Scheduler().At(time.Millisecond, func() { env.Workload.SubmitBatch(transfers) })
	_ = env.Run(45 * time.Minute)

	t := env.Tracker
	res := Fig12Result{Transfers: transfers}
	res.Completed = t.CompletionCounts()[metrics.StatusCompleted]
	var firstBroadcast, lastAck time.Duration
	for s := metrics.Step(1); int(s) <= metrics.NumSteps; s++ {
		first, last, ok := t.StepSpan(s)
		if !ok {
			continue
		}
		res.Steps = append(res.Steps, StepSpan{Step: s, First: first, Last: last})
		if s == metrics.StepTransferBroadcast {
			firstBroadcast = first
		}
		if s == metrics.StepAckConfirmation {
			lastAck = last
		}
	}
	res.Total = lastAck - firstBroadcast
	phase := func(from, to metrics.Step) time.Duration {
		_, lastTo, ok2 := t.StepSpan(to)
		_, lastFrom, ok1 := t.StepSpan(from)
		if !ok1 || !ok2 {
			return 0
		}
		return lastTo - lastFrom
	}
	res.TransferPhase = phase(metrics.StepTransferBroadcast, metrics.StepTransferDataPull)
	res.ReceivePhase = phase(metrics.StepTransferDataPull, metrics.StepRecvDataPull)
	res.AckPhase = phase(metrics.StepRecvDataPull, metrics.StepAckConfirmation)
	res.TransferDataPull = phase(metrics.StepTransferConfirmation, metrics.StepTransferDataPull)
	res.RecvDataPull = phase(metrics.StepRecvConfirmation, metrics.StepRecvDataPull)
	return res
}

// --- Fig. 13: submission strategies --------------------------------------------

// Fig13Row is one submission strategy's outcome.
type Fig13Row struct {
	Blocks     int
	Completion time.Duration // first broadcast -> last completion
	Completed  int
}

// DefaultStrategies mirrors the paper: split 5,000 transfers over
// 1..64 blocks.
var DefaultStrategies = []int{1, 2, 4, 8, 16, 32, 64}

// Fig13 measures completion latency for each submission strategy.
func Fig13(transfers int, strategies []int, seed int64) []Fig13Row {
	if strategies == nil {
		strategies = DefaultStrategies
	}
	var out []Fig13Row
	for _, blocks := range strategies {
		env := framework.Setup(framework.SetupConfig{Seed: seed + int64(blocks)})
		env.Workload.SubmitSpread(transfers, blocks)
		_ = env.Run(45 * time.Minute)
		t := env.Tracker
		first, _, ok1 := t.StepSpan(metrics.StepTransferBroadcast)
		_, last, ok2 := t.StepSpan(metrics.StepAckConfirmation)
		row := Fig13Row{
			Blocks:    blocks,
			Completed: t.CompletionCounts()[metrics.StatusCompleted],
		}
		if ok1 && ok2 {
			row.Completion = last - first
		}
		out = append(out, row)
	}
	return out
}

// --- Gas table (§IV-A) ---------------------------------------------------------

// GasRow reports measured gas for a 100-message transaction class.
type GasRow struct {
	MsgType  string
	Measured uint64
	Paper    uint64
}

// GasTable measures per-class gas on a live run of 100 transfers.
func GasTable(seed int64) []GasRow {
	env := framework.Setup(framework.SetupConfig{Seed: seed})
	env.Scheduler().At(time.Millisecond, func() { env.Workload.SubmitBatch(100) })
	_ = env.Run(10 * time.Minute)
	want := map[string]uint64{
		"MsgTransfer":        3669161,
		"MsgRecvPacket":      7238699,
		"MsgAcknowledgement": 3107462,
	}
	got := map[string]uint64{}
	scan := func(st *store.Store) {
		for h := int64(1); h <= st.Height(); h++ {
			cb, _ := st.Block(h)
			for i, tx := range cb.Block.Data {
				t, ok := tx.(*app.Tx)
				if !ok || len(t.Msgs) < 100 || !cb.Results[i].IsOK() {
					continue
				}
				kind := t.Msgs[len(t.Msgs)-1].MsgType() // last msg: batch class
				if _, tracked := want[kind]; tracked && got[kind] == 0 {
					got[kind] = cb.Results[i].GasUsed
				}
			}
		}
	}
	scan(env.Testbed.Pair.A.Store)
	scan(env.Testbed.Pair.B.Store)
	var out []GasRow
	for _, k := range []string{"MsgTransfer", "MsgRecvPacket", "MsgAcknowledgement"} {
		out = append(out, GasRow{MsgType: k, Measured: got[k], Paper: want[k]})
	}
	return out
}

// --- WebSocket limit (§V) --------------------------------------------------------

// WebSocketResult classifies transfers after the frame-overflow scenario.
type WebSocketResult struct {
	Transfers  int
	FramesLost uint64
	Completed  int
	TimedOut   uint64
	Stuck      int
}

// WebSocketLimit reproduces §V's overflow experiment: a block containing
// 1,000 transactions with 100 transfers each, relayer clear interval 0.
// Transactions are injected directly into the mempool so they land in a
// single block, as in the paper.
func WebSocketLimit(seed int64, txs, timeoutBlocks int) WebSocketResult {
	env := framework.Setup(framework.SetupConfig{Seed: seed})
	env.Workload.TimeoutBlocks = int64(timeoutBlocks)
	pair := env.Testbed.Pair
	env.Scheduler().At(time.Millisecond, func() {
		env.Workload.InjectDirect(txs * 100)
	})
	// Run for 4x the timeout horizon, as the paper does.
	_ = env.Run(time.Duration(4*timeoutBlocks+40) * simconf.MinBlockInterval)

	counts := env.Tracker.CompletionCounts()
	res := WebSocketResult{
		Transfers: txs * 100,
		Completed: counts[metrics.StatusCompleted],
	}
	for _, r := range env.Relayers {
		res.FramesLost += r.Stats().FramesLost
		res.TimedOut += r.Stats().TimeoutsDelivered
	}
	// Stuck: committed on source, never delivered, never timed out.
	res.Stuck = counts[metrics.StatusInitiated] - int(res.TimedOut)
	if res.Stuck < 0 {
		res.Stuck = 0
	}
	_ = pair
	return res
}
