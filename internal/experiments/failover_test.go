package experiments

import (
	"strings"
	"testing"

	"ibcbench/internal/metrics"
)

// TestFailoverShape runs the relayer-failover sweep on a small two-chain
// deployment and checks its structural guarantees: the fault-free
// baseline records no takeover, every faulted window activates the
// standby exactly once with downtime roughly tracking the window, and
// completion never degrades across windows (the standby absorbs the
// outage).
func TestFailoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep runs several fault windows")
	}
	res, err := Failover(Options{Seeds: 1, Windows: 2, Regions: "3wan"}, "two", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DefaultFaultWindows) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(DefaultFaultWindows))
	}
	base := res.Rows[0]
	if base.Window != 0 || base.Takeovers != 0 || base.Downtime.Mean != 0 {
		t.Fatalf("baseline row recorded faults: %+v", base)
	}
	want := base.Completed.Mean
	if want <= 0 {
		t.Fatalf("baseline completed nothing: %+v", base)
	}
	for _, row := range res.Rows[1:] {
		if row.Takeovers != 1 {
			t.Fatalf("window %v: %d takeovers, want 1", row.Window, row.Takeovers)
		}
		if row.Downtime.Mean <= 0 || row.Downtime.Mean > row.Window.Seconds() {
			t.Fatalf("window %v: downtime %.1fs outside (0, window]", row.Window, row.Downtime.Mean)
		}
		if row.Completed.Mean != want {
			t.Fatalf("window %v: completed %.0f, baseline %.0f", row.Window, row.Completed.Mean, want)
		}
		if row.StandbyRecv == 0 {
			t.Fatalf("window %v: standby relayed nothing", row.Window)
		}
		if row.Latency.Mean <= base.Latency.Mean {
			t.Fatalf("window %v: faulted latency %.1fs not above baseline %.1fs",
				row.Window, row.Latency.Mean, base.Latency.Mean)
		}
		if row.Backlog.Len() == 0 {
			t.Fatalf("window %v: no cleared-backlog curve", row.Window)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	for _, wantStr := range []string{"relayer failover", "backlog cleared", "3wan"} {
		if !strings.Contains(sb.String(), wantStr) {
			t.Fatalf("render missing %q:\n%s", wantStr, sb.String())
		}
	}
}

// TestFailoverRejectsBadInput covers spec validation.
func TestFailoverRejectsBadInput(t *testing.T) {
	if _, err := Failover(Options{Seeds: 1}, "ring:3", 2); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := Failover(Options{Seeds: 1, Regions: "mars"}, "two", 2); err == nil {
		t.Fatal("bad region preset accepted")
	}
	if _, err := Failover(Options{Seeds: 1}, "two", 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// TestTopologySweepWithRegions: the topo sweep deploys on a region
// preset and still completes its workload.
func TestTopologySweepWithRegions(t *testing.T) {
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	res, err := TopologySweepMode(Options{Seeds: seeds, Windows: 2, Regions: "hubspoke:2"}, "two", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Mean <= 0 {
		t.Fatalf("no throughput under region model: %+v", res.Throughput)
	}
	if res.Sample.Total[metrics.StatusCompleted] == 0 {
		t.Fatal("no completions under region model")
	}
	if _, err := TopologySweepMode(Options{Seeds: 1, Regions: "nowhere"}, "two", 2, false); err == nil {
		t.Fatal("bad region preset accepted")
	}
}
