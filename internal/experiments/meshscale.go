package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

// DefaultMeshScaleChains is the swept mesh width. The conservative
// parallel runner's speedup grows with the number of chain partitions,
// so chain count is the primary axis; two chains is the break-even
// floor, eight is where near-linear scaling should show.
var DefaultMeshScaleChains = []int{2, 4, 8}

// DefaultMeshScaleValidators sweeps per-chain consensus weight: more
// validators means more intra-partition work per synchronization
// window, which favours the parallel runner.
var DefaultMeshScaleValidators = []int{4, 8}

// MeshScalePoint is one (chains, validators, rate) cell of the grid.
type MeshScalePoint struct {
	Chains     int
	Validators int
	Rate       int
	// SerialWallSec / ParallelWallSec are summed host wall-clock across
	// seeds for the two runner modes on identical scenarios.
	SerialWallSec   float64
	ParallelWallSec float64
	// Speedup is SerialWallSec / ParallelWallSec.
	Speedup float64
	// FingerprintEqual reports whether every seed's marshalled
	// topo.Result was byte-identical between the serial scheduler and
	// the partitioned runner — the tentpole's correctness contract.
	FingerprintEqual bool
	// Completed is the completed-transfer distribution across seeds
	// (identical in both modes whenever FingerprintEqual holds).
	Completed metrics.Dist
}

// MeshScaleResult is the serial-vs-parallel scaling experiment.
type MeshScaleResult struct {
	Workers int
	Seeds   int
	Windows int
	Rows    []MeshScalePoint
}

// MeshScale runs every (chains, validators, rate) cell of a full-mesh
// grid twice — once on the serial scheduler, once on the partitioned
// runner with `workers` OS workers — and reports wall-clock speedup
// plus result-fingerprint equality. Cells execute sequentially and
// uncontended: the parallel runner's own worker pool is the thing being
// timed, so an outer sweep pool would corrupt the curve.
func MeshScale(opt Options, chains []int, workers int) (MeshScaleResult, error) {
	if len(chains) == 0 {
		chains = DefaultMeshScaleChains
	}
	for _, n := range chains {
		if n < 2 {
			return MeshScaleResult{}, fmt.Errorf("experiments: meshscale needs >= 2 chains per cell (got %d)", n)
		}
	}
	if workers < 2 {
		workers = 2
	}
	validators := DefaultMeshScaleValidators
	if opt.Validators > 0 {
		validators = []int{opt.Validators}
	}
	rates := opt.Rates
	if len(rates) == 0 {
		rates = []int{2}
	}
	windows := opt.Windows
	if windows <= 0 {
		windows = 2
	}
	out := MeshScaleResult{Workers: workers, Seeds: opt.seeds(), Windows: windows}

	run := func(n, vals, rate, w int, seed int64) ([]byte, float64, float64, error) {
		tp := topo.Mesh(n)
		edgeRates := make(map[int]int, len(tp.Edges))
		for i := range tp.Edges {
			edgeRates[i] = rate
		}
		s := topo.Scenario{
			Name:     fmt.Sprintf("meshscale-%dx%d-r%d", n, vals, rate),
			Topology: tp,
			Deploy: topo.DeployConfig{
				Validators:      vals,
				ParallelWorkers: w,
				Live:            opt.Live,
			},
			EdgeRates: edgeRates,
			Windows:   windows,
		}
		start := time.Now()
		res, err := s.Run(seed)
		if err != nil {
			return nil, 0, 0, err
		}
		wall := time.Since(start).Seconds()
		fp, err := json.Marshal(res)
		if err != nil {
			return nil, 0, 0, err
		}
		return fp, wall, float64(res.Total[metrics.StatusCompleted]), nil
	}

	for _, n := range chains {
		for _, vals := range validators {
			for _, rate := range rates {
				row := MeshScalePoint{Chains: n, Validators: vals, Rate: rate, FingerprintEqual: true}
				var completed []float64
				for s := 0; s < opt.seeds(); s++ {
					seed := int64(900*(n+1) + 37*vals + s)
					serialFP, serialWall, done, err := run(n, vals, rate, 1, seed)
					if err != nil {
						return MeshScaleResult{}, fmt.Errorf("experiments: meshscale %d-chain serial: %w", n, err)
					}
					parFP, parWall, _, err := run(n, vals, rate, workers, seed)
					if err != nil {
						return MeshScaleResult{}, fmt.Errorf("experiments: meshscale %d-chain parallel: %w", n, err)
					}
					if !bytes.Equal(serialFP, parFP) {
						row.FingerprintEqual = false
					}
					row.SerialWallSec += serialWall
					row.ParallelWallSec += parWall
					completed = append(completed, done)
				}
				if row.ParallelWallSec > 0 {
					row.Speedup = row.SerialWallSec / row.ParallelWallSec
				}
				row.Completed = metrics.Summarize(completed)
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// Render writes the serial-vs-parallel scaling table.
func (r MeshScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "# meshscale: %d workers, %d seeds, %d windows\n", r.Workers, r.Seeds, r.Windows)
	fmt.Fprintf(w, "%-8s %-12s %-6s %-14s %-14s %-9s %-12s %-12s\n",
		"chains", "validators", "rate", "serial-sec", "parallel-sec", "speedup", "identical", "completed")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-12d %-6d %-14.2f %-14.2f %-9.2f %-12v %-12s\n",
			row.Chains, row.Validators, row.Rate,
			row.SerialWallSec, row.ParallelWallSec, row.Speedup, row.FingerprintEqual,
			fmt.Sprintf("%.0f (n=%d)", row.Completed.Mean, row.Completed.N))
	}
}
