package experiments

import (
	"testing"
	"time"

	"ibcbench/internal/metrics"
)

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		// The shape assertions (minutes-scale total, pull domination) are
		// calibrated to the paper's 5,000-transfer burst; there is no
		// smaller size with the same shape.
		t.Skip("heavy single-block burst; run without -short")
	}
	res := Fig12(5000, 42)
	if res.Completed != 5000 {
		t.Fatalf("completed = %d of 5000", res.Completed)
	}
	// Paper: ~455 s total with the two data pulls at ~69%. Our page-cost
	// model preserves the order of magnitude and the pull domination
	// (EXPERIMENTS.md records the deviation in absolute totals).
	if res.Total < 60*time.Second || res.Total > 650*time.Second {
		t.Fatalf("total = %v, want minutes-scale", res.Total)
	}
	pulls := res.TransferDataPull + res.RecvDataPull
	frac := pulls.Seconds() / res.Total.Seconds()
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("data pulls = %.0f%% of total, want dominant (~69%% in paper)", 100*frac)
	}
	if res.AckPhase > res.TransferPhase {
		t.Fatalf("ack phase (%v) should be the shortest (transfer %v)",
			res.AckPhase, res.TransferPhase)
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		// The helps-then-inverts crossover only appears at the paper's
		// full 5,000-transfer volume.
		t.Skip("heavy strategy sweep; run without -short")
	}
	rows := Fig13(5000, []int{1, 16, 64}, 7)
	byBlocks := map[int]Fig13Row{}
	for _, r := range rows {
		byBlocks[r.Blocks] = r
		if r.Completed != 5000 {
			t.Fatalf("strategy %d completed %d", r.Blocks, r.Completed)
		}
	}
	// Paper: 455s (1 block) -> 138s (16 blocks) -> 441s (64 blocks):
	// spreading helps up to a point, then inverts.
	if byBlocks[16].Completion >= byBlocks[1].Completion {
		t.Fatalf("16-block (%v) not faster than 1-block (%v)",
			byBlocks[16].Completion, byBlocks[1].Completion)
	}
	if byBlocks[64].Completion <= byBlocks[16].Completion {
		t.Fatalf("64-block (%v) not slower than 16-block (%v)",
			byBlocks[64].Completion, byBlocks[16].Completion)
	}
	reduction := 1 - byBlocks[16].Completion.Seconds()/byBlocks[1].Completion.Seconds()
	if reduction < 0.4 {
		t.Fatalf("16-block reduction = %.0f%%, paper reports ~70%%", 100*reduction)
	}
}

func TestTendermintSweepShape(t *testing.T) {
	opt := Options{Seeds: 1, Rates: []int{500, 3000, 9000}, Windows: 8}
	if testing.Short() {
		// Drop the 9,000 rps point (stretched blocks dominate the cost)
		// and shrink the windows; the rising-throughput shape survives.
		opt.Rates = []int{500, 3000}
		opt.Windows = 5
	}
	res := Tendermint(opt)
	tput := map[int]float64{}
	for i, x := range res.Fig6.X {
		tput[int(x)] = res.Fig6.Y[i].Mean
	}
	if tput[3000] <= tput[500] {
		t.Fatalf("throughput at 3000 (%f) not above 500 (%f)", tput[3000], tput[500])
	}
	iv := map[int]float64{}
	for i, x := range res.Fig7.X {
		iv[int(x)] = res.Fig7.Y[i].Mean
	}
	if !testing.Short() && iv[9000] <= iv[500]*1.5 {
		t.Fatalf("interval at 9000 rps (%f) should exceed %f", iv[9000], iv[500])
	}
	for _, row := range res.Table1 {
		if row.Requested == 0 {
			t.Fatalf("row %+v has no requests", row)
		}
	}
}

func TestRelayerSweepShape(t *testing.T) {
	pts := RelayerSweep(Options{Seeds: 1, Rates: []int{20, 100, 300}, Windows: 30}, 1, false)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Rise towards the peak region (paper: ~140 rps), then decline.
	if pts[1].Throughput.Mean <= pts[0].Throughput.Mean {
		t.Fatalf("100rps (%f) not above 20rps (%f)",
			pts[1].Throughput.Mean, pts[0].Throughput.Mean)
	}
	if pts[2].Throughput.Mean >= pts[1].Throughput.Mean {
		t.Fatalf("300rps (%f) should fall below the peak (%f)",
			pts[2].Throughput.Mean, pts[1].Throughput.Mean)
	}
	if pts[0].Completed == 0 {
		t.Fatal("no completions at 20 rps")
	}
}

func TestGasTable(t *testing.T) {
	rows := GasTable(3)
	for _, r := range rows {
		if r.Measured == 0 {
			t.Fatalf("no measured gas for %s", r.MsgType)
		}
		diff := float64(r.Measured) - float64(r.Paper)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(r.Paper) > 0.05 {
			t.Errorf("%s: measured %d vs paper %d", r.MsgType, r.Measured, r.Paper)
		}
	}
}

func TestWebSocketLimit(t *testing.T) {
	res := WebSocketLimit(5, 1000, 60)
	if res.FramesLost == 0 {
		t.Fatal("giant block did not overflow the WebSocket frame limit")
	}
	if res.Stuck == 0 {
		t.Fatal("no stuck transfers despite lost frames and clear interval 0")
	}
	if res.Stuck <= res.Completed {
		t.Fatalf("stuck (%d) should dominate completed (%d), paper: 81.8%% vs 2.5%%",
			res.Stuck, res.Completed)
	}
	_ = metrics.StatusCompleted
}

func TestForwardingComparisonShape(t *testing.T) {
	res, err := ForwardingComparison(Options{Seeds: 1, Workers: 1}, "line:3", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 2 || len(res.Rows) != 2 {
		t.Fatalf("rows = %d (transfers %d), want the 1- and 2-hop curves", len(res.Rows), res.Transfers)
	}
	for _, row := range res.Rows {
		if row.SeqCompleted != 1 || row.FwdCompleted != 1 {
			t.Fatalf("hops %d: completed %d/%d", row.Hops, row.SeqCompleted, row.FwdCompleted)
		}
	}
	// Single-hop routes are identical in both modes (no middleware leg);
	// multi-hop forwarded routes must beat sequential legs.
	multi := res.Rows[1]
	if multi.Hops != 2 || multi.Forwarded.Mean >= multi.Sequential.Mean {
		t.Fatalf("2-hop forwarded %.1fs not under sequential %.1fs",
			multi.Forwarded.Mean, multi.Sequential.Mean)
	}
	if multi.Speedup <= 1 {
		t.Fatalf("speedup = %.2f", multi.Speedup)
	}
}
