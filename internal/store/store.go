// Package store is the persistent experiment archive behind `ibcbench
// serve` and `-store`: a stdlib-only, append-only run database on a
// plain directory. Every run — a `-out` result document, a bench2json
// bench document, or a single traced result — is persisted verbatim
// under a content-addressed run ID derived from (kind, commit, config
// header, seed, timestamp, payload), so re-posting the same run is
// idempotent by construction and archived bytes round-trip identically.
//
// Layout:
//
//	<dir>/index.jsonl       one JSON meta line per ingest/update (append-only journal)
//	<dir>/runs/<id>/payload.json   the archived document, byte-identical
//	<dir>/runs/<id>/trace.json     optional attached Chrome trace
//
// Durability: payload files land via temp-file + rename before the
// index line is appended in a single O_APPEND write, so a crash leaves
// either a complete run or an orphan payload directory the index never
// references (harmless — the next ingest of the same content reuses
// it). On open, a truncated or corrupt index tail — the torn-write
// signature of a crash mid-append — is dropped and the file truncated
// back to the last intact line. Later index lines for an existing ID
// update its metadata (trace attachment), keeping the journal
// append-only.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"ibcbench/internal/resultdiff"
)

// Meta is one archived run's index entry.
type Meta struct {
	// ID is the content-addressed run identifier (16 hex chars).
	ID string `json:"id"`
	// Seq is the monotone ingest sequence number (1-based); trends run
	// in Seq order.
	Seq int64 `json:"seq"`
	// Kind classifies the payload: "experiment" (a -out document),
	// "bench" (a bench2json document), "trace" (a single traced result).
	Kind string `json:"kind"`
	// Commit is the VCS revision that produced the run ("" if unknown).
	Commit string `json:"commit,omitempty"`
	// Seed is the base RNG seed lifted from the config header (0 if the
	// payload carries none).
	Seed int64 `json:"seed,omitempty"`
	// Time is the poster-supplied run timestamp (opaque; RFC3339 by
	// convention). Part of the run key, never assigned by the store —
	// a server clock would break re-post idempotency.
	Time string `json:"time,omitempty"`
	// Config is the payload's config header copy, the store's
	// compatibility key: runs group into one trend window only when
	// their headers agree on every field (resultdiff.Compatible).
	Config map[string]any `json:"config,omitempty"`
	// TraceValid reports the attached trace's structural validation:
	// nil = no trace attached.
	TraceValid *bool `json:"trace_valid,omitempty"`
}

// HasTrace reports whether a trace is attached.
func (m Meta) HasTrace() bool { return m.TraceValid != nil }

// Store is one open archive directory. All methods are safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	dir   string
	index *os.File // index.jsonl, O_APPEND
	byID  map[string]*Meta
	order []string // IDs in Seq order
	seq   int64
}

// Open opens (creating if needed) the archive at dir and replays the
// index journal, recovering from a torn tail write.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, byID: make(map[string]*Meta)}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.index = f
	return s, nil
}

// Close releases the index handle. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		return nil
	}
	err := s.index.Close()
	s.index = nil
	return err
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.jsonl") }

func (s *Store) runDir(id string) string { return filepath.Join(s.dir, "runs", id) }

// replay loads index.jsonl, tolerating exactly one torn tail: every
// line up to the first unparsable one is applied, and the file is
// truncated back to the last intact line so the journal is clean again.
func (s *Store) replay() error {
	data, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	good := 0 // bytes covered by intact, applied lines
	for off := 0; off < len(data); {
		nl := off
		for nl < len(data) && data[nl] != '\n' {
			nl++
		}
		if nl == len(data) {
			break // unterminated tail: torn write, drop it
		}
		var m Meta
		if err := json.Unmarshal(data[off:nl], &m); err != nil || m.ID == "" {
			break // corrupt tail line: drop it and everything after
		}
		s.apply(&m)
		good = nl + 1
		off = good
	}
	if good < len(data) {
		if err := os.Truncate(s.indexPath(), int64(good)); err != nil {
			return fmt.Errorf("store: truncate torn index tail: %w", err)
		}
	}
	return nil
}

// apply folds one journal line into the in-memory view: new IDs append
// to the order, later lines for a known ID update its metadata in
// place (Seq keeps the original).
func (s *Store) apply(m *Meta) {
	if prev, ok := s.byID[m.ID]; ok {
		seq := prev.Seq
		*prev = *m
		prev.Seq = seq
		return
	}
	if m.Seq > s.seq {
		s.seq = m.Seq
	}
	s.byID[m.ID] = m
	s.order = append(s.order, m.ID)
}

// appendLine journals one meta record with a single O_APPEND write.
func (s *Store) appendLine(m *Meta) error {
	if s.index == nil {
		return fmt.Errorf("store: closed")
	}
	line, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.index.Write(line); err != nil {
		return fmt.Errorf("store: append index: %w", err)
	}
	return nil
}

// RunID derives the content-addressed identifier of a run: a SHA-256
// over kind, commit, seed, timestamp, the canonicalized config header
// and the payload bytes, truncated to 16 hex chars. Identical content
// yields an identical ID, which makes re-ingest a no-op.
func RunID(kind, commit string, seed int64, timestamp string, cfg map[string]any, payload []byte) string {
	h := sha256.New()
	for _, part := range []string{kind, commit, strconv.FormatInt(seed, 10), timestamp} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	// The config header is part of the payload bytes too, but hashing
	// its canonical form keeps the key stable if payload formatting
	// (indentation) changes between posts of the same run.
	flat := resultdiff.Flatten("", cfg)
	paths := make([]string, 0, len(flat))
	for p := range flat {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "%s=%v\x00", p, flat[p])
	}
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Ingest archives one run document. Kind classifies the payload, commit
// and timestamp are provenance supplied by the poster (both may be
// empty), payload is the document verbatim — it must be valid JSON; its
// "config" header (if any) and the header's "seed" are lifted into the
// index entry. The returned bool is false when the identical run was
// already archived (idempotent re-post: nothing is written).
func (s *Store) Ingest(kind, commit, timestamp string, payload []byte) (Meta, bool, error) {
	var doc any
	if err := json.Unmarshal(payload, &doc); err != nil {
		return Meta{}, false, fmt.Errorf("store: payload is not JSON: %w", err)
	}
	if kind == "" {
		kind = "experiment"
	}
	cfg := resultdiff.ConfigHeader(doc)
	var seed int64
	if f, ok := cfg["seed"].(float64); ok {
		seed = int64(f)
	}
	id := RunID(kind, commit, seed, timestamp, cfg, payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.byID[id]; ok {
		return *m, false, nil
	}
	if err := s.writeRunFile(id, "payload.json", payload); err != nil {
		return Meta{}, false, err
	}
	m := &Meta{ID: id, Seq: s.seq + 1, Kind: kind, Commit: commit, Seed: seed, Time: timestamp, Config: cfg}
	if err := s.appendLine(m); err != nil {
		return Meta{}, false, err
	}
	s.seq = m.Seq
	s.byID[id] = m
	s.order = append(s.order, id)
	return *m, true, nil
}

// AttachTrace stores a run's Chrome trace next to its payload and
// records the validation verdict (the caller runs tracecheck), updating
// the journal with a fresh meta line.
func (s *Store) AttachTrace(id string, trace []byte, valid bool) (Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return Meta{}, fmt.Errorf("store: no run %s", id)
	}
	if err := s.writeRunFile(id, "trace.json", trace); err != nil {
		return Meta{}, err
	}
	v := valid
	m.TraceValid = &v
	if err := s.appendLine(m); err != nil {
		return Meta{}, err
	}
	return *m, nil
}

// writeRunFile lands a file under runs/<id>/ atomically: temp file in
// the same directory, then rename.
func (s *Store) writeRunFile(id, name string, data []byte) error {
	dir := s.runDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Runs lists every archived run in ingest order.
func (s *Store) Runs() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.byID[id])
	}
	return out
}

// Get returns one run's meta and its payload bytes exactly as ingested.
func (s *Store) Get(id string) (Meta, []byte, error) {
	s.mu.Lock()
	m, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return Meta{}, nil, fmt.Errorf("store: no run %s", id)
	}
	meta := *m
	s.mu.Unlock()
	payload, err := os.ReadFile(filepath.Join(s.runDir(id), "payload.json"))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: %w", err)
	}
	return meta, payload, nil
}

// Trace returns a run's attached trace bytes.
func (s *Store) Trace(id string) ([]byte, error) {
	s.mu.Lock()
	m, ok := s.byID[id]
	hasTrace := ok && m.HasTrace()
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no run %s", id)
	}
	if !hasTrace {
		return nil, fmt.Errorf("store: run %s has no trace", id)
	}
	data, err := os.ReadFile(filepath.Join(s.runDir(id), "trace.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// Dir reports the archive directory.
func (s *Store) Dir() string {
	return s.dir
}
