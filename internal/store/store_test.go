package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

// doc builds a minimal -out-style payload: a config header plus one
// metric leaf.
func doc(topology string, seed int64, blocksPerSec float64) []byte {
	return []byte(fmt.Sprintf(`{
  "config": {"topology": %q, "seed": %d, "rate": 5},
  "topo": {"Sample": {"BlocksPerSec": %v}, "Throughput": {"Mean": 1.0}}
}
`, topology, seed, blocksPerSec))
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestIngestAndGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	payload := doc("hub:3", 42, 0.8)
	m, created, err := s.Ingest("experiment", "abc123", "2026-08-08T00:00:00Z", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !created || m.Seq != 1 || m.Seed != 42 || m.Commit != "abc123" {
		t.Fatalf("meta = %+v created=%v", m, created)
	}
	if m.Config["topology"] != "hub:3" {
		t.Fatalf("config header not lifted: %v", m.Config)
	}
	got, back, err := s.Get(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !bytes.Equal(back, payload) {
		t.Fatalf("payload did not round-trip byte-identically")
	}
}

// TestResultJSONRoundTripByteIdentity archives a real topo.Result —
// including a metrics-registry snapshot — and pins that the archived
// bytes are exactly the marshaled input.
func TestResultJSONRoundTripByteIdentity(t *testing.T) {
	res := &topo.Result{
		Name: "two", Seed: 7, Duration: 90 * time.Second,
		Blocks: 18, BlocksPerSec: 0.2,
		Edges: []topo.EdgeReport{{
			Edge: 0, From: "ibc-0", To: "ibc-1",
			Completion: map[metrics.Status]int{metrics.StatusCompleted: 10},
			Latency:    metrics.Summarize([]float64{25.1, 25.2, 25.3}),
		}},
		Total:      map[metrics.Status]int{metrics.StatusCompleted: 10},
		Throughput: 0.11,
		Provenance: &topo.Provenance{Commit: "abc123", GoVersion: "go1.22", Time: "2026-08-08T00:00:00Z"},
	}
	payload, err := json.MarshalIndent(map[string]any{
		"config": map[string]any{"topology": "two", "seed": 7},
		"result": res,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	s := open(t, t.TempDir())
	m, _, err := s.Ingest("trace", "abc123", "2026-08-08T00:00:00Z", payload)
	if err != nil {
		t.Fatal(err)
	}
	_, back, err := s.Get(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatalf("archived Result JSON differs from input:\n%s\nvs\n%s", back, payload)
	}
}

// TestIdempotentReingest: posting the identical run (same kind, commit,
// timestamp, bytes) must be a no-op returning the original meta.
func TestIdempotentReingest(t *testing.T) {
	s := open(t, t.TempDir())
	payload := doc("hub:3", 42, 0.8)
	m1, created1, err := s.Ingest("experiment", "abc", "t0", payload)
	if err != nil || !created1 {
		t.Fatalf("first ingest: %v created=%v", err, created1)
	}
	m2, created2, err := s.Ingest("experiment", "abc", "t0", payload)
	if err != nil {
		t.Fatal(err)
	}
	if created2 || m2.ID != m1.ID || m2.Seq != m1.Seq {
		t.Fatalf("re-ingest not idempotent: %+v vs %+v created=%v", m2, m1, created2)
	}
	if n := len(s.Runs()); n != 1 {
		t.Fatalf("%d runs after re-ingest, want 1", n)
	}
	// A different timestamp is a different run of the same content.
	_, created3, err := s.Ingest("experiment", "abc", "t1", payload)
	if err != nil || !created3 {
		t.Fatalf("new-timestamp ingest: %v created=%v", err, created3)
	}
}

// TestTruncatedIndexRecovery simulates a crash mid-append: a torn
// (unterminated or corrupt) index tail is dropped on open, the journal
// truncated back to the last intact line, and ingest continues cleanly.
func TestTruncatedIndexRecovery(t *testing.T) {
	for name, tear := range map[string]string{
		"unterminated": `{"id":"deadbeef","seq":9,"kind":"exp`,
		"corrupt-json": "not json at all\n",
		"id-less":      `{"seq": 9}` + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir)
			var ids []string
			for i := 0; i < 3; i++ {
				m, _, err := s.Ingest("experiment", "c", fmt.Sprintf("t%d", i), doc("hub:3", int64(i), 0.8))
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, m.ID)
			}
			s.Close()
			idx := filepath.Join(dir, "index.jsonl")
			f, err := os.OpenFile(idx, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tear); err != nil {
				t.Fatal(err)
			}
			f.Close()

			re := open(t, dir)
			runs := re.Runs()
			if len(runs) != 3 {
				t.Fatalf("recovered %d runs, want 3", len(runs))
			}
			for i, m := range runs {
				if m.ID != ids[i] || m.Seq != int64(i+1) {
					t.Fatalf("run %d = %+v, want ID %s seq %d", i, m, ids[i], i+1)
				}
			}
			// The journal is clean again: a fresh ingest lands and a fresh
			// replay sees all four runs.
			if _, created, err := re.Ingest("experiment", "c", "t9", doc("hub:3", 9, 0.9)); err != nil || !created {
				t.Fatalf("post-recovery ingest: %v created=%v", err, created)
			}
			re.Close()
			if got := len(open(t, dir).Runs()); got != 4 {
				t.Fatalf("%d runs after recovery+ingest, want 4", got)
			}
		})
	}
}

// TestConcurrentIngest hammers one store from many goroutines; every
// run must land with a unique sequence number and survive a replay.
func TestConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, created, err := s.Ingest("experiment", "c", fmt.Sprintf("t%d", i), doc("hub:3", int64(i), float64(i)))
			if err == nil && !created {
				err = fmt.Errorf("ingest %d deduplicated", i)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	runs := s.Runs()
	if len(runs) != n {
		t.Fatalf("%d runs, want %d", len(runs), n)
	}
	seen := map[int64]bool{}
	for _, m := range runs {
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	s.Close()
	if got := len(open(t, dir).Runs()); got != n {
		t.Fatalf("replay found %d runs, want %d", got, n)
	}
}

func TestAttachTraceUpdatesJournal(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	m, _, err := s.Ingest("trace", "c", "t0", doc("hub:3", 1, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	trace := []byte(`{"traceEvents":[{"ph":"X","ts":0,"dur":1,"name":"b"}]}`)
	upd, err := s.AttachTrace(m.ID, trace, true)
	if err != nil {
		t.Fatal(err)
	}
	if !upd.HasTrace() || !*upd.TraceValid {
		t.Fatalf("trace not recorded: %+v", upd)
	}
	back, err := s.Trace(m.ID)
	if err != nil || !bytes.Equal(back, trace) {
		t.Fatalf("trace round-trip: %v", err)
	}
	// The update is journaled: a replay keeps the badge and the seq.
	s.Close()
	runs := open(t, dir).Runs()
	if len(runs) != 1 || !runs[0].HasTrace() || runs[0].Seq != 1 {
		t.Fatalf("replayed meta = %+v", runs)
	}
	if _, err := open(t, dir).Trace("unknown"); err == nil {
		t.Fatal("trace of unknown run accepted")
	}
}

func TestTrendOrderAndValues(t *testing.T) {
	s := open(t, t.TempDir())
	// Two hub:3 runs, one config-changed (mesh:4) run in between, then a
	// final hub:3 run — the reference config for compatibility is the
	// latest run's (hub:3), so the mesh point is annotated incompatible.
	if _, _, err := s.Ingest("experiment", "c0", "t0", doc("hub:3", 42, 0.8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("experiment", "c1", "t1", doc("hub:3", 42, 0.9)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("experiment", "cx", "tx", doc("mesh:4", 42, 9.9)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("bench", "cb", "tb", []byte(`{"bench": {"BenchmarkNetemSend": {"ns/op": 100}}}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("experiment", "c2", "t2", doc("hub:3", 42, 1.0)); err != nil {
		t.Fatal(err)
	}
	points, err := s.Trend("topo.Sample.BlocksPerSec", "experiment")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points, want 4 (bench run must not leak in): %+v", len(points), points)
	}
	wantValues := []float64{0.8, 0.9, 9.9, 1.0}
	wantCompat := []bool{true, true, false, true}
	for i, p := range points {
		if p.Value != wantValues[i] || p.Compatible != wantCompat[i] {
			t.Fatalf("point %d = %+v, want value %v compatible %v", i, p, wantValues[i], wantCompat[i])
		}
		if i > 0 && p.Seq <= points[i-1].Seq {
			t.Fatalf("sequence not monotone: %+v", points)
		}
	}
	bench, err := s.Trend("bench.BenchmarkNetemSend.ns/op", "bench")
	if err != nil || len(bench) != 1 || bench[0].Value != 100 {
		t.Fatalf("bench trend = %v (%v)", bench, err)
	}
	if _, err := s.Trend("", ""); err == nil {
		t.Fatal("empty metric accepted")
	}
}

// TestRegressionRollingMedian: a synthetically degraded latest run is
// flagged against the rolling median of the prior compatible runs,
// while a healthy one passes; incompatible (config-changed) runs are
// excluded from the window instead of tripping the detector.
func TestRegressionRollingMedian(t *testing.T) {
	s := open(t, t.TempDir())
	for i, v := range []float64{100, 101, 99, 100, 102} {
		if _, _, err := s.Ingest("experiment", "c", fmt.Sprintf("t%d", i), doc("hub:3", 42, v)); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy latest: within tolerance of the median (100).
	if _, _, err := s.Ingest("experiment", "c", "t-ok", doc("hub:3", 42, 101)); err != nil {
		t.Fatal(err)
	}
	reg, err := s.CheckRegression("topo.Sample.BlocksPerSec", "experiment", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Flagged || reg.Window != 5 || reg.Median != 100 {
		t.Fatalf("healthy run flagged: %+v", reg)
	}
	// Degraded latest: 40% below the rolling median.
	if _, _, err := s.Ingest("experiment", "c", "t-bad", doc("hub:3", 42, 60)); err != nil {
		t.Fatal(err)
	}
	reg, err = s.CheckRegression("topo.Sample.BlocksPerSec", "experiment", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Flagged || reg.Latest.Value != 60 {
		t.Fatalf("degraded run not flagged: %+v", reg)
	}
	if reg.DeltaPct > -39 || reg.DeltaPct < -41 {
		t.Fatalf("DeltaPct = %v, want ~-40", reg.DeltaPct)
	}
	// A config change starts a fresh trajectory: the new run has no
	// compatible history, so nothing is flagged.
	if _, _, err := s.Ingest("experiment", "c", "t-new", doc("mesh:4", 42, 10)); err != nil {
		t.Fatal(err)
	}
	reg, err = s.CheckRegression("topo.Sample.BlocksPerSec", "experiment", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Flagged || reg.Window != 0 {
		t.Fatalf("config change tripped the detector: %+v", reg)
	}
}

func TestRunIDStableAndContentAddressed(t *testing.T) {
	cfg := map[string]any{"topology": "hub:3", "seed": 42.0}
	a := RunID("experiment", "c", 42, "t0", cfg, []byte(`{"m":1}`))
	b := RunID("experiment", "c", 42, "t0", cfg, []byte(`{"m":1}`))
	if a != b {
		t.Fatalf("identical content hashed differently: %s vs %s", a, b)
	}
	if RunID("experiment", "c", 42, "t1", cfg, []byte(`{"m":1}`)) == a {
		t.Fatal("timestamp not part of the run key")
	}
	if RunID("experiment", "c", 42, "t0", cfg, []byte(`{"m":2}`)) == a {
		t.Fatal("payload not part of the run key")
	}
	if len(a) != 16 {
		t.Fatalf("ID length %d, want 16", len(a))
	}
}
