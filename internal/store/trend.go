// Cross-run trend extraction and the rolling-median regression
// detector: the store's generalization of the CLI's two-file
// `-diff -fail-on-change` gate. Where the gate compares one run against
// one committed baseline, the detector compares the latest run against
// the median of the last K *compatible* runs — runs whose config
// headers agree field for field (resultdiff.Compatible), the same
// condition under which the two-file gate stays armed.
package store

import (
	"fmt"
	"sort"

	"encoding/json"
	"math"

	"ibcbench/internal/resultdiff"
)

// TrendPoint is one run's value of a trend metric.
type TrendPoint struct {
	Seq    int64   `json:"seq"`
	ID     string  `json:"id"`
	Commit string  `json:"commit,omitempty"`
	Time   string  `json:"time,omitempty"`
	Value  float64 `json:"value"`
	// Compatible reports whether this run's config header matches the
	// trend's reference config (the latest run carrying the metric).
	// The dashboard annotates incompatible points; the regression
	// window excludes them.
	Compatible bool `json:"compatible"`
}

// Trend collects metric (a flattened dotted path, e.g.
// "topo.Sample.BlocksPerSec" or "bench.BenchmarkNetemSend.ns/op")
// across every archived run of the given kind ("" = all kinds), in
// ingest order. Runs whose payload lacks the metric are skipped; the
// reference config for compatibility annotation is the latest matching
// run's.
func (s *Store) Trend(metric, kind string) ([]TrendPoint, error) {
	if metric == "" {
		return nil, fmt.Errorf("store: trend needs a metric path")
	}
	type cand struct {
		meta  Meta
		value float64
	}
	var cands []cand
	for _, m := range s.Runs() {
		if kind != "" && m.Kind != kind {
			continue
		}
		_, payload, err := s.Get(m.ID)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(payload, &doc); err != nil {
			return nil, fmt.Errorf("store: run %s: %w", m.ID, err)
		}
		v, ok := resultdiff.Flatten("", doc)[metric]
		if !ok {
			continue
		}
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("store: run %s: metric %s is %T, not numeric", m.ID, metric, v)
		}
		cands = append(cands, cand{meta: m, value: f})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	ref := cands[len(cands)-1].meta.Config
	points := make([]TrendPoint, 0, len(cands))
	for _, c := range cands {
		points = append(points, TrendPoint{
			Seq: c.meta.Seq, ID: c.meta.ID, Commit: c.meta.Commit, Time: c.meta.Time,
			Value:      c.value,
			Compatible: resultdiff.Compatible(ref, c.meta.Config),
		})
	}
	return points, nil
}

// Regression is the rolling-median detector's verdict on one metric.
type Regression struct {
	Metric string `json:"metric"`
	// Latest is the run under test: the newest one carrying the metric.
	Latest TrendPoint `json:"latest"`
	// Window is how many prior compatible runs fed the median (≤ K).
	Window int `json:"window"`
	// Median is the rolling baseline over that window.
	Median float64 `json:"median"`
	// DeltaPct is the latest value's move against the median in percent.
	// Zero when no percent is defined (zero median) — Flagged still
	// reports the verdict.
	DeltaPct float64 `json:"delta_pct"`
	// Flagged is true when the move exceeds the tolerance — or the
	// median is zero and the latest is not, the no-defined-percent case
	// the two-file gate also trips on.
	Flagged bool `json:"flagged"`
}

// CheckRegression compares the latest run's metric against the median
// of the last k prior compatible runs (config headers identical to the
// latest run's), flagging moves beyond tolPct percent. At least one
// prior compatible run is required; fewer than k just shrinks the
// window. Incompatible runs are skipped, not counted — a config change
// starts a fresh trajectory without tripping the detector.
func (s *Store) CheckRegression(metric, kind string, k int, tolPct float64) (*Regression, error) {
	if k <= 0 {
		k = 5
	}
	if tolPct < 0 {
		return nil, fmt.Errorf("store: regression tolerance must be >= 0 (got %v)", tolPct)
	}
	points, err := s.Trend(metric, kind)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("store: no runs carry metric %s", metric)
	}
	latest := points[len(points)-1]
	var window []float64
	for i := len(points) - 2; i >= 0 && len(window) < k; i-- {
		if points[i].Compatible {
			window = append(window, points[i].Value)
		}
	}
	reg := &Regression{Metric: metric, Latest: latest, Window: len(window)}
	if len(window) == 0 {
		return reg, nil // first run of this config: nothing to compare against
	}
	sort.Float64s(window)
	mid := len(window) / 2
	if len(window)%2 == 1 {
		reg.Median = window[mid]
	} else {
		reg.Median = (window[mid-1] + window[mid]) / 2
	}
	switch {
	case reg.Median == 0 && latest.Value == 0:
		reg.DeltaPct = 0
	case reg.Median == 0:
		// Moving off a zero median has no defined percent change; trip
		// the detector like the two-file gate does.
		reg.Flagged = true
	default:
		reg.DeltaPct = 100 * (latest.Value - reg.Median) / math.Abs(reg.Median)
		reg.Flagged = math.Abs(reg.DeltaPct) > tolPct
	}
	return reg, nil
}
