// Package serve is the ibcbench experiment service: an HTTP facade over
// an internal/store archive. It exposes a JSON API — run listing and
// drill-down, CI ingest, cross-run trends, two-run diffs, and the
// rolling-median regression detector — plus a dependency-free HTML
// dashboard with inline-SVG trend charts (see dashboard.go). Everything
// is stdlib-only; the dashboard ships zero external assets.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"ibcbench/internal/resultdiff"
	"ibcbench/internal/store"
	"ibcbench/internal/tracecheck"
)

// maxBodyBytes bounds ingest payloads (result documents are a few
// hundred KB; traces can reach tens of MB).
const maxBodyBytes = 256 << 20

// Server routes requests onto one open store, plus an in-memory
// registry of live (in-flight) runs publishing telemetry (live.go).
type Server struct {
	st  *store.Store
	mux *http.ServeMux

	liveMu sync.Mutex
	live   map[string]*liveEntry

	queue queueState
}

// New builds the HTTP handler over an open store.
func New(st *store.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), live: map[string]*liveEntry{}}
	s.mux.HandleFunc("GET /api/runs", s.handleRuns)
	s.mux.HandleFunc("GET /api/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /api/runs/{id}/payload", s.handlePayload)
	s.mux.HandleFunc("GET /api/runs/{id}/trace", s.handleTraceGet)
	s.mux.HandleFunc("POST /api/runs/{id}/trace", s.handleTracePost)
	s.mux.HandleFunc("GET /api/runs/{id}/flame", s.handleFlameAPI)
	s.mux.HandleFunc("GET /api/runs/{id}/critpath", s.handleCritPathAPI)
	s.mux.HandleFunc("POST /api/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /api/trend", s.handleTrend)
	s.mux.HandleFunc("GET /api/regression", s.handleRegression)
	s.mux.HandleFunc("GET /api/diff", s.handleDiff)
	s.mux.HandleFunc("GET /api/queue", s.handleQueueList)
	s.mux.HandleFunc("POST /api/queue", s.handleQueuePost)
	s.mux.HandleFunc("GET /api/live", s.handleLiveList)
	s.mux.HandleFunc("POST /api/live/update", s.handleLiveUpdate)
	s.mux.HandleFunc("POST /api/live/finish", s.handleLiveFinish)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRunPage)
	s.mux.HandleFunc("GET /runs/{id}/flame", s.handleFlamePage)
	s.mux.HandleFunc("GET /runs/{id}/critpath", s.handleCritPathPage)
	s.mux.HandleFunc("GET /{$}", s.handleDashboard)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleRuns lists every archived run in ingest order.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.st.Runs()})
}

// handleRun returns one run's meta with the payload embedded verbatim.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	meta, payload, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"meta": meta, "payload": json.RawMessage(payload)})
}

// handlePayload serves the archived document bytes exactly as ingested.
func (s *Server) handlePayload(w http.ResponseWriter, r *http.Request) {
	_, payload, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// handleTraceGet serves a run's attached Chrome trace (load it at
// ui.perfetto.dev).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	data, err := s.st.Trace(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", r.PathValue("id")+"-trace.json"))
	w.Write(data)
}

// handleTracePost attaches a trace to an archived run. The trace is
// structurally validated at ingest time (tracecheck) and the verdict
// badges the run — an invalid trace is still stored for inspection.
func (s *Server) handleTracePost(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	_, verr := tracecheck.Validate(data)
	meta, err := s.st.AttachTrace(r.PathValue("id"), data, verr == nil)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	resp := map[string]any{"meta": meta, "trace_valid": verr == nil}
	if verr != nil {
		resp["trace_error"] = verr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngest archives a run document posted by CI or the CLI. The
// body is the payload verbatim (a -out document, bench2json output, or
// a traced result); query parameters carry the provenance the bytes
// don't: ?kind=experiment|bench|trace, ?commit=<rev>, ?time=<rfc3339>.
// Re-posting identical content is idempotent — the response reports
// created=false and nothing is written.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	meta, created, err := s.st.Ingest(q.Get("kind"), q.Get("commit"), q.Get("time"), payload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, map[string]any{"meta": meta, "created": created})
}

// handleTrend returns one metric's value across runs in ingest order:
// ?metric=<flattened path> (required), ?kind= filters by payload kind.
func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	points, err := s.st.Trend(q.Get("metric"), q.Get("kind"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metric": q.Get("metric"), "points": points,
	})
}

// handleRegression runs the rolling-median detector: ?metric= (required),
// ?k= window size (default 5), ?tolerance= percent (default 10), ?kind=.
func (s *Server) handleRegression(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k, tol := 5, 10.0
	var err error
	if v := q.Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k: %w", err))
			return
		}
	}
	if v := q.Get("tolerance"); v != "" {
		if tol, err = strconv.ParseFloat(v, 64); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad tolerance: %w", err))
			return
		}
	}
	reg, err := s.st.CheckRegression(q.Get("metric"), q.Get("kind"), k, tol)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, reg)
}

// diffRow is one changed metric between two archived runs.
type diffRow struct {
	Path string `json:"path"`
	Old  any    `json:"old"`
	New  any    `json:"new"`
	// DeltaPct is present only for numeric pairs with a nonzero old.
	DeltaPct *float64 `json:"delta_pct,omitempty"`
}

// handleDiff compares two archived runs metric by metric, the stored
// counterpart of `ibcbench -diff a.json b.json`: ?a=<id>&b=<id>.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	load := func(id string) (store.Meta, any, error) {
		meta, payload, err := s.st.Get(id)
		if err != nil {
			return store.Meta{}, nil, err
		}
		var doc any
		if err := json.Unmarshal(payload, &doc); err != nil {
			return store.Meta{}, nil, fmt.Errorf("run %s: %w", id, err)
		}
		return meta, doc, nil
	}
	metaA, docA, err := load(q.Get("a"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	metaB, docB, err := load(q.Get("b"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	cfgDiff := resultdiff.ConfigDiff(metaA.Config, metaB.Config)
	cfgRows := make([]string, 0, len(cfgDiff))
	for _, d := range cfgDiff {
		cfgRows = append(cfgRows, d.String())
	}
	oldFlat := resultdiff.Flatten("", docA)
	newFlat := resultdiff.Flatten("", docB)
	resultdiff.DropConfig(oldFlat)
	resultdiff.DropConfig(newFlat)
	var changed []diffRow
	var added, removed []string
	for path := range oldFlat {
		if _, ok := newFlat[path]; !ok {
			removed = append(removed, path)
		}
	}
	for path, nv := range newFlat {
		ov, ok := oldFlat[path]
		if !ok {
			added = append(added, path)
			continue
		}
		if ov == nv {
			continue
		}
		row := diffRow{Path: path, Old: ov, New: nv}
		if on, ok1 := ov.(float64); ok1 {
			if nn, ok2 := nv.(float64); ok2 && on != 0 {
				pct := 100 * (nn - on) / math.Abs(on)
				row.DeltaPct = &pct
			}
		}
		changed = append(changed, row)
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].Path < changed[j].Path })
	sort.Strings(added)
	sort.Strings(removed)
	writeJSON(w, http.StatusOK, map[string]any{
		"a": metaA, "b": metaB,
		"config_mismatch": cfgRows,
		"changed":         changed,
		"added":           added,
		"removed":         removed,
	})
}
