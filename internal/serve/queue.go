// The scenario queue: POST /api/queue accepts a declarative scenario
// spec, validates it up front (parse + compile, so a bad spec is a 400
// rather than a failed job), and executes it server-side on a single
// background worker — scenario runs are CPU-bound simulations, so the
// queue serializes them instead of letting concurrent posts contend.
// Finished runs archive their full report into the store (kind
// "scenario") and become ordinary dashboard runs; GET /api/queue lists
// the job log newest-first.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ibcbench/internal/scenario"
)

// queueJob is one queued scenario execution, surfaced verbatim by
// GET /api/queue and the dashboard's queue section.
type queueJob struct {
	ID       int    `json:"id"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Status   string `json:"status"` // queued | running | done | failed
	Queued   string `json:"queued"`
	Finished string `json:"finished,omitempty"`
	// RunID is the archived store run holding the report (done only).
	RunID string `json:"run_id,omitempty"`
	// Passed and Violations summarize the assertion verdicts (done only).
	Passed     *bool  `json:"passed,omitempty"`
	Violations int    `json:"violations,omitempty"`
	Error      string `json:"error,omitempty"`
}

// queueState lives on the Server; the worker goroutine starts lazily
// on the first enqueue so idle services spawn nothing.
type queueState struct {
	mu     sync.Mutex
	jobs   []*queueJob
	specs  map[int]scenario.Spec
	ch     chan int
	worker sync.Once
}

const queueDepth = 64

// queueJobs snapshots the job log newest-first.
func (s *Server) queueJobs() []queueJob {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	jobs := make([]queueJob, 0, len(s.queue.jobs))
	for i := len(s.queue.jobs) - 1; i >= 0; i-- {
		jobs = append(jobs, *s.queue.jobs[i])
	}
	return jobs
}

// queueBusy reports whether any job is still queued or running — the
// dashboard polls while the worker is busy, like it does for live runs.
func (s *Server) queueBusy() bool {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	for _, j := range s.queue.jobs {
		if j.Status == "queued" || j.Status == "running" {
			return true
		}
	}
	return false
}

// handleQueueList reports every job this process accepted, newest
// first. The log is in-memory: it documents the running service, while
// the durable artifacts are the archived store runs the jobs produce.
func (s *Server) handleQueueList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.queueJobs()})
}

// handleQueuePost accepts one spec (the request body, same bytes as an
// `ibcbench run -scenario` file) with an optional ?seed=N override,
// validates it, and enqueues it for the worker. The response is 202
// with the job snapshot; poll GET /api/queue (or watch the dashboard)
// for the verdict and the archived run id.
func (s *Server) handleQueuePost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, err := scenario.Compile(spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var seed int64
	if v := r.URL.Query().Get("seed"); v != "" {
		if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad seed: %w", err))
			return
		}
	}
	job := &queueJob{
		Scenario: spec.Name,
		Seed:     seed,
		Status:   "queued",
		Queued:   time.Now().UTC().Format(time.RFC3339),
	}
	s.queue.mu.Lock()
	if s.queue.specs == nil {
		s.queue.specs = map[int]scenario.Spec{}
		s.queue.ch = make(chan int, queueDepth)
	}
	if len(s.queue.ch) == cap(s.queue.ch) {
		s.queue.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("queue full (%d pending)", queueDepth))
		return
	}
	job.ID = len(s.queue.jobs) + 1
	s.queue.jobs = append(s.queue.jobs, job)
	s.queue.specs[job.ID] = spec
	s.queue.ch <- job.ID
	snapshot := *job
	s.queue.mu.Unlock()
	s.queue.worker.Do(func() { go s.queueWorker() })
	writeJSON(w, http.StatusAccepted, map[string]any{"job": snapshot})
}

// queueWorker drains the queue one scenario at a time for the life of
// the process.
func (s *Server) queueWorker() {
	for id := range s.queue.ch {
		s.runQueued(id)
	}
}

// runQueued executes one job: run the spec, archive the report, and
// update the job log. Failures (compile raced a registry change, run
// error, store error) land on the job rather than crashing the worker.
func (s *Server) runQueued(id int) {
	s.queue.mu.Lock()
	spec := s.queue.specs[id]
	job := s.queue.jobs[id-1]
	job.Status = "running"
	seed := job.Seed
	s.queue.mu.Unlock()

	rep, err := scenario.Run(spec, seed)
	var runID string
	var passed bool
	var violations int
	if err == nil {
		passed = rep.Passed()
		violations = len(rep.Violations)
		var payload []byte
		if payload, err = json.MarshalIndent(rep, "", "  "); err == nil {
			payload = append(payload, '\n')
			// Nanosecond stamps keep repeated same-spec jobs distinct —
			// virtual-clock reports are byte-identical, so a coarser
			// stamp would dedupe them into one archived run.
			m, _, ierr := s.st.Ingest("scenario", "", time.Now().UTC().Format(time.RFC3339Nano), payload)
			if ierr != nil {
				err = ierr
			} else {
				runID = m.ID
			}
		}
	}

	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	job.Finished = time.Now().UTC().Format(time.RFC3339)
	delete(s.queue.specs, id)
	if err != nil {
		job.Status = "failed"
		job.Error = err.Error()
		return
	}
	job.Status = "done"
	job.RunID = runID
	job.Passed = &passed
	job.Violations = violations
}
