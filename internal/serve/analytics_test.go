package serve

import (
	"net/http"
	"strings"
	"testing"
)

// analyticsTrace is a minimal valid export: one chain track with a
// nested block/exec span pair, a second chain track, and one two-hop
// packet lifecycle flow (10µs on the first edge, 90µs on the second).
const analyticsTrace = `{"traceEvents": [
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"chain/left"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"chain/right"}},
{"name":"packet","ph":"b","cat":"pkt","id":"0x1","pid":1,"tid":1,"ts":0.000},
{"name":"block","ph":"X","pid":1,"tid":1,"ts":0.000,"dur":100.000},
{"name":"exec","ph":"X","pid":1,"tid":1,"ts":10.000,"dur":40.000},
{"name":"Transfer broadcast","ph":"n","cat":"pkt","id":"0x1","pid":1,"tid":1,"ts":10.000},
{"name":"Packet relayed","ph":"n","cat":"pkt","id":"0x1","pid":1,"tid":2,"ts":100.000},
{"name":"packet","ph":"e","cat":"pkt","id":"0x1","pid":1,"tid":2,"ts":100.000}
]}`

// ingestWithTrace archives one run and attaches the given trace bytes.
func ingestWithTrace(t *testing.T, base, trace string) string {
	t.Helper()
	out, code := postIngest(t, base, "kind=trace&time=2026-08-01T00:00:00Z", doc("hub:3", 1, 0.8))
	if code != http.StatusCreated {
		t.Fatalf("ingest status=%d", code)
	}
	resp, err := http.Post(base+"/api/runs/"+out.Meta.ID+"/trace", "application/json", strings.NewReader(trace))
	if err != nil {
		t.Fatalf("POST trace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach trace status=%d", resp.StatusCode)
	}
	return out.Meta.ID
}

// TestFlameEndpointAndPage: the flame API serves traceview's canonical
// JSON (deterministically) and the page inlines the icicle SVG plus
// the span-tree table.
func TestFlameEndpointAndPage(t *testing.T) {
	ts, _ := newTestServer(t)
	id := ingestWithTrace(t, ts.URL, analyticsTrace)

	body, code := getBody(t, ts.URL+"/api/runs/"+id+"/flame")
	if code != http.StatusOK {
		t.Fatalf("flame status=%d", code)
	}
	for _, want := range []string{`"name": "run"`, `"chain"`, `"block"`, `"exec"`, `"total"`, `"self"`} {
		if !strings.Contains(body, want) {
			t.Errorf("flame JSON missing %s:\n%s", want, body)
		}
	}
	again, _ := getBody(t, ts.URL+"/api/runs/"+id+"/flame")
	if body != again {
		t.Error("flame JSON not byte-identical across requests")
	}

	page, code := getBody(t, ts.URL+"/runs/"+id+"/flame")
	if code != http.StatusOK {
		t.Fatalf("flame page status=%d", code)
	}
	for _, want := range []string{`<svg class="flame"`, "Span tree", "block", "critpath"} {
		if !strings.Contains(page, want) {
			t.Errorf("flame page missing %q", want)
		}
	}
	for _, external := range []string{"<script", "<link", "src=", "@import"} {
		if strings.Contains(page, external) {
			t.Errorf("flame page references an external asset: %q", external)
		}
	}
}

// TestCritPathEndpointAndPage: the critical-path API reports full
// attribution for the synthetic flow and the page renders the share
// bars and per-step table.
func TestCritPathEndpointAndPage(t *testing.T) {
	ts, _ := newTestServer(t)
	id := ingestWithTrace(t, ts.URL, analyticsTrace)

	body, code := getBody(t, ts.URL+"/api/runs/"+id+"/critpath")
	if code != http.StatusOK {
		t.Fatalf("critpath status=%d", code)
	}
	for _, want := range []string{`"flows": 1`, `"attributed_share": 1`, `"hop": 1`, `"Packet relayed"`, `"residual": 0`} {
		if !strings.Contains(body, want) {
			t.Errorf("critpath JSON missing %s:\n%s", want, body)
		}
	}
	again, _ := getBody(t, ts.URL+"/api/runs/"+id+"/critpath")
	if body != again {
		t.Error("critpath JSON not byte-identical across requests")
	}

	page, code := getBody(t, ts.URL+"/runs/"+id+"/critpath")
	if code != http.StatusOK {
		t.Fatalf("critpath page status=%d", code)
	}
	for _, want := range []string{`<svg class="critpath"`, "Packet relayed", "90.0%", "chain/right", "Per-step latency"} {
		if !strings.Contains(page, want) {
			t.Errorf("critpath page missing %q", want)
		}
	}
}

// TestAnalyticsErrors: missing run/trace → 404; a stored-but-broken
// trace (invalid traces are archived for inspection) → 422.
func TestAnalyticsErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/api/runs/nope/flame", "/api/runs/nope/critpath"} {
		if _, code := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("%s status=%d, want 404", path, code)
		}
	}
	out, _ := postIngest(t, ts.URL, "time=2026-08-02T00:00:00Z", doc("hub:3", 2, 0.9))
	if _, code := getBody(t, ts.URL+"/api/runs/"+out.Meta.ID+"/flame"); code != http.StatusNotFound {
		t.Errorf("traceless run flame status=%d, want 404", code)
	}

	// A syntactically broken trace is stored (badged invalid) but cannot
	// be analyzed.
	resp, err := http.Post(ts.URL+"/api/runs/"+out.Meta.ID+"/trace", "application/json",
		strings.NewReader(`{"traceEvents": [`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, path := range []string{"/flame", "/critpath"} {
		if _, code := getBody(t, ts.URL+"/api/runs/"+out.Meta.ID+path); code != http.StatusUnprocessableEntity {
			t.Errorf("broken trace %s status=%d, want 422", path, code)
		}
	}
}

// TestRunPageLinksAnalytics: a run with a trace links both analytics
// pages; a traceless run links neither.
func TestRunPageLinksAnalytics(t *testing.T) {
	ts, _ := newTestServer(t)
	id := ingestWithTrace(t, ts.URL, analyticsTrace)
	page, _ := getBody(t, ts.URL+"/runs/"+id)
	if !strings.Contains(page, "/runs/"+id+"/flame") || !strings.Contains(page, "/runs/"+id+"/critpath") {
		t.Error("run page missing analytics links")
	}
	out, _ := postIngest(t, ts.URL, "time=2026-08-03T00:00:00Z", doc("hub:3", 3, 0.9))
	page, _ = getBody(t, ts.URL+"/runs/"+out.Meta.ID)
	if strings.Contains(page, "/flame") {
		t.Error("traceless run page links analytics")
	}
}
