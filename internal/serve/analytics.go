// Trace analytics views: flame (aggregated span tree) and critical
// path (per-packet step attribution) computed on demand from a run's
// stored Chrome trace via internal/traceview. The JSON endpoints
// return traceview's canonical documents byte-for-byte — the same
// bytes `ibcbench -trace-analyze` pins in its determinism test — and
// the HTML pages inline the matching SVG with zero external assets,
// like every other dashboard view.
package serve

import (
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
	"time"

	"ibcbench/internal/traceview"
)

// EnablePprof mounts the net/http/pprof handlers on the service mux
// (ibcbench serve -pprof). Off by default: profiling endpoints expose
// process internals and cost CPU, so operators opt in explicitly.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// traceEvents loads a run's stored trace and parses it into canonical
// traceview events. Missing run/trace → 404; a stored-but-unparseable
// trace (possible: invalid traces are archived for inspection) → 422.
func (s *Server) traceEvents(w http.ResponseWriter, id string) ([]traceview.Event, bool) {
	data, err := s.st.Trace(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil, false
	}
	events, err := traceview.FromChrome(data)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf("stored trace unreadable: %w", err))
		return nil, false
	}
	return events, true
}

// handleFlameAPI serves GET /api/runs/{id}/flame: the aggregated span
// tree as traceview's canonical JSON document.
func (s *Server) handleFlameAPI(w http.ResponseWriter, r *http.Request) {
	events, ok := s.traceEvents(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(traceview.FlameJSON(traceview.Flame(events)))
}

// handleCritPathAPI serves GET /api/runs/{id}/critpath: the per-packet
// critical-path analysis as traceview's canonical JSON document.
func (s *Server) handleCritPathAPI(w http.ResponseWriter, r *http.Request) {
	events, ok := s.traceEvents(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(traceview.CritPathJSON(traceview.CriticalPath(events)))
}

// handleFlamePage renders GET /runs/{id}/flame: the icicle SVG over
// the span-tree table.
func (s *Server) handleFlamePage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, ok := s.traceEvents(w, id)
	if !ok {
		return
	}
	root := traceview.Flame(events)
	var b strings.Builder
	pageHead(&b, "flame "+id)
	analyticsNav(&b, id, "flame")
	fmt.Fprintf(&b, "<h1>flame <code>%s</code></h1>\n", html.EscapeString(id))
	b.WriteString("<p class=muted>Aggregated span tree of the stored trace: width is total virtual time, rows nest callees. Hover a block for count, total, and self time.</p>\n")
	traceview.FlameSVG(&b, root)
	b.WriteString("<h2>Span tree</h2>\n<pre>")
	var tbl strings.Builder
	traceview.WriteFlame(&tbl, root, 60)
	b.WriteString(html.EscapeString(tbl.String()))
	b.WriteString("</pre>\n")
	pageFoot(&b)
	writeHTML(w, b.String())
}

// handleCritPathPage renders GET /runs/{id}/critpath: the per-step
// share bars plus the full latency table.
func (s *Server) handleCritPathPage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, ok := s.traceEvents(w, id)
	if !ok {
		return
	}
	cp := traceview.CriticalPath(events)
	var b strings.Builder
	pageHead(&b, "critical path "+id)
	analyticsNav(&b, id, "critpath")
	fmt.Fprintf(&b, "<h1>critical path <code>%s</code></h1>\n", html.EscapeString(id))
	fmt.Fprintf(&b, "<p class=muted>%d packet flow(s), %d step event(s) — attributed %.1f%% of end-to-end latency (residual %v, worst flow %.1f%%).</p>\n",
		cp.Flows, cp.StepEvents, 100*cp.AttributedShare, cp.Residual, 100*cp.WorstFlowShare)
	if cp.Flows > 0 {
		fmt.Fprintf(&b, "<p>end-to-end latency: n=%d p50=%v p99=%v mean=%v max=%v</p>\n",
			cp.EndToEnd.Count, cp.EndToEnd.P50, cp.EndToEnd.P99, cp.EndToEnd.Mean, cp.EndToEnd.Max)
	}
	traceview.CritPathSVG(&b, cp)
	b.WriteString("<h2>Per-step latency</h2>\n")
	b.WriteString("<table>\n<tr><th>edge</th><th>hop</th><th>step</th><th>count</th><th>p50</th><th>p99</th><th>mean</th><th>max</th><th>share</th><th>dominant</th></tr>\n")
	for _, g := range cp.Groups {
		for _, st := range g.Steps {
			fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td>%d</td><td>%s</td><td>%d</td><td>%v</td><td>%v</td><td>%v</td><td>%v</td><td>%.1f%%</td><td>%d</td></tr>\n",
				html.EscapeString(g.Edge), g.Hop, html.EscapeString(st.Step), st.Count,
				st.P50, st.P99, st.Mean, st.Max, 100*st.Share, st.Dominant)
		}
	}
	b.WriteString("</table>\n")
	pageFoot(&b)
	writeHTML(w, b.String())
}

// analyticsNav is the shared back-link row of both analytics pages.
func analyticsNav(b *strings.Builder, id, active string) {
	link := func(name, suffix string) string {
		if name == active {
			return "<strong>" + name + "</strong>"
		}
		return fmt.Sprintf(`<a href="/runs/%s%s">%s</a>`, url.PathEscape(id), suffix, name)
	}
	fmt.Fprintf(b, "<p><a href=\"/runs/%s\">← run</a> · %s · %s</p>\n",
		url.PathEscape(id), link("flame", "/flame"), link("critpath", "/critpath"))
}

// fmtAge renders how long ago a live entry last updated.
func fmtAge(since time.Duration) string {
	if since < time.Second {
		return "just now"
	}
	return since.Truncate(time.Second).String() + " ago"
}
