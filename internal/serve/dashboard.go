// Dashboard: the dependency-free HTML views of the experiment service.
// Everything — styles, charts, badges — is rendered inline (no external
// assets, no JavaScript): trend charts are hand-built SVG with native
// <title> hover tooltips, colors are CSS custom properties with a
// selected dark mode, and config-mismatch runs are annotated by marker
// shape (open vs filled) plus text, never color alone.
package serve

import (
	"encoding/json"
	"fmt"
	"html"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"ibcbench/internal/resultdiff"
	"ibcbench/internal/store"
)

// pageCSS is the shared stylesheet. Chart marks reference role
// variables so the selected dark values swap in one place.
const pageCSS = `
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --surface-2: #f1f0ee;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e1e0d9; --series-1: #2a78d6;
  --status-good: #0ca30c; --status-bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --surface-2: #242423;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --series-1: #3987e5;
  }
}
body { background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; padding: 0 1rem; }
h1, h2 { font-weight: 600; } h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
a { color: var(--series-1); text-decoration: none; } a:hover { text-decoration: underline; }
table { border-collapse: collapse; width: 100%; margin: 0.5rem 0 1rem; }
th, td { text-align: left; padding: 0.25rem 0.75rem 0.25rem 0;
  border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 500; }
code { background: var(--surface-2); padding: 0 0.25rem; border-radius: 3px; }
.muted { color: var(--text-secondary); }
.badge { border-radius: 3px; padding: 0 0.4rem; font-size: 0.85em; }
.badge.good { color: var(--status-good); border: 1px solid var(--status-good); }
.badge.bad { color: var(--status-bad); border: 1px solid var(--status-bad); }
form.metric input[type=text] { background: var(--surface-2); color: var(--text-primary);
  border: 1px solid var(--grid); border-radius: 3px; padding: 0.2rem 0.4rem; width: 24rem; }
svg.trend { display: block; margin: 0.25rem 0 0.5rem; }
svg.trend .grid { stroke: var(--grid); stroke-width: 1; }
svg.trend .axis { fill: var(--text-secondary); font-size: 11px; }
svg.trend .line { stroke: var(--series-1); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
svg.trend .pt { fill: var(--series-1); }
svg.trend .pt-mismatch { fill: var(--surface-1); stroke: var(--series-1); stroke-width: 2; }
svg.trend .label { fill: var(--text-primary); font-size: 11px; }
`

// defaultMetricCandidates are charted when the dashboard is opened
// without ?metric= — each is kept only if at least one archived run
// carries it.
var defaultMetricCandidates = []string{
	"topo.Sample.BlocksPerSec",
	"topo.Throughput.Mean",
	"topo.Sample.Throughput",
	"result.BlocksPerSec",
	"result.Throughput",
	"bench.BenchmarkNetemSend/uniform.ns/op",
	"bench.BenchmarkVoteFanout/vals-13.ns/op",
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	metrics := r.URL.Query()["metric"]
	explicit := len(metrics) > 0
	if !explicit {
		metrics = defaultMetricCandidates
	}
	var b strings.Builder
	live := s.liveEntries()
	var extra []string
	if len(live) > 0 || s.queueBusy() {
		// Refresh only while something is in flight — a static archive
		// page should not poll.
		extra = append(extra, `<meta http-equiv=refresh content=3>`)
	}
	pageHead(&b, "ibcbench experiment service", extra...)
	runs := s.st.Runs()
	fmt.Fprintf(&b, "<h1>ibcbench experiment service</h1>\n<p class=muted>%d archived run(s) in <code>%s</code></p>\n",
		len(runs), html.EscapeString(s.st.Dir()))
	liveSection(&b, live)
	queueSection(&b, s.queueJobs())
	b.WriteString(`<form class=metric method=get action=/>` +
		`<input type=text name=metric placeholder="chart a metric path, e.g. topo.Sample.BlocksPerSec">` +
		` <input type=submit value=Chart></form>` + "\n")
	charted := 0
	for _, metric := range metrics {
		points, err := s.st.Trend(metric, "")
		if err != nil && explicit {
			fmt.Fprintf(&b, "<h2>%s</h2>\n<p class=\"badge bad\">%s</p>\n",
				html.EscapeString(metric), html.EscapeString(err.Error()))
			continue
		}
		if len(points) == 0 {
			if explicit {
				fmt.Fprintf(&b, "<h2>%s</h2>\n<p class=muted>no archived run carries this metric</p>\n",
					html.EscapeString(metric))
			}
			continue
		}
		charted++
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(metric))
		trendSVG(&b, points)
		mismatches := 0
		for _, p := range points {
			if !p.Compatible {
				mismatches++
			}
		}
		if mismatches > 0 {
			fmt.Fprintf(&b, "<p class=muted>○ %d run(s) with a config header differing from the latest — their deltas measure the config change, not a regression.</p>\n", mismatches)
		}
	}
	if charted == 0 {
		b.WriteString("<p class=muted>No trend charts yet — archive runs with <code>ibcbench -experiment ... -store DIR</code> or POST result documents to <code>/api/ingest</code>.</p>\n")
	}
	b.WriteString("<h2>Runs</h2>\n")
	runsTable(&b, runs)
	pageFoot(&b)
	writeHTML(w, b.String())
}

// handleRunPage is the per-run drill-down: provenance, the config
// header, the obs metrics-registry snapshot tables, and the stored
// trace (badged by its ingest-time validation).
func (s *Server) handleRunPage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, payload, err := s.st.Get(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	var doc any
	json.Unmarshal(payload, &doc)
	var b strings.Builder
	pageHead(&b, "run "+id)
	fmt.Fprintf(&b, "<p><a href=/>← all runs</a></p>\n<h1>run <code>%s</code></h1>\n", html.EscapeString(id))
	b.WriteString("<table>\n")
	row := func(k, v string) {
		fmt.Fprintf(&b, "<tr><th>%s</th><td>%s</td></tr>\n", html.EscapeString(k), v)
	}
	row("seq", fmt.Sprintf("%d", meta.Seq))
	row("kind", html.EscapeString(meta.Kind))
	row("commit", "<code>"+html.EscapeString(meta.Commit)+"</code>")
	row("seed", fmt.Sprintf("%d", meta.Seed))
	row("time", html.EscapeString(meta.Time))
	row("payload", fmt.Sprintf(`<a href="/api/runs/%s/payload">payload.json</a> (%d bytes)`, url.PathEscape(id), len(payload)))
	row("trace", traceCell(meta))
	if meta.HasTrace() {
		row("analytics", fmt.Sprintf(`<a href="/runs/%s/flame">flame</a> · <a href="/runs/%s/critpath">critical path</a>`,
			url.PathEscape(id), url.PathEscape(id)))
	}
	b.WriteString("</table>\n")

	if len(meta.Config) > 0 {
		b.WriteString("<h2>Config header</h2>\n<table>\n<tr><th>field</th><th>value</th></tr>\n")
		flat := resultdiff.Flatten("", map[string]any(meta.Config))
		paths := make([]string, 0, len(flat))
		for p := range flat {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%v</td></tr>\n", html.EscapeString(p), html.EscapeString(fmt.Sprint(flat[p])))
		}
		b.WriteString("</table>\n")
	}
	for _, snap := range findSnapshots("", doc) {
		fmt.Fprintf(&b, "<h2>Metrics registry <span class=muted>(%s)</span></h2>\n", html.EscapeString(snap.path))
		snapshotTables(&b, snap.obj)
	}
	pageFoot(&b)
	writeHTML(w, b.String())
}

func traceCell(m store.Meta) string {
	if !m.HasTrace() {
		return `<span class=muted>none</span>`
	}
	link := fmt.Sprintf(`<a href="/api/runs/%s/trace">trace.json</a> <span class=muted>(load at ui.perfetto.dev)</span>`, url.PathEscape(m.ID))
	if *m.TraceValid {
		return link + ` <span class="badge good">valid</span>`
	}
	return link + ` <span class="badge bad">invalid</span>`
}

func runsTable(b *strings.Builder, runs []store.Meta) {
	b.WriteString("<table>\n<tr><th>seq</th><th>run</th><th>kind</th><th>commit</th><th>seed</th><th>time</th><th>trace</th></tr>\n")
	// Latest first: the dashboard is about where the trajectory is now.
	for i := len(runs) - 1; i >= 0; i-- {
		m := runs[i]
		trace := `<span class=muted>–</span>`
		if m.HasTrace() {
			if *m.TraceValid {
				trace = `<span class="badge good">valid</span>`
			} else {
				trace = `<span class="badge bad">invalid</span>`
			}
		}
		fmt.Fprintf(b, `<tr><td>%d</td><td><a href="/runs/%s"><code>%s</code></a></td><td>%s</td><td><code>%s</code></td><td>%d</td><td>%s</td><td>%s</td></tr>`+"\n",
			m.Seq, url.PathEscape(m.ID), html.EscapeString(m.ID), html.EscapeString(m.Kind),
			html.EscapeString(m.Commit), m.Seed, html.EscapeString(m.Time), trace)
	}
	b.WriteString("</table>\n")
}

// liveSection renders the in-flight runs currently publishing
// telemetry (POST /api/live/update — the CLI's -live flag). Virtual
// sim time advances much faster than the wall clock, so the row shows
// both: simulated progress plus how recently the process reported.
func liveSection(b *strings.Builder, live []liveEntry) {
	if len(live) == 0 {
		return
	}
	b.WriteString("<h2>Live runs</h2>\n")
	b.WriteString("<table>\n<tr><th>scenario</th><th>seed</th><th>sim time</th><th>blocks</th><th>packets</th><th>backlog</th><th>updates</th><th>last update</th></tr>\n")
	for _, e := range live {
		st := e.Status
		fmt.Fprintf(b, "<tr><td><code>%s</code></td><td>%d</td><td>%v</td><td>%d</td><td>%d / %d</td><td>%d</td><td>%d</td><td class=muted>%s</td></tr>\n",
			html.EscapeString(st.Name), st.Seed, st.Now, st.Blocks,
			st.Completed, st.Tracked, st.Backlog, e.Updates, html.EscapeString(fmtAge(time.Since(e.Updated))))
	}
	b.WriteString("</table>\n")
	b.WriteString("<p class=muted>Updating every 3 s while runs are in flight; a finished run converts into an archived row below.</p>\n")
}

// queueSection renders the scenario-queue job log (POST /api/queue):
// queued and running jobs first justify the page's auto-refresh, and a
// finished job links the archived run its report landed in.
func queueSection(b *strings.Builder, jobs []queueJob) {
	if len(jobs) == 0 {
		return
	}
	b.WriteString("<h2>Scenario queue</h2>\n")
	b.WriteString("<table>\n<tr><th>job</th><th>scenario</th><th>seed</th><th>status</th><th>verdict</th><th>run</th><th>queued</th></tr>\n")
	for _, j := range jobs {
		status := html.EscapeString(j.Status)
		switch j.Status {
		case "done":
			status = `<span class="badge good">done</span>`
		case "failed":
			status = fmt.Sprintf(`<span class="badge bad">failed</span> <span class=muted>%s</span>`, html.EscapeString(j.Error))
		}
		verdict := `<span class=muted>–</span>`
		if j.Passed != nil {
			if *j.Passed {
				verdict = `<span class="badge good">assertions held</span>`
			} else {
				verdict = fmt.Sprintf(`<span class="badge bad">%d violation(s)</span>`, j.Violations)
			}
		}
		runLink := `<span class=muted>–</span>`
		if j.RunID != "" {
			runLink = fmt.Sprintf(`<a href="/runs/%s"><code>%s</code></a>`, url.PathEscape(j.RunID), html.EscapeString(j.RunID))
		}
		fmt.Fprintf(b, "<tr><td>%d</td><td><code>%s</code></td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td class=muted>%s</td></tr>\n",
			j.ID, html.EscapeString(j.Scenario), j.Seed, status, verdict, runLink, html.EscapeString(j.Queued))
	}
	b.WriteString("</table>\n")
	b.WriteString("<p class=muted>Queue specs with <code>POST /api/queue</code> (body: a scenario spec; optional <code>?seed=N</code>); finished reports archive as <code>scenario</code> runs below.</p>\n")
}

// trendSVG renders one metric's run sequence as an inline SVG line
// chart: recessive grid, 2px series line, ≥8px markers with native
// <title> tooltips, the latest value direct-labeled, and
// config-mismatch runs drawn as open (hollow) markers.
func trendSVG(b *strings.Builder, points []store.TrendPoint) {
	const (
		width, height = 720, 200
		ml, mr        = 64, 16
		mt, mb        = 12, 28
	)
	plotW, plotH := float64(width-ml-mr), float64(height-mt-mb)
	lo, hi := points[0].Value, points[0].Value
	for _, p := range points {
		lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
	}
	if lo == hi { // flat series: pad so the line sits mid-plot
		pad := math.Abs(lo) * 0.1
		if pad == 0 {
			pad = 1
		}
		lo, hi = lo-pad, hi+pad
	} else {
		pad := (hi - lo) * 0.08
		lo, hi = lo-pad, hi+pad
	}
	x := func(i int) float64 {
		if len(points) == 1 {
			return float64(ml) + plotW/2
		}
		return float64(ml) + plotW*float64(i)/float64(len(points)-1)
	}
	y := func(v float64) float64 { return float64(mt) + plotH*(1-(v-lo)/(hi-lo)) }

	fmt.Fprintf(b, `<svg class=trend viewBox="0 0 %d %d" width="%d" height="%d" role=img>`+"\n", width, height, width, height)
	// Recessive grid + y-axis tick labels at 3 levels.
	for i := 0; i <= 2; i++ {
		v := lo + (hi-lo)*float64(i)/2
		gy := y(v)
		fmt.Fprintf(b, `<line class=grid x1="%d" y1="%.1f" x2="%d" y2="%.1f"/>`+"\n", ml, gy, width-mr, gy)
		fmt.Fprintf(b, `<text class=axis x="%d" y="%.1f" text-anchor=end>%s</text>`+"\n", ml-8, gy+4, fmtVal(v))
	}
	// X tick labels: run sequence numbers, thinned to ~8.
	step := (len(points) + 7) / 8
	for i := 0; i < len(points); i += step {
		fmt.Fprintf(b, `<text class=axis x="%.1f" y="%d" text-anchor=middle>#%d</text>`+"\n",
			x(i), height-8, points[i].Seq)
	}
	var path strings.Builder
	for i, p := range points {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, x(i), y(p.Value))
	}
	fmt.Fprintf(b, `<path class=line d="%s"/>`+"\n", strings.TrimSpace(path.String()))
	for i, p := range points {
		class, note := "pt", ""
		if !p.Compatible {
			class, note = "pt-mismatch", " — config differs from latest"
		}
		fmt.Fprintf(b, `<circle class=%s cx="%.1f" cy="%.1f" r="4"><title>run #%d %s%s
commit %s  value %s%s</title></circle>`+"\n",
			class, x(i), y(p.Value), p.Seq, html.EscapeString(p.ID), html.EscapeString(p.Time),
			html.EscapeString(p.Commit), fmtVal(p.Value), note)
	}
	// Direct-label the latest point only.
	last := points[len(points)-1]
	anchor, lx := "end", x(len(points)-1)-8
	if len(points) == 1 {
		anchor, lx = "middle", x(0)
	}
	fmt.Fprintf(b, `<text class=label x="%.1f" y="%.1f" text-anchor=%s>%s</text>`+"\n",
		lx, y(last.Value)-8, anchor, fmtVal(last.Value))
	b.WriteString("</svg>\n")
}

// fmtVal renders an axis/label value compactly.
func fmtVal(v float64) string {
	switch {
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.2e", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// snapshot is one metrics-registry snapshot found inside a payload.
type snapshot struct {
	path string
	obj  map[string]any
}

// findSnapshots walks the payload for obs registry snapshots — objects
// carrying Counters/Gauges/Histograms sections — wherever the document
// nests them (topo.Sample.Metrics, result.Metrics, ...).
func findSnapshots(prefix string, v any) []snapshot {
	m, ok := v.(map[string]any)
	if !ok {
		return nil
	}
	_, c := m["Counters"].([]any)
	_, g := m["Gauges"].([]any)
	_, h := m["Histograms"].([]any)
	if c || g || h {
		return []snapshot{{path: prefix, obj: m}}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []snapshot
	for _, k := range keys {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		out = append(out, findSnapshots(p, m[k])...)
	}
	return out
}

// snapshotTables renders one registry snapshot as the obs summary-style
// aligned tables.
func snapshotTables(b *strings.Builder, snap map[string]any) {
	section := func(title string, cols []string, rows []any, cells func(map[string]any) []string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(b, "<h3 class=muted>%s</h3>\n<table>\n<tr>", title)
		for _, c := range cols {
			fmt.Fprintf(b, "<th>%s</th>", c)
		}
		b.WriteString("</tr>\n")
		for _, r := range rows {
			m, ok := r.(map[string]any)
			if !ok {
				continue
			}
			b.WriteString("<tr>")
			for _, cell := range cells(m) {
				fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(cell))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	num := func(v any) string {
		f, ok := v.(float64)
		if !ok {
			return fmt.Sprint(v)
		}
		return fmtVal(f)
	}
	counters, _ := snap["Counters"].([]any)
	section("counters", []string{"name", "value"}, counters, func(m map[string]any) []string {
		return []string{fmt.Sprint(m["Name"]), num(m["Value"])}
	})
	gauges, _ := snap["Gauges"].([]any)
	section("gauges", []string{"name", "last", "max", "samples"}, gauges, func(m map[string]any) []string {
		return []string{fmt.Sprint(m["Name"]), num(m["Last"]), num(m["Max"]), num(m["Samples"])}
	})
	hists, _ := snap["Histograms"].([]any)
	section("histograms", []string{"name", "count", "sum", "min", "max"}, hists, func(m map[string]any) []string {
		return []string{fmt.Sprint(m["Name"]), num(m["Count"]), num(m["Sum"]), num(m["Min"]), num(m["Max"])}
	})
}

func pageHead(b *strings.Builder, title string, extraHead ...string) {
	fmt.Fprintf(b, `<!doctype html>
<html lang=en>
<meta charset=utf-8>
<meta name=viewport content="width=device-width, initial-scale=1">
<title>%s</title>
<style>%s</style>
`, html.EscapeString(title), pageCSS)
	for _, h := range extraHead {
		b.WriteString(h + "\n")
	}
	b.WriteString("<body>\n")
}

func pageFoot(b *strings.Builder) {
	b.WriteString(`<p class=muted>API: <code>/api/runs</code> · <code>/api/runs/{id}</code> · <code>/api/trend?metric=</code> · <code>/api/diff?a=&amp;b=</code> · <code>/api/regression?metric=</code> · <code>POST /api/ingest</code></p>
</body>
</html>
`)
}

func writeHTML(w http.ResponseWriter, page string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(page))
}
