package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ibcbench/internal/obs"
	"ibcbench/internal/store"
)

func postLive(t *testing.T, url string, body string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

func liveStatusJSON(t *testing.T, st obs.LiveStatus) string {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLiveLifecycle walks the full telemetry story: register a run via
// updates, watch the entry accumulate, then finish the session with a
// result document and see the live entry convert into an archived run.
func TestLiveLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	status := obs.LiveStatus{Name: "hub-3", Seed: 7, Now: 5e9, Blocks: 12, Tracked: 30, Completed: 20, Backlog: 10}

	// Updates upsert one entry per (session, name, seed).
	if _, code := postLive(t, ts.URL+"/api/live/update?session=s1", liveStatusJSON(t, status)); code != http.StatusOK {
		t.Fatalf("update status=%d", code)
	}
	status.Blocks, status.Completed, status.Backlog = 24, 30, 0
	postLive(t, ts.URL+"/api/live/update?session=s1", liveStatusJSON(t, status))

	var list struct {
		Live []liveEntry `json:"live"`
	}
	if code := getJSON(t, ts.URL+"/api/live", &list); code != http.StatusOK {
		t.Fatalf("live list status=%d", code)
	}
	if len(list.Live) != 1 {
		t.Fatalf("live entries = %d, want 1", len(list.Live))
	}
	e := list.Live[0]
	if e.Key != "s1/hub-3/7" || e.Updates != 2 || e.Status.Blocks != 24 || e.Status.Backlog != 0 {
		t.Fatalf("live entry %+v", e)
	}

	// The dashboard shows the live section and auto-refreshes only
	// while something is in flight.
	page, _ := getBody(t, ts.URL+"/")
	for _, want := range []string{"Live runs", "hub-3", "http-equiv=refresh"} {
		if !strings.Contains(page, want) {
			t.Errorf("live dashboard missing %q", want)
		}
	}

	// Finishing with a result document archives it and clears the
	// session.
	out, code := postLive(t, ts.URL+"/api/live/finish?session=s1&commit=abc&time=2026-08-01T00:00:00Z",
		doc("hub:3", 7, 0.9))
	if code != http.StatusCreated {
		t.Fatalf("finish status=%d: %v", code, out)
	}
	if out["removed"] != float64(1) || out["created"] != true {
		t.Fatalf("finish response %v", out)
	}
	meta := out["meta"].(map[string]any)
	id, _ := meta["id"].(string)
	if id == "" {
		t.Fatal("finish response missing archived run id")
	}

	getJSON(t, ts.URL+"/api/live", &list)
	if len(list.Live) != 0 {
		t.Fatalf("live entries after finish = %d, want 0", len(list.Live))
	}
	var runs struct {
		Runs []store.Meta `json:"runs"`
	}
	getJSON(t, ts.URL+"/api/runs", &runs)
	if len(runs.Runs) != 1 || runs.Runs[0].ID != id {
		t.Fatalf("archived runs %+v, want the finished run %s", runs.Runs, id)
	}
	page, _ = getBody(t, ts.URL+"/")
	if strings.Contains(page, "Live runs") || strings.Contains(page, "http-equiv=refresh") {
		t.Error("dashboard still shows live section after finish")
	}
}

// TestLiveValidation: updates and finishes need a session; malformed
// status bodies are rejected; finishing an unknown session with no
// payload is a harmless no-op.
func TestLiveValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	if _, code := postLive(t, ts.URL+"/api/live/update", `{}`); code != http.StatusBadRequest {
		t.Errorf("sessionless update status=%d, want 400", code)
	}
	if _, code := postLive(t, ts.URL+"/api/live/update?session=s1", `{broken`); code != http.StatusBadRequest {
		t.Errorf("malformed status status=%d, want 400", code)
	}
	if _, code := postLive(t, ts.URL+"/api/live/finish", ""); code != http.StatusBadRequest {
		t.Errorf("sessionless finish status=%d, want 400", code)
	}
	out, code := postLive(t, ts.URL+"/api/live/finish?session=ghost", "")
	if code != http.StatusOK || out["removed"] != float64(0) {
		t.Errorf("ghost finish status=%d resp=%v, want 200/removed 0", code, out)
	}
}

// TestLiveSessionsIsolated: two sessions publishing the same scenario
// name+seed stay distinct, and finishing one leaves the other live.
func TestLiveSessionsIsolated(t *testing.T) {
	ts, _ := newTestServer(t)
	st := obs.LiveStatus{Name: "mesh-4", Seed: 1}
	postLive(t, ts.URL+"/api/live/update?session=a", liveStatusJSON(t, st))
	postLive(t, ts.URL+"/api/live/update?session=b", liveStatusJSON(t, st))

	var list struct {
		Live []liveEntry `json:"live"`
	}
	getJSON(t, ts.URL+"/api/live", &list)
	if len(list.Live) != 2 {
		t.Fatalf("live entries = %d, want 2", len(list.Live))
	}
	postLive(t, ts.URL+"/api/live/finish?session=a", "")
	getJSON(t, ts.URL+"/api/live", &list)
	if len(list.Live) != 1 || list.Live[0].Session != "b" {
		t.Fatalf("after finishing a: %+v", list.Live)
	}
}
