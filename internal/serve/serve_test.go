package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ibcbench/internal/store"
)

func newTestServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	ts := httptest.NewServer(New(st))
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts, st
}

func doc(topology string, seed int, bps float64) string {
	return fmt.Sprintf(`{"config": {"topology": %q, "seed": %d, "rate": 5}, "topo": {"Sample": {"BlocksPerSec": %v}, "Throughput": {"Mean": 1.0}}}`,
		topology, seed, bps)
}

type ingestResp struct {
	Meta    store.Meta `json:"meta"`
	Created bool       `json:"created"`
}

func postIngest(t *testing.T, base, query, payload string) (ingestResp, int) {
	t.Helper()
	resp, err := http.Post(base+"/api/ingest?"+query, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /api/ingest: %v", err)
	}
	defer resp.Body.Close()
	var out ingestResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	return out, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp.StatusCode
}

// TestIngestTrendAndIdempotency is the core acceptance path: three runs
// posted through /api/ingest, /api/trend returns them as a monotone run
// sequence with the right values, and re-posting the same document is
// idempotent.
func TestIngestTrendAndIdempotency(t *testing.T) {
	ts, _ := newTestServer(t)
	values := []float64{0.8, 0.85, 0.9}
	var first ingestResp
	for i, v := range values {
		out, code := postIngest(t, ts.URL,
			fmt.Sprintf("kind=experiment&commit=c%d&time=2026-08-0%dT00:00:00Z", i, i+1),
			doc("hub:3", 1, v))
		if code != http.StatusCreated || !out.Created {
			t.Fatalf("ingest %d: status=%d created=%v", i, code, out.Created)
		}
		if i == 0 {
			first = out
		}
	}

	// Same payload, same timestamp → same run, nothing created.
	again, code := postIngest(t, ts.URL, "kind=experiment&commit=c0&time=2026-08-01T00:00:00Z", doc("hub:3", 1, 0.8))
	if code != http.StatusOK || again.Created {
		t.Fatalf("re-ingest: status=%d created=%v, want 200/false", code, again.Created)
	}
	if again.Meta.ID != first.Meta.ID || again.Meta.Seq != first.Meta.Seq {
		t.Fatalf("re-ingest changed identity: %+v vs %+v", again.Meta, first.Meta)
	}

	var trend struct {
		Metric string             `json:"metric"`
		Points []store.TrendPoint `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/api/trend?metric=topo.Sample.BlocksPerSec", &trend); code != http.StatusOK {
		t.Fatalf("trend status=%d", code)
	}
	if len(trend.Points) != 3 {
		t.Fatalf("trend points = %d, want 3", len(trend.Points))
	}
	for i, p := range trend.Points {
		if p.Value != values[i] {
			t.Errorf("point %d value = %v, want %v", i, p.Value, values[i])
		}
		if i > 0 && p.Seq <= trend.Points[i-1].Seq {
			t.Errorf("run sequence not monotone: seq[%d]=%d after %d", i, p.Seq, trend.Points[i-1].Seq)
		}
		if !p.Compatible {
			t.Errorf("point %d unexpectedly config-incompatible", i)
		}
	}

	var runs struct {
		Runs []store.Meta `json:"runs"`
	}
	getJSON(t, ts.URL+"/api/runs", &runs)
	if len(runs.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs.Runs))
	}
}

// TestRunEndpointsRoundTrip checks drill-down JSON and verbatim payload
// bytes.
func TestRunEndpointsRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := doc("hub:3", 7, 0.9)
	out, _ := postIngest(t, ts.URL, "time=2026-08-01T00:00:00Z", payload)

	var run struct {
		Meta    store.Meta      `json:"meta"`
		Payload json.RawMessage `json:"payload"`
	}
	if code := getJSON(t, ts.URL+"/api/runs/"+out.Meta.ID, &run); code != http.StatusOK {
		t.Fatalf("run status=%d", code)
	}
	if run.Meta.Seed != 7 {
		t.Errorf("seed = %d, want 7", run.Meta.Seed)
	}
	raw, code := getBody(t, ts.URL+"/api/runs/"+out.Meta.ID+"/payload")
	if code != http.StatusOK || raw != payload {
		t.Errorf("payload round-trip mismatch (status %d)", code)
	}
	if _, code := getBody(t, ts.URL+"/api/runs/nope"); code != http.StatusNotFound {
		t.Errorf("missing run status = %d, want 404", code)
	}
}

// TestRegressionEndpointFlagsDegradedRun: a synthetically degraded run
// against a healthy rolling median is flagged over HTTP.
func TestRegressionEndpointFlagsDegradedRun(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 5; i++ {
		postIngest(t, ts.URL, fmt.Sprintf("time=2026-08-01T00:00:0%dZ", i), doc("hub:3", 1, 100+float64(i)))
	}
	postIngest(t, ts.URL, "time=2026-08-02T00:00:00Z", doc("hub:3", 1, 60))

	var reg store.Regression
	if code := getJSON(t, ts.URL+"/api/regression?metric=topo.Sample.BlocksPerSec&k=5&tolerance=10", &reg); code != http.StatusOK {
		t.Fatalf("regression status=%d", code)
	}
	if !reg.Flagged {
		t.Fatalf("degraded run not flagged: %+v", reg)
	}
	if reg.Window != 5 {
		t.Errorf("window = %d, want 5", reg.Window)
	}
	if reg.DeltaPct > -35 {
		t.Errorf("delta = %.1f%%, want about -41%%", reg.DeltaPct)
	}
}

// TestDashboardRendersInlineSVG: the dashboard HTML embeds trend charts
// as inline SVG and ships zero external assets.
func TestDashboardRendersInlineSVG(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		postIngest(t, ts.URL, fmt.Sprintf("time=2026-08-01T00:00:0%dZ", i), doc("hub:3", 1, 0.8+float64(i)/10))
	}
	// One config-mismatch run: must be annotated, not hidden.
	postIngest(t, ts.URL, "time=2026-08-02T00:00:00Z", doc("mesh:4", 1, 2.5))

	page, code := getBody(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("dashboard status=%d", code)
	}
	if !strings.Contains(page, "<svg") {
		t.Fatal("dashboard has no inline SVG chart")
	}
	if !strings.Contains(page, "config differs from latest") {
		t.Error("config-mismatch run not annotated in chart tooltips")
	}
	if !strings.Contains(page, "config header differing") {
		t.Error("config-mismatch note missing")
	}
	for _, external := range []string{"http://", "https://", "<script", "<link", "src=", "@import"} {
		if strings.Contains(page, external) {
			t.Errorf("dashboard references an external asset: %q", external)
		}
	}
	// Explicit metric query charts that metric.
	page, _ = getBody(t, ts.URL+"/?metric=topo.Throughput.Mean")
	if !strings.Contains(page, "topo.Throughput.Mean") || !strings.Contains(page, "<svg") {
		t.Error("explicit ?metric= not charted")
	}
}

// TestRunPageRendersMetricsSnapshot: the per-run page shows the config
// header and any obs registry snapshot nested in the payload.
func TestRunPageRendersMetricsSnapshot(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := `{"config": {"topology": "hub:3", "seed": 3}, "topo": {"Sample": {"BlocksPerSec": 0.8, "Metrics": {"Counters": [{"Name": "blocks_committed", "Value": 42}], "Gauges": [], "Histograms": [{"Name": "commit_latency_ms", "Count": 10, "Sum": 120, "Min": 5, "Max": 30}]}}}}`
	out, _ := postIngest(t, ts.URL, "time=2026-08-01T00:00:00Z", payload)

	page, code := getBody(t, ts.URL+"/runs/"+out.Meta.ID)
	if code != http.StatusOK {
		t.Fatalf("run page status=%d", code)
	}
	for _, want := range []string{"Config header", "topology", "hub:3", "Metrics registry", "blocks_committed", "42", "commit_latency_ms"} {
		if !strings.Contains(page, want) {
			t.Errorf("run page missing %q", want)
		}
	}
}

// TestTracePostValidatesAndBadges: traces are validated at ingest; the
// verdict badges the run on both API and dashboard, and invalid traces
// are kept for inspection.
func TestTracePostValidatesAndBadges(t *testing.T) {
	ts, _ := newTestServer(t)
	good, _ := postIngest(t, ts.URL, "kind=trace&time=2026-08-01T00:00:00Z", doc("hub:3", 1, 0.8))
	bad, _ := postIngest(t, ts.URL, "kind=trace&time=2026-08-01T00:00:01Z", doc("hub:3", 2, 0.8))

	post := func(id, trace string) map[string]any {
		resp, err := http.Post(ts.URL+"/api/runs/"+id+"/trace", "application/json", bytes.NewReader([]byte(trace)))
		if err != nil {
			t.Fatalf("POST trace: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	validTrace := `{"traceEvents": [{"name": "block", "ph": "X", "ts": 1, "dur": 2}]}`
	if out := post(good.Meta.ID, validTrace); out["trace_valid"] != true {
		t.Fatalf("valid trace rejected: %v", out)
	}
	out := post(bad.Meta.ID, `{"traceEvents": [{"name": "block", "ph": "?", "ts": 1}]}`)
	if out["trace_valid"] != false {
		t.Fatalf("invalid trace not badged: %v", out)
	}
	if _, ok := out["trace_error"].(string); !ok {
		t.Error("invalid trace response missing trace_error")
	}

	// The invalid trace is still downloadable.
	if _, code := getBody(t, ts.URL+"/api/runs/"+bad.Meta.ID+"/trace"); code != http.StatusOK {
		t.Error("invalid trace not stored")
	}
	page, _ := getBody(t, ts.URL+"/")
	if !strings.Contains(page, ">valid<") || !strings.Contains(page, ">invalid<") {
		t.Error("dashboard missing trace validity badges")
	}
	runPage, _ := getBody(t, ts.URL+"/runs/"+good.Meta.ID)
	if !strings.Contains(runPage, ">valid<") || !strings.Contains(runPage, "trace.json") {
		t.Error("run page missing trace link/badge")
	}
}

// TestDiffEndpointReportsConfigMismatch: the stored diff mirrors
// `ibcbench -diff` — metric deltas plus field-level config mismatch.
func TestDiffEndpointReportsConfigMismatch(t *testing.T) {
	ts, _ := newTestServer(t)
	a, _ := postIngest(t, ts.URL, "time=2026-08-01T00:00:00Z", doc("hub:3", 1, 0.8))
	b, _ := postIngest(t, ts.URL, "time=2026-08-01T00:00:01Z", doc("hub:6", 1, 1.6))

	var diff struct {
		ConfigMismatch []string  `json:"config_mismatch"`
		Changed        []diffRow `json:"changed"`
	}
	code := getJSON(t, fmt.Sprintf("%s/api/diff?a=%s&b=%s", ts.URL, a.Meta.ID, b.Meta.ID), &diff)
	if code != http.StatusOK {
		t.Fatalf("diff status=%d", code)
	}
	foundCfg := false
	for _, row := range diff.ConfigMismatch {
		if strings.Contains(row, "topology") && strings.Contains(row, "hub:3") && strings.Contains(row, "hub:6") {
			foundCfg = true
		}
	}
	if !foundCfg {
		t.Errorf("config mismatch rows missing topology change: %v", diff.ConfigMismatch)
	}
	foundDelta := false
	for _, row := range diff.Changed {
		if row.Path == "topo.Sample.BlocksPerSec" && row.DeltaPct != nil && *row.DeltaPct == 100 {
			foundDelta = true
		}
	}
	if !foundDelta {
		t.Errorf("changed rows missing BlocksPerSec +100%%: %+v", diff.Changed)
	}
}
