package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// quickSpec is a tiny scenario the queue worker can run in well under a
// second — the quickstart builtin's canonical form.
const quickSpec = `{
  "name": "queued-quickstart",
  "topology": {"preset": "two"},
  "deploy": {},
  "workload": {"rate": 1, "windows": 1},
  "seed": 1
}`

func postQueue(t *testing.T, base, query, body string) (map[string]json.RawMessage, int) {
	t.Helper()
	resp, err := http.Post(base+"/api/queue"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/queue: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode queue response: %v", err)
	}
	return out, resp.StatusCode
}

// waitForJob polls the job list until the job leaves the queue or the
// deadline passes; the worker runs a real (virtual-clock) simulation,
// so completion is fast but asynchronous.
func waitForJob(t *testing.T, base string, id int) queueJob {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var list struct {
			Jobs []queueJob `json:"jobs"`
		}
		if code := getJSON(t, base+"/api/queue", &list); code != http.StatusOK {
			t.Fatalf("GET /api/queue: status %d", code)
		}
		for _, j := range list.Jobs {
			if j.ID == id && j.Status != "queued" && j.Status != "running" {
				return j
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %d did not finish in time", id)
	return queueJob{}
}

func TestQueueRunsSpecAndArchives(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scenario server-side")
	}
	ts, st := newTestServer(t)
	resp, code := postQueue(t, ts.URL, "", quickSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /api/queue: status %d (%s)", code, resp["error"])
	}
	var job queueJob
	if err := json.Unmarshal(resp["job"], &job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	if job.ID != 1 || job.Scenario != "queued-quickstart" || job.Status != "queued" {
		t.Fatalf("unexpected accepted job: %+v", job)
	}
	done := waitForJob(t, ts.URL, job.ID)
	if done.Status != "done" {
		t.Fatalf("job did not finish cleanly: %+v", done)
	}
	if done.Passed == nil || !*done.Passed || done.Violations != 0 {
		t.Errorf("expected a passing run, got %+v", done)
	}
	if done.RunID == "" {
		t.Fatal("finished job carries no archived run id")
	}
	meta, payload, err := st.Get(done.RunID)
	if err != nil {
		t.Fatalf("archived run not in store: %v", err)
	}
	if meta.Kind != "scenario" {
		t.Errorf("archived kind = %q, want scenario", meta.Kind)
	}
	var rep struct {
		Spec struct {
			Name string `json:"name"`
		} `json:"spec"`
		Violations []json.RawMessage `json:"violations"`
	}
	if err := json.Unmarshal(payload, &rep); err != nil {
		t.Fatalf("archived payload not a report: %v", err)
	}
	if rep.Spec.Name != "queued-quickstart" || len(rep.Violations) != 0 {
		t.Errorf("unexpected archived report: %+v", rep)
	}
}

func TestQueueRejectsBadSpecs(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, query, body string
	}{
		{"not json", "", "{nope"},
		{"unknown field", "", `{"name":"x","topology":{"preset":"two"},"bogus":1}`},
		{"invalid topology", "", `{"name":"x","topology":{"preset":"ring:9"},"workload":{"rate":1,"windows":1}}`},
		{"bad seed", "?seed=notanumber", quickSpec},
	}
	for _, c := range cases {
		resp, code := postQueue(t, ts.URL, c.query, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", c.name, code, resp)
		}
	}
	// Nothing should have been accepted.
	var list struct {
		Jobs []queueJob `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/queue", &list)
	if len(list.Jobs) != 0 {
		t.Errorf("rejected posts left %d job(s) in the log", len(list.Jobs))
	}
}

func TestQueueDashboardSection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scenario server-side")
	}
	ts, _ := newTestServer(t)
	resp, code := postQueue(t, ts.URL, "?seed=7", quickSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /api/queue: status %d (%s)", code, resp["error"])
	}
	var job queueJob
	if err := json.Unmarshal(resp["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.Seed != 7 {
		t.Errorf("seed override not applied: %+v", job)
	}
	waitForJob(t, ts.URL, job.ID)
	page, _ := getBody(t, ts.URL+"/")
	for _, want := range []string{"Scenario queue", "queued-quickstart", "assertions held"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// The empty job log must not render a queue section or an error.
func TestQueueListEmpty(t *testing.T) {
	ts, _ := newTestServer(t)
	var list struct {
		Jobs []queueJob `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/api/queue", &list); code != http.StatusOK {
		t.Fatalf("GET /api/queue: status %d", code)
	}
	if len(list.Jobs) != 0 {
		t.Errorf("expected empty job log, got %v", list.Jobs)
	}
	page, _ := getBody(t, ts.URL+"/")
	if strings.Contains(page, "Scenario queue") {
		t.Error("dashboard renders a queue section with no jobs")
	}
}
