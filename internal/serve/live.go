// Live run telemetry: in-flight experiments POST periodic progress
// snapshots (topo.LiveConfig → the CLI's -live flag) into a session-
// keyed in-memory registry, the dashboard and GET /api/live read them
// back, and the finishing POST converts the session into an archived
// run. The registry is deliberately not persisted — a live entry
// describes a process that is still running; only the final result
// document belongs in the store.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"ibcbench/internal/obs"
)

// liveEntry is one scenario execution's latest snapshot within a live
// session. A sweep publishes one entry per (name, seed) pair under the
// same session.
type liveEntry struct {
	Key     string         `json:"key"`
	Session string         `json:"session"`
	Updates int            `json:"updates"`
	Updated time.Time      `json:"updated"`
	Status  obs.LiveStatus `json:"status"`
}

// liveKey identifies one entry: runs of a sweep update independently,
// sessions never collide.
func liveKey(session string, st obs.LiveStatus) string {
	return fmt.Sprintf("%s/%s/%d", session, st.Name, st.Seed)
}

// liveEntries snapshots the registry sorted by key.
func (s *Server) liveEntries() []liveEntry {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	out := make([]liveEntry, 0, len(s.live))
	for _, e := range s.live {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// handleLiveUpdate ingests one progress snapshot:
// POST /api/live/update?session=<id> with an obs.LiveStatus body.
func (s *Server) handleLiveUpdate(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	if session == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("live update needs ?session="))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var st obs.LiveStatus
	if err := json.Unmarshal(body, &st); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad live status: %w", err))
		return
	}
	key := liveKey(session, st)
	s.liveMu.Lock()
	e := s.live[key]
	if e == nil {
		e = &liveEntry{Key: key, Session: session}
		s.live[key] = e
	}
	e.Status = st
	e.Updates++
	e.Updated = time.Now().UTC()
	n := len(s.live)
	s.liveMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "live": n})
}

// handleLiveList reports every in-flight entry.
func (s *Server) handleLiveList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"live": s.liveEntries()})
}

// handleLiveFinish ends a live session:
// POST /api/live/finish?session=<id>[&kind=&commit=&time=]. The
// session's entries leave the live registry; a non-empty body is the
// finished run's result document and is archived exactly like
// /api/ingest, so the dashboard's live row converts into a stored run.
func (s *Server) handleLiveFinish(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	session := q.Get("session")
	if session == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("live finish needs ?session="))
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.liveMu.Lock()
	removed := 0
	for key, e := range s.live {
		if e.Session == session {
			delete(s.live, key)
			removed++
		}
	}
	s.liveMu.Unlock()
	if len(payload) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"removed": removed})
		return
	}
	kind := q.Get("kind")
	if kind == "" {
		kind = "experiment"
	}
	meta, created, err := s.st.Ingest(kind, q.Get("commit"), q.Get("time"), payload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, map[string]any{"removed": removed, "meta": meta, "created": created})
}
