package ibc_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/valkey"
)

// testChain is a consensus-less chain harness: it executes transactions
// directly and mints signed headers so light-client verification runs
// for real.
type testChain struct {
	t        *testing.T
	chainID  string
	app      *app.App
	keeper   *ibc.Keeper
	transfer *transfer.Module
	keys     []*valkey.PrivKey
	valset   *types.ValidatorSet

	height  int64
	appHash map[int64]types.Hash // app hash after executing block h
	nonce   uint64
}

func newTestChain(t *testing.T, chainID string) *testChain {
	t.Helper()
	a := app.New(chainID, true)
	k := ibc.NewKeeper(a)
	tm := transfer.New(a, k)
	c := &testChain{
		t: t, chainID: chainID, app: a, keeper: k, transfer: tm,
		appHash: make(map[int64]types.Hash),
	}
	vals := make([]*types.Validator, 4)
	for i := range vals {
		key := valkey.Derive(chainID, i)
		c.keys = append(c.keys, key)
		vals[i] = &types.Validator{Address: key.Pub().Address(), PubKey: key.Pub(), VotingPower: 10}
	}
	c.valset = types.NewValidatorSet(vals)
	c.appHash[0] = a.Commit() // genesis
	c.app.CreateAccount("relayer", app.Coin{Denom: "stake", Amount: 1 << 40})
	return c
}

// deliver executes msgs as one tx in a new block and returns the result.
func (c *testChain) deliver(signer string, msgs ...app.Msg) []string {
	c.t.Helper()
	c.height++
	seq, err := c.app.AccountSequence(signer)
	if err != nil {
		c.t.Fatalf("sequence for %s: %v", signer, err)
	}
	c.nonce++
	tx := app.NewTx(signer, seq, c.nonce, msgs)
	tx.GasLimit = 1 << 40
	c.app.BeginBlock(c.height, time.Duration(c.height)*5*time.Second)
	res := c.app.DeliverTx(tx)
	c.app.EndBlock(c.height)
	c.appHash[c.height] = c.app.Commit()
	if !res.IsOK() {
		return []string{res.Log}
	}
	return nil
}

// mustDeliver fails the test if the tx failed.
func (c *testChain) mustDeliver(signer string, msgs ...app.Msg) {
	c.t.Helper()
	if errs := c.deliver(signer, msgs...); errs != nil {
		c.t.Fatalf("deliver on %s: %v", c.chainID, errs)
	}
}

// emptyBlock advances the chain one height with no transactions.
func (c *testChain) emptyBlock() {
	c.height++
	c.app.BeginBlock(c.height, time.Duration(c.height)*5*time.Second)
	c.app.EndBlock(c.height)
	c.appHash[c.height] = c.app.Commit()
}

// headerBundle builds a signed header at height h carrying the app hash
// after block h-1 (Cosmos convention).
func (c *testChain) headerBundle(h int64) ibc.HeaderBundle {
	c.t.Helper()
	hdr := types.Header{
		ChainID: c.chainID,
		Height:  h,
		Time:    time.Duration(h) * 5 * time.Second,
		AppHash: c.appHash[h-1],
	}
	blockID := types.BlockID{Hash: hdr.Hash()}
	commit := &types.Commit{Height: h, BlockID: blockID}
	for i, val := range c.valset.Validators {
		vote := &types.Vote{
			Type: types.PrecommitType, Height: h, BlockID: blockID,
			ValidatorAddress: val.Address,
		}
		commit.Signatures = append(commit.Signatures, types.CommitSig{
			Flag:             types.BlockIDFlagCommit,
			ValidatorAddress: val.Address,
			Signature:        c.keys[i].Sign(types.VoteSignBytes(c.chainID, vote)),
		})
	}
	return ibc.HeaderBundle{Header: hdr, Commit: commit}
}

// clientState describes this chain for a counterparty's client.
func (c *testChain) clientState() ibc.ClientState {
	var vals []ibc.ValidatorRecord
	for _, v := range c.valset.Validators {
		vals = append(vals, ibc.ValidatorRecord{PubKey: v.PubKey.Bytes(), Power: v.VotingPower})
	}
	return ibc.ClientState{ChainID: c.chainID, Validators: vals}
}

// prove builds a membership proof of key in this chain's state as of
// consensus height consHeight (state at consHeight-1).
func (c *testChain) prove(consHeight int64, key string) ([]byte, *ibc.Proof) {
	c.t.Helper()
	tree, err := c.app.State().TreeAt(consHeight - 1)
	if err != nil {
		c.t.Fatalf("tree at %d: %v", consHeight-1, err)
	}
	value, mp, ok := tree.ProveMembership([]byte(key))
	if !ok {
		c.t.Fatalf("key %q absent at height %d", key, consHeight-1)
	}
	return value, &ibc.Proof{Membership: mp}
}

// proveAbsent builds a non-membership proof.
func (c *testChain) proveAbsent(consHeight int64, key string) *ibc.Proof {
	c.t.Helper()
	tree, err := c.app.State().TreeAt(consHeight - 1)
	if err != nil {
		c.t.Fatalf("tree at %d: %v", consHeight-1, err)
	}
	nm, ok := tree.ProveNonMembership([]byte(key))
	if !ok {
		c.t.Fatalf("key %q present at height %d", key, consHeight-1)
	}
	return &ibc.Proof{NonMembership: nm}
}

// updateClientTo relays a header so dst's client of src reaches height h.
func updateClientTo(dst, src *testChain, clientID string, h int64) {
	dst.mustDeliver("relayer", ibc.MsgUpdateClient{ClientID: clientID, Bundle: src.headerBundle(h)})
}

// linkChains runs the full connection + channel handshake between two
// chains via relayer-style transactions with real proofs.
func linkChains(t *testing.T, a, b *testChain) {
	t.Helper()
	// Clients.
	a.mustDeliver("relayer", ibc.MsgCreateClient{
		ClientID: "client-b", State: b.clientState(),
		InitialHeight:    b.height + 1,
		InitialConsensus: ibc.ConsensusState{Root: b.appHash[b.height], Timestamp: 0},
	})
	b.mustDeliver("relayer", ibc.MsgCreateClient{
		ClientID: "client-a", State: a.clientState(),
		InitialHeight:    a.height + 1,
		InitialConsensus: ibc.ConsensusState{Root: a.appHash[a.height], Timestamp: 0},
	})
	// Connection handshake.
	a.mustDeliver("relayer", ibc.MsgConnOpenInit{
		ConnID: "conn-a", ClientID: "client-b",
		CounterpartyConnID: "conn-b", CounterpartyClientID: "client-a",
	})
	updateClientTo(b, a, "client-a", a.height+1)
	initVal, initProof := a.prove(a.height+1, ibc.ConnectionKey("conn-a"))
	_ = initVal
	b.mustDeliver("relayer", ibc.MsgConnOpenTry{
		ConnID: "conn-b", ClientID: "client-a",
		CounterpartyConnID: "conn-a", CounterpartyClientID: "client-b",
		ProofInit: initProof, ProofHeight: a.height + 1,
	})
	updateClientTo(a, b, "client-b", b.height+1)
	_, tryProof := b.prove(b.height+1, ibc.ConnectionKey("conn-b"))
	a.mustDeliver("relayer", ibc.MsgConnOpenAck{
		ConnID: "conn-a", ProofTry: tryProof, ProofHeight: b.height + 1,
	})
	updateClientTo(b, a, "client-a", a.height+1)
	_, ackProof := a.prove(a.height+1, ibc.ConnectionKey("conn-a"))
	b.mustDeliver("relayer", ibc.MsgConnOpenConfirm{
		ConnID: "conn-b", ProofAck: ackProof, ProofHeight: a.height + 1,
	})
	// Channel handshake.
	a.mustDeliver("relayer", ibc.MsgChanOpenInit{
		Port: "transfer", Channel: "channel-0", ConnectionID: "conn-a",
		CounterpartyPort: "transfer", CounterpartyChan: "channel-0",
		Ordering: ibc.Unordered, Version: "ics20-1",
	})
	updateClientTo(b, a, "client-a", a.height+1)
	_, chInit := a.prove(a.height+1, ibc.ChannelKey("transfer", "channel-0"))
	b.mustDeliver("relayer", ibc.MsgChanOpenTry{
		Port: "transfer", Channel: "channel-0", ConnectionID: "conn-b",
		CounterpartyPort: "transfer", CounterpartyChan: "channel-0",
		Ordering: ibc.Unordered, Version: "ics20-1",
		ProofInit: chInit, ProofHeight: a.height + 1,
	})
	updateClientTo(a, b, "client-b", b.height+1)
	_, chTry := b.prove(b.height+1, ibc.ChannelKey("transfer", "channel-0"))
	a.mustDeliver("relayer", ibc.MsgChanOpenAck{
		Port: "transfer", Channel: "channel-0",
		ProofTry: chTry, ProofHeight: b.height + 1,
	})
	updateClientTo(b, a, "client-a", a.height+1)
	_, chAck := a.prove(a.height+1, ibc.ChannelKey("transfer", "channel-0"))
	b.mustDeliver("relayer", ibc.MsgChanOpenConfirm{
		Port: "transfer", Channel: "channel-0",
		ProofAck: chAck, ProofHeight: a.height + 1,
	})
}

func ctxOf(c *testChain) *app.Context {
	return &app.Context{
		ChainID: c.chainID, Height: c.height, Time: time.Duration(c.height) * 5 * time.Second,
		State: c.app.State(), Bank: c.app.Bank(), App: c.app,
	}
}

func TestHandshakeOpensChannel(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	linkChains(t, a, b)
	for _, c := range []*testChain{a, b} {
		ch, err := c.keeper.Channel(ctxOf(c), "transfer", "channel-0")
		if err != nil {
			t.Fatalf("%s: %v", c.chainID, err)
		}
		if ch.State != ibc.StateOpen {
			t.Fatalf("%s channel state = %d, want open", c.chainID, ch.State)
		}
	}
}

// relayTransfer performs one full transfer lifecycle A -> B with proofs
// and returns the voucher denom minted on B.
func relayTransfer(t *testing.T, a, b *testChain, sender, receiver string, amount uint64) string {
	t.Helper()
	a.mustDeliver(sender, transfer.MsgTransfer{
		Sender: sender, Receiver: receiver,
		Token:         app.Coin{Denom: "uatom", Amount: amount},
		SourcePort:    "transfer",
		SourceChannel: "channel-0",
		TimeoutHeight: a.height + 1000,
	})
	sendHeight := a.height
	// Find the packet commitment (sequence unknown: scan via keeper).
	var seq uint64
	for s := uint64(1); s < 100; s++ {
		if a.keeper.HasCommitment(ctxOf(a), "transfer", "channel-0", s) &&
			!b.keeper.HasReceipt(ctxOf(b), "transfer", "channel-0", s) {
			seq = s
			break
		}
	}
	if seq == 0 {
		t.Fatal("no pending commitment found")
	}
	packet := ibc.Packet{
		Sequence: seq, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", amount, sender, receiver),
		TimeoutHeight: sendHeight + 1000 - 1, // as encoded at send time
	}
	// Fix the timeout to the value actually used at send time.
	packet.TimeoutHeight = sendHeight - 1 + 1000

	updateClientTo(b, a, "client-a", sendHeight+1)
	_, commitProof := a.prove(sendHeight+1, ibc.PacketCommitmentKey("transfer", "channel-0", seq))
	b.mustDeliver("relayer", ibc.MsgRecvPacket{
		Packet: packet, ProofCommitment: commitProof, ProofHeight: sendHeight + 1,
	})
	recvHeight := b.height

	ack := ibc.Acknowledgement{Result: []byte("AQ==")}
	updateClientTo(a, b, "client-b", recvHeight+1)
	_, ackProof := b.prove(recvHeight+1, ibc.PacketAckKey("transfer", "channel-0", seq))
	a.mustDeliver("relayer", ibc.MsgAcknowledgement{
		Packet: packet, Ack: ack.Bytes(), ProofAcked: ackProof, ProofHeight: recvHeight + 1,
	})
	return transfer.VoucherPrefix("transfer", "channel-0") + "uatom"
}

func mustPacketData(t *testing.T, denom string, amount uint64, sender, receiver string) []byte {
	t.Helper()
	return []byte(fmt.Sprintf(`{"denom":%q,"amount":%d,"sender":%q,"receiver":%q}`,
		denom, amount, sender, receiver))
}

func TestFullTransferLifecycle(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	b.app.CreateAccount("bob")
	linkChains(t, a, b)

	voucher := relayTransfer(t, a, b, "alice", "bob", 250)

	if got := a.app.Bank().Balance("alice", "uatom"); got != 750 {
		t.Fatalf("alice = %d", got)
	}
	escrow := transfer.EscrowAccount("transfer", "channel-0")
	if got := a.app.Bank().Balance(escrow, "uatom"); got != 250 {
		t.Fatalf("escrow = %d", got)
	}
	if got := b.app.Bank().Balance("bob", voucher); got != 250 {
		t.Fatalf("bob voucher = %d", got)
	}
	// Commitment cleared after ack.
	if a.keeper.HasCommitment(ctxOf(a), "transfer", "channel-0", 1) {
		t.Fatal("commitment not deleted after ack")
	}
	sent, received, acked, refunded := a.transfer.Stats()
	if sent != 1 || acked != 1 || refunded != 0 {
		t.Fatalf("a stats = %d/%d/%d/%d", sent, received, acked, refunded)
	}
	_, receivedB, _, _ := b.transfer.Stats()
	if receivedB != 1 {
		t.Fatalf("b received = %d", receivedB)
	}
}

func TestVoucherRoundTripRestoresOriginalDenom(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	b.app.CreateAccount("bob")
	b.app.CreateAccount("alice") // return destination
	linkChains(t, a, b)

	voucher := relayTransfer(t, a, b, "alice", "bob", 400)

	// Send the voucher back B -> A: burn on B, unescrow on A.
	b.mustDeliver("bob", transfer.MsgTransfer{
		Sender: "bob", Receiver: "alice",
		Token:         app.Coin{Denom: voucher, Amount: 150},
		SourcePort:    "transfer",
		SourceChannel: "channel-0",
		TimeoutHeight: b.height + 1000,
	})
	sendHeight := b.height
	packet := ibc.Packet{
		Sequence: 1, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, voucher, 150, "bob", "alice"),
		TimeoutHeight: sendHeight - 1 + 1000,
	}
	updateClientTo(a, b, "client-b", sendHeight+1)
	_, proof := b.prove(sendHeight+1, ibc.PacketCommitmentKey("transfer", "channel-0", 1))
	a.mustDeliver("relayer", ibc.MsgRecvPacket{
		Packet: packet, ProofCommitment: proof, ProofHeight: sendHeight + 1,
	})

	if got := b.app.Bank().Balance("bob", voucher); got != 250 {
		t.Fatalf("bob voucher after return = %d", got)
	}
	if got := b.app.Bank().Supply(voucher); got != 250 {
		t.Fatalf("voucher supply = %d", got)
	}
	if got := a.app.Bank().Balance("alice", "uatom"); got != 600+150 {
		t.Fatalf("alice uatom = %d", got)
	}
	escrow := transfer.EscrowAccount("transfer", "channel-0")
	if got := a.app.Bank().Balance(escrow, "uatom"); got != 250 {
		t.Fatalf("escrow = %d", got)
	}
}

func TestEscrowVoucherInvariant(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100000})
	b.app.CreateAccount("bob")
	linkChains(t, a, b)
	voucher := transfer.VoucherPrefix("transfer", "channel-0") + "uatom"
	escrow := transfer.EscrowAccount("transfer", "channel-0")
	for i := 0; i < 5; i++ {
		relayTransfer(t, a, b, "alice", "bob", uint64(100+i))
		// Invariant: escrowed == minted voucher supply.
		if a.app.Bank().Balance(escrow, "uatom") != b.app.Bank().Supply(voucher) {
			t.Fatalf("escrow %d != voucher supply %d",
				a.app.Bank().Balance(escrow, "uatom"), b.app.Bank().Supply(voucher))
		}
	}
}

func TestRedundantRecvRejected(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	b.app.CreateAccount("bob")
	linkChains(t, a, b)
	a.mustDeliver("alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: "bob",
		Token:      app.Coin{Denom: "uatom", Amount: 10},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: a.height + 1000,
	})
	sendHeight := a.height
	packet := ibc.Packet{
		Sequence: 1, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", 10, "alice", "bob"),
		TimeoutHeight: sendHeight - 1 + 1000,
	}
	updateClientTo(b, a, "client-a", sendHeight+1)
	_, proof := a.prove(sendHeight+1, ibc.PacketCommitmentKey("transfer", "channel-0", 1))
	recv := ibc.MsgRecvPacket{Packet: packet, ProofCommitment: proof, ProofHeight: sendHeight + 1}
	b.mustDeliver("relayer", recv)
	// A second relayer delivering the same packet fails: "packet
	// messages are redundant".
	errs := b.deliver("relayer", recv)
	if errs == nil {
		t.Fatal("redundant recv succeeded")
	}
	if !strings.Contains(errs[0], "redundant") {
		t.Fatalf("error = %q, want redundant-packet", errs[0])
	}
	// Funds were minted exactly once.
	voucher := transfer.VoucherPrefix("transfer", "channel-0") + "uatom"
	if got := b.app.Bank().Balance("bob", voucher); got != 10 {
		t.Fatalf("bob = %d after redundant delivery", got)
	}
}

func TestTimeoutRefundsEscrow(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	b.app.CreateAccount("bob")
	linkChains(t, a, b)

	a.mustDeliver("alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: "bob",
		Token:      app.Coin{Denom: "uatom", Amount: 77},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: b.height + 2, // tight timeout on destination
	})
	sendHeight := a.height
	timeout := b.height + 2
	packet := ibc.Packet{
		Sequence: 1, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", 77, "alice", "bob"),
		TimeoutHeight: timeout,
	}
	_ = sendHeight
	// Let destination pass the timeout height without receiving.
	for b.height < timeout+1 {
		b.emptyBlock()
	}
	// Receive must now be rejected on B.
	updateClientTo(b, a, "client-a", a.height+1)
	_, proof := a.prove(a.height+1, ibc.PacketCommitmentKey("transfer", "channel-0", 1))
	errs := b.deliver("relayer", ibc.MsgRecvPacket{
		Packet: packet, ProofCommitment: proof, ProofHeight: a.height + 1,
	})
	if errs == nil {
		t.Fatal("expired packet accepted")
	}
	// Relay the timeout to A with a non-receipt proof.
	updateClientTo(a, b, "client-b", b.height+1)
	absent := b.proveAbsent(b.height+1, ibc.PacketReceiptKey("transfer", "channel-0", 1))
	a.mustDeliver("relayer", ibc.MsgTimeout{
		Packet: packet, ProofUnreceived: absent, ProofHeight: b.height + 1,
	})
	if got := a.app.Bank().Balance("alice", "uatom"); got != 1000 {
		t.Fatalf("alice after refund = %d", got)
	}
	if a.keeper.HasCommitment(ctxOf(a), "transfer", "channel-0", 1) {
		t.Fatal("commitment survives timeout")
	}
	_, _, _, refunded := a.transfer.Stats()
	if refunded != 1 {
		t.Fatalf("refunded = %d", refunded)
	}
}

func TestTimeoutTooEarlyRejected(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	linkChains(t, a, b)
	a.mustDeliver("alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: "bob",
		Token:      app.Coin{Denom: "uatom", Amount: 5},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: b.height + 1000,
	})
	packet := ibc.Packet{
		Sequence: 1, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", 5, "alice", "bob"),
		TimeoutHeight: b.height - 1 + 1000,
	}
	updateClientTo(a, b, "client-b", b.height+1)
	absent := b.proveAbsent(b.height+1, ibc.PacketReceiptKey("transfer", "channel-0", 1))
	errs := a.deliver("relayer", ibc.MsgTimeout{
		Packet: packet, ProofUnreceived: absent, ProofHeight: b.height + 1,
	})
	if errs == nil {
		t.Fatal("premature timeout accepted")
	}
	if !strings.Contains(errs[0], "not yet elapsed") {
		t.Fatalf("error = %q", errs[0])
	}
}

func TestForgedProofRejected(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	b.app.CreateAccount("bob")
	linkChains(t, a, b)
	// Forge a packet that A never committed.
	packet := ibc.Packet{
		Sequence: 9, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", 999999, "alice", "bob"),
		TimeoutHeight: 100000,
	}
	updateClientTo(b, a, "client-a", a.height+1)
	// Use a proof for an unrelated key.
	_, wrongProof := a.prove(a.height+1, ibc.ConnectionKey("conn-a"))
	errs := b.deliver("relayer", ibc.MsgRecvPacket{
		Packet: packet, ProofCommitment: wrongProof, ProofHeight: a.height + 1,
	})
	if errs == nil {
		t.Fatal("forged packet accepted")
	}
	if !strings.Contains(errs[0], "proof") {
		t.Fatalf("error = %q", errs[0])
	}
	if got := b.app.Bank().Balance("bob", transfer.VoucherPrefix("transfer", "channel-0")+"uatom"); got != 0 {
		t.Fatalf("forged mint: %d", got)
	}
}

func TestUpdateClientRejectsForgedHeader(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	linkChains(t, a, b)
	// A header signed by the wrong chain's validators must be rejected.
	forged := b.headerBundle(b.height + 1)
	forged.Header.ChainID = "chain-a"
	errs := b.deliver("relayer", ibc.MsgUpdateClient{ClientID: "client-a", Bundle: forged})
	if errs == nil {
		t.Fatal("forged header accepted")
	}
	// And a header whose AppHash was tampered with fails too (BlockID
	// signature binds the header).
	tampered := a.headerBundle(a.height + 1)
	tampered.Header.AppHash[0] ^= 1
	errs = b.deliver("relayer", ibc.MsgUpdateClient{ClientID: "client-a", Bundle: tampered})
	if errs == nil {
		t.Fatal("tampered header accepted")
	}
}

func TestAckParsing(t *testing.T) {
	ok := ibc.Acknowledgement{Result: []byte("AQ==")}
	parsed, err := ibc.ParseAck(ok.Bytes())
	if err != nil || !parsed.Success() {
		t.Fatalf("parsed = %+v err = %v", parsed, err)
	}
	bad := ibc.Acknowledgement{Error: "insufficient funds"}
	parsed, err = ibc.ParseAck(bad.Bytes())
	if err != nil || parsed.Success() {
		t.Fatalf("error ack parsed = %+v", parsed)
	}
	if _, err := ibc.ParseAck([]byte("not json")); err == nil {
		t.Fatal("garbage ack parsed")
	}
}

func TestPacketCommitmentBinding(t *testing.T) {
	p := ibc.Packet{Sequence: 1, Data: []byte("x"), TimeoutHeight: 5}
	q := p
	q.TimeoutHeight = 6
	if string(p.CommitmentBytes()) == string(q.CommitmentBytes()) {
		t.Fatal("commitment ignores timeout height")
	}
	r := p
	r.Data = []byte("y")
	if string(p.CommitmentBytes()) == string(r.CommitmentBytes()) {
		t.Fatal("commitment ignores data")
	}
}

func TestErrorAckRefunds(t *testing.T) {
	a := newTestChain(t, "chain-a")
	b := newTestChain(t, "chain-b")
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 1000})
	linkChains(t, a, b)
	a.mustDeliver("alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: "bob",
		Token:      app.Coin{Denom: "uatom", Amount: 30},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: a.height + 1000,
	})
	sendHeight := a.height
	packet := ibc.Packet{
		Sequence: 1, SourcePort: "transfer", SourceChannel: "channel-0",
		DestPort: "transfer", DestChannel: "channel-0",
		Data:          mustPacketData(t, "uatom", 30, "alice", "bob"),
		TimeoutHeight: sendHeight - 1 + 1000,
	}
	// Deliver the packet on B so it writes a (here: error) ack. We
	// simulate an app-level error ack by acknowledging with an error on A
	// directly after B received — craft: receive normally, then A
	// processes an error ack (proof checked against B's written ack, so
	// use performance-mode-style direct call instead).
	updateClientTo(b, a, "client-a", sendHeight+1)
	_, proof := a.prove(sendHeight+1, ibc.PacketCommitmentKey("transfer", "channel-0", 1))
	b.mustDeliver("relayer", ibc.MsgRecvPacket{
		Packet: packet, ProofCommitment: proof, ProofHeight: sendHeight + 1,
	})
	recvHeight := b.height
	updateClientTo(a, b, "client-b", recvHeight+1)
	_, ackProof := b.prove(recvHeight+1, ibc.PacketAckKey("transfer", "channel-0", 1))
	// The real ack was a success; verify the keeper rejects a mismatched
	// (error) ack proof, which protects refund correctness.
	errAck := ibc.Acknowledgement{Error: "boom"}
	errs := a.deliver("relayer", ibc.MsgAcknowledgement{
		Packet: packet, Ack: errAck.Bytes(), ProofAcked: ackProof, ProofHeight: recvHeight + 1,
	})
	if errs == nil {
		t.Fatal("mismatched ack accepted")
	}
	if !errors.Is(ibc.ErrProofVerify, ibc.ErrProofVerify) {
		t.Fatal("sanity")
	}
}
