package pfm

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/merkle"
)

// --- manual-relay harness ----------------------------------------------------
//
// A minimal N-chain net without consensus or a scheduler: each chain is an
// app + keeper + transfer + pfm stack in performance mode (no proofs), and
// the test acts as the relayer, delivering MsgRecvPacket / MsgAcknowledgement
// / MsgTimeout transactions by hand. This isolates the middleware's packet
// flow from relayer pipelining (covered by the topo scenario tests).

type testChain struct {
	id     string
	app    *app.App
	keeper *ibc.Keeper
	xfer   *transfer.Module
	mw     *Middleware
	height int64
	links  int
	// clientFor maps this chain's channel -> the light client its packets
	// verify against.
	clientFor map[string]string
}

func newTestChain(id string) *testChain {
	a := app.New(id, false)
	k := ibc.NewKeeper(a)
	x := transfer.New(a, k)
	mw := New(k, x)
	a.CreateAccount("relayer")
	return &testChain{id: id, app: a, keeper: k, xfer: x, mw: mw,
		clientFor: make(map[string]string)}
}

func (c *testChain) ctx() *app.Context {
	return &app.Context{ChainID: c.id, State: c.app.State(), Bank: c.app.Bank(), App: c.app}
}

func set(ctx *app.Context, key string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	ctx.State.Set(key, raw)
}

// link seeds an open client/connection/channel pair between two chains,
// consuming each chain's next free ordinal (mirrors chain.Link).
func link(a, b *testChain) (chanOnA, chanOnB string) {
	ordA, ordB := a.links, b.links
	a.links++
	b.links++
	type side struct {
		host       *testChain
		peer       *testChain
		ord, cpOrd int
	}
	for _, s := range []side{{a, b, ordA, ordB}, {b, a, ordB, ordA}} {
		clientID := fmt.Sprintf("07-tendermint-%d", s.ord)
		connID := fmt.Sprintf("connection-%d", s.ord)
		chanID := fmt.Sprintf("channel-%d", s.ord)
		cpChan := fmt.Sprintf("channel-%d", s.cpOrd)
		ctx := s.host.ctx()
		set(ctx, ibc.ClientStateKey(clientID), ibc.ClientState{ChainID: s.peer.id, LatestHeight: 1})
		set(ctx, ibc.ConnectionKey(connID), ibc.ConnectionEnd{
			State: ibc.StateOpen, ClientID: clientID,
			CounterpartyConnID: fmt.Sprintf("connection-%d", s.cpOrd),
		})
		set(ctx, ibc.ChannelKey(transfer.PortID, chanID), ibc.ChannelEnd{
			State: ibc.StateOpen, Ordering: ibc.Unordered,
			CounterpartyPort: transfer.PortID, CounterpartyChan: cpChan,
			ConnectionID: connID, Version: "ics20-1",
		})
		ctx.State.Set(ibc.NextSequenceSendKey(transfer.PortID, chanID), []byte("1"))
		ctx.State.CommitTx()
		s.host.clientFor[chanID] = clientID
	}
	return fmt.Sprintf("channel-%d", ordA), fmt.Sprintf("channel-%d", ordB)
}

// seedConsensus materializes a counterparty consensus state so proof
// checks (existence-only in performance mode) pass at proofHeight.
func (c *testChain) seedConsensus(channel string, height int64) {
	ctx := c.ctx()
	set(ctx, ibc.ConsensusStateKey(c.clientFor[channel], height),
		ibc.ConsensusState{Root: merkle.Hash{}, Timestamp: time.Duration(height) * time.Second})
	ctx.State.CommitTx()
}

// deliver executes one transaction from signer and commits the block.
func (c *testChain) deliver(t *testing.T, signer string, msgs ...app.Msg) abci.TxResult {
	t.Helper()
	c.height++
	c.app.BeginBlock(c.height, time.Duration(c.height)*5*time.Second)
	seq, err := c.app.AccountSequence(signer)
	if err != nil {
		t.Fatalf("%s: signer %s: %v", c.id, signer, err)
	}
	tx := app.NewTx(signer, seq, uint64(c.height), msgs)
	res := c.app.DeliverTx(tx)
	c.app.Commit()
	return res
}

func (c *testChain) mustDeliver(t *testing.T, signer string, msgs ...app.Msg) abci.TxResult {
	t.Helper()
	res := c.deliver(t, signer, msgs...)
	if !res.IsOK() {
		t.Fatalf("%s: tx failed: %s", c.id, res.Log)
	}
	return res
}

func eventsOf(res abci.TxResult, typ string) []abci.Event {
	var out []abci.Event
	for _, ev := range res.Events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func packetOf(t *testing.T, ev abci.Event) ibc.Packet {
	t.Helper()
	var p ibc.Packet
	if err := json.Unmarshal([]byte(ev.Attributes["packet"]), &p); err != nil {
		t.Fatalf("bad packet attr: %v", err)
	}
	return p
}

// relayRecv delivers a packet to dst, returning the tx result.
func relayRecv(t *testing.T, dst *testChain, p ibc.Packet) abci.TxResult {
	t.Helper()
	proofHeight := int64(2)
	dst.seedConsensus(p.DestChannel, proofHeight)
	return dst.deliver(t, "relayer", ibc.MsgRecvPacket{Packet: p, ProofHeight: proofHeight})
}

// relayAck returns a written acknowledgement to the packet source chain.
func relayAck(t *testing.T, src *testChain, p ibc.Packet, ack []byte) abci.TxResult {
	t.Helper()
	proofHeight := int64(2)
	src.seedConsensus(p.SourceChannel, proofHeight)
	return src.deliver(t, "relayer", ibc.MsgAcknowledgement{Packet: p, Ack: ack, ProofHeight: proofHeight})
}

func bal(c *testChain, account, denom string) uint64 {
	return c.app.Bank().Balance(account, denom)
}

// lineNet builds A - B - C. Channel layout (ordinal per chain):
//
//	A: channel-0 -> B        B: channel-0 -> A, channel-1 -> C
//	C: channel-0 -> B
func lineNet(t *testing.T) (a, b, c *testChain) {
	a, b, c = newTestChain("chain-a"), newTestChain("chain-b"), newTestChain("chain-c")
	link(a, b)
	link(b, c)
	return a, b, c
}

// --- memo --------------------------------------------------------------------

func TestMemoRoundTripAndValidation(t *testing.T) {
	f := &ForwardMetadata{
		Receiver: "carol", Port: "transfer", Channel: "channel-1",
		Next: &ForwardMetadata{Receiver: "dave", Port: "transfer", Channel: "channel-2"},
	}
	memo := Memo(f)
	got, ok, err := ParseMemo(memo)
	if err != nil || !ok {
		t.Fatalf("parse: ok=%v err=%v", ok, err)
	}
	if got.Channel != "channel-1" || got.Next == nil || got.Next.Receiver != "dave" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, ok, err := ParseMemo(""); ok || err != nil {
		t.Fatal("empty memo should pass through")
	}
	if _, ok, err := ParseMemo("just a note"); ok || err != nil {
		t.Fatal("plain memo should pass through")
	}
	if _, ok, err := ParseMemo(`{"forward":{"receiver":"x"}}`); ok || err == nil {
		t.Fatal("forward memo without channel must be rejected")
	}
	if Memo(nil) != "" {
		t.Fatal("nil metadata should serialize to empty memo")
	}
}

// --- voucher-of-a-voucher mint path and unwind -------------------------------

// TestForwardMintPath pins the A -> B -> C flow: one user transfer on A,
// the middleware on B escrows the voucher and emits hop 2 in the same
// block (async ack), C mints the nested trace denom, and the success ack
// propagates B -> A only after C received.
func TestForwardMintPath(t *testing.T) {
	a, b, c := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})

	memo := Memo(&ForwardMetadata{Receiver: "carol", Port: "transfer", Channel: "channel-1"})
	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: "uatom", Amount: 5},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000, Memo: memo, Nonce: 1,
	})
	sends := eventsOf(res, "send_packet")
	if len(sends) != 1 {
		t.Fatalf("send events = %d", len(sends))
	}
	p1 := packetOf(t, sends[0])
	if bal(a, "escrow/transfer/channel-0", "uatom") != 5 {
		t.Fatal("origin escrow not funded")
	}

	// B receives: forwards in the same block, ack held open.
	resB := relayRecv(t, b, p1)
	if !resB.IsOK() {
		t.Fatalf("recv on B failed: %s", resB.Log)
	}
	if n := len(eventsOf(resB, "write_acknowledgement")); n != 0 {
		t.Fatalf("B wrote %d acks; forward must hold the ack open", n)
	}
	hop2 := eventsOf(resB, "send_packet")
	if len(hop2) != 1 {
		t.Fatalf("B emitted %d send_packets, want the forwarded hop", len(hop2))
	}
	p2 := packetOf(t, hop2[0])
	if p2.SourceChannel != "channel-1" {
		t.Fatalf("hop 2 left through %s", p2.SourceChannel)
	}
	voucherB := "transfer/channel-0/uatom"
	if got := bal(b, "escrow/transfer/channel-1", voucherB); got != 5 {
		t.Fatalf("B escrow = %d, want 5", got)
	}
	if got := bal(b, ModuleAccount, voucherB); got != 0 {
		t.Fatalf("forwarder retains %d", got)
	}
	if fs := b.mw.Stats(); fs.Forwarded != 1 {
		t.Fatalf("forwarded = %d", fs.Forwarded)
	}

	// C receives: nested trace denom minted to the final receiver.
	resC := relayRecv(t, c, p2)
	if !resC.IsOK() {
		t.Fatalf("recv on C failed: %s", resC.Log)
	}
	acksC := eventsOf(resC, "write_acknowledgement")
	if len(acksC) != 1 {
		t.Fatalf("C wrote %d acks", len(acksC))
	}
	nested := "transfer/channel-0/transfer/channel-0/uatom"
	if got := bal(c, "carol", nested); got != 5 {
		t.Fatalf("carol nested voucher = %d, want 5", got)
	}
	if got := c.app.Bank().Supply(nested); got != 5 {
		t.Fatalf("C nested supply = %d", got)
	}

	// Ack hop 2 back to B: the middleware releases the origin's ack.
	resAckB := relayAck(t, b, p2, []byte(acksC[0].Attributes["ack"]))
	if !resAckB.IsOK() {
		t.Fatalf("ack on B failed: %s", resAckB.Log)
	}
	acksB := eventsOf(resAckB, "write_acknowledgement")
	if len(acksB) != 1 {
		t.Fatalf("B released %d acks, want the origin's", len(acksB))
	}
	if orig := packetOf(t, acksB[0]); orig.Sequence != p1.Sequence || orig.DestChannel != p1.DestChannel {
		t.Fatalf("B acked the wrong packet: %+v", orig)
	}
	var ack ibc.Acknowledgement
	if err := json.Unmarshal([]byte(acksB[0].Attributes["ack"]), &ack); err != nil || !ack.Success() {
		t.Fatalf("origin ack not success: %s", acksB[0].Attributes["ack"])
	}

	// And the origin settles.
	if res := relayAck(t, a, p1, []byte(acksB[0].Attributes["ack"])); !res.IsOK() {
		t.Fatalf("ack on A failed: %s", res.Log)
	}
	if got := bal(a, "alice", "uatom"); got != 95 {
		t.Fatalf("alice = %d, want 95", got)
	}
	if fs := b.mw.Stats(); fs.Completed != 1 {
		t.Fatalf("completed = %d", fs.Completed)
	}
}

// TestFullUnwindRestoresOrigin runs the complete round trip
// A -> B -> C then C -> B -> A and checks the original denom and all
// supplies are restored on every chain (the voucher-of-a-voucher unwind).
func TestFullUnwindRestoresOrigin(t *testing.T) {
	a, b, c := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})
	c.app.CreateAccount("carol")

	// Outbound: A -> B -> C.
	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: "uatom", Amount: 9},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000,
		Memo:          Memo(&ForwardMetadata{Receiver: "carol", Port: "transfer", Channel: "channel-1"}),
		Nonce:         1,
	})
	p1 := packetOf(t, eventsOf(res, "send_packet")[0])
	resB := relayRecv(t, b, p1)
	p2 := packetOf(t, eventsOf(resB, "send_packet")[0])
	resC := relayRecv(t, c, p2)
	ackC := eventsOf(resC, "write_acknowledgement")[0]
	resAckB := relayAck(t, b, p2, []byte(ackC.Attributes["ack"]))
	ackB := eventsOf(resAckB, "write_acknowledgement")[0]
	relayAck(t, a, p1, []byte(ackB.Attributes["ack"]))

	nested := "transfer/channel-0/transfer/channel-0/uatom"
	voucherB := "transfer/channel-0/uatom"

	// Return: C -> B -> A, unwinding the trace one hop per chain.
	resR := c.mustDeliver(t, "carol", transfer.MsgTransfer{
		Sender: "carol", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: nested, Amount: 9},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000,
		Memo:          Memo(&ForwardMetadata{Receiver: "alice", Port: "transfer", Channel: "channel-0"}),
		Nonce:         2,
	})
	p3 := packetOf(t, eventsOf(resR, "send_packet")[0])
	resB2 := relayRecv(t, b, p3)
	if !resB2.IsOK() {
		t.Fatalf("return recv on B failed: %s", resB2.Log)
	}
	p4 := packetOf(t, eventsOf(resB2, "send_packet")[0])
	if p4.SourceChannel != "channel-0" {
		t.Fatalf("return hop left through %s", p4.SourceChannel)
	}
	resA2 := relayRecv(t, a, p4)
	if !resA2.IsOK() {
		t.Fatalf("return recv on A failed: %s", resA2.Log)
	}
	ackA2 := eventsOf(resA2, "write_acknowledgement")[0]
	resAckB2 := relayAck(t, b, p4, []byte(ackA2.Attributes["ack"]))
	ackB2 := eventsOf(resAckB2, "write_acknowledgement")[0]
	if res := relayAck(t, c, p3, []byte(ackB2.Attributes["ack"])); !res.IsOK() {
		t.Fatalf("final ack on C failed: %s", res.Log)
	}

	// Original denom restored to the original holder...
	if got := bal(a, "alice", "uatom"); got != 100 {
		t.Fatalf("alice = %d, want 100", got)
	}
	// ...every escrow empty...
	for chain, escrows := range map[*testChain][]string{
		a: {"escrow/transfer/channel-0"},
		b: {"escrow/transfer/channel-0", "escrow/transfer/channel-1"},
		c: {"escrow/transfer/channel-0"},
	} {
		for _, esc := range escrows {
			for _, d := range []string{"uatom", voucherB, nested} {
				if got := bal(chain, esc, d); got != 0 {
					t.Fatalf("%s %s holds %d %s", chain.id, esc, got, d)
				}
			}
		}
	}
	// ...and every voucher supply burned back to zero on all three chains.
	for _, chain := range []*testChain{a, b, c} {
		for _, d := range []string{voucherB, nested} {
			if got := chain.app.Bank().Supply(d); got != 0 {
				t.Fatalf("%s supply of %s = %d, want 0", chain.id, d, got)
			}
		}
	}
	if got := a.app.Bank().Supply("uatom"); got != 100 {
		t.Fatalf("native supply = %d", got)
	}
}

// TestForwardTimeoutRefundsOrigin pins the failure unwind: a timeout on
// the last hop refunds the sender on the origin chain with all
// intermediate escrows and supplies restored.
func TestForwardTimeoutRefundsOrigin(t *testing.T) {
	a, b, _ := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})

	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: "uatom", Amount: 7},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000,
		Memo:          Memo(&ForwardMetadata{Receiver: "carol", Port: "transfer", Channel: "channel-1", TimeoutBlocks: 10}),
		Nonce:         1,
	})
	p1 := packetOf(t, eventsOf(res, "send_packet")[0])
	resB := relayRecv(t, b, p1)
	p2 := packetOf(t, eventsOf(resB, "send_packet")[0])
	if p2.TimeoutHeight != 11 { // client height 1 + memo's 10 blocks
		t.Fatalf("hop timeout height = %d", p2.TimeoutHeight)
	}

	// The hop never reaches C; its timeout elapses and a relayer proves
	// non-receipt at a height past the deadline.
	b.seedConsensus("channel-1", p2.TimeoutHeight)
	resT := b.deliver(t, "relayer", ibc.MsgTimeout{Packet: p2, ProofHeight: p2.TimeoutHeight})
	if !resT.IsOK() {
		t.Fatalf("timeout on B failed: %s", resT.Log)
	}
	acks := eventsOf(resT, "write_acknowledgement")
	if len(acks) != 1 {
		t.Fatalf("B wrote %d acks on unwind", len(acks))
	}
	var ack ibc.Acknowledgement
	if err := json.Unmarshal([]byte(acks[0].Attributes["ack"]), &ack); err != nil || ack.Success() {
		t.Fatalf("unwind must write an error ack, got %s", acks[0].Attributes["ack"])
	}
	if fs := b.mw.Stats(); fs.Unwound != 1 {
		t.Fatalf("unwound = %d", fs.Unwound)
	}

	// Intermediate chain fully restored: no voucher supply, empty escrow
	// and forwarding account.
	voucherB := "transfer/channel-0/uatom"
	if got := b.app.Bank().Supply(voucherB); got != 0 {
		t.Fatalf("B voucher supply = %d after unwind", got)
	}
	for _, acct := range []string{ModuleAccount, "escrow/transfer/channel-1"} {
		if got := bal(b, acct, voucherB); got != 0 {
			t.Fatalf("%s holds %d after unwind", acct, got)
		}
	}

	// The error ack reaches the origin: sender refunded, escrow released.
	if res := relayAck(t, a, p1, []byte(acks[0].Attributes["ack"])); !res.IsOK() {
		t.Fatalf("error ack on A failed: %s", res.Log)
	}
	if got := bal(a, "alice", "uatom"); got != 100 {
		t.Fatalf("alice = %d, want 100", got)
	}
	if got := bal(a, "escrow/transfer/channel-0", "uatom"); got != 0 {
		t.Fatalf("origin escrow = %d", got)
	}
	_, _, _, refunded := a.xfer.Stats()
	if refunded != 1 {
		t.Fatalf("origin refunds = %d", refunded)
	}
}

// TestNonForwardPacketsDelegate checks plain transfers behave exactly as
// without the middleware.
func TestNonForwardPacketsDelegate(t *testing.T) {
	a, b, _ := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 50})
	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: "bob",
		Token:      app.Coin{Denom: "uatom", Amount: 3},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000, Nonce: 1,
	})
	p := packetOf(t, eventsOf(res, "send_packet")[0])
	resB := relayRecv(t, b, p)
	if !resB.IsOK() {
		t.Fatalf("recv failed: %s", resB.Log)
	}
	// Synchronous ack, voucher minted straight to the receiver.
	if len(eventsOf(resB, "write_acknowledgement")) != 1 {
		t.Fatal("plain packet must ack synchronously")
	}
	if len(eventsOf(resB, "send_packet")) != 0 {
		t.Fatal("plain packet must not forward")
	}
	if got := bal(b, "bob", "transfer/channel-0/uatom"); got != 3 {
		t.Fatalf("bob voucher = %d", got)
	}
	if fs := b.mw.Stats(); fs.Forwarded != 0 {
		t.Fatalf("forwarded = %d", fs.Forwarded)
	}
}

// TestForwardToBadChannelRefusesBeforeFunds pins the refusal ordering: a
// forward memo naming a missing (or unopened) channel must produce an
// error ack BEFORE any fund movement, leaving the intermediate chain
// untouched and refunding the origin sender.
func TestForwardToBadChannelRefusesBeforeFunds(t *testing.T) {
	a, b, _ := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})

	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: "uatom", Amount: 4},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000,
		Memo:          Memo(&ForwardMetadata{Receiver: "x", Port: "transfer", Channel: "channel-9"}),
		Nonce:         1,
	})
	p1 := packetOf(t, eventsOf(res, "send_packet")[0])
	resB := relayRecv(t, b, p1)
	if !resB.IsOK() {
		t.Fatalf("recv tx failed outright: %s", resB.Log)
	}
	acks := eventsOf(resB, "write_acknowledgement")
	if len(acks) != 1 {
		t.Fatalf("B wrote %d acks, want one error ack", len(acks))
	}
	var ack ibc.Acknowledgement
	if err := json.Unmarshal([]byte(acks[0].Attributes["ack"]), &ack); err != nil || ack.Success() {
		t.Fatalf("want error ack, got %s", acks[0].Attributes["ack"])
	}
	// Nothing moved on B: no mint, no escrow, no forwarder balance.
	voucher := "transfer/channel-0/uatom"
	if got := b.app.Bank().Supply(voucher); got != 0 {
		t.Fatalf("B minted %d before refusing", got)
	}
	if got := bal(b, ModuleAccount, voucher); got != 0 {
		t.Fatalf("forwarder holds %d", got)
	}
	// Origin refunds on the error ack.
	if res := relayAck(t, a, p1, []byte(acks[0].Attributes["ack"])); !res.IsOK() {
		t.Fatalf("error ack on A failed: %s", res.Log)
	}
	if got := bal(a, "alice", "uatom"); got != 100 {
		t.Fatalf("alice = %d, want 100", got)
	}
}

// TestUndecodableForwardMemoRefused: a memo with forward intent but
// broken JSON must be refused, not delivered as a plain transfer to the
// intermediate chain's receiver field.
func TestUndecodableForwardMemoRefused(t *testing.T) {
	if _, ok, err := ParseMemo(`{"forward":{"receiver":"carol","port":"transfer"`); ok || err == nil {
		t.Fatal("truncated forward memo must be rejected")
	}

	a, b, _ := lineNet(t)
	a.app.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})
	res := a.mustDeliver(t, "alice", transfer.MsgTransfer{
		Sender: "alice", Receiver: ModuleAccount,
		Token:      app.Coin{Denom: "uatom", Amount: 2},
		SourcePort: "transfer", SourceChannel: "channel-0",
		TimeoutHeight: 1000,
		Memo:          `{"forward":{"receiver":"carol"`,
		Nonce:         1,
	})
	p1 := packetOf(t, eventsOf(res, "send_packet")[0])
	resB := relayRecv(t, b, p1)
	acks := eventsOf(resB, "write_acknowledgement")
	if len(acks) != 1 {
		t.Fatalf("B wrote %d acks", len(acks))
	}
	var ack ibc.Acknowledgement
	if err := json.Unmarshal([]byte(acks[0].Attributes["ack"]), &ack); err != nil || ack.Success() {
		t.Fatalf("want error ack for undecodable forward memo, got %s", acks[0].Attributes["ack"])
	}
	// The intermediate receiver got nothing.
	if got := bal(b, ModuleAccount, "transfer/channel-0/uatom"); got != 0 {
		t.Fatalf("funds delivered despite refusal: %d", got)
	}
}
