// Package pfm implements packet-forward middleware (PFM): an ICS-26
// middleware wrapped around the ICS-20 transfer module that turns a
// {"forward":...} packet memo into an atomic multi-hop route. On
// OnRecvPacket it executes the local receive leg to a module-owned
// forwarding account per denom-trace rules, emits the next hop's
// send_packet in the same block, and holds the origin's acknowledgement
// open (async ack) until the downstream hop settles. Acks and timeouts
// propagate backward: a failed hop refunds the forwarding account,
// reverses the local receive (re-escrow or burn), and writes an error
// acknowledgement for the original packet so every upstream chain
// unwinds in turn — the origin sender ends up refunded with all
// intermediate escrows and supplies restored.
//
// This is the native alternative to chaining user-driven sequential
// transfers (topo's default route mode): one user transaction per route,
// with relayer pipelining across hops instead of a full settle-then-
// resubmit cycle per leg.
package pfm

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/transfer"
)

// ModuleAccount holds in-flight forwarded funds on the intermediate
// chain between the receive leg and the next hop's settlement.
const ModuleAccount = "pfm-forwarder"

// DefaultTimeoutBlocks is the next-hop timeout margin, in destination
// blocks past the forwarding chain's light-client view of the
// destination.
const DefaultTimeoutBlocks = 120

// Middleware errors.
var (
	ErrBadForwardMemo = errors.New("pfm: malformed forward memo")
)

// ForwardMetadata is the memo payload directing one forward hop.
// Nested Next entries express routes of arbitrary depth.
type ForwardMetadata struct {
	// Receiver is the recipient on the next chain (the final recipient on
	// the last hop; intermediate hops with their own Next are overridden
	// by the middleware's forwarding account there).
	Receiver string `json:"receiver"`
	// Port/Channel address the outgoing channel on the forwarding chain.
	Port    string `json:"port"`
	Channel string `json:"channel"`
	// TimeoutBlocks overrides DefaultTimeoutBlocks for this hop (0 =
	// default).
	TimeoutBlocks int64 `json:"timeout_blocks,omitempty"`
	// Next carries the remaining hops.
	Next *ForwardMetadata `json:"next,omitempty"`
}

// memoWrapper is the on-the-wire memo shape: {"forward": {...}}.
type memoWrapper struct {
	Forward *ForwardMetadata `json:"forward"`
}

// Memo serializes forward metadata into a packet memo string.
func Memo(f *ForwardMetadata) string {
	if f == nil {
		return ""
	}
	raw, err := json.Marshal(memoWrapper{Forward: f})
	if err != nil {
		return ""
	}
	return string(raw)
}

// ParseMemo extracts forward metadata from a memo ("" or non-forward
// memos return ok=false; a memo with forward intent that fails to decode
// returns an error so the packet can be refused rather than silently
// delivered to the intermediate chain).
func ParseMemo(memo string) (*ForwardMetadata, bool, error) {
	if memo == "" {
		return nil, false, nil
	}
	var w memoWrapper
	if err := json.Unmarshal([]byte(memo), &w); err != nil {
		if strings.Contains(memo, `"forward"`) {
			// Undecodable but clearly meant to forward: refuse it.
			return nil, false, fmt.Errorf("%w: %q", ErrBadForwardMemo, memo)
		}
		// Plain free-form memos pass through untouched.
		return nil, false, nil
	}
	if w.Forward == nil {
		return nil, false, nil
	}
	f := w.Forward
	if f.Port == "" || f.Channel == "" || f.Receiver == "" {
		return nil, false, fmt.Errorf("%w: %q", ErrBadForwardMemo, memo)
	}
	return f, true, nil
}

// inFlight is the state-backed record of one forwarded packet, keyed by
// the OUTGOING hop's (port, channel, sequence). It carries everything the
// backward propagation needs: the original packet whose ack is held
// open, and how the local receive leg moved funds.
type inFlight struct {
	Original ibc.Packet `json:"original"`
	// Coin was credited to ModuleAccount by the receive leg.
	Coin app.Coin `json:"coin"`
	// Unescrowed records whether the receive leg released escrow (true)
	// or minted a voucher (false).
	Unescrowed bool `json:"unescrowed"`
}

func inFlightKey(port, channel string, seq uint64) string {
	return fmt.Sprintf("pfm/inflight/ports/%s/channels/%s/sequences/%d", port, channel, seq)
}

// Stats counts middleware outcomes.
type Stats struct {
	// Forwarded counts packets sent onward on receive.
	Forwarded uint64
	// Completed counts forwarded packets whose downstream hop acked
	// successfully.
	Completed uint64
	// Unwound counts forwarded packets refunded after a downstream error
	// ack or timeout.
	Unwound uint64
}

// hopRef identifies a packet on one side of this chain.
type hopRef struct {
	channel string
	seq     uint64
}

// Middleware wraps the transfer module on the ICS-20 port.
type Middleware struct {
	keeper *ibc.Keeper
	inner  *transfer.Module

	// TimeoutBlocks is the default next-hop timeout margin.
	TimeoutBlocks int64

	stats Stats

	// hops maps an inbound packet (dest channel, sequence) to the
	// outbound hop it spawned — reporting metadata for per-hop latency
	// attribution, not consensus state.
	hops map[hopRef]hopRef
}

var _ ibc.PortModule = (*Middleware)(nil)

// New stacks the middleware over the transfer module, rebinding the
// ICS-20 port so all packet callbacks flow through it first.
func New(k *ibc.Keeper, inner *transfer.Module) *Middleware {
	mw := &Middleware{
		keeper:        k,
		inner:         inner,
		TimeoutBlocks: DefaultTimeoutBlocks,
		hops:          make(map[hopRef]hopRef),
	}
	k.BindPort(transfer.PortID, mw)
	return mw
}

// Stats reports middleware outcome counters.
func (mw *Middleware) Stats() Stats { return mw.stats }

// NextHop resolves the outbound (channel, sequence) an inbound packet
// (identified by its destination channel and sequence on this chain) was
// forwarded on. Reporting only.
func (mw *Middleware) NextHop(destChannel string, seq uint64) (string, uint64, bool) {
	out, ok := mw.hops[hopRef{destChannel, seq}]
	return out.channel, out.seq, ok
}

// OnRecvPacket implements ibc.PortModule. Packets without a forward memo
// delegate straight to the transfer module; forward packets execute the
// local receive to the forwarding account, emit the next hop and answer
// asynchronously.
func (mw *Middleware) OnRecvPacket(ctx *app.Context, p ibc.Packet) *ibc.Acknowledgement {
	var data transfer.PacketData
	if err := json.Unmarshal(p.Data, &data); err != nil {
		return mw.inner.OnRecvPacket(ctx, p) // inner owns the error ack
	}
	fwd, ok, err := ParseMemo(data.Memo)
	if err != nil {
		return &ibc.Acknowledgement{Error: err.Error()}
	}
	if !ok {
		return mw.inner.OnRecvPacket(ctx, p)
	}

	// Validate the outgoing channel before moving any funds: an error ack
	// still commits the transaction, so every refusal must happen while
	// the bank state is untouched (a half-done receive leg would strand
	// the funds in the hop escrow with the origin refunded).
	ch, err := mw.keeper.Channel(ctx, fwd.Port, fwd.Channel)
	if err != nil {
		return &ibc.Acknowledgement{Error: fmt.Sprintf("pfm: forward channel: %v", err)}
	}
	if ch.State != ibc.StateOpen {
		return &ibc.Acknowledgement{Error: fmt.Sprintf("pfm: forward channel %s/%s not open", fwd.Port, fwd.Channel)}
	}
	// Resolve the client height the hop timeout is anchored to.
	clientHeight, err := mw.keeper.LatestClientHeight(ctx, fwd.Port, fwd.Channel)
	if err != nil {
		return &ibc.Acknowledgement{Error: fmt.Sprintf("pfm: forward client: %v", err)}
	}

	coin, unescrowed, err := mw.inner.ReceiveFunds(ctx, p, data, ModuleAccount)
	if err != nil {
		return &ibc.Acknowledgement{Error: err.Error()}
	}

	timeoutBlocks := fwd.TimeoutBlocks
	if timeoutBlocks <= 0 {
		timeoutBlocks = mw.TimeoutBlocks
	}
	next, events, err := mw.inner.SendTransfer(ctx, transfer.MsgTransfer{
		Sender:        ModuleAccount,
		Receiver:      fwd.Receiver,
		Token:         coin,
		SourcePort:    fwd.Port,
		SourceChannel: fwd.Channel,
		TimeoutHeight: clientHeight + timeoutBlocks,
		Memo:          Memo(fwd.Next),
		Nonce:         p.Sequence,
	})
	if err != nil {
		// Could not emit the hop: put the receive leg back and refuse the
		// packet so the origin refunds immediately.
		if uerr := mw.inner.UndoReceive(ctx, p, coin, unescrowed, ModuleAccount); uerr != nil {
			return &ibc.Acknowledgement{Error: fmt.Sprintf("pfm: forward failed (%v) and undo failed (%v)", err, uerr)}
		}
		return &ibc.Acknowledgement{Error: fmt.Sprintf("pfm: forward failed: %v", err)}
	}
	ctx.Emit(events...)

	rec := inFlight{Original: p, Coin: coin, Unescrowed: unescrowed}
	raw, _ := json.Marshal(rec)
	ctx.State.Set(inFlightKey(fwd.Port, fwd.Channel, next.Sequence), raw)
	mw.hops[hopRef{p.DestChannel, p.Sequence}] = hopRef{next.SourceChannel, next.Sequence}
	mw.stats.Forwarded++
	// Hold the origin's ack open until the next hop settles.
	return nil
}

// takeInFlight pops the forwarding record of an outgoing packet, if any.
func (mw *Middleware) takeInFlight(ctx *app.Context, p ibc.Packet) (inFlight, bool) {
	key := inFlightKey(p.SourcePort, p.SourceChannel, p.Sequence)
	raw, ok := ctx.State.Get(key)
	if !ok {
		return inFlight{}, false
	}
	var rec inFlight
	if err := json.Unmarshal(raw, &rec); err != nil {
		return inFlight{}, false
	}
	ctx.State.Delete(key)
	return rec, true
}

// OnAcknowledgementPacket implements ibc.PortModule: forwarded hops
// propagate the result backward; everything else delegates.
func (mw *Middleware) OnAcknowledgementPacket(ctx *app.Context, p ibc.Packet, ack ibc.Acknowledgement) error {
	rec, forwarded := mw.takeInFlight(ctx, p)
	if !forwarded {
		return mw.inner.OnAcknowledgementPacket(ctx, p, ack)
	}
	if ack.Success() {
		mw.stats.Completed++
		// The hop settled: release the origin's held ack as success.
		return mw.keeper.WriteAcknowledgement(ctx, rec.Original, ibc.Acknowledgement{Result: []byte("AQ==")})
	}
	return mw.unwind(ctx, p, rec, "pfm: forward rejected: "+ack.Error)
}

// OnTimeoutPacket implements ibc.PortModule: a timed-out forwarded hop
// unwinds; everything else delegates.
func (mw *Middleware) OnTimeoutPacket(ctx *app.Context, p ibc.Packet) error {
	rec, forwarded := mw.takeInFlight(ctx, p)
	if !forwarded {
		return mw.inner.OnTimeoutPacket(ctx, p)
	}
	return mw.unwind(ctx, p, rec, "pfm: forward timeout")
}

// unwind reverses a failed forwarded hop: refund the hop send to the
// forwarding account, reverse the original receive leg, and write an
// error acknowledgement for the original packet so the upstream chain
// (possibly another PFM instance) continues the unwind.
func (mw *Middleware) unwind(ctx *app.Context, hop ibc.Packet, rec inFlight, reason string) error {
	if err := mw.inner.RefundPacket(ctx, hop); err != nil {
		return fmt.Errorf("pfm: unwind refund: %w", err)
	}
	if err := mw.inner.UndoReceive(ctx, rec.Original, rec.Coin, rec.Unescrowed, ModuleAccount); err != nil {
		return fmt.Errorf("pfm: unwind receive reversal: %w", err)
	}
	mw.stats.Unwound++
	return mw.keeper.WriteAcknowledgement(ctx, rec.Original, ibc.Acknowledgement{Error: reason})
}
