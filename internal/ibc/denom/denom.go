// Package denom implements the ICS-20 denomination-trace engine: parsing
// and manipulating full trace paths of the form
//
//	port/channel[/port/channel...]/base
//
// A token leaving its native zone gains one (port, channel) hop per
// chain it crosses, outermost hop first — the "voucher of a voucher"
// model real multi-hop Cosmos transfers produce. The prefix/unwind rules
// here decide escrow vs mint/burn on every hop (ICS-20 §"source zone"),
// replacing the single-hop string-prefix checks the transfer module
// started with.
package denom

import (
	"strconv"
	"strings"
)

// Hop is one (port, channel) element of a trace path. Hop order is
// outermost-first: Hops[0] is the channel the token most recently
// crossed, on the chain currently holding it.
type Hop struct {
	Port    string
	Channel string
}

// String renders the hop as "port/channel".
func (h Hop) String() string { return h.Port + "/" + h.Channel }

// Trace is a parsed denomination: the hop path plus the base denom.
type Trace struct {
	Hops []Hop
	Base string
}

// isChannelID reports whether s is a channel identifier ("channel-<n>"),
// the boundary marker the parser uses to split hops from the base denom
// (the base itself may contain slashes).
func isChannelID(s string) bool {
	rest, ok := strings.CutPrefix(s, "channel-")
	if !ok || rest == "" {
		return false
	}
	_, err := strconv.ParseUint(rest, 10, 64)
	return err == nil
}

// Parse splits a full denomination into its trace. Pairs of path
// elements are consumed as (port, channel) hops while the second element
// is a valid channel identifier; everything after the last hop is the
// base denom. A denom with no hops parses as a native token.
func Parse(denom string) Trace {
	parts := strings.Split(denom, "/")
	var hops []Hop
	i := 0
	// A hop is consumed only while a non-empty base remains after it.
	for i+2 < len(parts) && parts[i] != "" && isChannelID(parts[i+1]) {
		hops = append(hops, Hop{Port: parts[i], Channel: parts[i+1]})
		i += 2
	}
	return Trace{Hops: hops, Base: strings.Join(parts[i:], "/")}
}

// String reassembles the full denomination.
func (t Trace) String() string {
	if len(t.Hops) == 0 {
		return t.Base
	}
	var sb strings.Builder
	for _, h := range t.Hops {
		sb.WriteString(h.Port)
		sb.WriteByte('/')
		sb.WriteString(h.Channel)
		sb.WriteByte('/')
	}
	sb.WriteString(t.Base)
	return sb.String()
}

// IsNative reports whether the token sits in its origin zone (no hops).
func (t Trace) IsNative() bool { return len(t.Hops) == 0 }

// Depth is the number of hops in the trace (0 = native).
func (t Trace) Depth() int { return len(t.Hops) }

// HasPrefix reports whether the trace's outermost hop is (port, channel)
// — i.e. the token entered the current chain through that channel.
func (t Trace) HasPrefix(port, channel string) bool {
	return len(t.Hops) > 0 && t.Hops[0].Port == port && t.Hops[0].Channel == channel
}

// AddPrefix returns the trace with one more outermost hop, the receiving
// chain's view of an incoming token that is moving away from its source.
func (t Trace) AddPrefix(port, channel string) Trace {
	hops := make([]Hop, 0, len(t.Hops)+1)
	hops = append(hops, Hop{Port: port, Channel: channel})
	hops = append(hops, t.Hops...)
	return Trace{Hops: hops, Base: t.Base}
}

// TrimPrefix returns the trace with the outermost hop removed, the
// receiving chain's view of a token returning toward its source. Calling
// it on a native trace returns the trace unchanged.
func (t Trace) TrimPrefix() Trace {
	if len(t.Hops) == 0 {
		return t
	}
	return Trace{Hops: t.Hops[1:], Base: t.Base}
}

// ReceiverChainIsSource reports whether a packet is returning a token to
// the zone it last came from: the denom carried in the packet data is
// prefixed by the packet's *source* port and channel, meaning the
// counterparty minted it as a voucher of this channel and the receiving
// chain holds the escrowed original (ICS-20 unwind rule).
func ReceiverChainIsSource(sourcePort, sourceChannel, packetDenom string) bool {
	return Parse(packetDenom).HasPrefix(sourcePort, sourceChannel)
}

// SenderChainIsSource reports whether the sending chain is the source
// zone for the token relative to the outgoing channel: the denom is NOT
// a voucher of that channel, so the sender escrows (and the receiver
// mints) rather than burning a returning voucher.
func SenderChainIsSource(sourcePort, sourceChannel, packetDenom string) bool {
	return !ReceiverChainIsSource(sourcePort, sourceChannel, packetDenom)
}
