package denom

import "testing"

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		denom string
		hops  int
		base  string
	}{
		{"uatom", 0, "uatom"},
		{"transfer/channel-0/uatom", 1, "uatom"},
		{"transfer/channel-0/transfer/channel-1/uatom", 2, "uatom"},
		{"transfer/channel-10/transfer/channel-0/stake", 2, "stake"},
		// Base denoms containing slashes stay intact past the hop scan.
		{"transfer/channel-3/gamm/pool/1", 1, "gamm/pool/1"},
		// Not a channel identifier: the whole string is the base.
		{"transfer/channelx/uatom", 0, "transfer/channelx/uatom"},
		{"transfer/channel-/uatom", 0, "transfer/channel-/uatom"},
	}
	for _, c := range cases {
		tr := Parse(c.denom)
		if tr.Depth() != c.hops || tr.Base != c.base {
			t.Fatalf("Parse(%q) = %d hops, base %q; want %d, %q",
				c.denom, tr.Depth(), tr.Base, c.hops, c.base)
		}
		if tr.String() != c.denom {
			t.Fatalf("round trip %q -> %q", c.denom, tr.String())
		}
	}
}

func TestPrefixRules(t *testing.T) {
	tr := Parse("transfer/channel-1/uatom")
	if !tr.HasPrefix("transfer", "channel-1") {
		t.Fatal("outermost hop not detected")
	}
	// channel-1 vs channel-10 must not alias.
	if tr.HasPrefix("transfer", "channel-10") {
		t.Fatal("channel-10 aliases channel-1")
	}
	if Parse("transfer/channel-10/uatom").HasPrefix("transfer", "channel-1") {
		t.Fatal("channel-1 aliases channel-10")
	}

	nested := tr.AddPrefix("transfer", "channel-7")
	if nested.String() != "transfer/channel-7/transfer/channel-1/uatom" {
		t.Fatalf("nested = %q", nested.String())
	}
	if nested.Depth() != 2 || nested.IsNative() {
		t.Fatalf("nested depth = %d", nested.Depth())
	}
	back := nested.TrimPrefix()
	if back.String() != tr.String() {
		t.Fatalf("trim = %q, want %q", back.String(), tr.String())
	}
	if native := back.TrimPrefix().TrimPrefix(); native.String() != "uatom" {
		t.Fatalf("full unwind = %q", native.String())
	}
}

func TestSourceZoneDetection(t *testing.T) {
	// Native token leaving home: sender is the source.
	if !SenderChainIsSource("transfer", "channel-0", "uatom") {
		t.Fatal("native token should be sender-sourced")
	}
	// Voucher going back out through the channel it came in on: receiver
	// (counterparty) is the source, the sender burns.
	if SenderChainIsSource("transfer", "channel-0", "transfer/channel-0/uatom") {
		t.Fatal("returning voucher should not be sender-sourced")
	}
	if !ReceiverChainIsSource("transfer", "channel-0", "transfer/channel-0/uatom") {
		t.Fatal("returning voucher should be receiver-sourced")
	}
	// Voucher leaving through a DIFFERENT channel moves further from its
	// source: the sender escrows it like a native token (the nesting case).
	if !SenderChainIsSource("transfer", "channel-1", "transfer/channel-0/uatom") {
		t.Fatal("voucher crossing a new channel should be sender-sourced")
	}
}
