// Package ibc implements the core Inter-Blockchain Communication
// protocol (§II-B of the paper): light clients tracking counterparty
// consensus, the connection and channel handshakes, and the packet
// lifecycle — send commitments, receipts, acknowledgements and timeouts —
// with merkle proof verification against counterparty state roots.
package ibc

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"ibcbench/internal/merkle"
)

// State machine phases for connections and channels.
type HandshakeState byte

// Handshake states (INIT/TRYOPEN/OPEN as in ICS-3 / ICS-4).
const (
	StateInit HandshakeState = iota + 1
	StateTryOpen
	StateOpen
)

// Order is the channel ordering mode.
type Order byte

// Channel orderings: the paper's experiments use an unordered channel.
const (
	Unordered Order = iota + 1
	Ordered
)

// Packet is an IBC packet (ICS-4).
type Packet struct {
	Sequence         uint64        `json:"sequence"`
	SourcePort       string        `json:"source_port"`
	SourceChannel    string        `json:"source_channel"`
	DestPort         string        `json:"dest_port"`
	DestChannel      string        `json:"dest_channel"`
	Data             []byte        `json:"data"`
	TimeoutHeight    int64         `json:"timeout_height,omitempty"`
	TimeoutTimestamp time.Duration `json:"timeout_timestamp,omitempty"`
}

// CommitmentBytes is the value stored under the packet commitment key:
// a digest of the packet data and timeouts.
func (p *Packet) CommitmentBytes() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%d/%d/", p.TimeoutHeight, p.TimeoutTimestamp)
	h.Write(p.Data)
	return h.Sum(nil)
}

// Key paths in the application state (ICS-24 host requirements).
func ClientStateKey(clientID string) string {
	return "clients/" + clientID + "/clientState"
}

func ConsensusStateKey(clientID string, height int64) string {
	return fmt.Sprintf("clients/%s/consensusStates/%d", clientID, height)
}

func ConnectionKey(connID string) string {
	return "connections/" + connID
}

func ChannelKey(port, channel string) string {
	return "channelEnds/ports/" + port + "/channels/" + channel
}

func NextSequenceSendKey(port, channel string) string {
	return "nextSequenceSend/ports/" + port + "/channels/" + channel
}

func PacketCommitmentKey(port, channel string, seq uint64) string {
	return fmt.Sprintf("commitments/ports/%s/channels/%s/sequences/%d", port, channel, seq)
}

func PacketReceiptKey(port, channel string, seq uint64) string {
	return fmt.Sprintf("receipts/ports/%s/channels/%s/sequences/%d", port, channel, seq)
}

func PacketAckKey(port, channel string, seq uint64) string {
	return fmt.Sprintf("acks/ports/%s/channels/%s/sequences/%d", port, channel, seq)
}

// ValidatorRecord pins one counterparty validator in a client state.
type ValidatorRecord struct {
	PubKey []byte `json:"pub_key"`
	Power  int64  `json:"power"`
}

// ClientState is the stored light-client state for a counterparty chain.
type ClientState struct {
	ChainID      string            `json:"chain_id"`
	LatestHeight int64             `json:"latest_height"`
	Validators   []ValidatorRecord `json:"validators"`
}

// ConsensusState is the verified counterparty state at one height: the
// app root proofs are checked against, and the block timestamp used for
// timeout checks.
type ConsensusState struct {
	Root      merkle.Hash   `json:"root"`
	Timestamp time.Duration `json:"timestamp"`
}

// ConnectionEnd is the stored connection state (ICS-3).
type ConnectionEnd struct {
	State                HandshakeState `json:"state"`
	ClientID             string         `json:"client_id"`
	CounterpartyConnID   string         `json:"counterparty_conn_id"`
	CounterpartyClientID string         `json:"counterparty_client_id"`
}

// ChannelEnd is the stored channel state (ICS-4).
type ChannelEnd struct {
	State            HandshakeState `json:"state"`
	Ordering         Order          `json:"ordering"`
	CounterpartyPort string         `json:"counterparty_port"`
	CounterpartyChan string         `json:"counterparty_chan"`
	ConnectionID     string         `json:"connection_id"`
	Version          string         `json:"version"`
}

// Acknowledgement is the ICS-20-style result/error acknowledgement.
type Acknowledgement struct {
	Result []byte `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Success reports whether the acknowledgement is a success ack.
func (a Acknowledgement) Success() bool { return a.Error == "" }

// Bytes serializes the acknowledgement.
func (a Acknowledgement) Bytes() []byte {
	b, err := json.Marshal(a)
	if err != nil {
		return []byte(`{"error":"marshal"}`)
	}
	return b
}

// ParseAck deserializes an acknowledgement.
func ParseAck(raw []byte) (Acknowledgement, error) {
	var a Acknowledgement
	if err := json.Unmarshal(raw, &a); err != nil {
		return a, fmt.Errorf("ibc: parse ack: %w", err)
	}
	return a, nil
}

// Proof carries a membership or non-membership proof for a state key on
// the counterparty, verified against a consensus state root. In
// performance mode (full proofs disabled) both fields are nil and
// verification is skipped — the virtual-time cost of proof handling is
// still modeled by the relayer's data-pull and build steps.
type Proof struct {
	Membership    *merkle.MembershipProof
	NonMembership *merkle.NonMembershipProof
}
