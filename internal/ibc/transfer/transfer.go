// Package transfer implements ICS-20 fungible token transfer: escrow and
// voucher minting with denomination traces, the application the paper's
// workloads exercise (every benchmark transaction carries 100
// MsgTransfer messages).
//
// Tokens sent through different channels receive different trace-prefixed
// denominations and are therefore not fungible with each other — the
// downside the paper notes for scaling throughput with per-relayer
// channels (§IV-A). Escrow/mint/burn decisions follow full ICS-20 trace
// semantics (internal/ibc/denom), so multi-hop vouchers nest and unwind
// correctly instead of being treated as opaque single-hop prefixes.
package transfer

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/denom"
	"ibcbench/internal/simconf"
)

// PortID is the standard ICS-20 port.
const PortID = "transfer"

// Module errors.
var (
	ErrBadPacketData = errors.New("transfer: malformed packet data")
)

// MsgTransfer requests a cross-chain fungible token transfer (the paper's
// workload message).
type MsgTransfer struct {
	Sender        string
	Receiver      string
	Token         app.Coin
	SourcePort    string
	SourceChannel string
	// TimeoutHeight is the destination height after which the packet can
	// no longer be received (0 = no height timeout).
	TimeoutHeight int64
	// TimeoutTimestamp is the destination block-time deadline.
	TimeoutTimestamp time.Duration
	// Memo is the free-form packet memo; the packet-forward middleware
	// interprets a {"forward":...} payload (see internal/ibc/pfm).
	Memo string
	// Nonce disambiguates otherwise-identical transfers in a batch.
	Nonce uint64
}

// Route implements app.Msg.
func (MsgTransfer) Route() string { return PortID }

// MsgType implements app.Msg.
func (MsgTransfer) MsgType() string { return "MsgTransfer" }

// WireSize implements app.Msg.
func (m MsgTransfer) WireSize() int { return simconf.MsgTransferBytes + len(m.Memo) }

// Digest binds the transfer's content into the enclosing tx hash. The
// memo contributes only when present, keeping memo-less digests (and the
// fingerprints pinned on them) unchanged.
func (m MsgTransfer) Digest() []byte {
	d := fmt.Sprintf("xfer/%s/%s/%s/%s/%d",
		m.Sender, m.Receiver, m.Token, m.SourceChannel, m.Nonce)
	if m.Memo != "" {
		d += "/" + m.Memo
	}
	return []byte(d)
}

// PacketData is the ICS-20 packet payload.
type PacketData struct {
	Denom    string `json:"denom"`
	Amount   uint64 `json:"amount"`
	Sender   string `json:"sender"`
	Receiver string `json:"receiver"`
	Memo     string `json:"memo,omitempty"`
}

// Module is the ICS-20 application module for one chain.
type Module struct {
	keeper *ibc.Keeper

	// Counters for analysis.
	sent     uint64
	received uint64
	acked    uint64
	refunded uint64
}

var _ ibc.PortModule = (*Module)(nil)

// New wires the transfer module into an app and its IBC keeper.
func New(a *app.App, k *ibc.Keeper) *Module {
	m := &Module{keeper: k}
	k.BindPort(PortID, m)
	a.RegisterRoute(PortID, m.handleMsg)
	return m
}

// Keeper exposes the IBC keeper the module sends packets through.
func (m *Module) Keeper() *ibc.Keeper { return m.keeper }

// Stats reports (sent, received, acked, refunded) packet counts.
func (m *Module) Stats() (sent, received, acked, refunded uint64) {
	return m.sent, m.received, m.acked, m.refunded
}

// EscrowAccount names the module account holding escrowed tokens for a
// channel.
func EscrowAccount(port, channel string) string {
	return "escrow/" + port + "/" + channel
}

// VoucherPrefix is the denom trace prefix added on the receiving chain.
func VoucherPrefix(port, channel string) string {
	return port + "/" + channel + "/"
}

// handleMsg executes MsgTransfer.
func (m *Module) handleMsg(ctx *app.Context, msg app.Msg) (*app.Result, error) {
	mt, ok := msg.(MsgTransfer)
	if !ok {
		return nil, fmt.Errorf("transfer: unexpected msg %T", msg)
	}
	res := &app.Result{GasUsed: app.MsgGas(mt.MsgType())}
	_, ev, err := m.SendTransfer(ctx, mt)
	if err != nil {
		return res, err
	}
	res.Events = ev
	return res, nil
}

// SendTransfer escrows or burns the token per trace rules and emits the
// packet. Exported so middleware (packet forwarding) can originate the
// next hop of a multi-hop route inside the receiving transaction.
func (m *Module) SendTransfer(ctx *app.Context, mt MsgTransfer) (ibc.Packet, []abci.Event, error) {
	if denom.SenderChainIsSource(mt.SourcePort, mt.SourceChannel, mt.Token.Denom) {
		// This chain is the token's source zone relative to the outgoing
		// channel: lock in the channel escrow.
		escrow := EscrowAccount(mt.SourcePort, mt.SourceChannel)
		if err := ctx.Bank.Send(mt.Sender, escrow, mt.Token); err != nil {
			return ibc.Packet{}, nil, err
		}
	} else {
		// Voucher returning toward its origin: burn here, unescrow there.
		if err := ctx.Bank.Burn(mt.Sender, mt.Token); err != nil {
			return ibc.Packet{}, nil, err
		}
	}
	data, err := json.Marshal(PacketData{
		Denom:    mt.Token.Denom,
		Amount:   mt.Token.Amount,
		Sender:   mt.Sender,
		Receiver: mt.Receiver,
		Memo:     mt.Memo,
	})
	if err != nil {
		return ibc.Packet{}, nil, err
	}
	p, events, err := m.keeper.SendPacket(ctx, mt.SourcePort, mt.SourceChannel,
		data, mt.TimeoutHeight, mt.TimeoutTimestamp)
	if err != nil {
		return ibc.Packet{}, nil, err
	}
	m.sent++
	return p, events, nil
}

// ReceiveFunds executes the fund-movement half of packet receipt,
// crediting `receiver` with the locally valid coin: trim-and-unescrow
// when the token is returning to this zone, prefix-and-mint otherwise.
// It reports the credited coin and whether the unescrow path ran (the
// information an unwinding middleware needs to reverse it).
func (m *Module) ReceiveFunds(ctx *app.Context, p ibc.Packet, data PacketData, receiver string) (app.Coin, bool, error) {
	tr := denom.Parse(data.Denom)
	if tr.HasPrefix(p.SourcePort, p.SourceChannel) {
		// Token is returning home: release from this chain's escrow.
		coin := app.Coin{Denom: tr.TrimPrefix().String(), Amount: data.Amount}
		escrow := EscrowAccount(p.DestPort, p.DestChannel)
		if err := ctx.Bank.Send(escrow, receiver, coin); err != nil {
			return app.Coin{}, false, err
		}
		return coin, true, nil
	}
	// Mint a voucher with this channel's trace prefix.
	coin := app.Coin{Denom: tr.AddPrefix(p.DestPort, p.DestChannel).String(), Amount: data.Amount}
	ctx.Bank.Mint(receiver, coin)
	return coin, false, nil
}

// UndoReceive reverses a ReceiveFunds: re-escrow an unescrowed coin or
// burn a minted voucher held by `holder`. Used by forwarding middleware
// when a downstream hop fails after the local receive leg ran.
func (m *Module) UndoReceive(ctx *app.Context, p ibc.Packet, coin app.Coin, unescrowed bool, holder string) error {
	if unescrowed {
		return ctx.Bank.Send(holder, EscrowAccount(p.DestPort, p.DestChannel), coin)
	}
	return ctx.Bank.Burn(holder, coin)
}

// OnRecvPacket implements ibc.PortModule: mint a voucher or unescrow the
// original token for the packet's receiver.
func (m *Module) OnRecvPacket(ctx *app.Context, p ibc.Packet) *ibc.Acknowledgement {
	var data PacketData
	if err := json.Unmarshal(p.Data, &data); err != nil {
		return &ibc.Acknowledgement{Error: ErrBadPacketData.Error()}
	}
	if _, _, err := m.ReceiveFunds(ctx, p, data, data.Receiver); err != nil {
		return &ibc.Acknowledgement{Error: err.Error()}
	}
	m.received++
	return &ibc.Acknowledgement{Result: []byte("AQ==")}
}

// OnAcknowledgementPacket implements ibc.PortModule: refund on error ack.
func (m *Module) OnAcknowledgementPacket(ctx *app.Context, p ibc.Packet, ack ibc.Acknowledgement) error {
	if ack.Success() {
		m.acked++
		return nil
	}
	return m.RefundPacket(ctx, p)
}

// OnTimeoutPacket implements ibc.PortModule: undo the escrow/burn, the
// behaviour of the paper's Fig. 3 OnPacketTimeout step ("unlocking assets
// that were previously held locked while the transfer request was
// pending").
func (m *Module) OnTimeoutPacket(ctx *app.Context, p ibc.Packet) error {
	return m.RefundPacket(ctx, p)
}

// RefundPacket reverses the send leg of a failed packet: re-mint a
// burned voucher or release the escrow back to the sender. Exported so
// forwarding middleware can unwind its own hop sends.
func (m *Module) RefundPacket(ctx *app.Context, p ibc.Packet) error {
	var data PacketData
	if err := json.Unmarshal(p.Data, &data); err != nil {
		return ErrBadPacketData
	}
	coin := app.Coin{Denom: data.Denom, Amount: data.Amount}
	if denom.ReceiverChainIsSource(p.SourcePort, p.SourceChannel, data.Denom) {
		// The burned voucher is re-minted.
		ctx.Bank.Mint(data.Sender, coin)
	} else {
		escrow := EscrowAccount(p.SourcePort, p.SourceChannel)
		if err := ctx.Bank.Send(escrow, data.Sender, coin); err != nil {
			return err
		}
	}
	m.refunded++
	return nil
}
