// Package transfer implements ICS-20 fungible token transfer: escrow and
// voucher minting with denomination traces, the application the paper's
// workloads exercise (every benchmark transaction carries 100
// MsgTransfer messages).
//
// Tokens sent through different channels receive different trace-prefixed
// denominations and are therefore not fungible with each other — the
// downside the paper notes for scaling throughput with per-relayer
// channels (§IV-A).
package transfer

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/simconf"
)

// PortID is the standard ICS-20 port.
const PortID = "transfer"

// Module errors.
var (
	ErrBadPacketData = errors.New("transfer: malformed packet data")
)

// MsgTransfer requests a cross-chain fungible token transfer (the paper's
// workload message).
type MsgTransfer struct {
	Sender        string
	Receiver      string
	Token         app.Coin
	SourcePort    string
	SourceChannel string
	// TimeoutHeight is the destination height after which the packet can
	// no longer be received (0 = no height timeout).
	TimeoutHeight int64
	// TimeoutTimestamp is the destination block-time deadline.
	TimeoutTimestamp time.Duration
	// Nonce disambiguates otherwise-identical transfers in a batch.
	Nonce uint64
}

// Route implements app.Msg.
func (MsgTransfer) Route() string { return PortID }

// MsgType implements app.Msg.
func (MsgTransfer) MsgType() string { return "MsgTransfer" }

// WireSize implements app.Msg.
func (MsgTransfer) WireSize() int { return simconf.MsgTransferBytes }

// Digest binds the transfer's content into the enclosing tx hash.
func (m MsgTransfer) Digest() []byte {
	return []byte(fmt.Sprintf("xfer/%s/%s/%s/%s/%d",
		m.Sender, m.Receiver, m.Token, m.SourceChannel, m.Nonce))
}

// PacketData is the ICS-20 packet payload.
type PacketData struct {
	Denom    string `json:"denom"`
	Amount   uint64 `json:"amount"`
	Sender   string `json:"sender"`
	Receiver string `json:"receiver"`
}

// Module is the ICS-20 application module for one chain.
type Module struct {
	keeper *ibc.Keeper

	// Counters for analysis.
	sent     uint64
	received uint64
	acked    uint64
	refunded uint64
}

var _ ibc.PortModule = (*Module)(nil)

// New wires the transfer module into an app and its IBC keeper.
func New(a *app.App, k *ibc.Keeper) *Module {
	m := &Module{keeper: k}
	k.BindPort(PortID, m)
	a.RegisterRoute(PortID, m.handleMsg)
	return m
}

// Stats reports (sent, received, acked, refunded) packet counts.
func (m *Module) Stats() (sent, received, acked, refunded uint64) {
	return m.sent, m.received, m.acked, m.refunded
}

// EscrowAccount names the module account holding escrowed tokens for a
// channel.
func EscrowAccount(port, channel string) string {
	return "escrow/" + port + "/" + channel
}

// VoucherPrefix is the denom trace prefix added on the receiving chain.
func VoucherPrefix(port, channel string) string {
	return port + "/" + channel + "/"
}

// handleMsg executes MsgTransfer.
func (m *Module) handleMsg(ctx *app.Context, msg app.Msg) (*app.Result, error) {
	mt, ok := msg.(MsgTransfer)
	if !ok {
		return nil, fmt.Errorf("transfer: unexpected msg %T", msg)
	}
	res := &app.Result{GasUsed: app.MsgGas(mt.MsgType())}
	ev, err := m.sendTransfer(ctx, mt)
	if err != nil {
		return res, err
	}
	res.Events = ev
	return res, nil
}

// sendTransfer escrows or burns the token and emits the packet.
func (m *Module) sendTransfer(ctx *app.Context, mt MsgTransfer) ([]abci.Event, error) {
	prefix := VoucherPrefix(mt.SourcePort, mt.SourceChannel)
	if strings.HasPrefix(mt.Token.Denom, prefix) {
		// Voucher returning to its origin: burn here, unescrow there.
		if err := ctx.Bank.Burn(mt.Sender, mt.Token); err != nil {
			return nil, err
		}
	} else {
		// This chain is the token source: lock in the channel escrow.
		escrow := EscrowAccount(mt.SourcePort, mt.SourceChannel)
		if err := ctx.Bank.Send(mt.Sender, escrow, mt.Token); err != nil {
			return nil, err
		}
	}
	data, err := json.Marshal(PacketData{
		Denom:    mt.Token.Denom,
		Amount:   mt.Token.Amount,
		Sender:   mt.Sender,
		Receiver: mt.Receiver,
	})
	if err != nil {
		return nil, err
	}
	_, events, err := m.keeper.SendPacket(ctx, mt.SourcePort, mt.SourceChannel,
		data, mt.TimeoutHeight, mt.TimeoutTimestamp)
	if err != nil {
		return nil, err
	}
	m.sent++
	return events, nil
}

// OnRecvPacket implements ibc.PortModule: mint a voucher or unescrow the
// original token.
func (m *Module) OnRecvPacket(ctx *app.Context, p ibc.Packet) ibc.Acknowledgement {
	var data PacketData
	if err := json.Unmarshal(p.Data, &data); err != nil {
		return ibc.Acknowledgement{Error: ErrBadPacketData.Error()}
	}
	srcPrefix := VoucherPrefix(p.SourcePort, p.SourceChannel)
	if strings.HasPrefix(data.Denom, srcPrefix) {
		// Token is returning home: release from this chain's escrow.
		unwrapped := strings.TrimPrefix(data.Denom, srcPrefix)
		escrow := EscrowAccount(p.DestPort, p.DestChannel)
		if err := ctx.Bank.Send(escrow, data.Receiver, app.Coin{Denom: unwrapped, Amount: data.Amount}); err != nil {
			return ibc.Acknowledgement{Error: err.Error()}
		}
	} else {
		// Mint a voucher with this channel's trace prefix.
		voucher := VoucherPrefix(p.DestPort, p.DestChannel) + data.Denom
		ctx.Bank.Mint(data.Receiver, app.Coin{Denom: voucher, Amount: data.Amount})
	}
	m.received++
	return ibc.Acknowledgement{Result: []byte("AQ==")}
}

// OnAcknowledgementPacket implements ibc.PortModule: refund on error ack.
func (m *Module) OnAcknowledgementPacket(ctx *app.Context, p ibc.Packet, ack ibc.Acknowledgement) error {
	if ack.Success() {
		m.acked++
		return nil
	}
	return m.refund(ctx, p)
}

// OnTimeoutPacket implements ibc.PortModule: undo the escrow/burn, the
// behaviour of the paper's Fig. 3 OnPacketTimeout step ("unlocking assets
// that were previously held locked while the transfer request was
// pending").
func (m *Module) OnTimeoutPacket(ctx *app.Context, p ibc.Packet) error {
	return m.refund(ctx, p)
}

func (m *Module) refund(ctx *app.Context, p ibc.Packet) error {
	var data PacketData
	if err := json.Unmarshal(p.Data, &data); err != nil {
		return ErrBadPacketData
	}
	coin := app.Coin{Denom: data.Denom, Amount: data.Amount}
	prefix := VoucherPrefix(p.SourcePort, p.SourceChannel)
	if strings.HasPrefix(data.Denom, prefix) {
		// The burned voucher is re-minted.
		ctx.Bank.Mint(data.Sender, coin)
	} else {
		escrow := EscrowAccount(p.SourcePort, p.SourceChannel)
		if err := ctx.Bank.Send(escrow, data.Sender, coin); err != nil {
			return err
		}
	}
	m.refunded++
	return nil
}
