package transfer

import (
	"testing"

	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
)

func TestVoucherPrefixAndEscrowNames(t *testing.T) {
	if got := VoucherPrefix("transfer", "channel-0"); got != "transfer/channel-0/" {
		t.Fatalf("prefix = %q", got)
	}
	if got := EscrowAccount("transfer", "channel-0"); got != "escrow/transfer/channel-0" {
		t.Fatalf("escrow = %q", got)
	}
	// Different channels produce non-fungible denominations (§IV-A).
	a := VoucherPrefix("transfer", "channel-0") + "uatom"
	b := VoucherPrefix("transfer", "channel-1") + "uatom"
	if a == b {
		t.Fatal("channel traces collide")
	}
}

func TestMsgTransferMsgInterface(t *testing.T) {
	m := MsgTransfer{Sender: "a", Receiver: "b", Token: app.Coin{Denom: "uatom", Amount: 5}, Nonce: 1}
	if m.Route() != PortID || m.MsgType() != "MsgTransfer" {
		t.Fatalf("route/type = %s/%s", m.Route(), m.MsgType())
	}
	if m.WireSize() <= 0 {
		t.Fatal("wire size")
	}
	m2 := m
	m2.Nonce = 2
	if string(m.Digest()) == string(m2.Digest()) {
		t.Fatal("digest ignores nonce")
	}
}

func TestOnRecvMalformedData(t *testing.T) {
	a := app.New("c", false)
	k := ibc.NewKeeper(a)
	m := New(a, k)
	ctx := &app.Context{ChainID: "c", State: a.State(), Bank: a.Bank(), App: a}
	ack := m.OnRecvPacket(ctx, ibc.Packet{Data: []byte("not json")})
	if ack.Success() {
		t.Fatal("malformed packet acked success")
	}
	if err := m.OnTimeoutPacket(ctx, ibc.Packet{Data: []byte("junk")}); err == nil {
		t.Fatal("malformed timeout refunded")
	}
}

func TestErrorAckTriggersRefund(t *testing.T) {
	a := app.New("c", false)
	k := ibc.NewKeeper(a)
	m := New(a, k)
	a.CreateAccount("alice", app.Coin{Denom: "uatom", Amount: 100})
	ctx := &app.Context{ChainID: "c", State: a.State(), Bank: a.Bank(), App: a}
	// Simulate a prior escrow.
	escrow := EscrowAccount("transfer", "channel-0")
	if err := ctx.Bank.Send("alice", escrow, app.Coin{Denom: "uatom", Amount: 40}); err != nil {
		t.Fatal(err)
	}
	ctx.State.CommitTx()
	pkt := ibc.Packet{
		SourcePort: "transfer", SourceChannel: "channel-0",
		Data: []byte(`{"denom":"uatom","amount":40,"sender":"alice","receiver":"bob"}`),
	}
	if err := m.OnAcknowledgementPacket(ctx, pkt, ibc.Acknowledgement{Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	ctx.State.CommitTx()
	if got := a.Bank().Balance("alice", "uatom"); got != 100 {
		t.Fatalf("alice after error-ack refund = %d", got)
	}
	// Success ack does not refund.
	_, _, acked, refunded := m.Stats()
	if acked != 0 || refunded != 1 {
		t.Fatalf("stats acked=%d refunded=%d", acked, refunded)
	}
	if err := m.OnAcknowledgementPacket(ctx, pkt, ibc.Acknowledgement{Result: []byte("AQ==")}); err != nil {
		t.Fatal(err)
	}
	if got := a.Bank().Balance("alice", "uatom"); got != 100 {
		t.Fatalf("success ack moved funds: %d", got)
	}
}

func TestRefundRemintsBurnedVoucher(t *testing.T) {
	a := app.New("c", false)
	k := ibc.NewKeeper(a)
	m := New(a, k)
	a.CreateAccount("bob")
	ctx := &app.Context{ChainID: "c", State: a.State(), Bank: a.Bank(), App: a}
	voucher := VoucherPrefix("transfer", "channel-0") + "uatom"
	pkt := ibc.Packet{
		SourcePort: "transfer", SourceChannel: "channel-0",
		Data: []byte(`{"denom":"` + voucher + `","amount":7,"sender":"bob","receiver":"x"}`),
	}
	if err := m.OnTimeoutPacket(ctx, pkt); err != nil {
		t.Fatal(err)
	}
	ctx.State.CommitTx()
	if got := a.Bank().Balance("bob", voucher); got != 7 {
		t.Fatalf("re-minted voucher = %d", got)
	}
}
