package ibc

import (
	"fmt"
	"time"

	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/types"
)

// RouteIBC is the app router key for core IBC messages.
const RouteIBC = "ibc"

// HeaderBundle is a counterparty header plus the commit that finalized
// it, submitted in MsgUpdateClient and verified against the client's
// pinned validator set.
type HeaderBundle struct {
	Header types.Header
	Commit *types.Commit
}

// MsgCreateClient initializes a light client for a counterparty chain.
type MsgCreateClient struct {
	ClientID string
	State    ClientState
	// InitialConsensus seeds the first consensus state.
	InitialHeight    int64
	InitialConsensus ConsensusState
}

// MsgUpdateClient submits a new counterparty header.
type MsgUpdateClient struct {
	ClientID string
	Bundle   HeaderBundle
}

// MsgConnOpenInit starts the connection handshake (chain A).
type MsgConnOpenInit struct {
	ConnID               string
	ClientID             string
	CounterpartyConnID   string
	CounterpartyClientID string
}

// MsgConnOpenTry answers on chain B with proof of A's INIT state.
type MsgConnOpenTry struct {
	ConnID               string
	ClientID             string
	CounterpartyConnID   string
	CounterpartyClientID string
	ProofInit            *Proof
	ProofHeight          int64
}

// MsgConnOpenAck confirms on chain A with proof of B's TRYOPEN state.
type MsgConnOpenAck struct {
	ConnID      string
	ProofTry    *Proof
	ProofHeight int64
}

// MsgConnOpenConfirm finalizes on chain B with proof of A's OPEN state.
type MsgConnOpenConfirm struct {
	ConnID      string
	ProofAck    *Proof
	ProofHeight int64
}

// MsgChanOpenInit starts the channel handshake (chain A).
type MsgChanOpenInit struct {
	Port             string
	Channel          string
	ConnectionID     string
	CounterpartyPort string
	CounterpartyChan string
	Ordering         Order
	Version          string
}

// MsgChanOpenTry answers on chain B.
type MsgChanOpenTry struct {
	Port             string
	Channel          string
	ConnectionID     string
	CounterpartyPort string
	CounterpartyChan string
	Ordering         Order
	Version          string
	ProofInit        *Proof
	ProofHeight      int64
}

// MsgChanOpenAck confirms on chain A.
type MsgChanOpenAck struct {
	Port        string
	Channel     string
	ProofTry    *Proof
	ProofHeight int64
}

// MsgChanOpenConfirm finalizes on chain B.
type MsgChanOpenConfirm struct {
	Port        string
	Channel     string
	ProofAck    *Proof
	ProofHeight int64
}

// MsgRecvPacket delivers a packet to the destination chain with proof of
// the source chain's packet commitment.
type MsgRecvPacket struct {
	Packet          Packet
	ProofCommitment *Proof
	ProofHeight     int64
	Relayer         string
}

// MsgAcknowledgement returns an acknowledgement to the source chain with
// proof that the destination wrote it.
type MsgAcknowledgement struct {
	Packet      Packet
	Ack         []byte
	ProofAcked  *Proof
	ProofHeight int64
	Relayer     string
}

// MsgTimeout aborts a packet on the source chain with proof that the
// destination never received it before the timeout.
type MsgTimeout struct {
	Packet           Packet
	ProofUnreceived  *Proof
	ProofHeight      int64
	NextSequenceRecv uint64
	Relayer          string
}

// msgBase provides the app.Msg plumbing shared by IBC messages.
func packetDigest(p *Packet) []byte {
	return []byte(fmt.Sprintf("%s/%s/%d", p.SourcePort, p.SourceChannel, p.Sequence))
}

// Route/MsgType/WireSize/Digest implementations.

func (MsgCreateClient) Route() string    { return RouteIBC }
func (MsgCreateClient) MsgType() string  { return "MsgCreateClient" }
func (MsgCreateClient) WireSize() int    { return 2000 }
func (m MsgCreateClient) Digest() []byte { return []byte("create/" + m.ClientID) }

func (MsgUpdateClient) Route() string   { return RouteIBC }
func (MsgUpdateClient) MsgType() string { return "MsgUpdateClient" }
func (MsgUpdateClient) WireSize() int   { return 1200 }
func (m MsgUpdateClient) Digest() []byte {
	return []byte(fmt.Sprintf("update/%s/%d", m.ClientID, m.Bundle.Header.Height))
}

func (MsgConnOpenInit) Route() string    { return RouteIBC }
func (MsgConnOpenInit) MsgType() string  { return "MsgConnOpenInit" }
func (MsgConnOpenInit) WireSize() int    { return 300 }
func (m MsgConnOpenInit) Digest() []byte { return []byte("conninit/" + m.ConnID) }

func (MsgConnOpenTry) Route() string    { return RouteIBC }
func (MsgConnOpenTry) MsgType() string  { return "MsgConnOpenTry" }
func (MsgConnOpenTry) WireSize() int    { return 900 }
func (m MsgConnOpenTry) Digest() []byte { return []byte("conntry/" + m.ConnID) }

func (MsgConnOpenAck) Route() string    { return RouteIBC }
func (MsgConnOpenAck) MsgType() string  { return "MsgConnOpenAck" }
func (MsgConnOpenAck) WireSize() int    { return 900 }
func (m MsgConnOpenAck) Digest() []byte { return []byte("connack/" + m.ConnID) }

func (MsgConnOpenConfirm) Route() string    { return RouteIBC }
func (MsgConnOpenConfirm) MsgType() string  { return "MsgConnOpenConfirm" }
func (MsgConnOpenConfirm) WireSize() int    { return 900 }
func (m MsgConnOpenConfirm) Digest() []byte { return []byte("connconfirm/" + m.ConnID) }

func (MsgChanOpenInit) Route() string    { return RouteIBC }
func (MsgChanOpenInit) MsgType() string  { return "MsgChanOpenInit" }
func (MsgChanOpenInit) WireSize() int    { return 300 }
func (m MsgChanOpenInit) Digest() []byte { return []byte("chaninit/" + m.Port + "/" + m.Channel) }

func (MsgChanOpenTry) Route() string    { return RouteIBC }
func (MsgChanOpenTry) MsgType() string  { return "MsgChanOpenTry" }
func (MsgChanOpenTry) WireSize() int    { return 900 }
func (m MsgChanOpenTry) Digest() []byte { return []byte("chantry/" + m.Port + "/" + m.Channel) }

func (MsgChanOpenAck) Route() string    { return RouteIBC }
func (MsgChanOpenAck) MsgType() string  { return "MsgChanOpenAck" }
func (MsgChanOpenAck) WireSize() int    { return 900 }
func (m MsgChanOpenAck) Digest() []byte { return []byte("chanack/" + m.Port + "/" + m.Channel) }

func (MsgChanOpenConfirm) Route() string    { return RouteIBC }
func (MsgChanOpenConfirm) MsgType() string  { return "MsgChanOpenConfirm" }
func (MsgChanOpenConfirm) WireSize() int    { return 900 }
func (m MsgChanOpenConfirm) Digest() []byte { return []byte("chanconfirm/" + m.Port + "/" + m.Channel) }

func (MsgRecvPacket) Route() string    { return RouteIBC }
func (MsgRecvPacket) MsgType() string  { return "MsgRecvPacket" }
func (MsgRecvPacket) WireSize() int    { return simconf.MsgRecvPacketBytes }
func (m MsgRecvPacket) Digest() []byte { return append([]byte("recv/"), packetDigest(&m.Packet)...) }

func (MsgAcknowledgement) Route() string   { return RouteIBC }
func (MsgAcknowledgement) MsgType() string { return "MsgAcknowledgement" }
func (MsgAcknowledgement) WireSize() int   { return simconf.MsgAckBytes }
func (m MsgAcknowledgement) Digest() []byte {
	return append([]byte("ack/"), packetDigest(&m.Packet)...)
}

func (MsgTimeout) Route() string   { return RouteIBC }
func (MsgTimeout) MsgType() string { return "MsgTimeout" }
func (MsgTimeout) WireSize() int   { return simconf.MsgAckBytes }
func (m MsgTimeout) Digest() []byte {
	return append([]byte("timeout/"), packetDigest(&m.Packet)...)
}

// timeoutElapsed reports whether a packet can no longer be received at
// the given destination height/time.
func timeoutElapsed(p *Packet, height int64, now time.Duration) bool {
	if p.TimeoutHeight > 0 && height >= p.TimeoutHeight {
		return true
	}
	if p.TimeoutTimestamp > 0 && now >= p.TimeoutTimestamp {
		return true
	}
	return false
}
