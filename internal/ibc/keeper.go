package ibc

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/merkle"
	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/valkey"
)

// Keeper errors.
var (
	ErrClientNotFound     = errors.New("ibc: client not found")
	ErrConsensusNotFound  = errors.New("ibc: consensus state not found at height")
	ErrConnectionNotFound = errors.New("ibc: connection not found")
	ErrChannelNotFound    = errors.New("ibc: channel not found")
	ErrChannelNotOpen     = errors.New("ibc: channel not open")
	ErrInvalidHandshake   = errors.New("ibc: handshake state mismatch")
	// ErrRedundantPacket is the failure two uncoordinated relayers hit
	// when both deliver the same packet: "packet messages are redundant"
	// (§IV-A).
	ErrRedundantPacket = errors.New("packet messages are redundant")
	ErrPacketTimedOut  = errors.New("ibc: packet timeout elapsed")
	ErrTimeoutTooEarly = errors.New("ibc: timeout not yet elapsed on counterparty")
	ErrProofVerify     = errors.New("ibc: proof verification failed")
	ErrCommitmentGone  = errors.New("ibc: packet commitment not found")
)

// PortModule is a packet-handling application module bound to a port
// (ICS-5/ICS-26). The transfer module implements it; middleware (packet
// forwarding) wraps it.
type PortModule interface {
	// OnRecvPacket processes an inbound packet and returns the ack. A nil
	// return means the acknowledgement is asynchronous: the module (or a
	// middleware above it) will deliver it later via the keeper's
	// WriteAcknowledgement — the mechanism packet-forward middleware uses
	// to hold the origin's ack open until the next hop settles.
	OnRecvPacket(ctx *app.Context, packet Packet) *Acknowledgement
	// OnAcknowledgementPacket processes an ack for a sent packet.
	OnAcknowledgementPacket(ctx *app.Context, packet Packet, ack Acknowledgement) error
	// OnTimeoutPacket reverts a packet that timed out.
	OnTimeoutPacket(ctx *app.Context, packet Packet) error
}

// Keeper owns the IBC state of one chain and routes packets to port
// modules.
type Keeper struct {
	ports map[string]PortModule
	// voteVerifiers maps a counterparty chain ID to that chain's shared
	// vote-verification engine: commit signatures its consensus already
	// admitted are not re-verified when this chain's light client accepts
	// a header (the simulator's process-wide equivalent of verify-once).
	voteVerifiers map[string]types.VoteVerifier
}

// NewKeeper creates the IBC keeper and registers its message handler on
// the app under RouteIBC.
func NewKeeper(a *app.App) *Keeper {
	k := &Keeper{
		ports:         make(map[string]PortModule),
		voteVerifiers: make(map[string]types.VoteVerifier),
	}
	a.RegisterRoute(RouteIBC, k.handle)
	return k
}

// BindPort attaches a module to a port.
func (k *Keeper) BindPort(port string, m PortModule) { k.ports[port] = m }

// RegisterVoteVerifier wires a counterparty chain's vote-verification
// engine into this keeper's light-client header checks. Unregistered
// counterparties fall back to full per-signature verification.
func (k *Keeper) RegisterVoteVerifier(chainID string, vv types.VoteVerifier) {
	k.voteVerifiers[chainID] = vv
}

// --- stored-object helpers -------------------------------------------------

func getJSON[T any](ctx *app.Context, key string) (*T, bool) {
	raw, ok := ctx.State.Get(key)
	if !ok {
		return nil, false
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, false
	}
	return &v, true
}

func setJSON(ctx *app.Context, key string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		// Stored objects are plain structs; marshal cannot fail.
		panic(err)
	}
	ctx.State.Set(key, raw)
}

// Client returns a stored client state.
func (k *Keeper) Client(ctx *app.Context, clientID string) (*ClientState, error) {
	cs, ok := getJSON[ClientState](ctx, ClientStateKey(clientID))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrClientNotFound, clientID)
	}
	return cs, nil
}

// Consensus returns a stored consensus state at a height.
func (k *Keeper) Consensus(ctx *app.Context, clientID string, height int64) (*ConsensusState, error) {
	cs, ok := getJSON[ConsensusState](ctx, ConsensusStateKey(clientID, height))
	if !ok {
		return nil, fmt.Errorf("%w: client %s height %d", ErrConsensusNotFound, clientID, height)
	}
	return cs, nil
}

// Channel returns a stored channel end.
func (k *Keeper) Channel(ctx *app.Context, port, channel string) (*ChannelEnd, error) {
	ch, ok := getJSON[ChannelEnd](ctx, ChannelKey(port, channel))
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrChannelNotFound, port, channel)
	}
	return ch, nil
}

// Connection returns a stored connection end.
func (k *Keeper) Connection(ctx *app.Context, connID string) (*ConnectionEnd, error) {
	c, ok := getJSON[ConnectionEnd](ctx, ConnectionKey(connID))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectionNotFound, connID)
	}
	return c, nil
}

// clientForChannel resolves the light client a channel's packets are
// verified against.
func (k *Keeper) clientForChannel(ctx *app.Context, port, channel string) (string, *ChannelEnd, error) {
	ch, err := k.Channel(ctx, port, channel)
	if err != nil {
		return "", nil, err
	}
	conn, err := k.Connection(ctx, ch.ConnectionID)
	if err != nil {
		return "", nil, err
	}
	return conn.ClientID, ch, nil
}

// --- proof verification ------------------------------------------------------

// verifyMembership checks a counterparty state inclusion proof against
// the consensus root at proofHeight. With proofs disabled (performance
// mode) it only checks the consensus state exists.
func (k *Keeper) verifyMembership(ctx *app.Context, clientID string, proofHeight int64, key string, value []byte, proof *Proof) error {
	cons, err := k.Consensus(ctx, clientID, proofHeight)
	if err != nil {
		return err
	}
	if !ctx.State.FullProofs() {
		return nil
	}
	if proof == nil || proof.Membership == nil {
		return fmt.Errorf("%w: missing membership proof for %s", ErrProofVerify, key)
	}
	if err := merkle.VerifyMembership(cons.Root, []byte(key), value, proof.Membership); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrProofVerify, key, err)
	}
	return nil
}

// verifyNonMembership checks a counterparty absence proof.
func (k *Keeper) verifyNonMembership(ctx *app.Context, clientID string, proofHeight int64, key string, proof *Proof) error {
	cons, err := k.Consensus(ctx, clientID, proofHeight)
	if err != nil {
		return err
	}
	if !ctx.State.FullProofs() {
		return nil
	}
	if proof == nil || proof.NonMembership == nil {
		return fmt.Errorf("%w: missing non-membership proof for %s", ErrProofVerify, key)
	}
	if err := merkle.VerifyNonMembership(cons.Root, []byte(key), proof.NonMembership); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrProofVerify, key, err)
	}
	return nil
}

// --- message handler ---------------------------------------------------------

// handle is the app.Handler for all core IBC messages.
func (k *Keeper) handle(ctx *app.Context, msg app.Msg) (*app.Result, error) {
	gas := app.MsgGas(msg.MsgType())
	res := &app.Result{GasUsed: gas}
	var err error
	switch m := msg.(type) {
	case MsgCreateClient:
		err = k.createClient(ctx, m)
	case MsgUpdateClient:
		err = k.updateClient(ctx, m)
	case MsgConnOpenInit:
		err = k.connOpenInit(ctx, m)
	case MsgConnOpenTry:
		err = k.connOpenTry(ctx, m)
	case MsgConnOpenAck:
		err = k.connOpenAck(ctx, m)
	case MsgConnOpenConfirm:
		err = k.connOpenConfirm(ctx, m)
	case MsgChanOpenInit:
		err = k.chanOpenInit(ctx, m)
	case MsgChanOpenTry:
		err = k.chanOpenTry(ctx, m)
	case MsgChanOpenAck:
		err = k.chanOpenAck(ctx, m)
	case MsgChanOpenConfirm:
		err = k.chanOpenConfirm(ctx, m)
	case MsgRecvPacket:
		err = k.recvPacket(ctx, m)
	case MsgAcknowledgement:
		err = k.acknowledgePacket(ctx, m)
	case MsgTimeout:
		err = k.timeoutPacket(ctx, m)
	default:
		err = fmt.Errorf("ibc: unknown message %T", msg)
	}
	if err != nil {
		return res, err
	}
	return res, nil
}

// --- clients -----------------------------------------------------------------

func (k *Keeper) createClient(ctx *app.Context, m MsgCreateClient) error {
	if ctx.State.Has(ClientStateKey(m.ClientID)) {
		return fmt.Errorf("ibc: client %s exists", m.ClientID)
	}
	st := m.State
	st.LatestHeight = m.InitialHeight
	setJSON(ctx, ClientStateKey(m.ClientID), st)
	setJSON(ctx, ConsensusStateKey(m.ClientID, m.InitialHeight), m.InitialConsensus)
	return nil
}

func (k *Keeper) updateClient(ctx *app.Context, m MsgUpdateClient) error {
	cs, err := k.Client(ctx, m.ClientID)
	if err != nil {
		return err
	}
	hdr := m.Bundle.Header
	if hdr.ChainID != cs.ChainID {
		return fmt.Errorf("ibc: header chain %q, client tracks %q", hdr.ChainID, cs.ChainID)
	}
	// Verify the commit under the pinned validator set. In performance
	// mode the signatures are still structurally present; verification
	// runs whenever the commit carries signatures.
	if ctx.State.FullProofs() {
		vals := make([]*types.Validator, len(cs.Validators))
		for i, vr := range cs.Validators {
			pk, err := valkey.PubKeyFromBytes(vr.PubKey)
			if err != nil {
				return fmt.Errorf("ibc: client %s validator %d: %w", m.ClientID, i, err)
			}
			vals[i] = &types.Validator{Address: pk.Address(), PubKey: pk, VotingPower: vr.Power}
		}
		vs := types.NewValidatorSet(vals)
		blockID := types.BlockID{Hash: hdr.Hash()}
		// Batched fast path: signatures the source chain's live vote path
		// already admitted are not re-verified (nil verifier = full check).
		if err := vs.VerifyCommitCached(cs.ChainID, blockID, hdr.Height,
			m.Bundle.Commit, k.voteVerifiers[cs.ChainID]); err != nil {
			return fmt.Errorf("ibc: header verification: %w", err)
		}
	}
	if hdr.Height > cs.LatestHeight {
		cs.LatestHeight = hdr.Height
		setJSON(ctx, ClientStateKey(m.ClientID), cs)
	}
	setJSON(ctx, ConsensusStateKey(m.ClientID, hdr.Height), ConsensusState{
		Root:      hdr.AppHash,
		Timestamp: hdr.Time,
	})
	return nil
}

// --- connection handshake ------------------------------------------------------

func (k *Keeper) connOpenInit(ctx *app.Context, m MsgConnOpenInit) error {
	if ctx.State.Has(ConnectionKey(m.ConnID)) {
		return fmt.Errorf("ibc: connection %s exists", m.ConnID)
	}
	if _, err := k.Client(ctx, m.ClientID); err != nil {
		return err
	}
	setJSON(ctx, ConnectionKey(m.ConnID), ConnectionEnd{
		State:                StateInit,
		ClientID:             m.ClientID,
		CounterpartyConnID:   m.CounterpartyConnID,
		CounterpartyClientID: m.CounterpartyClientID,
	})
	return nil
}

func (k *Keeper) connOpenTry(ctx *app.Context, m MsgConnOpenTry) error {
	if _, err := k.Client(ctx, m.ClientID); err != nil {
		return err
	}
	// Verify the counterparty recorded INIT for this pair.
	expected := ConnectionEnd{
		State:                StateInit,
		ClientID:             m.CounterpartyClientID,
		CounterpartyConnID:   m.ConnID,
		CounterpartyClientID: m.ClientID,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, m.ClientID, m.ProofHeight,
		ConnectionKey(m.CounterpartyConnID), raw, m.ProofInit); err != nil {
		return err
	}
	setJSON(ctx, ConnectionKey(m.ConnID), ConnectionEnd{
		State:                StateTryOpen,
		ClientID:             m.ClientID,
		CounterpartyConnID:   m.CounterpartyConnID,
		CounterpartyClientID: m.CounterpartyClientID,
	})
	return nil
}

func (k *Keeper) connOpenAck(ctx *app.Context, m MsgConnOpenAck) error {
	conn, err := k.Connection(ctx, m.ConnID)
	if err != nil {
		return err
	}
	if conn.State != StateInit {
		return fmt.Errorf("%w: connection %s in state %d", ErrInvalidHandshake, m.ConnID, conn.State)
	}
	expected := ConnectionEnd{
		State:                StateTryOpen,
		ClientID:             conn.CounterpartyClientID,
		CounterpartyConnID:   m.ConnID,
		CounterpartyClientID: conn.ClientID,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, conn.ClientID, m.ProofHeight,
		ConnectionKey(conn.CounterpartyConnID), raw, m.ProofTry); err != nil {
		return err
	}
	conn.State = StateOpen
	setJSON(ctx, ConnectionKey(m.ConnID), conn)
	return nil
}

func (k *Keeper) connOpenConfirm(ctx *app.Context, m MsgConnOpenConfirm) error {
	conn, err := k.Connection(ctx, m.ConnID)
	if err != nil {
		return err
	}
	if conn.State != StateTryOpen {
		return fmt.Errorf("%w: connection %s in state %d", ErrInvalidHandshake, m.ConnID, conn.State)
	}
	expected := ConnectionEnd{
		State:                StateOpen,
		ClientID:             conn.CounterpartyClientID,
		CounterpartyConnID:   m.ConnID,
		CounterpartyClientID: conn.ClientID,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, conn.ClientID, m.ProofHeight,
		ConnectionKey(conn.CounterpartyConnID), raw, m.ProofAck); err != nil {
		return err
	}
	conn.State = StateOpen
	setJSON(ctx, ConnectionKey(m.ConnID), conn)
	return nil
}

// --- channel handshake ----------------------------------------------------------

func (k *Keeper) chanOpenInit(ctx *app.Context, m MsgChanOpenInit) error {
	if ctx.State.Has(ChannelKey(m.Port, m.Channel)) {
		return fmt.Errorf("ibc: channel %s/%s exists", m.Port, m.Channel)
	}
	conn, err := k.Connection(ctx, m.ConnectionID)
	if err != nil {
		return err
	}
	if conn.State != StateOpen {
		return fmt.Errorf("%w: connection %s not open", ErrInvalidHandshake, m.ConnectionID)
	}
	setJSON(ctx, ChannelKey(m.Port, m.Channel), ChannelEnd{
		State:            StateInit,
		Ordering:         m.Ordering,
		CounterpartyPort: m.CounterpartyPort,
		CounterpartyChan: m.CounterpartyChan,
		ConnectionID:     m.ConnectionID,
		Version:          m.Version,
	})
	return nil
}

func (k *Keeper) chanOpenTry(ctx *app.Context, m MsgChanOpenTry) error {
	conn, err := k.Connection(ctx, m.ConnectionID)
	if err != nil {
		return err
	}
	if conn.State != StateOpen {
		return fmt.Errorf("%w: connection %s not open", ErrInvalidHandshake, m.ConnectionID)
	}
	expected := ChannelEnd{
		State:            StateInit,
		Ordering:         m.Ordering,
		CounterpartyPort: m.Port,
		CounterpartyChan: m.Channel,
		ConnectionID:     conn.CounterpartyConnID,
		Version:          m.Version,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, conn.ClientID, m.ProofHeight,
		ChannelKey(m.CounterpartyPort, m.CounterpartyChan), raw, m.ProofInit); err != nil {
		return err
	}
	setJSON(ctx, ChannelKey(m.Port, m.Channel), ChannelEnd{
		State:            StateTryOpen,
		Ordering:         m.Ordering,
		CounterpartyPort: m.CounterpartyPort,
		CounterpartyChan: m.CounterpartyChan,
		ConnectionID:     m.ConnectionID,
		Version:          m.Version,
	})
	return nil
}

func (k *Keeper) chanOpenAck(ctx *app.Context, m MsgChanOpenAck) error {
	ch, err := k.Channel(ctx, m.Port, m.Channel)
	if err != nil {
		return err
	}
	if ch.State != StateInit {
		return fmt.Errorf("%w: channel %s/%s in state %d", ErrInvalidHandshake, m.Port, m.Channel, ch.State)
	}
	conn, err := k.Connection(ctx, ch.ConnectionID)
	if err != nil {
		return err
	}
	expected := ChannelEnd{
		State:            StateTryOpen,
		Ordering:         ch.Ordering,
		CounterpartyPort: m.Port,
		CounterpartyChan: m.Channel,
		ConnectionID:     conn.CounterpartyConnID,
		Version:          ch.Version,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, conn.ClientID, m.ProofHeight,
		ChannelKey(ch.CounterpartyPort, ch.CounterpartyChan), raw, m.ProofTry); err != nil {
		return err
	}
	ch.State = StateOpen
	setJSON(ctx, ChannelKey(m.Port, m.Channel), ch)
	ctx.State.Set(NextSequenceSendKey(m.Port, m.Channel), []byte("1"))
	return nil
}

func (k *Keeper) chanOpenConfirm(ctx *app.Context, m MsgChanOpenConfirm) error {
	ch, err := k.Channel(ctx, m.Port, m.Channel)
	if err != nil {
		return err
	}
	if ch.State != StateTryOpen {
		return fmt.Errorf("%w: channel %s/%s in state %d", ErrInvalidHandshake, m.Port, m.Channel, ch.State)
	}
	conn, err := k.Connection(ctx, ch.ConnectionID)
	if err != nil {
		return err
	}
	expected := ChannelEnd{
		State:            StateOpen,
		Ordering:         ch.Ordering,
		CounterpartyPort: m.Port,
		CounterpartyChan: m.Channel,
		ConnectionID:     conn.CounterpartyConnID,
		Version:          ch.Version,
	}
	raw, _ := json.Marshal(expected)
	if err := k.verifyMembership(ctx, conn.ClientID, m.ProofHeight,
		ChannelKey(ch.CounterpartyPort, ch.CounterpartyChan), raw, m.ProofAck); err != nil {
		return err
	}
	ch.State = StateOpen
	setJSON(ctx, ChannelKey(m.Port, m.Channel), ch)
	ctx.State.Set(NextSequenceSendKey(m.Port, m.Channel), []byte("1"))
	return nil
}

// --- packet lifecycle -------------------------------------------------------------

// SendPacket stores a packet commitment and emits the send_packet event
// the relayer watches for. Called by port modules (e.g. transfer).
func (k *Keeper) SendPacket(ctx *app.Context, port, channel string, data []byte, timeoutHeight int64, timeoutTimestamp time.Duration) (Packet, []abci.Event, error) {
	ch, err := k.Channel(ctx, port, channel)
	if err != nil {
		return Packet{}, nil, err
	}
	if ch.State != StateOpen {
		return Packet{}, nil, fmt.Errorf("%w: %s/%s", ErrChannelNotOpen, port, channel)
	}
	seq := k.nextSequenceSend(ctx, port, channel)
	p := Packet{
		Sequence:         seq,
		SourcePort:       port,
		SourceChannel:    channel,
		DestPort:         ch.CounterpartyPort,
		DestChannel:      ch.CounterpartyChan,
		Data:             data,
		TimeoutHeight:    timeoutHeight,
		TimeoutTimestamp: timeoutTimestamp,
	}
	ctx.State.Set(PacketCommitmentKey(port, channel, seq), p.CommitmentBytes())
	raw, _ := json.Marshal(p)
	ev := abci.Event{
		Type: "send_packet",
		Attributes: map[string]string{
			"packet":      string(raw),
			"src_port":    port,
			"src_channel": channel,
			"dst_port":    ch.CounterpartyPort,
			"dst_channel": ch.CounterpartyChan,
			"sequence":    fmt.Sprint(seq),
		},
	}
	return p, []abci.Event{ev}, nil
}

func (k *Keeper) nextSequenceSend(ctx *app.Context, port, channel string) uint64 {
	key := NextSequenceSendKey(port, channel)
	raw, _ := ctx.State.Get(key)
	var seq uint64 = 1
	if len(raw) > 0 {
		fmt.Sscan(string(raw), &seq)
	}
	ctx.State.Set(key, []byte(fmt.Sprint(seq+1)))
	return seq
}

// recvPacket verifies and executes an inbound packet, writing the
// receipt and — unless the port module answers asynchronously — the
// acknowledgement. Events flow through ctx.Emit so that packets emitted
// by middleware during OnRecvPacket (forwarded next hops) land in the
// same transaction result.
func (k *Keeper) recvPacket(ctx *app.Context, m MsgRecvPacket) error {
	p := m.Packet
	clientID, ch, err := k.clientForChannel(ctx, p.DestPort, p.DestChannel)
	if err != nil {
		return err
	}
	if ch.State != StateOpen {
		return fmt.Errorf("%w: %s/%s", ErrChannelNotOpen, p.DestPort, p.DestChannel)
	}
	if ch.CounterpartyPort != p.SourcePort || ch.CounterpartyChan != p.SourceChannel {
		return fmt.Errorf("ibc: packet route mismatch")
	}
	if timeoutElapsed(&p, ctx.Height, ctx.Time) {
		return fmt.Errorf("%w: height %d time %v", ErrPacketTimedOut, ctx.Height, ctx.Time)
	}
	// Unordered channel: exactly-once via receipts.
	receiptKey := PacketReceiptKey(p.DestPort, p.DestChannel, p.Sequence)
	if ctx.State.Has(receiptKey) {
		return fmt.Errorf("%w: %s/%s seq %d", ErrRedundantPacket, p.SourcePort, p.SourceChannel, p.Sequence)
	}
	// Verify the source chain committed this packet.
	if err := k.verifyMembership(ctx, clientID, m.ProofHeight,
		PacketCommitmentKey(p.SourcePort, p.SourceChannel, p.Sequence),
		p.CommitmentBytes(), m.ProofCommitment); err != nil {
		return err
	}
	ctx.State.Set(receiptKey, []byte{1})

	mod, ok := k.ports[p.DestPort]
	if !ok {
		return fmt.Errorf("ibc: no module bound to port %s", p.DestPort)
	}
	ack := mod.OnRecvPacket(ctx, p)
	if ack == nil {
		// Asynchronous acknowledgement: the receipt blocks redelivery; a
		// middleware writes the ack once the downstream leg settles.
		return nil
	}
	return k.WriteAcknowledgement(ctx, p, *ack)
}

// WriteAcknowledgement stores the acknowledgement for a received packet
// and emits the write_acknowledgement event relayers turn into
// MsgAcknowledgements. Port modules answering synchronously never call
// it directly; async middleware (packet forwarding) calls it when the
// downstream hop acks, errors or times out.
func (k *Keeper) WriteAcknowledgement(ctx *app.Context, p Packet, ack Acknowledgement) error {
	key := PacketAckKey(p.DestPort, p.DestChannel, p.Sequence)
	if ctx.State.Has(key) {
		return fmt.Errorf("ibc: acknowledgement for %s/%s seq %d already written",
			p.DestPort, p.DestChannel, p.Sequence)
	}
	ctx.State.Set(key, hashAck(ack.Bytes()))
	raw, _ := json.Marshal(p)
	ctx.Emit(abci.Event{
		Type: "write_acknowledgement",
		Attributes: map[string]string{
			"packet":   string(raw),
			"ack":      string(ack.Bytes()),
			"sequence": fmt.Sprint(p.Sequence),
		},
	})
	return nil
}

// LatestClientHeight reports the counterparty height of the light client
// a channel's packets are verified against — the on-chain information a
// forwarding middleware has for choosing next-hop timeout heights.
func (k *Keeper) LatestClientHeight(ctx *app.Context, port, channel string) (int64, error) {
	clientID, _, err := k.clientForChannel(ctx, port, channel)
	if err != nil {
		return 0, err
	}
	cs, err := k.Client(ctx, clientID)
	if err != nil {
		return 0, err
	}
	return cs.LatestHeight, nil
}

// acknowledgePacket completes the transfer on the source chain.
func (k *Keeper) acknowledgePacket(ctx *app.Context, m MsgAcknowledgement) error {
	p := m.Packet
	clientID, ch, err := k.clientForChannel(ctx, p.SourcePort, p.SourceChannel)
	if err != nil {
		return err
	}
	if ch.State != StateOpen {
		return fmt.Errorf("%w: %s/%s", ErrChannelNotOpen, p.SourcePort, p.SourceChannel)
	}
	commitKey := PacketCommitmentKey(p.SourcePort, p.SourceChannel, p.Sequence)
	if !ctx.State.Has(commitKey) {
		// Already acknowledged or timed out: redundant relay.
		return fmt.Errorf("%w: ack for seq %d", ErrRedundantPacket, p.Sequence)
	}
	if err := k.verifyMembership(ctx, clientID, m.ProofHeight,
		PacketAckKey(p.DestPort, p.DestChannel, p.Sequence),
		hashAck(m.Ack), m.ProofAcked); err != nil {
		return err
	}
	ctx.State.Delete(commitKey)

	mod, ok := k.ports[p.SourcePort]
	if !ok {
		return fmt.Errorf("ibc: no module bound to port %s", p.SourcePort)
	}
	ack, err := ParseAck(m.Ack)
	if err != nil {
		return err
	}
	return mod.OnAcknowledgementPacket(ctx, p, ack)
}

// timeoutPacket aborts a packet on the source chain after proving
// non-receipt on the destination past the timeout.
func (k *Keeper) timeoutPacket(ctx *app.Context, m MsgTimeout) error {
	p := m.Packet
	clientID, ch, err := k.clientForChannel(ctx, p.SourcePort, p.SourceChannel)
	if err != nil {
		return err
	}
	commitKey := PacketCommitmentKey(p.SourcePort, p.SourceChannel, p.Sequence)
	if !ctx.State.Has(commitKey) {
		return fmt.Errorf("%w: timeout for seq %d", ErrRedundantPacket, p.Sequence)
	}
	_ = ch
	// The consensus state at proofHeight must be past the timeout.
	cons, err := k.Consensus(ctx, clientID, m.ProofHeight)
	if err != nil {
		return err
	}
	elapsed := false
	if p.TimeoutHeight > 0 && m.ProofHeight >= p.TimeoutHeight {
		elapsed = true
	}
	if p.TimeoutTimestamp > 0 && cons.Timestamp >= p.TimeoutTimestamp {
		elapsed = true
	}
	if !elapsed {
		return fmt.Errorf("%w: seq %d at proof height %d", ErrTimeoutTooEarly, p.Sequence, m.ProofHeight)
	}
	if err := k.verifyNonMembership(ctx, clientID, m.ProofHeight,
		PacketReceiptKey(p.DestPort, p.DestChannel, p.Sequence), m.ProofUnreceived); err != nil {
		return err
	}
	ctx.State.Delete(commitKey)

	mod, ok := k.ports[p.SourcePort]
	if !ok {
		return fmt.Errorf("ibc: no module bound to port %s", p.SourcePort)
	}
	return mod.OnTimeoutPacket(ctx, p)
}

// hashAck is the stored acknowledgement commitment.
func hashAck(ack []byte) []byte {
	h := merkle.LeafHash([]byte("ack"), ack)
	return h[:]
}

// HasCommitment reports whether a packet commitment is still stored
// (pending, not yet acknowledged or timed out).
func (k *Keeper) HasCommitment(ctx *app.Context, port, channel string, seq uint64) bool {
	return ctx.State.Has(PacketCommitmentKey(port, channel, seq))
}

// HasReceipt reports whether a packet was received.
func (k *Keeper) HasReceipt(ctx *app.Context, port, channel string, seq uint64) bool {
	return ctx.State.Has(PacketReceiptKey(port, channel, seq))
}
