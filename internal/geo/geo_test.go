package geo

import (
	"testing"
	"time"

	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []*Model{ThreeRegionWAN(), HubAndSpoke(3), Uniform(4, 100*time.Millisecond)} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestThreeRegionWANAsymmetric(t *testing.T) {
	m := ThreeRegionWAN()
	fwd, ok := m.Path("eu-west", "us-east")
	if !ok {
		t.Fatal("missing eu->us path")
	}
	rev, ok := m.Path("us-east", "eu-west")
	if !ok {
		t.Fatal("missing us->eu path")
	}
	if fwd.OneWay == rev.OneWay {
		t.Fatalf("matrix not asymmetric: both directions %v", fwd.OneWay)
	}
	if fwd.OneWay != 40*time.Millisecond || rev.OneWay != 45*time.Millisecond {
		t.Fatalf("eu<->us paths = %v / %v", fwd.OneWay, rev.OneWay)
	}
}

func TestHubAndSpokeHairpin(t *testing.T) {
	m := HubAndSpoke(3)
	core, _ := m.Path("edge-1", "core")
	cross, _ := m.Path("edge-1", "edge-2")
	if cross.OneWay != 2*core.OneWay {
		t.Fatalf("edge-to-edge %v, want 2x edge-to-core %v", cross.OneWay, core.OneWay)
	}
}

func TestValidateRejectsIncompleteMatrix(t *testing.T) {
	m := NewModel("partial", lanIntra())
	m.AddRegion("a")
	m.AddRegion("b")
	m.SetPath("a", "b", Path{OneWay: time.Millisecond})
	// b -> a missing.
	if err := m.Validate(); err == nil {
		t.Fatal("incomplete matrix accepted")
	}
	if _, err := NewAssignment(m); err == nil {
		t.Fatal("assignment over incomplete matrix accepted")
	}
}

func TestParseSpec(t *testing.T) {
	for spec, name := range map[string]string{
		"3wan":       "3wan",
		"hubspoke:4": "hubspoke:4",
		"uniform:3":  "uniform:3",
	} {
		m, err := ParseSpec(spec)
		if err != nil || m == nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if m.Name != name {
			t.Fatalf("%s parsed as %s", spec, m.Name)
		}
	}
	for _, spec := range []string{"", "none"} {
		if m, err := ParseSpec(spec); err != nil || m != nil {
			t.Fatalf("%q should parse to no model (got %v, %v)", spec, m, err)
		}
	}
	for _, spec := range []string{"mars", "hubspoke", "uniform:1", "hubspoke:x"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

// TestCompileCompleteness: the compiled override set covers every
// ordered pair of distinct assigned hosts, with the matrix path for
// cross-region pairs and Intra for same-region pairs.
func TestCompileCompleteness(t *testing.T) {
	m := ThreeRegionWAN()
	a, err := NewAssignment(m)
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[netem.Host]Region{
		"eu/val0": "eu-west", "eu/val1": "eu-west",
		"us/val0": "us-east", "ap/val0": "ap-south",
	}
	for h, r := range hosts {
		if err := a.Place(h, r); err != nil {
			t.Fatal(err)
		}
	}
	overrides := a.Compile()
	n := len(hosts)
	if len(overrides) != n*(n-1) {
		t.Fatalf("compiled %d overrides, want full pair set %d", len(overrides), n*(n-1))
	}
	seen := map[[2]netem.Host]Path{}
	for _, o := range overrides {
		if o.From == o.To {
			t.Fatalf("self-pair override %s", o.From)
		}
		seen[[2]netem.Host{o.From, o.To}] = o.Path
	}
	// Same-region pair: intra profile.
	if got := seen[[2]netem.Host{"eu/val0", "eu/val1"}]; got.OneWay != m.Intra.OneWay {
		t.Fatalf("intra-region pair got %v, want %v", got.OneWay, m.Intra.OneWay)
	}
	// Cross-region pairs: the directed matrix entries.
	if got := seen[[2]netem.Host{"eu/val0", "us/val0"}]; got.OneWay != 40*time.Millisecond {
		t.Fatalf("eu->us pair got %v", got.OneWay)
	}
	if got := seen[[2]netem.Host{"us/val0", "eu/val0"}]; got.OneWay != 45*time.Millisecond {
		t.Fatalf("us->eu pair got %v", got.OneWay)
	}
}

func TestApplyAsymmetricOnNetwork(t *testing.T) {
	s := sim.NewScheduler()
	n := netem.New(s, sim.NewRNG(1), netem.DefaultWAN())
	a, err := NewAssignment(ThreeRegionWAN())
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(a.Place("h-eu", "eu-west"))
	must(a.Place("h-us", "us-east"))
	a.Apply(n)
	if got := n.Latency("h-eu", "h-us"); got != 40*time.Millisecond {
		t.Fatalf("eu->us latency %v", got)
	}
	if got := n.Latency("h-us", "h-eu"); got != 45*time.Millisecond {
		t.Fatalf("us->eu latency %v", got)
	}
	if got := n.RTT("h-eu", "h-us"); got != 85*time.Millisecond {
		t.Fatalf("rtt %v", got)
	}
	// Late host joins us-east: pairs in both directions appear.
	must(a.PlaceAndApply(n, "h-late", "ap-south"))
	if got := n.Latency("h-late", "h-eu"); got != 95*time.Millisecond {
		t.Fatalf("ap->eu latency %v", got)
	}
	if got := n.Latency("h-us", "h-late"); got != 110*time.Millisecond {
		t.Fatalf("us->ap latency %v", got)
	}
	// Unassigned hosts keep the config default.
	if got := n.Latency("h-eu", "stranger"); got != 100*time.Millisecond {
		t.Fatalf("unassigned pair latency %v", got)
	}
}

func TestPlaceRejectsUnknownRegion(t *testing.T) {
	a, err := NewAssignment(ThreeRegionWAN())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Place("h", "atlantis"); err == nil {
		t.Fatal("unknown region accepted")
	}
}
