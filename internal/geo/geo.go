// Package geo is the region model for geo-distributed deployments: named
// regions connected by an inter-region one-way latency/jitter/drop
// matrix, host→region assignment, and a compiler that turns both into
// the full per-host-pair netem link override set.
//
// The paper's testbed enforces one uniform 200 ms RTT between all
// machines (§III-C); real interchain deployments span continents, so
// chains, validators and relayers placed in different regions should see
// heterogeneous paths. Presets cover the common shapes:
//
//	ThreeRegionWAN()   eu-west / us-east / ap-south, asymmetric paths
//	HubAndSpoke(n)     a core region plus n edge regions; edge-to-edge
//	                   paths are slower than edge-to-core
//	Uniform(k, d)      k regions, every inter-region path d one-way
//	                   (the paper's testbed as a degenerate region model)
package geo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ibcbench/internal/netem"
)

// Region names one deployment region.
type Region string

// Path describes one directed inter-region path. Jitter/Drop semantics
// follow netem.Profile: negative values inherit the network config.
type Path struct {
	OneWay time.Duration
	Jitter float64
	Drop   float64
}

// Model is a set of regions plus the directed path matrix between them.
type Model struct {
	Name    string
	Regions []Region
	// Intra is the path between distinct hosts of the same region
	// (typically LAN-like).
	Intra Path
	// paths maps directed region pairs; both directions must be present
	// for every distinct pair (asymmetric matrices are allowed).
	paths map[[2]Region]Path
}

// NewModel starts an empty model with the given intra-region path.
func NewModel(name string, intra Path) *Model {
	return &Model{Name: name, Intra: intra, paths: make(map[[2]Region]Path)}
}

// AddRegion appends a region (idempotent).
func (m *Model) AddRegion(r Region) {
	for _, have := range m.Regions {
		if have == r {
			return
		}
	}
	m.Regions = append(m.Regions, r)
}

// SetPath sets the directed path a -> b.
func (m *Model) SetPath(a, b Region, p Path) {
	m.AddRegion(a)
	m.AddRegion(b)
	m.paths[[2]Region{a, b}] = p
}

// SetSymmetric sets both directions of a pair to the same path.
func (m *Model) SetSymmetric(a, b Region, p Path) {
	m.SetPath(a, b, p)
	m.SetPath(b, a, p)
}

// Path resolves the directed path between two regions (a == b → Intra).
func (m *Model) Path(a, b Region) (Path, bool) {
	if a == b {
		return m.Intra, true
	}
	p, ok := m.paths[[2]Region{a, b}]
	return p, ok
}

// RegionAt returns region i modulo the region count, the round-robin
// default placement for chains without an explicit region.
func (m *Model) RegionAt(i int) Region {
	return m.Regions[i%len(m.Regions)]
}

// Validate checks the matrix is complete: at least one region, and every
// ordered pair of distinct regions has a path.
func (m *Model) Validate() error {
	if len(m.Regions) == 0 {
		return fmt.Errorf("geo: model %q has no regions", m.Name)
	}
	for _, a := range m.Regions {
		for _, b := range m.Regions {
			if a == b {
				continue
			}
			if _, ok := m.paths[[2]Region{a, b}]; !ok {
				return fmt.Errorf("geo: model %q missing path %s -> %s", m.Name, a, b)
			}
		}
	}
	return nil
}

// --- presets -----------------------------------------------------------------

// lanIntra is the within-region path of the presets, matching the
// paper's "<0.5 ms" LAN observation.
func lanIntra() Path {
	return Path{OneWay: 200 * time.Microsecond, Jitter: -1, Drop: -1}
}

// ThreeRegionWAN models a three-continent deployment with asymmetric
// one-way paths (routing asymmetry makes real one-way latencies differ
// by direction).
func ThreeRegionWAN() *Model {
	m := NewModel("3wan", lanIntra())
	const eu, us, ap = Region("eu-west"), Region("us-east"), Region("ap-south")
	set := func(a, b Region, fwd, rev time.Duration) {
		m.SetPath(a, b, Path{OneWay: fwd, Jitter: -1, Drop: -1})
		m.SetPath(b, a, Path{OneWay: rev, Jitter: -1, Drop: -1})
	}
	set(eu, us, 40*time.Millisecond, 45*time.Millisecond)
	set(eu, ap, 90*time.Millisecond, 95*time.Millisecond)
	set(us, ap, 110*time.Millisecond, 115*time.Millisecond)
	return m
}

// HubAndSpoke models one core region plus n edge regions: edge-to-core
// is one WAN hop, edge-to-edge hairpins through the core and costs two.
func HubAndSpoke(spokes int) *Model {
	m := NewModel(fmt.Sprintf("hubspoke:%d", spokes), lanIntra())
	const hop = 50 * time.Millisecond
	core := Region("core")
	m.AddRegion(core)
	edges := make([]Region, spokes)
	for i := range edges {
		edges[i] = Region(fmt.Sprintf("edge-%d", i+1))
		m.SetSymmetric(core, edges[i], Path{OneWay: hop, Jitter: -1, Drop: -1})
	}
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			m.SetSymmetric(edges[i], edges[j], Path{OneWay: 2 * hop, Jitter: -1, Drop: -1})
		}
	}
	return m
}

// Uniform models k regions with one uniform inter-region latency — the
// paper's single-condition testbed expressed as a region model.
func Uniform(k int, oneWay time.Duration) *Model {
	m := NewModel(fmt.Sprintf("uniform:%d", k), lanIntra())
	regions := make([]Region, k)
	for i := range regions {
		regions[i] = Region(fmt.Sprintf("region-%d", i))
		m.AddRegion(regions[i])
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			m.SetSymmetric(regions[i], regions[j], Path{OneWay: oneWay, Jitter: -1, Drop: -1})
		}
	}
	return m
}

// ParseSpec parses a CLI region preset: "3wan" (three-region WAN),
// "hubspoke:<n>" or "uniform:<k>". Empty and "none" return nil (no
// region model).
func ParseSpec(s string) (*Model, error) {
	spec := strings.TrimSpace(strings.ToLower(s))
	if spec == "" || spec == "none" {
		return nil, nil
	}
	kind, arg, hasArg := strings.Cut(spec, ":")
	n := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("geo: bad size %q in region spec %q", arg, s)
		}
		n = v
	}
	switch kind {
	case "3wan", "three-region-wan":
		return ThreeRegionWAN(), nil
	case "hubspoke":
		if n < 1 {
			return nil, fmt.Errorf("geo: hubspoke needs spokes>=1 (got %q)", s)
		}
		return HubAndSpoke(n), nil
	case "uniform":
		if n < 2 {
			return nil, fmt.Errorf("geo: uniform needs k>=2 (got %q)", s)
		}
		return Uniform(n, 100*time.Millisecond), nil
	default:
		return nil, fmt.Errorf("geo: unknown region preset %q (want 3wan|hubspoke:n|uniform:k)", s)
	}
}

// --- assignment + compiler ---------------------------------------------------

// Assignment maps hosts to a model's regions and compiles per-host-pair
// netem overrides.
type Assignment struct {
	model      *Model
	hostRegion map[netem.Host]Region
}

// NewAssignment validates the model and returns an empty assignment.
func NewAssignment(m *Model) (*Assignment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Assignment{model: m, hostRegion: make(map[netem.Host]Region)}, nil
}

// Model returns the assignment's region model.
func (a *Assignment) Model() *Model { return a.model }

// Place assigns a host to a region.
func (a *Assignment) Place(h netem.Host, r Region) error {
	for _, have := range a.model.Regions {
		if have == r {
			a.hostRegion[h] = r
			return nil
		}
	}
	return fmt.Errorf("geo: placing %s in unknown region %q", h, r)
}

// RegionOf reports a host's region.
func (a *Assignment) RegionOf(h netem.Host) (Region, bool) {
	r, ok := a.hostRegion[h]
	return r, ok
}

// Hosts returns the assigned hosts in deterministic (sorted) order.
func (a *Assignment) Hosts() []netem.Host {
	out := make([]netem.Host, 0, len(a.hostRegion))
	for h := range a.hostRegion {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkOverride is one compiled directed host-pair override.
type LinkOverride struct {
	From, To netem.Host
	Path     Path
}

// Compile emits the full per-host-pair directed override set: every
// ordered pair of distinct assigned hosts gets the path of its region
// pair (same-region pairs get Intra). Order is deterministic.
func (a *Assignment) Compile() []LinkOverride {
	hosts := a.Hosts()
	out := make([]LinkOverride, 0, len(hosts)*(len(hosts)-1))
	for _, from := range hosts {
		for _, to := range hosts {
			if from == to {
				continue
			}
			p, ok := a.model.Path(a.hostRegion[from], a.hostRegion[to])
			if !ok {
				// Unreachable on validated models.
				continue
			}
			out = append(out, LinkOverride{From: from, To: to, Path: p})
		}
	}
	return out
}

// Apply compiles the assignment and installs every override on the
// network.
func (a *Assignment) Apply(n *netem.Network) {
	for _, o := range a.Compile() {
		n.SetLinkProfile(o.From, o.To, netem.Profile{OneWay: o.Path.OneWay, Jitter: o.Path.Jitter, Drop: o.Path.Drop})
	}
}

// PlaceAndApply places one late-created host (workload drivers and
// relayer full nodes appear after deployment compiles the initial set)
// and installs only the pairs involving it.
func (a *Assignment) PlaceAndApply(n *netem.Network, h netem.Host, r Region) error {
	if err := a.Place(h, r); err != nil {
		return err
	}
	for other, or := range a.hostRegion {
		if other == h {
			continue
		}
		if p, ok := a.model.Path(r, or); ok {
			n.SetLinkProfile(h, other, netem.Profile{OneWay: p.OneWay, Jitter: p.Jitter, Drop: p.Drop})
		}
		if p, ok := a.model.Path(or, r); ok {
			n.SetLinkProfile(other, h, netem.Profile{OneWay: p.OneWay, Jitter: p.Jitter, Drop: p.Drop})
		}
	}
	return nil
}
