// LiveStatus: the periodic progress snapshot a running deployment
// publishes to the experiment service's /api/live endpoint. It lives
// in obs (not topo or serve) because both the producing simulation
// layer and the consuming HTTP layer already depend on obs, and the
// payload is pure observability data.
package obs

import "time"

// LiveStatus is one progress sample of an in-flight run: cheap
// aggregate counters read from the deployment without touching any
// RNG, so publishing it never perturbs the simulation.
type LiveStatus struct {
	// Name and Seed identify the scenario execution (one sweep run).
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Now is the current virtual time.
	Now time.Duration `json:"now"`
	// Blocks counts blocks committed across every chain so far.
	Blocks int64 `json:"blocks"`
	// Tracked/Completed count packet lifecycles opened and fully
	// settled across every edge; Backlog is the difference — the
	// in-flight depth a dashboard graphs while an experiment executes.
	Tracked   int `json:"tracked"`
	Completed int `json:"completed"`
	Backlog   int `json:"backlog"`
	// Snapshot carries the full registry state when the run is
	// instrumented (nil otherwise).
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}
