// Registry: labeled counters, gauges and histograms for run-wide
// component metrics. Like everything in the simulator it is
// single-threaded — one registry belongs to one deployment — and its
// snapshot sorts every section by name so the JSON document is
// deterministic.
package obs

import "sort"

// Counter is a monotonically increasing count. A nil *Counter is a
// valid no-op target, so components keep instrumentation unconditional.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Set overwrites the value — used when folding a component's own counter
// into the registry at snapshot time.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks a sampled level, remembering the last and peak values.
type Gauge struct {
	name      string
	last, max float64
	samples   uint64
}

// Set records a sample.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.last = v
	if g.samples == 0 || v > g.max {
		g.max = v
	}
	g.samples++
}

// histBounds are the fixed 1-2-5 decade bucket upper bounds shared by
// every histogram; a fixed layout keeps Observe allocation-free and the
// snapshot deterministic.
var histBounds = func() []float64 {
	var out []float64
	scale := 0.001
	for e := 0; e < 10; e++ {
		out = append(out, 1*scale, 2*scale, 5*scale)
		scale *= 10
	}
	return out
}()

// Histogram counts observations into fixed 1-2-5 decade buckets
// spanning 0.001 .. 5e6, with an overflow bucket above.
type Histogram struct {
	name     string
	counts   []uint64 // len(histBounds)+1; last is overflow
	n        uint64
	sum      float64
	min, max float64
}

// Observe records one sample. Allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	for i, le := range histBounds {
		if v <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(histBounds)]++
}

// Registry owns one run's instruments.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter. Nil
// registry yields nil, which every Counter method accepts.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, counts: make([]uint64, len(histBounds)+1)}
		r.hists[name] = h
	}
	return h
}

// SetCounter folds an externally maintained count into the registry.
func (r *Registry) SetCounter(name string, v uint64) { r.Counter(name).Set(v) }

// CounterSnap is one counter's snapshot row.
type CounterSnap struct {
	Name  string
	Value uint64
}

// GaugeSnap is one gauge's snapshot row.
type GaugeSnap struct {
	Name    string
	Last    float64
	Max     float64
	Samples uint64
}

// Bucket is one non-empty histogram bucket: Le is the inclusive upper
// bound, Count the samples that landed in (previous bound, Le].
type Bucket struct {
	Le    float64
	Count uint64
}

// HistogramSnap is one histogram's snapshot row. Only non-empty buckets
// are listed; Overflow counts samples above the largest bound.
type HistogramSnap struct {
	Name     string
	Count    uint64
	Sum      float64
	Min, Max float64
	Buckets  []Bucket `json:",omitempty"`
	Overflow uint64   `json:",omitempty"`
}

// Snapshot is the registry's serializable document, each section sorted
// by name.
type Snapshot struct {
	Counters   []CounterSnap   `json:",omitempty"`
	Gauges     []GaugeSnap     `json:",omitempty"`
	Histograms []HistogramSnap `json:",omitempty"`
}

// Snapshot renders the registry deterministically (nil registry yields
// nil).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for _, name := range sortedNames(r.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: r.counters[name].v})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Last: g.last, Max: g.max, Samples: g.samples})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		row := HistogramSnap{Name: name, Count: h.n, Sum: h.sum, Min: h.min, Max: h.max}
		for i, c := range h.counts[:len(histBounds)] {
			if c > 0 {
				row.Buckets = append(row.Buckets, Bucket{Le: histBounds[i], Count: c})
			}
		}
		row.Overflow = h.counts[len(histBounds)]
		s.Histograms = append(s.Histograms, row)
	}
	return s
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
