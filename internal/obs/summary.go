// Summary: aggregate complete spans into a per-subsystem total/self
// time table — the `ibcbench -trace-summary` view. Self time subtracts
// the duration of nested spans on the same track, so "block" minus its
// nested "exec" shows pure consensus overhead.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SummaryRow aggregates one span name within one subsystem (the track
// name up to the first '/': "chain", "relayer", ...).
type SummaryRow struct {
	Subsystem string
	Name      string
	Count     int
	Total     time.Duration
	Self      time.Duration
}

// spanRec is one complete span during the self-time sweep.
type spanRec struct {
	start, end time.Duration
	name       NameID
	self       time.Duration
}

// Summary aggregates every complete span, computing self time per track
// via a start-ordered stack sweep, and returns rows sorted by total
// time descending (ties by subsystem then name).
func (t *Tracer) Summary() []SummaryRow {
	if t == nil {
		return nil
	}
	perTrack := make(map[TrackID][]*spanRec)
	t.Events(func(ev Event) {
		if ev.Phase != PhaseComplete {
			return
		}
		perTrack[ev.Track] = append(perTrack[ev.Track],
			&spanRec{start: ev.TS, end: ev.TS + ev.Dur, name: ev.Name})
	})
	agg := make(map[[2]string]*SummaryRow)
	// Track iteration order doesn't matter: aggregation is commutative
	// and the final sort is total.
	for track, spans := range perTrack {
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			if spans[i].end != spans[j].end {
				return spans[i].end > spans[j].end // parent before equal-start child
			}
			return spans[i].name < spans[j].name // interleaving-independent tie
		})
		var stack []*spanRec
		for _, sp := range spans {
			sp.self = sp.end - sp.start
			for len(stack) > 0 && stack[len(stack)-1].end <= sp.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				stack[len(stack)-1].self -= sp.end - sp.start
			}
			stack = append(stack, sp)
		}
		sub := subsystemOf(t.TrackName(track))
		for _, sp := range spans {
			key := [2]string{sub, t.NameString(sp.name)}
			row, ok := agg[key]
			if !ok {
				row = &SummaryRow{Subsystem: key[0], Name: key[1]}
				agg[key] = row
			}
			row.Count++
			row.Total += sp.end - sp.start
			row.Self += sp.self
		}
	}
	rows := make([]SummaryRow, 0, len(agg))
	for _, row := range agg {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		if rows[i].Subsystem != rows[j].Subsystem {
			return rows[i].Subsystem < rows[j].Subsystem
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// subsystemOf reduces a track name to its subsystem prefix.
func subsystemOf(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i]
	}
	return track
}

// WriteSummary renders the top rows as an aligned table.
func WriteSummary(w io.Writer, rows []SummaryRow, top int) {
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	fmt.Fprintf(w, "%-12s %-24s %-8s %-14s %-14s\n", "subsystem", "span", "count", "total", "self")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-24s %-8d %-14v %-14v\n", r.Subsystem, r.Name, r.Count, r.Total, r.Self)
	}
}
