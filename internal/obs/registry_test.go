package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("relayer/h0/retries")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("relayer/h0/retries") != c {
		t.Fatal("counter not memoized by name")
	}
	r.SetCounter("net/sent", 99)

	g := r.Gauge("chain/ibc-0/mempool")
	g.Set(10)
	g.Set(3)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "chain/ibc-0/votes" && snap.Counters[0].Name > snap.Counters[1].Name {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Gauges[0].Last != 3 || snap.Gauges[0].Max != 10 || snap.Gauges[0].Samples != 2 {
		t.Fatalf("gauge snap = %+v", snap.Gauges[0])
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("relayer/h0/backlog")
	for _, v := range []float64{0.5, 1, 1.5, 2, 100, 1e12} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms[0]
	if snap.Count != 6 || snap.Min != 0.5 || snap.Max != 1e12 {
		t.Fatalf("histogram snap = %+v", snap)
	}
	if snap.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", snap.Overflow)
	}
	var inBuckets uint64
	for _, b := range snap.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != 5 {
		t.Fatalf("bucketed samples = %d, want 5", inBuckets)
	}
	// JSON must round-trip: no Inf bounds may appear.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("histogram snapshot not marshalable: %v", err)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot")
	h.Observe(1)
	allocs := testing.AllocsPerRun(200, func() { h.Observe(2.5) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		// Insert in different orders across calls would still sort; use a
		// scrambled order here.
		for _, name := range []string{"z", "a", "m/x", "m/a"} {
			r.Counter(name).Add(uint64(len(name)))
			r.Gauge("g/" + name).Set(float64(len(name)))
			r.Histogram("h/" + name).Observe(float64(len(name)))
		}
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical registries produced different snapshots")
	}
	var snap Snapshot
	if err := json.Unmarshal(build(), &snap); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not strictly sorted: %+v", snap.Counters)
		}
	}
}
