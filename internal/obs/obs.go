// Package obs is the simulator's observability spine: a span-based
// tracer and a labeled metrics registry, both driven by the virtual sim
// clock. Because every timestamp is virtual time — never wall clock —
// same-seed runs emit byte-identical trace and registry documents, the
// same equivalence-pinning discipline the rest of the simulator follows.
//
// The tracer records into a chunked append-only buffer of pointer-free
// Event values: steady-state recording allocates nothing (a fresh chunk
// appears once per chunkSize events), names and tracks are interned to
// small integer IDs at setup time, and spans are plain stack values — no
// per-span heap object ever exists. Every recording method is nil-safe,
// so instrumented components pay a single predictable branch when
// tracing is disabled.
//
// Exports: Chrome trace-event JSON (chrome.go, loadable in Perfetto /
// chrome://tracing) and a per-subsystem total/self-time table
// (summary.go).
package obs

import (
	"sync"
	"time"
)

// chunkSize is the event-buffer chunk granularity. Recording is
// allocation-free while the current chunk has room; crossing a chunk
// boundary allocates the next chunk.
const chunkSize = 8192

// TrackID identifies one timeline (a chain, a relayer, the chaos
// injector) — one "thread" row in the Chrome trace viewer.
type TrackID int32

// NameID is an interned span/event name.
type NameID int32

// Event phases, matching the Chrome trace-event format.
const (
	PhaseComplete     = 'X' // a span with start + duration
	PhaseInstant      = 'i' // a point event
	PhaseAsyncBegin   = 'b' // async span start (id-matched, can cross tracks)
	PhaseAsyncInstant = 'n' // async point event within an async span
	PhaseAsyncEnd     = 'e' // async span end
)

// Event is one recorded trace event. The struct is pointer-free so the
// event buffer never contributes GC scan work.
type Event struct {
	TS     time.Duration // virtual start time
	Dur    time.Duration // duration (PhaseComplete only)
	ID     uint64        // async trace ID (async phases only)
	Arg    uint64        // optional numeric payload (height, batch size)
	Track  TrackID
	Name   NameID
	Phase  byte
	HasArg bool
}

// Tracer records events against the sim clock. The zero value is not
// usable; create one through New. A nil *Tracer is a valid no-op target
// for every recording method.
type Tracer struct {
	clock func() time.Duration

	// mu guards interning and the event buffer. Under parallel
	// simulation several partition workers record into one tracer;
	// serial runs pay one uncontended lock per event. Export-side
	// readers (Events, Len) run only while the simulation is quiesced
	// but take the lock anyway for -race cleanliness.
	mu sync.Mutex

	names    []string
	nameIDs  map[string]NameID
	tracks   []string
	trackIDs map[string]TrackID

	full [][]Event // sealed chunks, each exactly chunkSize long
	cur  []Event   // open chunk being filled
}

// NewTracer returns an empty tracer with an unbound (zero) clock; Bind
// attaches the scheduler clock once the deployment exists.
func NewTracer() *Tracer {
	return &Tracer{
		clock:    func() time.Duration { return 0 },
		nameIDs:  make(map[string]NameID),
		trackIDs: make(map[string]TrackID),
	}
}

// Bind attaches the virtual clock (typically sim.Scheduler.Now). Events
// recorded through Begin/End/Instant use it; explicit-timestamp methods
// (CompleteAt and friends) do not need it.
func (t *Tracer) Bind(clock func() time.Duration) {
	if t == nil || clock == nil {
		return
	}
	t.clock = clock
}

// Track interns a timeline name, returning a stable small ID. Repeated
// calls with the same name return the same ID. Returns 0 on a nil
// tracer (recording through a nil tracer is a no-op anyway).
func (t *Tracer) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.trackIDs[name]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.trackIDs[name] = id
	return id
}

// Name interns an event name. Interning happens at instrumentation
// setup, so the hot recording path never touches strings.
func (t *Tracer) Name(s string) NameID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.nameIDs[s]; ok {
		return id
	}
	id := NameID(len(t.names))
	t.names = append(t.names, s)
	t.nameIDs[s] = id
	return id
}

// TrackName resolves a track ID back to its registered name.
func (t *Tracer) TrackName(id TrackID) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.tracks) {
		return ""
	}
	return t.tracks[id]
}

// NameString resolves a name ID back to its registered string.
func (t *Tracer) NameString(id NameID) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// record appends one event, sealing the current chunk when full.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cur) == chunkSize {
		t.full = append(t.full, t.cur)
		t.cur = make([]Event, 0, chunkSize)
	}
	if t.cur == nil {
		t.cur = make([]Event, 0, chunkSize)
	}
	t.cur = append(t.cur, ev)
}

// Span is an open complete-span handle — a stack value, never heap
// allocated. End it through Tracer.End.
type Span struct {
	track TrackID
	name  NameID
	start time.Duration
}

// Begin opens a span at the current virtual time.
func (t *Tracer) Begin(track TrackID, name NameID) Span {
	if t == nil {
		return Span{}
	}
	return Span{track: track, name: name, start: t.clock()}
}

// End records the span as a complete event ending now.
func (t *Tracer) End(sp Span) {
	if t == nil {
		return
	}
	now := t.clock()
	t.record(Event{TS: sp.start, Dur: now - sp.start, Track: sp.track, Name: sp.name, Phase: PhaseComplete})
}

// Complete records a complete span from start to the current time.
func (t *Tracer) Complete(track TrackID, name NameID, start time.Duration) {
	if t == nil {
		return
	}
	t.CompleteAt(track, name, start, t.clock())
}

// CompleteAt records a complete span with explicit bounds.
func (t *Tracer) CompleteAt(track TrackID, name NameID, start, end time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{TS: start, Dur: end - start, Track: track, Name: name, Phase: PhaseComplete})
}

// CompleteArg is CompleteAt with a numeric payload (block height, batch
// size) — numeric because formatting a per-event name would allocate.
func (t *Tracer) CompleteArg(track TrackID, name NameID, start, end time.Duration, arg uint64) {
	if t == nil {
		return
	}
	t.record(Event{TS: start, Dur: end - start, Track: track, Name: name, Phase: PhaseComplete, Arg: arg, HasArg: true})
}

// Instant records a point event at an explicit virtual time.
func (t *Tracer) Instant(track TrackID, name NameID, at time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{TS: at, Track: track, Name: name, Phase: PhaseInstant})
}

// InstantArg is Instant with a numeric payload.
func (t *Tracer) InstantArg(track TrackID, name NameID, at time.Duration, arg uint64) {
	if t == nil {
		return
	}
	t.record(Event{TS: at, Track: track, Name: name, Phase: PhaseInstant, Arg: arg, HasArg: true})
}

// AsyncBegin opens an id-matched async span: async events with the same
// ID form one logical flow that may hop across tracks (a packet's
// lifecycle spanning two chains).
func (t *Tracer) AsyncBegin(id uint64, track TrackID, name NameID, at time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{TS: at, ID: id, Track: track, Name: name, Phase: PhaseAsyncBegin})
}

// AsyncInstant records a point within an async flow (a lifecycle step).
func (t *Tracer) AsyncInstant(id uint64, track TrackID, name NameID, at time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{TS: at, ID: id, Track: track, Name: name, Phase: PhaseAsyncInstant})
}

// AsyncEnd closes an async flow.
func (t *Tracer) AsyncEnd(id uint64, track TrackID, name NameID, at time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{TS: at, ID: id, Track: track, Name: name, Phase: PhaseAsyncEnd})
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.full)*chunkSize + len(t.cur)
}

// Events visits every recorded event in recording order. The chunk
// list is snapshotted under the lock and walked outside it, so the
// callback may safely call back into the tracer (NameString etc.).
func (t *Tracer) Events(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	full := t.full
	cur := t.cur
	t.mu.Unlock()
	for _, chunk := range full {
		for _, ev := range chunk {
			fn(ev)
		}
	}
	for _, ev := range cur {
		fn(ev)
	}
}

// Obs bundles one run's tracer and registry. A nil *Obs (the default)
// disables all instrumentation; components hold nil inner pointers and
// every recording call no-ops.
type Obs struct {
	Tracer *Tracer
	Reg    *Registry
}

// New creates an observability bundle with an unbound clock.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Reg: NewRegistry()}
}

// Bind attaches the deployment's virtual clock to the tracer.
func (o *Obs) Bind(clock func() time.Duration) {
	if o == nil {
		return
	}
	o.Tracer.Bind(clock)
}
