// Chrome trace-event export: the JSON Object Format ({"traceEvents":
// [...]}) understood by Perfetto and chrome://tracing. The writer is
// hand-rolled so the byte stream is fully deterministic — fixed field
// order, fixed float formatting — and a same-seed rerun produces an
// identical file.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteChrome writes every recorded event as Chrome trace-event JSON.
// Tracks become threads of a single process (pid 1) named after their
// registered names; virtual timestamps map to microseconds with
// nanosecond precision. Complete/instant events carry category "sim",
// async flows category "pkt" (the viewer scopes async IDs per
// category).
//
// Events are emitted in a canonical total order — (TS, phase, track,
// name, id, arg, dur) — rather than recording order, so two runs that
// record the same multiset of events produce byte-identical documents
// even when the recording interleaving differs (parallel vs serial
// execution of the same deployment).
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	sep()
	bw.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"ibcbench"}}`)
	if t != nil {
		for id, name := range t.tracks {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				id+1, quoteJSON(name))
		}
		for _, ev := range t.canonicalEvents() {
			sep()
			writeChromeEvent(bw, t, ev)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// canonicalEvents collects every recorded event sorted by the canonical
// total key. The key covers every Event field, so the order depends
// only on the multiset of events, never on recording order.
func (t *Tracer) canonicalEvents() []Event {
	evs := make([]Event, 0, t.Len())
	t.Events(func(ev Event) { evs = append(evs, ev) })
	sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })
	return evs
}

// phaseRank fixes an arbitrary but stable ordering between phases that
// share a timestamp: begins sort before the activity they bracket, ends
// after.
func phaseRank(p byte) int {
	switch p {
	case PhaseAsyncBegin:
		return 0
	case PhaseComplete:
		return 1
	case PhaseInstant:
		return 2
	case PhaseAsyncInstant:
		return 3
	case PhaseAsyncEnd:
		return 4
	}
	return 5
}

func eventLess(a, b Event) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	if ra, rb := phaseRank(a.Phase), phaseRank(b.Phase); ra != rb {
		return ra < rb
	}
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Arg != b.Arg {
		return a.Arg < b.Arg
	}
	if a.Dur != b.Dur {
		return a.Dur < b.Dur
	}
	return a.HasArg && !b.HasArg
}

func writeChromeEvent(bw *bufio.Writer, t *Tracer, ev Event) {
	bw.WriteString(`{"ph":"`)
	bw.WriteByte(ev.Phase)
	bw.WriteString(`","pid":1,"tid":`)
	bw.WriteString(strconv.Itoa(int(ev.Track) + 1))
	bw.WriteString(`,"ts":`)
	writeMicros(bw, ev.TS)
	if ev.Phase == PhaseComplete {
		bw.WriteString(`,"dur":`)
		writeMicros(bw, ev.Dur)
	}
	switch ev.Phase {
	case PhaseAsyncBegin, PhaseAsyncInstant, PhaseAsyncEnd:
		bw.WriteString(`,"cat":"pkt","id":"0x`)
		bw.WriteString(strconv.FormatUint(ev.ID, 16))
		bw.WriteString(`"`)
	default:
		bw.WriteString(`,"cat":"sim"`)
	}
	if ev.Phase == PhaseInstant {
		bw.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	bw.WriteString(`,"name":`)
	bw.WriteString(quoteJSON(t.NameString(ev.Name)))
	if ev.HasArg {
		bw.WriteString(`,"args":{"v":`)
		bw.WriteString(strconv.FormatUint(ev.Arg, 10))
		bw.WriteString(`}`)
	}
	bw.WriteString(`}`)
}

// writeMicros renders a virtual duration as microseconds with fixed
// three-decimal (nanosecond) precision.
func writeMicros(bw *bufio.Writer, d time.Duration) {
	ns := d.Nanoseconds()
	neg := ns < 0
	if neg {
		ns = -ns
		bw.WriteByte('-')
	}
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	bw.WriteByte('.')
	frac := ns % 1000
	bw.WriteByte(byte('0' + frac/100))
	bw.WriteByte(byte('0' + frac/10%10))
	bw.WriteByte(byte('0' + frac%10))
}

// quoteJSON escapes a name for embedding as a JSON string. Names are
// ASCII identifiers in practice; the escaper still covers quotes,
// backslashes and control bytes for safety.
func quoteJSON(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c < 0x20:
			out = append(out, fmt.Sprintf(`\u%04x`, c)...)
		default:
			out = append(out, c)
		}
	}
	return string(append(out, '"'))
}
