package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerInterning(t *testing.T) {
	tr := NewTracer()
	a := tr.Track("chain/ibc-0")
	b := tr.Track("chain/ibc-1")
	if a == b {
		t.Fatalf("distinct tracks interned to the same ID %d", a)
	}
	if got := tr.Track("chain/ibc-0"); got != a {
		t.Fatalf("re-interning track: got %d want %d", got, a)
	}
	if tr.TrackName(a) != "chain/ibc-0" {
		t.Fatalf("TrackName(%d) = %q", a, tr.TrackName(a))
	}
	n := tr.Name("block")
	if got := tr.Name("block"); got != n {
		t.Fatalf("re-interning name: got %d want %d", got, n)
	}
	if tr.NameString(n) != "block" {
		t.Fatalf("NameString(%d) = %q", n, tr.NameString(n))
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })
	track := tr.Track("chain/ibc-0")
	name := tr.Name("block")

	now = 100 * time.Millisecond
	sp := tr.Begin(track, name)
	now = 150 * time.Millisecond
	tr.End(sp)
	tr.InstantArg(track, tr.Name("fault"), 200*time.Millisecond, 7)
	tr.AsyncBegin(42, track, tr.Name("pkt"), 210*time.Millisecond)
	tr.AsyncEnd(42, track, tr.Name("pkt"), 220*time.Millisecond)

	if tr.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tr.Len())
	}
	var evs []Event
	tr.Events(func(ev Event) { evs = append(evs, ev) })
	if evs[0].Phase != PhaseComplete || evs[0].TS != 100*time.Millisecond || evs[0].Dur != 50*time.Millisecond {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Phase != PhaseInstant || !evs[1].HasArg || evs[1].Arg != 7 {
		t.Fatalf("instant event = %+v", evs[1])
	}
	if evs[2].Phase != PhaseAsyncBegin || evs[2].ID != 42 {
		t.Fatalf("async begin = %+v", evs[2])
	}
}

// TestNilSafety pins that a nil tracer/registry accepts every recording
// call — disabled runs instrument unconditionally through nil pointers.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	track := tr.Track("x")
	name := tr.Name("y")
	tr.End(tr.Begin(track, name))
	tr.CompleteArg(track, name, 0, time.Second, 1)
	tr.Instant(track, name, 0)
	tr.AsyncBegin(1, track, name, 0)
	tr.Events(func(Event) { t.Fatal("nil tracer has events") })
	if tr.Len() != 0 || tr.Summary() != nil {
		t.Fatal("nil tracer not empty")
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(2)
	reg.SetCounter("c", 3)
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}

	var o *Obs
	o.Bind(func() time.Duration { return 0 })
}

// TestSpanRecordSteadyStateAllocs pins the zero-alloc recording
// guarantee on hot paths: spans, instants and async events allocate
// nothing once the current chunk has room. The tracer is pre-warmed past
// the first chunk allocation and the loop stays far from a boundary
// (chunkSize is 8192; the test records 600 events).
func TestSpanRecordSteadyStateAllocs(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.Bind(func() time.Duration { now += time.Microsecond; return now })
	track := tr.Track("chain/ibc-0")
	name := tr.Name("block")
	for i := 0; i < 64; i++ {
		tr.CompleteArg(track, name, now, now+time.Microsecond, uint64(i))
	}
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin(track, name)
		tr.End(sp)
		tr.InstantArg(track, name, now, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state span recording allocates %.1f/op, want 0", allocs)
	}
}

func TestChunkBoundary(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	name := tr.Name("n")
	total := chunkSize*2 + 17
	for i := 0; i < total; i++ {
		tr.Instant(track, name, time.Duration(i))
	}
	if tr.Len() != total {
		t.Fatalf("Len() = %d, want %d", tr.Len(), total)
	}
	i := 0
	tr.Events(func(ev Event) {
		if ev.TS != time.Duration(i) {
			t.Fatalf("event %d out of order: ts=%v", i, ev.TS)
		}
		i++
	})
	if i != total {
		t.Fatalf("visited %d events, want %d", i, total)
	}
}

func TestChromeWriterValidJSON(t *testing.T) {
	tr := NewTracer()
	track := tr.Track(`chain/we"ird\name`)
	name := tr.Name("block")
	tr.CompleteArg(track, name, 100*time.Millisecond, 150*time.Millisecond, 3)
	tr.Instant(track, tr.Name("fault"), 200*time.Millisecond)
	tr.AsyncBegin(0xabc, track, tr.Name("pkt"), 210*time.Millisecond)
	tr.AsyncInstant(0xabc, track, tr.Name("Recv build"), 215*time.Millisecond)
	tr.AsyncEnd(0xabc, track, tr.Name("pkt"), 220*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata (process + 1 thread) + 5 recorded events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d trace events, want 7", len(doc.TraceEvents))
	}
	var x map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			x = ev
		}
	}
	if x == nil {
		t.Fatal("no complete event in output")
	}
	if x["ts"].(float64) != 100000 || x["dur"].(float64) != 50000 {
		t.Fatalf("complete event ts/dur = %v/%v, want 100000/50000 µs", x["ts"], x["dur"])
	}
	if x["args"].(map[string]any)["v"].(float64) != 3 {
		t.Fatalf("complete event args = %v", x["args"])
	}
}

func TestChromeWriterDeterministic(t *testing.T) {
	build := func() []byte {
		tr := NewTracer()
		track := tr.Track("chain/ibc-0")
		for i := 0; i < 100; i++ {
			tr.CompleteArg(track, tr.Name("block"), time.Duration(i)*time.Second,
				time.Duration(i)*time.Second+time.Millisecond, uint64(i))
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical recordings produced different chrome documents")
	}
}

func TestSummarySelfTime(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("chain/ibc-0")
	block := tr.Name("block")
	exec := tr.Name("exec")
	// block [0,100ms] containing exec [60ms,100ms]; second block with no
	// child.
	tr.CompleteAt(track, block, 0, 100*time.Millisecond)
	tr.CompleteAt(track, exec, 60*time.Millisecond, 100*time.Millisecond)
	tr.CompleteAt(track, block, 200*time.Millisecond, 250*time.Millisecond)

	rows := tr.Summary()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	if rows[0].Name != "block" || rows[0].Subsystem != "chain" {
		t.Fatalf("top row = %+v", rows[0])
	}
	if rows[0].Total != 150*time.Millisecond {
		t.Fatalf("block total = %v, want 150ms", rows[0].Total)
	}
	if rows[0].Self != 110*time.Millisecond {
		t.Fatalf("block self = %v, want 110ms (100-40 child + 50)", rows[0].Self)
	}
	if rows[1].Name != "exec" || rows[1].Total != 40*time.Millisecond || rows[1].Self != 40*time.Millisecond {
		t.Fatalf("exec row = %+v", rows[1])
	}
	var buf bytes.Buffer
	WriteSummary(&buf, rows, 20)
	if buf.Len() == 0 {
		t.Fatal("empty summary table")
	}
}

// TestSummaryTopCapAndTieOrder pins the -trace-summary contract the
// CLI's -top flag relies on: equal-total rows tie-break by subsystem
// then name (never recording order), a positive top caps the table,
// and top <= 0 means unlimited.
func TestSummaryTopCapAndTieOrder(t *testing.T) {
	tr := NewTracer()
	// Three names with identical 10ms totals, recorded in scrambled
	// order across two subsystems.
	for i, spec := range []struct{ track, name string }{
		{"relayer/r0", "scan"},
		{"chain/ibc-1", "exec"},
		{"chain/ibc-0", "block"},
	} {
		track := tr.Track(spec.track)
		start := time.Duration(i) * time.Second
		tr.CompleteAt(track, tr.Name(spec.name), start, start+10*time.Millisecond)
	}
	rows := tr.Summary()
	var got []string
	for _, r := range rows {
		got = append(got, r.Subsystem+"/"+r.Name)
	}
	want := []string{"chain/block", "chain/exec", "relayer/scan"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order = %v, want %v", got, want)
		}
	}

	lines := func(top int) int {
		var buf bytes.Buffer
		WriteSummary(&buf, rows, top)
		return strings.Count(buf.String(), "\n")
	}
	if n := lines(2); n != 3 { // header + 2 rows
		t.Fatalf("top=2 wrote %d lines, want 3", n)
	}
	if n := lines(0); n != 4 { // header + all 3 rows
		t.Fatalf("top=0 wrote %d lines, want 4", n)
	}
}
