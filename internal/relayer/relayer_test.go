package relayer

import (
	"testing"
	"time"

	"ibcbench/internal/chain"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/metrics"
	"ibcbench/internal/workload"
)

// env assembles testbed + relayer(s) + workload generator.
type env struct {
	tb       *chain.Testbed
	relayers []*Relayer
	tracker  *metrics.Tracker
	gen      *workload.Generator
}

func newEnv(t *testing.T, seed int64, relayers int, fullProofs bool) *env {
	t.Helper()
	cfg := chain.DefaultTestbed(seed)
	cfg.FullProofs = fullProofs
	tb := chain.NewTestbed(cfg)
	tracker := metrics.NewTracker()
	e := &env{tb: tb, tracker: tracker}
	for i := 0; i < relayers; i++ {
		rcfg := DefaultConfig("hermes-" + string(rune('a'+i)))
		rcfg.Tracker = tracker
		r := New(tb.Sched, tb.RNG, rcfg, tb.Pair)
		r.Start()
		e.relayers = append(e.relayers, r)
	}
	e.gen = workload.New(tb.Sched, tb.RNG, tb.Pair, e.relayers[0].EndpointRPC(tb.Pair.A.ID), tracker)
	tb.Start()
	return e
}

func TestSingleTransferCompletes(t *testing.T) {
	e := newEnv(t, 1, 1, false)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(1) })
	if err := e.tb.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	counts := e.tracker.CompletionCounts()
	if counts[metrics.StatusCompleted] != 1 {
		t.Fatalf("completion counts = %v", counts)
	}
	// The paper reports ~21s for one transfer (3 txs across both chains).
	lat := e.tracker.CompletionTimes()
	if len(lat) != 1 || lat[0] < 10*time.Second || lat[0] > 40*time.Second {
		t.Fatalf("latency = %v, want ~21s", lat)
	}
	// Funds moved: 1 voucher minted on B.
	voucher := transfer.VoucherPrefix("transfer", "channel-0") + "uatom"
	if got := e.tb.Pair.B.App.Bank().Supply(voucher); got != 1 {
		t.Fatalf("voucher supply = %d", got)
	}
}

func TestBatchTransfersComplete(t *testing.T) {
	e := newEnv(t, 2, 1, false)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(500) })
	if err := e.tb.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	counts := e.tracker.CompletionCounts()
	if counts[metrics.StatusCompleted] != 500 {
		t.Fatalf("completion counts = %v (relayer stats %+v)", counts, e.relayers[0].Stats())
	}
	st := e.relayers[0].Stats()
	if st.RecvDelivered != 500 || st.AcksDelivered != 500 {
		t.Fatalf("relayer stats = %+v", st)
	}
}

func TestFullProofModeCompletes(t *testing.T) {
	e := newEnv(t, 3, 1, true)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(120) })
	if err := e.tb.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	counts := e.tracker.CompletionCounts()
	if counts[metrics.StatusCompleted] != 120 {
		t.Fatalf("full-proof completion = %v (stats %+v)", counts, e.relayers[0].Stats())
	}
}

func TestTwoRelayersRedundancy(t *testing.T) {
	e := newEnv(t, 4, 2, false)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(300) })
	if err := e.tb.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	counts := e.tracker.CompletionCounts()
	if counts[metrics.StatusCompleted] != 300 {
		t.Fatalf("completion = %v", counts)
	}
	// Both relayers raced: at least one saw redundant-packet failures.
	total := e.relayers[0].Stats().RedundantErrors + e.relayers[1].Stats().RedundantErrors
	if total == 0 {
		t.Fatalf("no redundant-packet errors with two relayers (a=%+v b=%+v)",
			e.relayers[0].Stats(), e.relayers[1].Stats())
	}
}

func TestRelayerCrashLeavesPartials(t *testing.T) {
	e := newEnv(t, 5, 1, false)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(500) })
	// Crash the relayer mid-flight, before acks complete.
	e.tb.Sched.At(14*time.Second, func() { e.relayers[0].Stop() })
	if err := e.tb.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	counts := e.tracker.CompletionCounts()
	if counts[metrics.StatusCompleted] == 500 {
		t.Fatal("all transfers completed despite relayer crash")
	}
	if counts[metrics.StatusInitiated]+counts[metrics.StatusPartial] == 0 {
		t.Fatalf("no stranded transfers: %v", counts)
	}
}

func TestStepOrderingInvariant(t *testing.T) {
	e := newEnv(t, 6, 1, false)
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(150) })
	if err := e.tb.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// For every completed packet the step times must be monotone in the
	// protocol order.
	order := []metrics.Step{
		metrics.StepTransferBroadcast, metrics.StepTransferExtraction,
		metrics.StepTransferDataPull, metrics.StepRecvBuild,
		metrics.StepRecvBroadcast, metrics.StepRecvConfirmation,
		metrics.StepRecvDataPull, metrics.StepAckBuild,
		metrics.StepAckBroadcast, metrics.StepAckConfirmation,
	}
	for seq := uint64(1); seq <= 150; seq++ {
		key := metrics.PacketKey{SrcChain: "ibc-0", Channel: "channel-0", Sequence: seq}
		var prev time.Duration
		for _, st := range order {
			at, ok := e.tracker.StepTime(key, st)
			if !ok {
				t.Fatalf("packet %d missing step %v", seq, st)
			}
			if at < prev {
				t.Fatalf("packet %d: step %v at %v before previous %v", seq, st, at, prev)
			}
			prev = at
		}
	}
}

// TestBatchBufferRecycling pins the batch-build slice reuse: after an
// initial warmup the per-relayer packet and ack free lists stop growing
// — every submitted batch returns its backing slice, so a long run
// allocates a bounded number of buffers regardless of blocks scanned.
func TestBatchBufferRecycling(t *testing.T) {
	e := newEnv(t, 11, 1, false)
	r := e.relayers[0]
	e.tb.Sched.At(time.Second, func() { e.gen.SubmitBatch(50) })
	if err := e.tb.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	warmPkt, warmAck := len(r.pktBuf), len(r.ackBuf)
	if warmPkt == 0 || warmAck == 0 {
		t.Fatalf("free lists empty after warmup (pkt=%d ack=%d) — buffers not returned", warmPkt, warmAck)
	}
	e.tb.Sched.At(e.tb.Sched.Now()+time.Second, func() { e.gen.SubmitBatch(50) })
	if err := e.tb.Run(e.tb.Sched.Now() + 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := e.tracker.CompletionCounts()[metrics.StatusCompleted]; got != 100 {
		t.Fatalf("completed = %d, want 100", got)
	}
	if len(r.pktBuf) != warmPkt || len(r.ackBuf) != warmAck {
		t.Fatalf("free lists grew after warmup: pkt %d->%d ack %d->%d",
			warmPkt, len(r.pktBuf), warmAck, len(r.ackBuf))
	}
}
