package relayer

import (
	"testing"
	"time"

	"ibcbench/internal/chain"
	"ibcbench/internal/metrics"
	"ibcbench/internal/tendermint/rpc"
	"ibcbench/internal/workload"
)

// TestClearRecoversDroppedFrames drives the clear-interval rescan path: a
// subscription shim replaces the frames of a few source heights with
// "failed to collect events" errors, and the relayer's periodic clearing
// pass must rescan those blocks and deliver every packet anyway. The
// pinned counters and completion span fingerprint the rescan's
// virtual-time behaviour (guarding the shared-scan refactor).
func TestClearRecoversDroppedFrames(t *testing.T) {
	tb := chain.NewTestbed(chain.DefaultTestbed(31))
	tracker := metrics.NewTracker()
	rcfg := DefaultConfig("hermes-clear")
	rcfg.Tracker = tracker
	rcfg.ClearIntervalBlocks = 2
	r := New(tb.Sched, tb.RNG, rcfg, tb.Pair)
	// Subscribe through a shim instead of r.Start(): frames of heights
	// 2-6 on chain A are corrupted into frame-too-large errors.
	drop := func(h int64) bool { return h >= 2 && h <= 6 }
	r.a.rpc.Subscribe(r.host, func(f *rpc.EventFrame) {
		if drop(f.Height) {
			r.onFrame(r.a, r.b, &rpc.EventFrame{Height: f.Height, BlockTime: f.BlockTime, Err: rpc.ErrFrameTooLarge})
			return
		}
		r.onFrame(r.a, r.b, f)
	})
	r.b.rpc.Subscribe(r.host, func(f *rpc.EventFrame) { r.onFrame(r.b, r.a, f) })
	gen := workload.New(tb.Sched, tb.RNG, tb.Pair, r.EndpointRPC("ibc-0"), tracker)
	tb.Start()
	tb.Sched.At(time.Second, func() { gen.SubmitBatch(300) })
	if err := tb.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	counts := tracker.CompletionCounts()
	st := r.Stats()
	lat := tracker.CompletionTimes()
	t.Logf("counts=%v stats=%+v nlat=%d first=%v last=%v", counts, st, len(lat), lat[0], lat[len(lat)-1])
	if counts[metrics.StatusCompleted] != 300 {
		t.Fatalf("completion = %v (stats %+v)", counts, st)
	}
	if st.FramesLost != 5 {
		t.Fatalf("FramesLost = %d, want 5", st.FramesLost)
	}
	// Exact virtual-time pins: the rescan must stay byte-identical to the
	// pinned run, not just functionally correct. Re-captured when the
	// network moved to per-sender-host latency streams (the partition-
	// independent draw order the parallel runner relies on).
	if first, last := lat[0], lat[len(lat)-1]; first != 29792861428*time.Nanosecond || last != 30143147904*time.Nanosecond {
		t.Fatalf("completion span = [%v, %v], want [29.792861428s, 30.143147904s]", first, last)
	}
}
