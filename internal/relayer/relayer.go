// Package relayer implements a Hermes-style IBC relayer (§II-C, Fig. 4):
// a Supervisor subscribing to chain events, a Packet Command Worker
// scheduling per-block batches, Packet Workers pulling transaction data
// and building IBC messages, and Chain Endpoints submitting transactions.
//
// The model reproduces the paper's measured behaviours:
//   - block-batch processing: every step runs for all of a block's
//     messages before the next step starts (Fig. 12's staircase);
//   - serial RPC data pulls dominating latency (69% of transfer time);
//   - at most 100 messages per transaction;
//   - per-account sequence tracking with "account sequence mismatch"
//     recovery;
//   - uncoordinated multi-relayer redundancy: "packet messages are
//     redundant" failures when two relayers serve one channel (§IV-A);
//   - WebSocket "failed to collect events" frames leaving packets stuck
//     when the clear interval is zero (§V).
package relayer

import (
	"errors"
	"sort"
	"strings"
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/chain"
	"ibcbench/internal/eventindex"
	"ibcbench/internal/ibc"
	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/rpc"
	"ibcbench/internal/tendermint/store"
)

// Config parameterizes one relayer instance.
type Config struct {
	// Name distinguishes relayer instances (account names derive from it).
	Name string
	// MaxMsgsPerTx is Hermes' batching limit (paper: 100).
	MaxMsgsPerTx int
	// BuildCostPerMsg is CPU time to assemble one outgoing message.
	BuildCostPerMsg time.Duration
	// ParseCostPerMsg is CPU time to extract one message from events.
	ParseCostPerMsg time.Duration
	// BatchOverhead is fixed scheduling cost per block of work.
	BatchOverhead time.Duration
	// ConfirmPoll is the confirmation polling interval.
	ConfirmPoll time.Duration
	// ConfirmAttempts bounds confirmation polling per transaction.
	ConfirmAttempts int
	// ClearIntervalBlocks re-scans for missed packets every N source
	// blocks (0 disables clearing, the paper's stuck-packet setting).
	ClearIntervalBlocks int64
	// Tracker receives per-packet step events (may be nil).
	Tracker *metrics.Tracker
	// Obs attaches the run's observability sinks (nil = disabled): spans
	// for the scan -> build -> submit -> clear pipeline plus a backlog
	// histogram and retry counters.
	Obs *obs.Obs
}

// DefaultConfig returns the calibrated Hermes model.
func DefaultConfig(name string) Config {
	return Config{
		Name:            name,
		MaxMsgsPerTx:    simconf.RelayerMaxMsgsPerTx,
		BuildCostPerMsg: simconf.RelayerBuildCostPerMsg,
		ParseCostPerMsg: simconf.RelayerEventParseCostPerMsg,
		BatchOverhead:   simconf.RelayerSchedulingOverheadPerBatch,
		ConfirmPoll:     simconf.RelayerConfirmPollInterval,
		ConfirmAttempts: 120,
	}
}

// Stats aggregates the relayer's error and work counters.
type Stats struct {
	RecvDelivered     uint64
	AcksDelivered     uint64
	TimeoutsDelivered uint64
	RedundantErrors   uint64
	SeqMismatchErrors uint64
	FramesLost        uint64
	TxsSubmitted      uint64
	TxsFailed         uint64
	// Retries counts submission re-attempts (sequence-mismatch recovery
	// plus network backoff), before a batch is failed or released.
	Retries uint64
}

type pktID struct {
	srcChain string
	channel  string
	seq      uint64
}

// endpoint is one Chain Endpoint (Fig. 4): the relayer's view of and
// submission pipeline into one chain.
type endpoint struct {
	chain    *chain.Chain
	rpc      *rpc.Server
	clientID string // client on this chain tracking the counterparty
	channel  string // this side's channel of the relayed link
	account  string

	seq     uint64
	seqInit bool

	// clientHeights tracks the counterparty heights this chain's client
	// has consensus states for (relayer-local, optimistically advanced at
	// submission and rolled back when the carrying transaction fails).
	clientHeights map[int64]bool

	// height is the latest height observed via events.
	height int64

	// outbox holds built messages awaiting submission, each tagged with
	// its packet and required proof height.
	outbox []outMsg

	// flushing guards the sequential submission loop.
	flushing bool
}

type outMsg struct {
	msg         app.Msg
	packet      ibc.Packet
	proofHeight int64
	step        metrics.Step // broadcast step to record on acceptance
	retried     bool
}

// Relayer is one Hermes instance relaying both directions of a channel.
type Relayer struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	cfg   Config
	host  netem.Host

	// cpu serializes the relayer's own processing (Hermes handles blocks
	// sequentially).
	cpu *sim.SerialResource

	a, b *endpoint

	// seenRecv / seenAck dedupe packets this relayer already handled.
	seenRecv map[pktID]bool
	seenAck  map[pktID]bool

	// pendingRecv tracks packets extracted but not yet known delivered,
	// for timeout detection.
	pendingRecv map[pktID]ibc.Packet

	// missed heights per source endpoint for the clearing loop.
	missedA []int64
	missedB []int64

	// pullQueue serializes data pulls: Hermes issues its RPC queries one
	// at a time and waits for each response (§IV-B).
	pullQueue   []func(func())
	pullRunning bool

	// Batch-build freelists: the fresh-packet/ack staging slices live
	// only until the build closure consumes them (contents are copied
	// into outbox messages by value), so steady-state clearing passes
	// reuse them instead of allocating per block. clearSeen is the
	// clear pass's height-dedupe scratch map, reused likewise.
	pktBuf    [][]ibc.Packet
	ackBuf    [][]eventindex.AckWrite
	clearSeen map[int64]bool

	stats   Stats
	stopped bool

	// tr + interned IDs for pipeline spans; backlog samples outbox depth
	// at each flush. All nil-safe when observability is disabled.
	tr         *obs.Tracer
	otrack     obs.TrackID
	nScan      obs.NameID
	nBuildRecv obs.NameID
	nBuildAck  obs.NameID
	nSubmit    obs.NameID
	nClear     obs.NameID
	backlog    *obs.Histogram
}

// New wires a relayer to a linked pair. Each relayer gets its own full
// node on each chain (the paper's one-relayer-per-machine deployment)
// and funded relayer accounts.
func New(sched *sim.Scheduler, rng *sim.RNG, cfg Config, pair *chain.Pair) *Relayer {
	if cfg.MaxMsgsPerTx <= 0 {
		cfg.MaxMsgsPerTx = simconf.RelayerMaxMsgsPerTx
	}
	if cfg.ConfirmPoll <= 0 {
		cfg.ConfirmPoll = simconf.RelayerConfirmPollInterval
	}
	if cfg.ConfirmAttempts <= 0 {
		cfg.ConfirmAttempts = 120
	}
	r := &Relayer{
		sched: sched,
		// Derive a private nonce stream: submission nonces then depend
		// only on this relayer's own submit order, not on how draws from
		// a shared stream interleave across relayers (which the parallel
		// runner could not reproduce).
		rng:         sim.NewRNG(rng.Int63()),
		cfg:         cfg,
		host:        netem.Host("relayer/" + cfg.Name),
		cpu:         sim.NewSerialResource(sched),
		seenRecv:    make(map[pktID]bool),
		seenAck:     make(map[pktID]bool),
		pendingRecv: make(map[pktID]ibc.Packet),
	}
	if cfg.Obs != nil {
		r.tr = cfg.Obs.Tracer
		r.otrack = r.tr.Track("relayer/" + cfg.Name)
		r.nScan = r.tr.Name("scan")
		r.nBuildRecv = r.tr.Name("build-recv")
		r.nBuildAck = r.tr.Name("build-ack")
		r.nSubmit = r.tr.Name("submit")
		r.nClear = r.tr.Name("clear-pass")
		r.backlog = cfg.Obs.Reg.Histogram("relayer/" + cfg.Name + "/backlog")
	}
	acctA := cfg.Name + "-on-" + pair.A.ID
	acctB := cfg.Name + "-on-" + pair.B.ID
	pair.A.App.CreateAccount(acctA, app.Coin{Denom: "stake", Amount: 1 << 50})
	pair.B.App.CreateAccount(acctB, app.Coin{Denom: "stake", Amount: 1 << 50})
	ncfg := rpc.DefaultConfig()
	// Hermes tolerates long query latencies against its local full node;
	// the serial query queue regularly exceeds the default client timeout.
	ncfg.ClientTimeout = 2 * time.Minute
	r.a = &endpoint{chain: pair.A, rpc: pair.A.AddRPCNode(ncfg), clientID: pair.ClientOnA, channel: pair.ChannelAB, account: acctA, clientHeights: make(map[int64]bool)}
	r.b = &endpoint{chain: pair.B, rpc: pair.B.AddRPCNode(ncfg), clientID: pair.ClientOnB, channel: pair.ChannelBA, account: acctB, clientHeights: make(map[int64]bool)}
	return r
}

// Host reports the relayer's network address (for workload submission).
func (r *Relayer) Host() netem.Host { return r.host }

// Name reports the relayer's configured instance name.
func (r *Relayer) Name() string { return r.cfg.Name }

// Stats returns a copy of the error/work counters.
func (r *Relayer) Stats() Stats { return r.stats }

// EndpointRPC returns the relayer's full node on the given chain, used
// by the workload connector to submit transfers "via the relayer CLI".
func (r *Relayer) EndpointRPC(chainID string) *rpc.Server {
	if r.a.chain.ID == chainID {
		return r.a.rpc
	}
	return r.b.rpc
}

// Start subscribes to both chains (the Supervisor of Fig. 4).
func (r *Relayer) Start() {
	r.a.rpc.Subscribe(r.host, func(f *rpc.EventFrame) { r.onFrame(r.a, r.b, f) })
	r.b.rpc.Subscribe(r.host, func(f *rpc.EventFrame) { r.onFrame(r.b, r.a, f) })
}

// Stop makes the relayer ignore all future events (crash injection).
func (r *Relayer) Stop() { r.stopped = true }

// Resume restarts a stopped relayer.
func (r *Relayer) Resume() { r.stopped = false }

// Stopped reports whether the relayer is currently paused — a crashed
// process answers no health probes (failover supervisors ping this).
func (r *Relayer) Stopped() bool { return r.stopped }

// addMissed queues a source height for the clearing pass.
func (r *Relayer) addMissed(src *endpoint, h int64) {
	if src == r.a {
		r.missedA = append(r.missedA, h)
	} else {
		r.missedB = append(r.missedB, h)
	}
}

// onFrame is the Supervisor receiving one block's events from src.
func (r *Relayer) onFrame(src, dst *endpoint, frame *rpc.EventFrame) {
	if r.stopped {
		return
	}
	if r.cfg.ClearIntervalBlocks > 0 && frame.Height > src.height+1 {
		// A height gap means whole frames never arrived — dropped by a
		// network partition, lost while the process was paused, or (for a
		// standby taking over mid-run) published before this relayer
		// subscribed. Queue every skipped height for the clearing pass;
		// the shared event index makes the re-scan one indexed query per
		// height instead of a per-relayer decode.
		for h := src.height + 1; h < frame.Height; h++ {
			r.addMissed(src, h)
		}
		r.scheduleClear(src, dst)
	}
	if frame.Height > src.height {
		src.height = frame.Height
	}
	if frame.Err != nil {
		// "Failed to collect events": the block's packets are invisible.
		r.stats.FramesLost++
		if r.cfg.ClearIntervalBlocks > 0 {
			r.addMissed(src, frame.Height)
			r.scheduleClear(src, dst)
		}
		r.checkTimeouts(src, dst)
		r.tryFlush(src)
		r.tryFlush(dst)
		return
	}
	be := frame.Events
	if be == nil {
		// Frames assembled without a shared index (hand-built in tests)
		// fall back to a local decode pass.
		be = eventindex.Decode(frame.Height, frame.BlockTime, frame.Txs)
	}
	r.processBlock(src, dst, be)
	// New destination-side heights unblock proof-height waits and may
	// expire pending packets.
	r.checkTimeouts(src, dst)
	r.tryFlush(src)
	r.tryFlush(dst)
}

// processBlock is the Packet Command Worker handling one block batch. It
// consumes the chain's shared event index: the per-channel packet records
// were decoded once at commit time, so co-located relayers never re-scan
// the block. The calibrated per-message parse cost is still charged in
// virtual time — Hermes pays it per instance — only the simulator's own
// redundant decode work is gone.
func (r *Relayer) processBlock(src, dst *endpoint, be *eventindex.BlockEvents) {
	// Message extraction: identify txs carrying work for our channel (on
	// a multi-channel chain, packets of other links are someone else's).
	var recvTxs, ackTxs []*eventindex.TxEvents
	for _, te := range be.Txs {
		if len(te.SendPackets(src.channel)) > 0 {
			recvTxs = append(recvTxs, te)
		}
		if len(te.Acks(src.channel)) > 0 {
			ackTxs = append(ackTxs, te)
		}
	}
	if len(recvTxs) == 0 && len(ackTxs) == 0 {
		return
	}
	parse := r.cfg.BatchOverhead + time.Duration(be.MsgCount)*r.cfg.ParseCostPerMsg
	r.cpu.Submit(parse, func() {
		now := r.sched.Now()
		if r.tr != nil {
			// The scan span covers the charged parse service time.
			r.tr.CompleteArg(r.otrack, r.nScan, now-parse, now, uint64(be.MsgCount))
		}
		// Record extraction + confirmation for every packet seen.
		for _, te := range recvTxs {
			for _, p := range te.SendPackets(src.channel) {
				key := r.keyOf(src, p)
				r.track(key, metrics.StepTransferExtraction, now)
				r.track(key, metrics.StepTransferConfirmation, now)
			}
		}
		for _, te := range ackTxs {
			for _, w := range te.Acks(src.channel) {
				key := r.keyOf(dst, w.Packet) // packet's source is the counterparty
				r.track(key, metrics.StepRecvExtraction, now)
				// The event subscription confirms commitment too; the
				// polling path below is a fallback (first write wins).
				r.track(key, metrics.StepRecvConfirmation, now)
			}
		}
		// Data pulls: one heavy query per tx, serial on the source RPC.
		for _, te := range recvTxs {
			r.pullTxData(src, 0, te, func() { r.buildRecvBatch(src, dst, te) })
		}
		for _, te := range ackTxs {
			r.pullTxData(src, 0, te, func() { r.buildAckBatch(src, dst, te) })
		}
	})
}

// pullTxData enqueues a heavy data-pull query on the relayer's serial
// pull queue (Hermes waits for each query response before issuing the
// next — §IV-B), retrying on timeouts. The response payload itself is
// already decoded in the event index; the pull pays the wire/service
// cost and fn consumes the indexed records.
func (r *Relayer) pullTxData(src *endpoint, attempt int, te *eventindex.TxEvents, fn func()) {
	r.enqueuePull(func(done func()) {
		r.doPull(src, attempt, te, fn, done)
	})
}

func (r *Relayer) enqueuePull(job func(func())) {
	r.pullQueue = append(r.pullQueue, job)
	r.runPulls()
}

func (r *Relayer) runPulls() {
	if r.pullRunning || len(r.pullQueue) == 0 {
		return
	}
	r.pullRunning = true
	job := r.pullQueue[0]
	r.pullQueue = r.pullQueue[1:]
	job(func() {
		r.pullRunning = false
		r.runPulls()
	})
}

func (r *Relayer) doPull(src *endpoint, attempt int, te *eventindex.TxEvents, fn func(), done func()) {
	if r.stopped || attempt > 10 {
		done()
		return
	}
	src.rpc.QueryTxData(r.host, te.Info.Tx.Hash(), func(_ *store.TxInfo, err error) {
		if r.stopped {
			done()
			return
		}
		if err != nil {
			r.sched.After(r.cfg.ConfirmPoll, func() { r.doPull(src, attempt+1, te, fn, done) })
			return
		}
		fn()
		done()
	})
}

// getPktBuf pops a pooled packet-staging slice (or makes one).
func (r *Relayer) getPktBuf(capHint int) []ibc.Packet {
	if n := len(r.pktBuf); n > 0 {
		buf := r.pktBuf[n-1]
		r.pktBuf[n-1] = nil
		r.pktBuf = r.pktBuf[:n-1]
		return buf[:0]
	}
	return make([]ibc.Packet, 0, capHint)
}

func (r *Relayer) putPktBuf(buf []ibc.Packet) { r.pktBuf = append(r.pktBuf, buf) }

// getAckBuf pops a pooled ack-staging slice (or makes one).
func (r *Relayer) getAckBuf(capHint int) []eventindex.AckWrite {
	if n := len(r.ackBuf); n > 0 {
		buf := r.ackBuf[n-1]
		r.ackBuf[n-1] = nil
		r.ackBuf = r.ackBuf[:n-1]
		return buf[:0]
	}
	return make([]eventindex.AckWrite, 0, capHint)
}

func (r *Relayer) putAckBuf(buf []eventindex.AckWrite) { r.ackBuf = append(r.ackBuf, buf) }

// buildRecvBatch turns one source tx's indexed send_packet records into
// MsgRecvPackets destined for dst. The index slice is shared across
// relayers and must not be mutated.
func (r *Relayer) buildRecvBatch(src, dst *endpoint, te *eventindex.TxEvents) {
	packets := te.SendPackets(src.channel)
	fresh := r.getPktBuf(len(packets))
	for _, p := range packets {
		id := pktID{src.chain.ID, p.SourceChannel, p.Sequence}
		if r.seenRecv[id] {
			continue
		}
		r.seenRecv[id] = true
		r.pendingRecv[id] = p
		// A packet already expired on the destination (typical when
		// clearing a backlog after a partition) would be rejected there;
		// leave it to the timeout path instead of building a doomed recv.
		if p.TimeoutHeight > 0 && dst.height >= p.TimeoutHeight {
			continue
		}
		fresh = append(fresh, p)
	}
	if len(fresh) == 0 {
		r.putPktBuf(fresh)
		return
	}
	now := r.sched.Now()
	for _, p := range fresh {
		r.track(r.keyOf(src, p), metrics.StepTransferDataPull, now)
	}
	build := time.Duration(len(fresh)) * r.cfg.BuildCostPerMsg
	r.cpu.Submit(build, func() {
		done := r.sched.Now()
		if r.tr != nil {
			r.tr.CompleteArg(r.otrack, r.nBuildRecv, done-build, done, uint64(len(fresh)))
		}
		proofHeight := te.Info.Height + 1
		for _, p := range fresh {
			r.track(r.keyOf(src, p), metrics.StepRecvBuild, done)
			dst.outbox = append(dst.outbox, outMsg{
				msg: ibc.MsgRecvPacket{
					Packet:          p,
					ProofCommitment: r.proveOn(src, proofHeight, ibc.PacketCommitmentKey(p.SourcePort, p.SourceChannel, p.Sequence), true),
					ProofHeight:     proofHeight,
					Relayer:         dst.account,
				},
				packet:      p,
				proofHeight: proofHeight,
				step:        metrics.StepRecvBroadcast,
			})
		}
		r.putPktBuf(fresh)
		r.tryFlush(dst)
	})
}

// buildAckBatch turns the indexed write_acknowledgement records on src
// (the packet destination) into MsgAcknowledgements for dst (the packet
// source).
func (r *Relayer) buildAckBatch(src, dst *endpoint, te *eventindex.TxEvents) {
	writes := te.Acks(src.channel)
	fresh := r.getAckBuf(len(writes))
	for _, w := range writes {
		id := pktID{dst.chain.ID, w.Packet.SourceChannel, w.Packet.Sequence}
		if r.seenAck[id] {
			continue
		}
		r.seenAck[id] = true
		delete(r.pendingRecv, id)
		fresh = append(fresh, w)
	}
	if len(fresh) == 0 {
		r.putAckBuf(fresh)
		return
	}
	now := r.sched.Now()
	for _, w := range fresh {
		r.track(r.keyOf(dst, w.Packet), metrics.StepRecvDataPull, now)
	}
	build := time.Duration(len(fresh)) * r.cfg.BuildCostPerMsg
	r.cpu.Submit(build, func() {
		done := r.sched.Now()
		if r.tr != nil {
			r.tr.CompleteArg(r.otrack, r.nBuildAck, done-build, done, uint64(len(fresh)))
		}
		proofHeight := te.Info.Height + 1
		for _, w := range fresh {
			p := w.Packet
			key := r.keyOf(dst, p)
			r.track(key, metrics.StepAckBuild, done)
			// Decode always pairs the event's ack bytes (possibly empty)
			// with its packet; the placeholder guards only a nil slice,
			// mirroring the pre-index fallback exactly.
			ack := w.Ack
			if ack == nil {
				ack = ibc.Acknowledgement{Result: []byte("AQ==")}.Bytes()
			}
			dst.outbox = append(dst.outbox, outMsg{
				msg: ibc.MsgAcknowledgement{
					Packet:      p,
					Ack:         ack,
					ProofAcked:  r.proveOn(src, proofHeight, ibc.PacketAckKey(p.DestPort, p.DestChannel, p.Sequence), true),
					ProofHeight: proofHeight,
					Relayer:     dst.account,
				},
				packet:      p,
				proofHeight: proofHeight,
				step:        metrics.StepAckBroadcast,
			})
		}
		r.putAckBuf(fresh)
		r.tryFlush(dst)
	})
}

// checkTimeouts builds MsgTimeouts on the packet source (dst here is the
// counterparty of src) for pending packets whose timeout elapsed on src.
func (r *Relayer) checkTimeouts(dstChain, srcChain *endpoint) {
	for id, p := range r.pendingRecv {
		if id.srcChain != srcChain.chain.ID {
			continue
		}
		expired := (p.TimeoutHeight > 0 && dstChain.height >= p.TimeoutHeight)
		if !expired {
			continue
		}
		delete(r.pendingRecv, id)
		proofHeight := dstChain.height + 1
		srcChain.outbox = append(srcChain.outbox, outMsg{
			msg: ibc.MsgTimeout{
				Packet:          p,
				ProofUnreceived: r.proveOn(dstChain, proofHeight, ibc.PacketReceiptKey(p.DestPort, p.DestChannel, p.Sequence), false),
				ProofHeight:     proofHeight,
				Relayer:         srcChain.account,
			},
			packet:      p,
			proofHeight: proofHeight,
			step:        metrics.StepAckBroadcast, // timeout completes the packet on source
		})
	}
}

// proveOn fetches a proof from the counterparty chain's state (the RPC
// cost of proof retrieval is folded into the calibrated data-pull cost).
func (r *Relayer) proveOn(src *endpoint, proofHeight int64, key string, membership bool) *ibc.Proof {
	st := src.chain.App.State()
	if !st.FullProofs() {
		return nil
	}
	tree, err := st.TreeAt(proofHeight - 1)
	if err != nil {
		return nil
	}
	if membership {
		_, mp, ok := tree.ProveMembership([]byte(key))
		if !ok {
			return nil
		}
		return &ibc.Proof{Membership: mp}
	}
	nm, ok := tree.ProveNonMembership([]byte(key))
	if !ok {
		return nil
	}
	return &ibc.Proof{NonMembership: nm}
}

// tryFlush starts the submission loop for an endpoint's outbox.
func (r *Relayer) tryFlush(dst *endpoint) {
	if dst.flushing || len(dst.outbox) == 0 || r.stopped {
		return
	}
	dst.flushing = true
	r.flushNext(dst)
}

// counterpartOf returns the other endpoint.
func (r *Relayer) counterpartOf(e *endpoint) *endpoint {
	if e == r.a {
		return r.b
	}
	return r.a
}

// flushNext submits one batch (≤100 msgs) to dst, then continues.
func (r *Relayer) flushNext(dst *endpoint) {
	if r.stopped || len(dst.outbox) == 0 {
		dst.flushing = false
		return
	}
	src := r.counterpartOf(dst)
	r.backlog.Observe(float64(len(dst.outbox)))

	// Only messages whose proof height the relayer has observed on the
	// counterparty can be submitted; the rest wait for the next block
	// frame. Gating on the event-observed height (not a live store read)
	// keeps the decision a function of this relayer's own message
	// history, which the parallel runner reproduces exactly; the header
	// read in clientUpdate is then immutable committed data.
	n := 0
	for n < len(dst.outbox) && n < r.cfg.MaxMsgsPerTx {
		if dst.outbox[n].proofHeight > src.height {
			break
		}
		n++
	}
	if n == 0 {
		dst.flushing = false
		return
	}
	batch := append([]outMsg(nil), dst.outbox[:n]...)
	dst.outbox = append(dst.outbox[:0], dst.outbox[n:]...)

	// Prepend a client update for every distinct proof height the batch
	// needs that the client has no consensus state for yet. A live flow
	// needs at most one (heights arrive in order); a backlog-clearing
	// batch spans several historical blocks and needs one per height.
	// The advance is optimistic: a failed transaction reverts its
	// updates, so the submission path rolls the local view back.
	var updHeights []int64
	for _, m := range batch {
		h := m.proofHeight
		if h <= 0 || dst.clientHeights[h] {
			continue
		}
		dst.clientHeights[h] = true
		updHeights = append(updHeights, h)
	}
	sort.Slice(updHeights, func(i, j int) bool { return updHeights[i] < updHeights[j] })
	msgs := make([]app.Msg, 0, n+len(updHeights))
	meta := txMeta{updHeights: updHeights}
	for _, h := range updHeights {
		if upd := r.clientUpdate(src, dst, h); upd != nil {
			msgs = append(msgs, *upd)
		}
	}
	for _, m := range batch {
		msgs = append(msgs, m.msg)
	}
	r.submitTx(dst, msgs, batch, meta, 0)
}

// txMeta remembers a submission's optimistic client-update advances so
// a failed transaction can undo them (a reverted MsgUpdateClient never
// stored its consensus state).
type txMeta struct {
	updHeights []int64
}

// rollbackClient undoes a reverted transaction's client updates.
func (r *Relayer) rollbackClient(dst *endpoint, meta txMeta) {
	for _, h := range meta.updHeights {
		delete(dst.clientHeights, h)
	}
}

// clientUpdate builds a MsgUpdateClient for dst's client of src at the
// given height, reading the signed header from src's store.
func (r *Relayer) clientUpdate(src, dst *endpoint, height int64) *app.Msg {
	blk, err := src.chain.Store.Block(height)
	if err != nil {
		return nil
	}
	var m app.Msg = ibc.MsgUpdateClient{
		ClientID: dst.clientID,
		Bundle:   ibc.HeaderBundle{Header: blk.Block.Header, Commit: blk.Commit},
	}
	return &m
}

// submitTx broadcasts one relayer transaction, handling sequence
// initialization, mismatch recovery and confirmation polling.
func (r *Relayer) submitTx(dst *endpoint, msgs []app.Msg, batch []outMsg, meta txMeta, attempt int) {
	if r.stopped {
		// Crash injection mid-submission: abandon the batch like the
		// confirmation path does, so a post-resume clearing pass can
		// rebuild it.
		dst.flushing = false
		r.rollbackClient(dst, meta)
		r.releaseBatch(dst, batch)
		return
	}
	if !dst.seqInit {
		dst.rpc.QueryAccountSequence(r.host, dst.account, func(seq uint64, err error) {
			if err != nil {
				r.sched.After(r.cfg.ConfirmPoll, func() { r.submitTx(dst, msgs, batch, meta, attempt) })
				return
			}
			dst.seq = seq
			dst.seqInit = true
			r.submitTx(dst, msgs, batch, meta, attempt)
		})
		return
	}
	tx := app.NewTx(dst.account, dst.seq, uint64(r.rng.Int63n(1<<62)), msgs)
	r.stats.TxsSubmitted++
	var subStart time.Duration
	if r.tr != nil {
		subStart = r.sched.Now()
	}
	dst.rpc.BroadcastTxSync(r.host, tx, func(err error) {
		switch {
		case err == nil:
			dst.seq++
			now := r.sched.Now()
			if r.tr != nil {
				r.tr.CompleteArg(r.otrack, r.nSubmit, subStart, now, uint64(len(batch)))
			}
			for _, m := range batch {
				r.track(r.keyOfMsg(dst, m), m.step, now)
			}
			r.confirmTx(dst, tx, batch, meta, 0)
			// Pipeline: submit the next batch immediately.
			r.flushNext(dst)
		case errors.Is(err, app.ErrSequenceMismatch):
			r.stats.SeqMismatchErrors++
			dst.seqInit = false
			if attempt < 5 {
				r.stats.Retries++
				r.sched.After(r.cfg.ConfirmPoll, func() { r.submitTx(dst, msgs, batch, meta, attempt+1) })
			} else {
				r.stats.TxsFailed++
				r.rollbackClient(dst, meta)
				r.releaseBatch(dst, batch)
				r.flushNext(dst)
			}
		default:
			// Mempool full, RPC timeout or a partitioned path: back off
			// and retry, then give the batch up to a later clearing pass.
			if attempt < 5 {
				r.stats.Retries++
				r.sched.After(5*r.cfg.ConfirmPoll, func() { r.submitTx(dst, msgs, batch, meta, attempt+1) })
			} else {
				r.stats.TxsFailed++
				r.rollbackClient(dst, meta)
				r.releaseBatch(dst, batch)
				r.flushNext(dst)
			}
		}
	})
}

// confirmTx polls for a submitted transaction's commitment, recording
// confirmation steps and handling redundant-packet failures.
func (r *Relayer) confirmTx(dst *endpoint, tx *app.Tx, batch []outMsg, meta txMeta, attempt int) {
	if attempt >= r.cfg.ConfirmAttempts || r.stopped {
		r.stats.TxsFailed++
		r.rollbackClient(dst, meta)
		r.releaseBatch(dst, batch)
		return
	}
	r.sched.After(r.cfg.ConfirmPoll, func() {
		dst.rpc.QueryTx(r.host, tx.Hash(), func(info *store.TxInfo, err error) {
			if err != nil {
				r.confirmTx(dst, tx, batch, meta, attempt+1)
				return
			}
			now := r.sched.Now()
			if info.Result.IsOK() {
				for _, m := range batch {
					key := r.keyOfMsg(dst, m)
					switch m.step {
					case metrics.StepRecvBroadcast:
						r.stats.RecvDelivered++
						r.track(key, metrics.StepRecvConfirmation, now)
						id := pktID{r.counterpartOf(dst).chain.ID, m.packet.SourceChannel, m.packet.Sequence}
						delete(r.pendingRecv, id)
					case metrics.StepAckBroadcast:
						if _, isTimeout := m.msg.(ibc.MsgTimeout); isTimeout {
							r.stats.TimeoutsDelivered++
						} else {
							r.stats.AcksDelivered++
						}
						r.track(key, metrics.StepAckExtraction, now)
						r.track(key, metrics.StepAckConfirmation, now)
					}
				}
				return
			}
			// Failed transaction: with two relayers this is typically
			// "packet messages are redundant".
			r.stats.TxsFailed++
			r.rollbackClient(dst, meta)
			if containsRedundant(info.Result.Log) {
				r.stats.RedundantErrors++
			}
			// Retry non-retried messages once: a partially redundant
			// batch reverts its legitimate messages too. Messages whose
			// packet another relayer already settled on chain are filtered
			// out first (Hermes re-queries unreceived_packets before
			// rebuilding), so a backlog-clearing batch colliding with
			// prior deliveries still lands its fresh messages on the
			// retry.
			r.retryUnsettled(dst, batch)
		})
	})
}

// retryUnsettled re-queues a failed batch's not-yet-retried messages
// after filtering out those another relayer already settled on chain —
// the receipt exists on the destination (recv) or the commitment is
// cleared on the source (ack/timeout). Models Hermes' unreceived_packets
// / unreceived_acks re-query before a rebuild, as one batched RPC
// against committed state (like every other state read, so it works
// across partition boundaries).
func (r *Relayer) retryUnsettled(dst *endpoint, batch []outMsg) {
	var candidates []outMsg
	var probes []rpc.SettledProbe
	for _, m := range batch {
		if m.retried {
			continue
		}
		m.retried = true
		p := m.packet
		probe := rpc.SettledProbe{Port: p.DestPort, Channel: p.DestChannel, Sequence: p.Sequence}
		if _, isRecv := m.msg.(ibc.MsgRecvPacket); !isRecv {
			probe = rpc.SettledProbe{Ack: true, Port: p.SourcePort, Channel: p.SourceChannel, Sequence: p.Sequence}
		}
		candidates = append(candidates, m)
		probes = append(probes, probe)
	}
	if len(candidates) == 0 {
		return
	}
	dst.rpc.QuerySettled(r.host, probes, func(settled []bool, err error) {
		if r.stopped {
			return
		}
		var retry []outMsg
		for i, m := range candidates {
			if err == nil && i < len(settled) && settled[i] {
				continue
			}
			retry = append(retry, m)
		}
		if len(retry) > 0 {
			dst.outbox = append(dst.outbox, retry...)
			r.tryFlush(dst)
		}
	})
}

// releaseBatch forgets the seen-marks of messages whose delivery could
// not be confirmed (network failures, partitions) and re-queues their
// origin heights for the clearing pass, so the messages are rebuilt
// instead of leaving the packets stuck — the height was processed
// normally, so no frame gap would ever re-scan it. Recv packets also
// stay in pendingRecv, keeping the timeout path armed; timed-out
// packets whose MsgTimeout was lost re-enter pendingRecv for another
// attempt.
func (r *Relayer) releaseBatch(dst *endpoint, batch []outMsg) {
	src := r.counterpartOf(dst)
	requeued := false
	for _, m := range batch {
		switch m.msg.(type) {
		case ibc.MsgRecvPacket, ibc.MsgAcknowledgement:
			if _, isRecv := m.msg.(ibc.MsgRecvPacket); isRecv {
				delete(r.seenRecv, pktID{src.chain.ID, m.packet.SourceChannel, m.packet.Sequence})
			} else {
				delete(r.seenAck, pktID{dst.chain.ID, m.packet.SourceChannel, m.packet.Sequence})
			}
			// Both message kinds were built from an event on the
			// counterparty at proofHeight-1; re-scan that height.
			if r.cfg.ClearIntervalBlocks > 0 && m.proofHeight > 1 {
				r.addMissed(src, m.proofHeight-1)
				requeued = true
			}
		case ibc.MsgTimeout:
			r.pendingRecv[pktID{dst.chain.ID, m.packet.SourceChannel, m.packet.Sequence}] = m.packet
		}
	}
	if requeued {
		r.scheduleClear(src, dst)
	}
}

// scheduleClear arranges a packet-clear pass over missed heights.
func (r *Relayer) scheduleClear(src, dst *endpoint) {
	interval := time.Duration(r.cfg.ClearIntervalBlocks) * simconf.MinBlockInterval
	r.sched.After(interval, func() {
		if r.stopped {
			return
		}
		missed := r.missedA
		if src == r.b {
			missed = r.missedB
		}
		if len(missed) == 0 {
			return
		}
		if src == r.a {
			r.missedA = nil
		} else {
			r.missedB = nil
		}
		// Dedupe: a released batch queues one entry per message, and gaps
		// can overlap earlier misses — one indexed query per height. The
		// scratch map is relayer-owned and only used within this event,
		// so passes reuse it.
		if r.clearSeen == nil {
			r.clearSeen = make(map[int64]bool, len(missed))
		}
		seen := r.clearSeen
		for h := range seen {
			delete(seen, h)
		}
		for _, h := range missed {
			if seen[h] {
				continue
			}
			seen[h] = true
			src.rpc.QueryBlockEvents(r.host, h, func(be *eventindex.BlockEvents, err error) {
				if err != nil || r.stopped {
					return
				}
				r.processBlock(src, dst, be)
				r.tryFlush(dst)
			})
		}
		if r.tr != nil {
			// One clear-pass instant per pass, tagged with the number of
			// re-scanned heights.
			r.tr.InstantArg(r.otrack, r.nClear, r.sched.Now(), uint64(len(seen)))
		}
	})
}

// --- helpers -----------------------------------------------------------------

func (r *Relayer) track(key metrics.PacketKey, step metrics.Step, at time.Duration) {
	if r.cfg.Tracker != nil {
		r.cfg.Tracker.Record(key, step, at)
	}
}

// keyOf identifies a packet originating on src.
func (r *Relayer) keyOf(src *endpoint, p ibc.Packet) metrics.PacketKey {
	return metrics.PacketKey{SrcChain: src.chain.ID, Channel: p.SourceChannel, Sequence: p.Sequence}
}

// keyOfMsg identifies the packet of an outgoing message submitted to dst.
func (r *Relayer) keyOfMsg(dst *endpoint, m outMsg) metrics.PacketKey {
	switch m.msg.(type) {
	case ibc.MsgRecvPacket:
		return r.keyOf(r.counterpartOf(dst), m.packet)
	default: // acks and timeouts land on the packet's source chain
		return r.keyOf(dst, m.packet)
	}
}

func containsRedundant(log string) bool {
	return strings.Contains(log, "redundant")
}
