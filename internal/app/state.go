package app

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"ibcbench/internal/merkle"
)

// State is the application's versioned key-value store.
//
// The current data lives in a flat map; every Commit records the keys the
// block changed together with their prior values, so snapshots at recent
// heights can be reconstructed by undoing changes backwards. Merkle trees
// over snapshots are built lazily and cached — the relayer requests one
// proof per packet message against a given proof height, so tree
// construction is amortized across thousands of proofs.
type State struct {
	data map[string][]byte

	// staged holds writes of the transaction currently executing, so a
	// failed transaction can be rolled back atomically.
	staged map[string]*[]byte // nil slot value = delete

	// blockChanged accumulates the block's net changes: key -> value
	// before the block (nil = key absent before).
	blockChanged map[string]*[]byte

	// commits[i] describes the commit that produced height i+1.
	commits []commitRecord

	root merkle.Hash

	// fullProofs selects real merkle roots and proofs; when false the
	// root is a cheap running hash chain and proofs are placeholders
	// (see Config.FullProofs in the chain package).
	fullProofs bool

	// live is the incrementally-maintained merkle tree over the current
	// data (full-proof mode only): Commit folds the block's dirty keys
	// into it instead of rebuilding the whole tree each height.
	live *merkle.IncTree

	// treeCache caches snapshot trees by height (small LRU).
	treeCache map[int64]*merkle.Tree
	treeOrder []int64
}

type commitRecord struct {
	height int64
	root   merkle.Hash
	// prior maps each changed key to its pre-block value (nil = absent).
	prior map[string]*[]byte
}

// maxCachedTrees bounds the snapshot-tree LRU.
const maxCachedTrees = 4

// NewState returns an empty store.
func NewState(fullProofs bool) *State {
	s := &State{
		data:         make(map[string][]byte),
		staged:       make(map[string]*[]byte),
		blockChanged: make(map[string]*[]byte),
		root:         sha256.Sum256([]byte("ibcbench/genesis")),
		fullProofs:   fullProofs,
		treeCache:    make(map[int64]*merkle.Tree),
	}
	if fullProofs {
		s.live = merkle.NewIncTree()
	}
	return s
}

// Get reads a key, observing staged (in-tx) writes first.
func (s *State) Get(key string) ([]byte, bool) {
	if v, ok := s.staged[key]; ok {
		if v == nil {
			return nil, false
		}
		return *v, true
	}
	v, ok := s.data[key]
	return v, ok
}

// Has reports key presence.
func (s *State) Has(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Set stages a write for the executing transaction.
func (s *State) Set(key string, value []byte) {
	v := append([]byte(nil), value...)
	s.staged[key] = &v
}

// Delete stages a deletion.
func (s *State) Delete(key string) {
	s.staged[key] = nil
}

// CommitTx applies the staged writes of a successful transaction.
func (s *State) CommitTx() {
	for k, v := range s.staged {
		if _, tracked := s.blockChanged[k]; !tracked {
			if old, ok := s.data[k]; ok {
				oldCopy := append([]byte(nil), old...)
				s.blockChanged[k] = &oldCopy
			} else {
				s.blockChanged[k] = nil
			}
		}
		if v == nil {
			delete(s.data, k)
		} else {
			s.data[k] = *v
		}
	}
	s.staged = make(map[string]*[]byte)
}

// AbortTx discards the staged writes of a failed transaction.
func (s *State) AbortTx() {
	s.staged = make(map[string]*[]byte)
}

// Commit finalizes a block at the given height and returns the new root.
func (s *State) Commit(height int64) merkle.Hash {
	s.AbortTx()
	if s.fullProofs {
		// Incremental commit: fold only the block's dirty keys into the
		// cached leaf hashes. The root is identical to a full
		// merkle.NewTree(s.data) rebuild (golden-root tests pin this)
		// at O(dirty) cost instead of O(n) re-hashing.
		edits := make([]merkle.Edit, 0, len(s.blockChanged))
		for k := range s.blockChanged {
			if v, ok := s.data[k]; ok {
				edits = append(edits, merkle.Edit{Key: k, Value: v})
			} else {
				edits = append(edits, merkle.Edit{Key: k, Delete: true})
			}
		}
		s.root = s.live.Apply(edits)
	} else {
		// Chain the sorted block changes onto the previous root.
		keys := make([]string, 0, len(s.blockChanged))
		for k := range s.blockChanged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h := sha256.New()
		h.Write(s.root[:])
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(height))
		h.Write(n[:])
		for _, k := range keys {
			h.Write([]byte(k))
			if v, ok := s.data[k]; ok {
				h.Write(v)
			} else {
				h.Write([]byte{0xff})
			}
		}
		copy(s.root[:], h.Sum(nil))
	}
	s.commits = append(s.commits, commitRecord{
		height: height,
		root:   s.root,
		prior:  s.blockChanged,
	})
	s.blockChanged = make(map[string]*[]byte)
	return s.root
}

// Root returns the latest committed root.
func (s *State) Root() merkle.Hash { return s.root }

// Version returns the latest committed height (0 if none).
func (s *State) Version() int64 {
	if len(s.commits) == 0 {
		return 0
	}
	return s.commits[len(s.commits)-1].height
}

// RootAt returns the committed root at a height.
func (s *State) RootAt(height int64) (merkle.Hash, error) {
	for i := len(s.commits) - 1; i >= 0; i-- {
		if s.commits[i].height == height {
			return s.commits[i].root, nil
		}
		if s.commits[i].height < height {
			break
		}
	}
	return merkle.Hash{}, fmt.Errorf("state: no commit at height %d", height)
}

// snapshotAt reconstructs the key-value map as of a committed height by
// undoing newer block changes.
func (s *State) snapshotAt(height int64) (map[string][]byte, error) {
	if _, err := s.RootAt(height); err != nil {
		return nil, err
	}
	snap := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		snap[k] = v
	}
	for i := len(s.commits) - 1; i >= 0 && s.commits[i].height > height; i-- {
		for k, prior := range s.commits[i].prior {
			if prior == nil {
				delete(snap, k)
			} else {
				snap[k] = *prior
			}
		}
	}
	return snap, nil
}

// TreeAt returns the (cached) merkle tree of the snapshot at a height.
// Only available with full proofs enabled.
func (s *State) TreeAt(height int64) (*merkle.Tree, error) {
	if !s.fullProofs {
		return nil, fmt.Errorf("state: proofs disabled (performance mode)")
	}
	if t, ok := s.treeCache[height]; ok {
		return t, nil
	}
	var t *merkle.Tree
	if height > 0 && height == s.Version() {
		// The live incremental tree already holds this height: snapshot
		// it (hash moves only) instead of reconstructing and re-hashing
		// the whole key space.
		t = s.live.Snapshot()
	} else {
		snap, err := s.snapshotAt(height)
		if err != nil {
			return nil, err
		}
		t = merkle.NewTree(snap)
	}
	if got, want := t.Root(), mustRoot(s, height); got != want {
		return nil, fmt.Errorf("state: reconstructed root mismatch at height %d", height)
	}
	s.treeCache[height] = t
	s.treeOrder = append(s.treeOrder, height)
	if len(s.treeOrder) > maxCachedTrees {
		evict := s.treeOrder[0]
		s.treeOrder = s.treeOrder[1:]
		delete(s.treeCache, evict)
	}
	return t, nil
}

func mustRoot(s *State, height int64) merkle.Hash {
	r, err := s.RootAt(height)
	if err != nil {
		return merkle.Hash{}
	}
	return r
}

// FullProofs reports whether real merkle proofs are enabled.
func (s *State) FullProofs() bool { return s.fullProofs }

// Len reports the number of live keys (staged writes excluded).
func (s *State) Len() int { return len(s.data) }

// RangePrefix visits every committed key with the given prefix in
// ascending key order (staged in-tx writes excluded), stopping early if
// fn returns false. Deterministic iteration is the point: invariant
// checkers enumerate `supply/` and `commitments/` ranges and must see
// identical order across same-seed runs.
func (s *State) RangePrefix(prefix string, fn func(key string, value []byte) bool) {
	keys := make([]string, 0, 16)
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, s.data[k]) {
			return
		}
	}
}
