package app

import (
	"encoding/hex"
	"fmt"
	"testing"

	"ibcbench/internal/merkle"
)

// TestGoldenRoots pins the merkle roots of a scripted state workload to
// the exact values the pre-incremental implementation (a full
// merkle.NewTree rebuild per commit) produced. Any silent divergence in
// the commit path — leaf encoding, ordering, padding, dirty-key
// bookkeeping — fails here before it can corrupt cross-chain proofs.
func TestGoldenRoots(t *testing.T) {
	golden := map[int64]string{
		1:  "7ab2ae03a2a8daea555afda1fa8d14c17dcd63530b10b6ab22afa6fcf6d3dba2",
		5:  "3bc745561f1f1f7b09a4c39e36a0a9b6973207a48c5ad9c928dbd0d6ecff0859",
		12: "af7243670f65a779599f46a4e2e3529ff7793280aedece27e5b8afc74ef22648",
		24: "eedb650ba87b14128f81ab6e448929cb6cc594e7c16298a47332656d8b37d275",
	}
	s := NewState(true)
	key := func(i int) string { return fmt.Sprintf("key/%04d", i) }
	val := func(h, i int) []byte { return []byte(fmt.Sprintf("val-%d-%d", h, i)) }
	for h := int64(1); h <= 24; h++ {
		for i := 0; i < 3; i++ {
			s.Set(key(int(h)*10+i), val(int(h), i))
		}
		if h > 1 {
			s.Set(key((int(h)-1)*10), val(int(h), 99))
			s.Set(key((int(h)/2)*10+1), val(int(h), 98))
		}
		if h%4 == 0 {
			s.Delete(key((int(h)-2)*10 + 2))
		}
		s.CommitTx()
		root := s.Commit(h)
		if want, ok := golden[h]; ok {
			if got := hex.EncodeToString(root[:]); got != want {
				t.Fatalf("height %d: root %s, golden %s", h, got, want)
			}
		}
	}
}

// TestCommitMatchesFullRebuild cross-checks every incremental commit of
// a churny workload against a from-scratch merkle.NewTree over the same
// snapshot.
func TestCommitMatchesFullRebuild(t *testing.T) {
	s := NewState(true)
	shadow := make(map[string][]byte)
	set := func(k string, v []byte) {
		s.Set(k, v)
		shadow[k] = v
	}
	del := func(k string) {
		s.Delete(k)
		delete(shadow, k)
	}
	for h := int64(1); h <= 40; h++ {
		set(fmt.Sprintf("acct/%d", h%7), []byte(fmt.Sprintf("bal%d", h)))
		set(fmt.Sprintf("commitments/%d", h), []byte("c"))
		if h > 3 {
			del(fmt.Sprintf("commitments/%d", h-3))
		}
		s.CommitTx()
		got := s.Commit(h)
		if want := merkle.NewTree(shadow).Root(); got != want {
			t.Fatalf("height %d: incremental root %x != rebuild %x", h, got, want)
		}
	}
}
