package app

import (
	"time"

	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/types"
)

// TxQueryCost models the serial RPC service time for returning one
// transaction's data, proportional to the response size (§V: a block of
// 20 txs with 100 MsgTransfer each returned 331,706 lines in 2.9 s; with
// 100 MsgRecvPacket each, 579,919 lines in 5.7 s).
func TxQueryCost(tx types.Tx) time.Duration {
	t, ok := tx.(*Tx)
	if !ok {
		return simconf.QueryBaseCost
	}
	cost := simconf.QueryBaseCost
	for _, m := range t.Msgs {
		switch m.MsgType() {
		case "MsgTransfer":
			cost += simconf.QueryCostPerTransferMsg
		case "MsgRecvPacket":
			cost += simconf.QueryCostPerRecvMsg
		case "MsgAcknowledgement", "MsgTimeout":
			cost += simconf.QueryCostPerAckMsg
		default:
			cost += simconf.QueryCostPerAckMsg
		}
	}
	return cost
}

// EventFrameBytes models the JSON size of a NewBlock WebSocket event
// frame for a block's transactions. Frames above the 16 MiB Tendermint
// WebSocket limit make the relayer fail event collection (§V).
func EventFrameBytes(txs []types.Tx) int {
	n := 2048 // block envelope
	for _, raw := range txs {
		n += simconf.EventBytesPerTxOverhead
		t, ok := raw.(*Tx)
		if !ok {
			continue
		}
		for _, m := range t.Msgs {
			switch m.MsgType() {
			case "MsgTransfer":
				n += simconf.EventBytesPerTransferMsg
			case "MsgRecvPacket":
				n += simconf.EventBytesPerTransferMsg * 2
			default:
				n += simconf.EventBytesPerTransferMsg
			}
		}
	}
	return n
}

// MsgCount returns the number of messages in a transaction (0 for
// foreign tx types).
func MsgCount(tx types.Tx) int {
	if t, ok := tx.(*Tx); ok {
		return len(t.Msgs)
	}
	return 0
}
