package app

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Coin is an amount of a single denomination.
type Coin struct {
	Denom  string
	Amount uint64
}

// String renders the coin as "<amount><denom>".
func (c Coin) String() string { return fmt.Sprintf("%d%s", c.Amount, c.Denom) }

// Bank errors.
var (
	// ErrInsufficientFunds reports a debit exceeding the balance.
	ErrInsufficientFunds = errors.New("bank: insufficient funds")
	// ErrUnknownAccount reports an operation on a missing account.
	ErrUnknownAccount = errors.New("bank: unknown account")
)

// Bank is the fungible-token module: balances, supply, mint/burn and
// escrow, the substrate for ICS-20 transfers.
//
// Balances live in the application's staged State, so a failed
// transaction rolls its bank effects back atomically.
type Bank struct {
	state *State
}

// NewBank returns a bank keeper over the given state.
func NewBank(state *State) *Bank {
	return &Bank{state: state}
}

func balanceKey(account, denom string) string {
	return "balances/" + account + "/" + denom
}

func supplyKey(denom string) string { return "supply/" + denom }

func (b *Bank) getUint(key string) uint64 {
	raw, ok := b.state.Get(key)
	if !ok || len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

func (b *Bank) setUint(key string, v uint64) {
	if v == 0 {
		b.state.Delete(key)
		return
	}
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], v)
	b.state.Set(key, raw[:])
}

// Balance reports an account's balance in one denomination.
func (b *Bank) Balance(account, denom string) uint64 {
	return b.getUint(balanceKey(account, denom))
}

// Supply reports the total minted amount of a denomination.
func (b *Bank) Supply(denom string) uint64 { return b.getUint(supplyKey(denom)) }

func (b *Bank) credit(account, denom string, amount uint64) {
	key := balanceKey(account, denom)
	b.setUint(key, b.getUint(key)+amount)
}

func (b *Bank) debit(account, denom string, amount uint64) error {
	key := balanceKey(account, denom)
	have := b.getUint(key)
	if have < amount {
		return fmt.Errorf("%w: %s has %d%s, need %d", ErrInsufficientFunds,
			account, have, denom, amount)
	}
	b.setUint(key, have-amount)
	return nil
}

// Mint creates new supply credited to an account.
func (b *Bank) Mint(account string, coin Coin) {
	b.credit(account, coin.Denom, coin.Amount)
	b.setUint(supplyKey(coin.Denom), b.Supply(coin.Denom)+coin.Amount)
}

// Burn destroys supply debited from an account.
func (b *Bank) Burn(account string, coin Coin) error {
	if err := b.debit(account, coin.Denom, coin.Amount); err != nil {
		return err
	}
	b.setUint(supplyKey(coin.Denom), b.Supply(coin.Denom)-coin.Amount)
	return nil
}

// Send moves coins between accounts.
func (b *Bank) Send(from, to string, coin Coin) error {
	if err := b.debit(from, coin.Denom, coin.Amount); err != nil {
		return err
	}
	b.credit(to, coin.Denom, coin.Amount)
	return nil
}
