// Package app implements the Cosmos-SDK-style application layer of the
// simulated Gaia blockchains: accounts with replay-protecting sequence
// numbers, an ante handler enforcing the paper's "one transaction per
// account per block" submission behaviour (§III-D), a bank module, gas
// metering matching the paper's measured gas schedule, and a message
// router that IBC modules plug into.
package app

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/types"
)

// Ante/execution errors. ErrSequenceMismatch carries the exact error
// string the paper reports from the Cosmos SDK: "Account sequence
// mismatch" (§V).
var (
	ErrSequenceMismatch = errors.New("account sequence mismatch")
	ErrUnknownSigner    = errors.New("app: unknown signer account")
	ErrOutOfGas         = errors.New("app: out of gas")
	ErrNoMessages       = errors.New("app: transaction carries no messages")
)

// Msg is one operation inside a transaction.
type Msg interface {
	// Route selects the module handler (e.g. "transfer", "ibc").
	Route() string
	// MsgType names the concrete message (e.g. "MsgTransfer").
	MsgType() string
	// WireSize is the encoded size in bytes.
	WireSize() int
}

// Result is the outcome of one message's execution.
type Result struct {
	GasUsed uint64
	Events  []abci.Event
}

// Context is passed to message handlers.
type Context struct {
	ChainID string
	Height  int64
	Time    time.Duration
	State   *State
	Bank    *Bank
	App     *App

	// events accumulates module-emitted events during message execution.
	// Modules nested below the routed handler (middleware such as packet
	// forwarding) cannot thread events through return values, so they emit
	// here; DeliverTx drains after each successful message and discards on
	// failure, matching the state rollback.
	events []abci.Event
}

// Emit appends events to the transaction's event stream.
func (c *Context) Emit(evs ...abci.Event) { c.events = append(c.events, evs...) }

// TakeEvents drains and returns the accumulated events.
func (c *Context) TakeEvents() []abci.Event {
	evs := c.events
	c.events = nil
	return evs
}

// Handler executes one message kind.
type Handler func(ctx *Context, msg Msg) (*Result, error)

// Account is an externally-owned account.
type Account struct {
	Name string
	// Sequence is the committed sequence number: the next expected
	// transaction sequence (replay protection).
	Sequence uint64
	// checkSequence is the mempool's view: CheckTx-accepted but not yet
	// committed transactions advance it.
	checkSequence uint64
}

// Tx is a signed application transaction carrying a batch of messages
// (the paper's workload uses 100 cross-chain transfer messages per tx).
type Tx struct {
	Signer   string
	Sequence uint64
	Msgs     []Msg
	GasLimit uint64
	// Nonce disambiguates otherwise-identical transactions.
	Nonce uint64

	hash     types.Hash
	hashSet  bool
	wireSize int
}

var _ types.Tx = (*Tx)(nil)

// NewTx assembles a transaction. Gas limit defaults to the standard
// gas-wanted estimate for its messages. The hash is sealed eagerly so a
// transaction crossing partition boundaries never lazily writes its
// cache fields from a foreign goroutine.
func NewTx(signer string, sequence uint64, nonce uint64, msgs []Msg) *Tx {
	tx := &Tx{Signer: signer, Sequence: sequence, Nonce: nonce, Msgs: msgs}
	tx.GasLimit = GasWantedFor(msgs)
	tx.Hash()
	tx.Size()
	return tx
}

// GasWantedFor estimates gas for a message batch from the calibrated
// schedule plus the fixed transaction overhead.
func GasWantedFor(msgs []Msg) uint64 {
	gas := simconf.GasTxOverhead
	for _, m := range msgs {
		gas += MsgGas(m.MsgType())
	}
	return gas
}

// MsgGas returns the calibrated per-message gas cost (§IV-A).
func MsgGas(msgType string) uint64 {
	switch msgType {
	case "MsgTransfer":
		return simconf.GasPerMsgTransfer
	case "MsgRecvPacket":
		return simconf.GasPerMsgRecvPacket
	case "MsgAcknowledgement":
		return simconf.GasPerMsgAcknowledgement
	case "MsgTimeout":
		return simconf.GasPerMsgAcknowledgement
	default:
		return 10000
	}
}

// Hash implements types.Tx.
func (tx *Tx) Hash() types.Hash {
	if !tx.hashSet {
		h := sha256.New()
		h.Write([]byte(tx.Signer))
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], tx.Sequence)
		h.Write(n[:])
		binary.BigEndian.PutUint64(n[:], tx.Nonce)
		h.Write(n[:])
		for _, m := range tx.Msgs {
			h.Write([]byte(m.Route()))
			h.Write([]byte(m.MsgType()))
			if d, ok := m.(interface{ Digest() []byte }); ok {
				h.Write(d.Digest())
			}
		}
		copy(tx.hash[:], h.Sum(nil))
		tx.hashSet = true
	}
	return tx.hash
}

// Size implements types.Tx.
func (tx *Tx) Size() int {
	if tx.wireSize == 0 {
		n := simconf.TxBaseBytes
		for _, m := range tx.Msgs {
			n += m.WireSize()
		}
		tx.wireSize = n
	}
	return tx.wireSize
}

// GasWanted implements types.Tx.
func (tx *Tx) GasWanted() uint64 { return tx.GasLimit }

// App is the chain application (implements abci.Application).
type App struct {
	chainID  string
	accounts map[string]*Account
	bank     *Bank
	state    *State
	routes   map[string]Handler

	curHeight int64
	curTime   time.Duration

	feesCollected float64
	txsOK         uint64
	txsFailed     uint64
}

var _ abci.Application = (*App)(nil)

// New creates an application for one chain. fullProofs selects real
// merkle state commitments (see State).
func New(chainID string, fullProofs bool) *App {
	state := NewState(fullProofs)
	return &App{
		chainID:  chainID,
		accounts: make(map[string]*Account),
		bank:     NewBank(state),
		state:    state,
		routes:   make(map[string]Handler),
	}
}

// ChainID reports the chain this app serves.
func (a *App) ChainID() string { return a.chainID }

// Bank exposes the bank module.
func (a *App) Bank() *Bank { return a.bank }

// State exposes the IBC store.
func (a *App) State() *State { return a.state }

// Height reports the height currently executing (or last executed).
func (a *App) Height() int64 { return a.curHeight }

// Now reports the block time currently executing.
func (a *App) Now() time.Duration { return a.curTime }

// FeesCollected reports total fees paid (gas x price), in tokens.
func (a *App) FeesCollected() float64 { return a.feesCollected }

// TxStats reports (succeeded, failed) executed transaction counts.
func (a *App) TxStats() (ok, failed uint64) { return a.txsOK, a.txsFailed }

// RegisterRoute installs a module handler.
func (a *App) RegisterRoute(route string, h Handler) {
	a.routes[route] = h
}

// CreateAccount registers an account with initial balances.
func (a *App) CreateAccount(name string, coins ...Coin) *Account {
	acct := &Account{Name: name}
	a.accounts[name] = acct
	for _, c := range coins {
		a.bank.Mint(name, c)
	}
	a.state.CommitTx() // genesis writes apply immediately
	return acct
}

// Account looks up an account (nil if missing).
func (a *App) Account(name string) *Account { return a.accounts[name] }

// AccountSequence reports the committed sequence for an account, which is
// what clients query before signing.
func (a *App) AccountSequence(name string) (uint64, error) {
	acct := a.accounts[name]
	if acct == nil {
		return 0, ErrUnknownAccount
	}
	return acct.Sequence, nil
}

// CheckTx is the ante handler for mempool admission. It enforces the
// sequence rule that produces the paper's "Account sequence mismatch"
// errors: a second transaction signed with the committed sequence cannot
// enter the pool while the first is pending.
func (a *App) CheckTx(tx types.Tx) error {
	t, ok := tx.(*Tx)
	if !ok {
		return fmt.Errorf("app: foreign tx type %T", tx)
	}
	if len(t.Msgs) == 0 {
		return ErrNoMessages
	}
	acct := a.accounts[t.Signer]
	if acct == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, t.Signer)
	}
	if t.Sequence != acct.checkSequence {
		return fmt.Errorf("%w: expected %d, got %d (account %s)",
			ErrSequenceMismatch, acct.checkSequence, t.Sequence, t.Signer)
	}
	acct.checkSequence++
	return nil
}

// BeginBlock implements abci.Application.
func (a *App) BeginBlock(height int64, now time.Duration) {
	a.curHeight = height
	a.curTime = now
}

// DeliverTx executes one transaction atomically: on any message failure
// the transaction's writes are rolled back but the sequence still
// advances and gas is still charged, exactly like the SDK.
func (a *App) DeliverTx(tx types.Tx) abci.TxResult {
	t, ok := tx.(*Tx)
	if !ok {
		return abci.TxResult{Code: 1, Log: "foreign tx type"}
	}
	acct := a.accounts[t.Signer]
	if acct == nil {
		a.txsFailed++
		return abci.TxResult{Code: 2, Log: ErrUnknownSigner.Error()}
	}
	if t.Sequence != acct.Sequence {
		a.txsFailed++
		return abci.TxResult{
			Code: 32, // SDK's ErrWrongSequence code
			Log: fmt.Sprintf("%v: expected %d, got %d",
				ErrSequenceMismatch, acct.Sequence, t.Sequence),
		}
	}
	acct.Sequence++
	if acct.checkSequence < acct.Sequence {
		acct.checkSequence = acct.Sequence
	}

	ctx := &Context{
		ChainID: a.chainID,
		Height:  a.curHeight,
		Time:    a.curTime,
		State:   a.state,
		Bank:    a.bank,
		App:     a,
	}
	res := abci.TxResult{GasUsed: simconf.GasTxOverhead}
	for i, msg := range t.Msgs {
		h, ok := a.routes[msg.Route()]
		if !ok {
			a.state.AbortTx()
			a.txsFailed++
			return abci.TxResult{
				Code:    3,
				Log:     fmt.Sprintf("no route %q", msg.Route()),
				GasUsed: res.GasUsed,
			}
		}
		r, err := h(ctx, msg)
		if r != nil {
			res.GasUsed += r.GasUsed
		}
		if err != nil {
			ctx.TakeEvents() // failed msg: its events vanish with its writes
			a.state.AbortTx()
			a.txsFailed++
			res.Code = 4
			res.Log = fmt.Sprintf("msg %d (%s): %v", i, msg.MsgType(), err)
			a.feesCollected += float64(res.GasUsed) * simconf.GasPriceTokens
			return res
		}
		if r != nil {
			res.Events = append(res.Events, r.Events...)
		}
		res.Events = append(res.Events, ctx.TakeEvents()...)
		if res.GasUsed > t.GasLimit {
			a.state.AbortTx()
			a.txsFailed++
			res.Code = 11 // SDK's ErrOutOfGas code
			res.Log = ErrOutOfGas.Error()
			a.feesCollected += float64(res.GasUsed) * simconf.GasPriceTokens
			return res
		}
	}
	a.state.CommitTx()
	a.txsOK++
	a.feesCollected += float64(res.GasUsed) * simconf.GasPriceTokens
	return res
}

// EndBlock implements abci.Application.
func (a *App) EndBlock(int64) {}

// Commit implements abci.Application: it persists the block's state and
// folds account/bank state into the AppHash.
func (a *App) Commit() types.Hash {
	root := a.state.Commit(a.curHeight)
	// Reset mempool sequence views that fell behind committed state
	// (recheck after commit).
	for _, acct := range a.accounts {
		if acct.checkSequence < acct.Sequence {
			acct.checkSequence = acct.Sequence
		}
	}
	return root
}

// ResetCheckState realigns every account's mempool sequence view with
// committed state, modeling a mempool flush/recheck.
func (a *App) ResetCheckState() {
	for _, acct := range a.accounts {
		acct.checkSequence = acct.Sequence
	}
}
