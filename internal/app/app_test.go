package app

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/types"
)

// sendMsg is a simple bank-send message for app tests.
type sendMsg struct {
	from, to string
	coin     Coin
}

func (m sendMsg) Route() string   { return "bank" }
func (m sendMsg) MsgType() string { return "MsgSend" }
func (m sendMsg) WireSize() int   { return 120 }
func (m sendMsg) Digest() []byte {
	return []byte(fmt.Sprintf("%s->%s:%s", m.from, m.to, m.coin))
}

func bankHandler(ctx *Context, msg Msg) (*Result, error) {
	m, ok := msg.(sendMsg)
	if !ok {
		return nil, errors.New("bad msg")
	}
	if err := ctx.Bank.Send(m.from, m.to, m.coin); err != nil {
		return &Result{GasUsed: 5000}, err
	}
	return &Result{
		GasUsed: 5000,
		Events:  []abci.Event{{Type: "transfer", Attributes: map[string]string{"to": m.to}}},
	}, nil
}

func newTestApp() *App {
	a := New("chain-a", true)
	a.RegisterRoute("bank", bankHandler)
	a.CreateAccount("alice", Coin{Denom: "uatom", Amount: 1000})
	a.CreateAccount("bob")
	return a
}

func deliverBlock(a *App, height int64, txs ...*Tx) []abci.TxResult {
	a.BeginBlock(height, time.Duration(height)*5*time.Second)
	out := make([]abci.TxResult, len(txs))
	for i, tx := range txs {
		out[i] = a.DeliverTx(tx)
	}
	a.EndBlock(height)
	a.Commit()
	return out
}

func TestDeliverTransfersFunds(t *testing.T) {
	a := newTestApp()
	tx := NewTx("alice", 0, 1, []Msg{sendMsg{from: "alice", to: "bob", coin: Coin{"uatom", 100}}})
	res := deliverBlock(a, 1, tx)
	if !res[0].IsOK() {
		t.Fatalf("tx failed: %s", res[0].Log)
	}
	if got := a.Bank().Balance("bob", "uatom"); got != 100 {
		t.Fatalf("bob = %d", got)
	}
	if got := a.Bank().Balance("alice", "uatom"); got != 900 {
		t.Fatalf("alice = %d", got)
	}
	if len(res[0].Events) != 1 || res[0].Events[0].Type != "transfer" {
		t.Fatalf("events = %+v", res[0].Events)
	}
}

func TestSequenceEnforcement(t *testing.T) {
	a := newTestApp()
	good := NewTx("alice", 0, 1, []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}})
	if err := a.CheckTx(good); err != nil {
		t.Fatalf("check: %v", err)
	}
	// Same committed sequence again: the paper's "Account sequence
	// mismatch" (§V) — cannot submit twice per block from one account.
	dup := NewTx("alice", 0, 2, []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}})
	if err := a.CheckTx(dup); !errors.Is(err, ErrSequenceMismatch) {
		t.Fatalf("err = %v, want ErrSequenceMismatch", err)
	}
	// The next sequence passes CheckTx (pipelined client).
	next := NewTx("alice", 1, 3, []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}})
	if err := a.CheckTx(next); err != nil {
		t.Fatalf("pipelined check: %v", err)
	}
	// Deliver out of order fails.
	res := deliverBlock(a, 1, next)
	if res[0].IsOK() || res[0].Code != 32 {
		t.Fatalf("out-of-order deliver: %+v", res[0])
	}
	res = deliverBlock(a, 2, good)
	if !res[0].IsOK() {
		t.Fatalf("in-order deliver failed: %s", res[0].Log)
	}
}

func TestFailedTxAtomicity(t *testing.T) {
	a := newTestApp()
	// Second message overdraws: the whole tx must roll back.
	tx := NewTx("alice", 0, 1, []Msg{
		sendMsg{"alice", "bob", Coin{"uatom", 600}},
		sendMsg{"alice", "bob", Coin{"uatom", 600}},
	})
	res := deliverBlock(a, 1, tx)
	if res[0].IsOK() {
		t.Fatal("overdrawing tx succeeded")
	}
	if got := a.Bank().Balance("bob", "uatom"); got != 0 {
		t.Fatalf("partial execution leaked: bob = %d", got)
	}
	if got := a.Bank().Balance("alice", "uatom"); got != 1000 {
		t.Fatalf("alice = %d", got)
	}
	// Sequence still advanced (failed txs consume the sequence).
	if seq, _ := a.AccountSequence("alice"); seq != 1 {
		t.Fatalf("sequence = %d", seq)
	}
	ok, failed := a.TxStats()
	if ok != 0 || failed != 1 {
		t.Fatalf("stats = %d ok %d failed", ok, failed)
	}
}

func TestUnknownSignerAndRoute(t *testing.T) {
	a := newTestApp()
	if err := a.CheckTx(NewTx("mallory", 0, 1, []Msg{sendMsg{}})); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("unknown signer check: %v", err)
	}
	if err := a.CheckTx(NewTx("alice", 0, 1, nil)); !errors.Is(err, ErrNoMessages) {
		t.Fatalf("empty tx check: %v", err)
	}
	type weirdMsg struct{ sendMsg }
	var w Msg = weirdMsg{}
	_ = w
	a.BeginBlock(1, 0)
	res := a.DeliverTx(&Tx{Signer: "alice", Sequence: 0, GasLimit: 1 << 30,
		Msgs: []Msg{routeless{}}})
	if res.IsOK() {
		t.Fatal("routeless msg executed")
	}
}

type routeless struct{}

func (routeless) Route() string   { return "nowhere" }
func (routeless) MsgType() string { return "MsgNowhere" }
func (routeless) WireSize() int   { return 1 }

func TestGasAccounting(t *testing.T) {
	a := newTestApp()
	tx := NewTx("alice", 0, 1, []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}})
	res := deliverBlock(a, 1, tx)
	want := simconf.GasTxOverhead + 5000
	if res[0].GasUsed != want {
		t.Fatalf("gas = %d, want %d", res[0].GasUsed, want)
	}
	wantFees := float64(want) * simconf.GasPriceTokens
	if a.FeesCollected() != wantFees {
		t.Fatalf("fees = %f, want %f", a.FeesCollected(), wantFees)
	}
}

func TestOutOfGas(t *testing.T) {
	a := newTestApp()
	tx := NewTx("alice", 0, 1, []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}})
	tx.GasLimit = 100 // far below overhead + handler gas
	res := deliverBlock(a, 1, tx)
	if res[0].IsOK() || res[0].Code != 11 {
		t.Fatalf("res = %+v, want out-of-gas code 11", res[0])
	}
	if a.Bank().Balance("bob", "uatom") != 0 {
		t.Fatal("out-of-gas tx leaked state")
	}
}

func TestGasScheduleMatchesPaper(t *testing.T) {
	// 100-message batches must land on the paper's measured totals
	// (§IV-A): 3,669,161 / 7,238,699 / 3,107,462 within 2%.
	cases := []struct {
		msgType string
		paper   uint64
	}{
		{"MsgTransfer", 3669161},
		{"MsgRecvPacket", 7238699},
		{"MsgAcknowledgement", 3107462},
	}
	for _, c := range cases {
		got := simconf.GasTxOverhead + 100*MsgGas(c.msgType)
		diff := float64(got) - float64(c.paper)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(c.paper) > 0.02 {
			t.Errorf("%s x100: gas %d vs paper %d (%.1f%% off)",
				c.msgType, got, c.paper, 100*diff/float64(c.paper))
		}
	}
}

func TestTxHashUniqueness(t *testing.T) {
	m := []Msg{sendMsg{"alice", "bob", Coin{"uatom", 1}}}
	a := NewTx("alice", 0, 1, m)
	b := NewTx("alice", 0, 2, m) // different nonce
	c := NewTx("alice", 1, 1, m) // different sequence
	d := NewTx("bob", 0, 1, m)   // different signer
	seen := map[string]bool{}
	for _, tx := range []*Tx{a, b, c, d} {
		h := tx.Hash()
		if seen[string(h[:])] {
			t.Fatal("tx hash collision")
		}
		seen[string(h[:])] = true
	}
	if a.Hash() != a.Hash() {
		t.Fatal("hash not stable")
	}
}

func TestTxSize(t *testing.T) {
	tx := NewTx("alice", 0, 1, []Msg{sendMsg{}, sendMsg{}})
	want := simconf.TxBaseBytes + 2*120
	if tx.Size() != want {
		t.Fatalf("size = %d, want %d", tx.Size(), want)
	}
}

func TestStateSnapshotAndProofs(t *testing.T) {
	s := NewState(true)
	s.Set("a", []byte("1"))
	s.Set("b", []byte("2"))
	s.CommitTx()
	root1 := s.Commit(1)

	s.Set("b", []byte("3"))
	s.Delete("a")
	s.Set("c", []byte("4"))
	s.CommitTx()
	root2 := s.Commit(2)
	if root1 == root2 {
		t.Fatal("roots did not change")
	}

	// Proofs against the old height still verify.
	t1, err := s.TreeAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Root() != root1 {
		t.Fatal("historic tree root mismatch")
	}
	if v, ok := t1.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("historic a = %q, %v", v, ok)
	}
	t2, err := s.TreeAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := t2.Get([]byte("a")); ok {
		t.Fatal("deleted key visible at height 2")
	}
	if v, _ := t2.Get([]byte("b")); string(v) != "3" {
		t.Fatalf("b at height 2 = %q", v)
	}
}

func TestStateTxRollback(t *testing.T) {
	s := NewState(false)
	s.Set("k", []byte("committed"))
	s.CommitTx()
	s.Set("k", []byte("staged"))
	s.Delete("k2")
	s.AbortTx()
	if v, _ := s.Get("k"); string(v) != "committed" {
		t.Fatalf("k = %q after abort", v)
	}
}

func TestStateRootChainsWithoutProofs(t *testing.T) {
	s := NewState(false)
	s.Set("a", []byte("1"))
	s.CommitTx()
	r1 := s.Commit(1)
	r2 := s.Commit(2) // empty block still advances the chain hash? no:
	// empty change set with new height must still produce a new root so
	// headers at different heights differ.
	if r1 == r2 {
		t.Fatal("empty commit left root unchanged")
	}
	if _, err := s.TreeAt(1); err == nil {
		t.Fatal("performance mode served a proof tree")
	}
}

// Property: account sequences are strictly monotonic across any mix of
// successful and failed transactions.
func TestSequenceMonotonicProperty(t *testing.T) {
	prop := func(amounts []uint16) bool {
		a := newTestApp()
		var height int64
		expected := uint64(0)
		for i, amt := range amounts {
			height++
			tx := NewTx("alice", expected, uint64(i),
				[]Msg{sendMsg{"alice", "bob", Coin{"uatom", uint64(amt)}}})
			deliverBlock(a, height, tx)
			expected++
			seq, err := a.AccountSequence("alice")
			if err != nil || seq != expected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: bank conservation — sends never change total supply.
func TestBankConservationProperty(t *testing.T) {
	prop := func(ops []struct {
		FromAlice bool
		Amount    uint16
	}) bool {
		b := NewBank(NewState(false))
		b.Mint("alice", Coin{"uatom", 1 << 20})
		b.Mint("bob", Coin{"uatom", 1 << 20})
		for _, op := range ops {
			from, to := "alice", "bob"
			if !op.FromAlice {
				from, to = to, from
			}
			_ = b.Send(from, to, Coin{"uatom", uint64(op.Amount)})
			total := b.Balance("alice", "uatom") + b.Balance("bob", "uatom")
			if total != 2<<20 || b.Supply("uatom") != 2<<20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBankMintBurn(t *testing.T) {
	b := NewBank(NewState(false))
	b.Mint("x", Coin{"token", 50})
	if b.Supply("token") != 50 {
		t.Fatalf("supply = %d", b.Supply("token"))
	}
	if err := b.Burn("x", Coin{"token", 60}); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overburn: %v", err)
	}
	if err := b.Burn("x", Coin{"token", 20}); err != nil {
		t.Fatal(err)
	}
	if b.Supply("token") != 30 || b.Balance("x", "token") != 30 {
		t.Fatalf("after burn: supply=%d bal=%d", b.Supply("token"), b.Balance("x", "token"))
	}
}

func TestQueryCostModel(t *testing.T) {
	transfer100 := NewTx("alice", 0, 1, manyMsgs("MsgTransfer", 100))
	recv100 := NewTx("alice", 0, 2, manyMsgs("MsgRecvPacket", 100))
	ct := TxQueryCost(transfer100)
	cr := TxQueryCost(recv100)
	if cr <= ct {
		t.Fatalf("recv query (%v) should cost more than transfer (%v)", cr, ct)
	}
	// Base (pre-pagination) costs follow the calibrated schedule; the
	// RPC layer adds the block-size pagination factor on top.
	wantT := simconf.QueryBaseCost + 100*simconf.QueryCostPerTransferMsg
	if ct != wantT {
		t.Fatalf("transfer base cost = %v, want %v", ct, wantT)
	}
	wantR := simconf.QueryBaseCost + 100*simconf.QueryCostPerRecvMsg
	if cr != wantR {
		t.Fatalf("recv base cost = %v, want %v", cr, wantR)
	}
}

type typedMsg struct {
	kind string
	i    int
}

func (m typedMsg) Route() string   { return "ibc" }
func (m typedMsg) MsgType() string { return m.kind }
func (m typedMsg) WireSize() int   { return 100 }
func (m typedMsg) Digest() []byte  { return []byte(fmt.Sprintf("%s/%d", m.kind, m.i)) }

func manyMsgs(kind string, n int) []Msg {
	out := make([]Msg, n)
	for i := range out {
		out[i] = typedMsg{kind: kind, i: i}
	}
	return out
}

func TestEventFrameBytes(t *testing.T) {
	// 5,000 transfers in one block stays under the 16 MiB WebSocket cap;
	// 100,000 transfers (the paper's §V overflow scenario) exceeds it.
	mkTxs := func(n int) []types.Tx {
		out := make([]types.Tx, n)
		for i := range out {
			out[i] = NewTx("a", uint64(i), uint64(i), manyMsgs("MsgTransfer", 100))
		}
		return out
	}
	under := EventFrameBytes(mkTxs(50))
	if under >= simconf.WebSocketMaxFrameBytes {
		t.Fatalf("5,000 transfers = %d bytes, should be under 16MiB", under)
	}
	over := EventFrameBytes(mkTxs(1000))
	if over <= simconf.WebSocketMaxFrameBytes {
		t.Fatalf("100,000 transfers = %d bytes, should exceed 16MiB", over)
	}
}
