// Package netem models the network connecting validators, full nodes and
// relayers.
//
// The paper's testbed is five machines on a LAN with an enforced 200 ms
// round-trip latency between any pair (§III-C). Network models a set of
// named hosts with a configurable one-way latency matrix plus jitter, on
// top of the shared sim.Scheduler virtual clock. Messages between
// processes on the same host are delivered with loopback latency.
//
// Beyond the paper's uniform matrix, individual directed host pairs can
// carry their own Profile (latency, jitter, drop) — the compilation
// target of the geo region model — plus a transient overlay (extra
// latency / extra drop) used by chaos fault injection for latency spikes
// and drop bursts, and a partition flag severing the pair entirely.
package netem

import (
	"fmt"
	"time"

	"ibcbench/internal/sim"
)

// Host identifies a machine in the testbed.
type Host string

// Config describes the latency characteristics of the emulated network.
type Config struct {
	// OneWayLatency is half the enforced round-trip time between any two
	// distinct hosts. The paper enforces RTT = 200 ms, i.e. 100 ms one-way.
	OneWayLatency time.Duration

	// LoopbackLatency applies between processes on the same host. The
	// paper's relayer talks to its blockchain nodes "via local endpoints".
	LoopbackLatency time.Duration

	// JitterRelStd is the relative standard deviation applied to each
	// delivery, modeling OS scheduling and queueing noise.
	JitterRelStd float64

	// DropRate is the probability a message is silently dropped. The
	// paper's LAN does not lose messages; failure-injection tests set it.
	DropRate float64
}

// DefaultWAN reproduces the paper's emulated wide-area conditions.
func DefaultWAN() Config {
	return Config{
		OneWayLatency:   100 * time.Millisecond,
		LoopbackLatency: 200 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// DefaultLAN reproduces the paper's "<0.5 ms" local-area baseline runs.
func DefaultLAN() Config {
	return Config{
		OneWayLatency:   200 * time.Microsecond,
		LoopbackLatency: 50 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// Profile describes one directed host pair's path characteristics.
// Negative Jitter/Drop inherit the network Config's values.
type Profile struct {
	// OneWay is the base one-way latency of the path.
	OneWay time.Duration
	// Jitter is the relative standard deviation per delivery (<0 inherits
	// the Config default).
	Jitter float64
	// Drop is the loss probability on the path (<0 inherits the Config
	// default).
	Drop float64
}

// linkState is the resolved per-pair state: the base profile merged with
// any chaos overlay and the partition flag. One struct — and therefore
// one map lookup — covers everything Send needs to know about a pair.
type linkState struct {
	hasProfile bool
	latency    time.Duration
	jitter     float64
	drop       float64

	// Chaos overlays: transient additive latency and drop, settable
	// independently so a latency spike and a drop burst on the same pair
	// compose instead of clobbering each other.
	extraLatency time.Duration
	extraDrop    float64

	// partitioned counts active partitions on the pair: overlapping
	// faults compose, and a pair stays severed until every partition
	// that hit it has healed.
	partitioned int
}

// Network delivers messages between hosts with emulated latency.
type Network struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	cfg   Config

	// links holds per-directed-pair overrides (profiles, overlays,
	// partitions). The hot path consults it with a single lookup, skipped
	// entirely while the map is empty.
	links map[linkKey]*linkState

	sent    uint64
	dropped uint64
}

type linkKey struct{ from, to Host }

// New returns a network using the given clock, randomness and config.
func New(s *sim.Scheduler, rng *sim.RNG, cfg Config) *Network {
	return &Network{
		sched: s,
		rng:   rng,
		cfg:   cfg,
		links: make(map[linkKey]*linkState),
	}
}

func (n *Network) state(from, to Host) *linkState {
	k := linkKey{from, to}
	st := n.links[k]
	if st == nil {
		st = &linkState{}
		n.links[k] = st
	}
	return st
}

// dropState removes a pair's entry when it no longer overrides anything,
// keeping the empty-map fast path available after heals/clears.
func (n *Network) dropState(from, to Host, st *linkState) {
	if !st.hasProfile && st.partitioned == 0 && st.extraLatency == 0 && st.extraDrop == 0 {
		delete(n.links, linkKey{from, to})
	}
}

// SetLinkProfile overrides the directed path from one host to another.
func (n *Network) SetLinkProfile(from, to Host, p Profile) {
	st := n.state(from, to)
	st.hasProfile = true
	st.latency = p.OneWay
	st.jitter = p.Jitter
	if p.Jitter < 0 {
		st.jitter = n.cfg.JitterRelStd
	}
	st.drop = p.Drop
	if p.Drop < 0 {
		st.drop = n.cfg.DropRate
	}
}

// SetLinkLatency overrides only the one-way latency from one host to
// another, inheriting the config's jitter and drop rate.
func (n *Network) SetLinkLatency(from, to Host, d time.Duration) {
	n.SetLinkProfile(from, to, Profile{OneWay: d, Jitter: -1, Drop: -1})
}

// SetLinkExtraLatency sets the latency component of a directed pair's
// fault overlay (0 clears it; the drop component is untouched, so
// spikes and bursts on one pair compose).
func (n *Network) SetLinkExtraLatency(from, to Host, extra time.Duration) {
	if extra == 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			st.extraLatency = 0
			n.dropState(from, to, st)
		}
		return
	}
	n.state(from, to).extraLatency = extra
}

// SetLinkExtraDrop sets the drop component of a directed pair's fault
// overlay (0 clears it; the latency component is untouched).
func (n *Network) SetLinkExtraDrop(from, to Host, extra float64) {
	if extra == 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			st.extraDrop = 0
			n.dropState(from, to, st)
		}
		return
	}
	n.state(from, to).extraDrop = extra
}

// Partition severs communication in both directions between two hosts.
// Partitions are counted: overlapping faults hitting the same pair
// compose, and the pair heals only when every partition has healed.
func (n *Network) Partition(a, b Host) {
	n.state(a, b).partitioned++
	n.state(b, a).partitioned++
}

// Heal removes one partition between two hosts (no-op beyond balance).
func (n *Network) Heal(a, b Host) {
	for _, k := range [2]linkKey{{a, b}, {b, a}} {
		if st, ok := n.links[k]; ok && st.partitioned > 0 {
			st.partitioned--
			n.dropState(k.from, k.to, st)
		}
	}
}

// Partitioned reports whether the directed pair is currently severed.
func (n *Network) Partitioned(from, to Host) bool {
	st, ok := n.links[linkKey{from, to}]
	return ok && st.partitioned > 0
}

// Sent reports the number of messages handed to the network.
func (n *Network) Sent() uint64 { return n.sent }

// Dropped reports messages lost to DropRate, overlays or partitions.
func (n *Network) Dropped() uint64 { return n.dropped }

// Latency reports the base one-way latency between two hosts, including
// any active overlay's extra latency.
func (n *Network) Latency(from, to Host) time.Duration {
	if st, ok := n.links[linkKey{from, to}]; ok {
		if st.hasProfile {
			return st.latency + st.extraLatency
		}
		if from == to {
			return n.cfg.LoopbackLatency + st.extraLatency
		}
		return n.cfg.OneWayLatency + st.extraLatency
	}
	if from == to {
		return n.cfg.LoopbackLatency
	}
	return n.cfg.OneWayLatency
}

// Send delivers fn on the destination host after the emulated latency.
// Messages may be dropped by partitions or the configured drop rate.
func (n *Network) Send(from, to Host, fn func()) {
	n.sent++
	base := n.cfg.OneWayLatency
	jitter := n.cfg.JitterRelStd
	drop := n.cfg.DropRate
	if from == to {
		base = n.cfg.LoopbackLatency
	}
	// One lookup resolves profile, overlay and partition together; runs
	// with no overrides never hash the pair at all.
	if len(n.links) > 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			if st.partitioned > 0 {
				n.dropped++
				return
			}
			if st.hasProfile {
				base, jitter, drop = st.latency, st.jitter, st.drop
			}
			base += st.extraLatency
			drop += st.extraDrop
		}
	}
	if drop > 0 && n.rng.Float64() < drop {
		n.dropped++
		return
	}
	d := time.Duration(n.rng.Jitter(float64(base), jitter))
	n.sched.After(d, fn)
}

// RTT reports the emulated round-trip time between two hosts.
func (n *Network) RTT(a, b Host) time.Duration {
	return n.Latency(a, b) + n.Latency(b, a)
}

// String summarizes the network configuration.
func (n *Network) String() string {
	return fmt.Sprintf("netem(one-way=%v loopback=%v jitter=%.2f drop=%.3f overrides=%d)",
		n.cfg.OneWayLatency, n.cfg.LoopbackLatency, n.cfg.JitterRelStd, n.cfg.DropRate, len(n.links))
}
