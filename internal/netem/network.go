// Package netem models the network connecting validators, full nodes and
// relayers.
//
// The paper's testbed is five machines on a LAN with an enforced 200 ms
// round-trip latency between any pair (§III-C). Network models a set of
// named hosts with a configurable one-way latency matrix plus jitter, on
// top of the shared sim.Scheduler virtual clock. Messages between
// processes on the same host are delivered with loopback latency.
//
// Beyond the paper's uniform matrix, individual directed host pairs can
// carry their own Profile (latency, jitter, drop) — the compilation
// target of the geo region model — plus a transient overlay (extra
// latency / extra drop) used by chaos fault injection for latency spikes
// and drop bursts, and a partition flag severing the pair entirely.
package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ibcbench/internal/sim"
)

// Host identifies a machine in the testbed.
type Host string

// Config describes the latency characteristics of the emulated network.
type Config struct {
	// OneWayLatency is half the enforced round-trip time between any two
	// distinct hosts. The paper enforces RTT = 200 ms, i.e. 100 ms one-way.
	OneWayLatency time.Duration

	// LoopbackLatency applies between processes on the same host. The
	// paper's relayer talks to its blockchain nodes "via local endpoints".
	LoopbackLatency time.Duration

	// JitterRelStd is the relative standard deviation applied to each
	// delivery, modeling OS scheduling and queueing noise.
	JitterRelStd float64

	// DropRate is the probability a message is silently dropped. The
	// paper's LAN does not lose messages; failure-injection tests set it.
	DropRate float64
}

// DefaultWAN reproduces the paper's emulated wide-area conditions.
func DefaultWAN() Config {
	return Config{
		OneWayLatency:   100 * time.Millisecond,
		LoopbackLatency: 200 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// DefaultLAN reproduces the paper's "<0.5 ms" local-area baseline runs.
func DefaultLAN() Config {
	return Config{
		OneWayLatency:   200 * time.Microsecond,
		LoopbackLatency: 50 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// Profile describes one directed host pair's path characteristics.
// Negative Jitter/Drop inherit the network Config's values.
type Profile struct {
	// OneWay is the base one-way latency of the path.
	OneWay time.Duration
	// Jitter is the relative standard deviation per delivery (<0 inherits
	// the Config default).
	Jitter float64
	// Drop is the loss probability on the path (<0 inherits the Config
	// default).
	Drop float64
}

// linkState is the resolved per-pair state: the base profile merged with
// any chaos overlay and the partition flag. One struct — and therefore
// one map lookup — covers everything Send needs to know about a pair.
type linkState struct {
	hasProfile bool
	latency    time.Duration
	jitter     float64
	drop       float64

	// Chaos overlays: transient additive latency and drop, settable
	// independently so a latency spike and a drop burst on the same pair
	// compose instead of clobbering each other.
	extraLatency time.Duration
	extraDrop    float64

	// partitioned counts active partitions on the pair: overlapping
	// faults compose, and a pair stays severed until every partition
	// that hit it has healed.
	partitioned int
}

// Partitioner routes deliveries between partitioned schedulers; the
// parallel runner (sim.Parallel) implements it. Slot 0 is the global
// partition, which executes only at quiesced window barriers.
type Partitioner interface {
	// PartitionOf resolves a host name to its partition slot (0 = global).
	PartitionOf(host string) int
	// SchedulerOf returns the scheduler behind a partition slot.
	SchedulerOf(slot int) *sim.Scheduler
	// Post delivers fn to slot dst at virtual time at, created at ctime
	// on slot src.
	Post(src, dst int, at, ctime time.Duration, fn func())
}

// Network delivers messages between hosts with emulated latency.
type Network struct {
	sched *sim.Scheduler
	cfg   Config

	// netSeed derives every host's private latency/drop RNG stream, so a
	// host's draw sequence depends only on its own send order — the
	// property that lets partitioned runs consume streams identically to
	// the serial scheduler.
	netSeed int64
	// rngMu guards the stream map only; each stream itself is drawn from
	// exclusively by its host's owning partition.
	rngMu    sync.RWMutex
	hostRNGs map[Host]*sim.RNG

	// linkMu guards links: Send and Latency only read (link mutation is
	// confined to deploy time and quiesced chaos barriers).
	linkMu sync.RWMutex
	// links holds per-directed-pair overrides (profiles, overlays,
	// partitions). The hot path consults it with a single lookup, skipped
	// entirely while the map is empty.
	links map[linkKey]*linkState

	// parts is nil in serial runs; when set, deliveries route to the
	// destination host's partition scheduler or its barrier mailbox.
	parts Partitioner

	sent    atomic.Uint64
	dropped atomic.Uint64
}

type linkKey struct{ from, to Host }

// New returns a network using the given clock, randomness and config.
// One draw from rng seeds the per-host delivery streams.
func New(s *sim.Scheduler, rng *sim.RNG, cfg Config) *Network {
	return &Network{
		sched:    s,
		netSeed:  rng.Int63(),
		hostRNGs: make(map[Host]*sim.RNG),
		cfg:      cfg,
		links:    make(map[linkKey]*linkState),
	}
}

// SetPartitioner routes subsequent deliveries through partitioned
// schedulers. Call before any Send.
func (n *Network) SetPartitioner(p Partitioner) { n.parts = p }

// SchedulerFor returns the scheduler owning a host's events: the shared
// scheduler in serial runs, the host's partition scheduler when
// partitioned. Components use it to run host-local work (client
// timeouts, retries) on the clock that owns the host.
func (n *Network) SchedulerFor(h Host) *sim.Scheduler {
	if n.parts == nil {
		return n.sched
	}
	return n.parts.SchedulerOf(n.parts.PartitionOf(string(h)))
}

// hostRNG returns the sender's private stream, derived from the network
// seed and the host name so creation order cannot perturb it.
func (n *Network) hostRNG(h Host) *sim.RNG {
	n.rngMu.RLock()
	r := n.hostRNGs[h]
	n.rngMu.RUnlock()
	if r != nil {
		return r
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	if r = n.hostRNGs[h]; r == nil {
		seed := n.netSeed
		for _, b := range []byte(h) {
			seed = seed*1099511628211 + int64(b)
		}
		r = sim.NewRNG(seed)
		n.hostRNGs[h] = r
	}
	return r
}

func (n *Network) state(from, to Host) *linkState {
	k := linkKey{from, to}
	st := n.links[k]
	if st == nil {
		st = &linkState{}
		n.links[k] = st
	}
	return st
}

// dropState removes a pair's entry when it no longer overrides anything,
// keeping the empty-map fast path available after heals/clears.
func (n *Network) dropState(from, to Host, st *linkState) {
	if !st.hasProfile && st.partitioned == 0 && st.extraLatency == 0 && st.extraDrop == 0 {
		delete(n.links, linkKey{from, to})
	}
}

// SetLinkProfile overrides the directed path from one host to another.
func (n *Network) SetLinkProfile(from, to Host, p Profile) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	st := n.state(from, to)
	st.hasProfile = true
	st.latency = p.OneWay
	st.jitter = p.Jitter
	if p.Jitter < 0 {
		st.jitter = n.cfg.JitterRelStd
	}
	st.drop = p.Drop
	if p.Drop < 0 {
		st.drop = n.cfg.DropRate
	}
}

// SetLinkLatency overrides only the one-way latency from one host to
// another, inheriting the config's jitter and drop rate.
func (n *Network) SetLinkLatency(from, to Host, d time.Duration) {
	n.SetLinkProfile(from, to, Profile{OneWay: d, Jitter: -1, Drop: -1})
}

// SetLinkExtraLatency sets the latency component of a directed pair's
// fault overlay (0 clears it; the drop component is untouched, so
// spikes and bursts on one pair compose).
func (n *Network) SetLinkExtraLatency(from, to Host, extra time.Duration) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if extra == 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			st.extraLatency = 0
			n.dropState(from, to, st)
		}
		return
	}
	n.state(from, to).extraLatency = extra
}

// SetLinkExtraDrop sets the drop component of a directed pair's fault
// overlay (0 clears it; the latency component is untouched).
func (n *Network) SetLinkExtraDrop(from, to Host, extra float64) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if extra == 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			st.extraDrop = 0
			n.dropState(from, to, st)
		}
		return
	}
	n.state(from, to).extraDrop = extra
}

// Partition severs communication in both directions between two hosts.
// Partitions are counted: overlapping faults hitting the same pair
// compose, and the pair heals only when every partition has healed.
func (n *Network) Partition(a, b Host) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	n.state(a, b).partitioned++
	n.state(b, a).partitioned++
}

// Heal removes one partition between two hosts (no-op beyond balance).
func (n *Network) Heal(a, b Host) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	for _, k := range [2]linkKey{{a, b}, {b, a}} {
		if st, ok := n.links[k]; ok && st.partitioned > 0 {
			st.partitioned--
			n.dropState(k.from, k.to, st)
		}
	}
}

// Partitioned reports whether the directed pair is currently severed.
func (n *Network) Partitioned(from, to Host) bool {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	st, ok := n.links[linkKey{from, to}]
	return ok && st.partitioned > 0
}

// Sent reports the number of messages handed to the network.
func (n *Network) Sent() uint64 { return n.sent.Load() }

// Dropped reports messages lost to DropRate, overlays or partitions.
func (n *Network) Dropped() uint64 { return n.dropped.Load() }

// Latency reports the base one-way latency between two hosts, including
// any active overlay's extra latency.
func (n *Network) Latency(from, to Host) time.Duration {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	if st, ok := n.links[linkKey{from, to}]; ok {
		if st.hasProfile {
			return st.latency + st.extraLatency
		}
		if from == to {
			return n.cfg.LoopbackLatency + st.extraLatency
		}
		return n.cfg.OneWayLatency + st.extraLatency
	}
	if from == to {
		return n.cfg.LoopbackLatency
	}
	return n.cfg.OneWayLatency
}

// Send delivers fn on the destination host after the emulated latency.
// Messages may be dropped by partitions or the configured drop rate.
//
// Latency and drop draws consume the sender host's private stream, so
// they depend only on that host's own send order. Send must run on the
// partition owning `from` (or at a quiesced barrier, when every clock
// agrees) — which every component satisfies by construction, since
// actors only emit from their own host.
func (n *Network) Send(from, to Host, fn func()) {
	n.sent.Add(1)
	base := n.cfg.OneWayLatency
	jitter := n.cfg.JitterRelStd
	drop := n.cfg.DropRate
	if from == to {
		base = n.cfg.LoopbackLatency
	}
	// One lookup resolves profile, overlay and partition together.
	n.linkMu.RLock()
	if len(n.links) > 0 {
		if st, ok := n.links[linkKey{from, to}]; ok {
			if st.partitioned > 0 {
				n.linkMu.RUnlock()
				n.dropped.Add(1)
				return
			}
			if st.hasProfile {
				base, jitter, drop = st.latency, st.jitter, st.drop
			}
			base += st.extraLatency
			drop += st.extraDrop
		}
	}
	n.linkMu.RUnlock()
	rng := n.hostRNG(from)
	if drop > 0 && rng.Float64() < drop {
		n.dropped.Add(1)
		return
	}
	d := time.Duration(rng.Jitter(float64(base), jitter))
	if n.parts == nil {
		n.sched.After(d, fn)
		return
	}
	sp := n.parts.PartitionOf(string(from))
	dp := n.parts.PartitionOf(string(to))
	if sp == dp {
		// Same partition (or both global): an ordinary scheduler event.
		n.parts.SchedulerOf(dp).After(d, fn)
		return
	}
	now := n.parts.SchedulerOf(sp).Now()
	n.parts.Post(sp, dp, now+d, now, fn)
}

// MinCrossPartitionLatency reports a lower bound on the jittered
// delivery latency of every cross-partition send: the minimum over the
// network default and all cross-partition link profiles of
// base·(1−4·jitter) — sim.RNG.Jitter truncates at ±4σ, and chaos
// overlays only ever add latency. A non-positive bound means the
// deployment has no usable lookahead (parallel runs must fall back to
// serial). partOf resolves a host to its partition slot.
func (n *Network) MinCrossPartitionLatency(partOf func(string) int) time.Duration {
	eff := func(base time.Duration, jitter float64) time.Duration {
		if jitter <= 0 {
			return base
		}
		return time.Duration(float64(base) * (1 - 4*jitter))
	}
	// Pairs without an override use the config default; include it
	// unconditionally since future hosts may appear on default links.
	min := eff(n.cfg.OneWayLatency, n.cfg.JitterRelStd)
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	for k, st := range n.links {
		if !st.hasProfile || partOf(string(k.from)) == partOf(string(k.to)) {
			continue
		}
		if e := eff(st.latency, st.jitter); e < min {
			min = e
		}
	}
	return min
}

// RTT reports the emulated round-trip time between two hosts.
func (n *Network) RTT(a, b Host) time.Duration {
	return n.Latency(a, b) + n.Latency(b, a)
}

// String summarizes the network configuration.
func (n *Network) String() string {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	return fmt.Sprintf("netem(one-way=%v loopback=%v jitter=%.2f drop=%.3f overrides=%d)",
		n.cfg.OneWayLatency, n.cfg.LoopbackLatency, n.cfg.JitterRelStd, n.cfg.DropRate, len(n.links))
}
