// Package netem models the network connecting validators, full nodes and
// relayers.
//
// The paper's testbed is five machines on a LAN with an enforced 200 ms
// round-trip latency between any pair (§III-C). Network models a set of
// named hosts with a configurable one-way latency matrix plus jitter, on
// top of the shared sim.Scheduler virtual clock. Messages between
// processes on the same host are delivered with loopback latency.
package netem

import (
	"fmt"
	"time"

	"ibcbench/internal/sim"
)

// Host identifies a machine in the testbed.
type Host string

// Config describes the latency characteristics of the emulated network.
type Config struct {
	// OneWayLatency is half the enforced round-trip time between any two
	// distinct hosts. The paper enforces RTT = 200 ms, i.e. 100 ms one-way.
	OneWayLatency time.Duration

	// LoopbackLatency applies between processes on the same host. The
	// paper's relayer talks to its blockchain nodes "via local endpoints".
	LoopbackLatency time.Duration

	// JitterRelStd is the relative standard deviation applied to each
	// delivery, modeling OS scheduling and queueing noise.
	JitterRelStd float64

	// DropRate is the probability a message is silently dropped. The
	// paper's LAN does not lose messages; failure-injection tests set it.
	DropRate float64
}

// DefaultWAN reproduces the paper's emulated wide-area conditions.
func DefaultWAN() Config {
	return Config{
		OneWayLatency:   100 * time.Millisecond,
		LoopbackLatency: 200 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// DefaultLAN reproduces the paper's "<0.5 ms" local-area baseline runs.
func DefaultLAN() Config {
	return Config{
		OneWayLatency:   200 * time.Microsecond,
		LoopbackLatency: 50 * time.Microsecond,
		JitterRelStd:    0.05,
	}
}

// Network delivers messages between hosts with emulated latency.
type Network struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	cfg   Config

	// links optionally overrides latency for specific host pairs.
	links map[linkKey]time.Duration

	// partitioned holds host pairs that currently cannot communicate.
	partitioned map[linkKey]bool

	sent    uint64
	dropped uint64
}

type linkKey struct{ from, to Host }

// New returns a network using the given clock, randomness and config.
func New(s *sim.Scheduler, rng *sim.RNG, cfg Config) *Network {
	return &Network{
		sched:       s,
		rng:         rng,
		cfg:         cfg,
		links:       make(map[linkKey]time.Duration),
		partitioned: make(map[linkKey]bool),
	}
}

// SetLinkLatency overrides the one-way latency from one host to another.
func (n *Network) SetLinkLatency(from, to Host, d time.Duration) {
	n.links[linkKey{from, to}] = d
}

// Partition severs communication in both directions between two hosts.
func (n *Network) Partition(a, b Host) {
	n.partitioned[linkKey{a, b}] = true
	n.partitioned[linkKey{b, a}] = true
}

// Heal restores communication between two hosts.
func (n *Network) Heal(a, b Host) {
	delete(n.partitioned, linkKey{a, b})
	delete(n.partitioned, linkKey{b, a})
}

// Sent reports the number of messages handed to the network.
func (n *Network) Sent() uint64 { return n.sent }

// Dropped reports messages lost to DropRate or partitions.
func (n *Network) Dropped() uint64 { return n.dropped }

// Latency reports the base one-way latency between two hosts.
func (n *Network) Latency(from, to Host) time.Duration {
	if d, ok := n.links[linkKey{from, to}]; ok {
		return d
	}
	if from == to {
		return n.cfg.LoopbackLatency
	}
	return n.cfg.OneWayLatency
}

// Send delivers fn on the destination host after the emulated latency.
// Messages may be dropped by partitions or the configured drop rate.
func (n *Network) Send(from, to Host, fn func()) {
	n.sent++
	if n.partitioned[linkKey{from, to}] {
		n.dropped++
		return
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.dropped++
		return
	}
	base := n.Latency(from, to)
	d := time.Duration(n.rng.Jitter(float64(base), n.cfg.JitterRelStd))
	n.sched.After(d, fn)
}

// RTT reports the emulated round-trip time between two hosts.
func (n *Network) RTT(a, b Host) time.Duration {
	return n.Latency(a, b) + n.Latency(b, a)
}

// String summarizes the network configuration.
func (n *Network) String() string {
	return fmt.Sprintf("netem(one-way=%v loopback=%v jitter=%.2f drop=%.3f)",
		n.cfg.OneWayLatency, n.cfg.LoopbackLatency, n.cfg.JitterRelStd, n.cfg.DropRate)
}
