package netem

import (
	"testing"
	"time"

	"ibcbench/internal/sim"
)

func newNet(cfg Config) (*sim.Scheduler, *Network) {
	s := sim.NewScheduler()
	return s, New(s, sim.NewRNG(1), cfg)
}

func TestSendLatency(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond}
	s, n := newNet(cfg)
	var at time.Duration
	n.Send("a", "b", func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 100*time.Millisecond {
		t.Fatalf("delivered at %v, want 100ms", at)
	}
}

func TestLoopback(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond, LoopbackLatency: time.Millisecond}
	s, n := newNet(cfg)
	var at time.Duration
	n.Send("a", "a", func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != time.Millisecond {
		t.Fatalf("loopback delivered at %v, want 1ms", at)
	}
}

func TestLinkOverride(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond}
	s, n := newNet(cfg)
	n.SetLinkLatency("a", "b", 5*time.Millisecond)
	var at time.Duration
	n.Send("a", "b", func() { at = s.Now() })
	var back time.Duration
	n.Send("b", "a", func() { back = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("override delivered at %v", at)
	}
	if back != 100*time.Millisecond {
		t.Fatalf("reverse direction %v, want default", back)
	}
	if rtt := n.RTT("a", "b"); rtt != 105*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: time.Millisecond})
	n.Partition("a", "b")
	delivered := 0
	n.Send("a", "b", func() { delivered++ })
	n.Send("b", "a", func() { delivered++ })
	n.Send("a", "c", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want only a->c", delivered)
	}
	if n.Dropped() != 2 {
		t.Fatalf("dropped = %d", n.Dropped())
	}
	n.Heal("a", "b")
	n.Send("a", "b", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 2 {
		t.Fatal("healed link did not deliver")
	}
}

func TestDropRate(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: time.Millisecond, DropRate: 0.5})
	delivered := 0
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", func() { delivered++ })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("delivered %d of %d with 50%% drop", delivered, total)
	}
	if n.Sent() != total {
		t.Fatalf("sent = %d", n.Sent())
	}
	if int(n.Dropped())+delivered != total {
		t.Fatalf("dropped(%d)+delivered(%d) != total", n.Dropped(), delivered)
	}
}

func TestJitterVariesDelivery(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond, JitterRelStd: 0.1}
	s, n := newNet(cfg)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		n.Send("a", "b", func() { seen[s.Now()] = true })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delivery times", len(seen))
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	wan := DefaultWAN()
	if rtt := 2 * wan.OneWayLatency; rtt != 200*time.Millisecond {
		t.Fatalf("WAN RTT = %v, paper enforces 200ms", rtt)
	}
	lan := DefaultLAN()
	if rtt := 2 * lan.OneWayLatency; rtt >= 500*time.Microsecond {
		t.Fatalf("LAN RTT = %v, paper reports <0.5ms", rtt)
	}
}
