package netem

import (
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/sim"
)

func newNet(cfg Config) (*sim.Scheduler, *Network) {
	s := sim.NewScheduler()
	return s, New(s, sim.NewRNG(1), cfg)
}

func TestSendLatency(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond}
	s, n := newNet(cfg)
	var at time.Duration
	n.Send("a", "b", func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 100*time.Millisecond {
		t.Fatalf("delivered at %v, want 100ms", at)
	}
}

func TestLoopback(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond, LoopbackLatency: time.Millisecond}
	s, n := newNet(cfg)
	var at time.Duration
	n.Send("a", "a", func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != time.Millisecond {
		t.Fatalf("loopback delivered at %v, want 1ms", at)
	}
}

func TestLinkOverride(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond}
	s, n := newNet(cfg)
	n.SetLinkLatency("a", "b", 5*time.Millisecond)
	var at time.Duration
	n.Send("a", "b", func() { at = s.Now() })
	var back time.Duration
	n.Send("b", "a", func() { back = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("override delivered at %v", at)
	}
	if back != 100*time.Millisecond {
		t.Fatalf("reverse direction %v, want default", back)
	}
	if rtt := n.RTT("a", "b"); rtt != 105*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: time.Millisecond})
	n.Partition("a", "b")
	delivered := 0
	n.Send("a", "b", func() { delivered++ })
	n.Send("b", "a", func() { delivered++ })
	n.Send("a", "c", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want only a->c", delivered)
	}
	if n.Dropped() != 2 {
		t.Fatalf("dropped = %d", n.Dropped())
	}
	n.Heal("a", "b")
	n.Send("a", "b", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 2 {
		t.Fatal("healed link did not deliver")
	}
}

func TestDropRate(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: time.Millisecond, DropRate: 0.5})
	delivered := 0
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", func() { delivered++ })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("delivered %d of %d with 50%% drop", delivered, total)
	}
	if n.Sent() != total {
		t.Fatalf("sent = %d", n.Sent())
	}
	if int(n.Dropped())+delivered != total {
		t.Fatalf("dropped(%d)+delivered(%d) != total", n.Dropped(), delivered)
	}
}

func TestJitterVariesDelivery(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond, JitterRelStd: 0.1}
	s, n := newNet(cfg)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		n.Send("a", "b", func() { seen[s.Now()] = true })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delivery times", len(seen))
	}
}

func TestLinkProfileOverridesJitterAndDrop(t *testing.T) {
	cfg := Config{OneWayLatency: 100 * time.Millisecond, JitterRelStd: 0}
	s, n := newNet(cfg)
	n.SetLinkProfile("a", "b", Profile{OneWay: 10 * time.Millisecond, Jitter: 0, Drop: 1})
	delivered := 0
	n.Send("a", "b", func() { delivered++ }) // dropped: per-link Drop=1
	n.Send("b", "a", func() { delivered++ }) // default path
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (a->b drops at rate 1)", delivered)
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d", n.Dropped())
	}
}

func TestLinkOverlaySpikeAndClear(t *testing.T) {
	cfg := Config{OneWayLatency: 10 * time.Millisecond}
	s, n := newNet(cfg)
	n.SetLinkExtraLatency("a", "b", 40*time.Millisecond)
	var at time.Duration
	n.Send("a", "b", func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 50*time.Millisecond {
		t.Fatalf("spiked delivery at %v, want 50ms", at)
	}
	if got := n.Latency("a", "b"); got != 50*time.Millisecond {
		t.Fatalf("Latency under overlay = %v", got)
	}
	n.SetLinkExtraLatency("a", "b", 0)
	n.Send("a", "b", func() { at = s.Now() - at })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("post-clear delivery took %v, want 10ms", at)
	}
}

func TestLinkOverlayDropBurst(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: time.Millisecond})
	n.SetLinkExtraDrop("a", "b", 1)
	delivered := 0
	n.Send("a", "b", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 || n.Dropped() != 1 {
		t.Fatalf("burst did not drop: delivered=%d dropped=%d", delivered, n.Dropped())
	}
	n.SetLinkExtraDrop("a", "b", 0)
	n.Send("a", "b", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatal("cleared burst still dropping")
	}
}

// TestOverlayComponentsCompose: a latency spike and a drop burst on one
// pair are independent — setting or clearing one leaves the other.
func TestOverlayComponentsCompose(t *testing.T) {
	s, n := newNet(Config{OneWayLatency: 10 * time.Millisecond})
	n.SetLinkExtraLatency("a", "b", 40*time.Millisecond)
	n.SetLinkExtraDrop("a", "b", 1)
	delivered := 0
	n.Send("a", "b", func() { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 {
		t.Fatal("burst not active alongside spike")
	}
	// Clearing the burst must not cancel the spike.
	n.SetLinkExtraDrop("a", "b", 0)
	var at time.Duration
	start := s.Now()
	n.Send("a", "b", func() { at = s.Now() - start })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 50*time.Millisecond {
		t.Fatalf("spike lost after burst cleared: delivery took %v", at)
	}
}

func TestPartitionsRefcount(t *testing.T) {
	_, n := newNet(Config{OneWayLatency: time.Millisecond})
	n.Partition("a", "b") // fault 1 (e.g. whole-link blackout)
	n.Partition("a", "b") // fault 2 (e.g. relayer-host partition)
	if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
		t.Fatal("partition not visible")
	}
	n.Heal("a", "b") // fault 2 heals; fault 1 still severs the pair
	if !n.Partitioned("a", "b") {
		t.Fatal("healing one overlapping fault un-severed the pair")
	}
	n.Heal("a", "b")
	if n.Partitioned("a", "b") {
		t.Fatal("heal not visible")
	}
	n.Heal("a", "b") // unbalanced heal is a no-op
	if n.Partitioned("a", "b") {
		t.Fatal("unbalanced heal partitioned the pair")
	}
}

// TestSendSteadyStateAllocs pins the hot-path satellite: after warm-up,
// Send + dispatch allocates nothing (the scheduler recycles events and
// the override map is consulted with at most one lookup).
func TestSendSteadyStateAllocs(t *testing.T) {
	s, n := newNet(DefaultWAN())
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the event freelist and queue capacity
		n.Send("a", "b", fn)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		n.Send("a", "b", fn)
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Send allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkNetemSend pins the per-message send cost. Before the hot-path
// rework each Send paid two two-string map-key hashes (partition check +
// latency override) and one *event heap allocation (ROADMAP's "netem
// send allocation"); after it, the override map is consulted with a
// single lookup — skipped entirely while no overrides exist — and the
// scheduler recycles fired events, so steady state runs at 0 allocs/op
// (was 1 alloc/op for the scheduled event).
func BenchmarkNetemSend(b *testing.B) {
	fn := func() {}
	bench := func(b *testing.B, setup func(*Network)) {
		s, n := newNet(DefaultWAN())
		setup(n)
		for i := 0; i < 64; i++ {
			n.Send("a", "b", fn)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Send("a", "b", fn)
			if s.Len() >= 1024 {
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("uniform", func(b *testing.B) {
		bench(b, func(*Network) {})
	})
	b.Run("with-profile", func(b *testing.B) {
		bench(b, func(n *Network) {
			n.SetLinkProfile("a", "b", Profile{OneWay: 40 * time.Millisecond, Jitter: -1, Drop: -1})
		})
	})
	b.Run("other-pairs-overridden", func(b *testing.B) {
		bench(b, func(n *Network) {
			for i := 0; i < 64; i++ {
				n.SetLinkLatency(Host(fmt.Sprintf("x%d", i)), "y", 5*time.Millisecond)
			}
		})
	})
}

func TestDefaultsMatchPaper(t *testing.T) {
	wan := DefaultWAN()
	if rtt := 2 * wan.OneWayLatency; rtt != 200*time.Millisecond {
		t.Fatalf("WAN RTT = %v, paper enforces 200ms", rtt)
	}
	lan := DefaultLAN()
	if rtt := 2 * lan.OneWayLatency; rtt >= 500*time.Microsecond {
		t.Fatalf("LAN RTT = %v, paper reports <0.5ms", rtt)
	}
}
