package rpc

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/eventindex"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/tendermint/types"
)

type tx struct {
	id    string
	msgs  int
	bytes int
}

func (t tx) Hash() types.Hash  { return sha256.Sum256([]byte(t.id)) }
func (t tx) Size() int         { return t.bytes }
func (t tx) GasWanted() uint64 { return 1 }

type fixture struct {
	sched  *sim.Scheduler
	server *Server
	stor   *store.Store
	pool   *mempool.Pool
	idx    *eventindex.Index
	client netem.Host
}

func newFixture(cfg Config) *fixture {
	sched := sim.NewScheduler()
	net := netem.New(sched, sim.NewRNG(1), netem.Config{
		OneWayLatency:   100 * time.Millisecond,
		LoopbackLatency: time.Millisecond,
	})
	stor := store.New("chain-a")
	idx := eventindex.New("chain-a")
	pool := mempool.New(mempool.DefaultConfig(), nil)
	srv := New(sched, net, "chain-a/val0", cfg, stor, pool,
		func(t types.Tx) time.Duration {
			// 10ms per message: easy arithmetic for tests.
			if tt, ok := t.(tx); ok {
				return time.Duration(tt.msgs) * 10 * time.Millisecond
			}
			return time.Millisecond
		},
		func(txs []types.Tx) int {
			n := 0
			for _, t := range txs {
				n += t.Size()
			}
			return n
		},
		func(account string) (uint64, error) {
			if account == "alice" {
				return 7, nil
			}
			return 0, errors.New("no such account")
		},
		func(t types.Tx) int {
			if tt, ok := t.(tx); ok {
				return tt.msgs
			}
			return 0
		},
		idx.At)
	return &fixture{sched: sched, server: srv, stor: stor, pool: pool, idx: idx, client: "relayer-host"}
}

func commitBlock(f *fixture, height int64, txs ...types.Tx) *store.CommittedBlock {
	results := make([]abci.TxResult, len(txs))
	cb := &store.CommittedBlock{
		Block:   &types.Block{Header: types.Header{Height: height, Time: time.Duration(height) * 5 * time.Second}, Data: txs},
		Commit:  &types.Commit{Height: height},
		Results: results,
	}
	if err := f.stor.Append(cb); err != nil {
		panic(err)
	}
	infos, err := f.stor.TxsAtHeight(height)
	if err != nil {
		panic(err)
	}
	f.idx.IndexTxs(height, cb.Block.Header.Time, infos)
	return cb
}

func TestBroadcastAddsToMempool(t *testing.T) {
	f := newFixture(DefaultConfig())
	var got error
	called := false
	f.server.BroadcastTxSync(f.client, tx{id: "t1"}, func(err error) {
		called = true
		got = err
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !called || got != nil {
		t.Fatalf("called=%v err=%v", called, got)
	}
	if f.pool.Size() != 1 {
		t.Fatalf("pool size = %d", f.pool.Size())
	}
}

func TestBroadcastReportsCheckTxError(t *testing.T) {
	f := newFixture(DefaultConfig())
	f.server.BroadcastTxSync(f.client, tx{id: "dup"}, nil)
	var got error
	f.server.BroadcastTxSync(f.client, tx{id: "dup"}, func(err error) { got = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, mempool.ErrDuplicate) {
		t.Fatalf("err = %v, want duplicate", got)
	}
}

func TestSerialQueryProcessing(t *testing.T) {
	// Two heavy queries submitted together must be served back to back,
	// not concurrently: the second completes ~one service time later.
	f := newFixture(DefaultConfig())
	heavy := tx{id: "h", msgs: 100} // 1s service each
	commitBlock(f, 1, heavy)
	var first, second time.Duration
	f.server.QueryTxData(f.client, heavy.Hash(), func(*store.TxInfo, error) { first = f.sched.Now() })
	f.server.QueryTxData(f.client, heavy.Hash(), func(*store.TxInfo, error) { second = f.sched.Now() })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	gap := second - first
	if gap < 900*time.Millisecond || gap > 1100*time.Millisecond {
		t.Fatalf("gap between serial queries = %v, want ~1s", gap)
	}
}

func TestQueryTxConfirmation(t *testing.T) {
	f := newFixture(DefaultConfig())
	pending := tx{id: "pending"}
	var err1 error
	f.server.QueryTx(f.client, pending.Hash(), func(_ *store.TxInfo, err error) { err1 = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrNotFound) {
		t.Fatalf("pending query err = %v", err1)
	}
	commitBlock(f, 1, pending)
	var info *store.TxInfo
	f.server.QueryTx(f.client, pending.Hash(), func(i *store.TxInfo, err error) { info = i })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Height != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestClientTimeoutUnderBacklog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClientTimeout = 2 * time.Second
	f := newFixture(cfg)
	heavy := tx{id: "h", msgs: 1000} // 10s service
	commitBlock(f, 1, heavy)
	// The first request monopolizes the serial resource; the second
	// times out client-side ("failed tx: no confirmation").
	f.server.QueryTxData(f.client, heavy.Hash(), nil1)
	var got error
	f.server.QueryTx(f.client, heavy.Hash(), func(_ *store.TxInfo, err error) { got = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got)
	}
}

func nil1(*store.TxInfo, error) {}

func TestQueryBlockTxs(t *testing.T) {
	f := newFixture(DefaultConfig())
	commitBlock(f, 1, tx{id: "a", msgs: 1}, tx{id: "b", msgs: 2})
	var infos []*store.TxInfo
	f.server.QueryBlockTxs(f.client, 1, func(is []*store.TxInfo, err error) { infos = is })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %d", len(infos))
	}
	var missErr error
	f.server.QueryBlockTxs(f.client, 9, func(_ []*store.TxInfo, err error) { missErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(missErr, ErrNotFound) {
		t.Fatalf("missing block err = %v", missErr)
	}
}

func TestQueryBlockEventsMatchesBlockTxsCost(t *testing.T) {
	// The indexed query must serve the shared BlockEvents at exactly the
	// tx_search service cost: same reply time as QueryBlockTxs.
	f := newFixture(DefaultConfig())
	commitBlock(f, 1, tx{id: "a", msgs: 3}, tx{id: "b", msgs: 2})
	var atTxs time.Duration
	f.server.QueryBlockTxs(f.client, 1, func([]*store.TxInfo, error) { atTxs = f.sched.Now() })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	f2 := newFixture(DefaultConfig())
	commitBlock(f2, 1, tx{id: "a", msgs: 3}, tx{id: "b", msgs: 2})
	var atEvents time.Duration
	var be *eventindex.BlockEvents
	f2.server.QueryBlockEvents(f2.client, 1, func(b *eventindex.BlockEvents, err error) {
		be, atEvents = b, f2.sched.Now()
	})
	if err := f2.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if atEvents != atTxs {
		t.Fatalf("QueryBlockEvents at %v, QueryBlockTxs at %v: costs diverged", atEvents, atTxs)
	}
	if be == nil || be.Height != 1 {
		t.Fatalf("block events = %+v", be)
	}
	if be != f2.idx.At(1) {
		t.Fatal("query did not serve the shared index instance")
	}
	var missErr error
	f2.server.QueryBlockEvents(f2.client, 9, func(_ *eventindex.BlockEvents, err error) { missErr = err })
	if err := f2.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(missErr, ErrNotFound) {
		t.Fatalf("missing block err = %v", missErr)
	}
}

func TestSubscriptionCarriesSharedIndex(t *testing.T) {
	f := newFixture(DefaultConfig())
	var frame *EventFrame
	f.server.Subscribe(f.client, func(fr *EventFrame) { frame = fr })
	// Registration rides the network; let it land before publishing.
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	cb := commitBlock(f, 1, tx{id: "a", bytes: 100})
	f.server.PublishBlock(cb)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if frame == nil || frame.Events == nil {
		t.Fatalf("frame = %+v, want attached event index", frame)
	}
	if frame.Events != f.idx.At(1) {
		t.Fatal("frame carries a private index, not the shared one")
	}
}

func TestQueryAccountSequence(t *testing.T) {
	f := newFixture(DefaultConfig())
	var seq uint64
	f.server.QueryAccountSequence(f.client, "alice", func(s uint64, err error) { seq = s })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("seq = %d", seq)
	}
}

func TestQueryHeight(t *testing.T) {
	f := newFixture(DefaultConfig())
	commitBlock(f, 1)
	commitBlock(f, 2)
	var h int64
	f.server.QueryHeight(f.client, func(got int64, err error) { h = got })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("height = %d", h)
	}
}

func TestSubscriptionDeliversEvents(t *testing.T) {
	f := newFixture(DefaultConfig())
	var frames []*EventFrame
	f.server.Subscribe(f.client, func(fr *EventFrame) { frames = append(frames, fr) })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	cb := commitBlock(f, 1, tx{id: "a", bytes: 100})
	f.server.PublishBlock(cb)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0].Err != nil || len(frames[0].Txs) != 1 || frames[0].Height != 1 {
		t.Fatalf("frame = %+v", frames[0])
	}
}

func TestWebSocketFrameLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFrameBytes = 1000
	f := newFixture(cfg)
	var frame *EventFrame
	f.server.Subscribe(f.client, func(fr *EventFrame) { frame = fr })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	cb := commitBlock(f, 1, tx{id: "big", bytes: 2000})
	f.server.PublishBlock(cb)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if frame == nil {
		t.Fatal("no frame delivered")
	}
	if !errors.Is(frame.Err, ErrFrameTooLarge) {
		t.Fatalf("frame err = %v, want ErrFrameTooLarge", frame.Err)
	}
	if frame.Txs != nil {
		t.Fatal("oversized frame still delivered events")
	}
	if _, _, fe := f.server.Stats(); fe != 1 {
		t.Fatalf("frameErrors = %d", fe)
	}
}

func TestBroadcastContentionDelaysConfirmation(t *testing.T) {
	// Many broadcasts queued ahead of a confirmation query push its
	// completion out: the Table I mechanism where high submission rates
	// stress the shared RPC endpoint.
	cfg := DefaultConfig()
	cfg.ClientTimeout = 0
	f := newFixture(cfg)
	probe := tx{id: "probe"}
	commitBlock(f, 1, probe)
	var baseline time.Duration
	f.server.QueryTx(f.client, probe.Hash(), func(*store.TxInfo, error) { baseline = f.sched.Now() })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}

	f2 := newFixture(cfg)
	commitBlock(f2, 1, probe)
	for i := 0; i < 100; i++ {
		f2.server.BroadcastTxSync(f2.client, tx{id: fmt.Sprintf("flood-%d", i)}, nil)
	}
	var loaded time.Duration
	f2.server.QueryTx(f2.client, probe.Hash(), func(*store.TxInfo, error) { loaded = f2.sched.Now() })
	if err := f2.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if loaded < baseline+500*time.Millisecond {
		t.Fatalf("confirmation under load at %v vs %v baseline: no contention", loaded, baseline)
	}
}
