// Package rpc models the Tendermint RPC service of the primary full
// node, reproducing the paper's two central service-level findings:
//
//   - Queries are processed one at a time: "Tendermint is unable to
//     process queries in parallel, requiring the relayer to wait while
//     its requests for data are processed one by one" (§IV-B). All
//     request kinds — broadcasts, confirmations and data pulls — share a
//     single serial resource, which is why high submission rates also
//     degrade confirmation queries (Table I's failure modes).
//
//   - WebSocket NewBlock event frames are capped at 16 MiB; larger
//     frames fail with the relayer-visible "Failed to collect events"
//     error (§V), leaving pending transfers stuck.
package rpc

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ibcbench/internal/eventindex"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/tendermint/types"
)

// Service errors.
var (
	// ErrTimeout reports a client-side RPC deadline expiry
	// (the relayer logs these as "failed tx: no confirmation").
	ErrTimeout = errors.New("rpc: request timed out")
	// ErrFrameTooLarge is the WebSocket overflow: the paper's
	// "Failed to collect events" condition.
	ErrFrameTooLarge = errors.New("rpc: failed to collect events: websocket frame exceeds 16MiB")
	// ErrNotFound reports a missing tx/block.
	ErrNotFound = errors.New("rpc: not found")
)

// Config parameterizes the service model.
type Config struct {
	// BroadcastCost is the serial service time per broadcast_tx.
	BroadcastCost time.Duration
	// StatusCost is the serial service time for light queries.
	StatusCost time.Duration
	// MaxFrameBytes caps WebSocket event frames (paper: 16 MiB).
	MaxFrameBytes int
	// PageScaleMsgs models pagination overhead: a data-pull's cost is
	// scaled by (1 + (blockMsgs/PageScaleMsgs)^2), capturing the paper's
	// observation that large blocks return hundreds of thousands of
	// output lines across multiple pages whose cost grows superlinearly
	// (§V). 0 disables scaling.
	PageScaleMsgs int
	// ClientTimeout bounds how long callers wait for a response.
	ClientTimeout time.Duration
}

// DefaultConfig mirrors the calibrated service times.
func DefaultConfig() Config {
	return Config{
		BroadcastCost: simconf.BroadcastTxCost,
		StatusCost:    simconf.StatusQueryCost,
		MaxFrameBytes: simconf.WebSocketMaxFrameBytes,
		PageScaleMsgs: simconf.QueryPageScaleMsgs,
		ClientTimeout: 10 * time.Second,
	}
}

// EventFrame is one NewBlock notification delivered to subscribers.
type EventFrame struct {
	Height     int64
	BlockTime  time.Duration
	Txs        []*store.TxInfo
	FrameBytes int
	// Events is the chain's shared event index for this block: decoded
	// once at commit time and served by reference, so K subscribed
	// relayers share a single scan. Nil on error frames (events were not
	// collected) and on servers without an index source.
	Events *eventindex.BlockEvents
	// Err is ErrFrameTooLarge when the frame exceeded the limit; the
	// Txs slice is then nil (events were not collected).
	Err error
}

// Server is the RPC endpoint of one chain's primary full node.
type Server struct {
	sched *sim.Scheduler
	net   *netem.Network
	host  netem.Host
	cfg   Config

	stor *store.Store
	pool *mempool.Pool

	// serial is the single-threaded query processor.
	serial *sim.SerialResource

	// txQueryCost models response-size-proportional data-pull times.
	txQueryCost func(types.Tx) time.Duration
	// eventFrameBytes sizes a block's WebSocket event frame.
	eventFrameBytes func([]types.Tx) int
	// accountSeq resolves committed account sequences (auth queries).
	accountSeq func(string) (uint64, error)
	// msgCount counts messages in a tx, for pagination scaling.
	msgCount func(types.Tx) int
	// events resolves the chain's shared event index at a height (may be
	// nil on servers assembled without an index source).
	events func(int64) *eventindex.BlockEvents
	// settled resolves packet-settlement probes against committed app
	// state (installed by the owning chain; nil rejects QuerySettled).
	settled func(SettledProbe) bool

	subs []subscriber

	// Counters are atomic: they increment at the client's call site,
	// which under the parallel runner is the caller's partition, not the
	// server's.
	broadcasts  atomic.Uint64
	queries     atomic.Uint64
	frameErrors uint64
}

type subscriber struct {
	host netem.Host
	fn   func(*EventFrame)
}

// New creates the RPC server for a chain.
func New(
	sched *sim.Scheduler,
	net *netem.Network,
	host netem.Host,
	cfg Config,
	stor *store.Store,
	pool *mempool.Pool,
	txQueryCost func(types.Tx) time.Duration,
	eventFrameBytes func([]types.Tx) int,
	accountSeq func(string) (uint64, error),
	msgCount func(types.Tx) int,
	events func(int64) *eventindex.BlockEvents,
) *Server {
	return &Server{
		sched:           sched,
		net:             net,
		host:            host,
		cfg:             cfg,
		stor:            stor,
		pool:            pool,
		serial:          sim.NewSerialResource(sched),
		txQueryCost:     txQueryCost,
		eventFrameBytes: eventFrameBytes,
		accountSeq:      accountSeq,
		msgCount:        msgCount,
		events:          events,
	}
}

// pageFactor scales a data pull by the response size of its block.
func (s *Server) pageFactor(height int64) float64 {
	if s.cfg.PageScaleMsgs <= 0 || s.msgCount == nil {
		return 1
	}
	infos, err := s.stor.TxsAtHeight(height)
	if err != nil {
		return 1
	}
	total := 0
	for _, info := range infos {
		total += s.msgCount(info.Tx)
	}
	x := float64(total) / float64(s.cfg.PageScaleMsgs)
	return 1 + x*x
}

// Host reports the node's network address.
func (s *Server) Host() netem.Host { return s.host }

// Backlog reports the serial queue's current wait time (diagnostics).
func (s *Server) Backlog() time.Duration { return s.serial.Backlog() }

// BusyTime reports accumulated serial service time.
func (s *Server) BusyTime() time.Duration { return s.serial.BusyTime() }

// Stats reports (broadcasts, queries, frameErrors).
func (s *Server) Stats() (uint64, uint64, uint64) {
	return s.broadcasts.Load(), s.queries.Load(), s.frameErrors
}

// SetSettledQuery installs the packet-settlement resolver backing
// QuerySettled. The owning chain wires it at assembly time.
func (s *Server) SetSettledQuery(fn func(SettledProbe) bool) { s.settled = fn }

// request runs fn on the serial resource after the client->server hop,
// then delivers the reply after the server->client hop. A client-side
// timeout aborts waiting (the server still does the work).
//
// The service cost is resolved on the server at arrival time — client
// callers may live on another partition, where the server's store is
// not coherently readable. The timeout runs on the caller's partition
// clock: both it and the reply mutate the caller-owned `done` flag.
func request[T any](s *Server, from netem.Host, service func() time.Duration, fn func() (T, error), cb func(T, error)) {
	done := false
	finish := func(v T, err error) {
		if done {
			return
		}
		done = true
		cb(v, err)
	}
	if s.cfg.ClientTimeout > 0 {
		s.net.SchedulerFor(from).After(s.cfg.ClientTimeout, func() {
			var zero T
			finish(zero, ErrTimeout)
		})
	}
	s.net.Send(from, s.host, func() {
		s.serial.Submit(service(), func() {
			v, err := fn()
			s.net.Send(s.host, from, func() { finish(v, err) })
		})
	})
}

// flat wraps a fixed service cost for request.
func flat(d time.Duration) func() time.Duration {
	return func() time.Duration { return d }
}

// BroadcastTxSync submits a transaction: it is accepted into the mempool
// (after CheckTx) or rejected. The reply carries the CheckTx error.
func (s *Server) BroadcastTxSync(from netem.Host, tx types.Tx, cb func(error)) {
	s.broadcasts.Add(1)
	request(s, from, flat(s.cfg.BroadcastCost), func() (struct{}, error) {
		return struct{}{}, s.pool.Add(tx)
	}, func(_ struct{}, err error) {
		if cb != nil {
			cb(err)
		}
	})
}

// QueryTx checks whether a transaction is committed (light confirmation
// query; returns ErrNotFound while pending).
func (s *Server) QueryTx(from netem.Host, hash types.Hash, cb func(*store.TxInfo, error)) {
	s.queries.Add(1)
	request(s, from, flat(s.cfg.StatusCost), func() (*store.TxInfo, error) {
		info, err := s.stor.Tx(hash)
		if err != nil {
			return nil, ErrNotFound
		}
		return info, nil
	}, cb)
}

// QueryTxData is the heavy data pull: it returns the full transaction
// with a service time proportional to the response size. This is the
// operation behind 69% of the paper's cross-chain processing time.
func (s *Server) QueryTxData(from netem.Host, hash types.Hash, cb func(*store.TxInfo, error)) {
	s.queries.Add(1)
	request(s, from, func() time.Duration {
		// Costed server-side at arrival: callers pull data for committed
		// transactions, so the lookup resolves the same tx it would have
		// at the client's call time.
		info, lookupErr := s.stor.Tx(hash)
		if lookupErr != nil || s.txQueryCost == nil {
			return s.cfg.StatusCost
		}
		return time.Duration(float64(s.txQueryCost(info.Tx)) * s.pageFactor(info.Height))
	}, func() (*store.TxInfo, error) {
		got, err := s.stor.Tx(hash)
		if err != nil {
			return nil, ErrNotFound
		}
		return got, nil
	}, cb)
}

// blockQueryCost is the tx_search service cost for one height: the
// light-query floor plus the size-proportional pull cost of every tx.
// QueryBlockTxs and QueryBlockEvents must charge identically — the
// indexed query changes what the reply references, not what the
// paper-calibrated service model costs.
func (s *Server) blockQueryCost(height int64) time.Duration {
	cost := s.cfg.StatusCost
	if infos, err := s.stor.TxsAtHeight(height); err == nil && s.txQueryCost != nil {
		pf := s.pageFactor(height)
		for _, info := range infos {
			cost += time.Duration(float64(s.txQueryCost(info.Tx)) * pf)
		}
	}
	return cost
}

// QueryBlockTxs returns all transactions at a height (the paper's
// tx_search --events tx.height=X), with size-proportional cost.
func (s *Server) QueryBlockTxs(from netem.Host, height int64, cb func([]*store.TxInfo, error)) {
	s.queries.Add(1)
	request(s, from, func() time.Duration { return s.blockQueryCost(height) }, func() ([]*store.TxInfo, error) {
		infos, err := s.stor.TxsAtHeight(height)
		if err != nil {
			return nil, ErrNotFound
		}
		return infos, nil
	}, cb)
}

// QueryBlockEvents is QueryBlockTxs through the shared event index: the
// wire/service cost is identical (the relayer still pays for the full
// tx_search response), but the reply is the block's already-decoded
// per-channel packet records instead of raw transactions to re-parse.
func (s *Server) QueryBlockEvents(from netem.Host, height int64, cb func(*eventindex.BlockEvents, error)) {
	s.queries.Add(1)
	request(s, from, func() time.Duration { return s.blockQueryCost(height) }, func() (*eventindex.BlockEvents, error) {
		if s.events == nil {
			return nil, ErrNotFound
		}
		be := s.events(height)
		if be == nil {
			return nil, ErrNotFound
		}
		return be, nil
	}, cb)
}

// QueryAccountSequence resolves an account's committed sequence.
func (s *Server) QueryAccountSequence(from netem.Host, account string, cb func(uint64, error)) {
	s.queries.Add(1)
	request(s, from, flat(s.cfg.StatusCost), func() (uint64, error) {
		if s.accountSeq == nil {
			return 0, ErrNotFound
		}
		return s.accountSeq(account)
	}, cb)
}

// QueryHeight reports the latest committed height (status query).
func (s *Server) QueryHeight(from netem.Host, cb func(int64, error)) {
	s.queries.Add(1)
	request(s, from, flat(s.cfg.StatusCost), func() (int64, error) {
		return s.stor.Height(), nil
	}, cb)
}

// SettledProbe asks whether one packet's lifecycle step has settled on
// this chain: Ack=false probes for a receipt (the packet was received),
// Ack=true probes for a cleared commitment (its acknowledgement or
// timeout was processed on the sending side).
type SettledProbe struct {
	Ack           bool
	Port, Channel string
	Sequence      uint64
}

// QuerySettled resolves a batch of packet-settlement probes against
// committed application state — the relayer's post-failure redundancy
// check, performed over RPC like every other state read so it works
// across partition boundaries. One flat status query covers the batch
// (a single ABCI multi-query round trip).
func (s *Server) QuerySettled(from netem.Host, probes []SettledProbe, cb func([]bool, error)) {
	s.queries.Add(1)
	request(s, from, flat(s.cfg.StatusCost), func() ([]bool, error) {
		if s.settled == nil {
			return nil, ErrNotFound
		}
		out := make([]bool, len(probes))
		for i, p := range probes {
			out[i] = s.settled(p)
		}
		return out, nil
	}, cb)
}

// Subscribe registers a WebSocket NewBlock subscription from a host.
// The registration rides the network like a real subscription request,
// so it lands on the server's partition regardless of where the caller
// runs (a standby relayer taking over mid-run subscribes cross-partition)
// and takes effect one client->server hop later.
func (s *Server) Subscribe(from netem.Host, fn func(*EventFrame)) {
	s.net.Send(from, s.host, func() {
		s.subs = append(s.subs, subscriber{host: from, fn: fn})
	})
}

// PublishBlock pushes a committed block to subscribers. Call from the
// consensus engine's OnCommit hook.
func (s *Server) PublishBlock(cb *store.CommittedBlock) {
	if len(s.subs) == 0 {
		return
	}
	frameBytes := 0
	if s.eventFrameBytes != nil {
		frameBytes = s.eventFrameBytes(cb.Block.Data)
	}
	frame := &EventFrame{
		Height:     cb.Block.Header.Height,
		BlockTime:  cb.Block.Header.Time,
		FrameBytes: frameBytes,
	}
	if s.cfg.MaxFrameBytes > 0 && frameBytes > s.cfg.MaxFrameBytes {
		s.frameErrors++
		frame.Err = ErrFrameTooLarge
	} else {
		// The block is already appended (commit hooks fire post-append),
		// so the store's cached materialization and the chain's shared
		// event index are both available — no per-server re-decode. A
		// missing height is a hook-ordering bug, not a degraded frame.
		infos, err := s.stor.TxsAtHeight(cb.Block.Header.Height)
		if err != nil {
			panic(fmt.Sprintf("rpc %s: publishing height %d before store append: %v",
				s.host, cb.Block.Header.Height, err))
		}
		frame.Txs = infos
		if s.events != nil {
			frame.Events = s.events(cb.Block.Header.Height)
		}
	}
	for _, sub := range s.subs {
		sub := sub
		s.net.Send(s.host, sub.host, func() { sub.fn(frame) })
	}
}

// QueryCommit returns the committed block (header + commit signatures) at
// a height — what the relayer uses to build client updates.
func (s *Server) QueryCommit(from netem.Host, height int64, cb func(*store.CommittedBlock, error)) {
	s.queries.Add(1)
	request(s, from, flat(s.cfg.StatusCost), func() (*store.CommittedBlock, error) {
		blk, err := s.stor.Block(height)
		if err != nil {
			return nil, ErrNotFound
		}
		return blk, nil
	}, cb)
}
