// Package consensus implements the Tendermint BFT consensus engine
// described in §II-A of the paper: rounds with an elected proposer, two
// voting stages (pre-vote and pre-commit), 2/3+ quorums, tolerance of up
// to one third arbitrary validators, and a minimum block interval.
//
// Validators are actors exchanging signed proposal and vote messages over
// the emulated network; a designated primary full node's commit defines
// when a block (and its RPC-visible data) becomes available. Application
// execution happens once against a canonical state machine, with a
// gas-proportional virtual execution time — this is what makes "blocks
// containing large amounts of transactions increase the block interval
// beyond 5 seconds" (§III-D).
package consensus

import (
	"fmt"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/tendermint/votesig"
	"ibcbench/internal/valkey"
)

// voteCacheKeepHeights is the trailing window of committed heights whose
// admitted votes stay cached, serving the light-client VerifyCommit fast
// path for commits relayers submit a few blocks late.
const voteCacheKeepHeights = 32

// Config parameterizes one chain's consensus engine.
type Config struct {
	ChainID string

	// Validators is the validator-set size (paper: 5 per chain).
	Validators int

	// MinBlockInterval floors the time between consecutive proposals.
	MinBlockInterval time.Duration
	// TimeoutPropose bounds the wait for a proposal each round.
	TimeoutPropose time.Duration
	// TimeoutRoundStep bounds the prevote/precommit waits.
	TimeoutRoundStep time.Duration

	// MaxBlockBytes and MaxBlockGas bound reaped blocks (0 = unlimited).
	MaxBlockBytes int
	MaxBlockGas   uint64

	// ExecNanosPerGas converts executed gas into virtual execution time.
	ExecNanosPerGas int64
	// ProposalBytesPerSecond models block gossip bandwidth.
	ProposalBytesPerSecond int64

	// ReferenceVoteVerify disables the shared vote-verification engine:
	// every receiving validator re-verifies every gossiped vote (the
	// O(V^2) pre-cache behaviour). Simulation results are byte-identical
	// either way — verification is wall-clock work, not virtual time —
	// so this path exists to pin that equivalence and to count the
	// fan-out's signature checks.
	ReferenceVoteVerify bool

	// ReferenceQuorumTally replaces the counted per-round tallies with
	// the original map-walk recomputation on every quorum check (O(V)
	// per received vote instead of O(1)). At most one block ID can ever
	// exceed 2/3 of total power, so map iteration order never influenced
	// the outcome; the flag exists to pin that equivalence.
	ReferenceQuorumTally bool

	// Obs attaches the run's observability sinks; nil (the default)
	// disables instrumentation. Only the per-block commit path records
	// spans — the per-vote hot path stays untouched.
	Obs *obs.Obs
}

// DefaultConfig mirrors the paper's deployment (§III-C, §III-D).
func DefaultConfig(chainID string) Config {
	return Config{
		ChainID:                chainID,
		Validators:             simconf.DefaultValidators,
		MinBlockInterval:       simconf.MinBlockInterval,
		TimeoutPropose:         simconf.TimeoutPropose,
		TimeoutRoundStep:       simconf.TimeoutRoundStep,
		ExecNanosPerGas:        simconf.ExecNanosPerGas,
		ProposalBytesPerSecond: simconf.ProposalBytesPerSecond,
	}
}

// step is a node's position within a consensus round.
type step byte

const (
	stepPropose step = iota + 1
	stepPrevote
	stepPrecommit
	stepCommitted
)

// proposalMsg carries a proposed block between validators.
type proposalMsg struct {
	height int64
	round  int32
	block  *types.Block
}

// blockPower accumulates one block ID's voting power within a round.
type blockPower struct {
	id    types.BlockID
	power int64
}

// roundTally is one node's received votes for a (height, round, type):
// votes indexed by validator ordinal (nil = not seen) with running power
// counts, so duplicate detection and the 2/3 quorum check are O(1) per
// vote instead of a map walk over the validator set.
type roundTally struct {
	votes      []*types.Vote
	totalPower int64
	blocks     []blockPower
}

// count reports recorded votes (nil tally = none).
func (rt *roundTally) count() int {
	if rt == nil {
		return 0
	}
	n := 0
	for _, v := range rt.votes {
		if v != nil {
			n++
		}
	}
	return n
}

// add records a verified, non-duplicate vote's power.
func (rt *roundTally) add(id types.BlockID, power int64) {
	rt.totalPower += power
	for i := range rt.blocks {
		if rt.blocks[i].id == id {
			rt.blocks[i].power += power
			return
		}
	}
	rt.blocks = append(rt.blocks, blockPower{id: id, power: power})
}

// node is one validator actor.
type node struct {
	index int
	host  netem.Host
	key   *valkey.PrivKey
	addr  valkey.Address
	down  bool

	height int64
	round  int32
	step   step

	proposals  map[int32]*types.Block
	prevotes   map[int32]*roundTally
	precommits map[int32]*roundTally

	prevoted     map[int32]bool
	precommitted map[int32]bool
}

func (n *node) tally(m map[int32]*roundTally, round int32, validators int) *roundTally {
	rt, ok := m[round]
	if !ok {
		rt = &roundTally{votes: make([]*types.Vote, validators)}
		m[round] = rt
	}
	return rt
}

// pooledVote is a recyclable gossiped vote. Delivery closures capture
// the wrapper and the generation at cast time; a recycled wrapper bumps
// the generation, so stale deliveries drop without touching the reused
// vote. Signature bytes are never pooled (Sign allocates fresh), so
// commits and the verification cache can retain them safely.
type pooledVote struct {
	v   types.Vote
	gen uint64
}

// Engine drives consensus for one chain.
type Engine struct {
	sched *sim.Scheduler
	net   *netem.Network
	cfg   Config

	app    abci.Application
	pool   *mempool.Pool
	stor   *store.Store
	valset *types.ValidatorSet
	nodes  []*node
	// ordinals maps validator addresses to their valset index, backing
	// the ordinal-indexed round tallies.
	ordinals map[valkey.Address]int

	// votes is the chain's shared vote-verification engine: every
	// gossiped vote's signature is checked exactly once chain-wide.
	votes *votesig.Cache
	// signBuf is the pooled sign-bytes buffer for castVote.
	signBuf []byte

	// votePool recycles gossiped vote allocations. A cast vote stays
	// live for its height only (every receiver drops mismatched-height
	// votes before any other use), so startHeight retires the previous
	// height's votes back to the free list; the generation stamp turns a
	// late delivery of a retired vote into the same silent drop the
	// height check used to produce.
	votePool []*pooledVote
	liveVote []*pooledVote

	// primary is the full node serving RPC; its commit defines block
	// availability to clients.
	primary int

	lastBlockID      types.BlockID
	lastCommit       *types.Commit
	lastAppHash      types.Hash
	lastProposalTime time.Duration
	committedHeight  int64

	emptyBlocks uint64
	totalRounds uint64

	// tr + interned IDs for block/exec spans (nil tracer = disabled).
	tr        *obs.Tracer
	obsTrack  obs.TrackID
	nameBlock obs.NameID
	nameExec  obs.NameID

	onCommit []func(*store.CommittedBlock)

	started bool
	halted  bool
}

// New assembles an engine. The mempool and store are owned by the caller
// so that the RPC layer can share them.
func New(sched *sim.Scheduler, net *netem.Network, cfg Config, app abci.Application, pool *mempool.Pool, stor *store.Store) *Engine {
	if cfg.Validators <= 0 {
		cfg.Validators = simconf.DefaultValidators
	}
	e := &Engine{
		sched: sched,
		net:   net,
		cfg:   cfg,
		app:   app,
		pool:  pool,
		stor:  stor,
		votes: votesig.New(cfg.ChainID),
	}
	if cfg.Obs != nil {
		e.tr = cfg.Obs.Tracer
		e.obsTrack = e.tr.Track("chain/" + cfg.ChainID)
		e.nameBlock = e.tr.Name("block")
		e.nameExec = e.tr.Name("exec")
	}
	vals := make([]*types.Validator, cfg.Validators)
	for i := 0; i < cfg.Validators; i++ {
		key := valkey.Derive(cfg.ChainID, i)
		vals[i] = &types.Validator{
			Address:     key.Pub().Address(),
			PubKey:      key.Pub(),
			VotingPower: 10,
		}
		e.nodes = append(e.nodes, &node{
			index:        i,
			host:         netem.Host(fmt.Sprintf("%s/val%d", cfg.ChainID, i)),
			key:          key,
			addr:         key.Pub().Address(),
			proposals:    make(map[int32]*types.Block),
			prevotes:     make(map[int32]*roundTally),
			precommits:   make(map[int32]*roundTally),
			prevoted:     make(map[int32]bool),
			precommitted: make(map[int32]bool),
		})
	}
	e.valset = types.NewValidatorSet(vals)
	e.ordinals = make(map[valkey.Address]int, len(vals))
	for i, val := range vals {
		e.ordinals[val.Address] = i
	}
	return e
}

// ValidatorSet exposes the chain's validator set (for light clients).
func (e *Engine) ValidatorSet() *types.ValidatorSet { return e.valset }

// VoteCache exposes the chain's shared vote-verification engine. Light
// clients tracking this chain pass it to VerifyCommitCached so commit
// signatures admitted through the live vote path are not re-verified.
func (e *Engine) VoteCache() *votesig.Cache { return e.votes }

// PrimaryHost is the network host of the RPC-serving full node.
func (e *Engine) PrimaryHost() netem.Host { return e.nodes[e.primary].host }

// Hosts lists every validator node's network host, in index order (the
// geo region model places all of a chain's machines in its region).
func (e *Engine) Hosts() []netem.Host {
	out := make([]netem.Host, len(e.nodes))
	for i, n := range e.nodes {
		out[i] = n.host
	}
	return out
}

// Store exposes the canonical block store.
func (e *Engine) Store() *store.Store { return e.stor }

// EmptyBlocks reports how many committed blocks carried no transactions.
func (e *Engine) EmptyBlocks() uint64 { return e.emptyBlocks }

// TotalRounds reports consensus rounds run, including failed ones.
func (e *Engine) TotalRounds() uint64 { return e.totalRounds }

// OnCommit registers a callback fired when a block becomes available at
// the primary full node (after app execution).
func (e *Engine) OnCommit(fn func(*store.CommittedBlock)) {
	e.onCommit = append(e.onCommit, fn)
}

// SetValidatorDown injects a validator crash (or recovery). The engine
// tolerates < 1/3 of voting power down.
func (e *Engine) SetValidatorDown(index int, down bool) {
	if index >= 0 && index < len(e.nodes) {
		e.nodes[index].down = down
	}
}

// Halt stops proposing new blocks after the current height completes.
func (e *Engine) Halt() { e.halted = true }

// Start schedules the first proposal. Call once.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	e.lastAppHash = e.app.Commit() // genesis app hash
	e.sched.After(0, func() { e.startHeight(1) })
}

func (e *Engine) startHeight(h int64) {
	if e.halted {
		return
	}
	e.votes.PruneBelow(h - voteCacheKeepHeights)
	// Retire the previous height's gossiped votes: nothing references
	// them past this point (tallies are reset below, commit signatures
	// were value-copied at commit time), and the generation bump turns
	// any still-in-flight delivery into the drop the height check in
	// onVote would have produced anyway.
	for _, pv := range e.liveVote {
		pv.gen++
		e.votePool = append(e.votePool, pv)
	}
	e.liveVote = e.liveVote[:0]
	for _, n := range e.nodes {
		n.height = h
		n.round = 0
		n.step = stepPropose
		n.proposals = make(map[int32]*types.Block)
		n.prevotes = make(map[int32]*roundTally)
		n.precommits = make(map[int32]*roundTally)
		n.prevoted = make(map[int32]bool)
		n.precommitted = make(map[int32]bool)
	}
	e.startRound(h, 0)
}

func (e *Engine) startRound(h int64, r int32) {
	e.totalRounds++
	proposer := e.valset.Proposer(h, r)
	for _, n := range e.nodes {
		if n.height != h {
			return // height already advanced
		}
		n.round = r
		n.step = stepPropose
	}
	for _, n := range e.nodes {
		n := n
		if n.down {
			continue
		}
		if n.addr == proposer.Address {
			e.propose(n, h, r)
		}
		// Schedule the proposal timeout: prevote nil if nothing arrived.
		e.sched.After(e.cfg.TimeoutPropose, func() {
			if n.height == h && n.round == r && !n.prevoted[r] && !n.down {
				e.castVote(n, types.PrevoteType, h, r, types.BlockID{})
			}
		})
		// Round-failure fallbacks keep the protocol live when votes split
		// (e.g. a proposal reached only part of the network): precommit
		// nil late, and ultimately skip to the next round.
		e.sched.After(e.cfg.TimeoutPropose+2*e.cfg.TimeoutRoundStep, func() {
			if n.height == h && n.round == r && n.step != stepCommitted && !n.precommitted[r] && !n.down {
				e.castVote(n, types.PrecommitType, h, r, types.BlockID{})
			}
		})
		e.sched.After(e.cfg.TimeoutPropose+4*e.cfg.TimeoutRoundStep, func() {
			if n.height == h && n.round == r && n.step != stepCommitted && !n.down {
				e.advanceRound(h, r+1)
			}
		})
	}
}

// propose reaps the mempool, assembles the block and gossips it.
func (e *Engine) propose(n *node, h int64, r int32) {
	e.lastProposalTime = e.sched.Now()
	txs := e.pool.Reap(e.cfg.MaxBlockBytes, e.cfg.MaxBlockGas)
	header := types.Header{
		Version:            1,
		ChainID:            e.cfg.ChainID,
		Height:             h,
		Time:               e.sched.Now(),
		LastBlockID:        e.lastBlockID,
		LastCommitHash:     e.lastCommit.Hash(),
		DataHash:           types.DataHash(txs),
		ValidatorsHash:     e.valset.Hash(),
		NextValidatorsHash: e.valset.Hash(),
		AppHash:            e.lastAppHash,
		ProposerAddress:    n.addr,
	}
	block := &types.Block{Header: header, Data: txs, LastCommit: e.lastCommit}

	// Gossip the proposal: per-link latency plus size/bandwidth.
	var extra time.Duration
	if e.cfg.ProposalBytesPerSecond > 0 {
		extra = time.Duration(int64(block.TotalSize()) * int64(time.Second) / e.cfg.ProposalBytesPerSecond)
	}
	msg := &proposalMsg{height: h, round: r, block: block}
	for _, dst := range e.nodes {
		dst := dst
		e.net.Send(n.host, dst.host, func() {
			if extra == 0 {
				e.onProposal(dst, msg)
				return
			}
			e.sched.After(extra, func() { e.onProposal(dst, msg) })
		})
	}
}

func (e *Engine) onProposal(n *node, msg *proposalMsg) {
	if n.down || n.height != msg.height || n.round != msg.round {
		return
	}
	if n.proposals[msg.round] != nil {
		return
	}
	// Validate the header chains onto our view.
	h := msg.block.Header
	if h.ChainID != e.cfg.ChainID || h.Height != msg.height || h.LastBlockID != e.lastBlockID {
		return
	}
	n.proposals[msg.round] = msg.block
	if !n.prevoted[msg.round] {
		e.castVote(n, types.PrevoteType, msg.height, msg.round, types.BlockID{Hash: h.Hash()})
	}
	// If a quorum of precommits arrived before the proposal, commit now.
	e.maybeCommit(n, msg.round)
}

// castVote signs and gossips a vote.
func (e *Engine) castVote(n *node, vt types.SignedMsgType, h int64, r int32, blockID types.BlockID) {
	switch vt {
	case types.PrevoteType:
		if n.prevoted[r] {
			return
		}
		n.prevoted[r] = true
		n.step = stepPrevote
	case types.PrecommitType:
		if n.precommitted[r] {
			return
		}
		n.precommitted[r] = true
		n.step = stepPrecommit
	}
	var pv *pooledVote
	if k := len(e.votePool); k > 0 {
		pv = e.votePool[k-1]
		e.votePool[k-1] = nil
		e.votePool = e.votePool[:k-1]
	} else {
		pv = &pooledVote{}
	}
	e.liveVote = append(e.liveVote, pv)
	pv.v = types.Vote{
		Type:             vt,
		Height:           h,
		Round:            r,
		BlockID:          blockID,
		Timestamp:        e.sched.Now(),
		ValidatorAddress: n.addr,
	}
	e.signBuf = types.AppendVoteSignBytes(e.signBuf[:0], e.cfg.ChainID, &pv.v)
	pv.v.Signature = n.key.Sign(e.signBuf)
	gen := pv.gen
	for _, dst := range e.nodes {
		dst := dst
		e.net.Send(n.host, dst.host, func() {
			if pv.gen != gen {
				return // vote retired: its height already committed
			}
			e.onVote(dst, &pv.v)
		})
	}
}

func (e *Engine) onVote(n *node, v *types.Vote) {
	if n.down || n.height != v.Height {
		return
	}
	// Resolve the claimed validator in the canonical set, then verify the
	// signature through the shared engine: the first receiver performs
	// the ed25519 check, every later receiver of the same vote hits the
	// cache — O(V) checks per block instead of O(V^2). Forged, tampered
	// and stranger votes are still rejected: only verified tuples enter
	// the cache, and a hit requires byte-identical signatures.
	val := e.valset.ByAddress(v.ValidatorAddress)
	if val == nil {
		return
	}
	if e.cfg.ReferenceVoteVerify {
		if !e.votes.VerifyDirect(e.cfg.ChainID, v, val.PubKey) {
			return
		}
	} else if !e.votes.VerifyVote(e.cfg.ChainID, v, val.PubKey) {
		return
	}
	ord := e.ordinals[v.ValidatorAddress]
	switch v.Type {
	case types.PrevoteType:
		rt := n.tally(n.prevotes, v.Round, len(e.nodes))
		if rt.votes[ord] != nil {
			return
		}
		rt.votes[ord] = v
		rt.add(v.BlockID, val.VotingPower)
		e.onPrevoteQuorum(n, v.Round)
	case types.PrecommitType:
		rt := n.tally(n.precommits, v.Round, len(e.nodes))
		if rt.votes[ord] != nil {
			return
		}
		rt.votes[ord] = v
		rt.add(v.BlockID, val.VotingPower)
		e.onPrecommitQuorum(n, v.Round)
	}
}

// quorumFor returns the block ID holding a 2/3+ power majority, if any.
// The counted tally answers in O(distinct block IDs); reference mode
// rebuilds the old per-check power map — at most one ID can exceed 2/3
// of total power, so the map's iteration order never affected which ID
// wins and both paths are byte-identical.
func (e *Engine) quorumFor(rt *roundTally) (types.BlockID, bool) {
	if e.cfg.ReferenceQuorumTally {
		power := make(map[types.BlockID]int64)
		for _, v := range rt.votes {
			if v == nil {
				continue
			}
			if val := e.valset.ByAddress(v.ValidatorAddress); val != nil {
				power[v.BlockID] += val.VotingPower
			}
		}
		for id, p := range power {
			if p*3 > e.valset.TotalPower()*2 {
				return id, true
			}
		}
		return types.BlockID{}, false
	}
	for i := range rt.blocks {
		if rt.blocks[i].power*3 > e.valset.TotalPower()*2 {
			return rt.blocks[i].id, true
		}
	}
	return types.BlockID{}, false
}

// totalVotePower sums power across all votes in a round.
func (e *Engine) totalVotePower(rt *roundTally) int64 {
	if e.cfg.ReferenceQuorumTally {
		var p int64
		for _, v := range rt.votes {
			if v == nil {
				continue
			}
			if val := e.valset.ByAddress(v.ValidatorAddress); val != nil {
				p += val.VotingPower
			}
		}
		return p
	}
	return rt.totalPower
}

func (e *Engine) onPrevoteQuorum(n *node, r int32) {
	if n.round != r || n.precommitted[r] {
		return
	}
	rt := n.tally(n.prevotes, r, len(e.nodes))
	if id, ok := e.quorumFor(rt); ok {
		// Precommit the majority block if we have it, nil otherwise.
		if prop := n.proposals[r]; !id.IsZero() && prop != nil && prop.Header.Hash() == id.Hash {
			e.castVote(n, types.PrecommitType, n.height, r, id)
		} else {
			e.castVote(n, types.PrecommitType, n.height, r, types.BlockID{})
		}
		return
	}
	// All power voted without a majority: precommit nil after a step
	// timeout to let stragglers arrive.
	if e.totalVotePower(rt) == e.valset.TotalPower() {
		h := n.height
		e.sched.After(e.cfg.TimeoutRoundStep, func() {
			if n.height == h && n.round == r && !n.precommitted[r] && !n.down {
				e.castVote(n, types.PrecommitType, h, r, types.BlockID{})
			}
		})
	}
}

func (e *Engine) onPrecommitQuorum(n *node, r int32) {
	if n.height == 0 || n.step == stepCommitted {
		return
	}
	rt := n.tally(n.precommits, r, len(e.nodes))
	id, ok := e.quorumFor(rt)
	if !ok {
		return
	}
	if id.IsZero() {
		// Round failed; advance.
		if n.round == r {
			h := n.height
			next := r + 1
			e.sched.After(e.cfg.TimeoutRoundStep/4, func() {
				if n.height == h && n.round == r && n.step != stepCommitted {
					e.advanceRound(h, next)
				}
			})
		}
		return
	}
	e.maybeCommit(n, r)
}

// advanceRound moves every live node to the next round exactly once.
func (e *Engine) advanceRound(h int64, next int32) {
	for _, n := range e.nodes {
		if n.height != h || n.round >= next || n.step == stepCommitted {
			return
		}
	}
	e.startRound(h, next)
}

// maybeCommit commits at node n if it has the proposal and a precommit
// quorum for it.
func (e *Engine) maybeCommit(n *node, r int32) {
	prop := n.proposals[r]
	if n.step == stepCommitted || prop == nil {
		return
	}
	rt := n.tally(n.precommits, r, len(e.nodes))
	id, ok := e.quorumFor(rt)
	if !ok || id.IsZero() || prop.Header.Hash() != id.Hash {
		return
	}
	n.step = stepCommitted
	if n.index == e.primary {
		e.commitCanonical(prop, n, r, id)
	}
}

// commitCanonical executes the block against the application and, after
// the gas-proportional execution time, appends it to the store and fires
// commit callbacks. It then schedules the next height.
func (e *Engine) commitCanonical(block *types.Block, n *node, r int32, id types.BlockID) {
	if block.Header.Height <= e.committedHeight {
		return
	}
	e.committedHeight = block.Header.Height

	// Assemble the canonical commit from the precommits this node saw.
	// Vote signatures are value-copied slice headers: Sign allocates a
	// fresh slice per vote, so retiring the pooled vote wrappers at the
	// next height never touches a commit's bytes.
	rt := n.tally(n.precommits, r, len(e.nodes))
	commit := &types.Commit{Height: block.Header.Height, Round: r, BlockID: id}
	for i, val := range e.valset.Validators {
		sig := types.CommitSig{Flag: types.BlockIDFlagAbsent, ValidatorAddress: val.Address}
		if v := rt.votes[i]; v != nil {
			if v.BlockID == id {
				sig.Flag = types.BlockIDFlagCommit
			} else {
				sig.Flag = types.BlockIDFlagNil
			}
			sig.Timestamp = v.Timestamp
			sig.Signature = v.Signature
		}
		commit.Signatures = append(commit.Signatures, sig)
	}

	// Execute against the canonical application.
	e.app.BeginBlock(block.Header.Height, e.sched.Now())
	results := make([]abci.TxResult, len(block.Data))
	var gasUsed uint64
	for i, tx := range block.Data {
		results[i] = e.app.DeliverTx(tx)
		gasUsed += results[i].GasUsed
	}
	e.app.EndBlock(block.Header.Height)
	appHash := e.app.Commit()

	execTime := time.Duration(int64(gasUsed) * e.cfg.ExecNanosPerGas)
	e.lastBlockID = id
	e.lastCommit = commit
	e.lastAppHash = appHash
	if len(block.Data) == 0 {
		e.emptyBlocks++
	}

	cb := &store.CommittedBlock{Block: block, Commit: commit, Results: results}
	e.sched.After(execTime, func() {
		if err := e.stor.Append(cb); err != nil {
			// Heights are engine-controlled; a gap is a programming error.
			panic(err)
		}
		e.pool.Update(block.Data)
		if e.tr != nil {
			// One "block" span per height (proposal time -> availability)
			// nesting an "exec" child for the gas-proportional execution.
			now := e.sched.Now()
			e.tr.CompleteArg(e.obsTrack, e.nameBlock, block.Header.Time, now, uint64(block.Header.Height))
			e.tr.CompleteArg(e.obsTrack, e.nameExec, now-execTime, now, gasUsed)
		}
		for _, fn := range e.onCommit {
			fn(cb)
		}
		// Next proposal honours both execution time and the interval floor.
		next := e.lastProposalTime + e.cfg.MinBlockInterval
		now := e.sched.Now()
		if next < now {
			next = now
		}
		h := block.Header.Height + 1
		e.sched.At(next, func() { e.startHeight(h) })
	})
}
