package consensus

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/valkey"
)

// stubTx is a fixed-size transaction for consensus tests.
type stubTx struct {
	id  string
	gas uint64
}

func (t stubTx) Hash() types.Hash  { return sha256.Sum256([]byte(t.id)) }
func (t stubTx) Size() int         { return 100 }
func (t stubTx) GasWanted() uint64 { return t.gas }

// stubApp counts executions and burns the declared gas.
type stubApp struct {
	delivered int
	commits   int
	began     []int64
}

func (a *stubApp) CheckTx(types.Tx) error              { return nil }
func (a *stubApp) BeginBlock(h int64, _ time.Duration) { a.began = append(a.began, h) }
func (a *stubApp) EndBlock(int64)                      {}
func (a *stubApp) DeliverTx(tx types.Tx) abci.TxResult {
	a.delivered++
	return abci.TxResult{GasUsed: tx.GasWanted()}
}
func (a *stubApp) Commit() types.Hash {
	a.commits++
	return sha256.Sum256([]byte(fmt.Sprintf("state-%d", a.commits)))
}

type harness struct {
	sched *sim.Scheduler
	net   *netem.Network
	app   *stubApp
	pool  *mempool.Pool
	store *store.Store
	eng   *Engine
}

func newHarness(tb testing.TB, mutate func(*Config)) *harness {
	tb.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched, sim.NewRNG(1), netem.DefaultWAN())
	cfg := DefaultConfig("chain-a")
	if mutate != nil {
		mutate(&cfg)
	}
	app := &stubApp{}
	pool := mempool.New(mempool.DefaultConfig(), app.CheckTx)
	stor := store.New(cfg.ChainID)
	eng := New(sched, net, cfg, app, pool, stor)
	return &harness{sched: sched, net: net, app: app, pool: pool, store: stor, eng: eng}
}

func TestChainProducesBlocks(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// With a 5s floor, ~60s should yield around 11-12 blocks.
	got := h.store.Height()
	if got < 10 || got > 13 {
		t.Fatalf("height after 60s = %d, want ~11", got)
	}
	if h.eng.EmptyBlocks() != uint64(got) {
		t.Fatalf("all blocks should be empty, got %d of %d", h.eng.EmptyBlocks(), got)
	}
}

func TestBlockIntervalFloor(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(120 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	var prev time.Duration
	for height := int64(1); height <= h.store.Height(); height++ {
		cb, err := h.store.Block(height)
		if err != nil {
			t.Fatal(err)
		}
		bt := cb.Block.Header.Time
		if height > 1 {
			if iv := bt - prev; iv < 5*time.Second {
				t.Fatalf("interval before height %d = %v, below 5s floor", height, iv)
			}
		}
		prev = bt
	}
}

func TestTransactionsCommitted(t *testing.T) {
	h := newHarness(t, nil)
	for i := 0; i < 50; i++ {
		if err := h.pool.Add(stubTx{id: fmt.Sprintf("tx%d", i), gas: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	h.eng.Start()
	if err := h.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.app.delivered != 50 {
		t.Fatalf("delivered %d txs, want 50", h.app.delivered)
	}
	if h.pool.Size() != 0 {
		t.Fatalf("mempool still holds %d txs", h.pool.Size())
	}
	cb, err := h.store.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.Block.Data) != 50 {
		t.Fatalf("block 1 carries %d txs", len(cb.Block.Data))
	}
}

func TestCommitVerifiableByLightClient(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for height := int64(1); height <= h.store.Height(); height++ {
		cb, err := h.store.Block(height)
		if err != nil {
			t.Fatal(err)
		}
		blockID := types.BlockID{Hash: cb.Block.Header.Hash()}
		if err := h.eng.ValidatorSet().VerifyCommit("chain-a", blockID, height, cb.Commit); err != nil {
			t.Fatalf("commit for height %d fails light-client verification: %v", height, err)
		}
	}
}

func TestHeadersChainTogether(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(40 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for height := int64(2); height <= h.store.Height(); height++ {
		cur, _ := h.store.Block(height)
		prev, _ := h.store.Block(height - 1)
		if cur.Block.Header.LastBlockID.Hash != prev.Block.Header.Hash() {
			t.Fatalf("height %d does not chain onto %d", height, height-1)
		}
		if cur.Block.LastCommit.Height != height-1 {
			t.Fatalf("height %d carries commit for %d", height, cur.Block.LastCommit.Height)
		}
	}
}

func TestToleratesMinorityValidatorFailure(t *testing.T) {
	h := newHarness(t, nil)
	// Take down a non-primary validator (node 0 is the RPC full node
	// whose commit defines block availability).
	h.eng.SetValidatorDown(4, true) // 1 of 5 down: < 1/3 power
	h.eng.Start()
	if err := h.sched.RunUntil(90 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.store.Height() < 8 {
		t.Fatalf("height = %d with one validator down, chain stalled", h.store.Height())
	}
	// Rounds where the down validator proposes must have failed over.
	if h.eng.TotalRounds() <= uint64(h.store.Height()) {
		t.Fatalf("rounds = %d, expected failed rounds beyond %d heights",
			h.eng.TotalRounds(), h.store.Height())
	}
}

func TestHaltsWithMajorityFailure(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.SetValidatorDown(3, true)
	h.eng.SetValidatorDown(4, true) // 2 of 5 down: 40% > 1/3
	h.eng.Start()
	if err := h.sched.RunUntil(120 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.store.Height() != 0 {
		t.Fatalf("chain committed %d blocks with >1/3 power down", h.store.Height())
	}
}

func TestRecoveryAfterValidatorRestart(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.SetValidatorDown(3, true)
	h.eng.SetValidatorDown(4, true)
	h.eng.Start()
	if err := h.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.store.Height() != 0 {
		t.Fatal("committed during outage")
	}
	h.eng.SetValidatorDown(4, false)
	if err := h.sched.RunUntil(180 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.store.Height() == 0 {
		t.Fatal("chain did not recover after validator restart")
	}
}

func TestExecutionTimeStretchesInterval(t *testing.T) {
	h := newHarness(t, nil)
	// One enormous block: gas chosen so execution takes ~20s
	// (20s / 24ns per gas ≈ 8.3e8 gas).
	if err := h.pool.Add(stubTx{id: "huge", gas: 850_000_000}); err != nil {
		t.Fatal(err)
	}
	h.eng.Start()
	if err := h.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	b1, err := h.store.Block(1)
	if err != nil {
		t.Fatal("block 1 missing")
	}
	b2, err := h.store.Block(2)
	if err != nil {
		t.Fatal("block 2 missing")
	}
	iv := b2.Block.Header.Time - b1.Block.Header.Time
	if iv < 15*time.Second {
		t.Fatalf("interval after heavy block = %v, execution time not reflected", iv)
	}
}

func TestOnCommitCallback(t *testing.T) {
	h := newHarness(t, nil)
	var heights []int64
	h.eng.OnCommit(func(cb *store.CommittedBlock) {
		heights = append(heights, cb.Block.Header.Height)
	})
	h.eng.Start()
	if err := h.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(heights) != int(h.store.Height()) {
		t.Fatalf("callbacks = %d, height = %d", len(heights), h.store.Height())
	}
	for i, got := range heights {
		if got != int64(i+1) {
			t.Fatalf("callback heights out of order: %v", heights)
		}
	}
}

func TestHalt(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(12 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	h.eng.Halt()
	before := h.store.Height()
	if err := h.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// At most one in-flight height may complete after Halt.
	if h.store.Height() > before+1 {
		t.Fatalf("height advanced from %d to %d after halt", before, h.store.Height())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, types.Hash) {
		sched := sim.NewScheduler()
		net := netem.New(sched, sim.NewRNG(7), netem.DefaultWAN())
		app := &stubApp{}
		pool := mempool.New(mempool.DefaultConfig(), nil)
		stor := store.New("chain-a")
		eng := New(sched, net, DefaultConfig("chain-a"), app, pool, stor)
		for i := 0; i < 10; i++ {
			if err := pool.Add(stubTx{id: fmt.Sprintf("t%d", i), gas: 500}); err != nil {
				panic(err)
			}
		}
		eng.Start()
		if err := sched.RunUntil(42 * time.Second); err != nil {
			panic(err)
		}
		cb, err := stor.Block(stor.Height())
		if err != nil {
			panic(err)
		}
		return stor.Height(), cb.Block.Header.Hash()
	}
	h1, hash1 := run()
	h2, hash2 := run()
	if h1 != h2 || hash1 != hash2 {
		t.Fatal("identical seeds produced different chains")
	}
}

// --- shared vote-verification engine -----------------------------------------

// TestVoteVerificationPinnedLinear pins the shared engine's signature
// work to O(V) per block: each of the ~2V votes per round is fully
// verified exactly once chain-wide, every other delivery hits the cache.
func TestVoteVerificationPinnedLinear(t *testing.T) {
	const vals = 7
	h := newHarness(t, func(c *Config) { c.Validators = vals })
	h.eng.Start()
	if err := h.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h.store.Height() < 10 {
		t.Fatalf("height = %d, chain stalled", h.store.Height())
	}
	st := h.eng.VoteCache().Stats()
	rounds := h.eng.TotalRounds()
	// At most one prevote + one precommit per validator per round.
	if max := 2 * uint64(vals) * rounds; st.Verifications > max {
		t.Fatalf("%d full verifications over %d rounds exceeds the O(V) bound %d",
			st.Verifications, rounds, max)
	}
	if st.Verifications == 0 {
		t.Fatal("no signatures verified")
	}
	// The other V-1 receivers of each vote must hit the cache.
	if st.Hits < 3*st.Verifications {
		t.Fatalf("hits = %d vs %d verifications; fan-out deliveries are not hitting the cache",
			st.Hits, st.Verifications)
	}
	if st.Rejected != 0 {
		t.Fatalf("%d honest votes rejected", st.Rejected)
	}
}

// TestReferencePathCountsQuadraticFanout runs the same seed through the
// shared engine and the per-receiver reference path: the chains must be
// byte-identical while the reference path performs ~V times the
// signature checks.
func TestReferencePathCountsQuadraticFanout(t *testing.T) {
	const vals = 7
	run := func(reference bool) (uint64, []types.Hash) {
		h := newHarness(t, func(c *Config) {
			c.Validators = vals
			c.ReferenceVoteVerify = reference
		})
		h.eng.Start()
		if err := h.sched.RunUntil(60 * time.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		var hashes []types.Hash
		for height := int64(1); height <= h.store.Height(); height++ {
			cb, err := h.store.Block(height)
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, cb.Block.Header.Hash())
		}
		return h.eng.VoteCache().Stats().Verifications, hashes
	}
	sharedChecks, sharedChain := run(false)
	refChecks, refChain := run(true)
	if len(sharedChain) == 0 || len(sharedChain) != len(refChain) {
		t.Fatalf("chain lengths diverge: shared=%d reference=%d", len(sharedChain), len(refChain))
	}
	for i := range sharedChain {
		if sharedChain[i] != refChain[i] {
			t.Fatalf("block %d differs between shared and reference verification", i+1)
		}
	}
	// Every vote is delivered to all V nodes; the reference path verifies
	// per delivery, the shared path once per vote.
	if refChecks < 3*sharedChecks {
		t.Fatalf("reference path: %d checks vs shared %d — fan-out not quadratic?",
			refChecks, sharedChecks)
	}
}

// TestCacheRejectsInjectedVotes injects forged, stranger and duplicate
// votes directly into the gossip handler with the cache enabled.
func TestCacheRejectsInjectedVotes(t *testing.T) {
	h := newHarness(t, nil)
	// Place every node at height 1, round 0 without running the network.
	h.eng.startHeight(1)
	receiver := h.eng.nodes[1]

	// Forged: claims validator 0's address, signed by a different key.
	forged := &types.Vote{
		Type:             types.PrevoteType,
		Height:           1,
		Round:            0,
		BlockID:          types.BlockID{Hash: types.Hash{9}},
		ValidatorAddress: h.eng.nodes[0].addr,
	}
	forged.Signature = valkey.Derive("attacker", 0).Sign(types.VoteSignBytes("chain-a", forged))
	h.eng.onVote(receiver, forged)
	if receiver.prevotes[0].count() != 0 {
		t.Fatal("forged vote recorded")
	}

	// Stranger: a well-signed vote from a key outside the validator set.
	stranger := valkey.Derive("chain-a", 99)
	alien := &types.Vote{
		Type:             types.PrevoteType,
		Height:           1,
		Round:            0,
		ValidatorAddress: stranger.Pub().Address(),
	}
	alien.Signature = stranger.Sign(types.VoteSignBytes("chain-a", alien))
	h.eng.onVote(receiver, alien)
	if receiver.prevotes[0].count() != 0 {
		t.Fatal("stranger vote recorded")
	}

	// Valid vote from validator 2 (keys are derived deterministically).
	val2 := valkey.Derive("chain-a", 2)
	good := &types.Vote{
		Type:             types.PrevoteType,
		Height:           1,
		Round:            0,
		BlockID:          types.BlockID{Hash: types.Hash{9}},
		ValidatorAddress: val2.Pub().Address(),
	}
	good.Signature = val2.Sign(types.VoteSignBytes("chain-a", good))
	h.eng.onVote(receiver, good)
	if receiver.prevotes[0].count() != 1 {
		t.Fatal("valid vote not recorded")
	}

	// Duplicate delivery: recorded once, power not double-counted.
	h.eng.onVote(receiver, good)
	if receiver.prevotes[0].count() != 1 {
		t.Fatal("duplicate vote double-recorded")
	}
	if p := h.eng.totalVotePower(receiver.prevotes[0]); p != 10 {
		t.Fatalf("duplicate vote double-counted power: %d", p)
	}

	// Tampered: the cached tuple must not vouch for a flipped signature.
	tampered := *good
	tampered.Signature = append([]byte(nil), good.Signature...)
	tampered.Signature[0] ^= 0xff
	other := h.eng.nodes[3]
	h.eng.onVote(other, &tampered)
	if other.prevotes[0].count() != 0 {
		t.Fatal("tampered vote accepted via cache")
	}

	// The same valid vote delivered to another node hits the cache.
	before := h.eng.VoteCache().Stats()
	h.eng.onVote(other, good)
	after := h.eng.VoteCache().Stats()
	if other.prevotes[0].count() != 1 {
		t.Fatal("valid vote not recorded at second node")
	}
	if after.Hits != before.Hits+1 || after.Verifications != before.Verifications {
		t.Fatalf("second delivery re-verified (before=%+v after=%+v)", before, after)
	}
}

// --- counted quorum tallies ---------------------------------------------------

// TestQuorumTallyReferenceEquivalence runs the same seed through the
// counted per-round tallies and the reference map-walk recomputation:
// the chains must be byte-identical (at most one block ID can exceed
// 2/3 of total power, so map iteration order never picked the winner).
func TestQuorumTallyReferenceEquivalence(t *testing.T) {
	run := func(reference bool) []types.Hash {
		h := newHarness(t, func(c *Config) {
			c.Validators = 7
			c.ReferenceQuorumTally = reference
		})
		for i := 0; i < 20; i++ {
			if err := h.pool.Add(stubTx{id: fmt.Sprintf("q%d", i), gas: 400}); err != nil {
				t.Fatal(err)
			}
		}
		h.eng.Start()
		if err := h.sched.RunUntil(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		if h.store.Height() < 10 {
			t.Fatalf("height = %d, chain stalled", h.store.Height())
		}
		var hashes []types.Hash
		for height := int64(1); height <= h.store.Height(); height++ {
			cb, err := h.store.Block(height)
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, cb.Block.Header.Hash())
		}
		return hashes
	}
	counted := run(false)
	reference := run(true)
	if len(counted) != len(reference) {
		t.Fatalf("chain lengths diverge: counted=%d reference=%d", len(counted), len(reference))
	}
	for i := range counted {
		if counted[i] != reference[i] {
			t.Fatalf("block %d differs between counted and reference tallies", i+1)
		}
	}
}

// TestVotePoolSteadyStateAllocs pins the gossip path's vote recycling:
// once the chain reaches steady state, the population of pooled vote
// wrappers (free list + live) stops growing — later heights reuse
// retired wrappers instead of allocating fresh types.Vote values for
// every cast.
func TestVotePoolSteadyStateAllocs(t *testing.T) {
	h := newHarness(t, nil)
	h.eng.Start()
	if err := h.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	warm := len(h.eng.votePool) + len(h.eng.liveVote)
	warmHeight := h.store.Height()
	if warm == 0 || warmHeight < 3 {
		t.Fatalf("warmup produced %d wrappers over %d heights", warm, warmHeight)
	}
	if err := h.sched.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.store.Height() < warmHeight+10 {
		t.Fatalf("steady window committed too few blocks: %d -> %d", warmHeight, h.store.Height())
	}
	steady := len(h.eng.votePool) + len(h.eng.liveVote)
	if steady != warm {
		t.Fatalf("vote wrapper population grew from %d to %d over %d further heights — pool not recycling",
			warm, steady, h.store.Height()-warmHeight)
	}
	if len(h.eng.votePool) == 0 {
		t.Fatal("free list empty after a committed height: startHeight is not retiring votes")
	}
}

// BenchmarkQuorumTally measures one quorum check on a full round of
// prevotes: the counted tally answers from running power sums in
// O(distinct block IDs); the reference path rebuilds a power map over
// the whole validator set per check.
func BenchmarkQuorumTally(b *testing.B) {
	for _, vals := range []int{4, 16, 64} {
		h := newHarness(b, func(c *Config) { c.Validators = vals })
		rt := &roundTally{votes: make([]*types.Vote, vals)}
		id := types.BlockID{Hash: types.Hash{42}}
		for ord, val := range h.eng.valset.Validators {
			rt.votes[ord] = &types.Vote{
				Type:             types.PrevoteType,
				Height:           1,
				BlockID:          id,
				ValidatorAddress: val.PubKey.Address(),
			}
			rt.add(id, val.VotingPower)
		}
		b.Run(fmt.Sprintf("counted-vals-%d", vals), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := h.eng.quorumFor(rt); !ok {
					b.Fatal("full round has no quorum")
				}
			}
		})
		b.Run(fmt.Sprintf("reference-vals-%d", vals), func(b *testing.B) {
			b.ReportAllocs()
			h.eng.cfg.ReferenceQuorumTally = true
			defer func() { h.eng.cfg.ReferenceQuorumTally = false }()
			for i := 0; i < b.N; i++ {
				if _, ok := h.eng.quorumFor(rt); !ok {
					b.Fatal("full round has no quorum")
				}
			}
		})
	}
}
