package types

import (
	"crypto/sha256"
	"testing"
	"time"

	"ibcbench/internal/valkey"
)

// testTx is a minimal Tx for the tendermint layer's unit tests.
type testTx struct {
	id  string
	gas uint64
}

func (t testTx) Hash() Hash        { return sha256.Sum256([]byte(t.id)) }
func (t testTx) Size() int         { return len(t.id) }
func (t testTx) GasWanted() uint64 { return t.gas }

func makeValSet(chainID string, n int) (*ValidatorSet, []*valkey.PrivKey) {
	vals := make([]*Validator, n)
	keys := make([]*valkey.PrivKey, n)
	for i := 0; i < n; i++ {
		k := valkey.Derive(chainID, i)
		keys[i] = k
		vals[i] = &Validator{
			Address:     k.Pub().Address(),
			PubKey:      k.Pub(),
			VotingPower: 10,
		}
	}
	return NewValidatorSet(vals), keys
}

func signCommit(chainID string, vs *ValidatorSet, keys []*valkey.PrivKey, blockID BlockID, height int64, signers int) *Commit {
	c := &Commit{Height: height, Round: 0, BlockID: blockID}
	for i, v := range vs.Validators {
		sig := CommitSig{ValidatorAddress: v.Address, Flag: BlockIDFlagAbsent}
		if i < signers {
			vote := &Vote{
				Type:             PrecommitType,
				Height:           height,
				Round:            0,
				BlockID:          blockID,
				ValidatorAddress: v.Address,
			}
			sig.Flag = BlockIDFlagCommit
			sig.Signature = keys[i].Sign(VoteSignBytes(chainID, vote))
		}
		c.Signatures = append(c.Signatures, sig)
	}
	return c
}

func TestHeaderHashSensitivity(t *testing.T) {
	h := Header{ChainID: "a", Height: 5, Time: time.Second}
	base := h.Hash()
	h2 := h
	h2.Height = 6
	if h2.Hash() == base {
		t.Fatal("height change did not alter header hash")
	}
	h3 := h
	h3.AppHash[0] = 1
	if h3.Hash() == base {
		t.Fatal("app hash change did not alter header hash")
	}
	h4 := h
	if h4.Hash() != base {
		t.Fatal("identical headers hash differently")
	}
}

func TestDataHashOrderDependence(t *testing.T) {
	a := []Tx{testTx{id: "1"}, testTx{id: "2"}}
	b := []Tx{testTx{id: "2"}, testTx{id: "1"}}
	if DataHash(a) == DataHash(b) {
		t.Fatal("data hash ignores tx order")
	}
	if DataHash(nil) != DataHash([]Tx{}) {
		t.Fatal("empty data hash unstable")
	}
}

func TestProposerRotation(t *testing.T) {
	vs, _ := makeValSet("c", 5)
	seen := make(map[string]int)
	for h := int64(1); h <= 10; h++ {
		p := vs.Proposer(h, 0)
		if p == nil {
			t.Fatal("no proposer")
		}
		seen[p.Address.String()]++
	}
	if len(seen) != 5 {
		t.Fatalf("rotation covered %d validators, want 5", len(seen))
	}
	// Round advance moves the proposer.
	if vs.Proposer(1, 0).Address == vs.Proposer(1, 1).Address {
		t.Fatal("round change kept the same proposer")
	}
}

func TestVerifyCommitQuorum(t *testing.T) {
	const chainID = "chain-a"
	vs, keys := makeValSet(chainID, 5)
	blockID := BlockID{Hash: sha256.Sum256([]byte("block"))}

	// 4 of 5 (80% > 2/3) passes.
	c := signCommit(chainID, vs, keys, blockID, 7, 4)
	if err := vs.VerifyCommit(chainID, blockID, 7, c); err != nil {
		t.Fatalf("quorum commit rejected: %v", err)
	}
	// Exactly 2/3 does NOT pass (need strictly more).
	vs3, keys3 := makeValSet(chainID, 3)
	c3 := signCommit(chainID, vs3, keys3, blockID, 7, 2)
	if err := vs3.VerifyCommit(chainID, blockID, 7, c3); err != ErrInsufficientPower {
		t.Fatalf("2/3 exactly: err = %v, want ErrInsufficientPower", err)
	}
	// 3 of 5 fails.
	c = signCommit(chainID, vs, keys, blockID, 7, 3)
	if err := vs.VerifyCommit(chainID, blockID, 7, c); err != ErrInsufficientPower {
		t.Fatalf("err = %v, want ErrInsufficientPower", err)
	}
}

func TestVerifyCommitRejectsForgery(t *testing.T) {
	const chainID = "chain-a"
	vs, keys := makeValSet(chainID, 5)
	blockID := BlockID{Hash: sha256.Sum256([]byte("block"))}
	good := signCommit(chainID, vs, keys, blockID, 7, 4)

	// Wrong height.
	if err := vs.VerifyCommit(chainID, blockID, 8, good); err != ErrCommitHeightMismatch {
		t.Fatalf("wrong height: %v", err)
	}
	// Wrong block.
	other := BlockID{Hash: sha256.Sum256([]byte("other"))}
	if err := vs.VerifyCommit(chainID, other, 7, good); err != ErrCommitWrongBlockID {
		t.Fatalf("wrong block: %v", err)
	}
	// Commit signed for a different chain ID must not verify.
	foreign := signCommit("chain-b", vs, keys, blockID, 7, 4)
	if err := vs.VerifyCommit(chainID, blockID, 7, foreign); err == nil {
		t.Fatal("cross-chain replayed commit accepted")
	}
	// Tampered signature.
	bad := signCommit(chainID, vs, keys, blockID, 7, 4)
	bad.Signatures[0].Signature[0] ^= 1
	if err := vs.VerifyCommit(chainID, blockID, 7, bad); err == nil {
		t.Fatal("tampered signature accepted")
	}
	// Duplicate signatures must not double-count power.
	dup := signCommit(chainID, vs, keys, blockID, 7, 3)
	dup.Signatures = append(dup.Signatures, dup.Signatures[0], dup.Signatures[1])
	if err := vs.VerifyCommit(chainID, blockID, 7, dup); err != ErrInsufficientPower {
		t.Fatalf("duplicated signatures inflated power: %v", err)
	}
	// Unknown validator signatures contribute nothing.
	stranger := valkey.Derive("stranger", 0)
	sc := signCommit(chainID, vs, keys, blockID, 7, 3)
	vote := &Vote{Type: PrecommitType, Height: 7, BlockID: blockID, ValidatorAddress: stranger.Pub().Address()}
	sc.Signatures = append(sc.Signatures, CommitSig{
		Flag:             BlockIDFlagCommit,
		ValidatorAddress: stranger.Pub().Address(),
		Signature:        stranger.Sign(VoteSignBytes(chainID, vote)),
	})
	if err := vs.VerifyCommit(chainID, blockID, 7, sc); err != ErrInsufficientPower {
		t.Fatalf("stranger signature counted: %v", err)
	}
}

func TestValidatorSetHashChangesWithMembership(t *testing.T) {
	a, _ := makeValSet("c", 4)
	b, _ := makeValSet("c", 5)
	if a.Hash() == b.Hash() {
		t.Fatal("validator set hash insensitive to membership")
	}
}

func TestCommitHash(t *testing.T) {
	var nilCommit *Commit
	if nilCommit.Hash() != (Hash{}) {
		t.Fatal("nil commit hash not zero")
	}
	c1 := &Commit{Height: 1, Signatures: []CommitSig{{Flag: BlockIDFlagCommit}}}
	c2 := &Commit{Height: 1, Signatures: []CommitSig{{Flag: BlockIDFlagNil}}}
	if c1.Hash() == c2.Hash() {
		t.Fatal("commit hash insensitive to flags")
	}
}

func TestEvidenceHash(t *testing.T) {
	e1 := []Evidence{{Height: 1, Kind: "duplicate-vote"}}
	e2 := []Evidence{{Height: 2, Kind: "duplicate-vote"}}
	if EvidenceHash(e1) == EvidenceHash(e2) {
		t.Fatal("evidence hash insensitive to height")
	}
	if EvidenceHash(nil) != EvidenceHash([]Evidence{}) {
		t.Fatal("empty evidence hash unstable")
	}
}

func TestBlockTotalSize(t *testing.T) {
	b := &Block{Data: []Tx{testTx{id: "abc"}, testTx{id: "de"}}}
	if b.TotalSize() != 5 {
		t.Fatalf("total size = %d", b.TotalSize())
	}
}

func TestBlockIDIsZero(t *testing.T) {
	var z BlockID
	if !z.IsZero() {
		t.Fatal("zero BlockID not zero")
	}
	if (BlockID{Hash: sha256.Sum256([]byte("x"))}).IsZero() {
		t.Fatal("nonzero BlockID reported zero")
	}
}

func TestProposerEmptySet(t *testing.T) {
	vs := NewValidatorSet(nil)
	if vs.Proposer(1, 0) != nil {
		t.Fatal("empty set returned a proposer")
	}
	if vs.TotalPower() != 0 || vs.Size() != 0 {
		t.Fatal("empty set has power or size")
	}
}

func TestByAddress(t *testing.T) {
	vs, _ := makeValSet("c", 3)
	for i, v := range vs.Validators {
		got := vs.ByAddress(v.Address)
		if got != v {
			t.Fatalf("ByAddress(%d) mismatch", i)
		}
	}
	var missing valkey.Address
	if vs.ByAddress(missing) != nil {
		t.Fatal("found missing address")
	}
}

func TestVoteSignBytesDistinct(t *testing.T) {
	mk := func(tp SignedMsgType, h int64, r int32, id string, chain string) string {
		v := &Vote{Type: tp, Height: h, Round: r, BlockID: BlockID{Hash: sha256.Sum256([]byte(id))}}
		return string(VoteSignBytes(chain, v))
	}
	seen := map[string]string{}
	cases := map[string]string{
		"base":   mk(PrevoteType, 1, 0, "a", "c"),
		"type":   mk(PrecommitType, 1, 0, "a", "c"),
		"height": mk(PrevoteType, 2, 0, "a", "c"),
		"round":  mk(PrevoteType, 1, 1, "a", "c"),
		"block":  mk(PrevoteType, 1, 0, "b", "c"),
		"chain":  mk(PrevoteType, 1, 0, "a", "d"),
	}
	for name, sb := range cases {
		if prev, dup := seen[sb]; dup {
			t.Fatalf("sign bytes collide: %s vs %s", name, prev)
		}
		seen[sb] = name
	}
}
