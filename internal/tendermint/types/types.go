// Package types defines the Tendermint block structure described in §II-A
// of the paper: Header, Data, Evidence and LastCommit fields, votes,
// commits and validator sets.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ibcbench/internal/merkle"
	"ibcbench/internal/valkey"
)

// Hash is a 32-byte digest.
type Hash = merkle.Hash

// Tx is an opaque transaction from Tendermint's perspective: "Transaction
// data is application-specific and unknown to Tendermint" (§II-A). The
// application layer provides concrete implementations.
type Tx interface {
	// Hash uniquely identifies the transaction.
	Hash() Hash
	// Size is the encoded size in bytes, used for block/mempool limits.
	Size() int
	// GasWanted is the gas limit the submitter attached.
	GasWanted() uint64
}

// BlockID identifies a block by its header hash.
type BlockID struct {
	Hash Hash
}

// IsZero reports whether the BlockID is the nil block (a round that
// failed to decide).
func (b BlockID) IsZero() bool { return b.Hash == Hash{} }

// SignedMsgType distinguishes the two voting stages of a consensus round.
type SignedMsgType byte

// Vote types, per the two-stage voting protocol (§II-A).
const (
	PrevoteType SignedMsgType = iota + 1
	PrecommitType
)

// BlockIDFlag indicates what a validator's commit signature voted for.
type BlockIDFlag byte

// Commit signature flags, mirroring Tendermint's LastCommit encoding
// (Fig. 1 of the paper).
const (
	// BlockIDFlagAbsent marks a validator that did not cast a vote.
	BlockIDFlagAbsent BlockIDFlag = iota + 1
	// BlockIDFlagCommit marks a vote for the block accepted by the majority.
	BlockIDFlagCommit
	// BlockIDFlagNil marks a vote for a different (nil) block.
	BlockIDFlagNil
)

// Header carries block metadata (Fig. 1).
type Header struct {
	Version            uint64
	ChainID            string
	Height             int64
	Time               time.Duration // virtual time of proposal
	LastBlockID        BlockID
	LastCommitHash     Hash
	DataHash           Hash
	ValidatorsHash     Hash
	NextValidatorsHash Hash
	ConsensusHash      Hash
	AppHash            Hash
	LastResultsHash    Hash
	EvidenceHash       Hash
	ProposerAddress    valkey.Address
}

// Hash computes the header digest that serves as the BlockID.
func (h *Header) Hash() Hash {
	hs := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		hs.Write(buf[:])
	}
	put(h.Version)
	hs.Write([]byte(h.ChainID))
	put(uint64(h.Height))
	put(uint64(h.Time))
	hs.Write(h.LastBlockID.Hash[:])
	hs.Write(h.LastCommitHash[:])
	hs.Write(h.DataHash[:])
	hs.Write(h.ValidatorsHash[:])
	hs.Write(h.NextValidatorsHash[:])
	hs.Write(h.ConsensusHash[:])
	hs.Write(h.AppHash[:])
	hs.Write(h.LastResultsHash[:])
	hs.Write(h.EvidenceHash[:])
	hs.Write(h.ProposerAddress[:])
	var out Hash
	copy(out[:], hs.Sum(nil))
	return out
}

// Evidence is a proof of validator misbehaviour (empty in the absence of
// misbehaviour; carried for structural fidelity and punished by the app).
type Evidence struct {
	ValidatorAddress valkey.Address
	Height           int64
	Kind             string
}

// CommitSig is one validator's entry in a block's LastCommit.
type CommitSig struct {
	Flag             BlockIDFlag
	ValidatorAddress valkey.Address
	Timestamp        time.Duration
	Signature        []byte
}

// Commit is the aggregate of precommit votes that finalized a block.
type Commit struct {
	Height     int64
	Round      int32
	BlockID    BlockID
	Signatures []CommitSig
}

// Hash commits to the commit contents for the LastCommitHash header field.
func (c *Commit) Hash() Hash {
	if c == nil {
		return Hash{}
	}
	leaves := make([]merkle.Hash, 0, len(c.Signatures))
	for _, s := range c.Signatures {
		h := sha256.New()
		h.Write([]byte{byte(s.Flag)})
		h.Write(s.ValidatorAddress[:])
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(s.Timestamp))
		h.Write(buf[:])
		h.Write(s.Signature)
		var lh merkle.Hash
		copy(lh[:], h.Sum(nil))
		leaves = append(leaves, lh)
	}
	return merkle.HashLeaves(leaves)
}

// Block is a Tendermint block (Fig. 1): Header, Data, Evidence, LastCommit.
type Block struct {
	Header     Header
	Data       []Tx
	Evidence   []Evidence
	LastCommit *Commit
}

// DataHash commits to the ordered transaction list.
func DataHash(txs []Tx) Hash {
	leaves := make([]merkle.Hash, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.Hash()
	}
	return merkle.HashLeaves(leaves)
}

// EvidenceHash commits to the evidence list.
func EvidenceHash(evs []Evidence) Hash {
	leaves := make([]merkle.Hash, len(evs))
	for i, ev := range evs {
		h := sha256.New()
		h.Write(ev.ValidatorAddress[:])
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(ev.Height))
		h.Write(buf[:])
		h.Write([]byte(ev.Kind))
		copy(leaves[i][:], h.Sum(nil))
	}
	return merkle.HashLeaves(leaves)
}

// TotalSize sums the encoded sizes of the block's transactions.
func (b *Block) TotalSize() int {
	n := 0
	for _, tx := range b.Data {
		n += tx.Size()
	}
	return n
}

// Vote is a single consensus vote (prevote or precommit).
type Vote struct {
	Type             SignedMsgType
	Height           int64
	Round            int32
	BlockID          BlockID
	Timestamp        time.Duration
	ValidatorAddress valkey.Address
	Signature        []byte
}

// VoteSignBytes produces the canonical bytes a validator signs for a vote.
func VoteSignBytes(chainID string, v *Vote) []byte {
	return AppendVoteSignBytes(make([]byte, 0, 64+len(chainID)), chainID, v)
}

// AppendVoteSignBytes appends the canonical vote sign bytes to dst and
// returns the extended slice. Hot paths (the consensus engine signs and
// the shared vote-verification cache checks every gossiped vote) pass a
// pooled buffer so per-vote encoding allocates nothing in steady state.
func AppendVoteSignBytes(dst []byte, chainID string, v *Vote) []byte {
	dst = append(dst, byte(v.Type))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(v.Height))
	dst = append(dst, n[:]...)
	binary.BigEndian.PutUint64(n[:], uint64(v.Round))
	dst = append(dst, n[:]...)
	dst = append(dst, v.BlockID.Hash[:]...)
	dst = append(dst, chainID...)
	return dst
}

// VoteVerifier abstracts vote-signature verification so a chain-scoped
// cache (internal/tendermint/votesig) can admit each gossiped vote's
// ed25519 signature exactly once chain-wide. Implementations MUST only
// report true for signatures that verify under pub; callers MUST resolve
// pub from the claimed validator address in the chain's canonical set.
type VoteVerifier interface {
	// VerifyVote reports whether v.Signature is valid for v's sign bytes
	// under pub on the given chain.
	VerifyVote(chainID string, v *Vote, pub valkey.PubKey) bool
}

// Validator is one member of the validator set.
type Validator struct {
	Address     valkey.Address
	PubKey      valkey.PubKey
	VotingPower int64
}

// ValidatorSet is an ordered set of validators with proposer rotation.
type ValidatorSet struct {
	Validators []*Validator
	totalPower int64
	byAddr     map[valkey.Address]*Validator
}

// NewValidatorSet builds a set; order is preserved and determines the
// round-robin proposer schedule.
func NewValidatorSet(vals []*Validator) *ValidatorSet {
	vs := &ValidatorSet{
		Validators: append([]*Validator(nil), vals...),
		byAddr:     make(map[valkey.Address]*Validator, len(vals)),
	}
	for _, v := range vals {
		vs.totalPower += v.VotingPower
		vs.byAddr[v.Address] = v
	}
	return vs
}

// TotalPower reports the sum of voting power.
func (vs *ValidatorSet) TotalPower() int64 { return vs.totalPower }

// Size reports the number of validators.
func (vs *ValidatorSet) Size() int { return len(vs.Validators) }

// ByAddress looks a validator up; nil if absent.
func (vs *ValidatorSet) ByAddress(a valkey.Address) *Validator {
	return vs.byAddr[a]
}

// Proposer selects the proposer for a height/round by rotation: "In each
// round one participant from the validator set is elected as a proposer"
// (§II-A).
func (vs *ValidatorSet) Proposer(height int64, round int32) *Validator {
	if len(vs.Validators) == 0 {
		return nil
	}
	idx := (uint64(height) + uint64(round)) % uint64(len(vs.Validators))
	return vs.Validators[idx]
}

// Hash commits to the validator set for the header's ValidatorsHash.
func (vs *ValidatorSet) Hash() Hash {
	leaves := make([]merkle.Hash, len(vs.Validators))
	for i, v := range vs.Validators {
		h := sha256.New()
		h.Write(v.Address[:])
		h.Write(v.PubKey.Bytes())
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.VotingPower))
		h.Write(buf[:])
		copy(leaves[i][:], h.Sum(nil))
	}
	return merkle.HashLeaves(leaves)
}

// Commit verification errors.
var (
	ErrCommitHeightMismatch = errors.New("types: commit height mismatch")
	ErrCommitWrongBlockID   = errors.New("types: commit is for a different block")
	ErrInsufficientPower    = errors.New("types: less than 2/3+ voting power signed")
)

// VerifyCommit checks that a commit carries valid signatures from more
// than 2/3 of the validator set's voting power for the given block. This
// is the check light clients perform when accepting counterparty headers.
func (vs *ValidatorSet) VerifyCommit(chainID string, blockID BlockID, height int64, commit *Commit) error {
	return vs.VerifyCommitCached(chainID, blockID, height, commit, nil)
}

// VerifyCommitCached is VerifyCommit with a batched fast path: commit
// signatures already admitted through vv (the source chain's live vote
// path) are not re-verified — a commit signature is byte-for-byte the
// precommit vote the engine's shared cache already checked. A nil vv
// verifies every signature directly.
func (vs *ValidatorSet) VerifyCommitCached(chainID string, blockID BlockID, height int64, commit *Commit, vv VoteVerifier) error {
	if commit == nil || commit.Height != height {
		return ErrCommitHeightMismatch
	}
	if commit.BlockID != blockID {
		return ErrCommitWrongBlockID
	}
	var signed int64
	vote := Vote{
		Type:    PrecommitType,
		Height:  commit.Height,
		Round:   commit.Round,
		BlockID: commit.BlockID,
	}
	seen := make(map[valkey.Address]bool, len(commit.Signatures))
	for _, sig := range commit.Signatures {
		if sig.Flag != BlockIDFlagCommit {
			continue
		}
		val := vs.byAddr[sig.ValidatorAddress]
		if val == nil || seen[sig.ValidatorAddress] {
			continue
		}
		vote.ValidatorAddress = sig.ValidatorAddress
		vote.Signature = sig.Signature
		ok := false
		if vv != nil {
			ok = vv.VerifyVote(chainID, &vote, val.PubKey)
		} else {
			ok = val.PubKey.Verify(VoteSignBytes(chainID, &vote), sig.Signature)
		}
		if !ok {
			return fmt.Errorf("types: invalid signature from %s", sig.ValidatorAddress)
		}
		seen[sig.ValidatorAddress] = true
		signed += val.VotingPower
	}
	if signed*3 <= vs.totalPower*2 {
		return ErrInsufficientPower
	}
	return nil
}
