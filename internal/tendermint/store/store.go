// Package store keeps the committed chain: blocks, commits, execution
// results and the transaction/event indexes that back the RPC queries
// the relayer depends on (tx lookup by hash, tx_search by height).
package store

import (
	"errors"
	"fmt"
	"sync"

	"ibcbench/internal/abci"
	"ibcbench/internal/tendermint/types"
)

// ErrNotFound reports a missing block or transaction.
var ErrNotFound = errors.New("store: not found")

// TxInfo locates an executed transaction and carries its result.
type TxInfo struct {
	Height int64
	Index  int
	Tx     types.Tx
	Result abci.TxResult
}

// CommittedBlock pairs a block with the commit that finalized it and the
// per-transaction execution results.
type CommittedBlock struct {
	Block   *types.Block
	Commit  *types.Commit
	Results []abci.TxResult
}

// Store is the append-only block store of one chain. Appends happen on
// the owning chain's scheduler; under parallel runs other partitions
// (light-client update paths reading proof blocks) may query
// concurrently, so the indexes are guarded by a read/write lock. The
// committed blocks themselves are immutable once appended.
type Store struct {
	mu      sync.RWMutex
	chainID string
	blocks  []*CommittedBlock // index 0 = height 1
	txIndex map[types.Hash]*TxInfo
	// txsByHeight caches each block's TxInfo slice (the same records the
	// hash index points at), so per-height queries, event publication and
	// the event index all share one materialization per block.
	txsByHeight [][]*TxInfo
}

// New returns an empty store for the given chain.
func New(chainID string) *Store {
	return &Store{
		chainID: chainID,
		txIndex: make(map[types.Hash]*TxInfo),
	}
}

// ChainID reports the chain the store belongs to.
func (s *Store) ChainID() string { return s.chainID }

// Height reports the latest committed height (0 before the first block).
func (s *Store) Height() int64 {
	s.mu.RLock()
	h := int64(len(s.blocks))
	s.mu.RUnlock()
	return h
}

// Append adds the next block. Heights must be contiguous from 1.
func (s *Store) Append(cb *CommittedBlock) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := int64(len(s.blocks)) + 1
	if cb.Block.Header.Height != want {
		return fmt.Errorf("store: appending height %d, want %d", cb.Block.Header.Height, want)
	}
	if len(cb.Results) != len(cb.Block.Data) {
		return fmt.Errorf("store: %d results for %d txs", len(cb.Results), len(cb.Block.Data))
	}
	s.blocks = append(s.blocks, cb)
	infos := make([]*TxInfo, len(cb.Block.Data))
	for i, tx := range cb.Block.Data {
		info := &TxInfo{
			Height: cb.Block.Header.Height,
			Index:  i,
			Tx:     tx,
			Result: cb.Results[i],
		}
		infos[i] = info
		s.txIndex[tx.Hash()] = info
	}
	s.txsByHeight = append(s.txsByHeight, infos)
	return nil
}

// Block returns the committed block at height.
func (s *Store) Block(height int64) (*CommittedBlock, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height < 1 || height > int64(len(s.blocks)) {
		return nil, ErrNotFound
	}
	return s.blocks[height-1], nil
}

// Tx looks up an executed transaction by hash.
func (s *Store) Tx(hash types.Hash) (*TxInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.txIndex[hash]
	if !ok {
		return nil, ErrNotFound
	}
	return info, nil
}

// TxsAtHeight returns the transactions of one block with their results,
// the backing data of the paper's `tx_search --events tx.height=X` query.
// The returned slice is the store's cached materialization; callers must
// treat it as read-only.
func (s *Store) TxsAtHeight(height int64) ([]*TxInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height < 1 || height > int64(len(s.blocks)) {
		return nil, ErrNotFound
	}
	return s.txsByHeight[height-1], nil
}
