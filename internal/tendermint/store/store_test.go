package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"ibcbench/internal/abci"
	"ibcbench/internal/tendermint/types"
)

type tx string

func (t tx) Hash() types.Hash  { return sha256.Sum256([]byte(t)) }
func (t tx) Size() int         { return len(t) }
func (t tx) GasWanted() uint64 { return 1 }

func block(height int64, txs ...types.Tx) *CommittedBlock {
	results := make([]abci.TxResult, len(txs))
	return &CommittedBlock{
		Block:   &types.Block{Header: types.Header{Height: height}, Data: txs},
		Commit:  &types.Commit{Height: height},
		Results: results,
	}
}

func TestAppendAndLookup(t *testing.T) {
	s := New("chain-a")
	if s.Height() != 0 {
		t.Fatalf("initial height = %d", s.Height())
	}
	if err := s.Append(block(1, tx("a"), tx("b"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(block(2, tx("c"))); err != nil {
		t.Fatal(err)
	}
	if s.Height() != 2 {
		t.Fatalf("height = %d", s.Height())
	}
	cb, err := s.Block(1)
	if err != nil || len(cb.Block.Data) != 2 {
		t.Fatalf("block(1): %v", err)
	}
	info, err := s.Tx(tx("c").Hash())
	if err != nil {
		t.Fatal(err)
	}
	if info.Height != 2 || info.Index != 0 {
		t.Fatalf("tx info = %+v", info)
	}
}

func TestAppendRejectsGaps(t *testing.T) {
	s := New("chain-a")
	if err := s.Append(block(2)); err == nil {
		t.Fatal("accepted height gap")
	}
	if err := s.Append(block(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(block(1)); err == nil {
		t.Fatal("accepted duplicate height")
	}
}

func TestAppendRejectsResultMismatch(t *testing.T) {
	s := New("chain-a")
	cb := block(1, tx("a"))
	cb.Results = nil
	if err := s.Append(cb); err == nil {
		t.Fatal("accepted mismatched results")
	}
}

func TestNotFound(t *testing.T) {
	s := New("chain-a")
	if _, err := s.Block(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Block(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("height 0: %v", err)
	}
	if _, err := s.Tx(tx("missing").Hash()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tx err = %v", err)
	}
	if _, err := s.TxsAtHeight(9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("txs err = %v", err)
	}
}

func TestTxsAtHeight(t *testing.T) {
	s := New("chain-a")
	var txs []types.Tx
	for i := 0; i < 20; i++ {
		txs = append(txs, tx(fmt.Sprintf("t%d", i)))
	}
	if err := s.Append(block(1, txs...)); err != nil {
		t.Fatal(err)
	}
	infos, err := s.TxsAtHeight(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 20 {
		t.Fatalf("got %d infos", len(infos))
	}
	for i, info := range infos {
		if info.Index != i || info.Height != 1 {
			t.Fatalf("info[%d] = %+v", i, info)
		}
	}
}
