// Package mempool implements the pending-transaction pool from which
// block proposers reap transactions.
//
// The simulation uses one pool per chain, standing in for the gossiped
// union of every validator's pool; with five co-located validators and a
// relayer talking to local endpoints (the paper's §III-C deployment) the
// pools converge well within a block interval, so a shared pool preserves
// the observable behaviour while keeping runs deterministic.
package mempool

import (
	"errors"

	"ibcbench/internal/tendermint/types"
)

// Pool admission errors.
var (
	// ErrFull reports that the pool hit its transaction-count capacity.
	ErrFull = errors.New("mempool: full")
	// ErrDuplicate reports a transaction already in the pool.
	ErrDuplicate = errors.New("mempool: tx already present")
	// ErrTooLarge reports a transaction exceeding the per-tx byte cap.
	ErrTooLarge = errors.New("mempool: tx exceeds max size")
)

// CheckFunc validates a transaction for admission (the app's CheckTx).
type CheckFunc func(types.Tx) error

// Config bounds the pool. Zero values mean "unlimited" except MaxTxs.
type Config struct {
	// MaxTxs caps the number of pending transactions (Tendermint's
	// mempool.size; Gaia default is 5000).
	MaxTxs int
	// MaxTxBytes caps a single transaction's size.
	MaxTxBytes int
}

// DefaultConfig mirrors Gaia's defaults.
func DefaultConfig() Config {
	return Config{MaxTxs: 5000, MaxTxBytes: 1 << 20}
}

// Pool is a FIFO transaction pool with duplicate suppression.
type Pool struct {
	cfg     Config
	check   CheckFunc
	txs     []types.Tx
	present map[types.Hash]bool

	added    uint64
	rejected uint64
}

// New returns an empty pool. check may be nil (no app-level validation).
func New(cfg Config, check CheckFunc) *Pool {
	if cfg.MaxTxs <= 0 {
		cfg.MaxTxs = DefaultConfig().MaxTxs
	}
	return &Pool{
		cfg:     cfg,
		check:   check,
		present: make(map[types.Hash]bool),
	}
}

// Size reports the number of pending transactions.
func (p *Pool) Size() int { return len(p.txs) }

// Added reports the total number of admitted transactions.
func (p *Pool) Added() uint64 { return p.added }

// Rejected reports the total number of rejected submissions.
func (p *Pool) Rejected() uint64 { return p.rejected }

// Add validates and enqueues a transaction.
func (p *Pool) Add(tx types.Tx) error {
	if p.cfg.MaxTxBytes > 0 && tx.Size() > p.cfg.MaxTxBytes {
		p.rejected++
		return ErrTooLarge
	}
	if len(p.txs) >= p.cfg.MaxTxs {
		p.rejected++
		return ErrFull
	}
	h := tx.Hash()
	if p.present[h] {
		p.rejected++
		return ErrDuplicate
	}
	if p.check != nil {
		if err := p.check(tx); err != nil {
			p.rejected++
			return err
		}
	}
	p.txs = append(p.txs, tx)
	p.present[h] = true
	p.added++
	return nil
}

// Reap returns up to the byte/gas bounded prefix of pending transactions
// in FIFO order, without removing them. Zero bounds mean unlimited.
func (p *Pool) Reap(maxBytes int, maxGas uint64) []types.Tx {
	var (
		out   []types.Tx
		bytes int
		gas   uint64
	)
	for _, tx := range p.txs {
		if maxBytes > 0 && bytes+tx.Size() > maxBytes {
			break
		}
		if maxGas > 0 && gas+tx.GasWanted() > maxGas {
			break
		}
		out = append(out, tx)
		bytes += tx.Size()
		gas += tx.GasWanted()
	}
	return out
}

// Update removes committed transactions from the pool.
func (p *Pool) Update(committed []types.Tx) {
	if len(committed) == 0 {
		return
	}
	gone := make(map[types.Hash]bool, len(committed))
	for _, tx := range committed {
		gone[tx.Hash()] = true
	}
	kept := p.txs[:0]
	for _, tx := range p.txs {
		if gone[tx.Hash()] {
			delete(p.present, tx.Hash())
			continue
		}
		kept = append(kept, tx)
	}
	// Zero trailing slots so removed txs can be collected.
	for i := len(kept); i < len(p.txs); i++ {
		p.txs[i] = nil
	}
	p.txs = kept
}

// Flush drops every pending transaction.
func (p *Pool) Flush() {
	p.txs = nil
	p.present = make(map[types.Hash]bool)
}
