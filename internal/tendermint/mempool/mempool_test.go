package mempool

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"ibcbench/internal/tendermint/types"
)

type tx struct {
	id   string
	size int
	gas  uint64
}

func (t tx) Hash() types.Hash  { return sha256.Sum256([]byte(t.id)) }
func (t tx) Size() int         { return t.size }
func (t tx) GasWanted() uint64 { return t.gas }

func mk(i int) tx { return tx{id: fmt.Sprintf("tx-%d", i), size: 10, gas: 100} }

func TestAddAndReapFIFO(t *testing.T) {
	p := New(Config{MaxTxs: 100}, nil)
	for i := 0; i < 5; i++ {
		if err := p.Add(mk(i)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	got := p.Reap(0, 0)
	if len(got) != 5 {
		t.Fatalf("reaped %d", len(got))
	}
	for i, g := range got {
		if g.(tx).id != fmt.Sprintf("tx-%d", i) {
			t.Fatalf("not FIFO at %d: %v", i, g)
		}
	}
	// Reap does not remove.
	if p.Size() != 5 {
		t.Fatalf("size after reap = %d", p.Size())
	}
}

func TestDuplicateRejected(t *testing.T) {
	p := New(Config{MaxTxs: 10}, nil)
	if err := p.Add(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(mk(1)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if p.Rejected() != 1 || p.Added() != 1 {
		t.Fatalf("added=%d rejected=%d", p.Added(), p.Rejected())
	}
}

func TestCapacity(t *testing.T) {
	p := New(Config{MaxTxs: 3}, nil)
	for i := 0; i < 3; i++ {
		if err := p.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(mk(99)); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestTooLarge(t *testing.T) {
	p := New(Config{MaxTxs: 10, MaxTxBytes: 5}, nil)
	if err := p.Add(tx{id: "big", size: 6}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestCheckFuncRejects(t *testing.T) {
	bad := errors.New("ante: sequence mismatch")
	p := New(Config{MaxTxs: 10}, func(types.Tx) error { return bad })
	if err := p.Add(mk(1)); !errors.Is(err, bad) {
		t.Fatalf("err = %v, want ante error", err)
	}
	if p.Size() != 0 {
		t.Fatal("rejected tx entered pool")
	}
}

func TestReapBounds(t *testing.T) {
	p := New(Config{MaxTxs: 100}, nil)
	for i := 0; i < 10; i++ {
		if err := p.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Reap(35, 0); len(got) != 3 { // 3 txs of 10 bytes fit in 35
		t.Fatalf("byte-bounded reap = %d, want 3", len(got))
	}
	if got := p.Reap(0, 250); len(got) != 2 { // 2 txs of 100 gas fit in 250
		t.Fatalf("gas-bounded reap = %d, want 2", len(got))
	}
}

func TestUpdateRemovesCommitted(t *testing.T) {
	p := New(Config{MaxTxs: 100}, nil)
	for i := 0; i < 6; i++ {
		if err := p.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Update([]types.Tx{mk(0), mk(2), mk(4)})
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	got := p.Reap(0, 0)
	want := []string{"tx-1", "tx-3", "tx-5"}
	for i := range want {
		if got[i].(tx).id != want[i] {
			t.Fatalf("remaining[%d] = %v", i, got[i])
		}
	}
	// Committed txs can be re-added afterwards (hash freed).
	if err := p.Add(mk(0)); err != nil {
		t.Fatalf("re-add after commit: %v", err)
	}
}

func TestFlush(t *testing.T) {
	p := New(Config{MaxTxs: 100}, nil)
	for i := 0; i < 4; i++ {
		if err := p.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if p.Size() != 0 {
		t.Fatalf("size after flush = %d", p.Size())
	}
	if err := p.Add(mk(0)); err != nil {
		t.Fatalf("add after flush: %v", err)
	}
}

func TestUpdateNoop(t *testing.T) {
	p := New(Config{MaxTxs: 10}, nil)
	if err := p.Add(mk(1)); err != nil {
		t.Fatal(err)
	}
	p.Update(nil)
	if p.Size() != 1 {
		t.Fatal("no-op update changed pool")
	}
}
