// Package votesig is the per-chain shared vote-verification engine.
//
// In the gossip protocol every validator re-verified every vote it
// received, making block production O(V^2) in ed25519 signature checks
// (each of the ~2V votes per round is delivered to all V nodes). The
// votes themselves are chain-global facts: a vote's sign bytes depend
// only on (chainID, type, height, round, blockID) and its signature on
// the validator's key, so one successful verification holds for every
// receiver. The Cache records each *verified* (validator, height, round,
// type, blockID) tuple together with the exact signature bytes that
// passed; later deliveries of the same vote hit the cache and skip the
// curve operation, pinning per-block verification work to O(V).
//
// Safety: the cache stores only tuples that passed a full ed25519 check,
// and a hit additionally requires the candidate signature to be
// byte-identical to the admitted one — a tampered or forged signature
// over a cached tuple never short-circuits; it falls through to a full
// verification (and fails). Callers must resolve the public key from the
// claimed validator address in the chain's canonical validator set,
// otherwise a cached tuple could vouch for a key it was never checked
// against.
//
// The same engine backs the batched VerifyCommit fast path: a block's
// commit signatures are byte-for-byte the precommit votes the live path
// already admitted, so light-client header verification skips them too
// (types.ValidatorSet.VerifyCommitCached).
package votesig

import (
	"bytes"
	"sync"

	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/valkey"
)

// key identifies one vote as a chain-global fact. Two honest votes never
// share a key; a conflicting (equivocating) vote differs in BlockID and
// therefore verifies — and caches — separately.
type key struct {
	Validator valkey.Address
	Height    int64
	Round     int32
	Type      types.SignedMsgType
	BlockID   types.Hash
}

// Stats reports the cache's verification counters.
type Stats struct {
	// Verifications counts full ed25519 checks performed (cache misses
	// plus every check in reference mode).
	Verifications uint64
	// Hits counts verifications skipped because the identical vote was
	// already admitted.
	Hits uint64
	// Rejected counts signatures that failed the full check.
	Rejected uint64
	// Size is the number of admitted tuples currently retained.
	Size int
}

// Cache is one chain's shared vote-verification engine. The consensus
// engine that owns it mutates it on the chain's scheduler; under
// parallel runs other chains' light-client paths consult it through
// read-only verifiers (ReadOnly), so the admitted map is guarded by a
// read/write lock.
type Cache struct {
	mu       sync.RWMutex
	chainID  string
	admitted map[key][]byte // verified tuple -> admitted signature bytes
	buf      []byte         // pooled sign-bytes buffer (AppendVoteSignBytes)
	stats    Stats
}

// New creates the cache for one chain.
func New(chainID string) *Cache {
	return &Cache{chainID: chainID, admitted: make(map[key][]byte)}
}

func keyOf(v *types.Vote) key {
	return key{
		Validator: v.ValidatorAddress,
		Height:    v.Height,
		Round:     v.Round,
		Type:      v.Type,
		BlockID:   v.BlockID.Hash,
	}
}

// VerifyVote implements types.VoteVerifier: it reports whether the vote's
// signature is valid under pub, performing the ed25519 check at most once
// chain-wide per distinct vote. Votes for a foreign chain ID never touch
// the cache (they are verified directly) — a cache is bound to the chain
// whose sign-bytes domain it admitted signatures under.
func (c *Cache) VerifyVote(chainID string, v *types.Vote, pub valkey.PubKey) bool {
	if chainID != c.chainID {
		return c.VerifyDirect(chainID, v, pub)
	}
	k := keyOf(v)
	c.mu.RLock()
	sig, ok := c.admitted[k]
	c.mu.RUnlock()
	if ok && bytes.Equal(sig, v.Signature) {
		c.stats.Hits++
		return true
	}
	if !c.fullVerify(chainID, v, pub) {
		return false
	}
	c.mu.Lock()
	c.admitted[k] = append([]byte(nil), v.Signature...)
	c.mu.Unlock()
	return true
}

// VerifyDirect performs the full signature check without consulting or
// populating the cache — the O(V^2) reference path, kept so scenario
// results can be pinned byte-identical against the shared engine while
// the counters expose the verification-count difference.
func (c *Cache) VerifyDirect(chainID string, v *types.Vote, pub valkey.PubKey) bool {
	return c.fullVerify(chainID, v, pub)
}

func (c *Cache) fullVerify(chainID string, v *types.Vote, pub valkey.PubKey) bool {
	c.buf = types.AppendVoteSignBytes(c.buf[:0], chainID, v)
	c.stats.Verifications++
	if !pub.Verify(c.buf, v.Signature) {
		c.stats.Rejected++
		return false
	}
	return true
}

// PruneBelow drops admitted tuples for heights below h. The engine prunes
// a trailing window behind the committed height: live votes for old
// heights no longer arrive, and a pruned commit signature merely falls
// back to a full verification in the light-client path.
func (c *Cache) PruneBelow(h int64) {
	c.mu.Lock()
	for k := range c.admitted {
		if k.Height < h {
			delete(c.admitted, k)
		}
	}
	c.mu.Unlock()
}

// Stats snapshots the verification counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	c.mu.RLock()
	s.Size = len(c.admitted)
	c.mu.RUnlock()
	return s
}

// ReadOnly is a cross-chain view of the cache for light-client paths
// that run on another chain's partition: a hit requires an admitted
// byte-identical signature (lock-guarded read), a miss falls back to a
// full ed25519 check against a private sign-bytes buffer. It never
// admits tuples and never touches the owner's counters, so the owning
// engine's verification stats stay single-writer.
type ReadOnly struct {
	c   *Cache
	buf []byte
}

// ReadOnly derives a read-only verifier. Each consumer (one keeper's
// counterparty registration) must hold its own instance: the verifier
// itself is single-threaded, only its view of the cache is shared.
func (c *Cache) ReadOnly() *ReadOnly { return &ReadOnly{c: c} }

// VerifyVote implements types.VoteVerifier without mutating the cache.
func (r *ReadOnly) VerifyVote(chainID string, v *types.Vote, pub valkey.PubKey) bool {
	if chainID == r.c.chainID {
		k := keyOf(v)
		r.c.mu.RLock()
		sig, ok := r.c.admitted[k]
		hit := ok && bytes.Equal(sig, v.Signature)
		r.c.mu.RUnlock()
		if hit {
			return true
		}
	}
	r.buf = types.AppendVoteSignBytes(r.buf[:0], chainID, v)
	return pub.Verify(r.buf, v.Signature)
}
