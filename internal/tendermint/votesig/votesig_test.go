package votesig_test

import (
	"testing"
	"time"

	"ibcbench/internal/tendermint/types"
	"ibcbench/internal/tendermint/votesig"
	"ibcbench/internal/valkey"
)

const chainID = "cache-chain"

func mkVote(key *valkey.PrivKey, vt types.SignedMsgType, h int64, r int32, id types.BlockID) *types.Vote {
	v := &types.Vote{
		Type:             vt,
		Height:           h,
		Round:            r,
		BlockID:          id,
		Timestamp:        3 * time.Second,
		ValidatorAddress: key.Pub().Address(),
	}
	v.Signature = key.Sign(types.VoteSignBytes(chainID, v))
	return v
}

func TestVerifyOnceThenHit(t *testing.T) {
	c := votesig.New(chainID)
	key := valkey.Derive(chainID, 0)
	v := mkVote(key, types.PrevoteType, 5, 0, types.BlockID{Hash: types.Hash{1}})
	for i := 0; i < 4; i++ {
		if !c.VerifyVote(chainID, v, key.Pub()) {
			t.Fatalf("valid vote rejected on delivery %d", i)
		}
	}
	st := c.Stats()
	if st.Verifications != 1 {
		t.Fatalf("4 deliveries performed %d full verifications, want 1", st.Verifications)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
	if st.Size != 1 {
		t.Fatalf("cache size = %d, want 1", st.Size)
	}
}

func TestTamperedSignatureNeverHits(t *testing.T) {
	c := votesig.New(chainID)
	key := valkey.Derive(chainID, 0)
	v := mkVote(key, types.PrevoteType, 5, 0, types.BlockID{Hash: types.Hash{1}})
	if !c.VerifyVote(chainID, v, key.Pub()) {
		t.Fatal("valid vote rejected")
	}
	// Same tuple, flipped signature bit: the cached tuple must not vouch
	// for it — it falls through to a full check and fails.
	bad := *v
	bad.Signature = append([]byte(nil), v.Signature...)
	bad.Signature[0] ^= 0xff
	if c.VerifyVote(chainID, &bad, key.Pub()) {
		t.Fatal("tampered signature accepted via cached tuple")
	}
	st := c.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// The failed check must not evict or overwrite the admitted entry.
	if !c.VerifyVote(chainID, v, key.Pub()) {
		t.Fatal("original vote rejected after tamper attempt")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("original vote did not hit after tamper attempt (hits=%d)", st.Hits)
	}
}

func TestForgedVoteRejected(t *testing.T) {
	c := votesig.New(chainID)
	victim := valkey.Derive(chainID, 0)
	attacker := valkey.Derive(chainID, 9)
	// A vote claiming the victim's address but signed by the attacker.
	forged := &types.Vote{
		Type:             types.PrecommitType,
		Height:           2,
		Round:            0,
		BlockID:          types.BlockID{Hash: types.Hash{2}},
		ValidatorAddress: victim.Pub().Address(),
	}
	forged.Signature = attacker.Sign(types.VoteSignBytes(chainID, forged))
	// The caller resolves the pubkey by the claimed address (the
	// victim's), so the forgery fails and is never admitted.
	if c.VerifyVote(chainID, forged, victim.Pub()) {
		t.Fatal("forged vote accepted")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("forged vote cached (size=%d)", st.Size)
	}
}

func TestVoteTimestampExcludedFromIdentity(t *testing.T) {
	// A commit signature is the live precommit minus the timestamp (sign
	// bytes never include it), so the commit fast path must hit.
	c := votesig.New(chainID)
	key := valkey.Derive(chainID, 0)
	v := mkVote(key, types.PrecommitType, 7, 1, types.BlockID{Hash: types.Hash{7}})
	if !c.VerifyVote(chainID, v, key.Pub()) {
		t.Fatal("valid vote rejected")
	}
	asCommitSig := *v
	asCommitSig.Timestamp = 0
	if !c.VerifyVote(chainID, &asCommitSig, key.Pub()) {
		t.Fatal("commit-shaped vote rejected")
	}
	if st := c.Stats(); st.Verifications != 1 || st.Hits != 1 {
		t.Fatalf("commit-shaped vote re-verified (verifications=%d hits=%d)", st.Verifications, st.Hits)
	}
}

func TestForeignChainBypassesCache(t *testing.T) {
	c := votesig.New(chainID)
	key := valkey.Derive("other-chain", 0)
	v := &types.Vote{
		Type: types.PrevoteType, Height: 1, Round: 0,
		ValidatorAddress: key.Pub().Address(),
	}
	v.Signature = key.Sign(types.VoteSignBytes("other-chain", v))
	for i := 0; i < 2; i++ {
		if !c.VerifyVote("other-chain", v, key.Pub()) {
			t.Fatal("foreign-chain vote rejected")
		}
	}
	st := c.Stats()
	if st.Verifications != 2 || st.Hits != 0 || st.Size != 0 {
		t.Fatalf("foreign-chain votes touched the cache: %+v", st)
	}
}

func TestVerifyDirectDoesNotPopulate(t *testing.T) {
	c := votesig.New(chainID)
	key := valkey.Derive(chainID, 0)
	v := mkVote(key, types.PrevoteType, 1, 0, types.BlockID{})
	for i := 0; i < 3; i++ {
		if !c.VerifyDirect(chainID, v, key.Pub()) {
			t.Fatal("valid vote rejected on reference path")
		}
	}
	st := c.Stats()
	if st.Verifications != 3 || st.Hits != 0 || st.Size != 0 {
		t.Fatalf("reference path cached or hit: %+v", st)
	}
}

func TestPruneBelow(t *testing.T) {
	c := votesig.New(chainID)
	key := valkey.Derive(chainID, 0)
	for h := int64(1); h <= 10; h++ {
		v := mkVote(key, types.PrevoteType, h, 0, types.BlockID{Hash: types.Hash{byte(h)}})
		if !c.VerifyVote(chainID, v, key.Pub()) {
			t.Fatalf("vote at height %d rejected", h)
		}
	}
	c.PruneBelow(8)
	if st := c.Stats(); st.Size != 3 {
		t.Fatalf("size after pruning below 8 = %d, want 3 (heights 8..10)", st.Size)
	}
	// A pruned vote merely falls back to a full verification.
	v := mkVote(key, types.PrevoteType, 2, 0, types.BlockID{Hash: types.Hash{2}})
	if !c.VerifyVote(chainID, v, key.Pub()) {
		t.Fatal("re-delivered pruned vote rejected")
	}
}

// --- batched VerifyCommit fast path ------------------------------------------

func TestVerifyCommitCachedSkipsAdmittedSignatures(t *testing.T) {
	c := votesig.New(chainID)
	const n = 4
	blockID := types.BlockID{Hash: types.Hash{42}}
	vals := make([]*types.Validator, n)
	commit := &types.Commit{Height: 3, Round: 1, BlockID: blockID}
	for i := 0; i < n; i++ {
		key := valkey.Derive(chainID, i)
		vals[i] = &types.Validator{Address: key.Pub().Address(), PubKey: key.Pub(), VotingPower: 10}
		v := mkVote(key, types.PrecommitType, 3, 1, blockID)
		// The live vote path admits every precommit once.
		if !c.VerifyVote(chainID, v, key.Pub()) {
			t.Fatalf("live precommit %d rejected", i)
		}
		commit.Signatures = append(commit.Signatures, types.CommitSig{
			Flag:             types.BlockIDFlagCommit,
			ValidatorAddress: v.ValidatorAddress,
			Timestamp:        v.Timestamp,
			Signature:        v.Signature,
		})
	}
	vs := types.NewValidatorSet(vals)
	before := c.Stats().Verifications
	if err := vs.VerifyCommitCached(chainID, blockID, 3, commit, c); err != nil {
		t.Fatalf("cached commit verification failed: %v", err)
	}
	if after := c.Stats().Verifications; after != before {
		t.Fatalf("commit fast path performed %d extra full verifications", after-before)
	}

	// A tampered commit signature still fails even with a warm cache.
	bad := &types.Commit{Height: 3, Round: 1, BlockID: blockID}
	bad.Signatures = append([]types.CommitSig(nil), commit.Signatures...)
	bad.Signatures[2].Signature = append([]byte(nil), bad.Signatures[2].Signature...)
	bad.Signatures[2].Signature[5] ^= 0x01
	if err := vs.VerifyCommitCached(chainID, blockID, 3, bad, c); err == nil {
		t.Fatal("tampered commit signature accepted through the fast path")
	}

	// An unregistered verifier (nil) still verifies the commit fully.
	if err := vs.VerifyCommitCached(chainID, blockID, 3, commit, nil); err != nil {
		t.Fatalf("nil-verifier commit verification failed: %v", err)
	}
}
