// Package merkle implements the authenticated key-value commitment used
// by the simulated blockchains.
//
// Cosmos chains commit their application state to an AppHash in every
// block header; IBC light clients verify packet commitments, receipts and
// acknowledgements against that root via merkle membership and
// non-membership proofs (ICS-23). This package provides a deterministic
// SHA-256 merkle tree over sorted key-value leaves with both proof kinds.
//
// The tree is a complete binary tree padded to a power of two, built once
// in O(n) and serving proofs in O(log n) — the relayer requests one proof
// per packet message, thousands per block, so proof generation must be
// cheap.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
)

// Hash is a 32-byte SHA-256 digest.
type Hash [sha256.Size]byte

// Domain-separation prefixes prevent leaf/inner second-preimage attacks.
const (
	leafPrefix  = byte(0x00)
	innerPrefix = byte(0x01)
)

var (
	// ErrProofInvalid reports a proof that does not verify against the root.
	ErrProofInvalid = errors.New("merkle: proof does not verify")
	// ErrKeyPresent reports a non-membership proof for a key that is present.
	ErrKeyPresent = errors.New("merkle: key is present")
	// emptyRoot commits to the empty tree.
	emptyRoot = sha256.Sum256([]byte("ibcbench/empty-tree"))
	// padLeaf fills the tree out to a power of two.
	padLeaf = sha256.Sum256([]byte("ibcbench/pad-leaf"))
)

// LeafHash hashes a key-value leaf with domain separation and length
// prefixes.
func LeafHash(key, value []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(key)))
	h.Write(n[:])
	h.Write(key)
	binary.BigEndian.PutUint64(n[:], uint64(len(value)))
	h.Write(n[:])
	h.Write(value)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// InnerHash combines two child digests.
func InnerHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{innerPrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// levels builds the full tree bottom-up from (padded) leaves.
func buildLevels(leaves []Hash) [][]Hash {
	m := 1
	for m < len(leaves) {
		m *= 2
	}
	level := make([]Hash, m)
	copy(level, leaves)
	for i := len(leaves); i < m; i++ {
		level[i] = padLeaf
	}
	out := [][]Hash{level}
	for len(level) > 1 {
		next := make([]Hash, len(level)/2)
		for i := range next {
			next[i] = InnerHash(level[2*i], level[2*i+1])
		}
		out = append(out, next)
		level = next
	}
	return out
}

// HashLeaves computes the root commitment over a sequence of leaf
// digests (used for block data, evidence and commit hashes).
func HashLeaves(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return emptyRoot
	}
	lv := buildLevels(leaves)
	return lv[len(lv)-1][0]
}

// Tree is an immutable merkle tree over a key-value snapshot.
type Tree struct {
	keys   [][]byte
	values [][]byte
	levels [][]Hash
	root   Hash
}

// NewTree builds a tree from a snapshot map. Keys are sorted bytewise.
func NewTree(kv map[string][]byte) *Tree {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &Tree{
		keys:   make([][]byte, len(keys)),
		values: make([][]byte, len(keys)),
	}
	leaves := make([]Hash, len(keys))
	for i, k := range keys {
		t.keys[i] = []byte(k)
		t.values[i] = kv[k]
		leaves[i] = LeafHash(t.keys[i], t.values[i])
	}
	if len(leaves) == 0 {
		t.root = emptyRoot
		return t
	}
	t.levels = buildLevels(leaves)
	t.root = t.levels[len(t.levels)-1][0]
	return t
}

// Root returns the tree's commitment.
func (t *Tree) Root() Hash { return t.root }

// Len reports the number of (real, unpadded) leaves.
func (t *Tree) Len() int { return len(t.keys) }

// Get returns the value for key and whether it is present.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	i := t.search(key)
	if i < len(t.keys) && bytes.Equal(t.keys[i], key) {
		return t.values[i], true
	}
	return nil, false
}

func (t *Tree) search(key []byte) int {
	return sort.Search(len(t.keys), func(i int) bool {
		return bytes.Compare(t.keys[i], key) >= 0
	})
}

// PathStep is one sibling digest on an audit path.
type PathStep struct {
	// Left reports whether the sibling is the left child at this level.
	Left    bool
	Sibling Hash
}

// MembershipProof proves a key-value pair is committed by a root.
type MembershipProof struct {
	// Index is the leaf position in the sorted order; Total the leaf count.
	Index int
	Total int
	Path  []PathStep
}

// ProveMembership builds a membership proof for key. It returns the bound
// value along with the proof, or false if the key is absent.
func (t *Tree) ProveMembership(key []byte) ([]byte, *MembershipProof, bool) {
	i := t.search(key)
	if i >= len(t.keys) || !bytes.Equal(t.keys[i], key) {
		return nil, nil, false
	}
	p := &MembershipProof{Index: i, Total: len(t.keys)}
	idx := i
	for level := 0; level < len(t.levels)-1; level++ {
		sib := idx ^ 1
		p.Path = append(p.Path, PathStep{
			Left:    sib < idx,
			Sibling: t.levels[level][sib],
		})
		idx /= 2
	}
	return t.values[i], p, true
}

// RootFromProof recomputes the root implied by a leaf digest and path.
func RootFromProof(leaf Hash, path []PathStep) Hash {
	cur := leaf
	for _, st := range path {
		if st.Left {
			cur = InnerHash(st.Sibling, cur)
		} else {
			cur = InnerHash(cur, st.Sibling)
		}
	}
	return cur
}

// VerifyMembership checks that (key, value) is committed by root. The
// proof's claimed Index must be consistent with the path's direction
// flags (bit i of the index says whether the sibling at level i is the
// left child), which binds the index used by non-membership adjacency
// checks.
func VerifyMembership(root Hash, key, value []byte, p *MembershipProof) error {
	if p == nil || p.Index < 0 {
		return ErrProofInvalid
	}
	idx := p.Index
	for _, st := range p.Path {
		if st.Left != (idx&1 == 1) {
			return ErrProofInvalid
		}
		idx /= 2
	}
	if idx != 0 {
		return ErrProofInvalid
	}
	if got := RootFromProof(LeafHash(key, value), p.Path); got != root {
		return ErrProofInvalid
	}
	return nil
}

// NonMembershipProof proves a key is absent from the committed snapshot.
//
// It carries membership proofs for the immediate lexicographic neighbours
// of the absent key (either may be nil at the edges of the key space),
// with their keys and values, plus the total leaf count so adjacency is
// checkable.
type NonMembershipProof struct {
	Total int

	LeftKey    []byte
	LeftValue  []byte
	LeftProof  *MembershipProof
	RightKey   []byte
	RightValue []byte
	RightProof *MembershipProof
}

// ProveNonMembership builds an absence proof for key. It returns false if
// the key is present.
func (t *Tree) ProveNonMembership(key []byte) (*NonMembershipProof, bool) {
	i := t.search(key)
	if i < len(t.keys) && bytes.Equal(t.keys[i], key) {
		return nil, false
	}
	p := &NonMembershipProof{Total: len(t.keys)}
	if i > 0 {
		v, mp, ok := t.ProveMembership(t.keys[i-1])
		if !ok {
			return nil, false
		}
		p.LeftKey, p.LeftValue, p.LeftProof = t.keys[i-1], v, mp
	}
	if i < len(t.keys) {
		v, mp, ok := t.ProveMembership(t.keys[i])
		if !ok {
			return nil, false
		}
		p.RightKey, p.RightValue, p.RightProof = t.keys[i], v, mp
	}
	return p, true
}

// VerifyNonMembership checks that key is absent from the snapshot
// committed by root.
func VerifyNonMembership(root Hash, key []byte, p *NonMembershipProof) error {
	if p == nil {
		return ErrProofInvalid
	}
	// Empty tree: everything is absent.
	if p.Total == 0 {
		if p.LeftProof == nil && p.RightProof == nil && root == emptyRoot {
			return nil
		}
		return ErrProofInvalid
	}
	leftIdx := -1
	if p.LeftProof != nil {
		if bytes.Compare(p.LeftKey, key) >= 0 {
			return ErrProofInvalid
		}
		if err := VerifyMembership(root, p.LeftKey, p.LeftValue, p.LeftProof); err != nil {
			return err
		}
		if p.LeftProof.Total != p.Total {
			return ErrProofInvalid
		}
		leftIdx = p.LeftProof.Index
	}
	rightIdx := p.Total
	if p.RightProof != nil {
		if c := bytes.Compare(p.RightKey, key); c <= 0 {
			if c == 0 {
				return ErrKeyPresent
			}
			return ErrProofInvalid
		}
		if err := VerifyMembership(root, p.RightKey, p.RightValue, p.RightProof); err != nil {
			return err
		}
		if p.RightProof.Total != p.Total {
			return ErrProofInvalid
		}
		rightIdx = p.RightProof.Index
	}
	// The neighbours must be adjacent: no leaf lies between them.
	if p.LeftProof == nil {
		if rightIdx != 0 {
			return ErrProofInvalid
		}
		return nil
	}
	if p.RightProof == nil {
		if leftIdx != p.Total-1 {
			return ErrProofInvalid
		}
		return nil
	}
	if rightIdx != leftIdx+1 {
		return ErrProofInvalid
	}
	return nil
}
