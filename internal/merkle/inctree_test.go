package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

// applyRef mirrors Apply on a plain map for cross-checking.
func applyRef(ref map[string][]byte, edits []Edit) {
	for _, e := range edits {
		if e.Delete {
			delete(ref, e.Key)
		} else {
			ref[e.Key] = e.Value
		}
	}
}

func TestIncTreeMatchesFullRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inc := NewIncTree()
	ref := make(map[string][]byte)
	for step := 0; step < 200; step++ {
		var edits []Edit
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(300))
			switch rng.Intn(4) {
			case 0: // delete (often of an absent key early on)
				edits = append(edits, Edit{Key: key, Delete: true})
			default:
				edits = append(edits, Edit{Key: key, Value: []byte(fmt.Sprintf("v%d-%d", step, i))})
			}
		}
		got := inc.Apply(edits)
		applyRef(ref, edits)
		want := NewTree(ref).Root()
		if got != want {
			t.Fatalf("step %d: incremental root %x != full rebuild %x (n=%d)", step, got, want, len(ref))
		}
		if inc.Len() != len(ref) {
			t.Fatalf("step %d: len %d != %d", step, inc.Len(), len(ref))
		}
	}
}

func TestIncTreeDuplicateKeysLastWriterWins(t *testing.T) {
	// A large batch (beyond the stable insertion-sort threshold) with
	// set-then-delete and delete-then-set pairs on the same keys must
	// apply in input order.
	var edits []Edit
	for i := 0; i < 10; i++ {
		edits = append(edits, Edit{Key: fmt.Sprintf("pad%02d", i), Value: []byte("p")})
	}
	edits = append(edits,
		Edit{Key: "dup-a", Value: []byte("first")},
		Edit{Key: "dup-b", Delete: true},
		Edit{Key: "dup-a", Delete: true},            // last writer: deleted
		Edit{Key: "dup-b", Value: []byte("second")}, // last writer: present
	)
	inc := NewIncTree()
	got := inc.Apply(edits)
	want := make(map[string][]byte)
	applyRef(want, edits)
	if _, ok := want["dup-a"]; ok {
		t.Fatal("reference model broken")
	}
	if root := NewTree(want).Root(); got != root {
		t.Fatalf("duplicate-key batch root %x != last-writer-wins root %x", got, root)
	}
}

func TestIncTreeEmptyAndSingle(t *testing.T) {
	inc := NewIncTree()
	if inc.Root() != NewTree(nil).Root() {
		t.Fatal("empty roots differ")
	}
	if got := inc.Apply(nil); got != NewTree(nil).Root() {
		t.Fatalf("apply(nil) root = %x", got)
	}
	// Delete of an absent key on the empty tree is a no-op.
	if got := inc.Apply([]Edit{{Key: "nope", Delete: true}}); got != NewTree(nil).Root() {
		t.Fatalf("no-op delete root = %x", got)
	}
	one := map[string][]byte{"a": []byte("1")}
	if got := inc.Apply([]Edit{{Key: "a", Value: []byte("1")}}); got != NewTree(one).Root() {
		t.Fatal("single-leaf root mismatch")
	}
	// Back to empty: delete the only leaf.
	if got := inc.Apply([]Edit{{Key: "a", Delete: true}}); got != NewTree(nil).Root() {
		t.Fatal("root after deleting last leaf != empty root")
	}
}

func TestIncTreeSnapshotServesProofs(t *testing.T) {
	inc := NewIncTree()
	kv := make(map[string][]byte)
	var edits []Edit
	for i := 0; i < 37; i++ {
		k, v := fmt.Sprintf("key%02d", i), []byte(fmt.Sprintf("val%d", i))
		kv[k] = v
		edits = append(edits, Edit{Key: k, Value: v})
	}
	root := inc.Apply(edits)
	snap := inc.Snapshot()
	if snap.Root() != root {
		t.Fatal("snapshot root mismatch")
	}
	v, mp, ok := snap.ProveMembership([]byte("key17"))
	if !ok || string(v) != "val17" {
		t.Fatalf("membership proof: ok=%v v=%q", ok, v)
	}
	if err := VerifyMembership(root, []byte("key17"), v, mp); err != nil {
		t.Fatal(err)
	}
	nm, ok := snap.ProveNonMembership([]byte("key17x"))
	if !ok {
		t.Fatal("non-membership proof failed")
	}
	if err := VerifyNonMembership(root, []byte("key17x"), nm); err != nil {
		t.Fatal(err)
	}
	// Mutating the live tree must not invalidate the snapshot's proofs.
	inc.Apply([]Edit{{Key: "key17", Value: []byte("overwritten")}, {Key: "aaa", Value: []byte("new")}})
	if err := VerifyMembership(root, []byte("key17"), v, mp); err != nil {
		t.Fatalf("snapshot proof invalidated by later Apply: %v", err)
	}
}
