package merkle

import "sort"

// Edit is one key's net change in a block commit.
type Edit struct {
	Key    string
	Value  []byte
	Delete bool
}

// IncTree is the incrementally-maintained variant of Tree used for the
// live application state: it keeps the sorted leaf array and every inner
// level cached between commits and re-hashes only what a block's dirty
// keys invalidate, while committing to exactly the same root as
// NewTree(snapshot) would.
//
//   - Value-only blocks re-hash d leaves plus their O(d log n) root
//     paths.
//   - Inserts/deletes shift the sorted suffix: unchanged leaves keep
//     their cached digests (a move, not a re-hash) and only the inner
//     nodes covering the shifted range are recomputed.
//
// This replaces the per-commit full rebuild (n leaf hashes over the
// whole key-value map plus a sort of every key), the dominant cost of
// block commits in full-proof mode.
type IncTree struct {
	keys   []string
	values [][]byte
	leaves []Hash
	levels [][]Hash // levels[0] = leaves padded to a power of two
}

// NewIncTree returns an empty incremental tree (root = empty-tree root).
func NewIncTree() *IncTree { return &IncTree{} }

// Len reports the number of live leaves.
func (t *IncTree) Len() int { return len(t.keys) }

// Root returns the current commitment.
func (t *IncTree) Root() Hash {
	if len(t.levels) == 0 {
		return emptyRoot
	}
	return t.levels[len(t.levels)-1][0]
}

// Apply folds one block's dirty keys into the tree and returns the new
// root. Edits are applied in key order regardless of input order, so map
// iteration order never influences the result; the edits slice itself is
// re-sorted in place. Deleting an absent key and re-writing an identical
// value are no-ops (beyond re-hashing).
func (t *IncTree) Apply(edits []Edit) Hash {
	if len(edits) == 0 {
		return t.Root()
	}
	// Stable: duplicate-key edits keep input order, so last-writer-wins
	// holds regardless of batch size.
	sort.SliceStable(edits, func(i, j int) bool { return edits[i].Key < edits[j].Key })

	minIdx := -1 // leftmost touched leaf index
	structural := false
	var dirty []int // updated-in-place leaf indices (valid while !structural)
	for _, e := range edits {
		i := sort.SearchStrings(t.keys, e.Key)
		found := i < len(t.keys) && t.keys[i] == e.Key
		switch {
		case e.Delete && !found:
			continue
		case e.Delete:
			t.keys = append(t.keys[:i], t.keys[i+1:]...)
			t.values = append(t.values[:i], t.values[i+1:]...)
			t.leaves = append(t.leaves[:i], t.leaves[i+1:]...)
			structural = true
		case found:
			t.values[i] = e.Value
			t.leaves[i] = LeafHash([]byte(e.Key), e.Value)
			dirty = append(dirty, i)
		default:
			t.keys = append(t.keys, "")
			copy(t.keys[i+1:], t.keys[i:])
			t.keys[i] = e.Key
			t.values = append(t.values, nil)
			copy(t.values[i+1:], t.values[i:])
			t.values[i] = e.Value
			t.leaves = append(t.leaves, Hash{})
			copy(t.leaves[i+1:], t.leaves[i:])
			t.leaves[i] = LeafHash([]byte(e.Key), e.Value)
			structural = true
		}
		if minIdx == -1 || i < minIdx {
			minIdx = i
		}
	}
	if minIdx == -1 {
		return t.Root()
	}
	if structural {
		t.rebuildFrom(minIdx)
	} else {
		t.rehashPaths(dirty)
	}
	return t.Root()
}

// rebuildFrom recomputes the padded leaf level and all inner levels from
// leaf index `from` to the right edge, resizing the level structure when
// the leaf count crossed a power of two.
func (t *IncTree) rebuildFrom(from int) {
	n := len(t.leaves)
	if n == 0 {
		t.levels = nil
		return
	}
	m := 1
	for m < n {
		m *= 2
	}
	if len(t.levels) == 0 || len(t.levels[0]) != m {
		// Size change: allocate fresh levels and recompute everything.
		depth := 1
		for w := m; w > 1; w /= 2 {
			depth++
		}
		t.levels = make([][]Hash, depth)
		for l, w := 0, m; l < depth; l, w = l+1, w/2 {
			t.levels[l] = make([]Hash, w)
		}
		from = 0
	}
	lv0 := t.levels[0]
	copy(lv0[from:n], t.leaves[from:])
	for i := n; i < m; i++ {
		if i >= from {
			lv0[i] = padLeaf
		}
	}
	lo := from
	for l := 1; l < len(t.levels); l++ {
		lo /= 2
		row, below := t.levels[l], t.levels[l-1]
		for i := lo; i < len(row); i++ {
			row[i] = InnerHash(below[2*i], below[2*i+1])
		}
	}
}

// rehashPaths recomputes only the root paths of updated leaf indices —
// the pure value-update fast path, O(d log n).
func (t *IncTree) rehashPaths(dirty []int) {
	if len(dirty) == 0 || len(t.levels) == 0 {
		return
	}
	for _, i := range dirty {
		t.levels[0][i] = t.leaves[i]
	}
	idxs := dirty
	for l := 1; l < len(t.levels); l++ {
		row, below := t.levels[l], t.levels[l-1]
		next := idxs[:0]
		prev := -1
		for _, i := range idxs {
			p := i / 2
			if p == prev {
				continue
			}
			prev = p
			row[p] = InnerHash(below[2*p], below[2*p+1])
			next = append(next, p)
		}
		idxs = next
	}
}

// Snapshot materializes the current state as an immutable Tree serving
// proofs: levels are deep-copied (hash moves, no re-hashing) so later
// Apply calls cannot invalidate outstanding proofs.
func (t *IncTree) Snapshot() *Tree {
	n := len(t.keys)
	tr := &Tree{
		keys:   make([][]byte, n),
		values: append([][]byte(nil), t.values...),
		root:   t.Root(),
	}
	for i, k := range t.keys {
		tr.keys[i] = []byte(k)
	}
	if len(t.levels) > 0 {
		tr.levels = make([][]Hash, len(t.levels))
		for l, row := range t.levels {
			tr.levels[l] = append([]Hash(nil), row...)
		}
	}
	return tr
}
