package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func kvFixture(n int) map[string][]byte {
	kv := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		kv[fmt.Sprintf("key/%04d", i)] = []byte(fmt.Sprintf("value-%d", i))
	}
	return kv
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree(nil)
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	p, ok := tr.ProveNonMembership([]byte("anything"))
	if !ok {
		t.Fatal("empty tree could not prove absence")
	}
	if err := VerifyNonMembership(tr.Root(), []byte("anything"), p); err != nil {
		t.Fatalf("verify absence in empty tree: %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := NewTree(map[string][]byte{"k": []byte("v")})
	v, p, ok := tr.ProveMembership([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("prove membership: ok=%v v=%q", ok, v)
	}
	if err := VerifyMembership(tr.Root(), []byte("k"), []byte("v"), p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := VerifyMembership(tr.Root(), []byte("k"), []byte("x"), p); err == nil {
		t.Fatal("verified wrong value")
	}
}

func TestMembershipAllKeys(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 100} {
		kv := kvFixture(n)
		tr := NewTree(kv)
		for k, want := range kv {
			v, p, ok := tr.ProveMembership([]byte(k))
			if !ok {
				t.Fatalf("n=%d key %q not provable", n, k)
			}
			if string(v) != string(want) {
				t.Fatalf("value mismatch for %q", k)
			}
			if err := VerifyMembership(tr.Root(), []byte(k), want, p); err != nil {
				t.Fatalf("n=%d verify %q: %v", n, k, err)
			}
		}
	}
}

func TestMembershipRejectsTamper(t *testing.T) {
	tr := NewTree(kvFixture(10))
	v, p, _ := tr.ProveMembership([]byte("key/0003"))
	// Wrong key.
	if err := VerifyMembership(tr.Root(), []byte("key/0004"), v, p); err == nil {
		t.Fatal("verified wrong key")
	}
	// Wrong value.
	if err := VerifyMembership(tr.Root(), []byte("key/0003"), []byte("evil"), p); err == nil {
		t.Fatal("verified wrong value")
	}
	// Tampered path.
	p.Path[0].Sibling[0] ^= 1
	if err := VerifyMembership(tr.Root(), []byte("key/0003"), v, p); err == nil {
		t.Fatal("verified tampered path")
	}
	// Nil proof.
	if err := VerifyMembership(tr.Root(), []byte("key/0003"), v, nil); err == nil {
		t.Fatal("verified nil proof")
	}
}

func TestNonMembership(t *testing.T) {
	kv := kvFixture(10)
	tr := NewTree(kv)
	cases := []string{
		"aaa",          // before all keys
		"key/0003x",    // between 0003 and 0004
		"key/00035",    // between
		"zzz",          // after all keys
		"key/",         // before first
		"key/0009zzzz", // after last
	}
	for _, k := range cases {
		p, ok := tr.ProveNonMembership([]byte(k))
		if !ok {
			t.Fatalf("could not prove absence of %q", k)
		}
		if err := VerifyNonMembership(tr.Root(), []byte(k), p); err != nil {
			t.Fatalf("verify absence of %q: %v", k, err)
		}
	}
	// Present key must not be provable absent.
	if _, ok := tr.ProveNonMembership([]byte("key/0005")); ok {
		t.Fatal("proved absence of present key")
	}
}

func TestNonMembershipRejectsForgery(t *testing.T) {
	tr := NewTree(kvFixture(10))
	p, _ := tr.ProveNonMembership([]byte("key/0005x"))
	// Using the proof for a key outside the (left, right) interval fails.
	if err := VerifyNonMembership(tr.Root(), []byte("key/0007x"), p); err == nil {
		t.Fatal("absence proof accepted for wrong key")
	}
	// A proof with non-adjacent neighbours fails.
	p2, _ := tr.ProveNonMembership([]byte("key/0005x"))
	_, lp, _ := tr.ProveMembership([]byte("key/0003"))
	p2.LeftKey = []byte("key/0003")
	p2.LeftValue = []byte("value-3")
	p2.LeftProof = lp
	if err := VerifyNonMembership(tr.Root(), []byte("key/0005x"), p2); err == nil {
		t.Fatal("accepted non-adjacent neighbours")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := NewTree(map[string][]byte{"k1": []byte("v1"), "k2": []byte("v2")})
	b := NewTree(map[string][]byte{"k1": []byte("v1"), "k2": []byte("v2!")})
	c := NewTree(map[string][]byte{"k1": []byte("v1")})
	if a.Root() == b.Root() {
		t.Fatal("value change did not change root")
	}
	if a.Root() == c.Root() {
		t.Fatal("key removal did not change root")
	}
	a2 := NewTree(map[string][]byte{"k2": []byte("v2"), "k1": []byte("v1")})
	if a.Root() != a2.Root() {
		t.Fatal("root depends on map iteration order")
	}
}

func TestLeafInnerDomainSeparation(t *testing.T) {
	l := LeafHash([]byte("a"), []byte("b"))
	i := InnerHash(l, l)
	if l == i {
		t.Fatal("leaf and inner hashes collide")
	}
	// Length prefixing: ("ab","c") != ("a","bc").
	if LeafHash([]byte("ab"), []byte("c")) == LeafHash([]byte("a"), []byte("bc")) {
		t.Fatal("length-prefix ambiguity")
	}
}

func TestGet(t *testing.T) {
	tr := NewTree(kvFixture(5))
	if v, ok := tr.Get([]byte("key/0002")); !ok || string(v) != "value-2" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
}

// Property: every key in a random snapshot has a verifiable membership
// proof, and random absent keys have verifiable non-membership proofs.
func TestProofSoundnessProperty(t *testing.T) {
	prop := func(keys []string, probe string) bool {
		kv := make(map[string][]byte, len(keys))
		for i, k := range keys {
			kv["k:"+k] = []byte(fmt.Sprintf("v%d", i))
		}
		tr := NewTree(kv)
		for k, v := range kv {
			got, p, ok := tr.ProveMembership([]byte(k))
			if !ok || string(got) != string(v) {
				return false
			}
			if VerifyMembership(tr.Root(), []byte(k), v, p) != nil {
				return false
			}
		}
		probeKey := "absent:" + probe
		if _, present := kv[probeKey]; !present {
			p, ok := tr.ProveNonMembership([]byte(probeKey))
			if !ok {
				return false
			}
			if VerifyNonMembership(tr.Root(), []byte(probeKey), p) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a membership proof never verifies against the root of a tree
// whose value for the key differs.
func TestProofBindingProperty(t *testing.T) {
	prop := func(n uint8, mutate uint8) bool {
		size := int(n%32) + 2
		kv := kvFixture(size)
		tr := NewTree(kv)
		target := fmt.Sprintf("key/%04d", int(mutate)%size)
		v, p, ok := tr.ProveMembership([]byte(target))
		if !ok {
			return false
		}
		kv[target] = append([]byte(nil), v...)
		kv[target] = append(kv[target], 'X')
		tr2 := NewTree(kv)
		return VerifyMembership(tr2.Root(), []byte(target), v, p) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
