package resultdiff

import (
	"encoding/json"
	"reflect"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestFlattenPaths(t *testing.T) {
	doc := parse(t, `{"a": {"b": 1.5}, "rows": [{"x": 2}, {"x": 3}], "s": "str", "n": null}`)
	got := Flatten("", doc)
	want := map[string]any{
		"a.b":       1.5,
		"rows[0].x": 2.0,
		"rows[1].x": 3.0,
		"s":         "str",
		"n":         nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
}

func TestConfigHeader(t *testing.T) {
	doc := parse(t, `{"config": {"topology": "hub:3"}, "topo": 1}`)
	if cfg := ConfigHeader(doc); cfg == nil || cfg["topology"] != "hub:3" {
		t.Fatalf("ConfigHeader = %v", cfg)
	}
	if cfg := ConfigHeader(parse(t, `{"topo": 1}`)); cfg != nil {
		t.Fatalf("header-less document yielded %v", cfg)
	}
	if cfg := ConfigHeader(parse(t, `[1, 2]`)); cfg != nil {
		t.Fatalf("non-object document yielded %v", cfg)
	}
}

func TestConfigDiffReportsFields(t *testing.T) {
	oldCfg := ConfigHeader(parse(t, `{"config": {
		"topology": "hub:4", "regions": "", "seed": 42,
		"netem": {"DropRate": 0}
	}}`))
	newCfg := ConfigHeader(parse(t, `{"config": {
		"topology": "hub:6", "regions": "3wan", "seed": 42,
		"netem": {"DropRate": 0.1}, "extra": true
	}}`))
	diffs := ConfigDiff(oldCfg, newCfg)
	var paths []string
	for _, d := range diffs {
		paths = append(paths, d.Path)
	}
	want := []string{"extra", "netem.DropRate", "regions", "topology"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("diff paths = %v, want %v", paths, want)
	}
	// Matching fields (seed) never appear; one-sided fields say which side.
	for _, d := range diffs {
		if d.Path == "seed" {
			t.Fatalf("matching field diffed: %v", d)
		}
		if d.Path == "extra" && d.OnlyIn != "new" {
			t.Fatalf("one-sided field = %+v, want OnlyIn new", d)
		}
	}
	if got := FieldNames(diffs); got != "extra, netem.DropRate, regions, topology" {
		t.Fatalf("FieldNames = %q", got)
	}
}

func TestCompatible(t *testing.T) {
	a := map[string]any{"topology": "hub:3", "seed": 42.0}
	b := map[string]any{"topology": "hub:3", "seed": 42.0}
	c := map[string]any{"topology": "hub:4", "seed": 42.0}
	if !Compatible(a, b) {
		t.Fatal("identical headers incompatible")
	}
	if Compatible(a, c) {
		t.Fatal("differing headers compatible")
	}
	// Header-less documents group only with header-less documents.
	if Compatible(a, nil) || !Compatible(nil, nil) {
		t.Fatal("nil-header compatibility wrong")
	}
}

func TestDropConfig(t *testing.T) {
	flat := Flatten("", parse(t, `{"config": {"seed": 1}, "m": 2}`))
	DropConfig(flat)
	if _, ok := flat["config.seed"]; ok {
		t.Fatalf("config leaf survived: %v", flat)
	}
	if _, ok := flat["m"]; !ok {
		t.Fatalf("metric leaf dropped: %v", flat)
	}
}
