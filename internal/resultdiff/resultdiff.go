// Package resultdiff holds the JSON result-document comparison
// primitives shared by the CLI's `-diff` command and the experiment
// store: flattening a document into dotted metric paths and diffing two
// documents' config headers field by field. Both consumers need the
// same semantics — a run archived by the store must group with exactly
// the runs `-diff` would have compared gate-armed — so the logic lives
// here once.
package resultdiff

import (
	"fmt"
	"sort"
	"strings"
)

// Flatten walks a JSON document (the `any` shapes json.Unmarshal
// produces) into dotted leaf paths: maps become "a.b", arrays "a[0]".
// Leaves are numbers, strings, bools and nulls.
func Flatten(prefix string, v any) map[string]any {
	out := make(map[string]any)
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			for kk, vv := range Flatten(p, t[k]) {
				out[kk] = vv
			}
		}
	case []any:
		for i, e := range t {
			for kk, vv := range Flatten(fmt.Sprintf("%s[%d]", prefix, i), e) {
				out[kk] = vv
			}
		}
	default:
		out[prefix] = v
	}
	return out
}

// ConfigHeader extracts a result document's "config" header (nil when
// the document is not an object or carries none — pre-header results).
func ConfigHeader(doc any) map[string]any {
	m, ok := doc.(map[string]any)
	if !ok {
		return nil
	}
	cfg, ok := m["config"].(map[string]any)
	if !ok {
		return nil
	}
	return cfg
}

// DropConfig removes the config header's flattened leaves from a metric
// map, so config-only differences don't inflate the changed-metric
// count regression gates key on.
func DropConfig(flat map[string]any) {
	for path := range flat {
		if path == "config" || strings.HasPrefix(path, "config.") {
			delete(flat, path)
		}
	}
}

// FieldDiff is one config-header field that differs between two
// documents. Path is the flattened field path relative to the header
// ("topology", "netem.DropRate"). OnlyIn is "old"/"new" when the field
// exists on one side only; otherwise Old and New carry both values.
type FieldDiff struct {
	Path     string
	Old, New any
	OnlyIn   string
}

// String renders the difference the way `-diff` has always printed it.
func (d FieldDiff) String() string {
	if d.OnlyIn != "" {
		return fmt.Sprintf("%s: only in %s", d.Path, d.OnlyIn)
	}
	return fmt.Sprintf("%s: %v -> %v", d.Path, d.Old, d.New)
}

// ConfigDiff compares two config headers field by field (flattening
// nested sections such as the netem config) and returns every
// difference sorted by path. Nil headers yield nil: documents without a
// header are compared silently, never flagged incompatible.
func ConfigDiff(oldCfg, newCfg map[string]any) []FieldDiff {
	if oldCfg == nil || newCfg == nil {
		return nil
	}
	oldFlat := Flatten("", oldCfg)
	newFlat := Flatten("", newCfg)
	var diffs []FieldDiff
	for path, ov := range oldFlat {
		if nv, ok := newFlat[path]; ok {
			if ov != nv {
				diffs = append(diffs, FieldDiff{Path: path, Old: ov, New: nv})
			}
		} else {
			diffs = append(diffs, FieldDiff{Path: path, OnlyIn: "old"})
		}
	}
	for path := range newFlat {
		if _, ok := oldFlat[path]; !ok {
			diffs = append(diffs, FieldDiff{Path: path, OnlyIn: "new"})
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Path < diffs[j].Path })
	return diffs
}

// Compatible reports whether two config headers agree on every field —
// the store's grouping predicate for trend windows and the rolling
// regression gate, matching the condition under which `-diff
// -fail-on-change` stays armed.
func Compatible(a, b map[string]any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return len(ConfigDiff(a, b)) == 0
}

// FieldNames joins the differing fields' paths into the compact comma
// list used by warning lines ("topology, regions, seed").
func FieldNames(diffs []FieldDiff) string {
	names := make([]string, len(diffs))
	for i, d := range diffs {
		names[i] = d.Path
	}
	return strings.Join(names, ", ")
}
