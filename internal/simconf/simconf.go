// Package simconf centralizes the performance-model constants that
// calibrate the simulation to the paper's measured environment
// (Gaia v7.0.3, Hermes 1.0.0, Intel i7-9700, Debian 11, 200 ms RTT).
//
// Every constant cites the paper observation it is derived from. The
// experiment drivers reproduce the paper's *shapes* (who wins, by what
// factor, where crossovers fall); absolute values track the paper because
// these constants are fit to its reported measurements.
package simconf

import "time"

// Gas schedule (§IV-A): "The 100 messages used in our transactions
// consume an average of 3,669,161 gas for transfers, 7,238,699 gas for
// receives and 3,107,462 gas for acknowledgements."
const (
	// GasPerMsgTransfer is the per-message gas of a MsgTransfer.
	GasPerMsgTransfer uint64 = 36692
	// GasPerMsgRecvPacket is the per-message gas of a MsgRecvPacket.
	GasPerMsgRecvPacket uint64 = 72387
	// GasPerMsgAcknowledgement is the per-message gas of a MsgAcknowledgement.
	GasPerMsgAcknowledgement uint64 = 31075
	// GasTxOverhead is the fixed per-transaction gas (signature
	// verification, ante handler).
	GasTxOverhead uint64 = 60000
	// GasPriceTokens is the Hermes config gas price: 0.01 token/gas.
	GasPriceTokens = 0.01
)

// Consensus timing (§III-D): "the time interval between the creation of
// two consecutive blocks is of at least 5 seconds. Blocks containing
// large amounts of transactions may increase the block interval beyond 5
// seconds to allow time for the transactions to be processed."
const (
	// MinBlockInterval is Tendermint's timeout_commit-driven floor.
	MinBlockInterval = 5 * time.Second
	// TimeoutPropose bounds how long validators wait for a proposal
	// before prevoting nil and moving to the next round.
	TimeoutPropose = 3 * time.Second
	// TimeoutRoundStep bounds prevote/precommit waits per round.
	TimeoutRoundStep = 1 * time.Second
	// ExecNanosPerGas converts block gas to execution time. Fit so a
	// block of ~650 x 100-msg transfer txs (13,000 RPS x 5 s / 100)
	// pushes the interval towards the paper's observed tens of seconds
	// (Fig. 7) while blocks below ~2,000 RPS stay inside the 5 s floor.
	ExecNanosPerGas = 24
	// ProposalBytesPerSecond models gossip bandwidth for block parts.
	ProposalBytesPerSecond = 64 << 20
)

// Transaction wire sizes, used for block byte totals and WebSocket event
// frame accounting.
const (
	// TxBaseBytes is the fixed envelope size of a signed transaction.
	TxBaseBytes = 350
	// MsgTransferBytes is the encoded size of one MsgTransfer.
	MsgTransferBytes = 260
	// MsgRecvPacketBytes includes the packet plus commitment proof.
	MsgRecvPacketBytes = 850
	// MsgAckBytes includes the ack plus acknowledgement proof.
	MsgAckBytes = 620
)

// RPC service model (§IV-B, §V): "Tendermint is unable to process
// queries in parallel, requiring the relayer to wait while its requests
// for data are processed one by one."
//
// Query costs are response-size proportional and fit to two anchors:
//   - Fig. 12: pulling 50 txs x 100 MsgTransfer costs 110 s in total
//     (2.2 s per tx) and 50 txs x 100 MsgRecvPacket costs 207 s
//     (4.14 s per tx).
//   - §V: querying a block of 20 txs x 100 MsgTransfer took 2.9 s
//     (145 ms/tx there — the CLI query shares pagination overhead; the
//     relayer-side per-tx anchor from Fig. 12 dominates our model).
const (
	// QueryCostPerTransferMsg is the base serial RPC time to return one
	// MsgTransfer's data in a tx query response. Data pulls additionally
	// scale with the block's total response size (QueryPageScaleMsgs):
	// at the paper's 5,000-msg burst block the effective cost is ~22 ms
	// per message (Fig. 12's 110 s for 50 txs).
	QueryCostPerTransferMsg = 1100 * time.Microsecond
	// QueryCostPerRecvMsg is the base serial RPC time per MsgRecvPacket
	// (responses are ~1.75x larger: 579,919 vs 331,706 output lines in §V);
	// effective ~41 ms per message at the 5,000-msg burst.
	QueryCostPerRecvMsg = 2 * time.Millisecond
	// QueryCostPerAckMsg is the per-message cost for acknowledgement data.
	QueryCostPerAckMsg = 2 * time.Millisecond
	// QueryPageScaleMsgs is the pagination knee: a data pull against a
	// block carrying M messages costs (1 + (M/QueryPageScaleMsgs)^2)
	// times its base cost, reflecting multi-page tx_search responses
	// whose cost grows superlinearly with block size (§V).
	QueryPageScaleMsgs = 900
	// QueryBaseCost is the fixed per-RPC-request overhead.
	QueryBaseCost = 4 * time.Millisecond
	// BroadcastTxCost is the serial RPC time to accept one broadcast_tx
	// (decode + CheckTx + mempool insert).
	BroadcastTxCost = 10 * time.Millisecond
	// StatusQueryCost covers light queries (status, account, commit).
	StatusQueryCost = 4 * time.Millisecond
)

// WebSocket event service (§V "WebSocket space limit"): "If the amount of
// data to retrieve exceeds the Tendermint Websocket maximum message size
// (16MB), the relayer emits the 'Failed to collect events' error."
const (
	// WebSocketMaxFrameBytes is Tendermint's maximum message size.
	WebSocketMaxFrameBytes = 16 << 20
	// EventBytesPerTransferMsg is the JSON event payload per MsgTransfer
	// in a NewBlock event frame. Fit so 1,000 txs x 100 transfers
	// (100,000 msgs) exceeds 16 MiB, while 5,000 msgs stays well below.
	EventBytesPerTransferMsg = 175
	// EventBytesPerTxOverhead is the per-tx envelope in an event frame.
	EventBytesPerTxOverhead = 700
)

// Hermes relayer processing model (Fig. 12): per-step CPU costs fit to
// the 13-step breakdown of 5,000 transfers submitted in one block —
// transfer phase 126 s (27.6%), receive phase 261 s (57.3%), ack phase
// 68 s (14.9%), total ~455 s.
const (
	// RelayerBuildCostPerMsg is the CPU time to build one outgoing IBC
	// message (proof assembly, encoding).
	RelayerBuildCostPerMsg = 2 * time.Millisecond
	// RelayerEventParseCostPerMsg is the per-message cost of extracting
	// pending messages from a block's events.
	RelayerEventParseCostPerMsg = 300 * time.Microsecond
	// RelayerSchedulingOverheadPerBatch is the fixed Packet Command
	// Worker overhead per block of operations.
	RelayerSchedulingOverheadPerBatch = 50 * time.Millisecond
	// RelayerMaxMsgsPerTx is Hermes' batching limit: "the maximum number
	// of messages per transaction allowed by the relayer application"
	// (§III-D) is 100.
	RelayerMaxMsgsPerTx = 100
	// RelayerConfirmPollInterval is how often the relayer polls for the
	// confirmation of a submitted transaction.
	RelayerConfirmPollInterval = 500 * time.Millisecond
)

// DefaultValidators is the paper's testnet size (§III-C): two chains of
// five validators each.
const DefaultValidators = 5
