package simconf

import (
	"testing"
	"time"
)

// The calibration constants are fit to specific paper observations; these
// tests pin the relationships the experiment drivers depend on, so a
// retuned constant that silently breaks a reproduced shape fails here
// first.

func TestGasSchedulePinsPaperAverages(t *testing.T) {
	// §IV-A: 100-message transactions average 3,669,161 / 7,238,699 /
	// 3,107,462 gas. Per-message constants must land within 5% with the
	// fixed tx overhead included.
	cases := []struct {
		name   string
		perMsg uint64
		paper  uint64
	}{
		{"MsgTransfer", GasPerMsgTransfer, 3669161},
		{"MsgRecvPacket", GasPerMsgRecvPacket, 7238699},
		{"MsgAcknowledgement", GasPerMsgAcknowledgement, 3107462},
	}
	for _, c := range cases {
		got := 100*c.perMsg + GasTxOverhead
		diff := int64(got) - int64(c.paper)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff)/float64(c.paper) > 0.05 {
			t.Errorf("%s: 100 msgs model %d gas vs paper %d", c.name, got, c.paper)
		}
	}
	if GasPerMsgRecvPacket <= GasPerMsgTransfer || GasPerMsgTransfer <= GasPerMsgAcknowledgement {
		t.Error("gas ordering must be recv > transfer > ack (§IV-A)")
	}
}

func TestConsensusTimingOrdering(t *testing.T) {
	if MinBlockInterval != 5*time.Second {
		t.Errorf("block floor %v, paper pins 5 s (§III-D)", MinBlockInterval)
	}
	if TimeoutPropose >= MinBlockInterval || TimeoutRoundStep >= TimeoutPropose {
		t.Error("consensus timeouts must nest inside the block interval")
	}
}

// TestWebSocketFrameKnee pins §V's overflow boundary: 1,000 txs of 100
// transfers overflow the 16 MiB frame, the Fig. 12 burst (50 txs) does
// not.
func TestWebSocketFrameKnee(t *testing.T) {
	frame := func(txs int) int {
		return txs * (EventBytesPerTxOverhead + 100*EventBytesPerTransferMsg)
	}
	if frame(1000) <= WebSocketMaxFrameBytes {
		t.Errorf("1000x100 frame = %d bytes, must exceed %d", frame(1000), WebSocketMaxFrameBytes)
	}
	if frame(50) >= WebSocketMaxFrameBytes {
		t.Errorf("50x100 frame = %d bytes, must stay below %d", frame(50), WebSocketMaxFrameBytes)
	}
}

// TestQueryCostAnchors keeps the serial-RPC model consistent with the
// relative response sizes of §V (recv responses ~1.75x transfer ones).
func TestQueryCostAnchors(t *testing.T) {
	if QueryCostPerRecvMsg <= QueryCostPerTransferMsg {
		t.Error("recv pulls must cost more than transfer pulls")
	}
	ratio := float64(QueryCostPerRecvMsg) / float64(QueryCostPerTransferMsg)
	if ratio < 1.4 || ratio > 2.5 {
		t.Errorf("recv/transfer pull ratio %.2f outside the §V band", ratio)
	}
	if BroadcastTxCost <= StatusQueryCost {
		t.Error("broadcast (CheckTx + insert) must outweigh light queries")
	}
}

func TestRelayerModelBounds(t *testing.T) {
	if RelayerMaxMsgsPerTx != 100 {
		t.Errorf("batch cap %d, paper pins 100 (§III-D)", RelayerMaxMsgsPerTx)
	}
	if RelayerBuildCostPerMsg <= RelayerEventParseCostPerMsg {
		t.Error("message build (proof assembly) must outweigh event parse")
	}
	if RelayerConfirmPollInterval <= 0 || RelayerConfirmPollInterval >= MinBlockInterval {
		t.Errorf("confirm poll %v must sit inside a block window", RelayerConfirmPollInterval)
	}
}

func TestExecTimeStretchesLargeBlocks(t *testing.T) {
	// Fig. 7: ~650 transfer txs of 100 msgs push execution time well past
	// the 5 s floor; a 1,000 rps block (50 txs) stays under it.
	perTx := 100*GasPerMsgTransfer + GasTxOverhead
	exec := func(txs int) time.Duration {
		return time.Duration(uint64(txs)*perTx*ExecNanosPerGas) * time.Nanosecond
	}
	if exec(650) <= 4*MinBlockInterval {
		t.Errorf("650-tx block executes in %v, must far exceed the %v floor", exec(650), MinBlockInterval)
	}
	if exec(50) >= MinBlockInterval {
		t.Errorf("50-tx block executes in %v, must stay under the floor", exec(50))
	}
}
