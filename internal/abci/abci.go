// Package abci defines the interface between the Tendermint consensus
// engine and the blockchain application, mirroring Tendermint's
// Application BlockChain Interface (§II-A of the paper): the consensus
// engine is generic and delegates transaction semantics to the app.
package abci

import (
	"time"

	"ibcbench/internal/tendermint/types"
)

// CodeOK is the response code of a successful transaction.
const CodeOK uint32 = 0

// Event is a typed key-value event emitted by transaction execution.
// Events are what the relayer's WebSocket subscription consumes to find
// pending IBC messages.
type Event struct {
	Type       string
	Attributes map[string]string
}

// TxResult is the outcome of executing one transaction.
type TxResult struct {
	// Code is CodeOK on success; any other value marks the tx failed
	// (it remains in the block — cross-chain operations "may fail after
	// having steps recorded in the blockchain").
	Code uint32
	// Log carries the failure reason for non-OK codes.
	Log string
	// GasUsed is the gas consumed by execution.
	GasUsed uint64
	// Events are emitted regardless of inclusion ordering.
	Events []Event
}

// IsOK reports whether the transaction succeeded.
func (r TxResult) IsOK() bool { return r.Code == CodeOK }

// Application is the state machine driven by consensus.
type Application interface {
	// CheckTx performs stateless+ante validation for mempool admission.
	// An error keeps the transaction out of the mempool.
	CheckTx(tx types.Tx) error

	// BeginBlock starts execution of a new block.
	BeginBlock(height int64, now time.Duration)

	// DeliverTx executes a transaction against the candidate state.
	DeliverTx(tx types.Tx) TxResult

	// EndBlock finishes block execution.
	EndBlock(height int64)

	// Commit persists the candidate state and returns the new AppHash
	// that the next block header commits to.
	Commit() types.Hash
}
