// Package sim provides a deterministic discrete-event simulation engine.
//
// All components of the benchmark (blockchains, relayers, the network)
// execute on a shared virtual clock owned by a Scheduler. Virtual seconds
// elapse in real microseconds, which lets the experiment drivers replay
// hours of the paper's wall-clock experiments deterministically and fast.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the scheduler was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("sim: scheduler stopped")

// Event is a callback scheduled to fire at a virtual time.
type event struct {
	at time.Duration
	// ctime is the virtual time the event was created at. Ordering ties
	// on (at, ctime) before falling back to seq: within one scheduler
	// seq is assigned in creation order and the clock never runs
	// backwards, so (at, ctime, seq) sorts exactly like (at, seq) — but
	// it lets the parallel runner merge cross-partition messages (which
	// carry their true creation time) into the position the serial
	// scheduler would have dispatched them in.
	ctime time.Duration
	seq   uint64
	fn    func()

	// index is maintained by the heap implementation.
	index int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].ctime != q[j].ctime {
		return q[i].ctime < q[j].ctime
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the pending event queue.
//
// Scheduler is not safe for concurrent use: the simulation is
// single-threaded by design, which is what makes runs deterministic.
type Scheduler struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	stopped bool

	// free recycles fired events so steady-state scheduling (the netem
	// send path fires one event per message) allocates nothing.
	free []*event

	// processed counts events executed so far, for diagnostics and
	// runaway-simulation protection.
	processed uint64

	// MaxEvents aborts Run once this many events have fired (0 = no cap).
	MaxEvents uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Processed reports how many events have executed.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at virtual time t. Times in the past are clamped
// to the current time, so the event runs on the next dispatch.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.injectAt(t, s.now, fn)
}

// injectAt schedules fn at time t with an explicit creation time. The
// parallel runner uses it to merge cross-partition messages that were
// created on another partition's clock; At/After route through it with
// ctime = now.
func (s *Scheduler) injectAt(t, ctime time.Duration, fn func()) {
	if fn == nil {
		return
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.ctime, ev.seq, ev.fn = t, ctime, s.seq, fn
	} else {
		ev = &event{at: t, ctime: ctime, seq: s.seq, fn: fn}
	}
	heap.Push(&s.queue, ev)
}

// nextAt peeks the earliest pending event time (ok=false when empty).
func (s *Scheduler) nextAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// runWindow dispatches every event with at < end, then parks the clock
// at end. It returns false if the scheduler was stopped (or hit
// MaxEvents) mid-window. The parallel runner drains each partition's
// window [start, end) this way: the exclusive bound keeps events at
// exactly `end` for the next window, after the barrier has merged any
// cross-partition messages landing there.
func (s *Scheduler) runWindow(end time.Duration) bool {
	for len(s.queue) > 0 && s.queue[0].at < end {
		if s.stopped {
			return false
		}
		if s.MaxEvents > 0 && s.processed >= s.MaxEvents {
			s.stopped = true
			return false
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
	return true
}

// After schedules fn to run delta after the current virtual time.
func (s *Scheduler) After(delta time.Duration, fn func()) {
	if delta < 0 {
		delta = 0
	}
	s.At(s.now+delta, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// step executes the earliest pending event, advancing the clock. The
// event is recycled before its callback runs, so a callback that
// schedules follow-up work reuses the just-freed slot.
func (s *Scheduler) step() {
	ev, ok := heap.Pop(&s.queue).(*event)
	if !ok {
		return
	}
	s.now = ev.at
	s.processed++
	fn := ev.fn
	ev.fn = nil
	s.free = append(s.free, ev)
	fn()
}

// Run dispatches events until the queue is empty or Stop is called.
// It returns ErrStopped if stopped early, and nil when drained.
func (s *Scheduler) Run() error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.MaxEvents > 0 && s.processed >= s.MaxEvents {
			return ErrStopped
		}
		s.step()
	}
	return nil
}

// RunUntil dispatches events with timestamps at or before deadline.
// The clock finishes at the deadline (or at the last event past it).
func (s *Scheduler) RunUntil(deadline time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		if s.stopped {
			return ErrStopped
		}
		if s.MaxEvents > 0 && s.processed >= s.MaxEvents {
			return ErrStopped
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// Ticker invokes fn every interval of virtual time until cancel is called.
type Ticker struct {
	cancelled bool
}

// Cancel stops future ticks. Safe to call multiple times.
func (t *Ticker) Cancel() { t.cancelled = true }

// Tick schedules fn to run every interval starting one interval from now.
// fn receives the ticker so callbacks can cancel themselves.
func (s *Scheduler) Tick(interval time.Duration, fn func(*Ticker)) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{}
	var loop func()
	loop = func() {
		if t.cancelled {
			return
		}
		fn(t)
		if t.cancelled {
			return
		}
		s.After(interval, loop)
	}
	s.After(interval, loop)
	return t
}
