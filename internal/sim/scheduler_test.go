package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now = %v, want 3s", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := NewScheduler()
	var fired bool
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { fired = true }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

func TestSchedulerAfterNested(t *testing.T) {
	s := NewScheduler()
	var at []time.Duration
	s.After(time.Second, func() {
		at = append(at, s.Now())
		s.After(2*time.Second, func() { at = append(at, s.Now()) })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at[0] != time.Second || at[1] != 3*time.Second {
		t.Fatalf("times = %v", at)
	}
}

// TestSchedulerEventRecycling: the freelist behind the zero-alloc send
// path must never mix up recycled events — callbacks scheduled from
// inside other callbacks (which reuse just-freed slots) still fire in
// strict (time, submission) order with their own closures.
func TestSchedulerEventRecycling(t *testing.T) {
	s := NewScheduler()
	const n = 500
	var got []int
	for i := 0; i < n; i++ {
		i := i
		s.At(time.Duration(i)*time.Millisecond, func() {
			got = append(got, i)
			// Nested event lands between the outer ones and reuses the
			// slot just freed by this very callback.
			s.After(500*time.Microsecond, func() { got = append(got, n+i) })
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*n {
		t.Fatalf("fired %d events, want %d", len(got), 2*n)
	}
	for i := 0; i < n; i++ {
		if got[2*i] != i || got[2*i+1] != n+i {
			t.Fatalf("order broken at %d: %v %v", i, got[2*i], got[2*i+1])
		}
	}
	if s.Processed() != 2*n {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			n++
			if n == 2 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 2 {
		t.Fatalf("executed %d events, want 2", n)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		s.At(d, func() { got = append(got, d) })
	}
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	// Resume to drain the rest.
	if err := s.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events after resume, want 5", len(got))
	}
}

func TestSchedulerRunUntilAdvancesIdleClock(t *testing.T) {
	s := NewScheduler()
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("now = %v, want 10s", s.Now())
	}
}

func TestSchedulerMaxEvents(t *testing.T) {
	s := NewScheduler()
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(time.Millisecond, loop)
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if s.Processed() != 100 {
		t.Fatalf("processed = %d, want 100", s.Processed())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []time.Duration
	s.Tick(time.Second, func(tk *Ticker) {
		ticks = append(ticks, s.Now())
		if len(ticks) == 3 {
			tk.Cancel()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestTickerCancelBeforeFirstTick(t *testing.T) {
	s := NewScheduler()
	fired := false
	tk := s.Tick(time.Second, func(*Ticker) { fired = true })
	tk.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled ticker fired")
	}
}

func TestSerialResourceSequencing(t *testing.T) {
	s := NewScheduler()
	r := NewSerialResource(s)
	var finish []time.Duration
	// Three requests submitted at t=0 with 1s service each must finish at
	// 1s, 2s, 3s: the resource processes them one at a time.
	for i := 0; i < 3; i++ {
		r.Submit(time.Second, func() { finish = append(finish, s.Now()) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if r.BusyTime() != 3*time.Second {
		t.Fatalf("busy = %v", r.BusyTime())
	}
}

func TestSerialResourceIdleGap(t *testing.T) {
	s := NewScheduler()
	r := NewSerialResource(s)
	var finish []time.Duration
	r.Submit(time.Second, func() { finish = append(finish, s.Now()) })
	// Second request arrives after the first completed; no queueing.
	s.At(5*time.Second, func() {
		r.Submit(time.Second, func() { finish = append(finish, s.Now()) })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finish[0] != time.Second || finish[1] != 6*time.Second {
		t.Fatalf("finish = %v", finish)
	}
}

func TestSerialResourceBacklog(t *testing.T) {
	s := NewScheduler()
	r := NewSerialResource(s)
	r.Submit(4*time.Second, nil)
	if got := r.Backlog(); got != 4*time.Second {
		t.Fatalf("backlog = %v, want 4s", got)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Backlog() != 0 || r.Pending() != 0 {
		t.Fatalf("backlog = %v pending = %d after drain", r.Backlog(), r.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := g.Jitter(100, 0.1)
		if v < 0 {
			t.Fatalf("jitter produced negative value %v", v)
		}
		if v < 100*(1-0.1*4)-1e-9 || v > 100*(1+0.1*4)+1e-9 {
			t.Fatalf("jitter %v outside 4-sigma bounds", v)
		}
	}
	if got := g.Jitter(0, 0.5); got != 0 {
		t.Fatalf("jitter(0) = %v", got)
	}
	if got := g.Jitter(100, 0); got != 100 {
		t.Fatalf("jitter relStd=0 = %v", got)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestSchedulerOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := NewScheduler()
		var fired []time.Duration
		for _, off := range offsets {
			d := time.Duration(off) * time.Millisecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a serial resource's completion times are spaced by at least
// the service times, and total busy time equals the sum of services.
func TestSerialResourceProperty(t *testing.T) {
	prop := func(services []uint16) bool {
		s := NewScheduler()
		r := NewSerialResource(s)
		var total time.Duration
		var finishes []time.Duration
		for _, sv := range services {
			d := time.Duration(sv) * time.Millisecond
			total += d
			r.Submit(d, func() { finishes = append(finishes, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if r.BusyTime() != total {
			return false
		}
		// All submitted at t=0, so the last completion equals total.
		if len(finishes) > 0 && finishes[len(finishes)-1] != total {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
