// Conservative parallel execution of one simulation run.
//
// A Parallel runner splits the event space into partitions (one per
// chain cluster: its consensus actors, application, RPC servers and
// local workload drivers), each owning a private Scheduler, plus one
// global scheduler for run-wide actors (chaos timelines, route
// drivers). Partitions advance in lockstep windows [W0, W1) bounded by
// the cross-partition latency horizon H: every message a partition
// emits during a window is delivered at least H later, so no event
// inside the window can depend on another partition's events in the
// same window — the classical Chandy–Misra–Bryant lookahead argument.
// Within a window each partition drains its queue serially, keeping
// per-partition event order (and every RNG stream consumed from it)
// identical to the serial scheduler.
//
// Cross-partition effects are posted as timestamped mailbox messages
// and merged at each window barrier, ordered by (arrival time,
// creation time, source partition, posting order). In the serial
// scheduler, dispatch order is (at, ctime, seq) where seq is creation
// order — so two events with distinct (at, ctime) merge into exactly
// the serial position, and only "double ties" (equal arrival AND equal
// creation time across partitions) can diverge, which jittered link
// latencies make a measure-zero coincidence. Global events run at
// exact-time barriers with every partition quiesced, before partition
// events at the same timestamp — again matching the serial order,
// because global actors are scheduled at deploy time (creation time
// zero) and partition events at the same instant were created later.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// GlobalPartition is the partition slot of the global scheduler.
const GlobalPartition = 0

// pmsg is one cross-partition message awaiting barrier merge.
type pmsg struct {
	dst   int
	at    time.Duration
	ctime time.Duration
	fn    func()
}

// Parallel coordinates one run across partitioned schedulers.
type Parallel struct {
	global  *Scheduler
	parts   []*Scheduler
	hosts   map[string]int
	horizon time.Duration
	workers int

	// mail[slot] buffers messages posted by that slot's partition during
	// the current window; each is appended only by its own worker, so no
	// locking is needed. Slot 0 (global) injects directly instead: it
	// only runs at barriers, when every partition is quiesced.
	mail     [][]pmsg
	mergeBuf []pmsg

	// inWindow is true while partition workers drain a window. It is
	// written only by the coordinating goroutine, before workers start
	// and after they join, so Post may read it without synchronization:
	// posts from outside a window (deploy wiring, quiesced barriers)
	// inject directly into the target queue.
	inWindow bool

	stopReq atomic.Bool
}

// NewParallel builds a runner with the given number of chain partitions,
// draining windows on up to `workers` OS threads. The horizon must be a
// positive lower bound on every cross-partition delivery latency.
func NewParallel(partitions, workers int, horizon time.Duration) *Parallel {
	if partitions < 1 {
		partitions = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &Parallel{
		global:  NewScheduler(),
		horizon: horizon,
		workers: workers,
		hosts:   make(map[string]int),
		mail:    make([][]pmsg, partitions+1),
	}
	for i := 0; i < partitions; i++ {
		p.parts = append(p.parts, NewScheduler())
	}
	return p
}

// Global returns the run-wide scheduler (slot 0): chaos timelines, route
// drivers and anything else that must observe cross-partition state runs
// here, at quiesced barriers.
func (p *Parallel) Global() *Scheduler { return p.global }

// Partition returns chain partition i's scheduler (0-based).
func (p *Parallel) Partition(i int) *Scheduler { return p.parts[i] }

// Partitions reports the number of chain partitions.
func (p *Parallel) Partitions() int { return len(p.parts) }

// Horizon reports the synchronization window bound.
func (p *Parallel) Horizon() time.Duration { return p.horizon }

// SetHorizon replaces the window bound — deployments compute the exact
// cross-partition latency floor only after every link profile exists.
// Call only between runs (or before the first), never mid-window.
func (p *Parallel) SetHorizon(h time.Duration) { p.horizon = h }

// AssignHost maps a network host onto chain partition i (0-based).
// Unassigned hosts resolve to the global partition.
func (p *Parallel) AssignHost(host string, i int) {
	p.hosts[host] = i + 1
}

// PartitionOf resolves a host to its partition slot (0 = global).
func (p *Parallel) PartitionOf(host string) int { return p.hosts[host] }

// SchedulerOf returns the scheduler behind a partition slot.
func (p *Parallel) SchedulerOf(slot int) *Scheduler {
	if slot == GlobalPartition {
		return p.global
	}
	return p.parts[slot-1]
}

// Post delivers fn to partition slot dst at virtual time `at`, created
// at `ctime` on slot src. Posts from partition workers buffer until the
// window barrier; posts from the global slot (which only executes at
// barriers) inject directly.
func (p *Parallel) Post(src, dst int, at, ctime time.Duration, fn func()) {
	if src == GlobalPartition || !p.inWindow {
		// Global posts and posts outside a window (deployment wiring,
		// quiesced barriers) happen on the coordinating goroutine with
		// every clock agreed — inject in creation order, which is the
		// serial scheduler's order for these events.
		p.SchedulerOf(dst).injectAt(at, ctime, fn)
		return
	}
	p.mail[src] = append(p.mail[src], pmsg{dst: dst, at: at, ctime: ctime, fn: fn})
}

// Stop requests the run to halt at the next window barrier. Partitions
// finish the window in progress, so the post-stop state is deterministic
// regardless of worker count.
func (p *Parallel) Stop() { p.stopReq.Store(true) }

// Processed sums executed events across the global and all partition
// schedulers.
func (p *Parallel) Processed() uint64 {
	n := p.global.Processed()
	for _, s := range p.parts {
		n += s.Processed()
	}
	return n
}

// Now reports the global virtual clock (all clocks agree at barriers).
func (p *Parallel) Now() time.Duration { return p.global.Now() }

// RunUntil dispatches events with timestamps at or before deadline,
// byte-identical to Scheduler.RunUntil on the union of the queues. All
// clocks finish at the deadline. Returns ErrStopped on Stop (from the
// runner or any partition scheduler) without advancing to the deadline,
// mirroring the serial contract.
func (p *Parallel) RunUntil(deadline time.Duration) error {
	p.stopReq.Store(false)
	p.global.stopped = false
	for _, s := range p.parts {
		s.stopped = false
	}
	// Exclusive upper bound: a window ending at deadline+1ns drains
	// events at exactly the deadline, matching RunUntil's inclusive
	// semantics.
	bound := deadline + time.Nanosecond
	for {
		if p.stopReq.Load() {
			return ErrStopped
		}
		t0, any := p.global.nextAt()
		for _, s := range p.parts {
			if t, ok := s.nextAt(); ok && (!any || t < t0) {
				t0, any = t, true
			}
		}
		if !any || t0 > deadline {
			break
		}
		// Quiesce every clock at t0 so barrier-time sends compute
		// delivery times from the same instant the serial clock held.
		if p.global.now < t0 {
			p.global.now = t0
		}
		for _, s := range p.parts {
			if s.now < t0 {
				s.now = t0
			}
		}
		if gt, ok := p.global.nextAt(); ok && gt == t0 {
			// Global events at t0 run first, fully quiesced. They may
			// inject work at t0 into partitions (run next window) or
			// more global events at t0 (keep draining).
			for {
				if p.global.stopped || p.stopReq.Load() {
					return ErrStopped
				}
				gt, ok := p.global.nextAt()
				if !ok || gt != t0 {
					break
				}
				p.global.step()
			}
			continue
		}
		end := t0 + p.horizon
		if end <= t0 {
			return fmt.Errorf("sim: parallel horizon %v yields empty window at %v", p.horizon, t0)
		}
		if gt, ok := p.global.nextAt(); ok && gt < end {
			end = gt
		}
		if bound < end {
			end = bound
		}
		p.inWindow = true
		stopped := p.runWindows(end)
		p.inWindow = false
		p.flushMail(end)
		if stopped {
			return ErrStopped
		}
	}
	// Park every clock at the deadline (the final window may have
	// advanced them to deadline+1ns).
	p.global.now = deadline
	for _, s := range p.parts {
		s.now = deadline
	}
	return nil
}

// runWindows drains every partition's [now, end) window, fanning out
// over the worker pool. Reports whether any partition stopped.
func (p *Parallel) runWindows(end time.Duration) bool {
	n := len(p.parts)
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		stopped := false
		for _, s := range p.parts {
			if !s.runWindow(end) {
				stopped = true
			}
		}
		return stopped
	}
	var next atomic.Int32
	var anyStopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !p.parts[i].runWindow(end) {
					anyStopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return anyStopped.Load()
}

// flushMail merges the window's cross-partition messages into their
// target queues in serial-equivalent order: (arrival, creation, source
// partition, posting order) — the stable sort over slot-then-post
// concatenation provides the last two keys.
func (p *Parallel) flushMail(end time.Duration) {
	buf := p.mergeBuf[:0]
	for slot := range p.mail {
		buf = append(buf, p.mail[slot]...)
		p.mail[slot] = p.mail[slot][:0]
	}
	if len(buf) == 0 {
		return
	}
	sort.SliceStable(buf, func(i, j int) bool {
		if buf[i].at != buf[j].at {
			return buf[i].at < buf[j].at
		}
		return buf[i].ctime < buf[j].ctime
	})
	for i := range buf {
		m := &buf[i]
		if m.at < end {
			panic(fmt.Sprintf("sim: horizon violation: message created at %v arrives at %v inside window ending %v",
				m.ctime, m.at, end))
		}
		p.SchedulerOf(m.dst).injectAt(m.at, m.ctime, m.fn)
		m.fn = nil
	}
	p.mergeBuf = buf[:0]
}
