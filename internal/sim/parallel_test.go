package sim

import (
	"errors"
	"testing"
	"time"
)

// TestParallelMatchesSerialOrder drives the same event graph through the
// serial scheduler and a two-partition runner: each partition's dispatch
// sequence (the order its actors observe, and therefore every RNG stream
// they consume) must match the serial run's sequence restricted to that
// partition. A single global interleaving is not the contract — only
// per-partition order is observable by simulation state.
func TestParallelMatchesSerialOrder(t *testing.T) {
	run := func(sched func(part int) *Scheduler, post func(src, dst int, delay time.Duration, fn func()), runUntil func(time.Duration) error) [2][]string {
		var orders [2][]string
		mark := func(part int, s string) func() {
			return func() { orders[part] = append(orders[part], s) }
		}
		// Partition 0 pings partition 1 at staggered latencies; partition 1
		// responds; both keep local timers running throughout.
		for i := 0; i < 5; i++ {
			i := i
			at := time.Duration(i+1) * 10 * time.Millisecond
			sched(0).At(at, func() {
				orders[0] = append(orders[0], "p0-local")
				post(1, 2, 7*time.Millisecond+time.Duration(i)*time.Millisecond, mark(1, "p0->p1"))
			})
			sched(1).At(at+3*time.Millisecond, func() {
				orders[1] = append(orders[1], "p1-local")
				post(2, 1, 9*time.Millisecond, mark(0, "p1->p0"))
			})
		}
		if err := runUntil(time.Second); err != nil {
			t.Fatal(err)
		}
		return orders
	}

	serial := NewScheduler()
	serialOrders := run(
		func(int) *Scheduler { return serial },
		func(src, dst int, delay time.Duration, fn func()) { serial.After(delay, fn) },
		serial.RunUntil,
	)

	// A single worker keeps the per-partition logs race-free; window
	// scheduling is identical for any worker count.
	par := NewParallel(2, 1, 5*time.Millisecond)
	parOrders := run(
		func(i int) *Scheduler { return par.Partition(i) },
		func(src, dst int, delay time.Duration, fn func()) {
			now := par.SchedulerOf(src).Now()
			par.Post(src, dst, now+delay, now, fn)
		},
		par.RunUntil,
	)

	for part := 0; part < 2; part++ {
		if len(serialOrders[part]) != len(parOrders[part]) {
			t.Fatalf("partition %d: serial dispatched %d events, parallel %d",
				part, len(serialOrders[part]), len(parOrders[part]))
		}
		for i := range serialOrders[part] {
			if serialOrders[part][i] != parOrders[part][i] {
				t.Fatalf("partition %d order diverged at %d: serial %v parallel %v",
					part, i, serialOrders[part], parOrders[part])
			}
		}
	}
}

// TestParallelZeroLatencySelfLinks pins intra-partition zero-delay
// sends (a host messaging itself, or any same-partition link with zero
// latency): they stay ordinary scheduler events, dispatch inside the
// current window at the same virtual instant, and preserve the serial
// creation-order tiebreak — the latency horizon constrains only
// cross-partition traffic.
func TestParallelZeroLatencySelfLinks(t *testing.T) {
	// One worker: partitions drain sequentially within a window, so the
	// shared order log is race-free and fully deterministic.
	par := NewParallel(2, 1, 5*time.Millisecond)
	var order []string
	var at []time.Duration
	sched := par.Partition(0)
	sched.At(10*time.Millisecond, func() {
		order = append(order, "root")
		// Zero-delay chain scheduled mid-drain: must run within this
		// window, after already-queued same-instant events, in FIFO order.
		sched.After(0, func() {
			order = append(order, "self-a")
			at = append(at, sched.Now())
			sched.After(0, func() {
				order = append(order, "self-b")
				at = append(at, sched.Now())
			})
		})
	})
	sched.At(10*time.Millisecond, func() { order = append(order, "peer") })
	// An unrelated event far beyond the window: must not interleave.
	par.Partition(1).At(11*time.Millisecond, func() { order = append(order, "other-part") })
	if err := par.RunUntil(12 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := []string{"root", "peer", "self-a", "self-b", "other-part"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	for _, ts := range at {
		if ts != 10*time.Millisecond {
			t.Fatalf("zero-delay self-link ran at %v, want 10ms", ts)
		}
	}
}

// TestParallelSameTimestampCrossPartitionFIFO pins the barrier merge's
// tie-break: messages arriving at one partition at the same instant from
// several sources dispatch by creation time first, then source slot, then
// posting order — a stable, run-independent ordering.
func TestParallelSameTimestampCrossPartitionFIFO(t *testing.T) {
	par := NewParallel(3, 3, 10*time.Millisecond)
	var order []string
	mark := func(s string) func() { return func() { order = append(order, s) } }
	// Both partitions 1 and 2 post to partition 0: identical arrival time,
	// but partition 2's messages were created earlier.
	par.Partition(0).At(20*time.Millisecond, func() {
		now := par.Partition(0).Now()
		par.Post(1, 3, now+40*time.Millisecond, now, mark("late-creation-a"))
		par.Post(1, 3, now+40*time.Millisecond, now, mark("late-creation-b"))
	})
	par.Partition(1).At(10*time.Millisecond, func() {
		now := par.Partition(1).Now()
		par.Post(2, 3, now+50*time.Millisecond, now, mark("early-creation"))
	})
	if err := par.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"early-creation", "late-creation-a", "late-creation-b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestParallelDeadlineInsideWindow pins RunUntil's exclusive-window
// semantics: a deadline landing mid-window still dispatches every event
// at or before it (and nothing after), with all clocks parked exactly at
// the deadline.
func TestParallelDeadlineInsideWindow(t *testing.T) {
	par := NewParallel(2, 2, time.Hour) // horizon far beyond the deadline
	var fired []time.Duration
	for _, at := range []time.Duration{time.Millisecond, 50 * time.Millisecond, 99 * time.Millisecond, 101 * time.Millisecond} {
		at := at
		par.Partition(0).At(at, func() { fired = append(fired, at) })
	}
	if err := par.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 99*time.Millisecond {
		t.Fatalf("fired = %v, want the three events at or before the deadline", fired)
	}
	if par.Now() != 100*time.Millisecond || par.Partition(0).Now() != 100*time.Millisecond || par.Partition(1).Now() != 100*time.Millisecond {
		t.Fatalf("clocks parked at %v/%v/%v, want 100ms each",
			par.Now(), par.Partition(0).Now(), par.Partition(1).Now())
	}
	// A second leg resumes exactly where the first stopped.
	if err := par.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 || fired[3] != 101*time.Millisecond {
		t.Fatalf("second leg fired = %v", fired)
	}
}

// TestParallelStopMidWindow pins Stop's contract: the window in progress
// finishes (so the post-stop state is worker-count independent) and
// RunUntil reports ErrStopped without reaching the deadline.
func TestParallelStopMidWindow(t *testing.T) {
	par := NewParallel(2, 2, 10*time.Millisecond)
	var after bool
	par.Partition(0).At(5*time.Millisecond, func() { par.Stop() })
	par.Partition(1).At(30*time.Millisecond, func() { after = true })
	err := par.RunUntil(time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if after {
		t.Fatal("event beyond the stopping window dispatched")
	}
	// The run can resume and drain the remainder.
	if err := par.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !after {
		t.Fatal("resumed run skipped the pending event")
	}
}

// TestParallelZeroHorizonErrors pins the no-lookahead safety net: a
// non-positive horizon cannot form a window and must surface as an error
// rather than livelock (deployments gate on this and fall back to
// serial).
func TestParallelZeroHorizonErrors(t *testing.T) {
	par := NewParallel(2, 2, 0)
	par.Partition(0).At(time.Millisecond, func() {})
	if err := par.RunUntil(time.Second); err == nil {
		t.Fatal("zero-horizon run succeeded")
	}
}

// TestParallelDeployTimePostsInjectDirectly pins the pre-run path: posts
// issued while no window is draining (deployment wiring) land in the
// destination queue immediately and participate in the first window's
// schedule.
func TestParallelDeployTimePostsInjectDirectly(t *testing.T) {
	par := NewParallel(2, 2, 10*time.Millisecond)
	var got bool
	par.Post(1, 2, 3*time.Millisecond, 0, func() { got = true })
	if err := par.RunUntil(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("deploy-time cross-partition post never dispatched")
	}
}
