package sim

import "math/rand"

// RNG is the deterministic random source used throughout a simulation run.
// Each of the paper's "20 executions" of a scenario corresponds to one
// seed; the same seed always reproduces the same event trace.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded deterministic random source.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Int63 returns a uniform non-negative 63-bit value (stream derivation).
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Int63n returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Intn returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Jitter returns base scaled by a truncated-normal multiplicative factor
// with the given relative standard deviation. The result is never
// negative and never more than 4 standard deviations from base.
func (g *RNG) Jitter(base float64, relStd float64) float64 {
	if base <= 0 || relStd <= 0 {
		return base
	}
	f := g.r.NormFloat64()
	if f > 4 {
		f = 4
	}
	if f < -4 {
		f = -4
	}
	v := base * (1 + relStd*f)
	if v < 0 {
		return 0
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
