package sim

import "time"

// SerialResource models a resource that processes requests one at a time,
// each with a caller-provided virtual service time.
//
// It is the building block for the Tendermint RPC service model: the
// paper's central finding is that Tendermint is "unable to process queries
// in parallel, requiring the relayer to wait while its requests for data
// are processed one by one" (§IV-B). Requests are queued FIFO; the done
// callback fires when the request's service completes.
type SerialResource struct {
	sched *Scheduler

	// busyUntil is the virtual time at which the resource frees up.
	busyUntil time.Duration

	// queued counts requests accepted but not yet completed.
	queued int

	// totalBusy accumulates service time, for utilization metrics.
	totalBusy time.Duration
}

// NewSerialResource returns a resource bound to the scheduler's clock.
func NewSerialResource(s *Scheduler) *SerialResource {
	return &SerialResource{sched: s}
}

// Pending reports the number of requests accepted but not completed.
func (r *SerialResource) Pending() int { return r.queued }

// BusyTime reports accumulated service time across all requests.
func (r *SerialResource) BusyTime() time.Duration { return r.totalBusy }

// Backlog reports how long a request submitted now would wait before its
// service begins.
func (r *SerialResource) Backlog() time.Duration {
	now := r.sched.Now()
	if r.busyUntil <= now {
		return 0
	}
	return r.busyUntil - now
}

// Submit enqueues a request with the given service time. done fires at the
// virtual time the request finishes; it may be nil.
func (r *SerialResource) Submit(service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	start := r.sched.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	finish := start + service
	r.busyUntil = finish
	r.totalBusy += service
	r.queued++
	r.sched.At(finish, func() {
		r.queued--
		if done != nil {
			done()
		}
	})
}
