// Package eventindex is the shared per-chain event index: one decode
// pass over a committed block's raw abci.Event payloads produces typed,
// per-channel packet records that every consumer — relayers, trackers
// and the packet-clearing loop — reads instead of re-parsing
// TxInfo.Result.Events itself.
//
// Before this layer existed, every relayer endpoint re-decoded every
// block's event JSON for its own channel, so a hub chain with K links
// performed K full scans per block. The index is built exactly once per
// commit (see chain.New wiring the IndexBlock hook before any RPC node)
// and served by reference to all subscribers; ScanCount counts decode
// passes so tests can assert the scan is O(1) in relayer count.
package eventindex

import (
	"encoding/json"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/tendermint/store"
)

// AckWrite pairs a write_acknowledgement packet with its raw ack bytes.
type AckWrite struct {
	Packet ibc.Packet
	Ack    []byte
}

// TxEvents is the decoded per-channel view of one transaction's events.
// Map keys are the channel identifiers on the chain that emitted the
// events: send_packet records key on the packet's source channel,
// write_acknowledgement records on its destination channel.
type TxEvents struct {
	Info      *store.TxInfo
	Sends     map[string][]ibc.Packet
	AckWrites map[string][]AckWrite
}

// SendPackets returns the tx's send_packet packets for one channel, in
// event order.
func (te *TxEvents) SendPackets(channel string) []ibc.Packet {
	return te.Sends[channel]
}

// Acks returns the tx's write_acknowledgement records for one channel,
// in event order.
func (te *TxEvents) Acks(channel string) []AckWrite {
	return te.AckWrites[channel]
}

// BlockEvents is the typed index of one committed block.
type BlockEvents struct {
	Height    int64
	BlockTime time.Duration
	// MsgCount is the block's total message count over successful
	// application transactions — the quantity the relayer's calibrated
	// parse-cost model charges for.
	MsgCount int
	// Txs lists, in block order, the transactions that carry IBC packet
	// events. Transactions without packet work are counted in MsgCount
	// but carry no entry.
	Txs []*TxEvents
}

// Decode performs the single decode pass over one block's transactions.
// Failed transactions are skipped entirely (their partial events are
// invisible to relayers, matching the pre-index behaviour).
func Decode(height int64, blockTime time.Duration, txs []*store.TxInfo) *BlockEvents {
	be := &BlockEvents{Height: height, BlockTime: blockTime}
	for _, info := range txs {
		t, ok := info.Tx.(*app.Tx)
		if !ok || !info.Result.IsOK() {
			continue
		}
		be.MsgCount += len(t.Msgs)
		te := decodeTx(info)
		if te != nil {
			be.Txs = append(be.Txs, te)
		}
	}
	return be
}

// decodeTx extracts one transaction's packet events (nil if it has none).
func decodeTx(info *store.TxInfo) *TxEvents {
	var te *TxEvents
	ensure := func() *TxEvents {
		if te == nil {
			te = &TxEvents{Info: info}
		}
		return te
	}
	for _, ev := range info.Result.Events {
		switch ev.Type {
		case "send_packet":
			p, ok := decodePacket(ev)
			if !ok {
				continue
			}
			t := ensure()
			if t.Sends == nil {
				t.Sends = make(map[string][]ibc.Packet)
			}
			t.Sends[p.SourceChannel] = append(t.Sends[p.SourceChannel], p)
		case "write_acknowledgement":
			p, ok := decodePacket(ev)
			if !ok {
				continue
			}
			t := ensure()
			if t.AckWrites == nil {
				t.AckWrites = make(map[string][]AckWrite)
			}
			t.AckWrites[p.DestChannel] = append(t.AckWrites[p.DestChannel],
				AckWrite{Packet: p, Ack: []byte(ev.Attributes["ack"])})
		}
	}
	return te
}

// decodePacket extracts the packet payload of one event.
func decodePacket(ev abci.Event) (ibc.Packet, bool) {
	var p ibc.Packet
	if err := json.Unmarshal([]byte(ev.Attributes["packet"]), &p); err != nil {
		return ibc.Packet{}, false
	}
	return p, true
}

// Index is the append-only per-chain event index, populated once per
// committed block from the consensus engine's commit hook.
type Index struct {
	chainID string
	blocks  []*BlockEvents // index 0 = height 1
	scans   uint64
}

// New returns an empty index for one chain.
func New(chainID string) *Index {
	return &Index{chainID: chainID}
}

// ChainID reports the chain the index belongs to.
func (x *Index) ChainID() string { return x.chainID }

// IndexTxs decodes the next committed block from its TxInfos (shared
// with the store's cached materialization, avoiding reallocation).
// Heights must be contiguous from 1 (the store enforces the same
// invariant).
func (x *Index) IndexTxs(height int64, blockTime time.Duration, infos []*store.TxInfo) *BlockEvents {
	want := int64(len(x.blocks)) + 1
	if height != want {
		panic("eventindex: non-contiguous height")
	}
	x.scans++
	be := Decode(height, blockTime, infos)
	x.blocks = append(x.blocks, be)
	return be
}

// At returns the block index at a height (nil if not indexed).
func (x *Index) At(height int64) *BlockEvents {
	if height < 1 || height > int64(len(x.blocks)) {
		return nil
	}
	return x.blocks[height-1]
}

// Height reports the latest indexed height.
func (x *Index) Height() int64 { return int64(len(x.blocks)) }

// ScanCount reports how many full decode passes have run — exactly one
// per committed block regardless of how many relayers subscribe.
func (x *Index) ScanCount() uint64 { return x.scans }
