package eventindex

import (
	"encoding/json"
	"testing"
	"time"

	"ibcbench/internal/abci"
	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/tendermint/store"
)

func packetEvent(t *testing.T, typ string, p ibc.Packet, ack string) abci.Event {
	t.Helper()
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"packet": string(raw)}
	if ack != "" {
		attrs["ack"] = ack
	}
	return abci.Event{Type: typ, Attributes: attrs}
}

func txInfo(msgs int, code uint32, events ...abci.Event) *store.TxInfo {
	m := make([]app.Msg, msgs)
	for i := range m {
		m[i] = ibc.MsgRecvPacket{}
	}
	return &store.TxInfo{
		Tx:     app.NewTx("signer", 0, 1, m),
		Result: abci.TxResult{Code: code, Events: events},
	}
}

func TestDecodePerChannel(t *testing.T) {
	p0 := ibc.Packet{SourceChannel: "channel-0", DestChannel: "channel-9", Sequence: 1}
	p1 := ibc.Packet{SourceChannel: "channel-1", DestChannel: "channel-8", Sequence: 4}
	ackP := ibc.Packet{SourceChannel: "channel-7", DestChannel: "channel-0", Sequence: 2}
	infos := []*store.TxInfo{
		txInfo(3, abci.CodeOK,
			packetEvent(t, "send_packet", p0, ""),
			packetEvent(t, "send_packet", p1, ""),
			packetEvent(t, "write_acknowledgement", ackP, "ACK")),
		txInfo(2, 4, packetEvent(t, "send_packet", p0, "")), // failed tx: invisible
		txInfo(5, abci.CodeOK),                              // no packet work
	}
	be := Decode(3, 5*time.Second, infos)
	if be.Height != 3 || be.BlockTime != 5*time.Second {
		t.Fatalf("header = %+v", be)
	}
	// Failed tx msgs are excluded from the parse-cost count.
	if be.MsgCount != 8 {
		t.Fatalf("MsgCount = %d, want 8", be.MsgCount)
	}
	if len(be.Txs) != 1 {
		t.Fatalf("indexed txs = %d, want 1", len(be.Txs))
	}
	te := be.Txs[0]
	if got := te.SendPackets("channel-0"); len(got) != 1 || got[0].Sequence != 1 {
		t.Fatalf("sends on channel-0 = %+v", got)
	}
	if got := te.SendPackets("channel-1"); len(got) != 1 || got[0].Sequence != 4 {
		t.Fatalf("sends on channel-1 = %+v", got)
	}
	if got := te.SendPackets("channel-9"); got != nil {
		t.Fatalf("dest channel must not index sends: %+v", got)
	}
	acks := te.Acks("channel-0")
	if len(acks) != 1 || acks[0].Packet.Sequence != 2 || string(acks[0].Ack) != "ACK" {
		t.Fatalf("acks on channel-0 = %+v", acks)
	}
	if got := te.Acks("channel-7"); got != nil {
		t.Fatalf("source channel must not index ack writes: %+v", got)
	}
}

func TestDecodeOrderPreserved(t *testing.T) {
	var events []abci.Event
	for seq := uint64(1); seq <= 5; seq++ {
		events = append(events, packetEvent(t, "send_packet",
			ibc.Packet{SourceChannel: "channel-0", Sequence: seq}, ""))
	}
	be := Decode(1, 0, []*store.TxInfo{txInfo(5, abci.CodeOK, events...)})
	got := be.Txs[0].SendPackets("channel-0")
	for i, p := range got {
		if p.Sequence != uint64(i+1) {
			t.Fatalf("packet order broken: %+v", got)
		}
	}
}

func TestIndexScanCounting(t *testing.T) {
	x := New("chain-a")
	if x.ChainID() != "chain-a" || x.Height() != 0 || x.At(1) != nil {
		t.Fatalf("fresh index = %+v", x)
	}
	be1 := x.IndexTxs(1, time.Second, nil)
	be2 := x.IndexTxs(2, 2*time.Second, []*store.TxInfo{txInfo(1, abci.CodeOK)})
	if x.ScanCount() != 2 || x.Height() != 2 {
		t.Fatalf("scans=%d height=%d", x.ScanCount(), x.Height())
	}
	if x.At(1) != be1 || x.At(2) != be2 || x.At(3) != nil || x.At(0) != nil {
		t.Fatal("At() does not return the indexed blocks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-contiguous IndexTxs did not panic")
		}
	}()
	x.IndexTxs(9, 0, nil)
}
