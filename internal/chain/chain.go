// Package chain is the composition root assembling one simulated Cosmos
// Gaia blockchain: application + IBC + transfer module + mempool +
// consensus engine + RPC full nodes, all running on a shared virtual
// clock. It also provides helpers to link two chains with an IBC channel
// the way the paper's Setup module does (§III-B).
package chain

import (
	"encoding/json"
	"fmt"
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/consensus"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/rpc"
	"ibcbench/internal/tendermint/store"
)

// Config parameterizes one chain.
type Config struct {
	ChainID    string
	Validators int
	// FullProofs enables real merkle state commitments and proof
	// verification (correctness mode); performance experiments disable
	// it — the proof-handling cost is modeled in virtual time either way.
	FullProofs bool
	// Consensus overrides; zero values take the paper defaults.
	Consensus consensus.Config
	// RPC overrides; zero value takes defaults.
	RPC rpc.Config
}

// Chain bundles every component of one blockchain.
type Chain struct {
	ID       string
	App      *app.App
	Keeper   *ibc.Keeper
	Transfer *transfer.Module
	Pool     *mempool.Pool
	Store    *store.Store
	Engine   *consensus.Engine
	RPC      *rpc.Server // primary full node

	sched    *sim.Scheduler
	network  *netem.Network
	rpcNodes int
}

// New assembles a chain on the shared scheduler and network.
func New(sched *sim.Scheduler, network *netem.Network, cfg Config) *Chain {
	a := app.New(cfg.ChainID, cfg.FullProofs)
	keeper := ibc.NewKeeper(a)
	xfer := transfer.New(a, keeper)
	pool := mempool.New(mempool.DefaultConfig(), a.CheckTx)
	stor := store.New(cfg.ChainID)

	ccfg := cfg.Consensus
	if ccfg.ChainID == "" {
		ccfg = consensus.DefaultConfig(cfg.ChainID)
	}
	if cfg.Validators > 0 {
		ccfg.Validators = cfg.Validators
	}
	engine := consensus.New(sched, network, ccfg, a, pool, stor)

	rcfg := cfg.RPC
	if rcfg.BroadcastCost == 0 {
		rcfg = rpc.DefaultConfig()
	}
	c := &Chain{
		ID:       cfg.ChainID,
		App:      a,
		Keeper:   keeper,
		Transfer: xfer,
		Pool:     pool,
		Store:    stor,
		Engine:   engine,
		sched:    sched,
		network:  network,
	}
	c.RPC = c.newRPCNode(engine.PrimaryHost(), rcfg)
	return c
}

// newRPCNode creates an RPC server backed by this chain's state.
func (c *Chain) newRPCNode(host netem.Host, cfg rpc.Config) *rpc.Server {
	srv := rpc.New(c.sched, c.network, host, cfg, c.Store, c.Pool,
		app.TxQueryCost, app.EventFrameBytes, c.App.AccountSequence, app.MsgCount)
	c.Engine.OnCommit(srv.PublishBlock)
	return srv
}

// AddRPCNode attaches an additional full node serving RPC (the paper
// runs one full node per relayer machine). It shares the canonical
// store/mempool but has its own serial query queue.
func (c *Chain) AddRPCNode(cfg rpc.Config) *rpc.Server {
	c.rpcNodes++
	host := netem.Host(fmt.Sprintf("%s/fullnode%d", c.ID, c.rpcNodes))
	if cfg.BroadcastCost == 0 {
		cfg = rpc.DefaultConfig()
	}
	return c.newRPCNode(host, cfg)
}

// Start begins block production.
func (c *Chain) Start() { c.Engine.Start() }

// ClientStateFor describes this chain for a counterparty's light client.
func (c *Chain) ClientStateFor() ibc.ClientState {
	var vals []ibc.ValidatorRecord
	for _, v := range c.Engine.ValidatorSet().Validators {
		vals = append(vals, ibc.ValidatorRecord{PubKey: v.PubKey.Bytes(), Power: v.VotingPower})
	}
	return ibc.ClientState{ChainID: c.ID, Validators: vals}
}

// Pair is two chains linked by an IBC channel.
type Pair struct {
	A, B *Chain
	// PortID/ChannelID of the linked channel on both ends.
	Port      string
	ChannelAB string
	ChannelBA string
	// ClientOnA tracks B; ClientOnB tracks A.
	ClientOnA string
	ClientOnB string
}

// Link seeds both chains' IBC state with open clients, a connection and
// an unordered transfer channel (the fast-path equivalent of the paper's
// `hermes create channel` setup; the full message-driven handshake is
// exercised in the ibc package tests).
func Link(a, b *Chain) *Pair {
	p := &Pair{
		A: a, B: b,
		Port:      transfer.PortID,
		ChannelAB: "channel-0",
		ChannelBA: "channel-0",
		ClientOnA: "07-tendermint-0",
		ClientOnB: "07-tendermint-0",
	}
	seed := func(host, peer *Chain, clientID string) {
		ctx := &app.Context{
			ChainID: host.ID, Height: 0, Time: 0,
			State: host.App.State(), Bank: host.App.Bank(), App: host.App,
		}
		state := peer.ClientStateFor()
		state.LatestHeight = 1
		setClient(ctx, clientID, state)
		setConnection(ctx, "connection-0", clientID)
		setChannel(ctx, p.Port, "channel-0", "connection-0")
		ctx.State.CommitTx()
	}
	seed(a, b, p.ClientOnA)
	seed(b, a, p.ClientOnB)
	return p
}

// The seeding helpers write the same stored objects the handshake would.

func setClient(ctx *app.Context, clientID string, st ibc.ClientState) {
	mustSet(ctx, ibc.ClientStateKey(clientID), st)
}

func setConnection(ctx *app.Context, connID, clientID string) {
	mustSet(ctx, ibc.ConnectionKey(connID), ibc.ConnectionEnd{
		State:                ibc.StateOpen,
		ClientID:             clientID,
		CounterpartyConnID:   "connection-0",
		CounterpartyClientID: "07-tendermint-0",
	})
}

func setChannel(ctx *app.Context, port, channel, connID string) {
	mustSet(ctx, ibc.ChannelKey(port, channel), ibc.ChannelEnd{
		State:            ibc.StateOpen,
		Ordering:         ibc.Unordered,
		CounterpartyPort: port,
		CounterpartyChan: channel,
		ConnectionID:     connID,
		Version:          "ics20-1",
	})
	ctx.State.Set(ibc.NextSequenceSendKey(port, channel), []byte("1"))
}

func mustSet(ctx *app.Context, key string, v any) {
	raw, err := jsonMarshal(v)
	if err != nil {
		panic(err)
	}
	ctx.State.Set(key, raw)
}

// Testbed is the complete two-chain environment of the paper's
// experiments: a shared scheduler and network, two five-validator Gaia
// chains, and a linked transfer channel.
type Testbed struct {
	Sched *sim.Scheduler
	Net   *netem.Network
	RNG   *sim.RNG
	Pair  *Pair
}

// TestbedConfig selects the emulated network and chain parameters.
type TestbedConfig struct {
	Seed        int64
	Network     netem.Config
	Validators  int
	FullProofs  bool
	MaxBlockGas uint64
}

// DefaultTestbed mirrors §III-C: 200 ms RTT WAN, five validators each.
func DefaultTestbed(seed int64) TestbedConfig {
	return TestbedConfig{
		Seed:    seed,
		Network: netem.DefaultWAN(),
	}
}

// NewTestbed builds the two-chain environment.
func NewTestbed(cfg TestbedConfig) *Testbed {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	network := netem.New(sched, rng, cfg.Network)
	mk := func(id string) *Chain {
		ccfg := Config{ChainID: id, Validators: cfg.Validators, FullProofs: cfg.FullProofs}
		ccfg.Consensus = consensusDefault(id, cfg)
		return New(sched, network, ccfg)
	}
	a := mk("ibc-0")
	b := mk("ibc-1")
	return &Testbed{
		Sched: sched,
		Net:   network,
		RNG:   rng,
		Pair:  Link(a, b),
	}
}

func consensusDefault(id string, cfg TestbedConfig) consensus.Config {
	c := consensus.DefaultConfig(id)
	if cfg.Validators > 0 {
		c.Validators = cfg.Validators
	}
	if cfg.MaxBlockGas > 0 {
		c.MaxBlockGas = cfg.MaxBlockGas
	}
	return c
}

// Start begins block production on both chains.
func (tb *Testbed) Start() {
	tb.Pair.A.Start()
	tb.Pair.B.Start()
}

// Run drives the simulation until the virtual deadline.
func (tb *Testbed) Run(until time.Duration) error {
	return tb.Sched.RunUntil(until)
}

// jsonMarshal is a tiny indirection so the seeding helpers don't pull
// encoding/json into the public surface.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
