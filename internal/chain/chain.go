// Package chain is the composition root assembling one simulated Cosmos
// Gaia blockchain: application + IBC + transfer module + mempool +
// consensus engine + RPC full nodes, all running on a shared virtual
// clock. It also provides helpers to link two chains with an IBC channel
// the way the paper's Setup module does (§III-B).
package chain

import (
	"encoding/json"
	"fmt"
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/eventindex"
	"ibcbench/internal/ibc"
	"ibcbench/internal/ibc/pfm"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/consensus"
	"ibcbench/internal/tendermint/mempool"
	"ibcbench/internal/tendermint/rpc"
	"ibcbench/internal/tendermint/store"
)

// Config parameterizes one chain.
type Config struct {
	ChainID    string
	Validators int
	// FullProofs enables real merkle state commitments and proof
	// verification (correctness mode); performance experiments disable
	// it — the proof-handling cost is modeled in virtual time either way.
	FullProofs bool
	// ReferenceVoteVerify disables the shared vote-verification engine
	// (every validator re-verifies every gossiped vote — the O(V^2)
	// reference path; results stay byte-identical).
	ReferenceVoteVerify bool
	// ReferenceQuorumTally disables the counted per-round quorum tallies
	// (every received vote re-walks a power map — the reference path;
	// results stay byte-identical).
	ReferenceQuorumTally bool
	// Consensus overrides; zero values take the paper defaults.
	Consensus consensus.Config
	// RPC overrides; zero value takes defaults.
	RPC rpc.Config
	// Obs attaches the run's observability sinks (nil = disabled). The
	// chain forwards it to consensus and samples mempool depth and
	// scheduler queue length per commit.
	Obs *obs.Obs
}

// Chain bundles every component of one blockchain.
type Chain struct {
	ID       string
	App      *app.App
	Keeper   *ibc.Keeper
	Transfer *transfer.Module
	// Forward is the packet-forward middleware stacked over Transfer on
	// the ICS-20 port (multi-hop routes via packet memos).
	Forward *pfm.Middleware
	Pool    *mempool.Pool
	Store   *store.Store
	Engine  *consensus.Engine
	RPC     *rpc.Server // primary full node
	// Events is the chain's shared event index: one decode pass per
	// committed block, consumed by every RPC node's subscribers.
	Events *eventindex.Index

	sched    *sim.Scheduler
	network  *netem.Network
	rpcNodes int
	rpcHosts []netem.Host
	links    int

	// onHost notifies listeners (the topology deployer's geo placement)
	// when a late full-node host joins the chain.
	onHost []func(netem.Host)
}

// New assembles a chain on the shared scheduler and network.
func New(sched *sim.Scheduler, network *netem.Network, cfg Config) *Chain {
	a := app.New(cfg.ChainID, cfg.FullProofs)
	keeper := ibc.NewKeeper(a)
	xfer := transfer.New(a, keeper)
	// The middleware stack: PFM rebinds the transfer port, delegating
	// plain packets to the transfer module underneath.
	fwd := pfm.New(keeper, xfer)
	pool := mempool.New(mempool.DefaultConfig(), a.CheckTx)
	stor := store.New(cfg.ChainID)

	ccfg := cfg.Consensus
	if ccfg.ChainID == "" {
		ccfg = consensus.DefaultConfig(cfg.ChainID)
	}
	if cfg.Validators > 0 {
		ccfg.Validators = cfg.Validators
	}
	if cfg.ReferenceVoteVerify {
		ccfg.ReferenceVoteVerify = true
	}
	if cfg.ReferenceQuorumTally {
		ccfg.ReferenceQuorumTally = true
	}
	if cfg.Obs != nil {
		ccfg.Obs = cfg.Obs
	}
	engine := consensus.New(sched, network, ccfg, a, pool, stor)

	rcfg := cfg.RPC
	if rcfg.BroadcastCost == 0 {
		rcfg = rpc.DefaultConfig()
	}
	c := &Chain{
		ID:       cfg.ChainID,
		App:      a,
		Keeper:   keeper,
		Transfer: xfer,
		Forward:  fwd,
		Pool:     pool,
		Store:    stor,
		Engine:   engine,
		Events:   eventindex.New(cfg.ChainID),
		sched:    sched,
		network:  network,
	}
	// The index hook is registered before any RPC node's PublishBlock, so
	// commit-hook ordering guarantees the single decode pass has run by
	// the time frames are assembled for subscribers.
	engine.OnCommit(func(cb *store.CommittedBlock) {
		infos, err := stor.TxsAtHeight(cb.Block.Header.Height)
		if err != nil {
			panic(fmt.Sprintf("chain %s: committed block %d missing from store: %v",
				cfg.ChainID, cb.Block.Header.Height, err))
		}
		c.Events.IndexTxs(cb.Block.Header.Height, cb.Block.Header.Time, infos)
	})
	if cfg.Obs != nil {
		// Per-commit level sample: mempool depth after the block's txs
		// were removed.
		depth := cfg.Obs.Reg.Histogram("chain/" + cfg.ChainID + "/mempool_depth")
		engine.OnCommit(func(*store.CommittedBlock) {
			depth.Observe(float64(pool.Size()))
		})
	}
	c.RPC = c.newRPCNode(engine.PrimaryHost(), rcfg)
	return c
}

// newRPCNode creates an RPC server backed by this chain's state.
func (c *Chain) newRPCNode(host netem.Host, cfg rpc.Config) *rpc.Server {
	srv := rpc.New(c.sched, c.network, host, cfg, c.Store, c.Pool,
		app.TxQueryCost, app.EventFrameBytes, c.App.AccountSequence, app.MsgCount, c.Events.At)
	srv.SetSettledQuery(func(p rpc.SettledProbe) bool {
		ctx := &app.Context{ChainID: c.ID, State: c.App.State(), Bank: c.App.Bank(), App: c.App}
		if p.Ack {
			// Ack/timeout settle by clearing the source commitment.
			return !c.Keeper.HasCommitment(ctx, p.Port, p.Channel, p.Sequence)
		}
		return c.Keeper.HasReceipt(ctx, p.Port, p.Channel, p.Sequence)
	})
	c.Engine.OnCommit(srv.PublishBlock)
	return srv
}

// AddRPCNode attaches an additional full node serving RPC (the paper
// runs one full node per relayer machine). It shares the canonical
// store/mempool but has its own serial query queue.
func (c *Chain) AddRPCNode(cfg rpc.Config) *rpc.Server {
	c.rpcNodes++
	host := netem.Host(fmt.Sprintf("%s/fullnode%d", c.ID, c.rpcNodes))
	if cfg.BroadcastCost == 0 {
		cfg = rpc.DefaultConfig()
	}
	c.rpcHosts = append(c.rpcHosts, host)
	for _, fn := range c.onHost {
		fn(host)
	}
	return c.newRPCNode(host, cfg)
}

// Hosts lists every network host belonging to this chain: validator
// nodes plus attached full nodes.
func (c *Chain) Hosts() []netem.Host {
	out := append([]netem.Host(nil), c.Engine.Hosts()...)
	return append(out, c.rpcHosts...)
}

// OnHost registers a callback fired for each full-node host added after
// registration (geo placement of late-created hosts).
func (c *Chain) OnHost(fn func(netem.Host)) { c.onHost = append(c.onHost, fn) }

// Start begins block production.
func (c *Chain) Start() { c.Engine.Start() }

// ClientStateFor describes this chain for a counterparty's light client.
func (c *Chain) ClientStateFor() ibc.ClientState {
	var vals []ibc.ValidatorRecord
	for _, v := range c.Engine.ValidatorSet().Validators {
		vals = append(vals, ibc.ValidatorRecord{PubKey: v.PubKey.Bytes(), Power: v.VotingPower})
	}
	return ibc.ClientState{ChainID: c.ID, Validators: vals}
}

// Pair is two chains linked by an IBC channel.
type Pair struct {
	A, B *Chain
	// PortID/ChannelID of the linked channel on both ends.
	Port      string
	ChannelAB string
	ChannelBA string
	// ClientOnA tracks B; ClientOnB tracks A.
	ClientOnA string
	ClientOnB string
}

// Link seeds both chains' IBC state with open clients, a connection and
// an unordered transfer channel (the fast-path equivalent of the paper's
// `hermes create channel` setup; the full message-driven handshake is
// exercised in the ibc package tests). Each call consumes the next free
// client/connection/channel ordinal on each chain, so a chain can be
// linked to many counterparties (hub, mesh and line topologies).
func Link(a, b *Chain) *Pair {
	ordA, ordB := a.links, b.links
	a.links++
	b.links++
	return LinkAt(a, b, ordA, ordB)
}

// LinkAt links two chains using explicit per-chain identifier ordinals:
// on a the link uses channel-<ordA>/connection-<ordA>/07-tendermint-<ordA>,
// and symmetrically on b.
func LinkAt(a, b *Chain, ordA, ordB int) *Pair {
	// Each side's light client tracks the counterparty; share that
	// chain's vote-verification engine so header commits whose signatures
	// were already admitted through its live vote path skip re-checks.
	// The read-only view keeps the light-client path off the owner's
	// counters and buffers, so it can run on another partition.
	a.Keeper.RegisterVoteVerifier(b.ID, b.Engine.VoteCache().ReadOnly())
	b.Keeper.RegisterVoteVerifier(a.ID, a.Engine.VoteCache().ReadOnly())
	p := &Pair{
		A: a, B: b,
		Port:      transfer.PortID,
		ChannelAB: fmt.Sprintf("channel-%d", ordA),
		ChannelBA: fmt.Sprintf("channel-%d", ordB),
		ClientOnA: fmt.Sprintf("07-tendermint-%d", ordA),
		ClientOnB: fmt.Sprintf("07-tendermint-%d", ordB),
	}
	connA := fmt.Sprintf("connection-%d", ordA)
	connB := fmt.Sprintf("connection-%d", ordB)
	type side struct {
		host, peer                   *Chain
		clientID, connID, chanID     string
		cpClientID, cpConnID, cpChan string
	}
	for _, s := range []side{
		{a, b, p.ClientOnA, connA, p.ChannelAB, p.ClientOnB, connB, p.ChannelBA},
		{b, a, p.ClientOnB, connB, p.ChannelBA, p.ClientOnA, connA, p.ChannelAB},
	} {
		ctx := &app.Context{
			ChainID: s.host.ID, Height: 0, Time: 0,
			State: s.host.App.State(), Bank: s.host.App.Bank(), App: s.host.App,
		}
		state := s.peer.ClientStateFor()
		state.LatestHeight = 1
		setClient(ctx, s.clientID, state)
		setConnection(ctx, s.connID, s.clientID, s.cpConnID, s.cpClientID)
		setChannel(ctx, p.Port, s.chanID, s.connID, s.cpChan)
		ctx.State.CommitTx()
	}
	return p
}

// The seeding helpers write the same stored objects the handshake would.

func setClient(ctx *app.Context, clientID string, st ibc.ClientState) {
	mustSet(ctx, ibc.ClientStateKey(clientID), st)
}

func setConnection(ctx *app.Context, connID, clientID, cpConnID, cpClientID string) {
	mustSet(ctx, ibc.ConnectionKey(connID), ibc.ConnectionEnd{
		State:                ibc.StateOpen,
		ClientID:             clientID,
		CounterpartyConnID:   cpConnID,
		CounterpartyClientID: cpClientID,
	})
}

func setChannel(ctx *app.Context, port, channel, connID, cpChannel string) {
	mustSet(ctx, ibc.ChannelKey(port, channel), ibc.ChannelEnd{
		State:            ibc.StateOpen,
		Ordering:         ibc.Unordered,
		CounterpartyPort: port,
		CounterpartyChan: cpChannel,
		ConnectionID:     connID,
		Version:          "ics20-1",
	})
	ctx.State.Set(ibc.NextSequenceSendKey(port, channel), []byte("1"))
}

func mustSet(ctx *app.Context, key string, v any) {
	raw, err := jsonMarshal(v)
	if err != nil {
		panic(err)
	}
	ctx.State.Set(key, raw)
}

// Testbed is the complete two-chain environment of the paper's
// experiments: a shared scheduler and network, two five-validator Gaia
// chains, and a linked transfer channel.
type Testbed struct {
	Sched *sim.Scheduler
	Net   *netem.Network
	RNG   *sim.RNG
	Pair  *Pair
}

// TestbedConfig selects the emulated network and chain parameters.
type TestbedConfig struct {
	Seed        int64
	Network     netem.Config
	Validators  int
	FullProofs  bool
	MaxBlockGas uint64
	// ReferenceVoteVerify selects the O(V^2) per-receiver vote
	// verification path (see Config.ReferenceVoteVerify).
	ReferenceVoteVerify bool
}

// DefaultTestbed mirrors §III-C: 200 ms RTT WAN, five validators each.
func DefaultTestbed(seed int64) TestbedConfig {
	return TestbedConfig{
		Seed:    seed,
		Network: netem.DefaultWAN(),
	}
}

// NewTestbed builds the two-chain environment.
func NewTestbed(cfg TestbedConfig) *Testbed {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	network := netem.New(sched, rng, cfg.Network)
	mk := func(id string) *Chain {
		ccfg := Config{
			ChainID: id, Validators: cfg.Validators, FullProofs: cfg.FullProofs,
			ReferenceVoteVerify: cfg.ReferenceVoteVerify,
		}
		ccfg.Consensus = consensusDefault(id, cfg)
		return New(sched, network, ccfg)
	}
	a := mk("ibc-0")
	b := mk("ibc-1")
	return &Testbed{
		Sched: sched,
		Net:   network,
		RNG:   rng,
		Pair:  Link(a, b),
	}
}

func consensusDefault(id string, cfg TestbedConfig) consensus.Config {
	c := consensus.DefaultConfig(id)
	if cfg.Validators > 0 {
		c.Validators = cfg.Validators
	}
	if cfg.MaxBlockGas > 0 {
		c.MaxBlockGas = cfg.MaxBlockGas
	}
	return c
}

// Start begins block production on both chains.
func (tb *Testbed) Start() {
	tb.Pair.A.Start()
	tb.Pair.B.Start()
}

// Run drives the simulation until the virtual deadline.
func (tb *Testbed) Run(until time.Duration) error {
	return tb.Sched.RunUntil(until)
}

// jsonMarshal is a tiny indirection so the seeding helpers don't pull
// encoding/json into the public surface.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
