package chain

import (
	"encoding/json"
	"testing"
	"time"

	"ibcbench/internal/ibc"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/tendermint/rpc"
)

func newTestChain(t *testing.T, sched *sim.Scheduler, net *netem.Network, id string) *Chain {
	t.Helper()
	return New(sched, net, Config{ChainID: id})
}

func harness(t *testing.T) (*sim.Scheduler, *netem.Network) {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	return sched, netem.New(sched, rng, netem.DefaultLAN())
}

func TestNewAssemblesComponents(t *testing.T) {
	sched, net := harness(t)
	c := newTestChain(t, sched, net, "test-0")
	if c.App == nil || c.Keeper == nil || c.Transfer == nil ||
		c.Pool == nil || c.Store == nil || c.Engine == nil || c.RPC == nil {
		t.Fatalf("chain incompletely assembled: %+v", c)
	}
	if c.ID != "test-0" {
		t.Fatalf("ID = %q", c.ID)
	}
	st := c.ClientStateFor()
	if st.ChainID != "test-0" || len(st.Validators) == 0 {
		t.Fatalf("client state: %+v", st)
	}
}

func channelEnd(t *testing.T, c *Chain, port, channel string) ibc.ChannelEnd {
	t.Helper()
	raw, ok := c.App.State().Get(ibc.ChannelKey(port, channel))
	if !ok {
		t.Fatalf("%s: channel %s/%s not seeded", c.ID, port, channel)
	}
	var end ibc.ChannelEnd
	if err := json.Unmarshal(raw, &end); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestLinkSeedsBothEnds(t *testing.T) {
	sched, net := harness(t)
	a := newTestChain(t, sched, net, "a")
	b := newTestChain(t, sched, net, "b")
	p := Link(a, b)
	if p.ChannelAB != "channel-0" || p.ChannelBA != "channel-0" {
		t.Fatalf("first link channels: %q / %q", p.ChannelAB, p.ChannelBA)
	}
	endA := channelEnd(t, a, p.Port, p.ChannelAB)
	endB := channelEnd(t, b, p.Port, p.ChannelBA)
	if endA.State != ibc.StateOpen || endB.State != ibc.StateOpen {
		t.Fatalf("channel ends not open: %+v / %+v", endA, endB)
	}
	if endA.CounterpartyChan != p.ChannelBA || endB.CounterpartyChan != p.ChannelAB {
		t.Fatalf("counterparty channels wrong: %+v / %+v", endA, endB)
	}
	if !a.App.State().Has(ibc.ClientStateKey(p.ClientOnA)) ||
		!b.App.State().Has(ibc.ClientStateKey(p.ClientOnB)) {
		t.Fatal("clients not seeded")
	}
}

// TestLinkOrdinalsAdvancePerChain is the multi-channel property hub and
// mesh topologies rely on: a chain's second link gets fresh identifiers.
func TestLinkOrdinalsAdvancePerChain(t *testing.T) {
	sched, net := harness(t)
	hub := newTestChain(t, sched, net, "hub")
	s1 := newTestChain(t, sched, net, "s1")
	s2 := newTestChain(t, sched, net, "s2")
	p1 := Link(hub, s1)
	p2 := Link(hub, s2)
	if p1.ChannelAB != "channel-0" || p2.ChannelAB != "channel-1" {
		t.Fatalf("hub-side channels %q then %q, want channel-0 then channel-1",
			p1.ChannelAB, p2.ChannelAB)
	}
	if p2.ChannelBA != "channel-0" {
		t.Fatalf("fresh spoke got %q, want channel-0", p2.ChannelBA)
	}
	if p1.ClientOnA == p2.ClientOnA {
		t.Fatalf("hub reused client %q for both links", p1.ClientOnA)
	}
	// Cross-references must pair each hub channel with its own spoke.
	end := channelEnd(t, hub, p2.Port, "channel-1")
	if end.CounterpartyChan != "channel-0" {
		t.Fatalf("hub channel-1 counterparty = %q", end.CounterpartyChan)
	}
}

func TestLinkAtExplicitOrdinals(t *testing.T) {
	sched, net := harness(t)
	a := newTestChain(t, sched, net, "a")
	b := newTestChain(t, sched, net, "b")
	p := LinkAt(a, b, 4, 7)
	if p.ChannelAB != "channel-4" || p.ChannelBA != "channel-7" {
		t.Fatalf("channels %q / %q", p.ChannelAB, p.ChannelBA)
	}
	if p.ClientOnA != "07-tendermint-4" || p.ClientOnB != "07-tendermint-7" {
		t.Fatalf("clients %q / %q", p.ClientOnA, p.ClientOnB)
	}
}

func TestAddRPCNodeDistinctHosts(t *testing.T) {
	sched, net := harness(t)
	c := newTestChain(t, sched, net, "c")
	n1 := c.AddRPCNode(rpc.Config{})
	n2 := c.AddRPCNode(rpc.Config{})
	if n1 == n2 {
		t.Fatal("AddRPCNode returned the same node twice")
	}
	if c.RPC == n1 || c.RPC == n2 {
		t.Fatal("full nodes aliased the primary RPC server")
	}
}

func TestTestbedProducesBlocks(t *testing.T) {
	tb := NewTestbed(DefaultTestbed(3))
	if tb.Pair.A.ID != "ibc-0" || tb.Pair.B.ID != "ibc-1" {
		t.Fatalf("chain IDs %q / %q", tb.Pair.A.ID, tb.Pair.B.ID)
	}
	tb.Start()
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.Pair.A.Store.Height() < 3 || tb.Pair.B.Store.Height() < 3 {
		t.Fatalf("heights %d / %d after 30s",
			tb.Pair.A.Store.Height(), tb.Pair.B.Store.Height())
	}
}
