package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
	if got := Quantile([]float64{}, 0.99); got != 0 {
		t.Fatalf("Quantile(empty) = %v, want 0", got)
	}
	for _, q := range []float64{-1, 0, 0.25, 0.5, 1, 2, math.NaN()} {
		if got := Quantile([]float64{3.5}, q); got != 3.5 {
			t.Fatalf("Quantile(n=1, q=%v) = %v, want 3.5", q, got)
		}
	}
	// Out-of-range q clamps to the extremes instead of panicking.
	s := []float64{1, 2, 3, 4}
	if got := Quantile(s, -0.5); got != 1 {
		t.Fatalf("Quantile(q=-0.5) = %v, want min", got)
	}
	if got := Quantile(s, 1.5); got != 4 {
		t.Fatalf("Quantile(q=1.5) = %v, want max", got)
	}
	if got := Quantile(s, 0.5); got != 2.5 {
		t.Fatalf("Quantile(q=0.5) = %v, want 2.5", got)
	}
}

func TestSummarizeSmallSeries(t *testing.T) {
	// n=0 and n=1 must produce total, non-panicking summaries.
	d0 := Summarize(nil)
	if d0.N != 0 || d0.Median != 0 {
		t.Fatalf("Summarize(nil) = %+v", d0)
	}
	d1 := Summarize([]float64{7})
	if d1.N != 1 || d1.Min != 7 || d1.Max != 7 || d1.Median != 7 || d1.Q1 != 7 || d1.Q3 != 7 {
		t.Fatalf("Summarize(n=1) = %+v", d1)
	}
	if d1.Mean != 7 || d1.Std != 0 {
		t.Fatalf("Summarize(n=1) moments = %+v", d1)
	}
}

// TestQuantileProperties is the quick-based property test: for random
// finite sample sets and quantile requests, the interpolation must stay
// within [min, max], be monotone in q, and reproduce exact order
// statistics at the rank points.
func TestQuantileProperties(t *testing.T) {
	prop := func(raw []float64, qa, qb uint16) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitudes so sums can't overflow and interpolation
			// rounding can't drift past the extremes by an ulp.
			samples = append(samples, math.Mod(v, 1e9))
		}
		sort.Float64s(samples)
		q1 := float64(qa) / math.MaxUint16
		q2 := float64(qb) / math.MaxUint16
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(samples, q1), Quantile(samples, q2)
		if len(samples) == 0 {
			return v1 == 0 && v2 == 0
		}
		lo, hi := samples[0], samples[len(samples)-1]
		if v1 < lo || v1 > hi || v2 < lo || v2 > hi {
			return false
		}
		if v1 > v2 { // monotone in q
			return false
		}
		// Exact order statistics at the extremes.
		return Quantile(samples, 0) == lo && Quantile(samples, 1) == hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeProperties pins the five-number ordering on random data.
func TestSummarizeProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitudes so sums can't overflow and interpolation
			// rounding can't drift past the extremes by an ulp.
			samples = append(samples, math.Mod(v, 1e9))
		}
		d := Summarize(samples)
		if d.N != len(samples) {
			return false
		}
		if d.N == 0 {
			return d == Dist{}
		}
		return d.Min <= d.Q1 && d.Q1 <= d.Median && d.Median <= d.Q3 && d.Q3 <= d.Max &&
			d.Mean >= d.Min && d.Mean <= d.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
