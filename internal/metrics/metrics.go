// Package metrics implements the paper's Analysis module: per-packet
// lifecycle tracking across both chains (the Cross-chain Event Processor
// of Fig. 5), completion-status classification (Figs. 10/11), the
// 13-step latency breakdown (Fig. 12) and distribution summaries for the
// violin plots (Fig. 6).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Step is one of the 13 steps of a cross-chain transfer (Fig. 12).
type Step int

// The 13 steps, in execution order.
const (
	StepTransferBroadcast Step = iota + 1
	StepTransferExtraction
	StepTransferConfirmation
	StepTransferDataPull
	StepRecvBuild
	StepRecvBroadcast
	StepRecvExtraction
	StepRecvConfirmation
	StepRecvDataPull
	StepAckBuild
	StepAckBroadcast
	StepAckExtraction
	StepAckConfirmation

	// NumSteps is the count of lifecycle steps.
	NumSteps = int(StepAckConfirmation)
)

// String names the step as in Fig. 12.
func (s Step) String() string {
	names := [...]string{
		"Transfer broadcast", "Transfer msg. extraction", "Transfer confirmation",
		"Transfer data pull", "Recv build", "Recv broadcast", "Recv msg. extraction",
		"Recv confirmation", "Recv data pull", "Ack build", "Ack broadcast",
		"Ack msg. extraction", "Ack confirmation",
	}
	if s < 1 || int(s) > len(names) {
		return fmt.Sprintf("Step(%d)", int(s))
	}
	return names[s-1]
}

// Status is a transfer's completion classification (Figs. 10/11).
type Status int

// Completion states, from most to least complete.
const (
	// StatusCompleted: transfer, receive and acknowledge all recorded.
	StatusCompleted Status = iota + 1
	// StatusPartial: transfer and receive recorded, no acknowledgement.
	StatusPartial
	// StatusInitiated: only the transfer recorded.
	StatusInitiated
	// StatusNotCommitted: the transfer never reached the source chain.
	StatusNotCommitted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusPartial:
		return "partial"
	case StatusInitiated:
		return "initiated"
	case StatusNotCommitted:
		return "not committed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// MarshalText renders the status name, so map[Status]int completion
// tallies serialize with readable JSON keys in persisted run results.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a status name written by MarshalText.
func (s *Status) UnmarshalText(text []byte) error {
	for _, c := range []Status{StatusCompleted, StatusPartial, StatusInitiated, StatusNotCommitted} {
		if string(text) == c.String() {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("metrics: unknown status %q", text)
}

// PacketKey identifies one cross-chain transfer packet.
type PacketKey struct {
	SrcChain string
	Channel  string
	Sequence uint64
}

// packetRecord holds per-step completion times; zero = not reached
// (guarded by the set bitmap so time 0 is representable).
type packetRecord struct {
	at  [NumSteps]time.Duration
	set [NumSteps]bool
}

// Tracker is the Cross-chain Event Processor: it aggregates events from
// both blockchains and the relayer into per-packet lifecycles.
//
// Writers lock: one link's tracker receives records from actors on both
// of its chains' partitions. Readers (the analysis pass, the scenario
// driver's route polling) run with every partition quiesced and need no
// lock.
type Tracker struct {
	mu      sync.Mutex
	packets map[PacketKey]*packetRecord

	// requested counts transfers requested from the workload, including
	// those that never committed (no packet key ever existed).
	requested int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{packets: make(map[PacketKey]*packetRecord)}
}

// AddRequested registers transfers submitted by the workload before they
// reach the chain.
func (t *Tracker) AddRequested(n int) {
	t.mu.Lock()
	t.requested += n
	t.mu.Unlock()
}

// Requested reports the number of workload-requested transfers.
func (t *Tracker) Requested() int { return t.requested }

// Record marks a step reached for a packet at a virtual time. The
// earliest recorded time wins — in virtual-time order that is exactly
// the old first-write-wins rule (a redundant relayer's later duplicate
// completion never moves the time), stated in a form independent of the
// order concurrent partitions happen to call in.
func (t *Tracker) Record(key PacketKey, step Step, at time.Duration) {
	i := int(step) - 1
	if i < 0 || i >= NumSteps {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.packets[key]
	if !ok {
		rec = &packetRecord{}
		t.packets[key] = rec
	}
	if rec.set[i] && rec.at[i] <= at {
		return
	}
	rec.set[i] = true
	rec.at[i] = at
}

// StepTime returns when a packet reached a step.
func (t *Tracker) StepTime(key PacketKey, step Step) (time.Duration, bool) {
	rec, ok := t.packets[key]
	if !ok {
		return 0, false
	}
	i := int(step) - 1
	if !rec.set[i] {
		return 0, false
	}
	return rec.at[i], true
}

// Tracked reports the number of packets with any recorded step.
func (t *Tracker) Tracked() int { return len(t.packets) }

// Keys returns every tracked packet key in deterministic order (source
// chain, channel, then sequence) — trace synthesis iterates this to emit
// byte-identical per-packet spans across same-seed runs.
func (t *Tracker) Keys() []PacketKey {
	out := make([]PacketKey, 0, len(t.packets))
	for key := range t.packets {
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SrcChain != b.SrcChain {
			return a.SrcChain < b.SrcChain
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		return a.Sequence < b.Sequence
	})
	return out
}

// StatusOf classifies one packet.
func (t *Tracker) StatusOf(key PacketKey) Status {
	rec, ok := t.packets[key]
	if !ok {
		return StatusNotCommitted
	}
	switch {
	case rec.set[StepAckConfirmation-1]:
		return StatusCompleted
	case rec.set[StepRecvConfirmation-1]:
		return StatusPartial
	case rec.set[StepTransferConfirmation-1]:
		return StatusInitiated
	default:
		return StatusNotCommitted
	}
}

// CompletionCounts tallies packets by status (Figs. 10/11). Transfers
// requested but never tracked count as not committed.
func (t *Tracker) CompletionCounts() map[Status]int {
	out := map[Status]int{
		StatusCompleted: 0, StatusPartial: 0,
		StatusInitiated: 0, StatusNotCommitted: 0,
	}
	for key := range t.packets {
		out[t.StatusOf(key)]++
	}
	if t.requested > len(t.packets) {
		out[StatusNotCommitted] += t.requested - len(t.packets)
	}
	return out
}

// MergeCounts sums per-status tallies across trackers — the aggregation
// step for per-edge trackers in multi-chain topologies.
func MergeCounts(counts ...map[Status]int) map[Status]int {
	out := map[Status]int{
		StatusCompleted: 0, StatusPartial: 0,
		StatusInitiated: 0, StatusNotCommitted: 0,
	}
	for _, c := range counts {
		for s, n := range c {
			out[s] += n
		}
	}
	return out
}

// CompletedCount is a shortcut for the fully-completed tally.
func (t *Tracker) CompletedCount() int {
	n := 0
	for key := range t.packets {
		if t.StatusOf(key) == StatusCompleted {
			n++
		}
	}
	return n
}

// CompletedBetween counts packets fully completed in a time window.
func (t *Tracker) CompletedBetween(from, to time.Duration) int {
	n := 0
	for _, rec := range t.packets {
		if rec.set[StepAckConfirmation-1] {
			at := rec.at[StepAckConfirmation-1]
			if at >= from && at <= to {
				n++
			}
		}
	}
	return n
}

// CompletionTimes returns, for completed packets, the latency from
// transfer broadcast to acknowledgement confirmation.
func (t *Tracker) CompletionTimes() []time.Duration {
	var out []time.Duration
	for _, rec := range t.packets {
		if rec.set[StepTransferBroadcast-1] && rec.set[StepAckConfirmation-1] {
			out = append(out, rec.at[StepAckConfirmation-1]-rec.at[StepTransferBroadcast-1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StepCompletionCurve returns, for one step, the sorted absolute times at
// which each packet finished it — the curves of Figs. 12/13.
func (t *Tracker) StepCompletionCurve(step Step) []time.Duration {
	var out []time.Duration
	i := int(step) - 1
	for _, rec := range t.packets {
		if rec.set[i] {
			out = append(out, rec.at[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StepSpan reports the first and last completion times of a step.
func (t *Tracker) StepSpan(step Step) (first, last time.Duration, ok bool) {
	curve := t.StepCompletionCurve(step)
	if len(curve) == 0 {
		return 0, 0, false
	}
	return curve[0], curve[len(curve)-1], true
}

// Series is a named ordered collection of duration samples — e.g. the
// per-transfer arrival latencies of one hop of a multi-hop route.
type Series struct {
	Name    string
	Samples []time.Duration
}

// Add appends a sample.
func (s *Series) Add(d time.Duration) { s.Samples = append(s.Samples, d) }

// Len reports the sample count.
func (s Series) Len() int { return len(s.Samples) }

// Sum returns the total of all samples — e.g. cumulative downtime over
// a run's outage windows.
func (s Series) Sum() time.Duration {
	var total time.Duration
	for _, d := range s.Samples {
		total += d
	}
	return total
}

// Max returns the largest sample (0 when empty).
func (s Series) Max() time.Duration {
	var m time.Duration
	for _, d := range s.Samples {
		if d > m {
			m = d
		}
	}
	return m
}

// Dist summarizes the series in seconds.
func (s Series) Dist() Dist {
	samples := make([]float64, len(s.Samples))
	for i, d := range s.Samples {
		samples[i] = d.Seconds()
	}
	return Summarize(samples)
}

// Dist is a five-number-plus-moments summary used for violin plots.
type Dist struct {
	N         int
	Min, Max  float64
	Median    float64
	Q1, Q3    float64
	Mean, Std float64
}

// Summarize computes a Dist over samples.
func Summarize(samples []float64) Dist {
	d := Dist{N: len(samples)}
	if len(samples) == 0 {
		return d
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	d.Min, d.Max = s[0], s[len(s)-1]
	d.Median = Quantile(s, 0.5)
	d.Q1 = Quantile(s, 0.25)
	d.Q3 = Quantile(s, 0.75)
	var sum float64
	for _, v := range s {
		sum += v
	}
	d.Mean = sum / float64(len(s))
	var sq float64
	for _, v := range s {
		sq += (v - d.Mean) * (v - d.Mean)
	}
	if len(s) > 1 {
		d.Std = math.Sqrt(sq / float64(len(s)-1))
	}
	return d
}

// Quantile interpolates the q-th quantile of ascending-sorted samples
// (linear interpolation between closest ranks). Edge cases are total:
// an empty series yields 0, a single sample is every quantile of
// itself, and q is clamped to [0, 1] — out-of-range requests previously
// indexed outside the slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a Dist compactly.
func (d Dist) String() string {
	return fmt.Sprintf("n=%d min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f mean=%.1f std=%.1f",
		d.N, d.Min, d.Q1, d.Median, d.Q3, d.Max, d.Mean, d.Std)
}
