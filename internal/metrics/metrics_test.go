package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func key(seq uint64) PacketKey {
	return PacketKey{SrcChain: "a", Channel: "channel-0", Sequence: seq}
}

func TestRecordFirstWriteWins(t *testing.T) {
	tr := NewTracker()
	tr.Record(key(1), StepRecvBuild, 10*time.Second)
	tr.Record(key(1), StepRecvBuild, 20*time.Second) // redundant relayer
	at, ok := tr.StepTime(key(1), StepRecvBuild)
	if !ok || at != 10*time.Second {
		t.Fatalf("at = %v ok=%v", at, ok)
	}
	if _, ok := tr.StepTime(key(1), StepAckBuild); ok {
		t.Fatal("unset step reported")
	}
	if _, ok := tr.StepTime(key(9), StepAckBuild); ok {
		t.Fatal("unknown packet reported")
	}
}

func TestStatusClassification(t *testing.T) {
	tr := NewTracker()
	tr.AddRequested(5)
	// seq 1: completed; seq 2: partial; seq 3: initiated; seq 4: broadcast only.
	tr.Record(key(1), StepTransferConfirmation, 1)
	tr.Record(key(1), StepRecvConfirmation, 2)
	tr.Record(key(1), StepAckConfirmation, 3)
	tr.Record(key(2), StepTransferConfirmation, 1)
	tr.Record(key(2), StepRecvConfirmation, 2)
	tr.Record(key(3), StepTransferConfirmation, 1)
	tr.Record(key(4), StepTransferBroadcast, 1)
	counts := tr.CompletionCounts()
	if counts[StatusCompleted] != 1 || counts[StatusPartial] != 1 ||
		counts[StatusInitiated] != 1 || counts[StatusNotCommitted] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if tr.StatusOf(key(9)) != StatusNotCommitted {
		t.Fatal("unknown packet not NotCommitted")
	}
}

func TestCompletionTimesAndWindow(t *testing.T) {
	tr := NewTracker()
	tr.Record(key(1), StepTransferBroadcast, 5*time.Second)
	tr.Record(key(1), StepAckConfirmation, 30*time.Second)
	tr.Record(key(2), StepTransferBroadcast, 5*time.Second)
	tr.Record(key(2), StepAckConfirmation, 60*time.Second)
	lats := tr.CompletionTimes()
	if len(lats) != 2 || lats[0] != 25*time.Second || lats[1] != 55*time.Second {
		t.Fatalf("lats = %v", lats)
	}
	if n := tr.CompletedBetween(0, 40*time.Second); n != 1 {
		t.Fatalf("window count = %d", n)
	}
	first, last, ok := tr.StepSpan(StepAckConfirmation)
	if !ok || first != 30*time.Second || last != 60*time.Second {
		t.Fatalf("span = %v..%v", first, last)
	}
	if _, _, ok := tr.StepSpan(StepRecvBuild); ok {
		t.Fatal("empty step had a span")
	}
}

func TestStepNamesCoverAll13(t *testing.T) {
	seen := map[string]bool{}
	for s := Step(1); int(s) <= NumSteps; s++ {
		name := s.String()
		if seen[name] {
			t.Fatalf("duplicate step name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 13 {
		t.Fatalf("steps = %d, want 13", len(seen))
	}
	if Step(99).String() == "" {
		t.Fatal("out-of-range name empty")
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize(nil)
	if d.N != 0 {
		t.Fatal("empty dist")
	}
	d = Summarize([]float64{4, 1, 3, 2})
	if d.Min != 1 || d.Max != 4 || d.Median != 2.5 || d.Mean != 2.5 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Q1 >= d.Median || d.Q3 <= d.Median {
		t.Fatalf("quartiles = %+v", d)
	}
	single := Summarize([]float64{7})
	if single.Median != 7 || single.Std != 0 {
		t.Fatalf("single = %+v", single)
	}
}

// Property: Summarize is order-invariant and bounds hold.
func TestSummarizeProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if x != x { // NaN
				return true
			}
		}
		d := Summarize(xs)
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		d2 := Summarize(rev)
		return d == d2 && d.Min <= d.Q1 && d.Q1 <= d.Median &&
			d.Median <= d.Q3 && d.Q3 <= d.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "hop-1"}
	if s.Len() != 0 || s.Max() != 0 {
		t.Fatalf("empty series: len=%d max=%v", s.Len(), s.Max())
	}
	s.Add(2 * time.Second)
	s.Add(5 * time.Second)
	s.Add(3 * time.Second)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != 5*time.Second {
		t.Fatalf("max = %v", s.Max())
	}
	d := s.Dist()
	if d.N != 3 || d.Min != 2 || d.Max != 5 {
		t.Fatalf("dist = %+v", d)
	}
}
