package topo

import (
	"testing"
	"time"

	"ibcbench/internal/metrics"
)

// TestHubSharedScanSingleDecodePass pins the tentpole property of the
// shared event index: a hub chain with two links and two relayers per
// edge has four co-located relayer endpoints, yet every committed block
// is decoded exactly once, and each link's packets still reach only its
// own channel's relayers.
func TestHubSharedScanSingleDecodePass(t *testing.T) {
	d, err := Deploy(Hub(2), DeployConfig{Seed: 5, RelayersPerEdge: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Links[0].Forward().RunConstantRate(5, 3)
	d.Links[1].Forward().RunConstantRate(5, 3)
	d.Start()
	if err := d.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, c := range d.Chains {
		h, scans := uint64(c.Store.Height()), c.Events.ScanCount()
		if h == 0 {
			t.Fatalf("chain %d produced no blocks", i)
		}
		if scans != h {
			t.Fatalf("chain %s: %d decode passes over %d blocks (want exactly one per block)",
				c.ID, scans, h)
		}
	}
	// Per-channel delivery stayed correct: each edge completed all of its
	// own transfers, none of its neighbour's.
	for _, l := range d.Links {
		counts := l.Tracker.CompletionCounts()
		want := l.Forward().Stats().Requested
		if want == 0 || counts[metrics.StatusCompleted] != want {
			t.Fatalf("edge %d: completion %v, want %d completed", l.Index, counts, want)
		}
		if got := l.Tracker.Tracked(); got != want {
			t.Fatalf("edge %d tracked %d packets, want %d (cross-channel leakage?)",
				l.Index, got, want)
		}
	}
}
