// Scenario: a topology bundled with a workload mix — constant per-edge
// transfer rates plus multi-hop routes executed as sequential transfers —
// and run options, producing per-edge and aggregate reports.
package topo

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/metrics"
	"ibcbench/internal/obs"
	"ibcbench/internal/relayer"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/workload"
)

// Route is one multi-hop transfer flow: Transfers tokens moved along the
// node path. The default (sequential) mode submits each leg as its own
// user transfer once the previous leg's transfers have fully completed
// on its edge — the way deployments without packet forwarding chain
// ICS-20 transfers. Forwarded mode instead issues a single user transfer
// carrying a nested forward memo; the packet-forward middleware on each
// intermediate chain emits hop 2+ within the receiving block and the
// origin's acknowledgement settles only when the whole route does.
type Route struct {
	// Path is the node sequence; consecutive nodes must share an edge.
	Path []int
	// Transfers is the batch size moved along the path.
	Transfers int
	// Forwarded selects native packet forwarding over sequential legs.
	Forwarded bool
	// TimeoutBlocks overrides the middleware's per-hop timeout margin in
	// Forwarded mode (0 = pfm default). Tiny values inject hop timeouts
	// for refund-unwinding experiments.
	TimeoutBlocks int64
}

// RouteReceiver names the final recipient account of route idx, the
// account whose balance holds the delivered (possibly nested) voucher in
// Forwarded mode.
func RouteReceiver(idx int) string { return fmt.Sprintf("route-r%d-recv", idx) }

// Scenario bundles everything one experiment execution needs.
type Scenario struct {
	Name     string
	Topology Topology
	Deploy   DeployConfig
	// EdgeRates maps edge index -> constant input rate (requests/second,
	// A -> B direction) sustained for Windows block windows.
	EdgeRates map[int]int
	// Windows is the number of constant-rate submission windows.
	Windows int
	// Routes are multi-hop flows started at scenario begin.
	Routes []Route
	// Chaos is the fault timeline injected during the run; the applied
	// faults are folded into the result.
	Chaos chaos.Timeline
	// RecordCurves includes per-edge cleared-backlog curves in the
	// result (one sample per completed packet — skip for large sweeps).
	RecordCurves bool
	// Until is the virtual run deadline (0 = derived from the workload).
	Until time.Duration
	// ExtraSettle extends the derived deadline — room for timeout refunds
	// and backlog clearing to quiesce before post-run invariant checks.
	// Ignored when Until is set explicitly.
	ExtraSettle time.Duration
}

// EdgeReport is the per-edge slice of a scenario result.
type EdgeReport struct {
	Edge       int
	From, To   string
	Completion map[metrics.Status]int
	Throughput float64 // completed transfers per virtual second on this edge
	// Latency summarizes per-packet completion latencies (seconds, from
	// transfer broadcast to acknowledgement confirmation).
	Latency  metrics.Dist
	Workload workload.Stats
	Relayers []relayer.Stats
	// Cleared is the edge's cleared-backlog curve — the sorted absolute
	// times each packet's acknowledgement confirmed — recorded when the
	// scenario sets RecordCurves (fault-window experiments read the
	// post-outage catch-up from it).
	Cleared metrics.Series
	// Failover reports the edge's standby supervision (nil without one).
	Failover *FailoverReport
}

// RouteReport is the per-route slice of a scenario result.
type RouteReport struct {
	Route     int
	Path      []int
	Forwarded bool
	Transfers int
	// Completed reports whether every transfer's packet lifecycle settled
	// end to end (in Forwarded mode, the origin ack — success or unwound
	// refund — confirmed).
	Completed bool
	// Latency is virtual time from route start to full completion.
	Latency time.Duration
	// Hops holds per-hop arrival series: sample k of series i is the
	// latency from route start until a transfer's hop-i packet was
	// confirmed received on chain Path[i+1].
	Hops []metrics.Series
}

// Provenance identifies what produced a Result: filled at archive time
// (the `-store` and experiment-service ingest paths), never during the
// run itself, so same-seed results stay byte-identical whether or not
// they are archived.
type Provenance struct {
	// Commit is the VCS revision of the tree that ran the scenario.
	Commit string `json:",omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:",omitempty"`
	// Time is the wall-clock archive timestamp (RFC3339).
	Time string `json:",omitempty"`
}

// Result aggregates one scenario execution.
type Result struct {
	Name     string
	Seed     int64
	Duration time.Duration
	// Blocks is the total block count committed across the deployment's
	// chains; BlocksPerSec normalizes by the virtual duration. Together
	// with per-edge Latency they make validator-set size a measurable
	// experiment axis (the votescale experiment sweeps it).
	Blocks       int64
	BlocksPerSec float64
	Edges        []EdgeReport
	// Total merges the per-edge completion counts.
	Total map[metrics.Status]int
	// Throughput is aggregate completed transfers per virtual second.
	Throughput float64
	// RoutesCompleted counts routes whose every leg fully completed.
	RoutesCompleted int
	// Routes reports each multi-hop route's mode, latency and hop series.
	Routes []RouteReport
	// Faults is the injected-fault log, in application order.
	Faults []chaos.Applied
	// Metrics is the observability registry snapshot (nil unless the
	// scenario was deployed with DeployConfig.Obs); omitted from JSON so
	// uninstrumented results stay byte-identical to earlier versions.
	Metrics *obs.Snapshot `json:",omitempty"`
	// Provenance records what produced the result — set only when the
	// result is archived into an experiment store, so plain runs stay
	// byte-identical to earlier versions.
	Provenance *Provenance `json:",omitempty"`
}

// LiveConfig enables live run telemetry: Hook receives a progress
// snapshot every Interval of virtual time (default 4 block intervals)
// plus one final sample when the run deadline is reached. The hook
// runs on the scheduler's goroutine during the simulation — it must
// not call back into the deployment — and typically POSTs the status
// to an experiment service's /api/live endpoint.
type LiveConfig struct {
	// Interval is the virtual-time publishing period (0 = default).
	Interval time.Duration
	// Hook consumes each snapshot.
	Hook func(obs.LiveStatus)
}

// liveStatus samples the deployment's aggregate progress. Read-only:
// chain heights and tracker counts, plus the registry snapshot when
// instrumented.
func (d *Deployment) liveStatus(name string, seed int64) obs.LiveStatus {
	st := obs.LiveStatus{Name: name, Seed: seed, Now: d.Sched.Now()}
	for _, c := range d.Chains {
		st.Blocks += c.Store.Height()
	}
	for _, l := range d.Links {
		st.Tracked += l.Tracker.Tracked()
		st.Completed += l.Tracker.CompletedCount()
	}
	st.Backlog = st.Tracked - st.Completed
	if d.Obs != nil {
		st.Snapshot = d.Obs.Reg.Snapshot()
	}
	return st
}

// routeRun tracks one in-flight multi-hop route.
type routeRun struct {
	route Route
	idx   int
	hop   int // current leg index (Path[hop] -> Path[hop+1])
	done  bool

	startedAt time.Duration
	doneAt    time.Duration
	// legs/links record the generators and edges the route used, for
	// hop-latency attribution (one per leg sequentially; only the first
	// in Forwarded mode — later hops are middleware-emitted).
	legs  []*workload.Generator
	links []*Link
}

// Run deploys the scenario's topology and drives the workload mix to the
// deadline, returning per-edge and aggregate reports.
func (s Scenario) Run(seed int64) (*Result, error) {
	res, _, err := s.RunDeployed(seed)
	return res, err
}

// RunDeployed is Run exposing the finished deployment alongside the
// result, so callers (the scenario assertion engine) can inspect chain
// state, trackers and links after the deadline. The returned deployment
// is quiescent — its scheduler has drained to the deadline — and must be
// treated as read-only.
func (s Scenario) RunDeployed(seed int64) (*Result, *Deployment, error) {
	d, err := Deploy(s.Topology, s.withSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	windows := s.Windows
	if windows <= 0 {
		windows = 10
	}
	for _, edge := range sortedKeys(s.EdgeRates) {
		if edge < 0 || edge >= len(d.Links) {
			return nil, nil, fmt.Errorf("topo: EdgeRates references edge %d of %d", edge, len(d.Links))
		}
		d.Links[edge].Forward().RunConstantRate(s.EdgeRates[edge], windows)
	}
	runs := make([]*routeRun, 0, len(s.Routes))
	for i, rt := range s.Routes {
		if err := s.validateRoute(rt); err != nil {
			return nil, nil, err
		}
		rr := &routeRun{route: rt, idx: i}
		runs = append(runs, rr)
		// Route drivers run on the global scheduler. Staggered off the
		// constant-rate submission grid (w·block+1ms) so a route start
		// never shares a timestamp with partition-local workload events —
		// cross-scheduler ties at one instant are the only place the
		// parallel runner's dispatch order could diverge from serial.
		startAt := 1500*time.Microsecond + time.Duration(i)*time.Microsecond
		if rt.Forwarded {
			d.Sched.At(startAt, func() { d.startForwardedRoute(rr) })
		} else {
			d.Sched.At(startAt, func() { d.startLeg(rr) })
		}
	}
	var inj *chaos.Injector
	if !s.Chaos.Empty() {
		var err error
		inj, err = chaos.Inject(d.Sched, d, s.Chaos)
		if err != nil {
			return nil, nil, err
		}
	}
	live := s.Deploy.Live
	if live != nil && live.Hook != nil {
		iv := live.Interval
		if iv <= 0 {
			iv = 4 * simconf.MinBlockInterval
		}
		d.Sched.Tick(iv, func(*sim.Ticker) { live.Hook(d.liveStatus(s.Name, seed)) })
	}
	d.Start()
	if err := d.Run(s.deadline(windows)); err != nil {
		return nil, nil, err
	}
	if live != nil && live.Hook != nil {
		// One final sample so the last published state reflects the
		// finished run rather than the last tick.
		live.Hook(d.liveStatus(s.Name, seed))
	}
	res := s.analyze(d, seed, runs)
	if inj != nil {
		res.Faults = inj.Log().Applied
	}
	if d.Obs != nil {
		foldObs(d, res, runs)
	}
	return res, d, nil
}

func (s Scenario) withSeed(seed int64) DeployConfig {
	cfg := s.Deploy
	cfg.Seed = seed
	return cfg
}

func (s Scenario) validateRoute(rt Route) error {
	if len(rt.Path) < 2 {
		return fmt.Errorf("topo: route path %v too short", rt.Path)
	}
	if rt.Transfers <= 0 {
		return fmt.Errorf("topo: route %v has no transfers", rt.Path)
	}
	for i := 0; i+1 < len(rt.Path); i++ {
		if _, ok := s.Topology.EdgeBetween(rt.Path[i], rt.Path[i+1]); !ok {
			return fmt.Errorf("topo: route %v hops %d->%d without an edge",
				rt.Path, rt.Path[i], rt.Path[i+1])
		}
	}
	return nil
}

// deadline derives a generous virtual deadline covering the constant-rate
// windows and every route leg's end-to-end latency.
func (s Scenario) deadline(windows int) time.Duration {
	if s.Until > 0 {
		return s.Until
	}
	d := time.Duration(windows+8) * simconf.MinBlockInterval * 4
	for _, rt := range s.Routes {
		// ~12 block windows per leg bounds one ack'd transfer comfortably.
		legs := time.Duration(len(rt.Path)-1) * 12 * simconf.MinBlockInterval * 2
		if legs > d {
			d = legs
		}
	}
	// Leave recovery room after the last injected fault: detection,
	// backlog clearing and timeout refunds all happen behind it.
	for _, ev := range s.Chaos.Events {
		if after := ev.At + 16*simconf.MinBlockInterval; after > d {
			d = after
		}
	}
	return d + s.ExtraSettle
}

// startLeg submits one route leg on a dedicated generator and polls the
// edge tracker until every one of the leg's own packets completes, then
// advances to the next hop. Attribution goes through the generator's
// PacketKeys, so concurrent edge-rate traffic on the same channel never
// advances a leg early.
func (d *Deployment) startLeg(rr *routeRun) {
	if rr.hop == 0 {
		rr.startedAt = d.Sched.Now()
	}
	from, to := rr.route.Path[rr.hop], rr.route.Path[rr.hop+1]
	link, _ := d.LinkBetween(from, to)
	gen := link.newRouteGenerator(from, rr.idx, rr.hop)
	rr.legs = append(rr.legs, gen)
	rr.links = append(rr.links, link)
	gen.SubmitBatch(rr.route.Transfers)
	d.Sched.Tick(simconf.MinBlockInterval, func(t *sim.Ticker) {
		completed := 0
		for _, key := range gen.PacketKeys() {
			if link.Tracker.StatusOf(key) == metrics.StatusCompleted {
				completed++
			}
		}
		if completed < rr.route.Transfers {
			return
		}
		t.Cancel()
		rr.hop++
		if rr.hop+1 >= len(rr.route.Path) {
			rr.done = true
			rr.doneAt = d.Sched.Now()
			return
		}
		d.startLeg(rr)
	})
}

// startForwardedRoute submits the route's single user transfer batch with
// a nested forward memo on the first edge; intermediate hops are emitted
// by each chain's packet-forward middleware. The route completes when the
// origin acknowledgements settle — which the middleware holds open until
// the final hop is received (or a failed hop unwinds into a refund).
func (d *Deployment) startForwardedRoute(rr *routeRun) {
	rr.startedAt = d.Sched.Now()
	path := rr.route.Path
	link, _ := d.LinkBetween(path[0], path[1])
	gen := link.newRouteGenerator(path[0], rr.idx, 0)
	memo, err := d.ForwardMemo(path, RouteReceiver(rr.idx), rr.route.TimeoutBlocks)
	if err != nil {
		return // unreachable: routes are validated before scheduling
	}
	gen.Memo = memo
	rr.legs = append(rr.legs, gen)
	rr.links = append(rr.links, link)
	gen.SubmitBatch(rr.route.Transfers)
	d.Sched.Tick(simconf.MinBlockInterval, func(t *sim.Ticker) {
		completed := 0
		for _, key := range gen.PacketKeys() {
			if link.Tracker.StatusOf(key) == metrics.StatusCompleted {
				completed++
			}
		}
		if completed < rr.route.Transfers {
			return
		}
		t.Cancel()
		rr.done = true
		rr.doneAt = d.Sched.Now()
	})
}

// sortedKeys returns map keys in ascending order for deterministic
// iteration.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func (s Scenario) analyze(d *Deployment, seed int64, runs []*routeRun) *Result {
	now := d.Sched.Now()
	res := &Result{
		Name:     s.Name,
		Seed:     seed,
		Duration: now,
	}
	for _, c := range d.Chains {
		res.Blocks += c.Store.Height()
	}
	if now > 0 {
		res.BlocksPerSec = float64(res.Blocks) / now.Seconds()
	}
	var perEdge []map[metrics.Status]int
	for _, l := range d.Links {
		counts := l.Tracker.CompletionCounts()
		perEdge = append(perEdge, counts)
		rep := EdgeReport{
			Edge:       l.Index,
			From:       l.Pair.A.ID,
			To:         l.Pair.B.ID,
			Completion: counts,
		}
		if now > 0 {
			rep.Throughput = float64(counts[metrics.StatusCompleted]) / now.Seconds()
		}
		latencies := l.Tracker.CompletionTimes()
		samples := make([]float64, len(latencies))
		for i, lat := range latencies {
			samples[i] = lat.Seconds()
		}
		rep.Latency = metrics.Summarize(samples)
		if s.RecordCurves {
			rep.Cleared = metrics.Series{
				Name:    "cleared",
				Samples: l.Tracker.StepCompletionCurve(metrics.StepAckConfirmation),
			}
		}
		gens := l.legGens
		if l.fwd != nil {
			gens = append([]*workload.Generator{l.fwd}, gens...)
		}
		if l.rev != nil {
			gens = append([]*workload.Generator{l.rev}, gens...)
		}
		for _, g := range gens {
			st := g.Stats()
			rep.Workload.Requested += st.Requested
			rep.Workload.Submitted += st.Submitted
			rep.Workload.Failed += st.Failed
		}
		for _, r := range l.Relayers {
			rep.Relayers = append(rep.Relayers, r.Stats())
		}
		if l.Failover != nil {
			rep.Failover = l.Failover.Report()
		}
		res.Edges = append(res.Edges, rep)
	}
	res.Total = metrics.MergeCounts(perEdge...)
	if now > 0 {
		res.Throughput = float64(res.Total[metrics.StatusCompleted]) / now.Seconds()
	}
	for _, rr := range runs {
		if rr.done {
			res.RoutesCompleted++
		}
		res.Routes = append(res.Routes, d.routeReport(rr))
	}
	return res
}

// routeReport assembles one route's report, attributing per-hop arrival
// latencies: sequential legs use each leg generator's own packets;
// forwarded routes follow the middleware's hop mapping from the first
// leg's packets across the intermediate chains.
func (d *Deployment) routeReport(rr *routeRun) RouteReport {
	rep := RouteReport{
		Route:     rr.idx,
		Path:      rr.route.Path,
		Forwarded: rr.route.Forwarded,
		Transfers: rr.route.Transfers,
		Completed: rr.done,
	}
	if rr.done {
		rep.Latency = rr.doneAt - rr.startedAt
	}
	if len(rr.legs) == 0 {
		return rep
	}
	hopSeries := func(hop int, keys []metrics.PacketKey, tracker *metrics.Tracker) metrics.Series {
		s := metrics.Series{Name: fmt.Sprintf("hop-%d", hop+1)}
		for _, key := range keys {
			if at, ok := tracker.StepTime(key, metrics.StepRecvConfirmation); ok {
				s.Add(at - rr.startedAt)
			}
		}
		return s
	}
	if !rr.route.Forwarded {
		for i, gen := range rr.legs {
			rep.Hops = append(rep.Hops, hopSeries(i, gen.PacketKeys(), rr.links[i].Tracker))
		}
		return rep
	}
	path := rr.route.Path
	keys := rr.legs[0].PacketKeys()
	rep.Hops = append(rep.Hops, hopSeries(0, keys, rr.links[0].Tracker))
	for j := 1; j+1 < len(path); j++ {
		mid := d.Chains[path[j]]
		inLink, _ := d.LinkBetween(path[j-1], path[j])
		outLink, _ := d.LinkBetween(path[j], path[j+1])
		if inLink == nil || outLink == nil {
			break
		}
		inChan := inLink.ChannelFrom(path[j]) // dest channel of hop-j packets
		next := make([]metrics.PacketKey, 0, len(keys))
		for _, key := range keys {
			outChan, outSeq, ok := mid.Forward.NextHop(inChan, key.Sequence)
			if !ok {
				continue
			}
			next = append(next, metrics.PacketKey{SrcChain: mid.ID, Channel: outChan, Sequence: outSeq})
		}
		keys = next
		rep.Hops = append(rep.Hops, hopSeries(j, keys, outLink.Tracker))
	}
	return rep
}

// Render writes the result as an aligned per-edge table plus totals.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== scenario %s (seed %d) ==\n", r.Name, r.Seed)
	fmt.Fprintf(w, "duration: %v  blocks: %d (%.2f blocks/s)\n", r.Duration, r.Blocks, r.BlocksPerSec)
	fmt.Fprintf(w, "%-6s %-16s %-10s %-9s %-10s %-13s %-8s\n",
		"edge", "link", "completed", "partial", "initiated", "notcommitted", "TFPS")
	for _, e := range r.Edges {
		fmt.Fprintf(w, "%-6d %-16s %-10d %-9d %-10d %-13d %-8.2f\n",
			e.Edge, e.From+"~"+e.To,
			e.Completion[metrics.StatusCompleted], e.Completion[metrics.StatusPartial],
			e.Completion[metrics.StatusInitiated], e.Completion[metrics.StatusNotCommitted],
			e.Throughput)
	}
	for _, e := range r.Edges {
		if e.Failover == nil {
			continue
		}
		fmt.Fprintf(w, "edge %d failover: takeovers=%d downtime=%v (%d outages) standby recv=%d acks=%d timeouts=%d\n",
			e.Edge, e.Failover.Takeovers, e.Failover.Downtime.Sum(), e.Failover.Downtime.Len(),
			e.Failover.Standby.RecvDelivered, e.Failover.Standby.AcksDelivered,
			e.Failover.Standby.TimeoutsDelivered)
	}
	fmt.Fprintf(w, "total: completed=%d partial=%d initiated=%d notcommitted=%d (%.2f TFPS)\n",
		r.Total[metrics.StatusCompleted], r.Total[metrics.StatusPartial],
		r.Total[metrics.StatusInitiated], r.Total[metrics.StatusNotCommitted], r.Throughput)
	for _, f := range r.Faults {
		fmt.Fprintf(w, "fault @%v: %s\n", f.At, f.Desc)
	}
	if r.RoutesCompleted > 0 {
		fmt.Fprintf(w, "routes completed: %d\n", r.RoutesCompleted)
	}
	for _, rt := range r.Routes {
		mode := "sequential"
		if rt.Forwarded {
			mode = "forwarded"
		}
		fmt.Fprintf(w, "route %d %v (%s, %d transfers): completed=%v latency=%v",
			rt.Route, rt.Path, mode, rt.Transfers, rt.Completed, rt.Latency)
		for _, h := range rt.Hops {
			fmt.Fprintf(w, " %s@%v", h.Name, h.Max())
		}
		fmt.Fprintln(w)
	}
}
