// Failover: per-edge standby relayers with health-probe supervision.
//
// Each supervised edge runs its primary relayers plus one passive
// standby that is deployed (accounts funded, full nodes attached) but
// not subscribed. A supervisor process on the standby's machine pings
// the primary's host over the emulated network every probe interval; a
// partitioned host drops the probe and a paused process answers nothing,
// so either fault starves the pong stream. Once no pong has arrived for
// the detection window the standby takes over: it subscribes to both
// chains, and the relayer's gap-driven clearing — one indexed
// QueryBlockEvents per missed height against the chain's shared event
// index — rebuilds the entire backlog without a per-relayer block
// re-scan, which is what makes takeover cheap.
package topo

import (
	"time"

	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/relayer"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
)

// FailoverReport is the per-edge failover slice of a scenario result.
type FailoverReport struct {
	// Takeovers counts standby activations.
	Takeovers int
	// Downtime holds one sample per outage window: detection until the
	// primary answered probes again (or the run ended).
	Downtime metrics.Series
	// Standby is the standby relayer's work counters (all zero if it
	// never activated).
	Standby relayer.Stats
}

// Failover supervises one edge's primary relayer with a standby.
type Failover struct {
	dep     *Deployment
	link    *Link
	primary *relayer.Relayer
	standby *relayer.Relayer
	host    netem.Host
	window  time.Duration
	// sched owns the supervisor's events: the scheduler of the standby
	// side's partition (the standby always sits with side B), so probes
	// and pongs run on the clock that owns the supervisor's host.
	sched *sim.Scheduler

	lastPong  time.Duration
	active    bool
	down      bool
	downSince time.Duration

	takeovers  int
	takeoverAt []time.Duration
	downtime   metrics.Series
}

// newFailover wires a supervisor for the link's primary (relayer 0) and
// standby, probing from the standby's host every fifth of a block
// interval.
func newFailover(d *Deployment, l *Link, window time.Duration) *Failover {
	f := &Failover{
		dep:     d,
		link:    l,
		primary: l.Relayers[0],
		standby: l.Standby,
		host:    l.Standby.Host(),
		window:  window,
		sched:   d.schedFor(l.Spec.B),
	}
	f.downtime.Name = "downtime"
	interval := simconf.MinBlockInterval / 5
	f.sched.Tick(interval, func(*sim.Ticker) { f.probe() })
	return f
}

// probe sends one health ping and evaluates the detection window.
func (f *Failover) probe() {
	now := f.sched.Now()
	f.dep.Net.Send(f.host, f.primary.Host(), func() {
		if f.primary.Stopped() {
			return // crashed process: no pong
		}
		f.dep.Net.Send(f.primary.Host(), f.host, func() { f.pong() })
	})
	if now-f.lastPong <= f.window {
		return
	}
	if !f.down {
		f.down = true
		f.downSince = now
	}
	if !f.active {
		f.active = true
		f.takeovers++
		f.takeoverAt = append(f.takeoverAt, now)
		// Takeover: subscribe the standby; its first frames arrive with
		// a height gap covering everything it missed, so the clearing
		// pass rebuilds the backlog from the shared event index.
		f.standby.Start()
	}
}

// pong records a healthy primary, closing any open outage window.
func (f *Failover) pong() {
	now := f.sched.Now()
	f.lastPong = now
	if f.down {
		f.downtime.Add(now - f.downSince)
		f.down = false
	}
}

// Active reports whether the standby has taken over.
func (f *Failover) Active() bool { return f.active }

// TakeoverTimes returns the virtual times of each standby activation —
// trace export marks them as instants on the supervised edge's track.
func (f *Failover) TakeoverTimes() []time.Duration { return f.takeoverAt }

// Report snapshots the failover metrics, closing an outage still open
// at the end of the run.
func (f *Failover) Report() *FailoverReport {
	rep := &FailoverReport{
		Takeovers: f.takeovers,
		Downtime:  f.downtime,
		Standby:   f.standby.Stats(),
	}
	if f.down {
		rep.Downtime.Add(f.sched.Now() - f.downSince)
	}
	return rep
}
