package topo

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/geo"
	"ibcbench/internal/metrics"
)

// TestGeoDeploymentHeterogeneousPaths pins the region model end to end:
// chains placed in different regions of an asymmetric matrix see the
// matrix latencies host-pair by host-pair (validators, relayer machines,
// relayer full nodes and workload drivers included), intra-region pairs
// see the LAN path, and transfers still complete over the heterogeneous
// network.
func TestGeoDeploymentHeterogeneousPaths(t *testing.T) {
	tp := TwoChain()
	tp.Chains[0].Region = "eu-west"
	tp.Chains[1].Region = "ap-south"
	d, err := Deploy(tp, DeployConfig{Seed: 5, Geo: geo.ThreeRegionWAN()})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.RegionOf(0); got != "eu-west" {
		t.Fatalf("chain 0 region %q", got)
	}
	h0 := d.Chains[0].Hosts()
	h1 := d.Chains[1].Hosts()
	// Cross-region paths carry the asymmetric matrix values.
	if got := d.Net.Latency(h0[0], h1[0]); got != 90*time.Millisecond {
		t.Fatalf("eu->ap latency %v, want 90ms", got)
	}
	if got := d.Net.Latency(h1[0], h0[0]); got != 95*time.Millisecond {
		t.Fatalf("ap->eu latency %v, want 95ms", got)
	}
	// Intra-region pairs (two validators of one chain) are LAN-like.
	if got := d.Net.Latency(h0[0], h0[1]); got != 200*time.Microsecond {
		t.Fatalf("intra-region latency %v, want 200µs", got)
	}
	// The relayer machine sits on side A (eu-west): local to chain 0's
	// full nodes, a WAN hop from chain 1.
	rh := d.Links[0].Relayers[0].Host()
	if got := d.Net.Latency(rh, h0[len(h0)-1]); got != 200*time.Microsecond {
		t.Fatalf("relayer->local fullnode latency %v", got)
	}
	if got := d.Net.Latency(rh, h1[0]); got != 90*time.Millisecond {
		t.Fatalf("relayer->remote chain latency %v", got)
	}
	// Workload drivers land in the source chain's region.
	gen := d.Links[0].Forward()
	if got := d.Net.Latency(gen.Host(), h0[0]); got != 200*time.Microsecond {
		t.Fatalf("workload->source latency %v", got)
	}
	// The heterogeneous network still completes transfers end to end.
	gen.SubmitBatch(4)
	d.Start()
	if err := d.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := d.Links[0].Tracker.CompletionCounts()[metrics.StatusCompleted]; got != 4 {
		t.Fatalf("completed %d of 4 under geo model", got)
	}
}

// TestGeoRoundRobinAndValidation covers default placement and region
// validation errors.
func TestGeoRoundRobinAndValidation(t *testing.T) {
	d, err := Deploy(Hub(2), DeployConfig{Seed: 1, Geo: geo.ThreeRegionWAN()})
	if err != nil {
		t.Fatal(err)
	}
	want := []geo.Region{"eu-west", "us-east", "ap-south"}
	for i := 0; i < 3; i++ {
		if got := d.RegionOf(i); got != want[i] {
			t.Fatalf("chain %d region %q, want %q", i, got, want[i])
		}
	}
	bad := TwoChain()
	bad.Chains[0].Region = "atlantis"
	if _, err := Deploy(bad, DeployConfig{Geo: geo.ThreeRegionWAN()}); err == nil {
		t.Fatal("unknown region accepted")
	}
}

// TestPartitionTimeoutRefund is the regression test for the silent-drop
// bug: packets in flight while the relayer is partitioned off must
// surface as relayer timeouts with sender refunds once the partition
// heals — not hang forever because the dropped event frames were never
// re-scanned. The workload commits on the source chain during a
// whole-link blackout; the timeout height passes mid-partition; after
// the heal the relayer's gap-driven clearing rebuilds the backlog and
// proves the timeouts.
func TestPartitionTimeoutRefund(t *testing.T) {
	const transfers = 5
	d, err := Deploy(TwoChain(), DeployConfig{Seed: 11, ClearIntervalBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := d.Links[0].Forward()
	gen.TimeoutBlocks = 8 // expires on the destination mid-partition
	tl := chaos.Timeline{Events: []chaos.Event{
		{At: time.Millisecond, Kind: chaos.PartitionLink, Edge: 0, Relayer: -1},
		{At: 150 * time.Second, Kind: chaos.HealLink, Edge: 0, Relayer: -1},
	}}
	if _, err := chaos.Inject(d.Sched, d, tl); err != nil {
		t.Fatal(err)
	}
	d.Sched.At(time.Second, func() { gen.SubmitBatch(transfers) })
	d.Start()
	if err := d.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st := d.Links[0].Relayers[0].Stats()
	if st.TimeoutsDelivered != transfers {
		t.Fatalf("timeouts delivered = %d, want %d (stats %+v)", st.TimeoutsDelivered, transfers, st)
	}
	// Every packet's lifecycle settled (timeout completes it on source).
	if got := d.Links[0].Tracker.CompletionCounts()[metrics.StatusCompleted]; got != transfers {
		t.Fatalf("completed %d of %d after partition heal", got, transfers)
	}
	// Senders refunded in full: escrow empty, no vouchers ever minted.
	bankA := d.Chains[0].App.Bank()
	if got := bankA.Balance("escrow/transfer/channel-0", "uatom"); got != 0 {
		t.Fatalf("source escrow still holds %d", got)
	}
	if got := bankA.Balance("user-e0f-0000", "uatom"); got != 1<<50 {
		t.Fatalf("sender balance %d not refunded to %d", got, int64(1)<<50)
	}
	if got := d.Chains[1].App.Bank().Supply("transfer/channel-0/uatom"); got != 0 {
		t.Fatalf("destination minted %d vouchers despite timeout", got)
	}
}

// failoverRun drives one hub deployment with standbys, optionally
// blacking out edge 0's primary relayer host for the whole active phase.
func failoverRun(t *testing.T, fault bool) (*Deployment, map[metrics.Status]int) {
	t.Helper()
	d, err := Deploy(Hub(2), DeployConfig{Seed: 7, Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range d.Links {
		l.Forward().RunConstantRate(2, 3)
	}
	if fault {
		tl := chaos.Timeline{Events: []chaos.Event{
			{At: 12 * time.Second, Kind: chaos.PartitionLink, Edge: 0, Relayer: 0},
			{At: 4 * time.Minute, Kind: chaos.HealLink, Edge: 0, Relayer: 0},
		}}
		if _, err := chaos.Inject(d.Sched, d, tl); err != nil {
			t.Fatal(err)
		}
	}
	d.Start()
	if err := d.Run(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	total := metrics.MergeCounts(
		d.Links[0].Tracker.CompletionCounts(),
		d.Links[1].Tracker.CompletionCounts(),
	)
	return d, total
}

// TestFailoverStandbyTakeover is the acceptance pin: a hub scenario with
// a partitioned primary relayer completes all transfers via the standby,
// with measured per-edge downtime > 0 and final supplies identical to
// the fault-free run.
func TestFailoverStandbyTakeover(t *testing.T) {
	const perEdge = 2 * 5 * 3 // rate 2 rps x 5 s windows x 3 windows
	faultDep, faultTotal := failoverRun(t, true)
	baseDep, baseTotal := failoverRun(t, false)

	if got := faultTotal[metrics.StatusCompleted]; got != 2*perEdge {
		t.Fatalf("faulted run completed %d of %d", got, 2*perEdge)
	}
	if got := baseTotal[metrics.StatusCompleted]; got != 2*perEdge {
		t.Fatalf("baseline run completed %d of %d", got, 2*perEdge)
	}

	// The standby detected the outage and did real relay work.
	rep := faultDep.Links[0].Failover.Report()
	if rep.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", rep.Takeovers)
	}
	if rep.Downtime.Sum() <= 0 {
		t.Fatalf("measured downtime = %v, want > 0", rep.Downtime.Sum())
	}
	if rep.Standby.RecvDelivered == 0 {
		t.Fatal("standby delivered no packets")
	}
	// The untouched edge never activated its standby.
	if other := faultDep.Links[1].Failover.Report(); other.Takeovers != 0 {
		t.Fatalf("edge 1 standby activated %d times", other.Takeovers)
	}
	if base := baseDep.Links[0].Failover.Report(); base.Takeovers != 0 || base.Downtime.Sum() != 0 {
		t.Fatalf("fault-free run recorded failover %+v", base)
	}

	// Final supplies identical to the fault-free run on every chain.
	for i := 1; i <= 2; i++ {
		voucher := "transfer/channel-0/uatom"
		got := faultDep.Chains[i].App.Bank().Supply(voucher)
		want := baseDep.Chains[i].App.Bank().Supply(voucher)
		if got != want || got != perEdge {
			t.Fatalf("spoke %d voucher supply %d, baseline %d, want %d", i, got, want, perEdge)
		}
	}
	for ch := 0; ch <= 1; ch++ {
		escrow := "escrow/transfer/channel-" + string(rune('0'+ch))
		got := faultDep.Chains[0].App.Bank().Balance(escrow, "uatom")
		want := baseDep.Chains[0].App.Bank().Balance(escrow, "uatom")
		if got != want || got != perEdge {
			t.Fatalf("hub %s holds %d, baseline %d, want %d", escrow, got, want, perEdge)
		}
	}
}

// TestChaosScenarioDeterminism pins the acceptance requirement that the
// same seed and chaos timeline reproduce byte-identical results —
// rendered report and serialized JSON alike — on a supervised scenario
// mixing partitions, spikes and relayer crashes.
func TestChaosScenarioDeterminism(t *testing.T) {
	run := func() (string, []byte) {
		sc := Scenario{
			Name:     "chaos-det",
			Topology: Hub(2),
			Deploy:   DeployConfig{Standby: true},
			EdgeRates: map[int]int{
				0: 2,
				1: 2,
			},
			Windows:      3,
			RecordCurves: true,
			Chaos: chaos.Timeline{Events: []chaos.Event{
				{At: 12 * time.Second, Kind: chaos.PartitionLink, Edge: 0, Relayer: 0},
				{At: 20 * time.Second, Kind: chaos.LatencySpike, Edge: 1, ExtraLatency: 80 * time.Millisecond},
				{At: 60 * time.Second, Kind: chaos.HealLink, Edge: 0, Relayer: 0},
				{At: 70 * time.Second, Kind: chaos.LatencySpike, Edge: 1},
				{At: 75 * time.Second, Kind: chaos.RelayerPause, Edge: 1, Relayer: 0},
				{At: 95 * time.Second, Kind: chaos.RelayerResume, Edge: 1, Relayer: 0},
			}},
		}
		res, err := sc.Run(77)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Faults) != 6 {
			t.Fatalf("fault log has %d entries, want 6", len(res.Faults))
		}
		var sb strings.Builder
		res.Render(&sb)
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String(), raw
	}
	text1, json1 := run()
	text2, json2 := run()
	if text1 != text2 {
		t.Fatalf("same seed+timeline, different rendered results:\n%s\nvs\n%s", text1, text2)
	}
	if string(json1) != string(json2) {
		t.Fatal("same seed+timeline, different serialized results")
	}
	for _, want := range []string{"fault @12s", "latency spike", "pause relayer", "failover"} {
		if !strings.Contains(text1, want) {
			t.Fatalf("rendered result missing %q:\n%s", want, text1)
		}
	}
}
