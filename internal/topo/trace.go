// Trace synthesis: folding a finished deployment into the observability
// sinks. Packet lifecycles are reconstructed from the per-edge trackers
// at flush time — the hot path records nothing per packet — and emitted
// as Chrome async spans so one transfer reads as a single trace across
// both (or, forwarded, all) chains. Fault injections and failover
// takeovers become instants, and component counters are folded into the
// registry so the snapshot rides along inside the run result.
package topo

import (
	"fmt"
	"time"

	"ibcbench/internal/metrics"
	"ibcbench/internal/obs"
)

// packetTraceID derives a stable nonzero async-trace identifier from a
// packet key (FNV-64a over chain, channel and sequence). The low bit is
// forced on so 0 stays free as the "no override" sentinel.
func packetTraceID(key metrics.PacketKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	hash := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h *= prime64 // NUL separator so ("ab","c") != ("a","bc")
	}
	hash(key.SrcChain)
	hash(key.Channel)
	for shift := 0; shift < 64; shift += 8 {
		h ^= (key.Sequence >> shift) & 0xff
		h *= prime64
	}
	return h | 1
}

// foldObs is the single flush-time entry point, called from Scenario.Run
// once the virtual clock has stopped (and after the chaos log landed in
// the result, so fault instants can be emitted from it).
func foldObs(d *Deployment, res *Result, runs []*routeRun) {
	tr := d.Obs.Tracer
	emitPacketSpans(d, tr, forwardedOverrides(d, runs))
	emitFaultInstants(tr, res)
	emitFailoverInstants(d, tr)
	foldMetrics(d)
	res.Metrics = d.Obs.Reg.Snapshot()
}

// forwardedOverrides maps every middleware-emitted hop packet of a
// forwarded route to its origin packet's trace ID, walking the same
// NextHop chain routeReport uses for latency attribution. With the map
// in hand, hop 2+ spans (and timeout-unwind refund legs, which keep the
// same hop keys) join the origin's async trace instead of starting their
// own.
func forwardedOverrides(d *Deployment, runs []*routeRun) map[metrics.PacketKey]uint64 {
	overrides := make(map[metrics.PacketKey]uint64)
	for _, rr := range runs {
		if !rr.route.Forwarded || len(rr.legs) == 0 {
			continue
		}
		path := rr.route.Path
		keys := rr.legs[0].PacketKeys()
		origin := make([]uint64, len(keys))
		for i, key := range keys {
			origin[i] = packetTraceID(key)
		}
		for j := 1; j+1 < len(path); j++ {
			mid := d.Chains[path[j]]
			inLink, _ := d.LinkBetween(path[j-1], path[j])
			if inLink == nil {
				break
			}
			inChan := inLink.ChannelFrom(path[j])
			next := make([]metrics.PacketKey, len(keys))
			for i, key := range keys {
				if origin[i] == 0 {
					continue
				}
				outChan, outSeq, ok := mid.Forward.NextHop(inChan, key.Sequence)
				if !ok {
					origin[i] = 0
					continue
				}
				next[i] = metrics.PacketKey{SrcChain: mid.ID, Channel: outChan, Sequence: outSeq}
				overrides[next[i]] = origin[i]
			}
			keys = next
		}
	}
	return overrides
}

// emitPacketSpans reconstructs each tracked packet's 13-step lifecycle
// as one async span on its source chain's track: a begin at the first
// recorded step, one instant per step, an end at the last. Links and
// keys iterate in deterministic order, so same-seed traces are
// byte-identical.
func emitPacketSpans(d *Deployment, tr *obs.Tracer, overrides map[metrics.PacketKey]uint64) {
	namePkt := tr.Name("pkt")
	var stepNames [metrics.NumSteps]obs.NameID
	for i := range stepNames {
		stepNames[i] = tr.Name(metrics.Step(i + 1).String())
	}
	for _, l := range d.Links {
		for _, key := range l.Tracker.Keys() {
			var (
				times [metrics.NumSteps]time.Duration
				set   [metrics.NumSteps]bool
				first = -1
				last  = -1
			)
			for i := 0; i < metrics.NumSteps; i++ {
				at, ok := l.Tracker.StepTime(key, metrics.Step(i+1))
				if !ok {
					continue
				}
				times[i], set[i] = at, true
				if first < 0 {
					first = i
				}
				last = i
			}
			if first < 0 {
				continue
			}
			id := overrides[key]
			if id == 0 {
				id = packetTraceID(key)
			}
			track := tr.Track("chain/" + key.SrcChain)
			tr.AsyncBegin(id, track, namePkt, times[first])
			for i := 0; i < metrics.NumSteps; i++ {
				if set[i] {
					tr.AsyncInstant(id, track, stepNames[i], times[i])
				}
			}
			tr.AsyncEnd(id, track, namePkt, times[last])
		}
	}
}

// emitFaultInstants marks every applied chaos fault on a dedicated track.
func emitFaultInstants(tr *obs.Tracer, res *Result) {
	if len(res.Faults) == 0 {
		return
	}
	track := tr.Track("chaos")
	for _, f := range res.Faults {
		tr.Instant(track, tr.Name(f.Desc), f.At)
	}
}

// emitFailoverInstants marks standby takeovers and folds outage windows
// into a downtime histogram.
func emitFailoverInstants(d *Deployment, tr *obs.Tracer) {
	for _, l := range d.Links {
		if l.Failover == nil {
			continue
		}
		times := l.Failover.TakeoverTimes()
		if len(times) > 0 {
			track := tr.Track("failover")
			name := tr.Name(fmt.Sprintf("takeover edge %d", l.Index))
			for _, at := range times {
				tr.Instant(track, name, at)
			}
		}
		down := d.Obs.Reg.Histogram(fmt.Sprintf("failover/edge%d/downtime_seconds", l.Index))
		for _, w := range l.Failover.Report().Downtime.Samples {
			down.Observe(w.Seconds())
		}
	}
}

// foldMetrics copies each component's internal counters into the
// registry so one snapshot carries the whole run.
func foldMetrics(d *Deployment) {
	reg := d.Obs.Reg
	for _, c := range d.Chains {
		p := "chain/" + c.ID + "/"
		vs := c.Engine.VoteCache().Stats()
		reg.SetCounter(p+"votesig_verifications", vs.Verifications)
		reg.SetCounter(p+"votesig_hits", vs.Hits)
		reg.SetCounter(p+"votesig_rejected", vs.Rejected)
		reg.SetCounter(p+"height", uint64(c.Store.Height()))
		reg.SetCounter(p+"empty_blocks", c.Engine.EmptyBlocks())
		reg.SetCounter(p+"rounds", c.Engine.TotalRounds())
		reg.SetCounter(p+"mempool_added", c.Pool.Added())
		reg.SetCounter(p+"mempool_rejected", c.Pool.Rejected())
		reg.SetCounter(p+"eventindex_scans", c.Events.ScanCount())
	}
	for _, l := range d.Links {
		for i := 0; i < l.relayerCount(); i++ {
			r := l.relayerAt(i)
			st := r.Stats()
			p := "relayer/" + r.Name() + "/"
			reg.SetCounter(p+"recv_delivered", st.RecvDelivered)
			reg.SetCounter(p+"acks_delivered", st.AcksDelivered)
			reg.SetCounter(p+"timeouts_delivered", st.TimeoutsDelivered)
			reg.SetCounter(p+"redundant_errors", st.RedundantErrors)
			reg.SetCounter(p+"seq_mismatch_errors", st.SeqMismatchErrors)
			reg.SetCounter(p+"frames_lost", st.FramesLost)
			reg.SetCounter(p+"txs_submitted", st.TxsSubmitted)
			reg.SetCounter(p+"txs_failed", st.TxsFailed)
			reg.SetCounter(p+"retries", st.Retries)
		}
	}
	reg.SetCounter("net/sent", d.Net.Sent())
	reg.SetCounter("net/dropped", d.Net.Dropped())
	reg.SetCounter("sim/events_processed", d.TotalProcessed())
}
