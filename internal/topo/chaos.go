// Chaos target: the deployment surface the fault injector drives. Edge
// faults resolve to host sets — each chain's machines form one group,
// each of the edge's relayer machines its own — and apply to the pairs
// crossing groups, so a link fault degrades the IBC path (relayer↔chain
// and chain↔chain traffic) without touching intra-chain consensus.
package topo

import (
	"time"

	"ibcbench/internal/netem"
)

// Edges implements chaos.Target.
func (d *Deployment) Edges() int { return len(d.Links) }

// EdgeRelayers implements chaos.Target: active relayers first, the
// standby (if any) as the last ordinal.
func (d *Deployment) EdgeRelayers(edge int) int { return d.Links[edge].relayerCount() }

// edgeGroups returns the edge's host groups: chain A's machines, chain
// B's machines, then one group per relayer machine (standby last).
func (d *Deployment) edgeGroups(edge int) [][]netem.Host {
	l := d.Links[edge]
	groups := [][]netem.Host{
		d.Chains[l.Spec.A].Hosts(),
		d.Chains[l.Spec.B].Hosts(),
	}
	for i := 0; i < l.relayerCount(); i++ {
		groups = append(groups, []netem.Host{l.relayerAt(i).Host()})
	}
	return groups
}

// crossPairs visits every directed host pair crossing group boundaries.
func crossPairs(groups [][]netem.Host, fn func(a, b netem.Host)) {
	for i, ga := range groups {
		for j, gb := range groups {
			if i == j {
				continue
			}
			for _, a := range ga {
				for _, b := range gb {
					fn(a, b)
				}
			}
		}
	}
}

// PartitionEdge implements chaos.Target. With relayer < 0 the whole
// link blacks out: every cross-group pair of the edge is severed. With
// relayer >= 0 only that relayer's machine drops off: it loses both
// chains (and the other relayers), which is the primary-host fault of
// the failover experiments.
func (d *Deployment) PartitionEdge(edge, relayerIdx int) {
	d.edgePartition(edge, relayerIdx, d.Net.Partition)
}

// HealEdge implements chaos.Target, reversing PartitionEdge.
func (d *Deployment) HealEdge(edge, relayerIdx int) {
	d.edgePartition(edge, relayerIdx, d.Net.Heal)
}

func (d *Deployment) edgePartition(edge, relayerIdx int, apply func(a, b netem.Host)) {
	groups := d.edgeGroups(edge)
	if relayerIdx < 0 {
		crossPairs(groups, func(a, b netem.Host) { apply(a, b) })
		return
	}
	target := d.Links[edge].relayerAt(relayerIdx).Host()
	for i, g := range groups {
		if i >= 2 && len(g) == 1 && g[0] == target {
			continue
		}
		for _, h := range g {
			apply(target, h)
		}
	}
}

// SetEdgeExtraLatency implements chaos.Target: a latency spike on every
// cross-group pair of the edge (0 clears the spike, leaving any drop
// burst in place).
func (d *Deployment) SetEdgeExtraLatency(edge int, extra time.Duration) {
	crossPairs(d.edgeGroups(edge), func(a, b netem.Host) {
		d.Net.SetLinkExtraLatency(a, b, extra)
	})
}

// SetEdgeExtraDrop implements chaos.Target: a drop burst on every
// cross-group pair of the edge (0 clears the burst only).
func (d *Deployment) SetEdgeExtraDrop(edge int, extra float64) {
	crossPairs(d.edgeGroups(edge), func(a, b netem.Host) {
		d.Net.SetLinkExtraDrop(a, b, extra)
	})
}

// PauseRelayer implements chaos.Target (process crash injection).
func (d *Deployment) PauseRelayer(edge, relayerIdx int) {
	d.Links[edge].relayerAt(relayerIdx).Stop()
}

// ResumeRelayer implements chaos.Target.
func (d *Deployment) ResumeRelayer(edge, relayerIdx int) {
	d.Links[edge].relayerAt(relayerIdx).Resume()
}
