package topo

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/obs"
)

// runFingerprint executes the scenario with the given worker count and
// returns the marshalled Result plus the Chrome trace document — the two
// byte streams the parallel runner must reproduce exactly.
func runFingerprint(t *testing.T, s Scenario, seed int64, workers int) (result, trace []byte) {
	t.Helper()
	s.Deploy.ParallelWorkers = workers
	s.Deploy.Obs = obs.New()
	res, err := s.Run(seed)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	result, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Deploy.Obs.Tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return result, buf.Bytes()
}

// assertEquivalent pins serial vs parallel byte identity for a scenario
// across worker counts and seeds.
func assertEquivalent(t *testing.T, s Scenario, seeds []int64, workerCounts []int) {
	t.Helper()
	for _, seed := range seeds {
		serialRes, serialTrace := runFingerprint(t, s, seed, 1)
		if len(serialRes) == 0 {
			t.Fatal("empty serial result")
		}
		for _, w := range workerCounts {
			parRes, parTrace := runFingerprint(t, s, seed, w)
			if !bytes.Equal(serialRes, parRes) {
				t.Errorf("seed %d workers %d: result JSON diverged from serial\nserial: %.400s\nparallel: %.400s",
					seed, w, serialRes, parRes)
			}
			if !bytes.Equal(serialTrace, parTrace) {
				t.Errorf("seed %d workers %d: trace document diverged from serial (serial %d bytes, parallel %d bytes)",
					seed, w, len(serialTrace), len(parTrace))
			}
		}
	}
}

// TestParallelHubEquivalence pins the tentpole contract on a hub: every
// chain cluster on its own partition produces the same-seed Result and
// trace byte-for-byte as the serial scheduler.
func TestParallelHubEquivalence(t *testing.T) {
	s := Scenario{
		Name:     "par-hub",
		Topology: Hub(3),
		EdgeRates: map[int]int{
			0: 2, 1: 2, 2: 1,
		},
		Windows: 3,
	}
	assertEquivalent(t, s, []int64{1, 7}, []int{2, 4})
}

// TestParallelMeshEquivalence covers the densest topology: every chain
// pair linked, partitions exchanging messages in all directions.
func TestParallelMeshEquivalence(t *testing.T) {
	s := Scenario{
		Name:     "par-mesh",
		Topology: Mesh(4),
		EdgeRates: map[int]int{
			0: 1, 2: 1, 5: 1,
		},
		Windows: 2,
	}
	assertEquivalent(t, s, []int64{3}, []int{2, 4})
}

// TestParallelForwardedRouteEquivalence exercises global route drivers
// plus middleware-forwarded multi-hop packets across three partitions.
func TestParallelForwardedRouteEquivalence(t *testing.T) {
	s := Scenario{
		Name:      "par-fwd",
		Topology:  Line(3),
		EdgeRates: map[int]int{0: 1},
		Windows:   2,
		Routes: []Route{
			{Path: []int{0, 1, 2}, Transfers: 3, Forwarded: true},
			{Path: []int{2, 1, 0}, Transfers: 2},
		},
	}
	assertEquivalent(t, s, []int64{5}, []int{2})
}

// TestParallelChaosFailoverEquivalence drives barrier-executed chaos
// faults (a whole-link partition crossing the supervisor's probes) with
// standby failover, the harshest global/partition interleaving.
func TestParallelChaosFailoverEquivalence(t *testing.T) {
	s := Scenario{
		Name:      "par-chaos",
		Topology:  TwoChain(),
		EdgeRates: map[int]int{0: 2},
		Windows:   3,
		Deploy: DeployConfig{
			Standby:             true,
			ClearIntervalBlocks: 2,
		},
		Chaos: chaos.Timeline{Events: []chaos.Event{
			{At: 12 * time.Second, Kind: chaos.RelayerPause, Edge: 0, Relayer: 0},
			{At: 40 * time.Second, Kind: chaos.LatencySpike, Edge: 0, Relayer: -1, ExtraLatency: 80 * time.Millisecond},
			{At: 55 * time.Second, Kind: chaos.LatencySpike, Edge: 0, Relayer: -1},
			{At: 70 * time.Second, Kind: chaos.RelayerResume, Edge: 0, Relayer: 0},
		}},
	}
	assertEquivalent(t, s, []int64{9}, []int{2})
}

// TestParallelFallsBackToSerial pins the safety gates: a single chain,
// full proofs or no positive lookahead must run serially even when
// workers are requested.
func TestParallelFallsBackToSerial(t *testing.T) {
	d, err := Deploy(TwoChain(), DeployConfig{Seed: 1, FullProofs: true, ParallelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Parallel() {
		t.Fatal("full-proof deployment did not fall back to serial")
	}
	d, err = Deploy(TwoChain(), DeployConfig{Seed: 1, ParallelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Parallel() {
		t.Fatal("two-chain deployment did not partition")
	}
}
