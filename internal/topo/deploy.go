// Deployment: instantiate a Topology on the shared discrete-event
// scheduler — N chains, per-link relayers with their own full nodes, a
// per-edge metrics tracker and per-edge workload generators.
package topo

import (
	"fmt"
	"time"

	"ibcbench/internal/chain"
	"ibcbench/internal/geo"
	"ibcbench/internal/ibc/pfm"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/relayer"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/workload"
)

// DeployConfig parameterizes a topology deployment; zero values take the
// paper's defaults (200 ms WAN, five validators, one relayer per edge).
type DeployConfig struct {
	Seed       int64
	Network    netem.Config
	Validators int
	FullProofs bool
	// ReferenceVoteVerify selects every chain's O(V^2) per-receiver vote
	// verification path instead of the shared vote-verification engine
	// (results are byte-identical; the counters differ).
	ReferenceVoteVerify bool
	// RelayersPerEdge is the default relayer count for edges that don't
	// override it in their EdgeSpec.
	RelayersPerEdge int
	// ClearIntervalBlocks / MaxMsgsPerTx forward to every relayer.
	ClearIntervalBlocks int64
	MaxMsgsPerTx        int
	// Geo places every host into a region of this model and compiles the
	// inter-region matrix into per-host-pair netem overrides. Chains take
	// their ChainSpec.Region or round-robin over the model's regions;
	// relayer j of an edge lands in the region of side A (even j) or B
	// (odd j); standbys land on side B.
	Geo *geo.Model
	// Standby adds a passive standby relayer plus a failover supervisor
	// to every edge (per-edge opt-in via EdgeSpec.Standby).
	Standby bool
	// FailoverDetectBlocks is the supervisor's detection window in block
	// intervals: missed health probes for this long activate the standby
	// (0 = 2 blocks).
	FailoverDetectBlocks int
	// Obs attaches observability (span tracer + metrics registry) to the
	// deployment; nil (the default) disables all instrumentation. Must be
	// per-deployment — sweeps run seeds concurrently — so experiment
	// drivers leave it nil and only single-run trace exports set it.
	Obs *obs.Obs
	// Live publishes periodic progress snapshots of the running
	// scenario (nil = disabled). The hook only reads deployment state —
	// no RNG draws — so enabling it never changes simulation results;
	// it does add ticker events to the scheduler, so the
	// sim/events_processed counter moves when Obs is also attached.
	Live *LiveConfig
	// ParallelWorkers > 1 runs the simulation on the conservative
	// parallel scheduler: one partition per chain (its consensus actors,
	// app, RPC nodes, attached relayers and workload drivers), advancing
	// in lockstep windows bounded by the minimum cross-partition network
	// latency. Results are byte-identical to the serial scheduler. The
	// deployment falls back to serial when it has a single chain, full
	// proofs, or no usable latency lookahead.
	ParallelWorkers int
}

// Link is one deployed edge: the seeded channel pair, its relayers, its
// event tracker and lazily created directional workload generators.
type Link struct {
	Index    int
	Spec     EdgeSpec
	Pair     *chain.Pair
	Relayers []*relayer.Relayer
	// Standby is the edge's passive backup relayer (nil unless enabled);
	// Failover is the supervisor activating it.
	Standby  *relayer.Relayer
	Failover *Failover
	// Tracker aggregates packet lifecycles for this edge only; roll
	// edges up with metrics.MergeCounts.
	Tracker *metrics.Tracker

	dep      *Deployment
	fwd, rev *workload.Generator
	// legGens are the dedicated generators of route legs that crossed
	// this edge, kept for workload accounting.
	legGens []*workload.Generator
}

// relayerAt resolves a chaos/failover relayer ordinal: the active
// relayers first, then the standby as the last ordinal.
func (l *Link) relayerAt(i int) *relayer.Relayer {
	if i >= 0 && i < len(l.Relayers) {
		return l.Relayers[i]
	}
	if l.Standby != nil && i == len(l.Relayers) {
		return l.Standby
	}
	return nil
}

// relayerCount reports active relayers plus the standby.
func (l *Link) relayerCount() int {
	n := len(l.Relayers)
	if l.Standby != nil {
		n++
	}
	return n
}

// Forward returns (creating on first use) the generator submitting
// transfers in the edge's A -> B direction.
func (l *Link) Forward() *workload.Generator {
	if l.fwd == nil {
		l.fwd = l.newGenerator(l.Pair.A, l.Pair.B, l.Pair.ChannelAB, "f")
	}
	return l.fwd
}

// Reverse returns the B -> A generator.
func (l *Link) Reverse() *workload.Generator {
	if l.rev == nil {
		l.rev = l.newGenerator(l.Pair.B, l.Pair.A, l.Pair.ChannelBA, "r")
	}
	return l.rev
}

func (l *Link) newGenerator(src, dst *chain.Chain, channel, dir string) *workload.Generator {
	d := l.dep
	g := workload.NewOnChannel(d.schedFor(d.chainIndex(src)), d.RNG, src, dst, channel,
		l.Relayers[0].EndpointRPC(src.ID), l.Tracker)
	// Namespace accounts per edge+direction: several generators can share
	// one source chain (a hub) without sequence clashes.
	g.AccountPrefix = fmt.Sprintf("user-e%d%s", l.Index, dir)
	d.attachDriver(g, src, dst)
	return g
}

// newRouteGenerator creates a dedicated generator for leg `hop` of route
// `route`, departing the given node across this link. Route legs never
// share a generator with edge-rate traffic (or other legs), so the
// generator's PacketKeys attribute the leg's packets exactly on a busy
// shared channel. The account prefix derives from (route, hop) — not a
// deploy-order counter — so reruns are byte-identical regardless of the
// order legs start in.
func (l *Link) newRouteGenerator(from, route, hop int) *workload.Generator {
	d := l.dep
	src, dst, channel := l.Pair.A, l.Pair.B, l.Pair.ChannelAB
	if d.Chains[from] != l.Pair.A {
		src, dst, channel = l.Pair.B, l.Pair.A, l.Pair.ChannelBA
	}
	g := workload.NewOnChannel(d.schedFor(d.chainIndex(src)), d.RNG, src, dst, channel,
		l.Relayers[0].EndpointRPC(src.ID), l.Tracker)
	g.AccountPrefix = fmt.Sprintf("route-r%d-h%d", route, hop)
	d.attachDriver(g, src, dst)
	l.legGens = append(l.legGens, g)
	return g
}

// attachDriver wires a freshly created workload driver into the source
// chain's event partition and region, and routes its destination-height
// view (packet timeout stamping) through delivered block frames so the
// value never depends on another partition's instantaneous state. The
// frame subscription runs identically under the serial scheduler, keeping
// the two modes' event streams byte-identical.
func (d *Deployment) attachDriver(g *workload.Generator, src, dst *chain.Chain) {
	if d.par != nil {
		d.par.AssignHost(string(g.Host()), d.chainIndex(src))
	}
	g.ObserveDestHeight(dst.RPC)
	d.placeWithChain(g.Host(), src)
}

// ChannelFrom reports the channel identifier on the `from` side of the
// link.
func (l *Link) ChannelFrom(from int) string {
	if l.dep.Chains[from] == l.Pair.A {
		return l.Pair.ChannelAB
	}
	return l.Pair.ChannelBA
}

// Deployment is one instantiated topology.
type Deployment struct {
	Topology Topology
	Sched    *sim.Scheduler
	Net      *netem.Network
	RNG      *sim.RNG
	Chains   []*chain.Chain
	Links    []*Link
	// Geo is the host→region assignment (nil without a region model).
	Geo *geo.Assignment
	// Obs is the deployment's observability bundle (nil = disabled).
	Obs *obs.Obs

	// par is the conservative parallel runner (nil = serial). When set,
	// Sched is its global scheduler and every chain cluster lives on its
	// own partition scheduler.
	par *sim.Parallel

	// regions holds each chain's resolved region (empty without geo).
	regions []geo.Region
}

// Parallel reports whether the deployment runs on the parallel scheduler.
func (d *Deployment) Parallel() bool { return d.par != nil }

// schedFor returns the scheduler owning chain i's event partition: the
// shared scheduler when serial, the chain's private partition otherwise.
func (d *Deployment) schedFor(i int) *sim.Scheduler {
	if d.par == nil {
		return d.Sched
	}
	return d.par.Partition(i)
}

// chainIndex resolves a deployed chain back to its node index.
func (d *Deployment) chainIndex(c *chain.Chain) int {
	for i, have := range d.Chains {
		if have == c {
			return i
		}
	}
	return -1
}

// TotalProcessed sums executed events across every scheduler of the
// deployment (global plus partitions under the parallel runner).
func (d *Deployment) TotalProcessed() uint64 {
	if d.par != nil {
		return d.par.Processed()
	}
	return d.Sched.Processed()
}

// RegionOf reports the region chain i was placed in ("" without geo).
func (d *Deployment) RegionOf(i int) geo.Region {
	if d.regions == nil {
		return ""
	}
	return d.regions[i]
}

// placeWithChain places a late-created host (workload driver) in the
// given chain's region.
func (d *Deployment) placeWithChain(h netem.Host, c *chain.Chain) {
	if d.Geo == nil {
		return
	}
	for i, have := range d.Chains {
		if have == c {
			// Placement over a validated model cannot fail.
			_ = d.Geo.PlaceAndApply(d.Net, h, d.regions[i])
			return
		}
	}
}

// ForwardMemo builds the nested packet-forward memo that routes a
// transfer along path: one ForwardMetadata per intermediate chain, each
// naming that chain's outgoing channel toward the next node and carrying
// the rest of the route in Next. A two-node path needs no forwarding and
// yields "". timeoutBlocks (0 = middleware default) applies per hop.
func (d *Deployment) ForwardMemo(path []int, finalReceiver string, timeoutBlocks int64) (string, error) {
	var next *pfm.ForwardMetadata
	// Build innermost-first: hop j runs on chain path[j], sending to
	// path[j+1].
	for j := len(path) - 2; j >= 1; j-- {
		link, ok := d.LinkBetween(path[j], path[j+1])
		if !ok {
			return "", fmt.Errorf("topo: forward memo: no link %d-%d", path[j], path[j+1])
		}
		next = &pfm.ForwardMetadata{
			Receiver:      finalReceiver,
			Port:          transfer.PortID,
			Channel:       link.ChannelFrom(path[j]),
			TimeoutBlocks: timeoutBlocks,
			Next:          next,
		}
	}
	return pfm.Memo(next), nil
}

// Deploy instantiates the topology: a shared scheduler/network, one chain
// per node, a seeded IBC channel plus started relayers per edge.
// Chains do not produce blocks until Start.
func Deploy(t Topology, cfg DeployConfig) (*Deployment, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Network.OneWayLatency == 0 {
		cfg.Network = netem.DefaultWAN()
	}
	perEdge := cfg.RelayersPerEdge
	if perEdge <= 0 {
		perEdge = 1
	}
	// The parallel runner needs a positive latency lookahead; decide
	// before constructing the network so the deployment consumes the
	// seed RNG identically in both modes.
	var par *sim.Parallel
	if cfg.ParallelWorkers > 1 && len(t.Chains) > 1 && !cfg.FullProofs && parallelLookahead(cfg) > 0 {
		par = sim.NewParallel(len(t.Chains), cfg.ParallelWorkers, 0)
	}
	sched := sim.NewScheduler()
	if par != nil {
		sched = par.Global()
	}
	rng := sim.NewRNG(cfg.Seed)
	network := netem.New(sched, rng, cfg.Network)
	if par != nil {
		network.SetPartitioner(par)
	}
	d := &Deployment{Topology: t, Sched: sched, Net: network, RNG: rng, Obs: cfg.Obs, par: par}
	cfg.Obs.Bind(sched.Now)
	if cfg.Geo != nil {
		asg, err := geo.NewAssignment(cfg.Geo)
		if err != nil {
			return nil, err
		}
		d.Geo = asg
		d.regions = make([]geo.Region, len(t.Chains))
		for i, spec := range t.Chains {
			d.regions[i] = spec.Region
			if d.regions[i] == "" {
				d.regions[i] = cfg.Geo.RegionAt(i)
			}
		}
	}
	placeChainHost := func(i int) func(netem.Host) {
		region := d.regions[i]
		return func(h netem.Host) { _ = d.Geo.PlaceAndApply(d.Net, h, region) }
	}
	for i, spec := range t.Chains {
		vals := spec.Validators
		if vals == 0 {
			vals = cfg.Validators
		}
		csched := sched
		if par != nil {
			csched = par.Partition(i)
		}
		c := chain.New(csched, network, chain.Config{
			ChainID:             t.ChainID(i),
			Validators:          vals,
			FullProofs:          cfg.FullProofs,
			ReferenceVoteVerify: cfg.ReferenceVoteVerify,
			Obs:                 cfg.Obs,
		})
		if d.Geo != nil {
			if err := validRegion(cfg.Geo, d.regions[i], t.ChainID(i)); err != nil {
				return nil, err
			}
			place := placeChainHost(i)
			for _, h := range c.Hosts() {
				place(h)
			}
			// Relayer full nodes attach to the chain later; place them in
			// the chain's region as they appear.
			c.OnHost(place)
		}
		if par != nil {
			// Every chain host — validators, the primary full node and
			// full nodes attached later — lives in the chain's partition.
			i := i
			for _, h := range c.Hosts() {
				par.AssignHost(string(h), i)
			}
			c.OnHost(func(h netem.Host) { par.AssignHost(string(h), i) })
		}
		d.Chains = append(d.Chains, c)
	}
	detect := cfg.FailoverDetectBlocks
	if detect <= 0 {
		detect = 2
	}
	for i, e := range t.Edges {
		l := &Link{
			Index:   i,
			Spec:    e,
			Pair:    chain.Link(d.Chains[e.A], d.Chains[e.B]),
			Tracker: metrics.NewTracker(),
			dep:     d,
		}
		n := e.Relayers
		if n <= 0 {
			n = perEdge
		}
		newRelayer := func(j int, name string) *relayer.Relayer {
			rcfg := relayer.DefaultConfig(name)
			rcfg.Tracker = l.Tracker
			rcfg.Obs = cfg.Obs
			rcfg.ClearIntervalBlocks = cfg.ClearIntervalBlocks
			if cfg.MaxMsgsPerTx > 0 {
				rcfg.MaxMsgsPerTx = cfg.MaxMsgsPerTx
			}
			if j < 0 {
				// The standby's takeover relies on gap-driven clearing.
				if rcfg.ClearIntervalBlocks <= 0 {
					rcfg.ClearIntervalBlocks = 1
				}
			}
			// Even ordinals sit with side A, odd ones (and the standby)
			// with side B — a partitioned primary leaves a reachable
			// standby. The same side choice places the relayer's host in
			// that chain's region and event partition.
			side := e.A
			if j < 0 || j%2 == 1 {
				side = e.B
			}
			r := relayer.New(d.schedFor(side), rng, rcfg, l.Pair)
			if par != nil {
				par.AssignHost(string(r.Host()), side)
			}
			if d.Geo != nil {
				_ = d.Geo.PlaceAndApply(d.Net, r.Host(), d.regions[side])
			}
			return r
		}
		for j := 0; j < n; j++ {
			r := newRelayer(j, fmt.Sprintf("hermes-e%d-%d", i, j))
			r.Start()
			l.Relayers = append(l.Relayers, r)
		}
		if cfg.Standby || e.Standby {
			l.Standby = newRelayer(-1, fmt.Sprintf("hermes-e%d-standby", i))
			l.Failover = newFailover(d, l, time.Duration(detect)*simconf.MinBlockInterval)
		}
		d.Links = append(d.Links, l)
	}
	return d, nil
}

// validRegion checks a chain's region exists in the model.
func validRegion(m *geo.Model, r geo.Region, chainID string) error {
	for _, have := range m.Regions {
		if have == r {
			return nil
		}
	}
	return fmt.Errorf("topo: chain %s placed in unknown region %q of model %s", chainID, r, m.Name)
}

// Start begins block production on every chain.
func (d *Deployment) Start() {
	for _, c := range d.Chains {
		c.Start()
	}
}

// Run drives the simulation to the virtual deadline. Under the parallel
// runner the exact cross-partition latency floor is computed here — every
// link profile exists by now — and bounds each synchronization window.
func (d *Deployment) Run(until time.Duration) error {
	if d.par != nil {
		d.par.SetHorizon(d.Net.MinCrossPartitionLatency(d.par.PartitionOf))
		return d.par.RunUntil(until)
	}
	return d.Sched.RunUntil(until)
}

// parallelLookahead is the deploy-time conservative lower bound on every
// cross-partition delivery latency: the network default and, with a geo
// model, every region path including the intra-region one (two chains may
// share a region). Each base shrinks by 4 relative standard deviations —
// sim.RNG.Jitter truncates there — and chaos overlays only add latency.
// The exact (larger) per-link bound replaces it at Run time.
func parallelLookahead(cfg DeployConfig) time.Duration {
	eff := func(base time.Duration, jitter float64) time.Duration {
		if jitter < 0 {
			jitter = cfg.Network.JitterRelStd
		}
		if jitter <= 0 {
			return base
		}
		return time.Duration(float64(base) * (1 - 4*jitter))
	}
	min := eff(cfg.Network.OneWayLatency, cfg.Network.JitterRelStd)
	if cfg.Geo != nil {
		if e := eff(cfg.Geo.Intra.OneWay, cfg.Geo.Intra.Jitter); e < min {
			min = e
		}
		for _, a := range cfg.Geo.Regions {
			for _, b := range cfg.Geo.Regions {
				if p, ok := cfg.Geo.Path(a, b); ok {
					if e := eff(p.OneWay, p.Jitter); e < min {
						min = e
					}
				}
			}
		}
	}
	return min
}

// Chain returns the deployed chain at node index i.
func (d *Deployment) Chain(i int) *chain.Chain { return d.Chains[i] }

// LinkBetween returns the deployed link between two node indices.
func (d *Deployment) LinkBetween(a, b int) (*Link, bool) {
	idx, ok := d.Topology.EdgeBetween(a, b)
	if !ok {
		return nil, false
	}
	return d.Links[idx], true
}
