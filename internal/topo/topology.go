// Package topo is the N-chain topology and scenario subsystem: a
// declarative interchain graph (chains as nodes, IBC links as edges,
// relayers assigned per edge), a deployer instantiating it on the shared
// discrete-event scheduler, and a scenario layer bundling a topology with
// a workload mix (per-edge rates and multi-hop routes).
//
// The paper evaluates IBC on a fixed two-chain testbed; real Cosmos
// deployments are hubs and meshes. Presets cover the common shapes:
//
//	TwoChain()  A — B                      (the paper's testbed)
//	Line(n)     0 — 1 — 2 — ... — n-1      (packet forwarding chains)
//	Hub(s)      spokes 1..s all linked to hub 0
//	Mesh(n)     every pair linked          (n*(n-1)/2 edges)
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"ibcbench/internal/geo"
)

// ChainSpec declares one blockchain node of the graph.
type ChainSpec struct {
	// ID is the chain identifier; empty defaults to "ibc-<index>".
	ID string
	// Validators overrides the validator-set size (0 = paper default).
	Validators int
	// Region places the chain's machines in a named region of the
	// deployment's geo model (empty = round-robin over the model's
	// regions). Ignored without a geo model.
	Region geo.Region
}

// EdgeSpec declares one IBC link between two chains.
type EdgeSpec struct {
	// A and B index into Topology.Chains. Workload direction conventions
	// treat A as the source side.
	A, B int
	// Relayers overrides the per-edge relayer count (0 = deploy default).
	Relayers int
	// Standby adds a passive standby relayer with failover supervision
	// to this edge (also enabled globally via DeployConfig.Standby).
	Standby bool
}

// Topology is the declarative interchain graph.
type Topology struct {
	Name   string
	Chains []ChainSpec
	Edges  []EdgeSpec
}

// TwoChain is the paper's testbed: two chains, one link.
func TwoChain() Topology {
	return Topology{
		Name:   "two",
		Chains: []ChainSpec{{}, {}},
		Edges:  []EdgeSpec{{A: 0, B: 1}},
	}
}

// Line chains n blockchains in a path 0-1-...-(n-1).
func Line(n int) Topology {
	t := Topology{Name: fmt.Sprintf("line:%d", n)}
	for i := 0; i < n; i++ {
		t.Chains = append(t.Chains, ChainSpec{})
		if i > 0 {
			t.Edges = append(t.Edges, EdgeSpec{A: i - 1, B: i})
		}
	}
	return t
}

// Hub links `spokes` chains to a central hub (node 0), the Cosmos-Hub
// shape. Edges run hub -> spoke so the default workload direction fans
// out of the hub.
func Hub(spokes int) Topology {
	t := Topology{Name: fmt.Sprintf("hub:%d", spokes)}
	t.Chains = append(t.Chains, ChainSpec{ID: "hub"})
	for i := 1; i <= spokes; i++ {
		t.Chains = append(t.Chains, ChainSpec{})
		t.Edges = append(t.Edges, EdgeSpec{A: 0, B: i})
	}
	return t
}

// Mesh links every pair of n chains.
func Mesh(n int) Topology {
	t := Topology{Name: fmt.Sprintf("mesh:%d", n)}
	for i := 0; i < n; i++ {
		t.Chains = append(t.Chains, ChainSpec{})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Edges = append(t.Edges, EdgeSpec{A: i, B: j})
		}
	}
	return t
}

// ChainID resolves the effective chain identifier of node i.
func (t Topology) ChainID(i int) string {
	if i >= 0 && i < len(t.Chains) && t.Chains[i].ID != "" {
		return t.Chains[i].ID
	}
	return fmt.Sprintf("ibc-%d", i)
}

// Validate checks graph well-formedness: at least two chains, edge
// endpoints in range and distinct, no duplicate links or chain IDs.
func (t Topology) Validate() error {
	if len(t.Chains) < 2 {
		return fmt.Errorf("topo: need at least 2 chains, have %d", len(t.Chains))
	}
	ids := make(map[string]bool, len(t.Chains))
	for i := range t.Chains {
		id := t.ChainID(i)
		if ids[id] {
			return fmt.Errorf("topo: duplicate chain ID %q", id)
		}
		ids[id] = true
	}
	if len(t.Edges) == 0 {
		return fmt.Errorf("topo: no edges")
	}
	seen := make(map[[2]int]bool, len(t.Edges))
	for _, e := range t.Edges {
		if e.A < 0 || e.A >= len(t.Chains) || e.B < 0 || e.B >= len(t.Chains) {
			return fmt.Errorf("topo: edge %d-%d out of range", e.A, e.B)
		}
		if e.A == e.B {
			return fmt.Errorf("topo: self-edge on node %d", e.A)
		}
		key := [2]int{min(e.A, e.B), max(e.A, e.B)}
		if seen[key] {
			return fmt.Errorf("topo: duplicate edge %d-%d", e.A, e.B)
		}
		seen[key] = true
	}
	return nil
}

// EdgeBetween finds the edge index linking nodes a and b (either
// orientation).
func (t Topology) EdgeBetween(a, b int) (int, bool) {
	for i, e := range t.Edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			return i, true
		}
	}
	return 0, false
}

// Route computes a shortest node path from one chain to another by BFS
// over the link graph.
func (t Topology) Route(from, to int) ([]int, error) {
	if from < 0 || from >= len(t.Chains) || to < 0 || to >= len(t.Chains) {
		return nil, fmt.Errorf("topo: route endpoints %d->%d out of range", from, to)
	}
	if from == to {
		return []int{from}, nil
	}
	adj := make(map[int][]int)
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	prev := map[int]int{from: from}
	queue := []int{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, ok := prev[v]; ok {
				continue
			}
			prev[v] = u
			if v == to {
				var path []int
				for n := to; n != from; n = prev[n] {
					path = append(path, n)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, v)
		}
	}
	return nil, fmt.Errorf("topo: no route %d->%d", from, to)
}

// ParseSpec parses a CLI topology spec: "two", "line:<n>", "hub:<spokes>"
// or "mesh:<n>".
func ParseSpec(s string) (Topology, error) {
	kind, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ":")
	n := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return Topology{}, fmt.Errorf("topo: bad size %q in spec %q", arg, s)
		}
		n = v
	}
	switch kind {
	case "two", "twochain":
		return TwoChain(), nil
	case "line":
		if n < 2 {
			return Topology{}, fmt.Errorf("topo: line needs n>=2 (got %q)", s)
		}
		return Line(n), nil
	case "hub":
		if n < 1 {
			return Topology{}, fmt.Errorf("topo: hub needs spokes>=1 (got %q)", s)
		}
		return Hub(n), nil
	case "mesh":
		if n < 2 {
			return Topology{}, fmt.Errorf("topo: mesh needs n>=2 (got %q)", s)
		}
		return Mesh(n), nil
	default:
		return Topology{}, fmt.Errorf("topo: unknown topology %q (want two|line:n|hub:n|mesh:n)", s)
	}
}
