package topo

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ibcbench/internal/obs"
)

// asyncBeginIDs collects, per track name, the async trace IDs opened on
// that track.
func asyncBeginIDs(tr *obs.Tracer) map[string]map[uint64]bool {
	out := map[string]map[uint64]bool{}
	tr.Events(func(ev obs.Event) {
		if ev.Phase != obs.PhaseAsyncBegin {
			return
		}
		track := tr.TrackName(ev.Track)
		if out[track] == nil {
			out[track] = map[uint64]bool{}
		}
		out[track][ev.ID] = true
	})
	return out
}

// TestForwardedRouteSharedTraceID pins cross-chain span parenting: a
// forwarded A->B->C route's middleware-emitted hop-2 packets must join
// the origin packet's async trace (same ID, emitted on the middle
// chain's track) instead of opening traces of their own.
func TestForwardedRouteSharedTraceID(t *testing.T) {
	const transfers = 2
	o := obs.New()
	sc := Scenario{
		Name:     "line3-forward-trace",
		Topology: Line(3),
		Deploy:   DeployConfig{Obs: o},
		Routes: []Route{{
			Path: []int{0, 1, 2}, Transfers: transfers, Forwarded: true,
		}},
		Until: 15 * time.Minute,
	}
	res, err := sc.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutesCompleted != 1 {
		t.Fatalf("route did not complete: %+v", res.Routes)
	}
	ids := asyncBeginIDs(o.Tracer)
	origin := ids["chain/"+sc.Topology.ChainID(0)]
	mid := ids["chain/"+sc.Topology.ChainID(1)]
	if len(origin) != transfers {
		t.Fatalf("origin chain opened %d traces, want %d", len(origin), transfers)
	}
	if len(mid) != transfers {
		t.Fatalf("middle chain opened %d traces, want %d", len(mid), transfers)
	}
	for id := range mid {
		if !origin[id] {
			t.Fatalf("hop-2 trace id %#x not among origin ids %v", id, origin)
		}
	}
}

// TestForwardedTimeoutUnwindLinksOrigin pins parenting through the
// refund path: when the last hop times out and unwinds, the hop packets'
// spans still link back to the origin trace ID — the unwound lifecycle
// reads as one trace from user transfer to refund.
func TestForwardedTimeoutUnwindLinksOrigin(t *testing.T) {
	const transfers = 2
	o := obs.New()
	sc := Scenario{
		Name:     "line3-forward-timeout-trace",
		Topology: Line(3),
		Deploy:   DeployConfig{Obs: o},
		Routes: []Route{{
			Path: []int{0, 1, 2}, Transfers: transfers,
			Forwarded: true, TimeoutBlocks: 1,
		}},
		Until: 20 * time.Minute,
	}
	res, err := sc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutesCompleted != 1 {
		t.Fatal("unwound route never settled on the origin")
	}
	ids := asyncBeginIDs(o.Tracer)
	origin := ids["chain/"+sc.Topology.ChainID(0)]
	mid := ids["chain/"+sc.Topology.ChainID(1)]
	if len(origin) != transfers {
		t.Fatalf("origin chain opened %d traces, want %d", len(origin), transfers)
	}
	if len(mid) == 0 {
		t.Fatal("timed-out hop packets recorded no spans")
	}
	for id := range mid {
		if !origin[id] {
			t.Fatalf("unwound hop trace id %#x not linked to origin ids %v", id, origin)
		}
	}
}

// traceScenario is a small instrumented hub run shared by the
// determinism and result-identity tests.
func traceScenario(o *obs.Obs) Scenario {
	return Scenario{
		Name:      "hub3-trace",
		Topology:  Hub(3),
		Deploy:    DeployConfig{Obs: o},
		EdgeRates: map[int]int{0: 3, 1: 3, 2: 3},
		Windows:   2,
		Routes:    []Route{{Path: []int{1, 0, 2}, Transfers: 2, Forwarded: true}},
	}
}

// TestTraceDeterminism pins the tentpole's contract: two same-seed runs
// produce byte-identical Chrome trace documents and byte-identical
// registry snapshots.
func TestTraceDeterminism(t *testing.T) {
	run := func() ([]byte, []byte) {
		o := obs.New()
		res, err := traceScenario(o).Run(23)
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := o.Tracer.WriteChrome(&trace); err != nil {
			t.Fatal(err)
		}
		snap, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), snap
	}
	t1, s1 := run()
	t2, s2 := run()
	if !bytes.Equal(t1, t2) {
		t.Fatalf("same-seed traces differ (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("same-seed snapshots differ:\n%s\n%s", s1, s2)
	}
	if len(t1) == 0 || string(s1) == "null" {
		t.Fatal("instrumented run produced no trace/snapshot")
	}
}

// TestObservedRunResultUnchanged pins that attaching the tracer does not
// perturb the simulation: an instrumented run's Result is identical to
// the uninstrumented run's, modulo the Metrics snapshot field.
func TestObservedRunResultUnchanged(t *testing.T) {
	o := obs.New()
	observed, err := traceScenario(o).Run(23)
	if err != nil {
		t.Fatal(err)
	}
	plain := traceScenario(nil)
	plain.Deploy.Obs = nil
	bare, err := plain.Run(23)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Metrics == nil {
		t.Fatal("instrumented run carries no snapshot")
	}
	if bare.Metrics != nil {
		t.Fatal("uninstrumented run grew a snapshot")
	}
	observed.Metrics = nil
	got, err := json.Marshal(observed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("instrumentation changed the run result:\n%s\n%s", got, want)
	}
	// The disabled path also keeps persisted JSON shape stable: no
	// Metrics key at all.
	if bytes.Contains(want, []byte(`"Metrics"`)) {
		t.Fatal("uninstrumented result serializes a Metrics field")
	}
}

// TestLiveHookSamplesAndResultUnchanged pins the live-telemetry
// contract: the hook fires periodically plus once at the deadline with
// monotone counters and a registry snapshot, and attaching it never
// perturbs the simulation result (the hook reads state without RNG
// draws — only the Metrics snapshot moves, because the telemetry
// ticker itself is a scheduled event the sim counts).
func TestLiveHookSamplesAndResultUnchanged(t *testing.T) {
	var samples []obs.LiveStatus
	o := obs.New()
	sc := traceScenario(o)
	sc.Deploy.Live = &LiveConfig{Hook: func(st obs.LiveStatus) {
		samples = append(samples, st)
	}}
	res, err := sc.Run(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("live hook fired %d time(s), want periodic samples plus the final one", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Now < samples[i-1].Now || samples[i].Blocks < samples[i-1].Blocks ||
			samples[i].Tracked < samples[i-1].Tracked || samples[i].Completed < samples[i-1].Completed {
			t.Fatalf("sample %d regressed: %+v after %+v", i, samples[i], samples[i-1])
		}
	}
	last := samples[len(samples)-1]
	if last.Name != "hub3-trace" || last.Seed != 23 {
		t.Fatalf("final sample identity %q/%d", last.Name, last.Seed)
	}
	if last.Blocks == 0 || last.Tracked == 0 {
		t.Fatalf("final sample saw no progress: %+v", last)
	}
	if last.Backlog != last.Tracked-last.Completed {
		t.Fatalf("backlog %d != tracked %d - completed %d", last.Backlog, last.Tracked, last.Completed)
	}
	if last.Snapshot == nil {
		t.Fatal("instrumented run's final sample carries no registry snapshot")
	}

	// Same seed without the hook: identical result modulo the snapshot.
	o2 := obs.New()
	bare, err := traceScenario(o2).Run(23)
	if err != nil {
		t.Fatal(err)
	}
	res.Metrics, bare.Metrics = nil, nil
	got, _ := json.Marshal(res)
	want, _ := json.Marshal(bare)
	if !bytes.Equal(got, want) {
		t.Fatalf("live hook changed the run result:\n%s\n%s", got, want)
	}
}

// TestFoldedCounters spot-checks the registry fold: chain heights,
// relayer work and simulator totals all land in the snapshot.
func TestFoldedCounters(t *testing.T) {
	o := obs.New()
	res, err := traceScenario(o).Run(29)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]uint64{}
	for _, c := range res.Metrics.Counters {
		byName[c.Name] = c.Value
	}
	if byName["chain/hub/height"] == 0 {
		t.Fatalf("hub height counter missing: %v", byName)
	}
	if byName["sim/events_processed"] == 0 {
		t.Fatal("sim/events_processed not folded")
	}
	if byName["net/sent"] == 0 {
		t.Fatal("net/sent not folded")
	}
	var relayed uint64
	for name, v := range byName {
		if len(name) > 8 && name[:8] == "relayer/" {
			relayed += v
		}
	}
	if relayed == 0 {
		t.Fatal("no relayer counters folded")
	}
}
