package topo

import (
	"encoding/json"
	"testing"
)

// TestSharedVoteVerifyByteIdenticalResult runs one scenario seed through
// the shared vote-verification engine and the per-receiver reference
// path: signature verification is wall-clock work, not virtual time, so
// the serialized topo.Result must be byte-identical.
func TestSharedVoteVerifyByteIdenticalResult(t *testing.T) {
	run := func(reference bool) *Result {
		sc := Scenario{
			Name:      "votescale-ident",
			Topology:  TwoChain(),
			Deploy:    DeployConfig{Validators: 7, ReferenceVoteVerify: reference},
			EdgeRates: map[int]int{0: 2},
			Windows:   3,
		}
		res, err := sc.Run(123)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(false)
	reference := run(true)
	sharedJSON, err := json.Marshal(shared)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(reference)
	if err != nil {
		t.Fatal(err)
	}
	if string(sharedJSON) != string(refJSON) {
		t.Fatalf("same seed, different results:\nshared:    %s\nreference: %s", sharedJSON, refJSON)
	}
	if shared.Blocks == 0 || shared.BlocksPerSec <= 0 {
		t.Fatalf("block production not recorded: blocks=%d blocks/s=%f", shared.Blocks, shared.BlocksPerSec)
	}
	if shared.Total[0] == 0 && len(shared.Edges) == 0 {
		t.Fatal("empty result")
	}
}

// TestDeployValidatorsOverride pins the -validators axis: the deploy
// config's set size reaches every chain's consensus engine.
func TestDeployValidatorsOverride(t *testing.T) {
	d, err := Deploy(TwoChain(), DeployConfig{Validators: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range d.Chains {
		if got := c.Engine.ValidatorSet().Size(); got != 9 {
			t.Fatalf("chain %d validator set size = %d, want 9", i, got)
		}
	}
	// Per-chain spec overrides still win over the deploy default.
	tp := TwoChain()
	tp.Chains[1].Validators = 5
	d, err = Deploy(tp, DeployConfig{Validators: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := d.Chains[0].Engine.ValidatorSet().Size(), d.Chains[1].Engine.ValidatorSet().Size(); a != 9 || b != 5 {
		t.Fatalf("validator sizes = %d,%d, want 9,5", a, b)
	}
}
