package topo

import (
	"strings"
	"testing"
	"time"

	"ibcbench/internal/metrics"
)

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		name          string
		topo          Topology
		chains, edges int
	}{
		{"two", TwoChain(), 2, 1},
		{"line4", Line(4), 4, 3},
		{"hub4", Hub(4), 5, 4},
		{"mesh4", Mesh(4), 4, 6},
	}
	for _, c := range cases {
		if err := c.topo.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", c.name, err)
		}
		if len(c.topo.Chains) != c.chains || len(c.topo.Edges) != c.edges {
			t.Fatalf("%s: %d chains / %d edges, want %d / %d",
				c.name, len(c.topo.Chains), len(c.topo.Edges), c.chains, c.edges)
		}
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	bad := []Topology{
		{Chains: []ChainSpec{{}}},
		{Chains: []ChainSpec{{}, {}}},
		{Chains: []ChainSpec{{}, {}}, Edges: []EdgeSpec{{A: 0, B: 2}}},
		{Chains: []ChainSpec{{}, {}}, Edges: []EdgeSpec{{A: 1, B: 1}}},
		{Chains: []ChainSpec{{}, {}}, Edges: []EdgeSpec{{A: 0, B: 1}, {A: 1, B: 0}}},
		{Chains: []ChainSpec{{ID: "x"}, {ID: "x"}}, Edges: []EdgeSpec{{A: 0, B: 1}}},
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Fatalf("case %d: invalid topology accepted", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	for spec, want := range map[string]string{
		"two":    "two",
		"line:3": "line:3",
		"hub:4":  "hub:4",
		"mesh:3": "mesh:3",
	} {
		tp, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if tp.Name != want {
			t.Fatalf("%s parsed as %s", spec, tp.Name)
		}
	}
	for _, spec := range []string{"", "ring:4", "hub", "line:1", "mesh:x"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestRouteBFS(t *testing.T) {
	hub := Hub(3) // 0=hub, spokes 1..3
	path, err := hub.Route(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 1 || path[1] != 0 || path[2] != 3 {
		t.Fatalf("spoke-to-spoke route = %v, want [1 0 3]", path)
	}
	line := Line(4)
	path, err = line.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("line route = %v", path)
	}
	disconnected := Topology{
		Chains: []ChainSpec{{}, {}, {}},
		Edges:  []EdgeSpec{{A: 0, B: 1}},
	}
	if _, err := disconnected.Route(0, 2); err == nil {
		t.Fatal("route across disconnected graph accepted")
	}
}

// TestPresetsCompleteTransfers deploys every preset and completes a small
// transfer batch end-to-end on each edge.
func TestPresetsCompleteTransfers(t *testing.T) {
	presets := []Topology{TwoChain(), Line(3), Hub(2), Mesh(3)}
	for _, tp := range presets {
		tp := tp
		t.Run(tp.Name, func(t *testing.T) {
			d, err := Deploy(tp, DeployConfig{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			per := 5
			for _, l := range d.Links {
				gen := l.Forward()
				gen.SubmitBatch(per)
			}
			d.Start()
			if err := d.Run(4 * time.Minute); err != nil {
				t.Fatal(err)
			}
			for _, l := range d.Links {
				got := l.Tracker.CompletionCounts()[metrics.StatusCompleted]
				if got != per {
					t.Fatalf("edge %d (%s~%s): completed %d of %d",
						l.Index, l.Pair.A.ID, l.Pair.B.ID, got, per)
				}
			}
		})
	}
}

// TestHubEdgeIsolation checks that per-edge relayers on a shared hub
// chain only relay their own channel's packets.
func TestHubEdgeIsolation(t *testing.T) {
	d, err := Deploy(Hub(2), DeployConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Submit only on edge 0 (hub -> spoke 1).
	d.Links[0].Forward().SubmitBatch(8)
	d.Start()
	if err := d.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := d.Links[0].Tracker.CompletionCounts()[metrics.StatusCompleted]; got != 8 {
		t.Fatalf("edge 0 completed %d of 8", got)
	}
	if n := d.Links[1].Tracker.Tracked(); n != 0 {
		t.Fatalf("edge 1 tracker saw %d packets, want 0", n)
	}
	st := d.Links[1].Relayers[0].Stats()
	if st.RecvDelivered != 0 || st.TxsSubmitted != 0 {
		t.Fatalf("edge 1 relayer did foreign work: %+v", st)
	}
}

// TestMultiHopScenario runs a 3-chain line with a 2-leg route and checks
// sequential leg execution with per-edge metrics.
func TestMultiHopScenario(t *testing.T) {
	sc := Scenario{
		Name:     "line3-multihop",
		Topology: Line(3),
		Routes:   []Route{{Path: []int{0, 1, 2}, Transfers: 4}},
	}
	res, err := sc.Run(21)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutesCompleted != 1 {
		t.Fatalf("route did not complete: %+v", res)
	}
	for i, e := range res.Edges {
		if e.Completion[metrics.StatusCompleted] != 4 {
			t.Fatalf("edge %d completed %d of 4 (%+v)", i, e.Completion[metrics.StatusCompleted], e)
		}
	}
	if res.Total[metrics.StatusCompleted] != 8 {
		t.Fatalf("aggregate completed = %d, want 8 (4 per edge)", res.Total[metrics.StatusCompleted])
	}
	// Sequential legs: edge 1's transfers broadcast only after edge 0's
	// leg completed, so its first broadcast must follow edge 0's last ack.
	// Leg ordering shows up in the per-edge trackers' step spans.
	_, leg0End, ok0 := resTrackerSpan(t, sc, 21, 0)
	leg1Start, _, ok1 := resTrackerSpan(t, sc, 21, 1)
	if ok0 && ok1 && leg1Start <= leg0End-30*time.Second {
		t.Fatalf("leg 2 started (%v) long before leg 1 finished (%v)", leg1Start, leg0End)
	}
}

// resTrackerSpan re-runs the scenario's deployment to read step spans per
// edge (Result does not expose raw trackers).
func resTrackerSpan(t *testing.T, sc Scenario, seed int64, edge int) (time.Duration, time.Duration, bool) {
	t.Helper()
	d, err := Deploy(sc.Topology, DeployConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rr := &routeRun{route: sc.Routes[0]}
	d.Sched.At(time.Millisecond, func() { d.startLeg(rr) })
	d.Start()
	if err := d.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if edge == 0 {
		first, last, ok := d.Links[0].Tracker.StepSpan(metrics.StepAckConfirmation)
		return first, last, ok
	}
	first, last, ok := d.Links[edge].Tracker.StepSpan(metrics.StepTransferBroadcast)
	return first, last, ok
}

// TestRouteNotAdvancedByBackgroundTraffic pins the leg-gating semantics:
// a route sharing its first edge with constant-rate traffic must wait for
// its OWN transfers to complete before submitting the next leg —
// background completions crossing the edge tracker must not count.
func TestRouteNotAdvancedByBackgroundTraffic(t *testing.T) {
	d, err := Deploy(Line(3), DeployConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	d.Links[0].Forward().RunConstantRate(10, 6) // heavy traffic on edge 0
	rr := &routeRun{route: Route{Path: []int{0, 1, 2}, Transfers: 5}}
	d.Sched.At(time.Millisecond, func() { d.startLeg(rr) })
	d.Start()
	if err := d.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !rr.done {
		t.Fatal("route did not complete")
	}
	// The first leg's own last acknowledgement on edge 0...
	var legDone time.Duration
	for _, key := range d.Links[0].legGens[0].PacketKeys() {
		at, ok := d.Links[0].Tracker.StepTime(key, metrics.StepAckConfirmation)
		if !ok {
			t.Fatalf("leg packet %+v never acked", key)
		}
		if at > legDone {
			legDone = at
		}
	}
	// ...must precede the second leg's first broadcast on edge 1 (the
	// route is edge 1's only traffic).
	legNext, _, ok := d.Links[1].Tracker.StepSpan(metrics.StepTransferBroadcast)
	if !ok {
		t.Fatal("second leg never broadcast")
	}
	if legNext < legDone {
		t.Fatalf("leg 2 broadcast at %v before leg 1's own transfers finished at %v",
			legNext, legDone)
	}
}

// TestForwardedRouteFasterThanSequential is the acceptance pin for the
// packet-forward middleware: the same 3-chain line route run in both
// modes from one scenario each. Forwarded mode must (a) complete with a
// single user-initiated transfer batch per route — the middleware emits
// hop 2 —, (b) mint the correct nested trace denom on the final chain,
// and (c) deliver strictly lower end-to-end route latency than
// sequential legs.
func TestForwardedRouteFasterThanSequential(t *testing.T) {
	const transfers = 3
	run := func(forwarded bool) (*Result, *Deployment) {
		d, err := Deploy(Line(3), DeployConfig{Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		rr := &routeRun{route: Route{Path: []int{0, 1, 2}, Transfers: transfers, Forwarded: forwarded}}
		if forwarded {
			d.Sched.At(time.Millisecond, func() { d.startForwardedRoute(rr) })
		} else {
			d.Sched.At(time.Millisecond, func() { d.startLeg(rr) })
		}
		d.Start()
		if err := d.Run(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		if !rr.done {
			t.Fatalf("route (forwarded=%v) did not complete", forwarded)
		}
		res := &Result{}
		res.Routes = append(res.Routes, d.routeReport(rr))
		return res, d
	}

	seqRes, _ := run(false)
	fwdRes, fwdDep := run(true)

	// (a) one user transfer per route: edge 1 saw no workload submission
	// in forwarded mode — its packets were middleware-emitted.
	if got := fwdDep.Links[1].legGens; len(got) != 0 {
		t.Fatalf("forwarded mode created %d generators on edge 1", len(got))
	}
	if n := fwdDep.Links[1].Tracker.Tracked(); n != transfers {
		t.Fatalf("edge 1 tracked %d middleware packets, want %d", n, transfers)
	}
	if fs := fwdDep.Chains[1].Forward.Stats(); fs.Forwarded != transfers || fs.Completed != transfers {
		t.Fatalf("middleware stats = %+v", fs)
	}

	// (b) nested trace denom on the final chain, held by the route receiver.
	nested := "transfer/channel-0/transfer/channel-0/uatom"
	if got := fwdDep.Chains[2].App.Bank().Balance(RouteReceiver(0), nested); got != transfers {
		t.Fatalf("final-chain nested voucher = %d, want %d", got, transfers)
	}
	if got := fwdDep.Chains[2].App.Bank().Supply(nested); got != transfers {
		t.Fatalf("final-chain nested supply = %d", got)
	}

	// (c) strictly lower end-to-end latency.
	seqLat := seqRes.Routes[0].Latency
	fwdLat := fwdRes.Routes[0].Latency
	if fwdLat <= 0 || seqLat <= 0 {
		t.Fatalf("latencies not recorded: seq=%v fwd=%v", seqLat, fwdLat)
	}
	if fwdLat >= seqLat {
		t.Fatalf("forwarded route (%v) not faster than sequential (%v)", fwdLat, seqLat)
	}

	// Hop series exist for both hops in both modes.
	for _, res := range []*Result{seqRes, fwdRes} {
		rt := res.Routes[0]
		if len(rt.Hops) != 2 {
			t.Fatalf("route has %d hop series (forwarded=%v)", len(rt.Hops), rt.Forwarded)
		}
		for i, h := range rt.Hops {
			if h.Len() != transfers {
				t.Fatalf("hop %d series has %d samples (forwarded=%v)", i, h.Len(), rt.Forwarded)
			}
		}
		// Hops arrive in order.
		if rt.Hops[0].Max() >= rt.Hops[1].Max() {
			t.Fatalf("hop 2 (%v) not after hop 1 (%v)", rt.Hops[1].Max(), rt.Hops[0].Max())
		}
	}
}

// TestForwardedTimeoutUnwindEndToEnd injects a last-hop timeout through
// the full relayer stack: the hop's timeout margin is so tight the recv
// on the final chain always arrives late, the relayer proves the timeout
// back on the middle chain, and the origin sender ends up refunded with
// intermediate escrows and supplies restored.
func TestForwardedTimeoutUnwindEndToEnd(t *testing.T) {
	const transfers = 2
	sc := Scenario{
		Name:     "line3-forward-timeout",
		Topology: Line(3),
		Routes: []Route{{
			Path: []int{0, 1, 2}, Transfers: transfers,
			Forwarded: true, TimeoutBlocks: 1,
		}},
		Until: 20 * time.Minute,
	}
	d, err := Deploy(sc.Topology, DeployConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rr := &routeRun{route: sc.Routes[0]}
	d.Sched.At(time.Millisecond, func() { d.startForwardedRoute(rr) })
	d.Start()
	if err := d.Run(sc.Until); err != nil {
		t.Fatal(err)
	}
	// The route's packet lifecycles completed — with an error ack.
	if !rr.done {
		t.Fatal("unwound route never settled on the origin")
	}
	mw := d.Chains[1].Forward.Stats()
	if mw.Forwarded != transfers || mw.Unwound != transfers || mw.Completed != 0 {
		t.Fatalf("middleware stats = %+v", mw)
	}
	// Origin: senders refunded in full, escrow empty.
	bankA := d.Chains[0].App.Bank()
	if got := bankA.Balance("escrow/transfer/channel-0", "uatom"); got != 0 {
		t.Fatalf("origin escrow holds %d after unwind", got)
	}
	// Middle chain: voucher supply and escrows restored to zero.
	bankB := d.Chains[1].App.Bank()
	voucher := "transfer/channel-0/uatom"
	if got := bankB.Supply(voucher); got != 0 {
		t.Fatalf("middle-chain voucher supply = %d after unwind", got)
	}
	if got := bankB.Balance("escrow/transfer/channel-1", voucher); got != 0 {
		t.Fatalf("middle-chain escrow holds %d after unwind", got)
	}
	// Final chain: nothing was ever minted.
	if got := d.Chains[2].App.Bank().Supply("transfer/channel-0/" + voucher); got != 0 {
		t.Fatalf("final chain minted %d despite timeout", got)
	}
}

// TestReverseDirection exercises a route that traverses an edge against
// its A->B orientation (hub topologies: spoke -> hub).
func TestReverseDirection(t *testing.T) {
	sc := Scenario{
		Name:     "hub2-spoke-to-spoke",
		Topology: Hub(2),
		// Edges are hub->spoke; spoke1 -> hub -> spoke2 crosses edge 0 in
		// reverse.
		Routes: []Route{{Path: []int{1, 0, 2}, Transfers: 3}},
	}
	res, err := sc.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutesCompleted != 1 {
		t.Fatalf("spoke-to-spoke route incomplete: total=%v", res.Total)
	}
	if res.Total[metrics.StatusCompleted] != 6 {
		t.Fatalf("completed = %d, want 6", res.Total[metrics.StatusCompleted])
	}
}

func TestScenarioEdgeRates(t *testing.T) {
	sc := Scenario{
		Name:      "hub2-rates",
		Topology:  Hub(2),
		EdgeRates: map[int]int{0: 4, 1: 4},
		Windows:   4,
	}
	res, err := sc.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Edges {
		if e.Completion[metrics.StatusCompleted] == 0 {
			t.Fatalf("edge %d completed nothing: %+v", e.Edge, e)
		}
		if e.Workload.Requested != 4*4*5 {
			t.Fatalf("edge %d requested %d, want 80", e.Edge, e.Workload.Requested)
		}
	}
	if res.Throughput <= 0 {
		t.Fatalf("aggregate throughput = %f", res.Throughput)
	}
	var sb strings.Builder
	res.Render(&sb)
	for _, want := range []string{"scenario hub2-rates", "hub~ibc-1", "total:"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestScenarioRejectsBadInput(t *testing.T) {
	if _, err := (Scenario{Topology: Line(3), Routes: []Route{{Path: []int{0, 2}, Transfers: 1}}}).Run(1); err == nil {
		t.Fatal("route without edge accepted")
	}
	if _, err := (Scenario{Topology: TwoChain(), EdgeRates: map[int]int{5: 10}}).Run(1); err == nil {
		t.Fatal("rate on missing edge accepted")
	}
	if _, err := (Scenario{Topology: TwoChain(), Routes: []Route{{Path: []int{0, 1}}}}).Run(1); err == nil {
		t.Fatal("zero-transfer route accepted")
	}
}

// TestDeterminism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	run := func() string {
		sc := Scenario{
			Name:      "hub2",
			Topology:  Hub(2),
			EdgeRates: map[int]int{0: 2, 1: 2},
			Windows:   3,
		}
		res, err := sc.Run(77)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		res.Render(&sb)
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results:\n%s\nvs\n%s", a, b)
	}
}
