// Package valkey manages validator signing keys.
//
// Tendermint validators sign consensus votes with ed25519 keys; light
// clients authenticate counterparty headers by verifying those
// signatures against a known validator set. This package wraps the
// standard-library ed25519 implementation with deterministic key
// derivation so simulation runs are reproducible.
package valkey

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Address identifies a validator (first 20 bytes of the pubkey hash,
// like Tendermint's address derivation).
type Address [20]byte

// String renders the address as hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// PrivKey is a validator signing key.
type PrivKey struct {
	key ed25519.PrivateKey
	pub PubKey
}

// PubKey is a validator verification key.
type PubKey struct {
	key ed25519.PublicKey
}

// Derive deterministically creates a key pair from a chain ID and index.
// Deterministic derivation keeps experiment runs reproducible without
// seeding crypto/rand.
func Derive(chainID string, index int) *PrivKey {
	seed := sha256.Sum256([]byte(fmt.Sprintf("ibcbench/valkey/%s/%d", chainID, index)))
	priv := ed25519.NewKeyFromSeed(seed[:])
	pk := PubKey{key: priv.Public().(ed25519.PublicKey)}
	return &PrivKey{key: priv, pub: pk}
}

// Pub returns the verification key.
func (p *PrivKey) Pub() PubKey { return p.pub }

// Sign signs msg.
func (p *PrivKey) Sign(msg []byte) []byte {
	return ed25519.Sign(p.key, msg)
}

// Address derives the validator address from the public key.
func (k PubKey) Address() Address {
	h := sha256.Sum256(k.key)
	var a Address
	copy(a[:], h[:20])
	return a
}

// Verify reports whether sig is a valid signature of msg under the key.
func (k PubKey) Verify(msg, sig []byte) bool {
	if len(k.key) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(k.key, msg, sig)
}

// Bytes exposes the raw public key material (for header serialization).
func (k PubKey) Bytes() []byte { return append([]byte(nil), k.key...) }

// PubKeyFromBytes reconstructs a verification key.
func PubKeyFromBytes(b []byte) (PubKey, error) {
	if len(b) != ed25519.PublicKeySize {
		return PubKey{}, fmt.Errorf("valkey: bad public key length %d", len(b))
	}
	return PubKey{key: append(ed25519.PublicKey(nil), b...)}, nil
}
