package valkey

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	a := Derive("chain-a", 0)
	b := Derive("chain-a", 0)
	if a.Pub().Address() != b.Pub().Address() {
		t.Fatal("same derivation inputs produced different keys")
	}
	c := Derive("chain-a", 1)
	d := Derive("chain-b", 0)
	if a.Pub().Address() == c.Pub().Address() || a.Pub().Address() == d.Pub().Address() {
		t.Fatal("distinct derivation inputs collided")
	}
}

func TestSignVerify(t *testing.T) {
	k := Derive("chain-a", 3)
	msg := []byte("vote for block 7")
	sig := k.Sign(msg)
	if !k.Pub().Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if k.Pub().Verify([]byte("vote for block 8"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	other := Derive("chain-a", 4)
	if other.Pub().Verify(msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
	sig[0] ^= 0xff
	if k.Pub().Verify(msg, sig) {
		t.Fatal("tampered signature verified")
	}
}

func TestPubKeyRoundTrip(t *testing.T) {
	k := Derive("chain-a", 9)
	raw := k.Pub().Bytes()
	pk, err := PubKeyFromBytes(raw)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if pk.Address() != k.Pub().Address() {
		t.Fatal("round-tripped key has different address")
	}
	msg := []byte("m")
	if !pk.Verify(msg, k.Sign(msg)) {
		t.Fatal("round-tripped key cannot verify")
	}
	if _, err := PubKeyFromBytes([]byte("short")); err == nil {
		t.Fatal("accepted malformed key bytes")
	}
}

func TestAddressString(t *testing.T) {
	a := Derive("c", 0).Pub().Address()
	if len(a.String()) != 40 {
		t.Fatalf("address hex length = %d", len(a.String()))
	}
}
