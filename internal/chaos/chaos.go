// Package chaos is the deterministic fault-injection subsystem: a
// timeline of typed events applied at virtual times on the shared
// sim.Scheduler clock, driven against a Target (the deployed topology).
//
// Faults are declarative — PartitionLink, HealLink, LatencySpike,
// DropBurst, RelayerPause, RelayerResume — so a scenario's chaos
// schedule is part of its configuration: the same seed and timeline
// reproduce byte-identical results, and every applied fault is recorded
// in a Log folded into the scenario result.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"ibcbench/internal/sim"
)

// Kind enumerates fault event types.
type Kind int

// Fault kinds. Link events target a topology edge; relayer events target
// one relayer ordinal of an edge.
const (
	// PartitionLink severs an edge: with Relayer < 0 the whole
	// inter-chain link (every relayer of the edge loses both chains),
	// with Relayer >= 0 only that relayer's host drops off the network.
	PartitionLink Kind = iota + 1
	// HealLink reverses a PartitionLink with the same target.
	HealLink
	// LatencySpike adds ExtraLatency to every cross path of the edge
	// until cleared by a zero-magnitude spike. Spikes and bursts on one
	// edge compose independently.
	LatencySpike
	// DropBurst applies ExtraDrop loss probability to every cross path
	// of the edge until cleared by a zero-magnitude burst.
	DropBurst
	// RelayerPause stops one relayer process (crash injection).
	RelayerPause
	// RelayerResume restarts a paused relayer.
	RelayerResume
)

// String names the kind for logs and rendered results.
func (k Kind) String() string {
	switch k {
	case PartitionLink:
		return "partition"
	case HealLink:
		return "heal"
	case LatencySpike:
		return "latency-spike"
	case DropBurst:
		return "drop-burst"
	case RelayerPause:
		return "relayer-pause"
	case RelayerResume:
		return "relayer-resume"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind name so persisted results stay readable.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one scheduled fault.
type Event struct {
	// At is the virtual time the fault applies.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Edge is the target edge index of the topology.
	Edge int
	// Relayer targets one relayer ordinal of the edge (the standby is
	// the last ordinal). For PartitionLink/HealLink a negative value
	// severs the whole link; note the zero value targets relayer 0's
	// host, not the link.
	Relayer int
	// ExtraLatency is the LatencySpike magnitude (0 clears the spike).
	ExtraLatency time.Duration
	// ExtraDrop is the DropBurst loss probability (0 clears the burst).
	ExtraDrop float64
}

// Timeline is an ordered fault schedule.
type Timeline struct {
	Events []Event
}

// Empty reports whether the timeline schedules nothing.
func (t Timeline) Empty() bool { return len(t.Events) == 0 }

// Validate checks every event against the target's edge/relayer counts.
func (t Timeline) Validate(target Target) error {
	for i, ev := range t.Events {
		if ev.At < 0 {
			return fmt.Errorf("chaos: event %d at negative time %v", i, ev.At)
		}
		if ev.Edge < 0 || ev.Edge >= target.Edges() {
			return fmt.Errorf("chaos: event %d targets edge %d of %d", i, ev.Edge, target.Edges())
		}
		n := target.EdgeRelayers(ev.Edge)
		switch ev.Kind {
		case PartitionLink, HealLink:
			if ev.Relayer >= n {
				return fmt.Errorf("chaos: event %d targets relayer %d of %d on edge %d", i, ev.Relayer, n, ev.Edge)
			}
		case LatencySpike:
			if ev.ExtraLatency < 0 {
				return fmt.Errorf("chaos: event %d has negative latency spike", i)
			}
		case DropBurst:
			if ev.ExtraDrop < 0 || ev.ExtraDrop > 1 {
				return fmt.Errorf("chaos: event %d drop burst %.3f outside [0,1]", i, ev.ExtraDrop)
			}
		case RelayerPause, RelayerResume:
			if ev.Relayer < 0 || ev.Relayer >= n {
				return fmt.Errorf("chaos: event %d targets relayer %d of %d on edge %d", i, ev.Relayer, n, ev.Edge)
			}
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Target is the deployment surface a timeline drives. Implemented by
// topo.Deployment.
type Target interface {
	// Edges reports the topology's edge count.
	Edges() int
	// EdgeRelayers reports the relayer count of one edge.
	EdgeRelayers(edge int) int
	// PartitionEdge severs edge paths (relayer < 0: the whole link;
	// otherwise that relayer's host only). HealEdge reverses it;
	// overlapping partitions compose, each heal undoing one fault.
	PartitionEdge(edge, relayer int)
	HealEdge(edge, relayer int)
	// SetEdgeExtraLatency / SetEdgeExtraDrop apply one overlay component
	// to the edge's cross paths (0 clears that component only, so a
	// spike and a burst on one edge coexist).
	SetEdgeExtraLatency(edge int, extra time.Duration)
	SetEdgeExtraDrop(edge int, extra float64)
	// PauseRelayer / ResumeRelayer stop and restart one relayer process.
	PauseRelayer(edge, relayer int)
	ResumeRelayer(edge, relayer int)
}

// Applied is one log entry: the event plus a rendered description.
type Applied struct {
	At    time.Duration
	Event Event
	Desc  string
}

// Log records faults in application order.
type Log struct {
	Applied []Applied
}

// Injector schedules a timeline against a target on the virtual clock.
type Injector struct {
	log Log
}

// Inject validates the timeline and schedules every event. Events are
// scheduled in (At, index) order before the simulation starts, so runs
// are deterministic. The returned injector exposes the fault log.
func Inject(sched *sim.Scheduler, target Target, tl Timeline) (*Injector, error) {
	if err := tl.Validate(target); err != nil {
		return nil, err
	}
	events := append([]Event(nil), tl.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	in := &Injector{}
	for _, ev := range events {
		ev := ev
		sched.At(ev.At, func() { in.apply(target, ev) })
	}
	return in, nil
}

func (in *Injector) apply(target Target, ev Event) {
	var desc string
	switch ev.Kind {
	case PartitionLink:
		target.PartitionEdge(ev.Edge, ev.Relayer)
		desc = fmt.Sprintf("partition edge %d %s", ev.Edge, relayerDesc(ev.Relayer))
	case HealLink:
		target.HealEdge(ev.Edge, ev.Relayer)
		desc = fmt.Sprintf("heal edge %d %s", ev.Edge, relayerDesc(ev.Relayer))
	case LatencySpike:
		target.SetEdgeExtraLatency(ev.Edge, ev.ExtraLatency)
		desc = fmt.Sprintf("latency spike +%v on edge %d", ev.ExtraLatency, ev.Edge)
	case DropBurst:
		target.SetEdgeExtraDrop(ev.Edge, ev.ExtraDrop)
		desc = fmt.Sprintf("drop burst %.0f%% on edge %d", 100*ev.ExtraDrop, ev.Edge)
	case RelayerPause:
		target.PauseRelayer(ev.Edge, ev.Relayer)
		desc = fmt.Sprintf("pause relayer %d on edge %d", ev.Relayer, ev.Edge)
	case RelayerResume:
		target.ResumeRelayer(ev.Edge, ev.Relayer)
		desc = fmt.Sprintf("resume relayer %d on edge %d", ev.Relayer, ev.Edge)
	}
	in.log.Applied = append(in.log.Applied, Applied{At: ev.At, Event: ev, Desc: desc})
}

func relayerDesc(r int) string {
	if r < 0 {
		return "(whole link)"
	}
	return fmt.Sprintf("(relayer %d host)", r)
}

// Log returns the faults applied so far.
func (in *Injector) Log() Log { return in.log }
