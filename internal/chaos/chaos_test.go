package chaos

import (
	"fmt"
	"testing"
	"time"

	"ibcbench/internal/sim"
)

// fakeTarget records applied faults as strings.
type fakeTarget struct {
	edges    int
	relayers int
	log      []string
}

func (f *fakeTarget) Edges() int             { return f.edges }
func (f *fakeTarget) EdgeRelayers(int) int   { return f.relayers }
func (f *fakeTarget) PartitionEdge(e, r int) { f.log = append(f.log, fmt.Sprintf("part:%d/%d", e, r)) }
func (f *fakeTarget) HealEdge(e, r int)      { f.log = append(f.log, fmt.Sprintf("heal:%d/%d", e, r)) }
func (f *fakeTarget) SetEdgeExtraLatency(e int, lat time.Duration) {
	f.log = append(f.log, fmt.Sprintf("spike:%d/%v", e, lat))
}
func (f *fakeTarget) SetEdgeExtraDrop(e int, drop float64) {
	f.log = append(f.log, fmt.Sprintf("burst:%d/%.2f", e, drop))
}
func (f *fakeTarget) PauseRelayer(e, r int) { f.log = append(f.log, fmt.Sprintf("pause:%d/%d", e, r)) }
func (f *fakeTarget) ResumeRelayer(e, r int) {
	f.log = append(f.log, fmt.Sprintf("resume:%d/%d", e, r))
}

func TestValidateRejectsBadEvents(t *testing.T) {
	target := &fakeTarget{edges: 2, relayers: 1}
	bad := []Timeline{
		{Events: []Event{{At: -time.Second, Kind: HealLink}}},
		{Events: []Event{{Kind: PartitionLink, Edge: 2}}},
		{Events: []Event{{Kind: PartitionLink, Edge: -1}}},
		{Events: []Event{{Kind: RelayerPause, Edge: 0, Relayer: 1}}},
		{Events: []Event{{Kind: RelayerPause, Edge: 0, Relayer: -1}}},
		{Events: []Event{{Kind: PartitionLink, Edge: 0, Relayer: 5}}},
		{Events: []Event{{Kind: DropBurst, Edge: 0, ExtraDrop: 1.5}}},
		{Events: []Event{{Kind: LatencySpike, Edge: 0, ExtraLatency: -time.Second}}},
		{Events: []Event{{Kind: Kind(99), Edge: 0}}},
	}
	for i, tl := range bad {
		if err := tl.Validate(target); err == nil {
			t.Fatalf("case %d: bad timeline accepted", i)
		}
		if _, err := Inject(sim.NewScheduler(), target, tl); err == nil {
			t.Fatalf("case %d: bad timeline injected", i)
		}
	}
}

// TestInjectAppliesInTimeOrder: events fire at their virtual times in
// (At, declaration) order regardless of declaration order, and the log
// records each application.
func TestInjectAppliesInTimeOrder(t *testing.T) {
	target := &fakeTarget{edges: 2, relayers: 2}
	tl := Timeline{Events: []Event{
		{At: 30 * time.Second, Kind: HealLink, Edge: 0, Relayer: -1},
		{At: 10 * time.Second, Kind: PartitionLink, Edge: 0, Relayer: -1},
		{At: 20 * time.Second, Kind: LatencySpike, Edge: 1, ExtraLatency: 50 * time.Millisecond},
		{At: 20 * time.Second, Kind: RelayerPause, Edge: 1, Relayer: 1},
		{At: 40 * time.Second, Kind: RelayerResume, Edge: 1, Relayer: 1},
		{At: 40 * time.Second, Kind: DropBurst, Edge: 1, ExtraDrop: 0.5},
	}}
	s := sim.NewScheduler()
	inj, err := Inject(s, target, tl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"part:0/-1",
		"spike:1/50ms",
		"pause:1/1",
		"heal:0/-1",
		"resume:1/1",
		"burst:1/0.50",
	}
	if len(target.log) != len(want) {
		t.Fatalf("applied %d faults, want %d: %v", len(target.log), len(want), target.log)
	}
	for i, w := range want {
		if target.log[i] != w {
			t.Fatalf("fault %d = %s, want %s (full: %v)", i, target.log[i], w, target.log)
		}
	}
	log := inj.Log()
	if len(log.Applied) != len(want) {
		t.Fatalf("log has %d entries", len(log.Applied))
	}
	if log.Applied[0].At != 10*time.Second || log.Applied[0].Event.Kind != PartitionLink {
		t.Fatalf("log[0] = %+v", log.Applied[0])
	}
	for _, e := range log.Applied {
		if e.Desc == "" {
			t.Fatalf("empty description for %+v", e.Event)
		}
	}
}

func TestStandbyOrdinalAllowedForPartition(t *testing.T) {
	// PartitionLink accepts relayer ordinals up to the target's count
	// (the standby is the last ordinal) and -1 for the whole link.
	target := &fakeTarget{edges: 1, relayers: 2}
	tl := Timeline{Events: []Event{
		{Kind: PartitionLink, Edge: 0, Relayer: -1},
		{Kind: PartitionLink, Edge: 0, Relayer: 1},
	}}
	if err := tl.Validate(target); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		PartitionLink: "partition", HealLink: "heal",
		LatencySpike: "latency-spike", DropBurst: "drop-burst",
		RelayerPause: "relayer-pause", RelayerResume: "relayer-resume",
	} {
		if k.String() != want {
			t.Fatalf("%d = %s, want %s", int(k), k, want)
		}
		if b, err := k.MarshalText(); err != nil || string(b) != want {
			t.Fatalf("marshal %s: %s %v", want, b, err)
		}
	}
}
