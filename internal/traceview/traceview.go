// Package traceview is the trace analytics engine: it consumes the
// Chrome/Perfetto event stream — either straight from a live
// obs.Tracer buffer or re-parsed from a stored trace document through
// the tracecheck streaming reader — and computes aggregate views the
// raw event list cannot answer directly: a merged span tree / flame
// view per subsystem with total/self time (flame.go), and per-packet
// critical-path analysis over the lifecycle flows (critpath.go).
//
// Both sources normalize into the same []Event in the same canonical
// order, so FromTracer on a run's buffers and FromChrome on the
// exported bytes of that run yield identical analysis output, and a
// same-seed rerun produces byte-identical JSON and SVG documents —
// the same determinism discipline the exporter itself follows.
package traceview

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"ibcbench/internal/obs"
	"ibcbench/internal/tracecheck"
)

// Event is one normalized trace event: resolved track/name strings,
// virtual-time nanoseconds, and the async flow ID in the exporter's
// "0x…" string form (empty for sync phases).
type Event struct {
	TS    time.Duration
	Dur   time.Duration
	Track string
	Name  string
	ID    string
	Phase byte
}

// FromTracer normalizes a live tracer's buffers. Async IDs are
// formatted exactly as the Chrome exporter writes them so the two
// sources agree byte-for-byte downstream.
func FromTracer(t *obs.Tracer) []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	t.Events(func(ev obs.Event) {
		e := Event{
			TS:    ev.TS,
			Dur:   ev.Dur,
			Track: t.TrackName(ev.Track),
			Name:  t.NameString(ev.Name),
			Phase: ev.Phase,
		}
		switch ev.Phase {
		case obs.PhaseAsyncBegin, obs.PhaseAsyncInstant, obs.PhaseAsyncEnd:
			e.ID = "0x" + strconv.FormatUint(ev.ID, 16)
		}
		out = append(out, e)
	})
	sortEvents(out)
	return out
}

// FromChrome normalizes a stored trace-event document via the
// tracecheck streaming reader. Track names come from the thread_name
// metadata rows (falling back to "track-<tid>" for unnamed threads);
// microsecond float timestamps convert back to nanoseconds exactly
// because the exporter writes fixed three-decimal microseconds.
func FromChrome(data []byte) ([]Event, error) {
	threads := map[int]string{}
	type pending struct {
		ev  Event
		tid int
	}
	var raw []pending
	err := tracecheck.Events(data, func(ev tracecheck.Event, _, _ int, _ int64) error {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.TID] = ev.Args.Name
			}
		case "X", "i", "b", "n", "e":
			raw = append(raw, pending{Event{
				TS:    microsToDur(ev.TS),
				Dur:   microsToDur(ev.Dur),
				Name:  ev.Name,
				ID:    ev.ID,
				Phase: ev.Phase[0],
			}, ev.TID})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Event, len(raw))
	for i, p := range raw {
		e := p.ev
		if name, ok := threads[p.tid]; ok && name != "" {
			e.Track = name
		} else {
			e.Track = "track-" + strconv.Itoa(p.tid)
		}
		out[i] = e
	}
	sortEvents(out)
	return out, nil
}

// microsToDur converts an exporter microsecond timestamp back to a
// duration. Rounding absorbs float formatting/parsing wobble; the
// exporter's fixed three-decimal rendering makes the round-trip exact.
func microsToDur(us float64) time.Duration {
	return time.Duration(math.Round(us * 1000))
}

// phaseRank mirrors the exporter's stable phase ordering for events
// sharing a timestamp: begins before the activity they bracket, ends
// after.
func phaseRank(p byte) int {
	switch p {
	case 'b':
		return 0
	case 'X':
		return 1
	case 'i':
		return 2
	case 'n':
		return 3
	case 'e':
		return 4
	}
	return 5
}

// sortEvents orders events by a canonical total key — (TS, phase,
// track, name, id, dur) — so analysis output depends only on the
// multiset of events, never on source or recording order. Tracks
// compare by name here (not intern ID), which both sources share.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if ra, rb := phaseRank(a.Phase), phaseRank(b.Phase); ra != rb {
			return ra < rb
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Dur < b.Dur
	})
}

// subsystemOf reduces a track name to its subsystem prefix ("chain/A"
// → "chain"), matching the trace-summary grouping.
func subsystemOf(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i]
	}
	return track
}

// fmtShare renders a 0..1 fraction as a fixed-precision percentage.
func fmtShare(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}
