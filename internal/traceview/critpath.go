// Critical-path analysis: walk every packet-lifecycle flow (the async
// "pkt" events sharing one trace ID — forwarded hops share the origin
// ID) in virtual-time order and attribute each inter-event gap to the
// lifecycle step that closed it, grouped by edge (the track the step
// landed on) and route hop (the ordinal of that track's first
// appearance within the flow). The result answers the paper's core
// question — which step dominates end-to-end latency, on which edge —
// with p50/p99 per step via metrics.Quantile, each step's share of
// total end-to-end time, and the count of packets for which that step
// was the single largest contributor ("dominant").
//
// Attribution is exhaustive by construction: a flow's first and last
// events bound its end-to-end window and every step instant closes the
// gap back to the previous event, so residual unattributed time is
// only the tail between the last step and the flow's end. It is still
// computed and reported explicitly rather than assumed zero.
package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"ibcbench/internal/metrics"
)

// StepStat is the latency distribution of one lifecycle step within
// one (edge, hop) group.
type StepStat struct {
	Step     string        `json:"step"`
	Count    int           `json:"count"`
	P50      time.Duration `json:"p50"`
	P99      time.Duration `json:"p99"`
	Mean     time.Duration `json:"mean"`
	Max      time.Duration `json:"max"`
	Total    time.Duration `json:"total"`
	Share    float64       `json:"share"`
	Dominant int           `json:"dominant,omitempty"`
}

// CritGroup aggregates the steps observed on one edge at one route
// hop. Hop 0 is the flow's origin track; a forwarded route's second
// leg appears as hop 1 on the intermediate chain's track.
type CritGroup struct {
	Edge  string        `json:"edge"`
	Hop   int           `json:"hop"`
	Flows int           `json:"flows"`
	Total time.Duration `json:"total"`
	Steps []StepStat    `json:"steps"`
}

// LatencyDist summarizes the end-to-end latency across flows.
type LatencyDist struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
	Mean  time.Duration `json:"mean"`
	Max   time.Duration `json:"max"`
}

// CritPath is the full critical-path analysis of one trace.
type CritPath struct {
	Flows           int           `json:"flows"`
	StepEvents      int           `json:"step_events"`
	EndToEnd        LatencyDist   `json:"end_to_end"`
	TotalEndToEnd   time.Duration `json:"total_end_to_end"`
	Attributed      time.Duration `json:"attributed"`
	Residual        time.Duration `json:"residual"`
	AttributedShare float64       `json:"attributed_share"`
	WorstFlowShare  float64       `json:"worst_flow_share"`
	Groups          []CritGroup   `json:"groups"`
}

// stepOrder maps lifecycle step names to their paper ordinal so tables
// read in transfer order rather than alphabetically; unknown names
// sort after, alphabetically.
var stepOrder = func() map[string]int {
	m := make(map[string]int, metrics.NumSteps)
	for i := 1; i <= metrics.NumSteps; i++ {
		m[metrics.Step(i).String()] = i
	}
	return m
}()

func stepRank(name string) int {
	if r, ok := stepOrder[name]; ok {
		return r
	}
	return metrics.NumSteps + 1
}

// CriticalPath analyzes every async flow in events. Events must be in
// canonical order (FromTracer/FromChrome guarantee it); flows are
// processed in first-appearance order and aggregation is commutative,
// so the result depends only on the event multiset.
func CriticalPath(events []Event) *CritPath {
	flows := map[string][]Event{}
	var order []string
	for _, ev := range events {
		switch ev.Phase {
		case 'b', 'n', 'e':
			if ev.ID == "" {
				continue
			}
			if _, ok := flows[ev.ID]; !ok {
				order = append(order, ev.ID)
			}
			flows[ev.ID] = append(flows[ev.ID], ev)
		}
	}

	type groupKey struct {
		edge string
		hop  int
	}
	type stepKey struct {
		g    groupKey
		step string
	}
	type stepAgg struct {
		samples  []float64 // nanoseconds
		total    time.Duration
		dominant int
	}
	stepAggs := map[stepKey]*stepAgg{}
	groupFlows := map[groupKey]map[string]bool{}

	cp := &CritPath{Flows: len(flows)}
	var e2eSamples []float64
	for _, id := range order {
		evs := flows[id]
		first, last := evs[0].TS, evs[len(evs)-1].TS
		e2e := last - first
		cp.TotalEndToEnd += e2e
		e2eSamples = append(e2eSamples, float64(e2e))

		hops := map[string]int{}
		prev := first
		var attributed time.Duration
		var domKey stepKey
		var domDelta time.Duration
		domSet := false
		for _, ev := range evs {
			if _, ok := hops[ev.Track]; !ok {
				hops[ev.Track] = len(hops)
			}
			if ev.Phase != 'n' {
				continue
			}
			delta := ev.TS - prev
			prev = ev.TS
			cp.StepEvents++
			g := groupKey{edge: ev.Track, hop: hops[ev.Track]}
			k := stepKey{g: g, step: ev.Name}
			agg := stepAggs[k]
			if agg == nil {
				agg = &stepAgg{}
				stepAggs[k] = agg
			}
			agg.samples = append(agg.samples, float64(delta))
			agg.total += delta
			attributed += delta
			if gf := groupFlows[g]; gf == nil {
				groupFlows[g] = map[string]bool{id: true}
			} else {
				gf[id] = true
			}
			if !domSet || delta > domDelta {
				domKey, domDelta, domSet = k, delta, true
			}
		}
		cp.Attributed += attributed
		if domSet {
			stepAggs[domKey].dominant++
		}
		flowShare := 1.0
		if e2e > 0 {
			flowShare = float64(attributed) / float64(e2e)
		}
		if len(e2eSamples) == 1 || flowShare < cp.WorstFlowShare {
			cp.WorstFlowShare = flowShare
		}
	}
	cp.Residual = cp.TotalEndToEnd - cp.Attributed
	cp.AttributedShare = 1.0
	if cp.TotalEndToEnd > 0 {
		cp.AttributedShare = float64(cp.Attributed) / float64(cp.TotalEndToEnd)
	}
	if cp.Flows == 0 {
		cp.WorstFlowShare = 1.0
	}
	cp.EndToEnd = summarizeDist(e2eSamples)

	groups := map[groupKey]*CritGroup{}
	var keys []groupKey
	for k, agg := range stepAggs {
		g := groups[k.g]
		if g == nil {
			g = &CritGroup{Edge: k.g.edge, Hop: k.g.hop, Flows: len(groupFlows[k.g])}
			groups[k.g] = g
			keys = append(keys, k.g)
		}
		sort.Float64s(agg.samples)
		share := 0.0
		if cp.TotalEndToEnd > 0 {
			share = float64(agg.total) / float64(cp.TotalEndToEnd)
		}
		g.Total += agg.total
		g.Steps = append(g.Steps, StepStat{
			Step:     k.step,
			Count:    len(agg.samples),
			P50:      durQuantile(agg.samples, 0.50),
			P99:      durQuantile(agg.samples, 0.99),
			Mean:     time.Duration(math.Round(mean(agg.samples))),
			Max:      time.Duration(agg.samples[len(agg.samples)-1]),
			Total:    agg.total,
			Share:    share,
			Dominant: agg.dominant,
		})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].hop != keys[j].hop {
			return keys[i].hop < keys[j].hop
		}
		return keys[i].edge < keys[j].edge
	})
	for _, k := range keys {
		g := groups[k]
		sort.Slice(g.Steps, func(i, j int) bool {
			if ri, rj := stepRank(g.Steps[i].Step), stepRank(g.Steps[j].Step); ri != rj {
				return ri < rj
			}
			return g.Steps[i].Step < g.Steps[j].Step
		})
		cp.Groups = append(cp.Groups, *g)
	}
	return cp
}

func durQuantile(sorted []float64, q float64) time.Duration {
	return time.Duration(math.Round(metrics.Quantile(sorted, q)))
}

func mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

func summarizeDist(samples []float64) LatencyDist {
	d := LatencyDist{Count: len(samples)}
	if len(samples) == 0 {
		return d
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	d.P50 = durQuantile(s, 0.50)
	d.P99 = durQuantile(s, 0.99)
	d.Mean = time.Duration(math.Round(mean(s)))
	d.Max = time.Duration(s[len(s)-1])
	return d
}

// CritPathJSON renders the analysis as the canonical indented JSON
// document (durations as integer nanoseconds — exactly reproducible).
func CritPathJSON(cp *CritPath) []byte {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil { // plain values cannot fail to marshal
		panic(err)
	}
	return append(data, '\n')
}

// WriteCritPath renders the analysis as aligned tables: a header with
// the attribution accounting, the end-to-end distribution, and one row
// per (edge, hop, step).
func WriteCritPath(w io.Writer, cp *CritPath) {
	fmt.Fprintf(w, "# critical path: %d flow(s), %d step event(s), attributed %s of end-to-end (residual %v, worst flow %s)\n",
		cp.Flows, cp.StepEvents, fmtShare(cp.AttributedShare), cp.Residual, fmtShare(cp.WorstFlowShare))
	fmt.Fprintf(w, "end-to-end: n=%d p50=%v p99=%v mean=%v max=%v\n",
		cp.EndToEnd.Count, cp.EndToEnd.P50, cp.EndToEnd.P99, cp.EndToEnd.Mean, cp.EndToEnd.Max)
	fmt.Fprintf(w, "%-16s %-4s %-24s %-7s %-14s %-14s %-8s %s\n",
		"edge", "hop", "step", "count", "p50", "p99", "share", "dominant")
	for _, g := range cp.Groups {
		for _, st := range g.Steps {
			fmt.Fprintf(w, "%-16s %-4d %-24s %-7d %-14v %-14v %-8s %d\n",
				g.Edge, g.Hop, st.Step, st.Count, st.P50, st.P99, fmtShare(st.Share), st.Dominant)
		}
	}
}

// Critical-path SVG geometry.
const (
	critWidth  = 720.0
	critRowH   = 16.0
	critLabelW = 300.0
	critPad    = 2.0
)

// CritPathSVG renders the per-step share of end-to-end latency as a
// horizontal bar chart, one row per (edge, hop, step), bars scaled to
// the largest share. Deterministic like FlameSVG: fixed geometry,
// fixed two-decimal coordinates, name-hashed step colors.
func CritPathSVG(w io.Writer, cp *CritPath) error {
	rows := 0
	maxShare := 0.0
	for _, g := range cp.Groups {
		rows += len(g.Steps)
		for _, st := range g.Steps {
			if st.Share > maxShare {
				maxShare = st.Share
			}
		}
	}
	height := float64(rows)*critRowH + 2*critPad
	if rows == 0 {
		height = critRowH + 2*critPad
	}
	if _, err := fmt.Fprintf(w,
		"<svg class=\"critpath\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\" aria-label=\"critical path step shares\">\n",
		critWidth, height, critWidth, height); err != nil {
		return err
	}
	if rows == 0 {
		if _, err := fmt.Fprintf(w,
			"<text x=\"%.0f\" y=\"%.0f\" font-size=\"11\" fill=\"#888888\">no lifecycle flows in trace</text>\n",
			critPad+2, critRowH-4); err != nil {
			return err
		}
	}
	barSpan := critWidth - critLabelW - 3*critPad
	y := critPad
	for _, g := range cp.Groups {
		for _, st := range g.Steps {
			label := fmt.Sprintf("%s h%d %s", g.Edge, g.Hop, st.Step)
			title := fmt.Sprintf("%s hop %d — %s: count %d, p50 %v, p99 %v, total %v (%s of end-to-end), dominant for %d flow(s)",
				g.Edge, g.Hop, st.Step, st.Count, st.P50, st.P99, st.Total, fmtShare(st.Share), st.Dominant)
			width := 0.0
			if maxShare > 0 {
				width = st.Share / maxShare * barSpan
			}
			if _, err := fmt.Fprintf(w,
				"<g><title>%s</title><text x=\"%.2f\" y=\"%.2f\" font-size=\"10\" fill=\"#555555\">%s</text><rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.0f\" rx=\"1\" fill=\"%s\"/><text x=\"%.2f\" y=\"%.2f\" font-size=\"10\" fill=\"#333333\">%s</text></g>\n",
				svgEscape(title),
				critPad+2, y+critRowH-5, svgEscape(flameLabel(label, critLabelW)),
				critLabelW+critPad, y+2, width, critRowH-4, flameColor(st.Step),
				critLabelW+critPad+width+4, y+critRowH-5, fmtShare(st.Share)); err != nil {
				return err
			}
			y += critRowH
		}
	}
	_, err := fmt.Fprintf(w, "</svg>\n")
	return err
}
