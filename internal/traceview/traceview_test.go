package traceview_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ibcbench/internal/obs"
	"ibcbench/internal/topo"
	"ibcbench/internal/traceview"
)

// forwardedScenario is the instrumented forwarded-route run the
// analytics tests share: a 3-chain line with per-edge load plus a
// forwarded A->B->C route, so the trace carries both nested sync spans
// and multi-hop lifecycle flows.
func forwardedScenario(o *obs.Obs) topo.Scenario {
	return topo.Scenario{
		Name:      "line3-forward-analytics",
		Topology:  topo.Line(3),
		Deploy:    topo.DeployConfig{Obs: o},
		EdgeRates: map[int]int{0: 2, 1: 2},
		Windows:   2,
		Routes:    []topo.Route{{Path: []int{0, 1, 2}, Transfers: 2, Forwarded: true}},
	}
}

// runForwarded executes the scenario and returns the normalized events
// plus the exported Chrome document.
func runForwarded(t *testing.T, seed int64) ([]traceview.Event, []byte) {
	t.Helper()
	o := obs.New()
	if _, err := forwardedScenario(o).Run(seed); err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := o.Tracer.WriteChrome(&doc); err != nil {
		t.Fatal(err)
	}
	return traceview.FromTracer(o.Tracer), doc.Bytes()
}

// analyze renders all four analysis documents for one event stream.
func analyze(t *testing.T, events []traceview.Event) (flameJSON, flameSVG, critJSON, critSVG []byte) {
	t.Helper()
	root := traceview.Flame(events)
	cp := traceview.CriticalPath(events)
	var fs, cs bytes.Buffer
	if err := traceview.FlameSVG(&fs, root); err != nil {
		t.Fatal(err)
	}
	if err := traceview.CritPathSVG(&cs, cp); err != nil {
		t.Fatal(err)
	}
	return traceview.FlameJSON(root), fs.Bytes(), traceview.CritPathJSON(cp), cs.Bytes()
}

// TestAnalysisDeterminism pins the tentpole contract: two same-seed
// runs produce byte-identical flame and critical-path documents, JSON
// and SVG alike.
func TestAnalysisDeterminism(t *testing.T) {
	ev1, _ := runForwarded(t, 23)
	ev2, _ := runForwarded(t, 23)
	fj1, fs1, cj1, cs1 := analyze(t, ev1)
	fj2, fs2, cj2, cs2 := analyze(t, ev2)
	for _, c := range []struct {
		name string
		a, b []byte
	}{
		{"flame JSON", fj1, fj2},
		{"flame SVG", fs1, fs2},
		{"critpath JSON", cj1, cj2},
		{"critpath SVG", cs1, cs2},
	} {
		if !bytes.Equal(c.a, c.b) {
			t.Errorf("same-seed %s differs (%d vs %d bytes)", c.name, len(c.a), len(c.b))
		}
		if len(c.a) == 0 {
			t.Errorf("%s is empty", c.name)
		}
	}
}

// TestSourcesAgree pins the two-source contract: analyzing the live
// tracer buffers and re-parsing the exported Chrome document yield the
// same normalized events and byte-identical analysis output.
func TestSourcesAgree(t *testing.T) {
	fromTracer, doc := runForwarded(t, 31)
	fromChrome, err := traceview.FromChrome(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromTracer) != len(fromChrome) {
		t.Fatalf("event counts differ: tracer %d, chrome %d", len(fromTracer), len(fromChrome))
	}
	for i := range fromTracer {
		if fromTracer[i] != fromChrome[i] {
			t.Fatalf("event %d differs:\ntracer: %+v\nchrome: %+v", i, fromTracer[i], fromChrome[i])
		}
	}
	fj1, fs1, cj1, cs1 := analyze(t, fromTracer)
	fj2, fs2, cj2, cs2 := analyze(t, fromChrome)
	if !bytes.Equal(fj1, fj2) || !bytes.Equal(fs1, fs2) || !bytes.Equal(cj1, cj2) || !bytes.Equal(cs1, cs2) {
		t.Fatal("tracer-sourced and chrome-sourced analysis documents differ")
	}
}

// TestForwardedAttribution pins the acceptance criterion: on a stored
// forwarded-route trace, the critical path attributes at least 95% of
// every packet's end-to-end latency to lifecycle steps, with the
// residual reported explicitly, and the forwarded hop appears as a
// distinct hop-1 group.
func TestForwardedAttribution(t *testing.T) {
	_, doc := runForwarded(t, 23)
	events, err := traceview.FromChrome(doc)
	if err != nil {
		t.Fatal(err)
	}
	cp := traceview.CriticalPath(events)
	if cp.Flows == 0 || cp.StepEvents == 0 {
		t.Fatalf("no lifecycle flows in trace: %+v", cp)
	}
	if cp.WorstFlowShare < 0.95 {
		t.Fatalf("worst flow attributes only %.3f of end-to-end, want >= 0.95", cp.WorstFlowShare)
	}
	if cp.AttributedShare < 0.95 {
		t.Fatalf("aggregate attribution %.3f, want >= 0.95", cp.AttributedShare)
	}
	if cp.Attributed+cp.Residual != cp.TotalEndToEnd {
		t.Fatalf("accounting leak: attributed %v + residual %v != total %v", cp.Attributed, cp.Residual, cp.TotalEndToEnd)
	}
	if cp.Residual < 0 {
		t.Fatalf("negative residual %v", cp.Residual)
	}
	hop1 := false
	for _, g := range cp.Groups {
		if g.Hop == 1 {
			hop1 = true
		}
		var groupTotal time.Duration
		for _, st := range g.Steps {
			if st.Count <= 0 || st.P99 < st.P50 || st.Max < st.P99 {
				t.Fatalf("degenerate step stat in %s h%d: %+v", g.Edge, g.Hop, st)
			}
			groupTotal += st.Total
		}
		if groupTotal != g.Total {
			t.Fatalf("group %s h%d total %v != step sum %v", g.Edge, g.Hop, g.Total, groupTotal)
		}
	}
	if !hop1 {
		t.Fatalf("forwarded route produced no hop-1 group: %+v", cp.Groups)
	}
}

// TestFlameTreeInvariants: container totals equal their children's
// sum, self time never exceeds total, and rendered documents carry the
// expected structure markers.
func TestFlameTreeInvariants(t *testing.T) {
	events, _ := runForwarded(t, 23)
	root := traceview.Flame(events)
	if root.Name != "run" || root.Total <= 0 {
		t.Fatalf("bad root: %+v", root)
	}
	var walk func(n *traceview.FlameNode)
	walk = func(n *traceview.FlameNode) {
		var kids time.Duration
		for _, c := range n.Children {
			kids += c.Total
			walk(c)
		}
		if n.Count == 0 && n.Total != kids {
			t.Fatalf("container %q total %v != children sum %v", n.Name, n.Total, kids)
		}
		if n.Self < 0 || n.Self > n.Total {
			t.Fatalf("node %q self %v outside [0, %v]", n.Name, n.Self, n.Total)
		}
		for i := 1; i < len(n.Children); i++ {
			a, b := n.Children[i-1], n.Children[i]
			if a.Total < b.Total || (a.Total == b.Total && a.Name > b.Name) {
				t.Fatalf("children of %q not in canonical order: %q before %q", n.Name, a.Name, b.Name)
			}
		}
	}
	walk(root)
	subsystems := map[string]bool{}
	for _, c := range root.Children {
		subsystems[c.Name] = true
	}
	if !subsystems["chain"] || !subsystems["relayer"] {
		t.Fatalf("expected chain and relayer subsystems, got %v", subsystems)
	}
	var svg bytes.Buffer
	if err := traceview.FlameSVG(&svg, root); err != nil {
		t.Fatal(err)
	}
	out := svg.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "<title>run") {
		t.Fatalf("flame SVG missing structure: %.120s", out)
	}
}

// TestCriticalPathSynthetic checks the attribution math on a
// hand-built two-hop flow where every delta is known.
func TestCriticalPathSynthetic(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []traceview.Event{
		{TS: ms(0), Phase: 'b', Track: "chain/A", Name: "pkt", ID: "0x1"},
		{TS: ms(10), Phase: 'n', Track: "chain/A", Name: "Transfer broadcast", ID: "0x1"},
		{TS: ms(40), Phase: 'n', Track: "chain/B", Name: "Packet relayed", ID: "0x1"},
		{TS: ms(100), Phase: 'n', Track: "chain/B", Name: "Packet relayed", ID: "0x1"},
		{TS: ms(100), Phase: 'e', Track: "chain/A", Name: "pkt", ID: "0x1"},
	}
	cp := traceview.CriticalPath(events)
	if cp.Flows != 1 || cp.StepEvents != 3 {
		t.Fatalf("flows %d steps %d, want 1/3", cp.Flows, cp.StepEvents)
	}
	if cp.TotalEndToEnd != ms(100) || cp.Attributed != ms(100) || cp.Residual != 0 {
		t.Fatalf("accounting: total %v attributed %v residual %v", cp.TotalEndToEnd, cp.Attributed, cp.Residual)
	}
	if cp.WorstFlowShare != 1.0 || cp.AttributedShare != 1.0 {
		t.Fatalf("shares: worst %v aggregate %v", cp.WorstFlowShare, cp.AttributedShare)
	}
	if len(cp.Groups) != 2 {
		t.Fatalf("groups: %+v", cp.Groups)
	}
	g0, g1 := cp.Groups[0], cp.Groups[1]
	if g0.Edge != "chain/A" || g0.Hop != 0 || g0.Total != ms(10) {
		t.Fatalf("hop-0 group: %+v", g0)
	}
	if g1.Edge != "chain/B" || g1.Hop != 1 || g1.Total != ms(90) {
		t.Fatalf("hop-1 group: %+v", g1)
	}
	relayed := g1.Steps[0]
	if relayed.Count != 2 || relayed.Total != ms(90) || relayed.Max != ms(60) {
		t.Fatalf("relayed step: %+v", relayed)
	}
	// The 60ms second relay dwarfs every other delta, so it is the
	// flow's dominant step.
	if relayed.Dominant != 1 {
		t.Fatalf("dominant count: %+v", relayed)
	}
	if relayed.Share != 0.9 {
		t.Fatalf("share %v, want 0.9", relayed.Share)
	}
}
