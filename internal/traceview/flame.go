// Flame view: merge every complete span into one aggregated call tree
// — run → subsystem → nested span names — with total and self time per
// node. Nesting within a track is recovered by the same start-ordered
// stack sweep the trace summary uses, then identical paths from every
// track instance merge into one node, so "how much block time is
// verify, across all chains" reads off a single row.
package traceview

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"
)

// FlameNode is one aggregated node of the merged span tree. Total is
// the summed duration of every merged span instance; Self is Total
// minus the time covered by child spans. Pure container nodes (the
// root and subsystems) have Count 0 and Self 0.
type FlameNode struct {
	Name     string        `json:"name"`
	Count    int           `json:"count,omitempty"`
	Total    time.Duration `json:"total"`
	Self     time.Duration `json:"self"`
	Children []*FlameNode  `json:"children,omitempty"`
}

// flameSpan is one complete span during the per-track nesting sweep.
type flameSpan struct {
	start, end time.Duration
	name       string
}

// Flame aggregates every complete span in events into a merged tree
// rooted at "run". Children are sorted by total time descending (ties
// by name), making the document deterministic for a given event
// multiset.
func Flame(events []Event) *FlameNode {
	perTrack := map[string][]flameSpan{}
	var trackNames []string
	for _, ev := range events {
		if ev.Phase != 'X' {
			continue
		}
		if _, ok := perTrack[ev.Track]; !ok {
			trackNames = append(trackNames, ev.Track)
		}
		perTrack[ev.Track] = append(perTrack[ev.Track], flameSpan{start: ev.TS, end: ev.TS + ev.Dur, name: ev.Name})
	}
	sort.Strings(trackNames)

	root := &FlameNode{Name: "run"}
	index := map[*FlameNode]map[string]*FlameNode{}
	child := func(parent *FlameNode, name string) *FlameNode {
		kids := index[parent]
		if kids == nil {
			kids = map[string]*FlameNode{}
			index[parent] = kids
		}
		if n, ok := kids[name]; ok {
			return n
		}
		n := &FlameNode{Name: name}
		kids[name] = n
		parent.Children = append(parent.Children, n)
		return n
	}

	for _, track := range trackNames {
		spans := perTrack[track]
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			if spans[i].end != spans[j].end {
				return spans[i].end > spans[j].end // parent before equal-start child
			}
			return spans[i].name < spans[j].name // interleaving-independent tie
		})
		sub := child(root, subsystemOf(track))
		type frame struct {
			end  time.Duration
			node *FlameNode
		}
		var stack []frame
		for _, sp := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= sp.start {
				stack = stack[:len(stack)-1]
			}
			parent := sub
			if len(stack) > 0 {
				parent = stack[len(stack)-1].node
			}
			node := child(parent, sp.name)
			node.Count++
			node.Total += sp.end - sp.start
			stack = append(stack, frame{end: sp.end, node: node})
		}
	}
	finalizeFlame(root)
	return root
}

// finalizeFlame rolls container totals up from their children, derives
// self time, and sorts every child list into the canonical order.
func finalizeFlame(n *FlameNode) {
	var kids time.Duration
	for _, c := range n.Children {
		finalizeFlame(c)
		kids += c.Total
	}
	if n.Count == 0 {
		n.Total = kids
	} else if n.Self = n.Total - kids; n.Self < 0 {
		// Overlapping siblings (possible in hand-edited traces) can
		// push covered time past the parent; clamp rather than report
		// negative self time.
		n.Self = 0
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		if n.Children[i].Total != n.Children[j].Total {
			return n.Children[i].Total > n.Children[j].Total
		}
		return n.Children[i].Name < n.Children[j].Name
	})
}

// FlameJSON renders the tree as the canonical indented JSON document.
// Durations marshal as integer nanoseconds, so the bytes are exactly
// reproducible for a given tree.
func FlameJSON(root *FlameNode) []byte {
	data, err := json.MarshalIndent(root, "", "  ")
	if err != nil { // a tree of plain values cannot fail to marshal
		panic(err)
	}
	return append(data, '\n')
}

// WriteFlame renders the tree as an indented table, depth-first in
// canonical order. maxRows bounds the output (0 = unlimited); subtrees
// below 0.05% of the run are elided to keep the table readable.
func WriteFlame(w io.Writer, root *FlameNode, maxRows int) {
	total := root.Total
	fmt.Fprintf(w, "%-44s %-8s %-14s %-14s %s\n", "span tree", "count", "total", "self", "share")
	rows := 0
	var walk func(n *FlameNode, depth int)
	walk = func(n *FlameNode, depth int) {
		if maxRows > 0 && rows >= maxRows {
			return
		}
		share := 1.0
		if total > 0 {
			share = float64(n.Total) / float64(total)
		}
		if depth > 0 && share < 0.0005 {
			return
		}
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		fmt.Fprintf(w, "%-44s %-8d %-14v %-14v %s\n", indent+n.Name, n.Count, n.Total, n.Self, fmtShare(share))
		rows++
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// flamePalette is the fixed fill rotation; a node's color depends only
// on its name so the same span reads the same across runs and views.
var flamePalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
	"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
}

func flameColor(name string) string {
	h := fnv.New32a()
	h.Write([]byte(name))
	return flamePalette[h.Sum32()%uint32(len(flamePalette))]
}

// Flame SVG geometry.
const (
	flameWidth  = 720.0
	flameRowH   = 18.0
	flameMinPx  = 0.5 // sub-pixel rects (and their subtrees) are elided
	flamePad    = 2.0
	flameLabelW = 6.5 // conservative per-character width estimate
)

// FlameSVG renders the tree as an inline icicle chart: the root spans
// the full width, each child row nests beneath proportionally to its
// total time, and every rect carries a <title> tooltip with the exact
// numbers. Output is deterministic: fixed geometry, fixed two-decimal
// coordinates, name-hashed fill colors.
func FlameSVG(w io.Writer, root *FlameNode) error {
	depth := flameDepth(root)
	height := float64(depth)*flameRowH + 2*flamePad
	if _, err := fmt.Fprintf(w,
		"<svg class=\"flame\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\" aria-label=\"flame graph\">\n",
		flameWidth, height, flameWidth, height); err != nil {
		return err
	}
	if root.Total > 0 {
		scale := (flameWidth - 2*flamePad) / float64(root.Total)
		if err := writeFlameNode(w, root, root.Total, flamePad, flamePad, scale); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</svg>\n")
	return err
}

func flameDepth(n *FlameNode) int {
	d := 0
	for _, c := range n.Children {
		if cd := flameDepth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

func writeFlameNode(w io.Writer, n *FlameNode, runTotal time.Duration, x, y, scale float64) error {
	width := float64(n.Total) * scale
	if width < flameMinPx {
		return nil
	}
	share := float64(n.Total) / float64(runTotal)
	title := fmt.Sprintf("%s — count %d, total %v, self %v (%s of run)",
		n.Name, n.Count, n.Total, n.Self, fmtShare(share))
	if _, err := fmt.Fprintf(w,
		"<g><title>%s</title><rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.0f\" rx=\"1\" fill=\"%s\" stroke=\"#ffffff\" stroke-width=\"0.5\"/>",
		svgEscape(title), x, y, width, flameRowH-1, flameColor(n.Name)); err != nil {
		return err
	}
	if label := flameLabel(n.Name, width); label != "" {
		if _, err := fmt.Fprintf(w,
			"<text x=\"%.2f\" y=\"%.2f\" font-size=\"11\" fill=\"#ffffff\">%s</text>",
			x+3, y+flameRowH-6, svgEscape(label)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "</g>\n"); err != nil {
		return err
	}
	cx := x
	for _, c := range n.Children {
		if err := writeFlameNode(w, c, runTotal, cx, y+flameRowH, scale); err != nil {
			return err
		}
		cx += float64(c.Total) * scale
	}
	return nil
}

// flameLabel truncates a name to what fits inside a rect of the given
// pixel width, or returns "" when even a few characters don't fit.
func flameLabel(name string, width float64) string {
	fit := int((width - 6) / flameLabelW)
	if fit < 3 {
		return ""
	}
	if len(name) <= fit {
		return name
	}
	if fit <= 1 {
		return ""
	}
	return name[:fit-1] + "…"
}

// svgEscape escapes text for embedding in SVG/XML content.
func svgEscape(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
