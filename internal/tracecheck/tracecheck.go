// Package tracecheck structurally validates Chrome trace-event
// documents (the `-trace` export format): JSON shape, span timing, and
// async begin/end balance. The checker streams the traceEvents array
// with a json.Decoder so a violation is reported with the event's
// index, line and byte offset — the exporter writes one event per line,
// making the line number directly actionable. It is shared by the CLI's
// `-validate-trace` command, the experiment service (which validates
// every trace at ingest time and badges invalid ones), and the
// traceview analytics engine, which re-parses stored traces through the
// same streaming reader.
package tracecheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// EventArgs carries the optional per-event argument object: metadata
// names (process_name/thread_name rows) and the exporter's numeric
// counter payload.
type EventArgs struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

// Event mirrors the subset of the Chrome trace-event schema the
// validator and the traceview reader consume.
type Event struct {
	Name  string    `json:"name"`
	Phase string    `json:"ph"`
	TS    float64   `json:"ts"`
	Dur   float64   `json:"dur"`
	Cat   string    `json:"cat"`
	ID    string    `json:"id"`
	PID   int       `json:"pid"`
	TID   int       `json:"tid"`
	Args  EventArgs `json:"args"`
}

// Error is one structural violation, located at the first offending
// event. Index is the event's ordinal in traceEvents (-1 when the
// violation is not tied to a single event), Line/Offset locate it in
// the document bytes (1-based line, 0-based byte offset; 0/-1 when
// unknown).
type Error struct {
	Index  int
	Line   int
	Offset int64
	Name   string
	Msg    string
}

func (e *Error) Error() string {
	loc := ""
	if e.Line > 0 {
		loc = fmt.Sprintf(" at line %d (offset %d)", e.Line, e.Offset)
	}
	if e.Index >= 0 {
		return fmt.Sprintf("event %d (%s)%s: %s", e.Index, e.Name, loc, e.Msg)
	}
	return e.Msg + loc
}

// Stats summarizes a valid document.
type Stats struct {
	Events int
	Phases map[string]int
}

// PhaseList renders the per-phase counts sorted by phase ("X=12 b=3").
func (s Stats) PhaseList() string {
	phases := make([]string, 0, len(s.Phases))
	for ph := range s.Phases {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	var buf bytes.Buffer
	for i, ph := range phases {
		if i > 0 {
			buf.WriteByte(' ')
		}
		fmt.Fprintf(&buf, "%s=%d", ph, s.Phases[ph])
	}
	return buf.String()
}

// loc converts a decoder offset (which points just past the previous
// token) into the 1-based line and offset of the next non-separator
// byte — the start of the element about to be decoded.
func loc(data []byte, off int64) (int, int64) {
	i := off
	for i < int64(len(data)) {
		switch data[i] {
		case ' ', '\t', '\r', '\n', ',', '[', ':':
			i++
			continue
		}
		break
	}
	return 1 + bytes.Count(data[:i], []byte{'\n'}), i
}

// Events streams every element of the document's traceEvents array to
// fn in document order, passing each event's ordinal index, 1-based
// line, and byte offset. Document-structure problems (not JSON, no
// traceEvents key, malformed array) are returned as *Error; an error
// from fn aborts the stream and is returned unchanged. Event-level
// timing semantics are fn's business — Validate layers them on top.
func Events(data []byte, fn func(ev Event, index, line int, offset int64) error) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	syntax := func(err error) error {
		off := int64(-1)
		if serr, ok := err.(*json.SyntaxError); ok {
			off = serr.Offset
		}
		line := 0
		if off >= 0 {
			line = 1 + bytes.Count(data[:min(off, int64(len(data)))], []byte{'\n'})
		}
		return &Error{Index: -1, Line: line, Offset: off, Msg: fmt.Sprintf("not a trace-event document: %v", err)}
	}
	tok, err := dec.Token()
	if err != nil {
		return syntax(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return &Error{Index: -1, Msg: fmt.Sprintf("not a trace-event document: top-level %v, want object", tok)}
	}
	sawEvents := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return syntax(err)
		}
		key, _ := keyTok.(string)
		if key != "traceEvents" {
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return syntax(err)
			}
			continue
		}
		sawEvents = true
		if tok, err := dec.Token(); err != nil {
			return syntax(err)
		} else if d, ok := tok.(json.Delim); !ok || d != '[' {
			return &Error{Index: -1, Msg: fmt.Sprintf("traceEvents is %v, want array", tok)}
		}
		for i := 0; dec.More(); i++ {
			off := dec.InputOffset()
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				return syntax(err)
			}
			line, at := loc(data, off)
			if err := fn(ev, i, line, at); err != nil {
				return err
			}
		}
		if tok, err := dec.Token(); err != nil { // closing ']'
			return syntax(err)
		} else if d, ok := tok.(json.Delim); !ok || d != ']' {
			return &Error{Index: -1, Msg: fmt.Sprintf("traceEvents terminated by %v", tok)}
		}
	}
	if tok, err := dec.Token(); err != nil { // closing '}'
		return syntax(err)
	} else if d, ok := tok.(json.Delim); !ok || d != '}' {
		return &Error{Index: -1, Msg: fmt.Sprintf("document terminated by %v", tok)}
	}
	if !sawEvents {
		return &Error{Index: -1, Msg: "no trace events"}
	}
	return nil
}

// openSpan remembers where an async span began, so an unbalanced trace
// is reported at its opening event.
type openSpan struct {
	index  int
	line   int
	offset int64
	name   string
	cat    string
	id     string
}

// Validate structurally checks a trace-event document: the bytes must
// parse as the JSON Object Format ({"traceEvents": [...]}), complete
// spans need non-negative timestamps and durations, no event may carry
// a negative dur, timestamps must be non-decreasing per track (tid) —
// the exporter's canonical order guarantees it — and every async trace
// must open and close in order on each (cat, id) pair. The first
// violation is returned as an *Error carrying the offending event's
// index, line and byte offset.
func Validate(data []byte) (Stats, error) {
	stats := Stats{Phases: map[string]int{}}
	type asyncKey struct{ cat, id string }
	open := map[asyncKey][]openSpan{}
	lastTS := map[int]float64{}
	err := Events(data, func(ev Event, i, line int, off int64) error {
		stats.Events++
		stats.Phases[ev.Phase]++
		fail := func(format string, args ...any) error {
			return &Error{Index: i, Line: line, Offset: off, Name: ev.Name, Msg: fmt.Sprintf(format, args...)}
		}
		switch ev.Phase {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return fail("negative ts/dur")
			}
		case "i":
			if ev.TS < 0 {
				return fail("negative ts")
			}
		case "b", "n", "e":
			if ev.ID == "" {
				return fail("async event without id")
			}
			k := asyncKey{ev.Cat, ev.ID}
			switch ev.Phase {
			case "b":
				open[k] = append(open[k], openSpan{index: i, line: line, offset: off, name: ev.Name, cat: ev.Cat, id: ev.ID})
			case "n":
				if len(open[k]) == 0 {
					return fail("async instant outside open span (%s, %s)", ev.Cat, ev.ID)
				}
			case "e":
				if len(open[k]) == 0 {
					return fail("async end without begin (%s, %s)", ev.Cat, ev.ID)
				}
				open[k] = open[k][:len(open[k])-1]
			}
		case "M":
			// metadata: no timing constraints
			return nil
		default:
			return fail("unknown phase %q", ev.Phase)
		}
		// Negative durations are malformed on every timing phase, not
		// just complete spans (X reports the combined message above).
		if ev.Dur < 0 {
			return fail("negative dur")
		}
		// The exporter emits canonically TS-sorted events, so per-track
		// timestamps never decrease in document order; a decrease means
		// the document was edited or merged out of order.
		if last, seen := lastTS[ev.TID]; seen && ev.TS < last {
			return fail("ts %.3f decreases below %.3f on tid %d", ev.TS, last, ev.TID)
		}
		lastTS[ev.TID] = ev.TS
		return nil
	})
	if err != nil {
		return stats, err
	}
	// Report the earliest still-open begin so the line points at the
	// span that never closed.
	var leaked *openSpan
	for _, spans := range open {
		for i := range spans {
			if leaked == nil || spans[i].index < leaked.index {
				leaked = &spans[i]
			}
		}
	}
	if leaked != nil {
		return stats, &Error{
			Index: leaked.index, Line: leaked.line, Offset: leaked.offset, Name: leaked.name,
			Msg: fmt.Sprintf("async span (%s, %s) never ends", leaked.cat, leaked.id),
		}
	}
	if stats.Events == 0 {
		return stats, &Error{Index: -1, Msg: "no trace events"}
	}
	return stats, nil
}
