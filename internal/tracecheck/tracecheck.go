// Package tracecheck structurally validates Chrome trace-event
// documents (the `-trace` export format): JSON shape, span timing, and
// async begin/end balance. The checker streams the traceEvents array
// with a json.Decoder so a violation is reported with the event's
// index, line and byte offset — the exporter writes one event per line,
// making the line number directly actionable. It is shared by the CLI's
// `-validate-trace` command and the experiment service, which validates
// every trace at ingest time and badges invalid ones.
package tracecheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Event mirrors the subset of the Chrome trace-event schema the
// validator checks.
type Event struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Cat   string  `json:"cat"`
	ID    string  `json:"id"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// Error is one structural violation, located at the first offending
// event. Index is the event's ordinal in traceEvents (-1 when the
// violation is not tied to a single event), Line/Offset locate it in
// the document bytes (1-based line, 0-based byte offset; 0/-1 when
// unknown).
type Error struct {
	Index  int
	Line   int
	Offset int64
	Name   string
	Msg    string
}

func (e *Error) Error() string {
	loc := ""
	if e.Line > 0 {
		loc = fmt.Sprintf(" at line %d (offset %d)", e.Line, e.Offset)
	}
	if e.Index >= 0 {
		return fmt.Sprintf("event %d (%s)%s: %s", e.Index, e.Name, loc, e.Msg)
	}
	return e.Msg + loc
}

// Stats summarizes a valid document.
type Stats struct {
	Events int
	Phases map[string]int
}

// PhaseList renders the per-phase counts sorted by phase ("X=12 b=3").
func (s Stats) PhaseList() string {
	phases := make([]string, 0, len(s.Phases))
	for ph := range s.Phases {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	var buf bytes.Buffer
	for i, ph := range phases {
		if i > 0 {
			buf.WriteByte(' ')
		}
		fmt.Fprintf(&buf, "%s=%d", ph, s.Phases[ph])
	}
	return buf.String()
}

// loc converts a decoder offset (which points just past the previous
// token) into the 1-based line and offset of the next non-separator
// byte — the start of the element about to be decoded.
func loc(data []byte, off int64) (int, int64) {
	i := off
	for i < int64(len(data)) {
		switch data[i] {
		case ' ', '\t', '\r', '\n', ',', '[', ':':
			i++
			continue
		}
		break
	}
	return 1 + bytes.Count(data[:i], []byte{'\n'}), i
}

// openSpan remembers where an async span began, so an unbalanced trace
// is reported at its opening event.
type openSpan struct {
	index  int
	line   int
	offset int64
	name   string
}

// Validate structurally checks a trace-event document: the bytes must
// parse as the JSON Object Format ({"traceEvents": [...]}), complete
// spans need non-negative timestamps and durations, and every async
// trace must open and close in order on each (cat, id) pair. The first
// violation is returned as an *Error carrying the offending event's
// index, line and byte offset.
func Validate(data []byte) (Stats, error) {
	stats := Stats{Phases: map[string]int{}}
	dec := json.NewDecoder(bytes.NewReader(data))
	fail := func(off int64, index int, name, format string, args ...any) error {
		line, at := loc(data, off)
		return &Error{Index: index, Line: line, Offset: at, Name: name, Msg: fmt.Sprintf(format, args...)}
	}
	syntax := func(err error) error {
		off := int64(-1)
		if serr, ok := err.(*json.SyntaxError); ok {
			off = serr.Offset
		}
		line := 0
		if off >= 0 {
			line = 1 + bytes.Count(data[:min(off, int64(len(data)))], []byte{'\n'})
		}
		return &Error{Index: -1, Line: line, Offset: off, Msg: fmt.Sprintf("not a trace-event document: %v", err)}
	}
	tok, err := dec.Token()
	if err != nil {
		return stats, syntax(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return stats, &Error{Index: -1, Msg: fmt.Sprintf("not a trace-event document: top-level %v, want object", tok)}
	}
	sawEvents := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return stats, syntax(err)
		}
		key, _ := keyTok.(string)
		if key != "traceEvents" {
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return stats, syntax(err)
			}
			continue
		}
		sawEvents = true
		if tok, err := dec.Token(); err != nil {
			return stats, syntax(err)
		} else if d, ok := tok.(json.Delim); !ok || d != '[' {
			return stats, &Error{Index: -1, Msg: fmt.Sprintf("traceEvents is %v, want array", tok)}
		}
		type asyncKey struct{ cat, id string }
		open := map[asyncKey][]openSpan{}
		for i := 0; dec.More(); i++ {
			off := dec.InputOffset()
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				return stats, syntax(err)
			}
			stats.Events++
			stats.Phases[ev.Phase]++
			switch ev.Phase {
			case "X":
				if ev.TS < 0 || ev.Dur < 0 {
					return stats, fail(off, i, ev.Name, "negative ts/dur")
				}
			case "i":
				if ev.TS < 0 {
					return stats, fail(off, i, ev.Name, "negative ts")
				}
			case "b", "n", "e":
				if ev.ID == "" {
					return stats, fail(off, i, ev.Name, "async event without id")
				}
				k := asyncKey{ev.Cat, ev.ID}
				switch ev.Phase {
				case "b":
					line, at := loc(data, off)
					open[k] = append(open[k], openSpan{index: i, line: line, offset: at, name: ev.Name})
				case "n":
					if len(open[k]) == 0 {
						return stats, fail(off, i, ev.Name, "async instant outside open span (%s, %s)", ev.Cat, ev.ID)
					}
				case "e":
					if len(open[k]) == 0 {
						return stats, fail(off, i, ev.Name, "async end without begin (%s, %s)", ev.Cat, ev.ID)
					}
					open[k] = open[k][:len(open[k])-1]
				}
			case "M":
				// metadata: no timing constraints
			default:
				return stats, fail(off, i, ev.Name, "unknown phase %q", ev.Phase)
			}
		}
		if tok, err := dec.Token(); err != nil { // closing ']'
			return stats, syntax(err)
		} else if d, ok := tok.(json.Delim); !ok || d != ']' {
			return stats, &Error{Index: -1, Msg: fmt.Sprintf("traceEvents terminated by %v", tok)}
		}
		// Report the earliest still-open begin so the line points at the
		// span that never closed.
		var leaked *openSpan
		var leakedKey asyncKey
		for k, spans := range open {
			for i := range spans {
				sp := spans[i]
				if leaked == nil || sp.index < leaked.index {
					leaked = &spans[i]
					leakedKey = k
				}
			}
		}
		if leaked != nil {
			return stats, &Error{
				Index: leaked.index, Line: leaked.line, Offset: leaked.offset, Name: leaked.name,
				Msg: fmt.Sprintf("async span (%s, %s) never ends", leakedKey.cat, leakedKey.id),
			}
		}
	}
	if tok, err := dec.Token(); err != nil { // closing '}'
		return stats, syntax(err)
	} else if d, ok := tok.(json.Delim); !ok || d != '}' {
		return stats, &Error{Index: -1, Msg: fmt.Sprintf("document terminated by %v", tok)}
	}
	if !sawEvents || stats.Events == 0 {
		return stats, &Error{Index: -1, Msg: "no trace events"}
	}
	return stats, nil
}
