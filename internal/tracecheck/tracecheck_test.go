package tracecheck

import (
	"errors"
	"strings"
	"testing"
)

const validDoc = `{"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"ibcbench"}},
{"ph":"X","pid":1,"tid":1,"ts":0,"dur":5,"name":"block","cat":"sim"},
{"ph":"i","pid":1,"tid":1,"ts":2,"name":"clear","cat":"sim"},
{"ph":"b","pid":1,"tid":2,"ts":1,"name":"pkt","cat":"pkt","id":"0x1"},
{"ph":"n","pid":1,"tid":2,"ts":2,"name":"recv","cat":"pkt","id":"0x1"},
{"ph":"e","pid":1,"tid":2,"ts":3,"name":"pkt","cat":"pkt","id":"0x1"}
]}
`

func TestValidateAcceptsWellFormed(t *testing.T) {
	stats, err := Validate([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 6 {
		t.Fatalf("Events = %d, want 6", stats.Events)
	}
	if got := stats.PhaseList(); got != "M=1 X=1 b=1 e=1 i=1 n=1" {
		t.Fatalf("PhaseList = %q", got)
	}
}

// TestValidateLocatesFirstViolation pins the line/offset reporting: the
// exporter writes one event per line, so the error must name the exact
// line of the first offending event.
func TestValidateLocatesFirstViolation(t *testing.T) {
	doc := `{"traceEvents":[
{"ph":"X","ts":0,"dur":1,"name":"ok"},
{"ph":"X","ts":1,"dur":-2,"name":"bad"},
{"ph":"Q","ts":2,"name":"never-reached"}
]}`
	_, err := Validate([]byte(doc))
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if verr.Index != 1 || verr.Line != 3 || verr.Name != "bad" {
		t.Fatalf("violation at index %d line %d name %q, want 1/3/bad (%v)", verr.Index, verr.Line, verr.Name, err)
	}
	if verr.Offset <= 0 || doc[verr.Offset] != '{' {
		t.Fatalf("offset %d does not point at the event start", verr.Offset)
	}
	for _, want := range []string{"line 3", "offset", "negative ts/dur"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q misses %q", err, want)
		}
	}
}

func TestValidateRejectsBrokenDocs(t *testing.T) {
	cases := map[string]string{
		"not-json":             `{"traceEvents": [`,
		"not-object":           `[1, 2]`,
		"no-events-key":        `{"displayTimeUnit": "ms"}`,
		"empty":                `{"traceEvents": []}`,
		"unknown-phase":        `{"traceEvents": [{"name":"x","ph":"Q","ts":0}]}`,
		"negative-dur":         `{"traceEvents": [{"name":"x","ph":"X","ts":1,"dur":-2}]}`,
		"negative-ts":          `{"traceEvents": [{"name":"x","ph":"i","ts":-1}]}`,
		"id-less-async":        `{"traceEvents": [{"name":"p","ph":"b","cat":"pkt","ts":0}]}`,
		"unbalanced":           `{"traceEvents": [{"name":"p","ph":"b","cat":"pkt","id":"0x1","ts":0}]}`,
		"end-no-begin":         `{"traceEvents": [{"name":"p","ph":"e","cat":"pkt","id":"0x1","ts":0}]}`,
		"orphan-async":         `{"traceEvents": [{"name":"p","ph":"n","cat":"pkt","id":"0x1","ts":0}]}`,
		"instant-negative-dur": `{"traceEvents": [{"name":"x","ph":"i","ts":1,"dur":-2}]}`,
		"ts-regression": `{"traceEvents": [
{"name":"a","ph":"X","tid":1,"ts":5,"dur":1},
{"name":"b","ph":"X","tid":1,"ts":4,"dur":1}]}`,
	}
	for name, doc := range cases {
		if _, err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted a broken document", name)
		}
	}
}

// TestValidateUnbalancedPointsAtBegin: a leaked async span is reported
// at the begin event that never closed, not at end-of-file.
func TestValidateUnbalancedPointsAtBegin(t *testing.T) {
	doc := `{"traceEvents":[
{"ph":"b","cat":"pkt","id":"0x1","ts":0,"name":"closed"},
{"ph":"e","cat":"pkt","id":"0x1","ts":1,"name":"closed"},
{"ph":"b","cat":"pkt","id":"0x2","ts":2,"name":"leaked"}
]}`
	_, err := Validate([]byte(doc))
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if verr.Index != 2 || verr.Line != 4 || verr.Name != "leaked" {
		t.Fatalf("leak reported at index %d line %d name %q, want 2/4/leaked", verr.Index, verr.Line, verr.Name)
	}
}

// TestValidateTSMonotonicPerTrack: timestamps may interleave across
// tracks, but within one tid they must never decrease; the violation is
// reported with the event's line and byte offset like every other.
func TestValidateTSMonotonicPerTrack(t *testing.T) {
	ok := `{"traceEvents":[
{"ph":"X","tid":1,"ts":0,"dur":1,"name":"a"},
{"ph":"X","tid":2,"ts":9,"dur":1,"name":"b"},
{"ph":"X","tid":1,"ts":0,"dur":1,"name":"c"},
{"ph":"X","tid":2,"ts":9,"dur":1,"name":"d"}
]}`
	if _, err := Validate([]byte(ok)); err != nil {
		t.Fatalf("interleaved tracks rejected: %v", err)
	}
	bad := `{"traceEvents":[
{"ph":"X","tid":1,"ts":5,"dur":1,"name":"first"},
{"ph":"M","tid":1,"name":"thread_name","args":{"name":"late metadata is fine"}},
{"ph":"X","tid":1,"ts":4,"dur":1,"name":"rewound"}
]}`
	_, err := Validate([]byte(bad))
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if verr.Index != 2 || verr.Line != 4 || verr.Name != "rewound" {
		t.Fatalf("violation at index %d line %d name %q, want 2/4/rewound (%v)", verr.Index, verr.Line, verr.Name, err)
	}
	if verr.Offset <= 0 || bad[verr.Offset] != '{' {
		t.Fatalf("offset %d does not point at the event start", verr.Offset)
	}
	if !strings.Contains(err.Error(), "decreases") {
		t.Fatalf("error %q does not mention the ts decrease", err)
	}
}

// TestValidateNegativeDurAllPhases: negative durations are rejected on
// every timing phase, not just complete spans.
func TestValidateNegativeDurAllPhases(t *testing.T) {
	for _, ph := range []string{"i", "b", "n", "e"} {
		doc := `{"traceEvents":[
{"ph":"b","cat":"pkt","id":"0x1","ts":0,"name":"open"},
{"ph":"` + ph + `","cat":"pkt","id":"0x1","ts":1,"dur":-3,"name":"bad"},
{"ph":"e","cat":"pkt","id":"0x1","ts":2,"name":"open"}
]}`
		_, err := Validate([]byte(doc))
		var verr *Error
		if !errors.As(err, &verr) {
			t.Fatalf("phase %s: error type %T: %v", ph, err, err)
		}
		if verr.Name != "bad" || !strings.Contains(verr.Msg, "negative dur") {
			t.Fatalf("phase %s: got %v, want negative-dur at event %q", ph, err, "bad")
		}
	}
}

// TestEventsStreamsDocumentOrder: the exported streaming reader hands
// every event to the callback in document order with its location, and
// surfaces metadata args (traceview resolves tid → track names from
// thread_name rows).
func TestEventsStreamsDocumentOrder(t *testing.T) {
	var names []string
	var lines []int
	err := Events([]byte(validDoc), func(ev Event, index, line int, offset int64) error {
		names = append(names, ev.Name)
		lines = append(lines, line)
		if index == 0 {
			if ev.Phase != "M" || ev.Args.Name != "ibcbench" {
				t.Fatalf("metadata args not decoded: %+v", ev)
			}
		}
		if validDoc[offset] != '{' {
			t.Fatalf("event %d offset %d does not point at the event start", index, offset)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"process_name", "block", "clear", "pkt", "recv", "pkt"}
	if len(names) != len(want) {
		t.Fatalf("streamed %d events, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("event %d name %q, want %q", i, names[i], n)
		}
		if lines[i] != i+2 {
			t.Fatalf("event %d line %d, want %d", i, lines[i], i+2)
		}
	}
}

// TestValidateNestedAsyncSameKey: reopening the same (cat, id) nests;
// each begin needs its own end.
func TestValidateNestedAsyncSameKey(t *testing.T) {
	doc := `{"traceEvents":[
{"ph":"b","cat":"pkt","id":"0x1","ts":0,"name":"outer"},
{"ph":"b","cat":"pkt","id":"0x1","ts":1,"name":"inner"},
{"ph":"e","cat":"pkt","id":"0x1","ts":2,"name":"inner"},
{"ph":"e","cat":"pkt","id":"0x1","ts":3,"name":"outer"}
]}`
	if _, err := Validate([]byte(doc)); err != nil {
		t.Fatal(err)
	}
}
