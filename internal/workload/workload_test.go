package workload

import (
	"testing"
	"time"

	"ibcbench/internal/chain"
	"ibcbench/internal/metrics"
	"ibcbench/internal/tendermint/rpc"
)

func testEnv(seed int64) (*chain.Testbed, *Generator, *metrics.Tracker) {
	tb := chain.NewTestbed(chain.DefaultTestbed(seed))
	tracker := metrics.NewTracker()
	node := tb.Pair.A.AddRPCNode(rpc.Config{})
	g := New(tb.Sched, tb.RNG, tb.Pair, node, tracker)
	tb.Start()
	return tb, g, tracker
}

func TestSubmitBatchCommits(t *testing.T) {
	tb, g, tracker := testEnv(1)
	tb.Sched.At(time.Second, func() { g.SubmitBatch(250) })
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Requested != 250 || st.Submitted != 250 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// 250 transfers = 3 txs (100+100+50) from 3 distinct accounts.
	ok, _ := tb.Pair.A.App.TxStats()
	if ok != 3 {
		t.Fatalf("committed txs = %d, want 3", ok)
	}
	// Broadcast + confirmation recorded for every packet.
	if tracker.Tracked() != 250 {
		t.Fatalf("tracked = %d", tracker.Tracked())
	}
	counts := tracker.CompletionCounts()
	if counts[metrics.StatusInitiated] != 250 {
		t.Fatalf("counts = %v (no relayer, should all be initiated)", counts)
	}
}

func TestAccountsRotateAcrossWindows(t *testing.T) {
	tb, g, _ := testEnv(2)
	g.RunConstantRate(40, 3) // 200 transfers = 2 txs per window, 3 windows
	if err := tb.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Requested != 600 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Submitted != 600 {
		t.Fatalf("submitted = %d; account reuse stalled submission", st.Submitted)
	}
}

func TestInjectDirectSingleBlock(t *testing.T) {
	tb, g, _ := testEnv(3)
	tb.Sched.At(time.Millisecond, func() { g.InjectDirect(1000) })
	if err := tb.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// All 10 txs land in one block.
	found := false
	for h := int64(1); h <= tb.Pair.A.Store.Height(); h++ {
		cb, _ := tb.Pair.A.Store.Block(h)
		if len(cb.Block.Data) == 10 {
			found = true
		} else if len(cb.Block.Data) != 0 {
			t.Fatalf("txs split across blocks: %d at height %d", len(cb.Block.Data), h)
		}
	}
	if !found {
		t.Fatal("no single block carried all injected txs")
	}
}
