// Package workload implements the paper's Benchmark module: the
// Cross-chain Workload Connector submitting fungible-token transfer
// batches through the relayer's full node (§III-B, §III-D).
//
// Every transaction carries 100 MsgTransfer messages (the relayer's
// batching cap) and each user account submits at most one transaction
// per block — the paper's workaround for the Cosmos "account sequence
// mismatch" limitation. Input rates are expressed in requests per second
// assuming the 5-second block floor: a rate of R means a batch of 5R
// transfers submitted every block window.
package workload

import (
	"encoding/json"
	"fmt"
	"time"

	"ibcbench/internal/app"
	"ibcbench/internal/chain"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/metrics"
	"ibcbench/internal/netem"
	"ibcbench/internal/sim"
	"ibcbench/internal/simconf"
	"ibcbench/internal/tendermint/rpc"
	"ibcbench/internal/tendermint/store"
	"ibcbench/internal/tendermint/types"

	ibctypes "ibcbench/internal/ibc"
)

// Stats counts request outcomes (Table I's columns).
type Stats struct {
	// Requested counts transfers handed to the connector.
	Requested int
	// Submitted counts transfers whose transaction entered the mempool.
	Submitted int
	// Failed counts transfers whose submission was rejected or timed out.
	Failed int
}

// Generator drives transfer submission against the source chain.
type Generator struct {
	sched   *sim.Scheduler
	rng     *sim.RNG
	source  *chain.Chain
	destTop func() int64 // destination height, for timeouts
	rpcNode *rpc.Server
	host    netem.Host
	tracker *metrics.Tracker

	// MsgsPerTx is the batch size per transaction (paper: 100).
	MsgsPerTx int
	// TimeoutBlocks sets packet timeout height = dest height + this.
	TimeoutBlocks int64
	// SourcePort/SourceChannel address the IBC channel transfers leave
	// through (per-edge on multi-channel chains).
	SourcePort    string
	SourceChannel string
	// AccountPrefix namespaces this generator's user accounts so several
	// generators can share one source chain without sequence clashes.
	AccountPrefix string
	// Memo is attached to every transfer (a pfm forward memo turns the
	// generator's transfers into multi-hop forwarded routes).
	Memo string

	accounts []string
	nextSeq  map[string]uint64
	nonce    uint64
	// acctCursor rotates account usage across batches: the paper scales
	// the number of concurrent user accounts with the submitted volume,
	// so consecutive windows never reuse an account whose previous
	// transaction is still unconfirmed.
	acctCursor int

	// broadcastAt remembers when each workload tx was broadcast so the
	// paper's latency origin ("from the moment transfer messages are
	// broadcast") can be keyed per packet once sequences are assigned at
	// commit time.
	broadcastAt map[types.Hash]time.Duration

	// keys accumulates, in commit order, the packet keys this generator's
	// transfers produced — the attribution handle for callers that must
	// follow exactly their own packets on a shared channel.
	keys []metrics.PacketKey

	stats Stats
}

// New creates a generator submitting to the given RPC node of the source
// chain (the relayer's full node, as in the paper's tool). Transfers run
// in the pair's A -> B direction.
func New(sched *sim.Scheduler, rng *sim.RNG, pair *chain.Pair, node *rpc.Server, tracker *metrics.Tracker) *Generator {
	return NewOnChannel(sched, rng, pair.A, pair.B, pair.ChannelAB, node, tracker)
}

// NewOnChannel creates a generator submitting transfers from src to dst
// over the given source-side channel — the building block for per-edge
// workloads on arbitrary topologies.
func NewOnChannel(sched *sim.Scheduler, rng *sim.RNG, src, dst *chain.Chain, sourceChannel string, node *rpc.Server, tracker *metrics.Tracker) *Generator {
	g := &Generator{
		sched:         sched,
		rng:           rng,
		source:        src,
		destTop:       func() int64 { return dst.Store.Height() },
		rpcNode:       node,
		host:          netem.Host("workload/driver-" + src.ID + "-" + sourceChannel),
		tracker:       tracker,
		MsgsPerTx:     simconf.RelayerMaxMsgsPerTx,
		TimeoutBlocks: 10000,
		SourcePort:    "transfer",
		SourceChannel: sourceChannel,
		AccountPrefix: "user",
		nextSeq:       make(map[string]uint64),
		broadcastAt:   make(map[types.Hash]time.Duration),
	}
	if tracker != nil {
		src.Engine.OnCommit(func(cb *store.CommittedBlock) { g.recordBroadcasts(src.ID, cb) })
	}
	return g
}

// recordBroadcasts keys each committed packet back to the virtual time
// its transaction was broadcast.
func (g *Generator) recordBroadcasts(chainID string, cb *store.CommittedBlock) {
	for i, tx := range cb.Block.Data {
		at, ok := g.broadcastAt[tx.Hash()]
		if !ok {
			continue
		}
		delete(g.broadcastAt, tx.Hash())
		for _, ev := range cb.Results[i].Events {
			if ev.Type != "send_packet" {
				continue
			}
			var p ibctypes.Packet
			if err := json.Unmarshal([]byte(ev.Attributes["packet"]), &p); err != nil {
				continue
			}
			key := metrics.PacketKey{
				SrcChain: chainID, Channel: p.SourceChannel, Sequence: p.Sequence,
			}
			g.keys = append(g.keys, key)
			g.tracker.Record(key, metrics.StepTransferBroadcast, at)
			// The Analysis module reads commitment directly from chain
			// data (the Cross-chain Data Connector), so confirmation is
			// recorded even when the relayer loses the event frame.
			g.tracker.Record(key, metrics.StepTransferConfirmation, g.sched.Now())
		}
	}
}

// ObserveDestHeight replaces the generator's destination-height view
// (used only to stamp packet timeout heights) with one tracked from the
// given destination RPC node's block frames. The default closure reads
// the destination store directly — fine on a shared scheduler, but under
// the parallel runner the destination commits on another partition, so
// the value would depend on cross-partition timing. The observed height
// is a function of delivered frames, which the runner reproduces
// exactly.
func (g *Generator) ObserveDestHeight(node *rpc.Server) {
	var observed int64
	g.destTop = func() int64 { return observed }
	node.Subscribe(g.host, func(f *rpc.EventFrame) {
		if f.Height > observed {
			observed = f.Height
		}
	})
}

// Stats reports submission outcomes so far.
func (g *Generator) Stats() Stats { return g.stats }

// Host reports the generator's network address (geo placement).
func (g *Generator) Host() netem.Host { return g.host }

// PacketKeys returns, in commit order, the keys of every packet this
// generator's committed transfers produced (requires a tracker).
func (g *Generator) PacketKeys() []metrics.PacketKey { return g.keys }

// EnsureAccounts pre-funds n workload accounts on the source chain.
func (g *Generator) EnsureAccounts(n int) {
	for len(g.accounts) < n {
		name := fmt.Sprintf("%s-%04d", g.AccountPrefix, len(g.accounts))
		g.source.App.CreateAccount(name, app.Coin{Denom: "uatom", Amount: 1 << 50})
		g.accounts = append(g.accounts, name)
		g.nextSeq[name] = 0
	}
}

// SubmitBatch submits `transfers` transfer requests now, split into
// transactions of MsgsPerTx messages from distinct accounts. It models
// the paper's multi-account submission: each account signs with its
// locally tracked sequence and retries through a re-query on mismatch.
func (g *Generator) SubmitBatch(transfers int) {
	if transfers <= 0 {
		return
	}
	g.stats.Requested += transfers
	if g.tracker != nil {
		g.tracker.AddRequested(transfers)
	}
	txCount := (transfers + g.MsgsPerTx - 1) / g.MsgsPerTx
	// Rotate through enough distinct accounts that a window never reuses
	// an account from the previous two windows.
	g.EnsureAccounts(3 * txCount)
	remaining := transfers
	for i := 0; i < txCount; i++ {
		n := g.MsgsPerTx
		if n > remaining {
			n = remaining
		}
		remaining -= n
		g.submitTx(g.accounts[g.acctCursor%len(g.accounts)], n, 0)
		g.acctCursor++
	}
}

// submitTx builds and broadcasts one batch transaction for an account.
func (g *Generator) submitTx(account string, n int, attempt int) {
	timeoutHeight := g.destTop() + g.TimeoutBlocks
	msgs := make([]app.Msg, n)
	for j := 0; j < n; j++ {
		g.nonce++
		msgs[j] = transfer.MsgTransfer{
			Sender:        account,
			Receiver:      "receiver-" + account,
			Token:         app.Coin{Denom: "uatom", Amount: 1},
			SourcePort:    g.SourcePort,
			SourceChannel: g.SourceChannel,
			TimeoutHeight: timeoutHeight,
			Memo:          g.Memo,
			Nonce:         g.nonce,
		}
	}
	seq := g.nextSeq[account]
	tx := app.NewTx(account, seq, g.nonce, msgs)
	g.broadcastAt[tx.Hash()] = g.sched.Now()
	g.rpcNode.BroadcastTxSync(g.host, tx, func(err error) {
		switch {
		case err == nil:
			g.nextSeq[account] = seq + 1
			g.stats.Submitted += n
		case attempt < 2:
			// CLI behaviour: re-query the committed sequence and retry.
			g.rpcNode.QueryAccountSequence(g.host, account, func(s uint64, qerr error) {
				if qerr == nil {
					g.nextSeq[account] = s
				}
				g.submitTx(account, n, attempt+1)
			})
		default:
			g.stats.Failed += n
		}
	})
}

// RunConstantRate submits batches of rate*5 transfers at every block
// window for the given number of windows (the paper's input-rate
// convention: "a request rate of 1,000 transfers per second corresponds
// to a batch of 5,000 transfers being submitted every 5 seconds").
func (g *Generator) RunConstantRate(ratePerSec int, windows int) {
	perWindow := ratePerSec * int(simconf.MinBlockInterval/time.Second)
	for w := 0; w < windows; w++ {
		w := w
		g.sched.At(time.Duration(w)*simconf.MinBlockInterval+time.Millisecond, func() {
			g.SubmitBatch(perWindow)
		})
	}
}

// SubmitSpread splits total transfers evenly across numBlocks submission
// windows (Fig. 13's submission strategies).
func (g *Generator) SubmitSpread(total, numBlocks int) {
	per := total / numBlocks
	extra := total - per*numBlocks
	for wIdx := 0; wIdx < numBlocks; wIdx++ {
		n := per
		if wIdx < extra {
			n++
		}
		w := wIdx
		amount := n
		g.sched.At(time.Duration(w)*simconf.MinBlockInterval+time.Millisecond, func() {
			g.SubmitBatch(amount)
		})
	}
}

// InjectDirect stages transfers straight into the source mempool so they
// all land in a single block — the paper's §V scenario "we generated a
// block containing 1,000 cross-chain transactions with 100 IBC transfers
// each". Bypasses the RPC submission path.
func (g *Generator) InjectDirect(transfers int) {
	if transfers <= 0 {
		return
	}
	g.stats.Requested += transfers
	if g.tracker != nil {
		g.tracker.AddRequested(transfers)
	}
	txCount := (transfers + g.MsgsPerTx - 1) / g.MsgsPerTx
	g.EnsureAccounts(txCount)
	remaining := transfers
	timeoutHeight := g.destTop() + g.TimeoutBlocks
	for i := 0; i < txCount; i++ {
		n := g.MsgsPerTx
		if n > remaining {
			n = remaining
		}
		remaining -= n
		account := g.accounts[i]
		msgs := make([]app.Msg, n)
		for j := 0; j < n; j++ {
			g.nonce++
			msgs[j] = transfer.MsgTransfer{
				Sender:        account,
				Receiver:      "receiver-" + account,
				Token:         app.Coin{Denom: "uatom", Amount: 1},
				SourcePort:    g.SourcePort,
				SourceChannel: g.SourceChannel,
				TimeoutHeight: timeoutHeight,
				Memo:          g.Memo,
				Nonce:         g.nonce,
			}
		}
		seq := g.nextSeq[account]
		tx := app.NewTx(account, seq, g.nonce, msgs)
		g.broadcastAt[tx.Hash()] = g.sched.Now()
		if err := g.source.Pool.Add(tx); err == nil {
			g.nextSeq[account] = seq + 1
			g.stats.Submitted += n
		} else {
			g.stats.Failed += n
		}
	}
}
