// Live telemetry client: -live ADDR streams an experiment's progress
// snapshots to a running `ibcbench serve` instance while the
// simulation executes, then converts the session into an archived run
// when it finishes. Telemetry is fire-and-forget — a dead or slow
// service warns once and never fails (or slows the scheduling of) the
// run itself; the simulation's virtual clock is unaffected either way
// because the hook reads counters without touching any RNG.
package main

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"ibcbench/internal/obs"
)

// liveClient posts one run process's telemetry under a random session
// ID, so concurrent ibcbench invocations against one service never
// collide.
type liveClient struct {
	base    string
	session string
	client  *http.Client

	mu     sync.Mutex
	warned bool
}

// newLiveClient builds a client for a -live address; a bare host:port
// gets the http scheme.
func newLiveClient(addr string) *liveClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	var buf [8]byte
	rand.Read(buf[:])
	return &liveClient{
		base:    strings.TrimRight(addr, "/"),
		session: hex.EncodeToString(buf[:]),
		client:  &http.Client{Timeout: 5 * time.Second},
	}
}

// Hook is the topo.LiveConfig callback. Sweeps run seeds concurrently,
// so it is goroutine-safe; delivery failures warn once and are
// otherwise ignored.
func (lc *liveClient) Hook(st obs.LiveStatus) {
	body, err := json.Marshal(st)
	if err != nil {
		return
	}
	resp, err := lc.client.Post(
		lc.base+"/api/live/update?session="+url.QueryEscape(lc.session),
		"application/json", bytes.NewReader(body))
	if err != nil {
		lc.warnOnce(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		lc.warnOnce(fmt.Errorf("status %s", resp.Status))
	}
}

func (lc *liveClient) warnOnce(err error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.warned {
		return
	}
	lc.warned = true
	fmt.Fprintf(os.Stderr, "live: update failed (%v); continuing without telemetry\n", err)
}

// Finish ends the live session. A non-empty payload is the finished
// result document: the service archives it (idempotently, like
// /api/ingest) and the archived run ID comes back. An empty payload
// only clears the session's live entries.
func (lc *liveClient) Finish(kind, commit string, payload []byte) (string, bool, error) {
	q := url.Values{"session": {lc.session}}
	if kind != "" {
		q.Set("kind", kind)
	}
	if commit != "" {
		q.Set("commit", commit)
	}
	resp, err := lc.client.Post(lc.base+"/api/live/finish?"+q.Encode(),
		"application/json", bytes.NewReader(payload))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", false, fmt.Errorf("status %s", resp.Status)
	}
	if len(payload) == 0 {
		return "", false, nil
	}
	var out struct {
		Meta struct {
			ID string `json:"id"`
		} `json:"meta"`
		Created bool `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", false, fmt.Errorf("decode response: %w", err)
	}
	return out.Meta.ID, out.Created, nil
}
