// Result-file diffing: compare two -out JSON documents metric by metric
// for cross-PR regression tracking of reproduced figures. The flatten
// and config-header comparison primitives live in internal/resultdiff,
// shared with the experiment store's run-compatibility check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"ibcbench/internal/resultdiff"
)

// runDiffCmd is the diff subcommand:
//
//	ibcbench diff old.json new.json [-fail-on-change pct]
//
// Flags may come before or after the two positional files (flag
// parsing stops at the first positional, so a second pass picks up
// trailing flags).
func runDiffCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench diff", flag.ContinueOnError)
	failPct := fs.Float64("fail-on-change", -1, "exit nonzero when any metric moves beyond this tolerance in percent (negative = report only; skipped when the files' config headers mismatch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: ibcbench diff old.json new.json [-fail-on-change pct]")
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	if fs.NArg() > 2 {
		if err := fs.Parse(fs.Args()[2:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: ibcbench diff old.json new.json [-fail-on-change pct]")
		}
	}
	return runDiff(oldPath, newPath, *failPct, w)
}

// runDiff loads two -out result files and prints per-metric deltas.
// A non-negative failPct arms the CI regression gate: a non-nil error is
// returned (and the process exits nonzero) when any numeric metric moves
// beyond that tolerance in percent. Files whose config headers disagree
// are excluded from the gate — their deltas measure the config change,
// not a regression — as are added/removed metrics (new benchmarks must
// not fail the gate). A metric moving off zero has no defined percent
// change and always trips an armed gate.
func runDiff(oldPath, newPath string, failPct float64, w io.Writer) error {
	oldDoc, err := loadResults(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadResults(newPath)
	if err != nil {
		return err
	}
	cfgDiffs := warnConfigMismatch(oldDoc, newDoc, w)
	oldFlat := resultdiff.Flatten("", oldDoc)
	newFlat := resultdiff.Flatten("", newDoc)
	// The config header is compared (and warned about) above; keep it
	// out of the metric diff so config-only differences don't inflate
	// the changed-metric count regression gates key on.
	resultdiff.DropConfig(oldFlat)
	resultdiff.DropConfig(newFlat)

	var changed, added, removed []string
	unchanged := 0
	for path := range oldFlat {
		if _, ok := newFlat[path]; !ok {
			removed = append(removed, path)
		}
	}
	for path, nv := range newFlat {
		ov, ok := oldFlat[path]
		if !ok {
			added = append(added, path)
			continue
		}
		if ov == nv {
			unchanged++
			continue
		}
		changed = append(changed, path)
	}
	sort.Strings(changed)
	sort.Strings(added)
	sort.Strings(removed)

	fmt.Fprintf(w, "# diff %s -> %s\n", oldPath, newPath)
	var exceeded []string
	if len(changed) == 0 && len(added) == 0 && len(removed) == 0 {
		fmt.Fprintf(w, "no differences (%d metrics compared)\n", unchanged)
		return nil
	}
	if len(changed) > 0 {
		fmt.Fprintf(w, "%-58s %14s %14s %14s %9s\n", "metric", "old", "new", "delta", "%")
		for _, path := range changed {
			ov, nv := oldFlat[path], newFlat[path]
			on, oldNum := ov.(float64)
			nn, newNum := nv.(float64)
			if oldNum && newNum {
				delta := nn - on
				pct := "n/a"
				if on != 0 {
					pct = fmt.Sprintf("%+.1f%%", 100*delta/math.Abs(on))
				}
				if failPct >= 0 && (on == 0 || 100*math.Abs(delta)/math.Abs(on) > failPct) {
					exceeded = append(exceeded, fmt.Sprintf("%s: %s -> %s (%s)", path, fmtNum(on), fmtNum(nn), pct))
				}
				sign := ""
				if delta >= 0 {
					sign = "+"
				}
				fmt.Fprintf(w, "%-58s %14s %14s %14s %9s\n",
					path, fmtNum(on), fmtNum(nn), sign+fmtNum(delta), pct)
			} else {
				fmt.Fprintf(w, "%-58s %14v %14v\n", path, ov, nv)
			}
		}
	}
	for _, path := range added {
		fmt.Fprintf(w, "added:   %s = %v\n", path, newFlat[path])
	}
	for _, path := range removed {
		fmt.Fprintf(w, "removed: %s = %v\n", path, oldFlat[path])
	}
	fmt.Fprintf(w, "%d changed, %d added, %d removed, %d unchanged\n",
		len(changed), len(added), len(removed), unchanged)
	if len(exceeded) > 0 {
		if len(cfgDiffs) > 0 {
			fmt.Fprintf(w, "fail-on-change gate skipped: config headers mismatch on %s (deltas reflect the config change)\n",
				resultdiff.FieldNames(cfgDiffs))
			return nil
		}
		for _, m := range exceeded {
			fmt.Fprintf(w, "exceeds ±%.1f%%: %s\n", failPct, m)
		}
		return fmt.Errorf("diff: %d metric(s) moved beyond ±%.1f%%", len(exceeded), failPct)
	}
	return nil
}

// warnConfigMismatch compares the documents' "config" headers (topology,
// region preset, netem config, seed, ...) field by field and warns when
// they disagree, naming each differing field: a metric diff across
// different configurations measures the config change, not a
// regression. Documents without a header (pre-header results) are
// compared silently. The returned field diffs disarm the fail-on-change
// gate when non-empty.
func warnConfigMismatch(oldDoc, newDoc any, w io.Writer) []resultdiff.FieldDiff {
	diffs := resultdiff.ConfigDiff(resultdiff.ConfigHeader(oldDoc), resultdiff.ConfigHeader(newDoc))
	if len(diffs) == 0 {
		return nil
	}
	fmt.Fprintln(w, "WARNING: result files were produced with different configurations; metric deltas below reflect the config change, not a regression:")
	for _, d := range diffs {
		fmt.Fprintf(w, "  config.%s\n", d)
	}
	return diffs
}

func loadResults(path string) (any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diff: %w", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("diff: %s: %w", path, err)
	}
	return doc, nil
}

func fmtNum(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e12 {
		return fmt.Sprintf("%.0f", f)
	}
	return fmt.Sprintf("%.3f", f)
}
