// Trace export and validation: -trace runs one instrumented scenario
// and writes a Chrome trace-event file (load it at ui.perfetto.dev or
// chrome://tracing), -trace-summary prints the top spans by total/self
// time per subsystem, and -validate-trace structurally checks an
// exported file (the CI smoke step runs it against a short hub run).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"ibcbench/internal/experiments"
	"ibcbench/internal/obs"
)

// runTrace executes one seed of the topo scenario with observability
// attached, optionally writes the Chrome trace and/or prints the span
// summary, and renders the run result like a plain topo run would.
func runTrace(opt experiments.Options, topology string, rate int, forwarded bool,
	seed int64, tracePath string, summary bool, w io.Writer) error {
	sc, err := experiments.BuildTopologyScenario(opt, topology, rate, forwarded)
	if err != nil {
		return err
	}
	o := obs.New()
	sc.Deploy.Obs = o
	res, err := sc.Run(seed)
	if err != nil {
		return err
	}
	res.Render(w)
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("create %s: %w", tracePath, err)
		}
		if err := o.Tracer.WriteChrome(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", tracePath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", tracePath, err)
		}
		fmt.Fprintf(os.Stderr, "trace (%d events) written to %s\n", o.Tracer.Len(), tracePath)
	}
	if summary {
		fmt.Fprintln(w)
		obs.WriteSummary(w, o.Tracer.Summary(), 20)
	}
	return nil
}

// traceEvent mirrors the subset of the Chrome trace-event schema the
// validator checks.
type traceEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Cat   string  `json:"cat"`
	ID    string  `json:"id"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// runValidateTrace structurally validates an exported trace: the file
// must parse as a trace-event document, complete spans need non-negative
// timestamps and durations, and every async trace must open and close in
// order on each (cat, id) pair.
func runValidateTrace(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a trace-event document: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", path)
	}
	type asyncKey struct{ cat, id string }
	open := map[asyncKey]int{}
	counts := map[string]int{}
	for i, ev := range doc.TraceEvents {
		counts[ev.Phase]++
		switch ev.Phase {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts/dur", path, i, ev.Name)
			}
		case "i":
			if ev.TS < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts", path, i, ev.Name)
			}
		case "b", "n", "e":
			if ev.ID == "" {
				return fmt.Errorf("%s: event %d (%s): async event without id", path, i, ev.Name)
			}
			k := asyncKey{ev.Cat, ev.ID}
			switch ev.Phase {
			case "b":
				open[k]++
			case "n":
				if open[k] == 0 {
					return fmt.Errorf("%s: event %d (%s): async instant outside open span %v", path, i, ev.Name, k)
				}
			case "e":
				if open[k] == 0 {
					return fmt.Errorf("%s: event %d (%s): async end without begin %v", path, i, ev.Name, k)
				}
				open[k]--
			}
		case "M":
			// metadata: no timing constraints
		default:
			return fmt.Errorf("%s: event %d (%s): unknown phase %q", path, i, ev.Name, ev.Phase)
		}
	}
	for k, n := range open {
		if n != 0 {
			return fmt.Errorf("%s: async trace %v left %d span(s) open", path, k, n)
		}
	}
	phases := make([]string, 0, len(counts))
	for ph := range counts {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	fmt.Fprintf(w, "%s: OK (%d events:", path, len(doc.TraceEvents))
	for _, ph := range phases {
		fmt.Fprintf(w, " %s=%d", ph, counts[ph])
	}
	fmt.Fprintln(w, ")")
	return nil
}
